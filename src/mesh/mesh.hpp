// Finite-element mesh structures.
//
// A Mesh holds a fixed node array (ids stay stable for the lifetime of a
// simulation — partitions are defined on node ids and must survive element
// erosion) and a homogeneous list of elements (tri3/quad4 in 2D, tet4/hex8
// in 3D). Elements may be removed (erosion during penetration); nodes never
// are, so a node can become isolated.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "geom/bbox.hpp"
#include "util/common.hpp"

namespace cpart {

enum class ElementType { kTri3, kQuad4, kTet4, kHex8 };

/// Nodes per element of the given type.
int nodes_per_element(ElementType type);
/// Spatial dimension (2 or 3) the element type lives in.
int element_dim(ElementType type);
/// Canonical lowercase name ("tri3", ...).
std::string element_type_name(ElementType type);
/// Inverse of element_type_name; throws InputError on unknown names.
ElementType element_type_from_name(const std::string& name);

/// Node index tuples of each (oriented) face of the reference element:
/// edges for 2D elements, triangle/quad faces for 3D ones.
std::span<const std::vector<int>> element_faces(ElementType type);

class Mesh {
 public:
  Mesh() = default;
  /// `elem_nodes` is num_elements * nodes_per_element(type) node ids.
  Mesh(ElementType type, std::vector<Vec3> nodes,
       std::vector<idx_t> elem_nodes);

  ElementType element_type() const { return type_; }
  int dim() const { return element_dim(type_); }
  idx_t num_nodes() const { return to_idx(nodes_.size()); }
  idx_t num_elements() const {
    return to_idx(elem_nodes_.size() /
                  static_cast<std::size_t>(nodes_per_element(type_)));
  }

  Vec3 node(idx_t i) const { return nodes_[static_cast<std::size_t>(i)]; }
  void set_node(idx_t i, Vec3 p) { nodes_[static_cast<std::size_t>(i)] = p; }
  std::span<const Vec3> nodes() const { return nodes_; }
  std::span<Vec3> mutable_nodes() { return nodes_; }

  std::span<const idx_t> element(idx_t e) const {
    const auto npe = static_cast<std::size_t>(nodes_per_element(type_));
    return {elem_nodes_.data() + static_cast<std::size_t>(e) * npe, npe};
  }

  /// The whole connectivity array: num_elements * npe node ids.
  std::span<const idx_t> element_nodes() const { return elem_nodes_; }

  /// Centroid of element e.
  Vec3 element_center(idx_t e) const;
  /// Bounding box of element e's nodes.
  BBox element_bbox(idx_t e) const;
  /// Bounding box of all nodes.
  BBox bounds() const;

  /// Removes the elements with keep[e] == 0; node array is untouched.
  /// Returns the number of removed elements.
  idx_t remove_elements(std::span<const char> keep);

  /// Appends another mesh of the same element type (distinct node set; the
  /// bodies are not stitched). Returns the node-id offset applied to `other`.
  idx_t append(const Mesh& other);

 private:
  ElementType type_ = ElementType::kHex8;
  std::vector<Vec3> nodes_;
  std::vector<idx_t> elem_nodes_;
};

}  // namespace cpart
