#include "mesh/subdomain.hpp"

namespace cpart {

void build_subdomain_views(std::span<const idx_t> contact_ids,
                           std::span<const idx_t> contact_labels,
                           std::span<const idx_t> face_owner, idx_t k,
                           std::vector<SubdomainView>& views) {
  require(k >= 1, "build_subdomain_views: k must be >= 1");
  require(contact_ids.size() == contact_labels.size(),
          "build_subdomain_views: contact id/label size mismatch");
  views.resize(static_cast<std::size_t>(k));
  for (SubdomainView& v : views) {
    v.contact_nodes.clear();
    v.owned_faces.clear();
  }
  for (std::size_t i = 0; i < contact_ids.size(); ++i) {
    const idx_t p = contact_labels[i];
    require(p >= 0 && p < k, "build_subdomain_views: label out of range");
    views[static_cast<std::size_t>(p)].contact_nodes.push_back(contact_ids[i]);
  }
  for (std::size_t f = 0; f < face_owner.size(); ++f) {
    const idx_t p = face_owner[f];
    require(p >= 0 && p < k, "build_subdomain_views: face owner out of range");
    views[static_cast<std::size_t>(p)].owned_faces.push_back(to_idx(f));
  }
}

void build_halo_sends(const CsrGraph& graph,
                      std::span<const idx_t> node_partition, idx_t k,
                      std::vector<SubdomainView>& views) {
  require(k >= 1, "build_halo_sends: k must be >= 1");
  require(node_partition.size() == static_cast<std::size_t>(graph.num_vertices()),
          "build_halo_sends: partition size mismatch");
  views.resize(static_cast<std::size_t>(k));
  for (SubdomainView& v : views) v.halo_sends.clear();
  // Same distinct-adjacent-partition enumeration as fe_halo_traffic, with
  // the same O(|result|) mask reset.
  std::vector<char> seen(static_cast<std::size_t>(k), 0);
  std::vector<idx_t> touched;
  for (idx_t v = 0; v < graph.num_vertices(); ++v) {
    const idx_t pv = node_partition[static_cast<std::size_t>(v)];
    touched.clear();
    for (idx_t u : graph.neighbors(v)) {
      const idx_t pu = node_partition[static_cast<std::size_t>(u)];
      if (pu == pv || seen[static_cast<std::size_t>(pu)]) continue;
      seen[static_cast<std::size_t>(pu)] = 1;
      touched.push_back(pu);
    }
    for (idx_t p : touched) {
      views[static_cast<std::size_t>(pv)].halo_sends.push_back({v, p});
      seen[static_cast<std::size_t>(p)] = 0;
    }
  }
}

}  // namespace cpart
