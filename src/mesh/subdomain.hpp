// Per-rank subdomain views for the SPMD contact pipeline.
//
// A k-processor SPMD execution starts from ownership: every rank owns the
// contact nodes and surface faces its partition label assigns to it, plus a
// halo send list describing which of its FE boundary nodes must be shipped
// to which adjacent partitions each step. This module extracts those views
// from the global mesh products (partition labels, face owners, nodal
// graph) in single deterministic passes, preserving exactly the orders the
// centralized pipeline iterates in — the per-rank programs built on top of
// these views reproduce its output bit for bit.
#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/common.hpp"

namespace cpart {

/// One FE halo post: `node`'s data goes to partition `dst` this step.
struct HaloSend {
  idx_t node = kInvalidIndex;
  idx_t dst = kInvalidIndex;
};

/// What one rank owns. `contact_nodes` and `owned_faces` are per-step
/// (the surface changes under erosion); `halo_sends` depends only on the
/// nodal graph and the node partition, so it is rebuilt only when the mesh
/// topology version changes (see NodalGraphCache::version).
struct SubdomainView {
  /// Owned contact nodes, in the global contact-node gather order (the
  /// order the centralized pipeline fills nodes_on[rank] in).
  std::vector<idx_t> contact_nodes;
  /// Owned surface faces, ascending face index.
  std::vector<idx_t> owned_faces;
  /// Halo posts; posting each entry as one unit reproduces the
  /// fe_halo_traffic matrix exactly.
  std::vector<HaloSend> halo_sends;
};

/// Rebuilds contact_nodes/owned_faces of views[0..k) from this step's
/// labels: `contact_labels[i]` owns node `contact_ids[i]`, `face_owner[f]`
/// owns face f. Resizes `views` to k; halo_sends are left untouched.
void build_subdomain_views(std::span<const idx_t> contact_ids,
                           std::span<const idx_t> contact_labels,
                           std::span<const idx_t> face_owner, idx_t k,
                           std::vector<SubdomainView>& views);

/// Rebuilds halo_sends of views[0..k) from the FE nodal graph: for every
/// vertex (ascending) one post per distinct adjacent remote partition —
/// the same enumeration fe_halo_traffic charges, so executing these posts
/// through the exchange yields an identical traffic matrix. Resizes
/// `views` to k; the per-step ownership lists are left untouched.
void build_halo_sends(const CsrGraph& graph,
                      std::span<const idx_t> node_partition, idx_t k,
                      std::vector<SubdomainView>& views);

}  // namespace cpart
