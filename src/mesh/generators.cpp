#include "mesh/generators.hpp"

namespace cpart {

namespace {

std::vector<Vec3> grid_nodes(idx_t nx, idx_t ny, idx_t nz, Vec3 origin,
                             Vec3 size) {
  std::vector<Vec3> nodes;
  nodes.reserve(static_cast<std::size_t>((nx + 1) * (ny + 1) * (nz + 1)));
  for (idx_t i = 0; i <= nx; ++i) {
    for (idx_t j = 0; j <= ny; ++j) {
      for (idx_t k = 0; k <= nz; ++k) {
        nodes.push_back(Vec3{
            origin.x + size.x * static_cast<real_t>(i) / static_cast<real_t>(nx),
            origin.y + size.y * static_cast<real_t>(j) / static_cast<real_t>(ny),
            nz == 0 ? origin.z
                    : origin.z + size.z * static_cast<real_t>(k) /
                                     static_cast<real_t>(nz)});
      }
    }
  }
  return nodes;
}

idx_t grid_id(idx_t i, idx_t j, idx_t k, idx_t ny, idx_t nz) {
  return (i * (ny + 1) + j) * (nz + 1) + k;
}

/// The 8 corner node ids of structured cell (i, j, k), in hex8 order
/// (bottom ring CCW, then top ring CCW).
std::array<idx_t, 8> hex_corners(idx_t i, idx_t j, idx_t k, idx_t ny,
                                 idx_t nz) {
  return {grid_id(i, j, k, ny, nz),         grid_id(i + 1, j, k, ny, nz),
          grid_id(i + 1, j + 1, k, ny, nz), grid_id(i, j + 1, k, ny, nz),
          grid_id(i, j, k + 1, ny, nz),     grid_id(i + 1, j, k + 1, ny, nz),
          grid_id(i + 1, j + 1, k + 1, ny, nz),
          grid_id(i, j + 1, k + 1, ny, nz)};
}

}  // namespace

Mesh make_hex_box(idx_t nx, idx_t ny, idx_t nz, Vec3 origin, Vec3 size) {
  require(nx >= 1 && ny >= 1 && nz >= 1, "make_hex_box: bad cell counts");
  std::vector<Vec3> nodes = grid_nodes(nx, ny, nz, origin, size);
  std::vector<idx_t> elems;
  elems.reserve(static_cast<std::size_t>(nx * ny * nz) * 8);
  for (idx_t i = 0; i < nx; ++i) {
    for (idx_t j = 0; j < ny; ++j) {
      for (idx_t k = 0; k < nz; ++k) {
        for (idx_t c : hex_corners(i, j, k, ny, nz)) elems.push_back(c);
      }
    }
  }
  return Mesh(ElementType::kHex8, std::move(nodes), std::move(elems));
}

Mesh make_tet_box(idx_t nx, idx_t ny, idx_t nz, Vec3 origin, Vec3 size) {
  require(nx >= 1 && ny >= 1 && nz >= 1, "make_tet_box: bad cell counts");
  std::vector<Vec3> nodes = grid_nodes(nx, ny, nz, origin, size);
  std::vector<idx_t> elems;
  elems.reserve(static_cast<std::size_t>(nx * ny * nz) * 6 * 4);
  // Six-tet (Kuhn) subdivision along the main diagonal 0-6 of each cell;
  // identical orientation in every cell keeps shared faces conforming.
  static const int kTets[6][4] = {{0, 1, 2, 6}, {0, 2, 3, 6}, {0, 3, 7, 6},
                                  {0, 7, 4, 6}, {0, 4, 5, 6}, {0, 5, 1, 6}};
  for (idx_t i = 0; i < nx; ++i) {
    for (idx_t j = 0; j < ny; ++j) {
      for (idx_t k = 0; k < nz; ++k) {
        const auto c = hex_corners(i, j, k, ny, nz);
        for (const auto& tet : kTets) {
          for (int v : tet) elems.push_back(c[static_cast<std::size_t>(v)]);
        }
      }
    }
  }
  return Mesh(ElementType::kTet4, std::move(nodes), std::move(elems));
}

Mesh make_quad_rect(idx_t nx, idx_t ny, Vec3 origin, Vec3 size) {
  require(nx >= 1 && ny >= 1, "make_quad_rect: bad cell counts");
  std::vector<Vec3> nodes = grid_nodes(nx, ny, 0, origin, size);
  std::vector<idx_t> elems;
  elems.reserve(static_cast<std::size_t>(nx * ny) * 4);
  for (idx_t i = 0; i < nx; ++i) {
    for (idx_t j = 0; j < ny; ++j) {
      elems.push_back(grid_id(i, j, 0, ny, 0));
      elems.push_back(grid_id(i + 1, j, 0, ny, 0));
      elems.push_back(grid_id(i + 1, j + 1, 0, ny, 0));
      elems.push_back(grid_id(i, j + 1, 0, ny, 0));
    }
  }
  return Mesh(ElementType::kQuad4, std::move(nodes), std::move(elems));
}

Mesh make_tri_rect(idx_t nx, idx_t ny, Vec3 origin, Vec3 size) {
  require(nx >= 1 && ny >= 1, "make_tri_rect: bad cell counts");
  std::vector<Vec3> nodes = grid_nodes(nx, ny, 0, origin, size);
  std::vector<idx_t> elems;
  elems.reserve(static_cast<std::size_t>(nx * ny) * 6);
  for (idx_t i = 0; i < nx; ++i) {
    for (idx_t j = 0; j < ny; ++j) {
      const idx_t a = grid_id(i, j, 0, ny, 0);
      const idx_t b = grid_id(i + 1, j, 0, ny, 0);
      const idx_t c = grid_id(i + 1, j + 1, 0, ny, 0);
      const idx_t d = grid_id(i, j + 1, 0, ny, 0);
      elems.insert(elems.end(), {a, b, c});
      elems.insert(elems.end(), {a, c, d});
    }
  }
  return Mesh(ElementType::kTri3, std::move(nodes), std::move(elems));
}

Mesh make_hex_cylinder(real_t radius, real_t length, Vec3 base_center,
                       idx_t cells_per_diameter, idx_t nz) {
  require(radius > 0 && length > 0, "make_hex_cylinder: bad dimensions");
  require(cells_per_diameter >= 2 && nz >= 1,
          "make_hex_cylinder: bad resolution");
  const Vec3 origin{base_center.x - radius, base_center.y - radius,
                    base_center.z};
  const Vec3 size{2 * radius, 2 * radius, length};
  Mesh box = make_hex_box(cells_per_diameter, cells_per_diameter, nz, origin,
                          size);
  // Trim cells whose centre lies outside the cylinder. Node array keeps the
  // full grid; unused nodes are dropped by compacting below.
  std::vector<char> keep(static_cast<std::size_t>(box.num_elements()), 0);
  for (idx_t e = 0; e < box.num_elements(); ++e) {
    const Vec3 c = box.element_center(e);
    const real_t dx = c.x - base_center.x;
    const real_t dy = c.y - base_center.y;
    keep[static_cast<std::size_t>(e)] = (dx * dx + dy * dy <= radius * radius);
  }
  box.remove_elements(keep);
  // Compact nodes: renumber only those still referenced.
  std::vector<idx_t> remap(static_cast<std::size_t>(box.num_nodes()),
                           kInvalidIndex);
  std::vector<Vec3> nodes;
  std::vector<idx_t> elems;
  elems.reserve(static_cast<std::size_t>(box.num_elements()) * 8);
  for (idx_t e = 0; e < box.num_elements(); ++e) {
    for (idx_t id : box.element(e)) {
      if (remap[static_cast<std::size_t>(id)] == kInvalidIndex) {
        remap[static_cast<std::size_t>(id)] = to_idx(nodes.size());
        nodes.push_back(box.node(id));
      }
      elems.push_back(remap[static_cast<std::size_t>(id)]);
    }
  }
  return Mesh(ElementType::kHex8, std::move(nodes), std::move(elems));
}

}  // namespace cpart
