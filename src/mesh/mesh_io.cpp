#include "mesh/mesh_io.hpp"

#include <fstream>
#include <sstream>

namespace cpart {

void write_mesh(std::ostream& os, const Mesh& mesh) {
  os << "cpartmesh 1\n";
  os << "etype " << element_type_name(mesh.element_type()) << '\n';
  os << "nodes " << mesh.num_nodes() << '\n';
  for (idx_t i = 0; i < mesh.num_nodes(); ++i) {
    const Vec3 p = mesh.node(i);
    os << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  os << "elements " << mesh.num_elements() << '\n';
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (std::size_t i = 0; i < elem.size(); ++i) {
      if (i) os << ' ';
      os << elem[i];
    }
    os << '\n';
  }
}

void write_mesh_file(const std::string& path, const Mesh& mesh) {
  std::ofstream os(path);
  require(os.good(), "write_mesh_file: cannot open " + path);
  write_mesh(os, mesh);
  require(os.good(), "write_mesh_file: write failed for " + path);
}

Mesh read_mesh(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  require(is.good() && magic == "cpartmesh" && version == 1,
          "read_mesh: not a cpartmesh v1 stream");
  std::string keyword, type_name;
  is >> keyword >> type_name;
  require(is.good() && keyword == "etype", "read_mesh: expected 'etype'");
  const ElementType type = element_type_from_name(type_name);

  idx_t n = 0;
  is >> keyword >> n;
  require(is.good() && keyword == "nodes" && n >= 0,
          "read_mesh: expected 'nodes <count>'");
  std::vector<Vec3> nodes(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) {
    Vec3& p = nodes[static_cast<std::size_t>(i)];
    is >> p.x >> p.y >> p.z;
    require(is.good(), "read_mesh: bad node line " + std::to_string(i));
  }

  idx_t m = 0;
  is >> keyword >> m;
  require(!is.fail() && keyword == "elements" && m >= 0,
          "read_mesh: expected 'elements <count>'");
  const int npe = nodes_per_element(type);
  std::vector<idx_t> elems(static_cast<std::size_t>(m) *
                           static_cast<std::size_t>(npe));
  for (std::size_t i = 0; i < elems.size(); ++i) {
    is >> elems[i];
    require(!is.fail(), "read_mesh: bad element data");
  }
  return Mesh(type, std::move(nodes), std::move(elems));
}

Mesh read_mesh_file(const std::string& path) {
  std::ifstream is(path);
  require(is.good(), "read_mesh_file: cannot open " + path);
  return read_mesh(is);
}

}  // namespace cpart
