#include "mesh/mesh_graphs.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/graph_builder.hpp"
#include "mesh/chunked_mesh.hpp"

namespace cpart {

namespace {

/// One-chunk source over an in-core connectivity array.
ElementChunkSource whole_array_source(std::span<const idx_t> conn) {
  return [conn, done = false]() mutable -> std::span<const idx_t> {
    if (done) return {};
    done = true;
    return conn;
  };
}

/// Source draining a ChunkedMeshReader's element blocks in order. Each
/// pull touches exactly one block, so residency stays within the window.
ElementChunkSource reader_source(ChunkedMeshReader& reader) {
  return [&reader, b = idx_t{0}]() mutable -> std::span<const idx_t> {
    if (b >= reader.num_element_blocks()) return {};
    return reader.element_block(b++);
  };
}

}  // namespace

std::span<const std::pair<int, int>> element_edges(ElementType type) {
  static const std::vector<std::pair<int, int>> tri{{0, 1}, {1, 2}, {2, 0}};
  static const std::vector<std::pair<int, int>> quad{
      {0, 1}, {1, 2}, {2, 3}, {3, 0}};
  static const std::vector<std::pair<int, int>> tet{
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  static const std::vector<std::pair<int, int>> hex{
      {0, 1}, {1, 2}, {2, 3}, {3, 0},   // bottom ring
      {4, 5}, {5, 6}, {6, 7}, {7, 4},   // top ring
      {0, 4}, {1, 5}, {2, 6}, {3, 7}};  // verticals
  switch (type) {
    case ElementType::kTri3: return tri;
    case ElementType::kQuad4: return quad;
    case ElementType::kTet4: return tet;
    case ElementType::kHex8: return hex;
  }
  return {};
}

CsrGraph nodal_graph(idx_t num_nodes, ElementType type,
                     const ElementChunkSource& chunks) {
  GraphBuilder builder(num_nodes);
  const auto edges = element_edges(type);
  const auto npe = static_cast<std::size_t>(nodes_per_element(type));
  for (std::span<const idx_t> chunk = chunks(); !chunk.empty();
       chunk = chunks()) {
    require(chunk.size() % npe == 0,
            "nodal_graph: chunk length not a multiple of nodes_per_element");
    for (std::size_t off = 0; off < chunk.size(); off += npe) {
      for (const auto& [a, b] : edges) {
        builder.add_edge(chunk[off + static_cast<std::size_t>(a)],
                         chunk[off + static_cast<std::size_t>(b)]);
      }
    }
  }
  return builder.build();
}

CsrGraph nodal_graph(const Mesh& mesh) {
  return nodal_graph(mesh.num_nodes(), mesh.element_type(),
                     whole_array_source(mesh.element_nodes()));
}

CsrGraph nodal_graph(ChunkedMeshReader& reader) {
  return nodal_graph(reader.num_nodes(), reader.element_type(),
                     reader_source(reader));
}

const CsrGraph& NodalGraphCache::get(const Mesh& mesh) {
  if (mesh.num_nodes() != num_nodes_ || mesh.num_elements() != num_elements_) {
    graph_ = nodal_graph(mesh);
    num_nodes_ = mesh.num_nodes();
    num_elements_ = mesh.num_elements();
    ++version_;
  }
  return graph_;
}

namespace {

struct FaceKey {
  std::array<idx_t, 4> ids{-1, -1, -1, -1};
  bool operator==(const FaceKey&) const = default;
};

struct FaceKeyHash {
  std::size_t operator()(const FaceKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (idx_t id : k.ids) {
      h ^= static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

CsrGraph dual_graph(idx_t num_elements, ElementType type,
                    const ElementChunkSource& chunks) {
  GraphBuilder builder(num_elements);
  const auto faces = element_faces(type);
  const auto npe = static_cast<std::size_t>(nodes_per_element(type));
  std::unordered_map<FaceKey, idx_t, FaceKeyHash> first_owner;
  first_owner.reserve(static_cast<std::size_t>(num_elements) * faces.size());
  idx_t e = 0;
  for (std::span<const idx_t> chunk = chunks(); !chunk.empty();
       chunk = chunks()) {
    require(chunk.size() % npe == 0,
            "dual_graph: chunk length not a multiple of nodes_per_element");
    for (std::size_t off = 0; off < chunk.size(); off += npe, ++e) {
      for (const auto& face : faces) {
        FaceKey key;
        for (std::size_t i = 0; i < face.size(); ++i) {
          key.ids[i] = chunk[off + static_cast<std::size_t>(face[i])];
        }
        std::sort(key.ids.begin(),
                  key.ids.begin() + static_cast<std::ptrdiff_t>(face.size()));
        auto [it, inserted] = first_owner.try_emplace(key, e);
        if (!inserted && it->second != e) {
          builder.add_edge(it->second, e);
        }
      }
    }
  }
  require(e == num_elements, "dual_graph: element count mismatch");
  return builder.build();
}

CsrGraph dual_graph(const Mesh& mesh) {
  return dual_graph(mesh.num_elements(), mesh.element_type(),
                    whole_array_source(mesh.element_nodes()));
}

CsrGraph dual_graph(ChunkedMeshReader& reader) {
  return dual_graph(reader.num_elements(), reader.element_type(),
                    reader_source(reader));
}

}  // namespace cpart
