#include "mesh/mesh_graphs.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/graph_builder.hpp"

namespace cpart {

std::span<const std::pair<int, int>> element_edges(ElementType type) {
  static const std::vector<std::pair<int, int>> tri{{0, 1}, {1, 2}, {2, 0}};
  static const std::vector<std::pair<int, int>> quad{
      {0, 1}, {1, 2}, {2, 3}, {3, 0}};
  static const std::vector<std::pair<int, int>> tet{
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  static const std::vector<std::pair<int, int>> hex{
      {0, 1}, {1, 2}, {2, 3}, {3, 0},   // bottom ring
      {4, 5}, {5, 6}, {6, 7}, {7, 4},   // top ring
      {0, 4}, {1, 5}, {2, 6}, {3, 7}};  // verticals
  switch (type) {
    case ElementType::kTri3: return tri;
    case ElementType::kQuad4: return quad;
    case ElementType::kTet4: return tet;
    case ElementType::kHex8: return hex;
  }
  return {};
}

CsrGraph nodal_graph(const Mesh& mesh) {
  GraphBuilder builder(mesh.num_nodes());
  const auto edges = element_edges(mesh.element_type());
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (const auto& [a, b] : edges) {
      builder.add_edge(elem[static_cast<std::size_t>(a)],
                       elem[static_cast<std::size_t>(b)]);
    }
  }
  return builder.build();
}

const CsrGraph& NodalGraphCache::get(const Mesh& mesh) {
  if (mesh.num_nodes() != num_nodes_ || mesh.num_elements() != num_elements_) {
    graph_ = nodal_graph(mesh);
    num_nodes_ = mesh.num_nodes();
    num_elements_ = mesh.num_elements();
    ++version_;
  }
  return graph_;
}

namespace {

struct FaceKey {
  std::array<idx_t, 4> ids{-1, -1, -1, -1};
  bool operator==(const FaceKey&) const = default;
};

struct FaceKeyHash {
  std::size_t operator()(const FaceKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (idx_t id : k.ids) {
      h ^= static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

CsrGraph dual_graph(const Mesh& mesh) {
  GraphBuilder builder(mesh.num_elements());
  const auto faces = element_faces(mesh.element_type());
  std::unordered_map<FaceKey, idx_t, FaceKeyHash> first_owner;
  first_owner.reserve(static_cast<std::size_t>(mesh.num_elements()) *
                      faces.size());
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (const auto& face : faces) {
      FaceKey key;
      for (std::size_t i = 0; i < face.size(); ++i) {
        key.ids[i] = elem[static_cast<std::size_t>(face[i])];
      }
      std::sort(key.ids.begin(),
                key.ids.begin() + static_cast<std::ptrdiff_t>(face.size()));
      auto [it, inserted] = first_owner.try_emplace(key, e);
      if (!inserted && it->second != e) {
        builder.add_edge(it->second, e);
      }
    }
  }
  return builder.build();
}

}  // namespace cpart
