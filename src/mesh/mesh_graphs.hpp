// Mesh-to-graph conversions (paper Section 2):
//   nodal graph — one vertex per mesh node, edges along element edges;
//   dual graph  — one vertex per element, edges between elements sharing an
//                 edge (2D) or a face (3D).
// The paper's partitioning algorithm operates on the nodal graph.
#pragma once

#include "graph/csr_graph.hpp"
#include "mesh/mesh.hpp"

namespace cpart {

/// Builds the (unweighted) nodal graph of the mesh. Isolated nodes (all
/// incident elements eroded) become degree-0 vertices.
CsrGraph nodal_graph(const Mesh& mesh);

/// Builds the dual graph of the mesh.
CsrGraph dual_graph(const Mesh& mesh);

/// Node index pairs of each edge of the reference element.
std::span<const std::pair<int, int>> element_edges(ElementType type);

}  // namespace cpart
