// Mesh-to-graph conversions (paper Section 2):
//   nodal graph — one vertex per mesh node, edges along element edges;
//   dual graph  — one vertex per element, edges between elements sharing an
//                 edge (2D) or a face (3D).
// The paper's partitioning algorithm operates on the nodal graph.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/csr_graph.hpp"
#include "mesh/mesh.hpp"

namespace cpart {

class ChunkedMeshReader;

/// Pull source of element connectivity: each call returns the next chunk of
/// concatenated node ids (a multiple of nodes_per_element long), an empty
/// span once exhausted. Both graph builders consume connectivity strictly
/// sequentially through this interface, so construction needs only one
/// chunk resident at a time — an in-core Mesh is just the one-chunk case.
using ElementChunkSource = std::function<std::span<const idx_t>()>;

/// Builds the (unweighted) nodal graph from streamed connectivity. Isolated
/// nodes (all incident elements eroded) become degree-0 vertices.
CsrGraph nodal_graph(idx_t num_nodes, ElementType type,
                     const ElementChunkSource& chunks);

/// Builds the dual graph (elements adjacent when sharing an edge in 2D, a
/// face in 3D) from streamed connectivity.
CsrGraph dual_graph(idx_t num_elements, ElementType type,
                    const ElementChunkSource& chunks);

/// Builds the (unweighted) nodal graph of the mesh.
CsrGraph nodal_graph(const Mesh& mesh);

/// Builds the dual graph of the mesh.
CsrGraph dual_graph(const Mesh& mesh);

/// Streaming builds over a chunked on-disk mesh: connectivity flows block
/// by block through the reader's bounded window; the mesh is never whole
/// in core (the graph, of course, is).
CsrGraph nodal_graph(ChunkedMeshReader& reader);
CsrGraph dual_graph(ChunkedMeshReader& reader);

/// Caches the nodal graph across the snapshots of one simulation sequence.
///
/// Rebuilding nodal_graph() every step is pure waste on the (common) steps
/// where no element eroded. The cache is keyed on (num_nodes, num_elements):
/// within one sequence node ids are stable and elements only ever disappear
/// (erosion is monotone), so equal counts imply the identical element set
/// and therefore the identical graph. Do NOT feed unrelated meshes through
/// one cache — two different meshes with equal counts would alias.
class NodalGraphCache {
 public:
  /// Returns the nodal graph of `mesh`, rebuilding only when the key
  /// changed. The reference stays valid until the next get() call.
  const CsrGraph& get(const Mesh& mesh);

  /// Increments every time get() actually rebuilt; lets dependents (halo
  /// send lists, partition-boundary structures) refresh exactly when the
  /// topology changed.
  std::uint64_t version() const { return version_; }

 private:
  CsrGraph graph_;
  idx_t num_nodes_ = kInvalidIndex;
  idx_t num_elements_ = kInvalidIndex;
  std::uint64_t version_ = 0;
};

/// Node index pairs of each edge of the reference element.
std::span<const std::pair<int, int>> element_edges(ElementType type);

}  // namespace cpart
