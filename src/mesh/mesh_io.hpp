// Text mesh I/O in a simple self-describing format, plus partition dumps.
//
// Format:
//   cpartmesh 1
//   etype <tri3|quad4|tet4|hex8>
//   nodes <N>
//   <x> <y> <z>          (N lines)
//   elements <M>
//   <n0> ... <n_{npe-1}>  (M lines)
#pragma once

#include <iosfwd>
#include <string>

#include "mesh/mesh.hpp"

namespace cpart {

void write_mesh(std::ostream& os, const Mesh& mesh);
void write_mesh_file(const std::string& path, const Mesh& mesh);

/// Parses the format above; throws InputError with a line-aware message on
/// malformed input.
Mesh read_mesh(std::istream& is);
Mesh read_mesh_file(const std::string& path);

}  // namespace cpart
