#include "mesh/surface.hpp"

#include <algorithm>
#include <unordered_map>

namespace cpart {

namespace {

/// Order-independent face key: sorted node ids packed into a 64-bit-ish
/// string key. Faces have at most 4 nodes.
struct FaceKey {
  std::array<idx_t, 4> ids{-1, -1, -1, -1};
  bool operator==(const FaceKey&) const = default;
};

struct FaceKeyHash {
  std::size_t operator()(const FaceKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (idx_t id : k.ids) {
      h ^= static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

FaceKey make_key(std::span<const idx_t> nodes) {
  FaceKey k;
  for (std::size_t i = 0; i < nodes.size(); ++i) k.ids[i] = nodes[i];
  std::sort(k.ids.begin(), k.ids.begin() + static_cast<std::ptrdiff_t>(nodes.size()));
  return k;
}

}  // namespace

Surface extract_surface(const Mesh& mesh) {
  const auto faces = element_faces(mesh.element_type());
  // First pass: count occurrences of each face key.
  std::unordered_map<FaceKey, int, FaceKeyHash> count;
  count.reserve(static_cast<std::size_t>(mesh.num_elements()) * faces.size());
  std::vector<idx_t> buf;
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (const auto& face : faces) {
      buf.clear();
      for (int local : face) buf.push_back(elem[static_cast<std::size_t>(local)]);
      ++count[make_key(buf)];
    }
  }
  // Second pass: collect faces seen exactly once.
  Surface surface;
  surface.is_contact_node.assign(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (std::size_t f = 0; f < faces.size(); ++f) {
      buf.clear();
      for (int local : faces[f]) {
        buf.push_back(elem[static_cast<std::size_t>(local)]);
      }
      if (count.at(make_key(buf)) != 1) continue;
      SurfaceFace sf;
      sf.element = e;
      sf.local_face = static_cast<int>(f);
      sf.nodes = buf;
      for (idx_t id : buf) {
        surface.is_contact_node[static_cast<std::size_t>(id)] = 1;
      }
      surface.faces.push_back(std::move(sf));
    }
  }
  for (idx_t i = 0; i < mesh.num_nodes(); ++i) {
    if (surface.is_contact_node[static_cast<std::size_t>(i)]) {
      surface.contact_nodes.push_back(i);
    }
  }
  return surface;
}

Surface filter_surface(const Surface& surface, std::span<const char> keep,
                       idx_t num_nodes) {
  require(keep.size() == surface.faces.size(),
          "filter_surface: mask size mismatch");
  Surface out;
  out.is_contact_node.assign(static_cast<std::size_t>(num_nodes), 0);
  for (std::size_t f = 0; f < surface.faces.size(); ++f) {
    if (!keep[f]) continue;
    out.faces.push_back(surface.faces[f]);
    for (idx_t id : surface.faces[f].nodes) {
      out.is_contact_node[static_cast<std::size_t>(id)] = 1;
    }
  }
  for (idx_t i = 0; i < num_nodes; ++i) {
    if (out.is_contact_node[static_cast<std::size_t>(i)]) {
      out.contact_nodes.push_back(i);
    }
  }
  return out;
}

BBox face_bbox(const Mesh& mesh, const SurfaceFace& face, real_t margin) {
  BBox box;
  for (idx_t id : face.nodes) box.expand(mesh.node(id));
  if (margin > 0) box.inflate(margin);
  return box;
}

}  // namespace cpart
