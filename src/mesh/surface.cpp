#include "mesh/surface.hpp"

#include <algorithm>
#include <unordered_map>

namespace cpart {

namespace {

/// Order-independent face key: sorted node ids packed into a 64-bit-ish
/// string key. Faces have at most 4 nodes.
struct FaceKey {
  std::array<idx_t, 4> ids{-1, -1, -1, -1};
  bool operator==(const FaceKey&) const = default;
};

struct FaceKeyHash {
  std::size_t operator()(const FaceKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (idx_t id : k.ids) {
      h ^= static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

FaceKey make_key(std::span<const idx_t> nodes) {
  FaceKey k;
  for (std::size_t i = 0; i < nodes.size(); ++i) k.ids[i] = nodes[i];
  std::sort(k.ids.begin(), k.ids.begin() + static_cast<std::ptrdiff_t>(nodes.size()));
  return k;
}

}  // namespace

Surface extract_surface(const Mesh& mesh) {
  const auto faces = element_faces(mesh.element_type());
  // First pass: count occurrences of each face key.
  std::unordered_map<FaceKey, int, FaceKeyHash> count;
  count.reserve(static_cast<std::size_t>(mesh.num_elements()) * faces.size());
  std::vector<idx_t> buf;
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (const auto& face : faces) {
      buf.clear();
      for (int local : face) buf.push_back(elem[static_cast<std::size_t>(local)]);
      ++count[make_key(buf)];
    }
  }
  // Second pass: collect faces seen exactly once.
  Surface surface;
  surface.is_contact_node.assign(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (std::size_t f = 0; f < faces.size(); ++f) {
      buf.clear();
      for (int local : faces[f]) {
        buf.push_back(elem[static_cast<std::size_t>(local)]);
      }
      if (count.at(make_key(buf)) != 1) continue;
      SurfaceFace sf;
      sf.element = e;
      sf.local_face = static_cast<int>(f);
      sf.nodes = buf;
      for (idx_t id : buf) {
        surface.is_contact_node[static_cast<std::size_t>(id)] = 1;
      }
      surface.faces.push_back(std::move(sf));
    }
  }
  for (idx_t i = 0; i < mesh.num_nodes(); ++i) {
    if (surface.is_contact_node[static_cast<std::size_t>(i)]) {
      surface.contact_nodes.push_back(i);
    }
  }
  return surface;
}

namespace {

/// Next face slot of `out`, reusing existing SurfaceFace objects (and their
/// node-vector capacity) up to the previous face count.
SurfaceFace& next_face(Surface& out, std::size_t& nf) {
  if (nf == out.faces.size()) out.faces.emplace_back();
  return out.faces[nf++];
}

void finish_contact_nodes(Surface& out, idx_t num_nodes) {
  out.contact_nodes.clear();
  for (idx_t i = 0; i < num_nodes; ++i) {
    if (out.is_contact_node[static_cast<std::size_t>(i)]) {
      out.contact_nodes.push_back(i);
    }
  }
}

}  // namespace

void extract_surface_into(const Mesh& mesh, SurfaceWorkspace& ws,
                          Surface& out) {
  const auto faces = element_faces(mesh.element_type());
  const std::size_t instances =
      static_cast<std::size_t>(mesh.num_elements()) * faces.size();
  // Table capacity: power of two, load factor <= 0.5. Never shrinks, so the
  // probe mask must come from the actual table size, not this call's need.
  std::size_t cap = 64;
  while (cap < 2 * instances) cap <<= 1;
  if (ws.keys_.size() < cap) {
    ws.keys_.resize(cap);
    ws.counts_.resize(cap);
  }
  const std::size_t mask = ws.keys_.size() - 1;
  std::fill(ws.counts_.begin(), ws.counts_.end(), 0);
  ws.slots_.resize(instances);

  auto face_key = [](std::span<const idx_t> elem,
                     const std::vector<int>& local) {
    FaceKey k;
    for (std::size_t i = 0; i < local.size(); ++i) {
      k.ids[i] = elem[static_cast<std::size_t>(local[i])];
    }
    std::sort(k.ids.begin(),
              k.ids.begin() + static_cast<std::ptrdiff_t>(local.size()));
    return k;
  };

  // First pass: count occurrences of each face key, memoizing each
  // instance's table slot.
  std::size_t inst = 0;
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (const auto& face : faces) {
      const FaceKey key = face_key(elem, face);
      std::size_t slot = FaceKeyHash{}(key)&mask;
      while (ws.counts_[slot] != 0 && ws.keys_[slot] != key.ids) {
        slot = (slot + 1) & mask;
      }
      if (ws.counts_[slot] == 0) ws.keys_[slot] = key.ids;
      ++ws.counts_[slot];
      ws.slots_[inst++] = static_cast<std::uint32_t>(slot);
    }
  }

  // Second pass: collect faces seen exactly once, in (element, face) order —
  // the same order extract_surface produces.
  out.is_contact_node.assign(static_cast<std::size_t>(mesh.num_nodes()), 0);
  std::size_t nf = 0;
  inst = 0;
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (std::size_t f = 0; f < faces.size(); ++f) {
      const std::size_t slot = ws.slots_[inst++];
      if (ws.counts_[slot] != 1) continue;
      SurfaceFace& sf = next_face(out, nf);
      sf.element = e;
      sf.local_face = static_cast<int>(f);
      sf.nodes.clear();
      for (int local : faces[f]) {
        const idx_t id = elem[static_cast<std::size_t>(local)];
        sf.nodes.push_back(id);
        out.is_contact_node[static_cast<std::size_t>(id)] = 1;
      }
    }
  }
  out.faces.resize(nf);
  finish_contact_nodes(out, mesh.num_nodes());
}

Surface filter_surface(const Surface& surface, std::span<const char> keep,
                       idx_t num_nodes) {
  require(keep.size() == surface.faces.size(),
          "filter_surface: mask size mismatch");
  Surface out;
  out.is_contact_node.assign(static_cast<std::size_t>(num_nodes), 0);
  for (std::size_t f = 0; f < surface.faces.size(); ++f) {
    if (!keep[f]) continue;
    out.faces.push_back(surface.faces[f]);
    for (idx_t id : surface.faces[f].nodes) {
      out.is_contact_node[static_cast<std::size_t>(id)] = 1;
    }
  }
  for (idx_t i = 0; i < num_nodes; ++i) {
    if (out.is_contact_node[static_cast<std::size_t>(i)]) {
      out.contact_nodes.push_back(i);
    }
  }
  return out;
}

void filter_surface_into(const Surface& surface, std::span<const char> keep,
                         idx_t num_nodes, Surface& out) {
  require(keep.size() == surface.faces.size(),
          "filter_surface_into: mask size mismatch");
  require(&out != &surface, "filter_surface_into: out aliases input");
  out.is_contact_node.assign(static_cast<std::size_t>(num_nodes), 0);
  std::size_t nf = 0;
  for (std::size_t f = 0; f < surface.faces.size(); ++f) {
    if (!keep[f]) continue;
    const SurfaceFace& in = surface.faces[f];
    SurfaceFace& sf = next_face(out, nf);
    sf.element = in.element;
    sf.local_face = in.local_face;
    sf.nodes.assign(in.nodes.begin(), in.nodes.end());
    for (idx_t id : in.nodes) {
      out.is_contact_node[static_cast<std::size_t>(id)] = 1;
    }
  }
  out.faces.resize(nf);
  finish_contact_nodes(out, num_nodes);
}

BBox face_bbox(const Mesh& mesh, const SurfaceFace& face, real_t margin) {
  BBox box;
  for (idx_t id : face.nodes) box.expand(mesh.node(id));
  if (margin > 0) box.inflate(margin);
  return box;
}

}  // namespace cpart
