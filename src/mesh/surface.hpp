// Boundary-surface extraction and contact-node identification.
//
// A face that belongs to exactly one element is a boundary face; in
// contact/impact simulations the boundary faces are the *surface elements*
// searched for contact, and the nodes they touch are the *contact nodes*
// (paper Section 2 terminology). Erosion exposes interior faces, so the
// surface must be re-extracted per snapshot.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"

namespace cpart {

struct SurfaceFace {
  idx_t element = kInvalidIndex;  // owning element
  int local_face = -1;            // face index within the element
  std::vector<idx_t> nodes;       // global node ids of the face
};

struct Surface {
  std::vector<SurfaceFace> faces;
  /// Sorted unique node ids appearing on any boundary face.
  std::vector<idx_t> contact_nodes;
  /// Size num_nodes; 1 when the node is a contact node.
  std::vector<char> is_contact_node;

  idx_t num_faces() const { return to_idx(faces.size()); }
  idx_t num_contact_nodes() const { return to_idx(contact_nodes.size()); }
};

/// Extracts all boundary faces of the mesh (faces referenced by exactly one
/// element).
Surface extract_surface(const Mesh& mesh);

/// Reusable scratch for extract_surface_into: a flat open-addressing
/// face-occurrence table (power-of-two capacity, linear probing) plus a
/// per-face-instance slot memo so the second pass is an array scan instead
/// of a re-hash. Buffers grow to the largest mesh seen and never shrink, so
/// steady-state re-extraction allocates nothing.
class SurfaceWorkspace {
 public:
  SurfaceWorkspace() = default;

 private:
  friend void extract_surface_into(const Mesh& mesh, SurfaceWorkspace& ws,
                                   Surface& out);
  std::vector<std::array<idx_t, 4>> keys_;
  std::vector<std::int32_t> counts_;
  std::vector<std::uint32_t> slots_;  // face instance → table slot
};

/// extract_surface() writing into `out` (whose storage is reused) with all
/// scratch drawn from `ws`. The result — face order, node order, contact
/// arrays — is identical to extract_surface(mesh).
void extract_surface_into(const Mesh& mesh, SurfaceWorkspace& ws,
                          Surface& out);

/// Restricts a surface to the faces with keep[f] != 0, rebuilding the
/// contact-node arrays. Models the application designating which boundary
/// faces are contact surfaces (paper Section 2: "we assume that these
/// elements have been identified as such by the application").
Surface filter_surface(const Surface& surface, std::span<const char> keep,
                       idx_t num_nodes);

/// filter_surface() writing into `out`, whose storage (including per-face
/// node vectors) is reused. `out` must not alias `surface`. The result is
/// identical to filter_surface(surface, keep, num_nodes).
void filter_surface_into(const Surface& surface, std::span<const char> keep,
                         idx_t num_nodes, Surface& out);

/// Bounding box of one surface face, inflated by `margin` (contact
/// tolerance).
BBox face_bbox(const Mesh& mesh, const SurfaceFace& face, real_t margin = 0);

}  // namespace cpart
