// Legacy-VTK (ASCII) export of meshes with optional per-node and
// per-element scalar fields — partition ids, body ids, contact flags —
// viewable in ParaView/VisIt. Output only: the library's native format is
// mesh_io.hpp.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "mesh/mesh.hpp"

namespace cpart {

struct VtkScalarField {
  std::string name;
  std::span<const idx_t> values;  // one per node or per element
};

/// Writes an unstructured-grid VTK file. `node_fields` sizes must equal
/// num_nodes, `element_fields` sizes num_elements.
void write_vtk(std::ostream& os, const Mesh& mesh,
               std::span<const VtkScalarField> node_fields = {},
               std::span<const VtkScalarField> element_fields = {});

void write_vtk_file(const std::string& path, const Mesh& mesh,
                    std::span<const VtkScalarField> node_fields = {},
                    std::span<const VtkScalarField> element_fields = {});

}  // namespace cpart
