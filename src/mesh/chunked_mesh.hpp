// Chunked on-disk mesh format with bounded-memory streaming access.
//
// Meshes an order of magnitude beyond RAM-comfortable never materialize as
// a whole Mesh: the writer streams node/element blocks to disk as they are
// generated, and ChunkedMeshReader loads blocks on demand through a
// fixed-size LRU window whose resident-byte accounting is part of the API
// (benches and CI assert peak residency against the configured limit).
//
// Format (version 1, little-endian; varints are the shared LEB128 codec of
// util/varint.hpp, the same one the tree wire format and the label-batch
// blobs use):
//   magic "cpmk" (4 bytes) | version u8
//   varint etype_code (0=tri3, 1=quad4, 2=tet4, 3=hex8)
//   varint num_nodes | varint num_elements
//   varint nodes_per_block | varint elems_per_block
//   node blocks, ascending:    varint payload_bytes,
//                              payload = count * 3 raw f64 (x, y, z)
//   element blocks, ascending: varint payload_bytes,
//                              payload = count * npe varint node ids
// The final block of each section may be partial; nothing follows the last
// element block. Decoding never trusts the input: bad magic/version,
// truncated streams, payload-size mismatches, out-of-range node ids and
// trailing garbage all throw InputError.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "mesh/mesh.hpp"

namespace cpart {

/// Streams one mesh to the chunked format. Nodes must be added first (the
/// node section precedes the element section on disk), then elements;
/// finish() validates the declared counts were hit exactly. The stream
/// lands under `path + ".tmp"` and is sync+renamed into place by finish()
/// (util/atomic_file.hpp), so the final path either holds a complete mesh
/// or nothing — a crash mid-stream never leaves a torn file there.
class ChunkedMeshWriter {
 public:
  ChunkedMeshWriter(const std::string& path, ElementType type,
                    idx_t num_nodes, idx_t num_elements,
                    idx_t nodes_per_block, idx_t elems_per_block);
  ~ChunkedMeshWriter();

  ChunkedMeshWriter(const ChunkedMeshWriter&) = delete;
  ChunkedMeshWriter& operator=(const ChunkedMeshWriter&) = delete;

  void add_node(Vec3 p);
  /// `conn` is nodes_per_element(type) node ids.
  void add_element(std::span<const idx_t> conn);
  /// Flushes the final partial block and closes the file. Must be called
  /// exactly once; throws InputError when counts do not match the header.
  void finish();

 private:
  void flush_node_block();
  void flush_element_block();

  std::ofstream out_;
  std::string path_;
  ElementType type_;
  idx_t npe_;
  idx_t num_nodes_, num_elements_;
  idx_t nodes_per_block_, elems_per_block_;
  idx_t nodes_added_ = 0, elements_added_ = 0;
  std::string node_buf_, elem_buf_;  // current partial block payloads
  idx_t buf_nodes_ = 0, buf_elems_ = 0;
  bool finished_ = false;
};

/// Convenience: writes an in-core mesh to the chunked format (tests, tools,
/// format migration).
void write_chunked_mesh(const std::string& path, const Mesh& mesh,
                        idx_t nodes_per_block, idx_t elems_per_block);

/// Bounded-memory random/streaming access to a chunked mesh file. Blocks
/// decode on demand into an LRU window of at most `max_resident_blocks`
/// decoded blocks (node and element blocks count against the same window);
/// peak residency is tracked so callers can assert the bound held.
class ChunkedMeshReader {
 public:
  struct Options {
    /// Decoded blocks (node + element combined) kept in memory at once.
    idx_t max_resident_blocks = 4;
  };

  explicit ChunkedMeshReader(const std::string& path)
      : ChunkedMeshReader(path, Options{}) {}
  ChunkedMeshReader(const std::string& path, Options options);

  ElementType element_type() const { return type_; }
  int nodes_per_element() const { return npe_; }
  idx_t num_nodes() const { return num_nodes_; }
  idx_t num_elements() const { return num_elements_; }
  idx_t nodes_per_block() const { return nodes_per_block_; }
  idx_t elems_per_block() const { return elems_per_block_; }
  idx_t num_node_blocks() const { return to_idx(node_blocks_.size()); }
  idx_t num_element_blocks() const { return to_idx(elem_blocks_.size()); }

  /// First node id in node block b; the block holds
  /// min(nodes_per_block, num_nodes - first) nodes.
  idx_t node_block_first(idx_t b) const { return b * nodes_per_block_; }
  /// First element id in element block b.
  idx_t element_block_first(idx_t b) const { return b * elems_per_block_; }

  /// Decoded coordinates of node block b. The span stays valid until the
  /// block is evicted — i.e. at least until max_resident_blocks - 1 other
  /// blocks have been touched since.
  std::span<const Vec3> node_block(idx_t b);
  /// Decoded connectivity of element block b: count * npe node ids.
  std::span<const idx_t> element_block(idx_t b);

  /// Random node access through the window (pulls the owning block).
  Vec3 node(idx_t i);

  /// Window accounting: decoded payload bytes currently resident, the high
  /// water mark over the reader's lifetime, and the configured ceiling
  /// (max_resident_blocks full blocks of the larger kind). The invariant
  /// peak_resident_bytes() <= window_limit_bytes() is what the large-mesh
  /// CI smoke asserts.
  std::size_t resident_bytes() const { return resident_bytes_; }
  std::size_t peak_resident_bytes() const { return peak_resident_bytes_; }
  std::size_t window_limit_bytes() const;

  /// Materializes the whole mesh in core (tests and small meshes only).
  Mesh load_mesh();

 private:
  struct BlockRef {
    std::uint64_t offset = 0;        // payload start
    std::uint64_t payload_bytes = 0;
  };
  struct Resident {
    bool is_node = false;
    idx_t index = kInvalidIndex;
    std::vector<Vec3> coords;
    std::vector<idx_t> conn;
    std::uint64_t last_use = 0;
    std::size_t bytes() const {
      return coords.size() * sizeof(Vec3) + conn.size() * sizeof(idx_t);
    }
  };

  Resident& fetch(bool is_node, idx_t index);
  std::string read_payload(const BlockRef& ref, const char* what);

  std::ifstream in_;
  std::string path_;
  ElementType type_ = ElementType::kHex8;
  int npe_ = 8;
  idx_t num_nodes_ = 0, num_elements_ = 0;
  idx_t nodes_per_block_ = 0, elems_per_block_ = 0;
  std::vector<BlockRef> node_blocks_, elem_blocks_;
  std::vector<Resident> window_;
  idx_t max_resident_blocks_;
  std::uint64_t use_tick_ = 0;
  std::size_t resident_bytes_ = 0;
  std::size_t peak_resident_bytes_ = 0;
};

/// Spec of the streamed large impact scene: a structured hex8 target plate
/// of nx x ny x nz cells under a cubic hex8 impactor of `impactor_cells`
/// cells per side, hovering over the plate center. Node coordinates and
/// connectivity are closed-form, so generation streams straight into a
/// ChunkedMeshWriter without ever holding the mesh in core.
struct LargeImpactSpec {
  idx_t nx = 100, ny = 100, nz = 100;
  /// Impactor cube side in cells; 0 derives max(nx / 5, 1).
  idx_t impactor_cells = 0;
  idx_t nodes_per_block = 8192;
  idx_t elems_per_block = 8192;

  /// Smallest cubic plate whose element count alone reaches
  /// `min_elements` (the impactor rides on top of that).
  static LargeImpactSpec for_elements(idx_t min_elements);
};

struct ChunkedMeshInfo {
  idx_t num_nodes = 0;
  idx_t num_elements = 0;
};

/// Writes the large impact scene directly to the chunked on-disk format.
ChunkedMeshInfo make_large_impact(const std::string& path,
                                  const LargeImpactSpec& spec);

}  // namespace cpart
