#include "mesh/mesh_topology.hpp"

#include <algorithm>

namespace cpart {

namespace {

/// One face occurrence for neighbor pairing: the sorted node tuple is the
/// conforming-mesh face identity (two elements share a face exactly when
/// they emit the same node set).
struct FaceEntry {
  std::array<idx_t, 4> sorted{kInvalidIndex, kInvalidIndex, kInvalidIndex,
                              kInvalidIndex};
  idx_t element = kInvalidIndex;
  std::int32_t local_face = 0;
};

}  // namespace

MeshTopology::MeshTopology(const Mesh& mesh) : mesh_(&mesh) {
  const auto faces = element_faces(mesh.element_type());
  fpe_ = static_cast<int>(faces.size());
  npf_ = static_cast<int>(faces.front().size());
  const idx_t ne = mesh.num_elements();
  const idx_t nn = mesh.num_nodes();

  // Face neighbors: sort all (element, local_face) occurrences by their
  // sorted node tuple; adjacent equal tuples are the two sides of one
  // interior face.
  std::vector<FaceEntry> entries(static_cast<std::size_t>(ne) *
                                 static_cast<std::size_t>(fpe_));
  for (idx_t e = 0; e < ne; ++e) {
    const auto elem = mesh.element(e);
    for (int lf = 0; lf < fpe_; ++lf) {
      FaceEntry& fe = entries[static_cast<std::size_t>(e) *
                                  static_cast<std::size_t>(fpe_) +
                              static_cast<std::size_t>(lf)];
      fe.element = e;
      fe.local_face = lf;
      const auto& local = faces[static_cast<std::size_t>(lf)];
      for (std::size_t i = 0; i < local.size(); ++i) {
        fe.sorted[i] = elem[static_cast<std::size_t>(local[i])];
      }
      std::sort(fe.sorted.begin(),
                fe.sorted.begin() + static_cast<std::ptrdiff_t>(local.size()));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const FaceEntry& a, const FaceEntry& b) {
              if (a.sorted != b.sorted) return a.sorted < b.sorted;
              if (a.element != b.element) return a.element < b.element;
              return a.local_face < b.local_face;
            });
  face_neighbor_.assign(entries.size(), kInvalidIndex);
  for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
    const FaceEntry& a = entries[i];
    const FaceEntry& b = entries[i + 1];
    if (a.sorted != b.sorted) continue;
    face_neighbor_[static_cast<std::size_t>(a.element) *
                       static_cast<std::size_t>(fpe_) +
                   static_cast<std::size_t>(a.local_face)] = b.element;
    face_neighbor_[static_cast<std::size_t>(b.element) *
                       static_cast<std::size_t>(fpe_) +
                   static_cast<std::size_t>(b.local_face)] = a.element;
  }

  // Node -> element incidence (CSR, elements ascending per node because the
  // fill loop runs in element order).
  elem_offsets_.assign(static_cast<std::size_t>(nn) + 1, 0);
  for (idx_t e = 0; e < ne; ++e) {
    for (idx_t v : mesh.element(e)) {
      ++elem_offsets_[static_cast<std::size_t>(v) + 1];
    }
  }
  for (std::size_t v = 0; v < static_cast<std::size_t>(nn); ++v) {
    elem_offsets_[v + 1] += elem_offsets_[v];
  }
  elem_incidence_.resize(static_cast<std::size_t>(elem_offsets_.back()));
  std::vector<idx_t> cursor(elem_offsets_.begin(), elem_offsets_.end() - 1);
  for (idx_t e = 0; e < ne; ++e) {
    for (idx_t v : mesh.element(e)) {
      elem_incidence_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(v)]++)] = e;
    }
  }
}

int MeshTopology::face_nodes(idx_t e, int lf, std::array<idx_t, 4>& out) const {
  const auto faces = element_faces(mesh_->element_type());
  const auto& local = faces[static_cast<std::size_t>(lf)];
  const auto elem = mesh_->element(e);
  for (std::size_t i = 0; i < local.size(); ++i) {
    out[i] = elem[static_cast<std::size_t>(local[i])];
  }
  return static_cast<int>(local.size());
}

}  // namespace cpart
