// Immutable topology index of a mesh — the fixed substrate of the
// rank-owned distributed state.
//
// The centralized pipelines re-derive the boundary surface from a fresh,
// element-compacted snapshot mesh every step. The distributed path cannot:
// rank-local surface extraction needs adjacency that is stable across
// erosion and ownership migration. MeshTopology indexes the *initial* mesh
// once — face-to-face neighbors (an interior face knows the element on its
// other side) and node-to-element incidence — and never changes afterwards;
// erosion is a per-step predicate over elements, ownership a label array
// over nodes. Face identity is the stable key
// element * faces_per_element + local_face, identical on every rank that
// derives the face, which is what lets shipped face records match up
// without a central face numbering.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "mesh/mesh.hpp"

namespace cpart {

class MeshTopology {
 public:
  /// Indexes `mesh` (non-owning: the mesh must outlive the topology and
  /// must not change elements afterwards — use the initial, un-eroded mesh).
  explicit MeshTopology(const Mesh& mesh);

  const Mesh& mesh() const { return *mesh_; }
  idx_t num_nodes() const { return mesh_->num_nodes(); }
  idx_t num_elements() const { return mesh_->num_elements(); }
  int faces_per_element() const { return fpe_; }
  int nodes_per_face() const { return npf_; }

  /// The element sharing face (e, lf), or kInvalidIndex on the boundary.
  idx_t face_neighbor(idx_t e, int lf) const {
    return face_neighbor_[static_cast<std::size_t>(e) *
                              static_cast<std::size_t>(fpe_) +
                          static_cast<std::size_t>(lf)];
  }

  /// Global node ids of face (e, lf) in the element_faces() local order —
  /// the same order extract_surface emits. Returns the node count.
  int face_nodes(idx_t e, int lf, std::array<idx_t, 4>& out) const;

  /// Stable global id of face (e, lf).
  idx_t face_key(idx_t e, int lf) const {
    return e * static_cast<idx_t>(fpe_) + static_cast<idx_t>(lf);
  }

  /// Elements incident to node v, ascending element id.
  std::span<const idx_t> elements_of(idx_t v) const {
    const auto b = static_cast<std::size_t>(
        elem_offsets_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(
        elem_offsets_[static_cast<std::size_t>(v) + 1]);
    return {elem_incidence_.data() + b, e - b};
  }

 private:
  const Mesh* mesh_;
  int fpe_ = 0;
  int npf_ = 0;
  std::vector<idx_t> face_neighbor_;   // num_elements * fpe
  std::vector<idx_t> elem_offsets_;    // num_nodes + 1 (CSR)
  std::vector<idx_t> elem_incidence_;
};

}  // namespace cpart
