#include "mesh/chunked_mesh.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/atomic_file.hpp"
#include "util/varint.hpp"

namespace cpart {

namespace {

constexpr char kMagic[4] = {'c', 'p', 'm', 'k'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kF64Bytes = 8;
constexpr std::size_t kNodeBytes = 3 * kF64Bytes;

void append_f64(std::string& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (unsigned i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

double read_f64(const char* p) {
  std::uint64_t bits = 0;
  for (unsigned i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
            << (8 * i);
  }
  return std::bit_cast<double>(bits);
}

std::uint64_t etype_code(ElementType type) {
  switch (type) {
    case ElementType::kTri3: return 0;
    case ElementType::kQuad4: return 1;
    case ElementType::kTet4: return 2;
    case ElementType::kHex8: return 3;
  }
  return 0;
}

ElementType etype_from_code(std::uint64_t code) {
  switch (code) {
    case 0: return ElementType::kTri3;
    case 1: return ElementType::kQuad4;
    case 2: return ElementType::kTet4;
    case 3: return ElementType::kHex8;
  }
  throw InputError("chunked mesh: unknown element-type code " +
                   std::to_string(code));
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw InputError("chunked mesh " + path + ": " + what);
}

idx_t checked_idx(std::uint64_t v, const std::string& path, const char* what) {
  if (v > static_cast<std::uint64_t>(std::numeric_limits<idx_t>::max())) {
    fail(path, std::string(what) + " out of idx_t range");
  }
  return static_cast<idx_t>(v);
}

}  // namespace

ChunkedMeshWriter::ChunkedMeshWriter(const std::string& path, ElementType type,
                                     idx_t num_nodes, idx_t num_elements,
                                     idx_t nodes_per_block,
                                     idx_t elems_per_block)
    : out_(path + ".tmp", std::ios::binary | std::ios::trunc),
      path_(path),
      type_(type),
      npe_(nodes_per_element(type)),
      num_nodes_(num_nodes),
      num_elements_(num_elements),
      nodes_per_block_(nodes_per_block),
      elems_per_block_(elems_per_block) {
  require(static_cast<bool>(out_), "chunked mesh " + path + ": cannot open");
  require(num_nodes >= 0 && num_elements >= 0,
          "chunked mesh: negative counts");
  require(nodes_per_block >= 1 && elems_per_block >= 1,
          "chunked mesh: block sizes must be >= 1");
  std::string header(kMagic, sizeof(kMagic));
  header.push_back(static_cast<char>(kVersion));
  append_varint(header, etype_code(type));
  append_varint(header, static_cast<std::uint64_t>(num_nodes));
  append_varint(header, static_cast<std::uint64_t>(num_elements));
  append_varint(header, static_cast<std::uint64_t>(nodes_per_block));
  append_varint(header, static_cast<std::uint64_t>(elems_per_block));
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
}

ChunkedMeshWriter::~ChunkedMeshWriter() {
  // An abandoned writer (exception before finish()) leaves the final path
  // untouched; drop the partial temp file best-effort.
  if (!finished_) {
    out_.close();
    FileShim::real().remove_file(path_ + ".tmp");
  }
}

void ChunkedMeshWriter::flush_node_block() {
  if (buf_nodes_ == 0) return;
  std::string len;
  append_varint(len, static_cast<std::uint64_t>(node_buf_.size()));
  out_.write(len.data(), static_cast<std::streamsize>(len.size()));
  out_.write(node_buf_.data(), static_cast<std::streamsize>(node_buf_.size()));
  node_buf_.clear();
  buf_nodes_ = 0;
}

void ChunkedMeshWriter::flush_element_block() {
  if (buf_elems_ == 0) return;
  std::string len;
  append_varint(len, static_cast<std::uint64_t>(elem_buf_.size()));
  out_.write(len.data(), static_cast<std::streamsize>(len.size()));
  out_.write(elem_buf_.data(), static_cast<std::streamsize>(elem_buf_.size()));
  elem_buf_.clear();
  buf_elems_ = 0;
}

void ChunkedMeshWriter::add_node(Vec3 p) {
  require(!finished_ && elements_added_ == 0 && buf_elems_ == 0,
          "chunked mesh: nodes must precede elements");
  require(nodes_added_ < num_nodes_, "chunked mesh: too many nodes");
  append_f64(node_buf_, p.x);
  append_f64(node_buf_, p.y);
  append_f64(node_buf_, p.z);
  ++nodes_added_;
  if (++buf_nodes_ == nodes_per_block_) flush_node_block();
}

void ChunkedMeshWriter::add_element(std::span<const idx_t> conn) {
  require(!finished_, "chunked mesh: writer already finished");
  require(to_idx(conn.size()) == npe_,
          "chunked mesh: element arity mismatch");
  if (elements_added_ == 0) {
    require(nodes_added_ == num_nodes_,
            "chunked mesh: node count mismatch before first element");
    flush_node_block();
  }
  require(elements_added_ < num_elements_, "chunked mesh: too many elements");
  for (idx_t id : conn) {
    require(id >= 0 && id < num_nodes_,
            "chunked mesh: element references node out of range");
    append_varint(elem_buf_, static_cast<std::uint64_t>(id));
  }
  ++elements_added_;
  if (++buf_elems_ == elems_per_block_) flush_element_block();
}

void ChunkedMeshWriter::finish() {
  require(!finished_, "chunked mesh: finish() called twice");
  require(nodes_added_ == num_nodes_,
          "chunked mesh: node count mismatch at finish");
  require(elements_added_ == num_elements_,
          "chunked mesh: element count mismatch at finish");
  flush_node_block();
  flush_element_block();
  out_.flush();
  require(static_cast<bool>(out_), "chunked mesh " + path_ + ": write failed");
  out_.close();
  // Durable commit: the file streamed under a temp name; sync + rename make
  // it appear at the final path all-or-nothing, so a crash mid-stream (or
  // mid-finish) never leaves a torn mesh where a reader expects one.
  require(atomic_finalize_file(path_ + ".tmp", path_),
          "chunked mesh " + path_ + ": atomic finalize failed");
  finished_ = true;
}

void write_chunked_mesh(const std::string& path, const Mesh& mesh,
                        idx_t nodes_per_block, idx_t elems_per_block) {
  ChunkedMeshWriter w(path, mesh.element_type(), mesh.num_nodes(),
                      mesh.num_elements(), nodes_per_block, elems_per_block);
  for (idx_t i = 0; i < mesh.num_nodes(); ++i) w.add_node(mesh.node(i));
  for (idx_t e = 0; e < mesh.num_elements(); ++e) w.add_element(mesh.element(e));
  w.finish();
}

ChunkedMeshReader::ChunkedMeshReader(const std::string& path, Options options)
    : in_(path, std::ios::binary),
      path_(path),
      max_resident_blocks_(options.max_resident_blocks) {
  if (!in_) fail(path_, "cannot open");
  require(max_resident_blocks_ >= 1,
          "chunked mesh: max_resident_blocks must be >= 1");

  in_.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in_.tellg());
  in_.seekg(0, std::ios::beg);

  // Parse the fixed header from a small prefix read (its varints cannot
  // exceed 4 + 1 + 5 * 10 bytes).
  std::string prefix(std::min<std::uint64_t>(file_size, 64), '\0');
  in_.read(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  if (prefix.size() < sizeof(kMagic) + 1 ||
      std::memcmp(prefix.data(), kMagic, sizeof(kMagic)) != 0) {
    fail(path_, "bad magic");
  }
  const auto version = static_cast<std::uint8_t>(prefix[4]);
  if (version != kVersion) {
    fail(path_, "unsupported version " + std::to_string(version));
  }
  std::size_t pos = 5;
  std::uint64_t code = 0, nn = 0, ne = 0, npb = 0, epb = 0;
  if (!read_varint(prefix, pos, code) || !read_varint(prefix, pos, nn) ||
      !read_varint(prefix, pos, ne) || !read_varint(prefix, pos, npb) ||
      !read_varint(prefix, pos, epb)) {
    fail(path_, "truncated header");
  }
  type_ = etype_from_code(code);
  npe_ = cpart::nodes_per_element(type_);
  num_nodes_ = checked_idx(nn, path_, "node count");
  num_elements_ = checked_idx(ne, path_, "element count");
  if (npb < 1 || epb < 1) fail(path_, "block sizes must be >= 1");
  nodes_per_block_ = checked_idx(npb, path_, "nodes_per_block");
  elems_per_block_ = checked_idx(epb, path_, "elems_per_block");

  // Scan the block headers (seeking over payloads) to build the offset
  // index; the scan touches ceil(N/B) + ceil(M/B) varints, never a payload.
  std::uint64_t offset = pos;
  const idx_t n_node_blocks =
      num_nodes_ == 0 ? 0 : ceil_div(num_nodes_, nodes_per_block_);
  const idx_t n_elem_blocks =
      num_elements_ == 0 ? 0 : ceil_div(num_elements_, elems_per_block_);
  node_blocks_.reserve(static_cast<std::size_t>(n_node_blocks));
  elem_blocks_.reserve(static_cast<std::size_t>(n_elem_blocks));
  for (idx_t b = 0; b < n_node_blocks + n_elem_blocks; ++b) {
    const bool is_node = b < n_node_blocks;
    if (offset >= file_size) fail(path_, "truncated block index");
    std::string head(std::min<std::uint64_t>(file_size - offset, 10), '\0');
    in_.seekg(static_cast<std::streamoff>(offset));
    in_.read(head.data(), static_cast<std::streamsize>(head.size()));
    std::size_t hpos = 0;
    std::uint64_t payload = 0;
    if (!read_varint(head, hpos, payload)) fail(path_, "bad block length");
    offset += hpos;
    if (offset + payload > file_size) fail(path_, "truncated block payload");
    BlockRef ref{offset, payload};
    if (is_node) {
      const idx_t first = to_idx(node_blocks_.size()) * nodes_per_block_;
      const idx_t count = std::min(nodes_per_block_, num_nodes_ - first);
      if (payload != static_cast<std::uint64_t>(count) * kNodeBytes) {
        fail(path_, "node block payload size mismatch");
      }
      node_blocks_.push_back(ref);
    } else {
      elem_blocks_.push_back(ref);
    }
    offset += payload;
  }
  if (offset != file_size) fail(path_, "trailing garbage after last block");
  window_.reserve(static_cast<std::size_t>(max_resident_blocks_));
}

std::string ChunkedMeshReader::read_payload(const BlockRef& ref,
                                            const char* what) {
  std::string payload(static_cast<std::size_t>(ref.payload_bytes), '\0');
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(ref.offset));
  in_.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in_) fail(path_, std::string("cannot read ") + what);
  return payload;
}

ChunkedMeshReader::Resident& ChunkedMeshReader::fetch(bool is_node,
                                                      idx_t index) {
  ++use_tick_;
  for (auto& r : window_) {
    if (r.is_node == is_node && r.index == index) {
      r.last_use = use_tick_;
      return r;
    }
  }
  Resident* slot = nullptr;
  if (to_idx(window_.size()) < max_resident_blocks_) {
    slot = &window_.emplace_back();
  } else {
    slot = &*std::min_element(
        window_.begin(), window_.end(),
        [](const Resident& a, const Resident& b) {
          return a.last_use < b.last_use;
        });
    resident_bytes_ -= slot->bytes();
    slot->coords.clear();
    slot->conn.clear();
  }
  slot->is_node = is_node;
  slot->index = index;
  slot->last_use = use_tick_;
  if (is_node) {
    const BlockRef& ref = node_blocks_[static_cast<std::size_t>(index)];
    const std::string payload = read_payload(ref, "node block");
    const std::size_t count = payload.size() / kNodeBytes;
    slot->coords.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const char* p = payload.data() + i * kNodeBytes;
      slot->coords[i] = Vec3{read_f64(p), read_f64(p + kF64Bytes),
                             read_f64(p + 2 * kF64Bytes)};
    }
  } else {
    const BlockRef& ref = elem_blocks_[static_cast<std::size_t>(index)];
    const std::string payload = read_payload(ref, "element block");
    const idx_t first = index * elems_per_block_;
    const idx_t count = std::min(elems_per_block_, num_elements_ - first);
    const std::size_t ids =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(npe_);
    slot->conn.resize(ids);
    std::size_t pos = 0;
    for (std::size_t i = 0; i < ids; ++i) {
      std::uint64_t id = 0;
      if (!read_varint(payload, pos, id)) {
        fail(path_, "truncated element connectivity");
      }
      if (id >= static_cast<std::uint64_t>(num_nodes_)) {
        fail(path_, "element references node out of range");
      }
      slot->conn[i] = static_cast<idx_t>(id);
    }
    if (pos != payload.size()) {
      fail(path_, "element block payload size mismatch");
    }
  }
  resident_bytes_ += slot->bytes();
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
  return *slot;
}

std::span<const Vec3> ChunkedMeshReader::node_block(idx_t b) {
  require(b >= 0 && b < num_node_blocks(),
          "chunked mesh: node block index out of range");
  return fetch(true, b).coords;
}

std::span<const idx_t> ChunkedMeshReader::element_block(idx_t b) {
  require(b >= 0 && b < num_element_blocks(),
          "chunked mesh: element block index out of range");
  return fetch(false, b).conn;
}

Vec3 ChunkedMeshReader::node(idx_t i) {
  require(i >= 0 && i < num_nodes_, "chunked mesh: node id out of range");
  const idx_t b = i / nodes_per_block_;
  return node_block(b)[static_cast<std::size_t>(i % nodes_per_block_)];
}

std::size_t ChunkedMeshReader::window_limit_bytes() const {
  const std::size_t node_bytes =
      static_cast<std::size_t>(nodes_per_block_) * sizeof(Vec3);
  const std::size_t elem_bytes = static_cast<std::size_t>(elems_per_block_) *
                                 static_cast<std::size_t>(npe_) *
                                 sizeof(idx_t);
  return static_cast<std::size_t>(max_resident_blocks_) *
         std::max(node_bytes, elem_bytes);
}

Mesh ChunkedMeshReader::load_mesh() {
  std::vector<Vec3> nodes;
  nodes.reserve(static_cast<std::size_t>(num_nodes_));
  for (idx_t b = 0; b < num_node_blocks(); ++b) {
    const auto block = node_block(b);
    nodes.insert(nodes.end(), block.begin(), block.end());
  }
  std::vector<idx_t> conn;
  conn.reserve(static_cast<std::size_t>(num_elements_) *
               static_cast<std::size_t>(npe_));
  for (idx_t b = 0; b < num_element_blocks(); ++b) {
    const auto block = element_block(b);
    conn.insert(conn.end(), block.begin(), block.end());
  }
  return Mesh(type_, std::move(nodes), std::move(conn));
}

LargeImpactSpec LargeImpactSpec::for_elements(idx_t min_elements) {
  LargeImpactSpec spec;
  const double side = std::cbrt(static_cast<double>(std::max<idx_t>(
      min_elements, 1)));
  const idx_t s = std::max<idx_t>(1, static_cast<idx_t>(std::ceil(side)));
  spec.nx = spec.ny = spec.nz = s;
  return spec;
}

ChunkedMeshInfo make_large_impact(const std::string& path,
                                  const LargeImpactSpec& spec) {
  require(spec.nx >= 1 && spec.ny >= 1 && spec.nz >= 1,
          "make_large_impact: bad plate cell counts");
  const idx_t m = spec.impactor_cells > 0 ? spec.impactor_cells
                                          : std::max<idx_t>(spec.nx / 5, 1);
  // Unit cell size: the plate spans [0,nx]x[0,ny]x[0,nz]; the impactor cube
  // hovers half a cell above the plate center.
  const real_t gap = 0.5;
  const real_t ix0 = (static_cast<real_t>(spec.nx) - static_cast<real_t>(m)) / 2;
  const real_t iy0 = (static_cast<real_t>(spec.ny) - static_cast<real_t>(m)) / 2;
  const real_t iz0 = static_cast<real_t>(spec.nz) + gap;

  const std::uint64_t plate_nodes = static_cast<std::uint64_t>(spec.nx + 1) *
                                    static_cast<std::uint64_t>(spec.ny + 1) *
                                    static_cast<std::uint64_t>(spec.nz + 1);
  const std::uint64_t impactor_nodes = static_cast<std::uint64_t>(m + 1) *
                                       static_cast<std::uint64_t>(m + 1) *
                                       static_cast<std::uint64_t>(m + 1);
  const std::uint64_t plate_elems = static_cast<std::uint64_t>(spec.nx) *
                                    static_cast<std::uint64_t>(spec.ny) *
                                    static_cast<std::uint64_t>(spec.nz);
  const std::uint64_t impactor_elems = static_cast<std::uint64_t>(m) *
                                       static_cast<std::uint64_t>(m) *
                                       static_cast<std::uint64_t>(m);
  const idx_t num_nodes = checked_idx(plate_nodes + impactor_nodes, path,
                                      "generated node count");
  const idx_t num_elements = checked_idx(plate_elems + impactor_elems, path,
                                         "generated element count");

  ChunkedMeshWriter w(path, ElementType::kHex8, num_nodes, num_elements,
                      spec.nodes_per_block, spec.elems_per_block);

  // Node ids follow the structured-grid convention of mesh/generators.cpp:
  // (i * (ny+1) + j) * (nz+1) + k, plate grid first, impactor grid offset
  // by the plate node count.
  for (idx_t i = 0; i <= spec.nx; ++i) {
    for (idx_t j = 0; j <= spec.ny; ++j) {
      for (idx_t k = 0; k <= spec.nz; ++k) {
        w.add_node(Vec3{static_cast<real_t>(i), static_cast<real_t>(j),
                        static_cast<real_t>(k)});
      }
    }
  }
  for (idx_t i = 0; i <= m; ++i) {
    for (idx_t j = 0; j <= m; ++j) {
      for (idx_t k = 0; k <= m; ++k) {
        w.add_node(Vec3{ix0 + static_cast<real_t>(i),
                        iy0 + static_cast<real_t>(j),
                        iz0 + static_cast<real_t>(k)});
      }
    }
  }

  const auto grid_id = [](idx_t i, idx_t j, idx_t k, idx_t ny, idx_t nz) {
    return (i * (ny + 1) + j) * (nz + 1) + k;
  };
  const auto emit_cells = [&](idx_t nx, idx_t ny, idx_t nz, idx_t base) {
    for (idx_t i = 0; i < nx; ++i) {
      for (idx_t j = 0; j < ny; ++j) {
        for (idx_t k = 0; k < nz; ++k) {
          const idx_t corners[8] = {
              base + grid_id(i, j, k, ny, nz),
              base + grid_id(i + 1, j, k, ny, nz),
              base + grid_id(i + 1, j + 1, k, ny, nz),
              base + grid_id(i, j + 1, k, ny, nz),
              base + grid_id(i, j, k + 1, ny, nz),
              base + grid_id(i + 1, j, k + 1, ny, nz),
              base + grid_id(i + 1, j + 1, k + 1, ny, nz),
              base + grid_id(i, j + 1, k + 1, ny, nz)};
          w.add_element(corners);
        }
      }
    }
  };
  emit_cells(spec.nx, spec.ny, spec.nz, 0);
  emit_cells(m, m, m, to_idx(plate_nodes));
  w.finish();
  return ChunkedMeshInfo{num_nodes, num_elements};
}

}  // namespace cpart
