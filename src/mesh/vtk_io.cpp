#include "mesh/vtk_io.hpp"

#include <fstream>
#include <ostream>

namespace cpart {

namespace {

/// VTK cell type ids for our element types.
int vtk_cell_type(ElementType type) {
  switch (type) {
    case ElementType::kTri3: return 5;    // VTK_TRIANGLE
    case ElementType::kQuad4: return 9;   // VTK_QUAD
    case ElementType::kTet4: return 10;   // VTK_TETRA
    case ElementType::kHex8: return 12;   // VTK_HEXAHEDRON
  }
  return 0;
}

void write_scalars(std::ostream& os, const VtkScalarField& field) {
  os << "SCALARS " << field.name << " int 1\nLOOKUP_TABLE default\n";
  for (idx_t v : field.values) os << v << '\n';
}

}  // namespace

void write_vtk(std::ostream& os, const Mesh& mesh,
               std::span<const VtkScalarField> node_fields,
               std::span<const VtkScalarField> element_fields) {
  for (const auto& f : node_fields) {
    require(f.values.size() == static_cast<std::size_t>(mesh.num_nodes()),
            "write_vtk: node field '" + f.name + "' size mismatch");
  }
  for (const auto& f : element_fields) {
    require(f.values.size() == static_cast<std::size_t>(mesh.num_elements()),
            "write_vtk: element field '" + f.name + "' size mismatch");
  }
  os << "# vtk DataFile Version 3.0\ncontactpart mesh\nASCII\n"
     << "DATASET UNSTRUCTURED_GRID\n";
  os << "POINTS " << mesh.num_nodes() << " double\n";
  for (idx_t i = 0; i < mesh.num_nodes(); ++i) {
    const Vec3 p = mesh.node(i);
    os << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  const int npe = nodes_per_element(mesh.element_type());
  os << "CELLS " << mesh.num_elements() << ' '
     << static_cast<long long>(mesh.num_elements()) * (npe + 1) << '\n';
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    os << npe;
    for (idx_t id : mesh.element(e)) os << ' ' << id;
    os << '\n';
  }
  os << "CELL_TYPES " << mesh.num_elements() << '\n';
  const int cell_type = vtk_cell_type(mesh.element_type());
  for (idx_t e = 0; e < mesh.num_elements(); ++e) os << cell_type << '\n';
  if (!node_fields.empty()) {
    os << "POINT_DATA " << mesh.num_nodes() << '\n';
    for (const auto& f : node_fields) write_scalars(os, f);
  }
  if (!element_fields.empty()) {
    os << "CELL_DATA " << mesh.num_elements() << '\n';
    for (const auto& f : element_fields) write_scalars(os, f);
  }
}

void write_vtk_file(const std::string& path, const Mesh& mesh,
                    std::span<const VtkScalarField> node_fields,
                    std::span<const VtkScalarField> element_fields) {
  std::ofstream os(path);
  require(os.good(), "write_vtk_file: cannot open " + path);
  write_vtk(os, mesh, node_fields, element_fields);
  require(os.good(), "write_vtk_file: write failed for " + path);
}

}  // namespace cpart
