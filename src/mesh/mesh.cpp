#include "mesh/mesh.hpp"

#include <algorithm>
#include <array>

namespace cpart {

int nodes_per_element(ElementType type) {
  switch (type) {
    case ElementType::kTri3: return 3;
    case ElementType::kQuad4: return 4;
    case ElementType::kTet4: return 4;
    case ElementType::kHex8: return 8;
  }
  return 0;
}

int element_dim(ElementType type) {
  switch (type) {
    case ElementType::kTri3:
    case ElementType::kQuad4: return 2;
    case ElementType::kTet4:
    case ElementType::kHex8: return 3;
  }
  return 0;
}

std::string element_type_name(ElementType type) {
  switch (type) {
    case ElementType::kTri3: return "tri3";
    case ElementType::kQuad4: return "quad4";
    case ElementType::kTet4: return "tet4";
    case ElementType::kHex8: return "hex8";
  }
  return "unknown";
}

ElementType element_type_from_name(const std::string& name) {
  if (name == "tri3") return ElementType::kTri3;
  if (name == "quad4") return ElementType::kQuad4;
  if (name == "tet4") return ElementType::kTet4;
  if (name == "hex8") return ElementType::kHex8;
  throw InputError("unknown element type: " + name);
}

std::span<const std::vector<int>> element_faces(ElementType type) {
  // Reference-element faces. 2D elements expose their edges; hex8 uses the
  // standard vertex numbering (0-3 bottom CCW, 4-7 top CCW).
  static const std::vector<std::vector<int>> tri{{0, 1}, {1, 2}, {2, 0}};
  static const std::vector<std::vector<int>> quad{
      {0, 1}, {1, 2}, {2, 3}, {3, 0}};
  static const std::vector<std::vector<int>> tet{
      {0, 1, 2}, {0, 1, 3}, {1, 2, 3}, {0, 2, 3}};
  static const std::vector<std::vector<int>> hex{
      {0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 5, 4},
      {1, 2, 6, 5}, {2, 3, 7, 6}, {3, 0, 4, 7}};
  switch (type) {
    case ElementType::kTri3: return tri;
    case ElementType::kQuad4: return quad;
    case ElementType::kTet4: return tet;
    case ElementType::kHex8: return hex;
  }
  return {};
}

Mesh::Mesh(ElementType type, std::vector<Vec3> nodes,
           std::vector<idx_t> elem_nodes)
    : type_(type), nodes_(std::move(nodes)), elem_nodes_(std::move(elem_nodes)) {
  const auto npe = static_cast<std::size_t>(nodes_per_element(type_));
  require(elem_nodes_.size() % npe == 0,
          "Mesh: element array size not a multiple of nodes-per-element");
  const idx_t n = num_nodes();
  for (idx_t id : elem_nodes_) {
    require(id >= 0 && id < n, "Mesh: element node id out of range");
  }
}

Vec3 Mesh::element_center(idx_t e) const {
  Vec3 c;
  auto nodes = element(e);
  for (idx_t id : nodes) c = c + node(id);
  return (1.0 / static_cast<real_t>(nodes.size())) * c;
}

BBox Mesh::element_bbox(idx_t e) const {
  BBox box;
  for (idx_t id : element(e)) box.expand(node(id));
  return box;
}

BBox Mesh::bounds() const { return bbox_of(nodes_); }

idx_t Mesh::remove_elements(std::span<const char> keep) {
  require(keep.size() == static_cast<std::size_t>(num_elements()),
          "Mesh::remove_elements: mask size mismatch");
  const auto npe = static_cast<std::size_t>(nodes_per_element(type_));
  std::size_t out = 0;
  idx_t removed = 0;
  for (idx_t e = 0; e < num_elements(); ++e) {
    if (!keep[static_cast<std::size_t>(e)]) {
      ++removed;
      continue;
    }
    if (out != static_cast<std::size_t>(e) * npe) {
      std::copy_n(elem_nodes_.begin() + static_cast<std::ptrdiff_t>(
                                             static_cast<std::size_t>(e) * npe),
                  npe, elem_nodes_.begin() + static_cast<std::ptrdiff_t>(out));
    }
    out += npe;
  }
  elem_nodes_.resize(out);
  return removed;
}

idx_t Mesh::append(const Mesh& other) {
  require(other.type_ == type_, "Mesh::append: element type mismatch");
  const idx_t offset = num_nodes();
  nodes_.insert(nodes_.end(), other.nodes_.begin(), other.nodes_.end());
  elem_nodes_.reserve(elem_nodes_.size() + other.elem_nodes_.size());
  for (idx_t id : other.elem_nodes_) elem_nodes_.push_back(id + offset);
  return offset;
}

}  // namespace cpart
