// Structured mesh generators: boxes, plates, and cylinder-like bodies in
// hex8/tet4 (3D) and quad4/tri3 (2D). Used by the examples, the tests, and
// the synthetic impact simulation (the EPIC-dataset substitute).
#pragma once

#include "mesh/mesh.hpp"

namespace cpart {

/// Structured hex8 box: cells nx x ny x nz over [origin, origin + size].
Mesh make_hex_box(idx_t nx, idx_t ny, idx_t nz, Vec3 origin, Vec3 size);

/// Structured tet4 box: each hex cell of the structured grid is split into
/// six tetrahedra (consistent diagonal orientation, conforming faces).
Mesh make_tet_box(idx_t nx, idx_t ny, idx_t nz, Vec3 origin, Vec3 size);

/// Structured quad4 rectangle in the z = 0 plane.
Mesh make_quad_rect(idx_t nx, idx_t ny, Vec3 origin, Vec3 size);

/// Structured tri3 rectangle (each quad cell split into two triangles).
Mesh make_tri_rect(idx_t nx, idx_t ny, Vec3 origin, Vec3 size);

/// Cylinder-like hex8 body along +z: a structured box trimmed to radius
/// `radius` around the axis through `center` (jagged lateral boundary, as
/// in voxel-style impact meshes). `cells_per_diameter` controls resolution.
Mesh make_hex_cylinder(real_t radius, real_t length, Vec3 base_center,
                       idx_t cells_per_diameter, idx_t nz);

}  // namespace cpart
