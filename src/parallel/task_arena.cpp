#include "parallel/task_arena.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cpart {

namespace {

thread_local TaskArena* t_current_arena = nullptr;

}  // namespace

ArenaScope::ArenaScope(TaskArena& arena) : prev_(t_current_arena) {
  t_current_arena = &arena;
}

ArenaScope::~ArenaScope() { t_current_arena = prev_; }

TaskArena* ArenaScope::current() { return t_current_arena; }

/// Shared state of one claim-based dispatch. Heap-allocated and shared
/// with the queued participant slots, so a slot popped after the dispatch
/// completed (a stale slot that remove_stale raced with) still touches
/// live memory: it claims a chunk index past num_chunks and returns.
struct TaskArena::DispatchState {
  const std::function<void(unsigned, idx_t, idx_t)>* fn = nullptr;
  idx_t n = 0;
  idx_t chunk_size = 0;
  unsigned num_chunks = 0;
  std::atomic<unsigned> next{0};       // claim cursor
  std::atomic<unsigned> completed{0};  // finished chunks (acq_rel: the
                                       // last increment publishes every
                                       // chunk's writes to the waiter)
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::pair<unsigned, std::exception_ptr>> errors;  // under m
};

TaskArena::TaskArena(WorkerPool& pool, ArenaOptions options)
    : pool_(pool),
      options_(options),
      queue_(pool.register_arena(options.weight)) {}

TaskArena::~TaskArena() { pool_.unregister_arena(queue_.get()); }

unsigned TaskArena::width() const {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = pool_.num_threads();  // unknown: trust the pool size
  unsigned w = std::min(pool_.num_threads(), std::max(1u, hw));
  if (options_.max_parallelism > 0) w = std::min(w, options_.max_parallelism);
  return std::max(1u, w);
}

ArenaStats TaskArena::stats() const {
  ArenaStats s;
  s.queue_depth = pool_.queue_depth(queue_.get());
  s.weight = std::max<idx_t>(1, options_.weight);
  s.width = width();
  s.items_run = pool_.items_run(queue_.get());
  s.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  return s;
}

void TaskArena::drain_dispatch(DispatchState& s) {
  for (;;) {
    const unsigned c = s.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= s.num_chunks) return;
    const idx_t begin = static_cast<idx_t>(c) * s.chunk_size;
    const idx_t end = std::min<idx_t>(s.n, begin + s.chunk_size);
    if (begin < end) {
      try {
        (*s.fn)(c, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.m);
        s.errors.emplace_back(c, std::current_exception());
      }
    }
    if (s.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        s.num_chunks) {
      std::lock_guard<std::mutex> lock(s.m);
      s.cv.notify_all();
    }
  }
}

void TaskArena::run_dispatch(
    idx_t n, idx_t chunk_size, unsigned num_chunks, unsigned width_now,
    const std::function<void(unsigned, idx_t, idx_t)>& fn) {
  auto state = std::make_shared<DispatchState>();
  // fn outlives the dispatch: the caller returns only after every claimed
  // chunk checked in, and a participant holding no claim never touches fn.
  state->fn = &fn;
  state->n = n;
  state->chunk_size = chunk_size;
  state->num_chunks = num_chunks;
  const unsigned helpers = std::min(width_now, num_chunks) - 1;
  if (helpers > 0) {
    const std::function<void()> slot = [state] { drain_dispatch(*state); };
    pool_.enqueue_slots(queue_.get(), state.get(),
                        static_cast<idx_t>(helpers), slot);
  }
  {
    // The caller is a participant: it claims chunks alongside the workers,
    // so the dispatch completes even if every slot lingers in the queue.
    detail::ScopedWorkerFlag flag;
    drain_dispatch(*state);
  }
  {
    std::unique_lock<std::mutex> lock(state->m);
    state->cv.wait(lock, [&] {
      return state->completed.load(std::memory_order_acquire) == num_chunks;
    });
  }
  // Slots no worker got to claim nothing; sweep them so queue depths and
  // drain() reflect real work.
  pool_.remove_stale(queue_.get(), state.get());
  if (!state->errors.empty()) {
    detail::raise_collected(std::move(state->errors));
  }
}

void TaskArena::parallel_for_chunks(
    idx_t n, const std::function<void(unsigned, idx_t, idx_t)>& fn) {
  if (n <= 0) return;
  const unsigned width_now = width();
  // Small ranges, single-wide dispatches, and dispatches issued from inside
  // parallel work run inline: the first two are cheaper that way, the last
  // keeps nesting safe — an inner dispatch queued behind the outer one's
  // unclaimed slots would contend for the same workers for no benefit.
  constexpr idx_t kInlineThreshold = 2048;
  if (width_now <= 1 || n <= kInlineThreshold || WorkerPool::in_worker()) {
    fn(0, 0, n);
    return;
  }
  const unsigned num_chunks = std::min<unsigned>(
      width_now,
      static_cast<unsigned>(ceil_div<idx_t>(n, kInlineThreshold / 2)));
  // Callers size per-chunk scratch buffers by the pool size; the chunk
  // index handed to fn must stay below that.
  assert(num_chunks <= pool_.num_threads());
  const idx_t chunk_size =
      ceil_div<idx_t>(n, static_cast<idx_t>(num_chunks));
  run_dispatch(n, chunk_size, num_chunks, width_now, fn);
}

void TaskArena::parallel_tasks(idx_t n,
                               const std::function<void(idx_t)>& task) {
  if (n <= 0) return;
  const unsigned width_now = width();
  if (width_now <= 1 || n == 1 || WorkerPool::in_worker()) {
    // The inline path keeps the BSP failure semantics: every task runs
    // even when an earlier one throws, and multiple failures aggregate
    // exactly as the threaded path would.
    std::vector<std::pair<unsigned, std::exception_ptr>> errors;
    for (idx_t i = 0; i < n; ++i) {
      try {
        task(i);
      } catch (...) {
        errors.emplace_back(static_cast<unsigned>(i),
                            std::current_exception());
      }
    }
    if (!errors.empty()) detail::raise_collected(std::move(errors));
    return;
  }
  const std::function<void(unsigned, idx_t, idx_t)> fn =
      [&task](unsigned, idx_t begin, idx_t end) {
        for (idx_t i = begin; i < end; ++i) task(i);
      };
  // One chunk per task: the chunk index recorded for a failure is the task
  // index (== rank id for rank programs).
  run_dispatch(n, /*chunk_size=*/1, static_cast<unsigned>(n), width_now, fn);
}

unsigned TaskArena::run_gang(
    unsigned want, const std::function<void(idx_t, unsigned)>& fn) {
  return pool_.run_gang(want, fn);
}

void TaskArena::submit(std::function<void()> job) {
  pool_.enqueue_job(queue_.get(), [this, job = std::move(job)] {
    try {
      job();
    } catch (...) {
      jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

void TaskArena::drain() { pool_.wait_arena_idle(queue_.get()); }

}  // namespace cpart
