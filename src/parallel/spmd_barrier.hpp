// Sense-reversing phase barrier for barrier-phased SPMD execution.
//
// The step drivers themselves now run on the dependency-driven
// AsyncExecutor (runtime/async_executor.hpp), whose readiness waits reuse
// this barrier's spin-then-futex idiom on a shared epoch word; the full
// barrier remains the building block for strictly phase-ordered worker
// groups (and is tested directly in parallel_test).
//
// Classic MCS-style design (Mellor-Crummey & Scott): arrival is a single
// fetch_add on a padded counter; release is a sense reversal — waiters spin
// on the global epoch word, never on another thread's state, so a release
// is one store + one wake instead of a lock-protected broadcast. At the
// worker counts this library runs (<= 16 participants) a flat counter beats
// the MCS arrival tree, so only the sense-reversal half is kept.
//
// The last thread to arrive ("winner") runs the caller's serial section —
// the inter-phase Exchange::deliver() — before releasing the others; this
// is what lets a delivery happen inside one ThreadPool dispatch without
// bouncing control back to the driver thread between phases.
//
// Waiters spin briefly, then park in std::atomic::wait (futex). The bounded
// spin matters both ways: on an oversubscribed host (more workers than
// cores) spinning steals the CPU the winner needs, so the bound is small;
// on an idle multicore the first iterations catch the common fast release
// without a syscall.
//
// Not reentrant; every one of the `participants` threads must call
// arrive_and_wait the same number of times. The serial section must not
// throw — wrap it and stash the exception.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "util/common.hpp"

namespace cpart {

class SpmdBarrier {
 public:
  explicit SpmdBarrier(unsigned participants) : n_(participants) {
    require(participants >= 1, "SpmdBarrier: need at least one participant");
  }

  SpmdBarrier(const SpmdBarrier&) = delete;
  SpmdBarrier& operator=(const SpmdBarrier&) = delete;

  unsigned participants() const { return n_; }

  /// Blocks until all participants have arrived. The last arriver runs
  /// `serial` (may be empty) while the others wait, then releases them.
  /// Returns true on the winning thread.
  bool arrive_and_wait(const std::function<void()>& serial) {
    const std::uint32_t my_epoch = epoch_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      if (serial) serial();
      arrived_.store(0, std::memory_order_relaxed);
      // The epoch bump is the sense reversal: release-publishes both the
      // serial section's writes and the counter reset to every waiter.
      epoch_.store(my_epoch + 1, std::memory_order_release);
      epoch_.notify_all();
      return true;
    }
    for (int i = 0; i < kSpinIterations; ++i) {
      if (epoch_.load(std::memory_order_acquire) != my_epoch) return false;
    }
    while (epoch_.load(std::memory_order_acquire) == my_epoch) {
      epoch_.wait(my_epoch, std::memory_order_acquire);
    }
    return false;
  }

  bool arrive_and_wait() { return arrive_and_wait(nullptr); }

 private:
  // Small on purpose: with workers oversubscribing cores, a long spin
  // starves the very thread being waited for.
  static constexpr int kSpinIterations = 128;

  const unsigned n_;
  alignas(64) std::atomic<std::uint32_t> arrived_{0};
  alignas(64) std::atomic<std::uint32_t> epoch_{0};
};

}  // namespace cpart
