#include "parallel/worker_pool.hpp"

#include <algorithm>
#include <sstream>

namespace cpart {

namespace {

std::string group_message(const std::vector<ParallelGroupError::Failure>& fs) {
  std::ostringstream os;
  os << fs.size() << " parallel tasks failed:";
  for (const auto& f : fs) {
    os << " [" << f.index << "] " << f.message << ";";
  }
  return os.str();
}

/// Set while this thread executes a chunk, task, job, or gang slot of any
/// dispatch. Nested dispatches check it and run inline: an inner dispatch
/// queued behind the outer one's unclaimed slots could otherwise wait on
/// workers that are all busy executing outer chunks, and inline execution
/// is observationally identical anyway (width-independence invariant).
thread_local bool t_in_worker = false;

}  // namespace

ParallelGroupError::ParallelGroupError(std::vector<Failure> failures)
    : std::runtime_error(group_message(failures)),
      failures_(std::move(failures)) {}

namespace detail {

void raise_collected(
    std::vector<std::pair<unsigned, std::exception_ptr>>&& errors) {
  if (errors.size() == 1) {
    std::rethrow_exception(errors.front().second);
  }
  std::sort(errors.begin(), errors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ParallelGroupError::Failure> failures;
  failures.reserve(errors.size());
  for (auto& [chunk, err] : errors) {
    ParallelGroupError::Failure f;
    f.index = static_cast<idx_t>(chunk);
    try {
      std::rethrow_exception(err);
    } catch (const std::exception& e) {
      f.message = e.what();
    } catch (...) {
      f.message = "unknown exception";
    }
    failures.push_back(std::move(f));
  }
  throw ParallelGroupError(std::move(failures));
}

ScopedWorkerFlag::ScopedWorkerFlag() : prev_(t_in_worker) {
  t_in_worker = true;
}

ScopedWorkerFlag::~ScopedWorkerFlag() { t_in_worker = prev_; }

}  // namespace detail

bool WorkerPool::in_worker() { return t_in_worker; }

WorkerPool::WorkerPool(unsigned num_threads) {
  // The requested worker count is honored even above the hardware
  // concurrency. Oversubscription costs context switches, but a worker is
  // also a unit of gang-phased SPMD execution (runtime/async_executor):
  // thread-count sweeps and sanitizer runs need W real workers to exercise
  // W-way interleavings whatever box they land on. Results are unaffected —
  // every parallel computation in this library is bit-identical at any pool
  // size (see docs/parallelism.md).
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

SchedulerStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats s;
  s.total_workers = static_cast<idx_t>(workers_.size());
  s.active_workers = active_count_;
  s.idle_workers = idle_count_;
  idx_t queued = 0;
  for (const ArenaQueue* q : ring_) queued += to_idx(q->items.size());
  s.queued_items = queued;
  s.queued_gang_slots = to_idx(gang_slots_.size());
  s.registered_arenas = registered_;
  s.items_executed = items_executed_;
  s.gang_slots_executed = gang_slots_executed_;
  return s;
}

std::unique_ptr<WorkerPool::ArenaQueue> WorkerPool::register_arena(
    idx_t weight) {
  auto q = std::make_unique<ArenaQueue>();
  q->weight = std::max<idx_t>(1, weight);
  std::lock_guard<std::mutex> lock(mutex_);
  ++registered_;
  return q;
}

void WorkerPool::unregister_arena(ArenaQueue* q) {
  wait_arena_idle(q);
  std::lock_guard<std::mutex> lock(mutex_);
  // wait_arena_idle left the queue empty, so it is already unlinked.
  require(!q->linked && q->items.empty() && q->inflight == 0,
          "WorkerPool: arena still has work at unregister");
  --registered_;
}

void WorkerPool::enqueue_slots(ArenaQueue* q, const void* tag, idx_t count,
                               const std::function<void()>& slot) {
  if (count <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (idx_t i = 0; i < count; ++i) q->items.push_back(Item{tag, slot});
    if (!q->linked) {
      ring_.push_back(q);
      q->linked = true;
    }
  }
  if (count == 1) {
    cv_work_.notify_one();
  } else {
    cv_work_.notify_all();
  }
}

void WorkerPool::enqueue_job(ArenaQueue* q, std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    q->items.push_back(Item{nullptr, std::move(job)});
    if (!q->linked) {
      ring_.push_back(q);
      q->linked = true;
    }
  }
  cv_work_.notify_one();
}

void WorkerPool::remove_stale(ArenaQueue* q, const void* tag) {
  bool now_idle = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& items = q->items;
    items.erase(std::remove_if(items.begin(), items.end(),
                               [tag](const Item& it) { return it.tag == tag; }),
                items.end());
    if (items.empty() && q->linked) {
      const auto it = std::find(ring_.begin(), ring_.end(), q);
      const std::size_t idx = static_cast<std::size_t>(it - ring_.begin());
      ring_.erase(it);
      if (idx < cursor_) --cursor_;
      if (cursor_ >= ring_.size()) cursor_ = 0;
      q->linked = false;
      q->deficit = 0;
    }
    now_idle = items.empty() && q->inflight == 0;
  }
  if (now_idle) cv_done_.notify_all();
}

void WorkerPool::wait_arena_idle(ArenaQueue* q) {
  require(!in_worker(),
          "WorkerPool: cannot wait for an arena from inside a worker");
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return q->items.empty() && q->inflight == 0; });
}

idx_t WorkerPool::queue_depth(ArenaQueue* q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return to_idx(q->items.size());
}

wgt_t WorkerPool::items_run(ArenaQueue* q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return q->items_run;
}

bool WorkerPool::pop_next(ArenaQueue** q_out, Item* item_out) {
  if (ring_.empty()) return false;
  if (cursor_ >= ring_.size()) cursor_ = 0;
  ArenaQueue* q = ring_[cursor_];
  // DRR: a queue arriving at the cursor with no credit gets one quantum
  // (its weight) and is served that many items before the cursor moves on.
  // Ring membership is maintained as linked <=> has queued items, so the
  // queue at the cursor always yields an item.
  if (q->deficit <= 0) q->deficit = q->weight;
  *item_out = std::move(q->items.front());
  q->items.pop_front();
  --q->deficit;
  ++q->inflight;
  *q_out = q;
  if (q->items.empty()) {
    ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    if (cursor_ >= ring_.size()) cursor_ = 0;
    q->linked = false;
    q->deficit = 0;
  } else if (q->deficit <= 0) {
    ++cursor_;
    if (cursor_ >= ring_.size()) cursor_ = 0;
  }
  return true;
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Gang slots first, strictly: each queued slot was granted against an
    // idle worker, and a gang's participants may block on one another, so
    // delaying a slot behind arena items could stall a whole gang.
    if (!gang_slots_.empty()) {
      GangSlot slot = std::move(gang_slots_.front());
      gang_slots_.pop_front();
      ++active_count_;
      lock.unlock();
      {
        detail::ScopedWorkerFlag flag;
        run_gang_participant(*slot.gang, slot.participant);
      }
      slot.gang.reset();
      lock.lock();
      --active_count_;
      ++gang_slots_executed_;
      continue;
    }
    ArenaQueue* q = nullptr;
    Item item;
    if (pop_next(&q, &item)) {
      ++active_count_;
      lock.unlock();
      {
        detail::ScopedWorkerFlag flag;
        item.run();
      }
      item.run = nullptr;  // release captures before reporting completion
      lock.lock();
      --active_count_;
      ++items_executed_;
      ++q->items_run;
      --q->inflight;
      if (q->items.empty() && q->inflight == 0) cv_done_.notify_all();
      continue;
    }
    if (stop_) return;
    ++idle_count_;
    cv_work_.wait(lock);
    --idle_count_;
  }
}

unsigned WorkerPool::run_gang(unsigned want,
                              const std::function<void(idx_t, unsigned)>& fn) {
  if (want <= 1 || in_worker()) {
    detail::ScopedWorkerFlag flag;
    fn(0, 1);
    return 1;
  }
  auto gang = std::make_shared<GangState>();
  gang->fn = &fn;
  unsigned helpers = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Grant only workers that are idle right now and not already spoken
    // for by a queued slot of another gang: every granted participant is
    // then backed by a distinct live thread (gang slots are consumed
    // before anything else), so participants may block on each other and
    // two concurrent gangs can never deadlock.
    const idx_t promised = to_idx(gang_slots_.size());
    const idx_t avail = idle_count_ > promised ? idle_count_ - promised : 0;
    helpers = static_cast<unsigned>(
        std::min<idx_t>(static_cast<idx_t>(want - 1), avail));
    gang->width = 1 + helpers;
    gang->remaining = helpers;
    for (unsigned p = 1; p <= helpers; ++p) {
      gang_slots_.push_back(GangSlot{gang, p});
    }
  }
  if (helpers > 0) cv_work_.notify_all();
  {
    detail::ScopedWorkerFlag flag;
    run_gang_participant(*gang, 0);  // the caller is participant 0
  }
  {
    std::unique_lock<std::mutex> lock(gang->m);
    gang->cv.wait(lock, [&] { return gang->remaining == 0; });
  }
  if (!gang->errors.empty()) detail::raise_collected(std::move(gang->errors));
  return gang->width;
}

void WorkerPool::run_gang_participant(GangState& gang, unsigned participant) {
  try {
    (*gang.fn)(static_cast<idx_t>(participant), gang.width);
  } catch (...) {
    std::lock_guard<std::mutex> lock(gang.m);
    gang.errors.emplace_back(participant, std::current_exception());
  }
  if (participant != 0) {
    std::lock_guard<std::mutex> lock(gang.m);
    if (--gang.remaining == 0) gang.cv.notify_all();
  }
}

}  // namespace cpart
