// Shared-memory parallel substrate: the process-wide WorkerPool plus a
// default TaskArena, behind the original single-owner facade.
//
// The paper's algorithms were designed for distributed-memory machines; the
// quantities its evaluation reports (communication volumes, tree sizes) are
// analytic counts, so this library executes on shared memory and uses the
// pool to parallelize the heavy loops (metric accounting, global search,
// per-snapshot processing). The multi-tenant refactor split the machinery
// into WorkerPool (threads + deficit-round-robin scheduler over arena
// queues) and TaskArena (per-session dispatch handle); ThreadPool bundles
// one of each and keeps the historical surface, so single-sim code — the
// solvers, the benches, the tests — is unaware of tenancy. Dispatch
// semantics are unchanged: static blocked chunking fixed at dispatch time,
// deterministic results for associative reductions via ordered per-chunk
// combination, bit-identical output at any width (docs/parallelism.md).
//
// Multi-session hosts (src/service/) create one TaskArena per session on
// ThreadPool::workers() and bind it with ArenaScope; the facade's dispatch
// methods route through the bound arena, so library code deep inside a
// session lands on that session's queue with its fair-share weight.
#pragma once

#include <functional>
#include <span>

#include "parallel/task_arena.hpp"
#include "parallel/worker_pool.hpp"
#include "util/common.hpp"

namespace cpart {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  /// Requests above the hardware concurrency are honored (oversubscribed):
  /// a worker is also a unit of gang-phased SPMD execution, so sweeps
  /// and sanitizer runs get W real workers regardless of the host. Results
  /// are identical at any pool size; only speed differs.
  explicit ThreadPool(unsigned num_threads = 0)
      : pool_(num_threads), default_arena_(pool_) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return pool_.num_threads(); }

  /// The underlying worker pool — what multi-session hosts build their
  /// per-session TaskArenas on.
  WorkerPool& workers() { return pool_; }

  /// The arena facade dispatches use when no ArenaScope is bound.
  TaskArena& default_arena() { return default_arena_; }

  SchedulerStats scheduler_stats() const { return pool_.stats(); }

  /// Runs fn(chunk_index, begin, end) on every chunk of [0, n), blocked into
  /// one contiguous range per participant, and waits for completion. Runs
  /// inline when n is small or the width is 1. If a chunk throws, the
  /// remaining chunks still run; a single failure is rethrown unchanged, and
  /// multiple failures are aggregated into one ParallelGroupError.
  void parallel_for_chunks(
      idx_t n, const std::function<void(unsigned, idx_t, idx_t)>& fn) {
    arena_for_caller().parallel_for_chunks(n, fn);
  }

  /// Element-wise parallel for: body(i) for i in [0, n).
  template <typename Body>
  void parallel_for(idx_t n, Body&& body) {
    parallel_for_chunks(n, [&body](unsigned, idx_t begin, idx_t end) {
      for (idx_t i = begin; i < end; ++i) body(i);
    });
  }

  /// Runs task(i) for each i in [0, n) with one claimable unit per index,
  /// distributed across workers. For small counts of coarse-grained tasks
  /// where parallel_for's inline threshold would serialize them. Every task
  /// runs to completion even when siblings throw (BSP semantics: the
  /// superstep finishes for every rank). A single failing task has its
  /// exception rethrown unchanged on the calling thread; several failing
  /// tasks are aggregated into one ParallelGroupError carrying each task
  /// index (== rank id for rank programs) and message — this is what lets
  /// rank programs use require() and have every failure surface to the
  /// step driver at once.
  void parallel_tasks(idx_t n, const std::function<void(idx_t)>& task) {
    arena_for_caller().parallel_tasks(n, task);
  }

  /// Parallel sum-reduction: combines per-chunk partial results in chunk
  /// order, so the result is deterministic for a fixed thread count.
  template <typename T, typename Body>
  T parallel_reduce(idx_t n, T init, Body&& body) {
    return arena_for_caller().parallel_reduce(n, init,
                                              std::forward<Body>(body));
  }

  /// In-place parallel exclusive prefix scan: data[i] becomes the sum of all
  /// elements before i; returns the grand total. For integral T the result
  /// is bit-identical regardless of thread count (integer addition is
  /// associative), which is what the partitioner's deterministic
  /// contraction relies on.
  template <typename T>
  T parallel_exclusive_scan(std::span<T> data) {
    return arena_for_caller().parallel_exclusive_scan(data);
  }

  /// Gang dispatch: fn(participant, granted_width) on min(want, 1 + idle
  /// workers) concurrent participants, caller included as participant 0.
  /// Gang bodies MAY block on each other (the async executor's futex
  /// handshakes) — see TaskArena::run_gang. Returns the granted width.
  unsigned run_gang(unsigned want,
                    const std::function<void(idx_t, unsigned)>& fn) {
    return arena_for_caller().run_gang(want, fn);
  }

  /// True on a thread currently executing a chunk, task, job, or gang slot
  /// of some dispatch (any pool). Dispatches issued from such a thread run
  /// inline on the caller — so library code that uses the pool internally
  /// (the partitioner, graph builders) stays safe to call from inside
  /// parallel_tasks bodies. Inline execution is observationally identical:
  /// every parallel computation here is bit-identical at any dispatch
  /// width, including width 1.
  static bool in_worker() { return WorkerPool::in_worker(); }

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

  /// Replaces the process-wide pool with one of `num_threads` workers
  /// (0 = hardware concurrency; larger requests are honored, see the
  /// constructor). Used by benches and tests that sweep thread counts.
  /// Must not be called while parallel work is in flight.
  static void set_global_threads(unsigned num_threads);

 private:
  /// The arena this call should land on: the ArenaScope-bound arena when
  /// it lives on this pool (a session's worker mid-step), otherwise the
  /// default arena (single-sim code, tests, benches).
  TaskArena& arena_for_caller() {
    TaskArena* bound = ArenaScope::current();
    if (bound != nullptr && &bound->pool() == &pool_) return *bound;
    return default_arena_;
  }

  // Declaration order is destruction order in reverse: the default arena
  // must unregister from the pool before the pool joins its workers.
  WorkerPool pool_;
  TaskArena default_arena_;
};

}  // namespace cpart
