// Shared-memory parallel substrate: a fixed-size thread pool with blocked
// parallel_for and parallel reductions.
//
// The paper's algorithms were designed for distributed-memory machines; the
// quantities its evaluation reports (communication volumes, tree sizes) are
// analytic counts, so this library executes on shared memory and uses the
// pool to parallelize the heavy loops (metric accounting, global search,
// per-snapshot processing). The pool is deliberately simple: static blocked
// scheduling, no nested parallelism, deterministic results for associative
// reductions via ordered per-chunk combination.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace cpart {

/// Thrown when more than one chunk (or task) of a single dispatch throws.
/// Carries every failure — for parallel_tasks the index is the task index,
/// i.e. the rank id of a failing rank program — so a superstep in which
/// several ranks fail reports all of them, not an arbitrary first one.
/// A dispatch with exactly one failing chunk rethrows the original
/// exception unchanged.
class ParallelGroupError : public std::runtime_error {
 public:
  struct Failure {
    idx_t index = 0;       // chunk/task index, ascending
    std::string message;   // what() of the original exception
  };

  explicit ParallelGroupError(std::vector<Failure> failures);

  const std::vector<Failure>& failures() const { return failures_; }

 private:
  std::vector<Failure> failures_;
};

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  /// Requests above the hardware concurrency are honored (oversubscribed):
  /// a worker is also a unit of barrier-phased SPMD execution, so sweeps
  /// and sanitizer runs get W real workers regardless of the host. Results
  /// are identical at any pool size; only speed differs.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(chunk_index, begin, end) on every chunk of [0, n), blocked into
  /// one contiguous range per worker, and waits for completion. Runs inline
  /// when n is small or the pool has one thread. If a chunk throws, the
  /// remaining chunks still run; a single failure is rethrown unchanged, and
  /// multiple failures are aggregated into one ParallelGroupError.
  void parallel_for_chunks(
      idx_t n, const std::function<void(unsigned, idx_t, idx_t)>& fn);

  /// Element-wise parallel for: body(i) for i in [0, n).
  template <typename Body>
  void parallel_for(idx_t n, Body&& body) {
    parallel_for_chunks(n, [&body](unsigned, idx_t begin, idx_t end) {
      for (idx_t i = begin; i < end; ++i) body(i);
    });
  }

  /// Runs task(i) for each i in [0, n) with one dispatch per index,
  /// distributed across workers (static stride). For small counts of
  /// coarse-grained tasks where parallel_for's inline threshold would
  /// serialize them. Every task runs to completion even when siblings throw
  /// (BSP semantics: the superstep finishes for every rank). A single
  /// failing task has its exception rethrown unchanged on the calling
  /// thread; several failing tasks are aggregated into one
  /// ParallelGroupError carrying each task index (== rank id for rank
  /// programs) and message — this is what lets rank programs use require()
  /// and have every failure surface to the step driver at once.
  void parallel_tasks(idx_t n, const std::function<void(idx_t)>& task);

  /// Parallel sum-reduction: combines per-chunk partial results in chunk
  /// order, so the result is deterministic for a fixed thread count.
  template <typename T, typename Body>
  T parallel_reduce(idx_t n, T init, Body&& body) {
    std::vector<T> partial(std::max<unsigned>(1u, num_threads()), T{});
    parallel_for_chunks(n, [&](unsigned chunk, idx_t begin, idx_t end) {
      assert(static_cast<std::size_t>(chunk) < partial.size());
      T local{};
      for (idx_t i = begin; i < end; ++i) local += body(i);
      partial[static_cast<std::size_t>(chunk)] = local;
    });
    T total = init;
    for (const T& p : partial) total += p;
    return total;
  }

  /// In-place parallel exclusive prefix scan: data[i] becomes the sum of all
  /// elements before i; returns the grand total. Two passes over the same
  /// chunking (per-chunk sums, ordered combine, per-chunk rewrite). For
  /// integral T the result is bit-identical regardless of thread count
  /// (integer addition is associative), which is what the partitioner's
  /// deterministic contraction relies on.
  template <typename T>
  T parallel_exclusive_scan(std::span<T> data) {
    const idx_t n = to_idx(data.size());
    std::vector<T> chunk_sum(std::max<unsigned>(1u, num_threads()), T{});
    parallel_for_chunks(n, [&](unsigned chunk, idx_t begin, idx_t end) {
      assert(static_cast<std::size_t>(chunk) < chunk_sum.size());
      T local{};
      for (idx_t i = begin; i < end; ++i) {
        local += data[static_cast<std::size_t>(i)];
      }
      chunk_sum[static_cast<std::size_t>(chunk)] = local;
    });
    T running{};
    for (T& cs : chunk_sum) {
      const T next = running + cs;
      cs = running;
      running = next;
    }
    parallel_for_chunks(n, [&](unsigned chunk, idx_t begin, idx_t end) {
      T prefix = chunk_sum[static_cast<std::size_t>(chunk)];
      for (idx_t i = begin; i < end; ++i) {
        const T value = data[static_cast<std::size_t>(i)];
        data[static_cast<std::size_t>(i)] = prefix;
        prefix += value;
      }
    });
    return running;
  }

  /// True on a thread currently executing a chunk or task of some dispatch
  /// (any pool). Dispatches issued from such a thread run inline on the
  /// caller — the pool's single-task protocol cannot nest — so library code
  /// that uses the pool internally (the partitioner, graph builders) stays
  /// safe to call from inside parallel_tasks bodies. Inline execution is
  /// observationally identical: every parallel computation here is
  /// bit-identical at any dispatch width, including width 1.
  static bool in_worker();

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

  /// Replaces the process-wide pool with one of `num_threads` workers
  /// (0 = hardware concurrency; larger requests are honored, see the
  /// constructor). Used by benches and tests that sweep thread counts.
  /// Must not be called while parallel work is in flight.
  static void set_global_threads(unsigned num_threads);

 private:
  struct Task {
    std::function<void(unsigned, idx_t, idx_t)> fn;
    idx_t n = 0;
    idx_t chunk_size = 0;
    unsigned num_chunks = 0;
    // Workers with id >= participants own no chunks this dispatch and do
    // not check in, so completion never waits on waking an idle worker —
    // the dominant dispatch cost when the pool is wider than the work.
    unsigned participants = 0;
    // Chunk-assignment stride: worker w owns chunks w, w+stride, ... —
    // the dispatch width, not the pool size (see dispatch_width()).
    unsigned stride = 1;
  };

  /// Worker count a single dispatch spreads across: pool size capped at
  /// the machine's concurrency. A pool wider than the hardware exists so
  /// thread-count sweeps and barrier-phased SPMD keep W real workers on
  /// any host, but fanning one dispatch across more runnable workers than
  /// physical threads only adds context switches — the extra chunks fold
  /// into the participating workers' stride loops instead. Results are
  /// unchanged: every parallel computation here is bit-identical at any
  /// width (see docs/parallelism.md).
  unsigned dispatch_width() const;

  void worker_loop(unsigned worker_id);
  void run_task(const Task& task, unsigned chunk);
  void wait_and_rethrow();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const Task* task_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  // Every exception thrown by the current dispatch, tagged with its chunk
  // index; surfaced on the calling thread once all workers have checked in
  // (an exception never cancels sibling chunks — they run to completion
  // first). One failure rethrows the original; several become a single
  // ParallelGroupError.
  std::vector<std::pair<unsigned, std::exception_ptr>> errors_;
};

}  // namespace cpart
