// Shared-memory parallel substrate: a fixed-size thread pool with blocked
// parallel_for and parallel reductions.
//
// The paper's algorithms were designed for distributed-memory machines; the
// quantities its evaluation reports (communication volumes, tree sizes) are
// analytic counts, so this library executes on shared memory and uses the
// pool to parallelize the heavy loops (metric accounting, global search,
// per-snapshot processing). The pool is deliberately simple: static blocked
// scheduling, no nested parallelism, deterministic results for associative
// reductions via ordered per-chunk combination.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.hpp"

namespace cpart {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(chunk_index, begin, end) on every chunk of [0, n), blocked into
  /// one contiguous range per worker, and waits for completion. Runs inline
  /// when n is small or the pool has one thread.
  void parallel_for_chunks(
      idx_t n, const std::function<void(unsigned, idx_t, idx_t)>& fn);

  /// Element-wise parallel for: body(i) for i in [0, n).
  template <typename Body>
  void parallel_for(idx_t n, Body&& body) {
    parallel_for_chunks(n, [&body](unsigned, idx_t begin, idx_t end) {
      for (idx_t i = begin; i < end; ++i) body(i);
    });
  }

  /// Runs task(i) for each i in [0, n) with one dispatch per index,
  /// distributed across workers (static stride). For small counts of
  /// coarse-grained tasks where parallel_for's inline threshold would
  /// serialize them.
  void parallel_tasks(idx_t n, const std::function<void(idx_t)>& task);

  /// Parallel sum-reduction: combines per-chunk partial results in chunk
  /// order, so the result is deterministic for a fixed thread count.
  template <typename T, typename Body>
  T parallel_reduce(idx_t n, T init, Body&& body) {
    std::vector<T> partial(std::max<unsigned>(1u, num_threads()), T{});
    parallel_for_chunks(n, [&](unsigned chunk, idx_t begin, idx_t end) {
      T local{};
      for (idx_t i = begin; i < end; ++i) local += body(i);
      partial[chunk] = local;
    });
    T total = init;
    for (const T& p : partial) total += p;
    return total;
  }

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void(unsigned, idx_t, idx_t)> fn;
    idx_t n = 0;
    idx_t chunk_size = 0;
    unsigned num_chunks = 0;
  };

  void worker_loop(unsigned worker_id);
  void run_task(const Task& task, unsigned chunk);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const Task* task_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace cpart
