// Process-wide worker pool with weighted fair scheduling over arena queues.
//
// The multi-tenant refactor splits the old single-owner ThreadPool into two
// pieces: this WorkerPool — the process's threads plus a deficit-round-robin
// scheduler over per-arena run queues — and TaskArena (task_arena.hpp), the
// per-session handle work is submitted through. One pool serves every
// session; the scheduler decides whose queued item the next free worker
// takes, so a session fanning out a million-element dispatch cannot starve
// a hundred small sessions: each arena is served in proportion to its
// weight, one item per deficit unit, round after round.
//
// Two kinds of work reach the workers:
//   * arena items — participant slots of fork-join dispatches and queued
//     session jobs. Items never block on other items, so any number can be
//     queued regardless of pool size (the claiming caller always makes
//     progress by itself; see task_arena.cpp).
//   * gang slots — participants of a gang dispatch (TaskArena::run_gang),
//     whose bodies MAY block on each other (the async executor's futex
//     handshakes). Gangs are granted only currently-idle workers and take
//     strict priority, so every granted participant is backed by a live
//     thread and two concurrent gangs can never deadlock on each other.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace cpart {

/// Thrown when more than one chunk (or task) of a single dispatch throws.
/// Carries every failure — for parallel_tasks the index is the task index,
/// i.e. the rank id of a failing rank program — so a superstep in which
/// several ranks fail reports all of them, not an arbitrary first one.
/// A dispatch with exactly one failing chunk rethrows the original
/// exception unchanged.
class ParallelGroupError : public std::runtime_error {
 public:
  struct Failure {
    idx_t index = 0;      // chunk/task index, ascending
    std::string message;  // what() of the original exception
  };

  explicit ParallelGroupError(std::vector<Failure> failures);

  const std::vector<Failure>& failures() const { return failures_; }

 private:
  std::vector<Failure> failures_;
};

namespace detail {

/// Turns a collected (chunk, exception) list into the dispatch's outcome:
/// the single original exception rethrown unchanged, or one aggregated
/// ParallelGroupError sorted by chunk index. The list must be non-empty.
[[noreturn]] void raise_collected(
    std::vector<std::pair<unsigned, std::exception_ptr>>&& errors);

/// RAII: marks the current thread as executing parallel work for the
/// duration (WorkerPool::in_worker() returns true), restoring the previous
/// state on destruction. Workers set it around every item; dispatch callers
/// set it while claiming chunks of their own dispatch, so nested dispatches
/// from chunk bodies run inline wherever the chunk happens to execute.
class ScopedWorkerFlag {
 public:
  ScopedWorkerFlag();
  ~ScopedWorkerFlag();
  ScopedWorkerFlag(const ScopedWorkerFlag&) = delete;
  ScopedWorkerFlag& operator=(const ScopedWorkerFlag&) = delete;

 private:
  bool prev_;
};

}  // namespace detail

/// Point-in-time scheduler counters (queue depths are instantaneous, the
/// *_executed totals are lifetime sums). bench_service and the SPMD health
/// probe report these so scheduler saturation — queued work per free
/// worker — is visible next to the transport health.
struct SchedulerStats {
  idx_t total_workers = 0;
  idx_t active_workers = 0;     // executing an item or gang slot right now
  idx_t idle_workers = 0;       // parked, waiting for work
  idx_t queued_items = 0;       // arena items waiting across all queues
  idx_t queued_gang_slots = 0;  // granted gang participants not yet running
  idx_t registered_arenas = 0;
  wgt_t items_executed = 0;      // lifetime arena items run by pool workers
  wgt_t gang_slots_executed = 0; // lifetime gang participants run by workers
};

class TaskArena;

class WorkerPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  /// Requests above the hardware concurrency are honored (oversubscribed):
  /// a worker is also a unit of gang-phased SPMD execution, so sweeps and
  /// sanitizer runs get W real workers regardless of the host. Results are
  /// identical at any pool size; only speed differs.
  explicit WorkerPool(unsigned num_threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  SchedulerStats stats() const;

  /// True on a thread currently executing a chunk, task, job, or gang slot
  /// of some dispatch (any pool). Dispatches issued from such a thread run
  /// inline on the caller; inline execution is observationally identical
  /// because every parallel computation here is bit-identical at any
  /// dispatch width, including width 1 (docs/parallelism.md).
  static bool in_worker();

 private:
  friend class TaskArena;

  /// One queued unit of arena work. `tag` identifies the dispatch that
  /// enqueued a participant slot, so a finished dispatch can sweep its
  /// stale slots out of the queue; plain jobs use tag == nullptr.
  struct Item {
    const void* tag = nullptr;
    std::function<void()> run;
  };

  /// Scheduler-side state of one registered arena. Owned by the TaskArena
  /// (via unique_ptr); every field is guarded by the pool mutex.
  struct ArenaQueue {
    std::deque<Item> items;
    idx_t weight = 1;    // DRR quantum: items served per scheduling round
    idx_t deficit = 0;   // remaining service credit this round
    bool linked = false; // member of ring_ (has queued items)
    idx_t inflight = 0;  // popped items still executing
    wgt_t items_run = 0; // lifetime items executed from this queue
  };

  /// Shared state of one gang dispatch (see TaskArena::run_gang). The
  /// caller is participant 0; granted slots 1..width-1 are queued for
  /// idle workers. remaining counts unfinished *helper* participants.
  struct GangState {
    const std::function<void(idx_t, unsigned)>* fn = nullptr;
    unsigned width = 0;
    std::mutex m;
    std::condition_variable cv;
    unsigned remaining = 0;
    std::vector<std::pair<unsigned, std::exception_ptr>> errors;  // under m
  };

  struct GangSlot {
    std::shared_ptr<GangState> gang;
    unsigned participant = 0;
  };

  std::unique_ptr<ArenaQueue> register_arena(idx_t weight);
  /// Waits until the queue is empty and nothing is inflight, then unlinks
  /// it from the scheduler. The queue's storage stays with the arena.
  void unregister_arena(ArenaQueue* q);

  /// Appends `count` copies of `make()`'s item to the arena's queue under
  /// one lock and wakes workers. Used for dispatch participant slots.
  void enqueue_slots(ArenaQueue* q, const void* tag, idx_t count,
                     const std::function<void()>& slot);
  void enqueue_job(ArenaQueue* q, std::function<void()> job);
  /// Removes the not-yet-popped items of dispatch `tag` (a finished
  /// dispatch's stale participant slots claim nothing and would only
  /// pollute queue-depth accounting and drain()).
  void remove_stale(ArenaQueue* q, const void* tag);
  /// Blocks until the arena's queue is empty and no popped item is still
  /// executing. Must not be called from a worker.
  void wait_arena_idle(ArenaQueue* q);
  idx_t queue_depth(ArenaQueue* q) const;
  wgt_t items_run(ArenaQueue* q) const;

  /// Gang dispatch mechanics (width decision + slot grant + caller
  /// participation); the arena-facing contract is TaskArena::run_gang.
  unsigned run_gang(unsigned want,
                    const std::function<void(idx_t, unsigned)>& fn);

  static void run_gang_participant(GangState& gang, unsigned participant);

  /// DRR pick across the ring of arenas with queued items. Returns false
  /// when every queue is empty. Caller holds mutex_.
  bool pop_next(ArenaQueue** q_out, Item* item_out);

  void worker_loop();

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;  // an arena queue went idle
  std::vector<ArenaQueue*> ring_;  // arenas with queued items
  std::size_t cursor_ = 0;         // DRR position in ring_
  std::deque<GangSlot> gang_slots_;
  idx_t idle_count_ = 0;
  idx_t active_count_ = 0;
  idx_t registered_ = 0;
  wgt_t items_executed_ = 0;
  wgt_t gang_slots_executed_ = 0;
  bool stop_ = false;
};

}  // namespace cpart
