// Per-session dispatch handle over the shared WorkerPool.
//
// A TaskArena is the unit of tenancy: it owns one scheduler queue in the
// pool, a fair-share weight, and an optional parallelism cap, and exposes
// the same fork-join surface the old single-owner ThreadPool had
// (parallel_for / parallel_tasks / reductions) plus fire-and-forget job
// submission for session step execution. Every session gets its own arena;
// the pool's deficit-round-robin scheduler serves the arenas' queues in
// weight proportion, so one arena's backlog cannot starve the others.
//
// Dispatches are claim-based: chunk boundaries are fixed at dispatch time
// (pure function of n and the arena width), participant slots are queued
// for idle workers, and every participant — the caller included — claims
// chunks from a shared atomic cursor. The caller always participates, so a
// dispatch completes even if no worker ever picks up a slot; workers that
// arrive late simply find nothing left to claim. Results are bit-identical
// whether zero or all slots are served, because chunking is fixed up front
// and combination is ordered (docs/parallelism.md).
#pragma once

#include <atomic>
#include <cassert>
#include <functional>
#include <memory>
#include <span>

#include "parallel/worker_pool.hpp"
#include "util/common.hpp"

namespace cpart {

struct ArenaOptions {
  /// DRR quantum: queued items served per scheduling round. An arena with
  /// weight 2 gets twice the service of a weight-1 arena under contention.
  idx_t weight = 1;
  /// Caps the width of this arena's dispatches (0 = no cap beyond the pool
  /// and hardware sizes). A capped session still shares the whole pool —
  /// the cap bounds its instantaneous fan-out, not which workers serve it.
  unsigned max_parallelism = 0;
};

/// Point-in-time view of one arena, for service-level observability.
struct ArenaStats {
  idx_t queue_depth = 0;   // items waiting in this arena's queue
  idx_t weight = 1;
  unsigned width = 1;      // current dispatch width
  wgt_t items_run = 0;     // lifetime items executed by pool workers
  wgt_t jobs_failed = 0;   // submitted jobs that threw (backstop counter)
};

class TaskArena {
 public:
  explicit TaskArena(WorkerPool& pool, ArenaOptions options = {});
  ~TaskArena();

  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;

  WorkerPool& pool() const { return pool_; }

  /// Worker count a single dispatch spreads across: pool size capped at
  /// the machine's concurrency and at options.max_parallelism. A pool
  /// wider than the hardware exists so thread-count sweeps keep W real
  /// workers on any host; fanning one dispatch across more runnable
  /// workers than physical threads only adds context switches.
  unsigned width() const;

  ArenaStats stats() const;

  /// Runs fn(chunk_index, begin, end) on every chunk of [0, n), blocked
  /// into one contiguous range per participant, and waits for completion.
  /// Runs inline when n is small, the width is 1, or the caller is already
  /// inside parallel work. If a chunk throws, the remaining chunks still
  /// run; a single failure is rethrown unchanged, and multiple failures
  /// are aggregated into one ParallelGroupError.
  void parallel_for_chunks(
      idx_t n, const std::function<void(unsigned, idx_t, idx_t)>& fn);

  /// Element-wise parallel for: body(i) for i in [0, n).
  template <typename Body>
  void parallel_for(idx_t n, Body&& body) {
    parallel_for_chunks(n, [&body](unsigned, idx_t begin, idx_t end) {
      for (idx_t i = begin; i < end; ++i) body(i);
    });
  }

  /// Runs task(i) for each i in [0, n) with one claimable unit per index.
  /// For small counts of coarse-grained tasks where parallel_for's inline
  /// threshold would serialize them. Every task runs to completion even
  /// when siblings throw (BSP semantics: the superstep finishes for every
  /// rank). A single failing task has its exception rethrown unchanged;
  /// several failing tasks aggregate into one ParallelGroupError carrying
  /// each task index (== rank id for rank programs) and message.
  void parallel_tasks(idx_t n, const std::function<void(idx_t)>& task);

  /// Parallel sum-reduction: combines per-chunk partial results in chunk
  /// order, so the result is deterministic for a fixed width.
  template <typename T, typename Body>
  T parallel_reduce(idx_t n, T init, Body&& body) {
    std::vector<T> partial(std::max(1u, pool_.num_threads()), T{});
    parallel_for_chunks(n, [&](unsigned chunk, idx_t begin, idx_t end) {
      assert(static_cast<std::size_t>(chunk) < partial.size());
      T local{};
      for (idx_t i = begin; i < end; ++i) local += body(i);
      partial[static_cast<std::size_t>(chunk)] = local;
    });
    T total = init;
    for (const T& p : partial) total += p;
    return total;
  }

  /// In-place parallel exclusive prefix scan: data[i] becomes the sum of
  /// all elements before i; returns the grand total. Two passes over the
  /// same chunking (per-chunk sums, ordered combine, per-chunk rewrite).
  /// For integral T the result is bit-identical regardless of width.
  template <typename T>
  T parallel_exclusive_scan(std::span<T> data) {
    const idx_t n = to_idx(data.size());
    std::vector<T> chunk_sum(std::max(1u, pool_.num_threads()), T{});
    parallel_for_chunks(n, [&](unsigned chunk, idx_t begin, idx_t end) {
      assert(static_cast<std::size_t>(chunk) < chunk_sum.size());
      T local{};
      for (idx_t i = begin; i < end; ++i) {
        local += data[static_cast<std::size_t>(i)];
      }
      chunk_sum[static_cast<std::size_t>(chunk)] = local;
    });
    T running{};
    for (T& cs : chunk_sum) {
      const T next = running + cs;
      cs = running;
      running = next;
    }
    parallel_for_chunks(n, [&](unsigned chunk, idx_t begin, idx_t end) {
      T prefix = chunk_sum[static_cast<std::size_t>(chunk)];
      for (idx_t i = begin; i < end; ++i) {
        const T value = data[static_cast<std::size_t>(i)];
        data[static_cast<std::size_t>(i)] = prefix;
        prefix += value;
      }
    });
    return running;
  }

  /// Runs fn(participant, granted_width) on `granted_width` concurrent
  /// participants, where granted_width = min(want, 1 + idle workers) and
  /// the caller is participant 0. Unlike parallel dispatch bodies, gang
  /// participants MAY block on each other (futex handshakes): every
  /// granted helper is backed by a live idle worker, taken with strict
  /// priority, so the gang always runs at its granted width. Returns the
  /// granted width. From inside a worker, or with want <= 1, runs
  /// fn(0, 1) inline.
  unsigned run_gang(unsigned want,
                    const std::function<void(idx_t, unsigned)>& fn);

  /// Queues a fire-and-forget job on this arena (session step execution).
  /// The job runs on some pool worker with in_worker() true, so every
  /// dispatch it issues runs inline at width 1 — which is why a session's
  /// results are bit-identical to running it alone (width-independence).
  /// A throwing job is counted in stats().jobs_failed and swallowed;
  /// callers that need the error must capture it inside the job.
  void submit(std::function<void()> job);

  /// Blocks until this arena's queue is empty and nothing it popped is
  /// still executing. Must not be called from inside a worker.
  void drain();

 private:
  struct DispatchState;

  void run_dispatch(idx_t n, idx_t chunk_size, unsigned num_chunks,
                    unsigned width_now,
                    const std::function<void(unsigned, idx_t, idx_t)>& fn);
  static void drain_dispatch(DispatchState& s);

  WorkerPool& pool_;
  ArenaOptions options_;
  std::unique_ptr<WorkerPool::ArenaQueue> queue_;
  std::atomic<wgt_t> jobs_failed_{0};
};

/// Binds an arena to the current thread for the duration: ThreadPool's
/// facade dispatch methods route through the bound arena instead of the
/// default one, so library code deep inside a session's step (partitioner,
/// graph builders, the async executor) lands on the session's queue with
/// the session's fair-share weight — without threading an arena reference
/// through every call signature.
class ArenaScope {
 public:
  explicit ArenaScope(TaskArena& arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// Arena bound to the current thread, or nullptr.
  static TaskArena* current();

 private:
  TaskArena* prev_;
};

}  // namespace cpart
