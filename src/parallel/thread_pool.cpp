#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace cpart {

namespace {

std::string group_message(const std::vector<ParallelGroupError::Failure>& fs) {
  std::ostringstream os;
  os << fs.size() << " parallel tasks failed:";
  for (const auto& f : fs) {
    os << " [" << f.index << "] " << f.message << ";";
  }
  return os.str();
}

/// Turns the collected (chunk, exception) list into the dispatch's outcome:
/// nothing, the single original exception, or one aggregated group error.
[[noreturn]] void raise_collected(
    std::vector<std::pair<unsigned, std::exception_ptr>>&& errors) {
  if (errors.size() == 1) {
    std::rethrow_exception(errors.front().second);
  }
  std::sort(errors.begin(), errors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ParallelGroupError::Failure> failures;
  failures.reserve(errors.size());
  for (auto& [chunk, err] : errors) {
    ParallelGroupError::Failure f;
    f.index = static_cast<idx_t>(chunk);
    try {
      std::rethrow_exception(err);
    } catch (const std::exception& e) {
      f.message = e.what();
    } catch (...) {
      f.message = "unknown exception";
    }
    failures.push_back(std::move(f));
  }
  throw ParallelGroupError(std::move(failures));
}

/// Set while this thread executes a chunk/task of any dispatch. Nested
/// dispatches check it and run inline: the pool's one-task-at-a-time
/// protocol (task_, generation_, pending_) cannot represent two concurrent
/// dispatches, so a worker re-entering parallel_for would corrupt the
/// in-flight one.
thread_local bool t_in_worker = false;

}  // namespace

ParallelGroupError::ParallelGroupError(std::vector<Failure> failures)
    : std::runtime_error(group_message(failures)),
      failures_(std::move(failures)) {}

ThreadPool::ThreadPool(unsigned num_threads) {
  // The requested worker count is honored even above the hardware
  // concurrency. Oversubscription costs context switches, but a worker is
  // also a unit of barrier-phased SPMD execution (runtime/rank_executor
  // run_phases): thread-count sweeps and sanitizer runs need W real workers
  // to exercise W-way interleavings whatever box they land on. Results are
  // unaffected — every parallel computation in this library is
  // bit-identical at any pool size (see docs/parallelism.md).
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

unsigned ThreadPool::dispatch_width() const {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = num_threads();  // unknown: trust the pool size
  return std::min(num_threads(), std::max(1u, hw));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_task(const Task& task, unsigned chunk) {
  const idx_t begin = static_cast<idx_t>(chunk) * task.chunk_size;
  const idx_t end = std::min<idx_t>(task.n, begin + task.chunk_size);
  if (begin >= end) return;
  try {
    t_in_worker = true;
    task.fn(chunk, begin, end);
    t_in_worker = false;
  } catch (...) {
    t_in_worker = false;
    std::lock_guard<std::mutex> lock(mutex_);
    errors_.emplace_back(chunk, std::current_exception());
  }
}

void ThreadPool::wait_and_rethrow() {
  std::vector<std::pair<unsigned, std::exception_ptr>> errors;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
    errors = std::exchange(errors_, {});
  }
  if (!errors.empty()) raise_collected(std::move(errors));
}

void ThreadPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || (task_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      // Workers past the dispatch's participant count own no chunks and do
      // not check in: the dispatch completes without waiting for their
      // wake, and they must not copy the Task pointer — the Task lives on
      // the dispatcher's stack only until the last participant checks in.
      if (worker_id >= task_->participants) continue;
      task = task_;
    }
    // Static stride assignment: supports more chunks than participating
    // workers (used by parallel_tasks for coarse-grained task lists).
    for (unsigned c = worker_id; c < task->num_chunks; c += task->stride) {
      run_task(*task, c);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(
    idx_t n, const std::function<void(unsigned, idx_t, idx_t)>& fn) {
  if (n <= 0) return;
  const unsigned width = dispatch_width();
  // Small ranges, single-wide dispatches, and dispatches issued from inside
  // a worker run inline: the first two are cheaper that way, the last keeps
  // the pool re-entrant (nested dispatches cannot share the single Task
  // slot; see t_in_worker).
  constexpr idx_t kInlineThreshold = 2048;
  if (width <= 1 || n <= kInlineThreshold || in_worker()) {
    fn(0, 0, n);
    return;
  }
  Task task;
  task.fn = fn;
  task.n = n;
  task.num_chunks = std::min<unsigned>(width, static_cast<unsigned>(
      ceil_div<idx_t>(n, kInlineThreshold / 2)));
  // Callers size per-chunk scratch buffers by num_threads(); the chunk index
  // handed to fn must stay below that.
  assert(task.num_chunks <= num_threads());
  task.chunk_size = ceil_div<idx_t>(n, static_cast<idx_t>(task.num_chunks));
  // One chunk per participating worker (num_chunks <= width == stride).
  task.participants = task.num_chunks;
  task.stride = width;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    pending_ = task.participants;
    ++generation_;
  }
  cv_start_.notify_all();
  wait_and_rethrow();
}

void ThreadPool::parallel_tasks(idx_t n,
                                const std::function<void(idx_t)>& task) {
  if (n <= 0) return;
  const unsigned width = dispatch_width();
  if (width <= 1 || n == 1 || in_worker()) {
    // The inline path keeps the pool's BSP failure semantics: every task
    // runs even when an earlier one throws, and multiple failures
    // aggregate exactly as the threaded path would.
    std::vector<std::pair<unsigned, std::exception_ptr>> errors;
    for (idx_t i = 0; i < n; ++i) {
      try {
        task(i);
      } catch (...) {
        errors.emplace_back(static_cast<unsigned>(i),
                            std::current_exception());
      }
    }
    if (!errors.empty()) raise_collected(std::move(errors));
    return;
  }
  Task t;
  t.fn = [&task](unsigned, idx_t begin, idx_t end) {
    for (idx_t i = begin; i < end; ++i) task(i);
  };
  t.n = n;
  t.chunk_size = 1;
  t.num_chunks = static_cast<unsigned>(n);
  t.participants = std::min(width, t.num_chunks);
  t.stride = width;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &t;
    pending_ = t.participants;
    ++generation_;
  }
  cv_start_.notify_all();
  wait_and_rethrow();
}

namespace {

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_threads(unsigned num_threads) {
  // Build the replacement first so the old pool's workers are joined only
  // after the swap; callers guarantee no parallel work is in flight.
  auto fresh = std::make_unique<ThreadPool>(num_threads);
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  global_pool_slot().swap(fresh);
}

}  // namespace cpart
