#include "parallel/thread_pool.hpp"

#include <memory>
#include <mutex>

namespace cpart {

namespace {

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_threads(unsigned num_threads) {
  // Build the replacement first so the old pool's workers are joined only
  // after the swap; callers guarantee no parallel work is in flight.
  auto fresh = std::make_unique<ThreadPool>(num_threads);
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  global_pool_slot().swap(fresh);
}

}  // namespace cpart
