// Incremental construction of CsrGraph from unordered edge insertions.
//
// Meshes and tests build graphs edge-by-edge; GraphBuilder deduplicates,
// symmetrizes, and emits CSR in one pass. Inserting the same edge twice
// keeps the maximum weight (useful when both endpoints report the edge).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace cpart {

/// How duplicate edge insertions combine.
enum class DupPolicy {
  kMax,  // keep the maximum weight (mesh edges reported by many elements)
  kSum,  // sum the weights (aggregating a quotient/collapsed graph)
};

class GraphBuilder {
 public:
  explicit GraphBuilder(idx_t num_vertices);

  idx_t num_vertices() const { return n_; }

  /// Adds the undirected edge {u, v} with weight w. Self-loops are rejected.
  void add_edge(idx_t u, idx_t v, wgt_t w = 1);

  /// Sets the full vertex-weight array (interleaved, size n*ncon).
  void set_vertex_weights(std::vector<wgt_t> vwgt, idx_t ncon);

  /// Emits the CSR graph. The builder is left empty afterwards.
  CsrGraph build(DupPolicy duplicates = DupPolicy::kMax);

 private:
  idx_t n_;
  idx_t ncon_ = 1;
  std::vector<wgt_t> vwgt_;
  // COO triples with u < v; deduplicated at build time.
  std::vector<idx_t> src_, dst_;
  std::vector<wgt_t> wgt_;
};

/// Convenience: builds the unweighted path graph 0-1-2-...-(n-1).
CsrGraph make_path_graph(idx_t n);

/// Convenience: builds the unweighted (nx x ny) grid graph, vertex (i, j)
/// at index i*ny + j with 4-neighbour connectivity.
CsrGraph make_grid_graph(idx_t nx, idx_t ny);

/// Convenience: 3D grid graph with 6-neighbour connectivity, vertex
/// (i, j, k) at index (i*ny + j)*nz + k.
CsrGraph make_grid_graph_3d(idx_t nx, idx_t ny, idx_t nz);

}  // namespace cpart
