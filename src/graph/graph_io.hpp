// Graph and partition file I/O in the METIS formats, so graphs and
// partitions interoperate with the wider partitioning ecosystem.
//
// Graph file (METIS manual, section 4.5):
//   % comment lines
//   <n> <m> [<fmt> [<ncon>]]
//   then one line per vertex: [w_1 ... w_ncon] v1 [e1] v2 [e2] ...
// with 1-indexed neighbour ids; fmt is a 3-digit flag string whose last
// digit enables edge weights and middle digit vertex weights (vertex sizes,
// the first digit, are not supported). Partition files hold one partition
// id per line.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"

namespace cpart {

void write_metis_graph(std::ostream& os, const CsrGraph& g);
void write_metis_graph_file(const std::string& path, const CsrGraph& g);

/// Parses a METIS graph stream; throws InputError on malformed input
/// (including asymmetric adjacency).
CsrGraph read_metis_graph(std::istream& is);
CsrGraph read_metis_graph_file(const std::string& path);

void write_partition(std::ostream& os, std::span<const idx_t> part);
void write_partition_file(const std::string& path, std::span<const idx_t> part);

/// Reads a partition file; `expected_size` 0 skips the size check.
std::vector<idx_t> read_partition(std::istream& is, idx_t expected_size = 0);
std::vector<idx_t> read_partition_file(const std::string& path,
                                       idx_t expected_size = 0);

}  // namespace cpart
