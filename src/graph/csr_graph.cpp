#include "graph/csr_graph.hpp"

#include <algorithm>

namespace cpart {

CsrGraph::CsrGraph(std::vector<idx_t> xadj, std::vector<idx_t> adjncy,
                   std::vector<wgt_t> vwgt, std::vector<wgt_t> adjwgt,
                   idx_t ncon)
    : xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      vwgt_(std::move(vwgt)),
      adjwgt_(std::move(adjwgt)),
      ncon_(ncon) {
  validate();
}

void CsrGraph::validate() const {
  require(!xadj_.empty(), "CsrGraph: xadj must have at least one entry");
  require(xadj_.front() == 0, "CsrGraph: xadj[0] must be 0");
  require(xadj_.back() == to_idx(adjncy_.size()),
          "CsrGraph: xadj back must equal adjncy size");
  require(ncon_ >= 1, "CsrGraph: ncon must be >= 1");
  const idx_t n = num_vertices();
  for (std::size_t i = 0; i + 1 < xadj_.size(); ++i) {
    require(xadj_[i] <= xadj_[i + 1], "CsrGraph: xadj must be non-decreasing");
  }
  for (idx_t u : adjncy_) {
    require(u >= 0 && u < n, "CsrGraph: neighbour index out of range");
  }
  require(vwgt_.empty() ||
              vwgt_.size() == static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(ncon_),
          "CsrGraph: vwgt size must be n*ncon");
  require(adjwgt_.empty() || adjwgt_.size() == adjncy_.size(),
          "CsrGraph: adjwgt size must match adjncy");
  require(adjncy_.size() % 2 == 0,
          "CsrGraph: adjacency must store each undirected edge twice");
}

wgt_t CsrGraph::total_vertex_weight(idx_t c) const {
  const idx_t n = num_vertices();
  if (vwgt_.empty()) return n;
  wgt_t total = 0;
  for (idx_t v = 0; v < n; ++v) total += vertex_weight(v, c);
  return total;
}

void CsrGraph::set_vertex_weights(std::vector<wgt_t> vwgt, idx_t ncon) {
  require(ncon >= 1, "set_vertex_weights: ncon must be >= 1");
  require(vwgt.size() == static_cast<std::size_t>(num_vertices()) *
                             static_cast<std::size_t>(ncon),
          "set_vertex_weights: size must be n*ncon");
  vwgt_ = std::move(vwgt);
  ncon_ = ncon;
}

void CsrGraph::set_edge_weights(std::vector<wgt_t> adjwgt) {
  require(adjwgt.size() == adjncy_.size(),
          "set_edge_weights: size must be 2m");
  adjwgt_ = std::move(adjwgt);
}

bool CsrGraph::is_symmetric() const {
  const idx_t n = num_vertices();
  // Sort each adjacency list's (neighbour, weight) pairs and check that the
  // transposed entry exists with equal weight.
  std::vector<std::vector<std::pair<idx_t, wgt_t>>> sorted(
      static_cast<std::size_t>(n));
  for (idx_t v = 0; v < n; ++v) {
    auto nbrs = neighbors(v);
    auto& lst = sorted[static_cast<std::size_t>(v)];
    lst.reserve(nbrs.size());
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      lst.emplace_back(nbrs[static_cast<std::size_t>(j)], edge_weight(v, j));
    }
    std::sort(lst.begin(), lst.end());
  }
  for (idx_t v = 0; v < n; ++v) {
    for (const auto& [u, w] : sorted[static_cast<std::size_t>(v)]) {
      if (u == v) return false;  // self loops are not allowed
      const auto& other = sorted[static_cast<std::size_t>(u)];
      if (!std::binary_search(other.begin(), other.end(),
                              std::make_pair(v, w))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace cpart
