// Compressed-sparse-row graph with vector vertex weights and scalar edge
// weights — the input format of every partitioning algorithm in the library.
//
// Layout follows the METIS convention:
//   xadj   : size n+1, adjacency offsets
//   adjncy : size 2m, neighbour lists (each undirected edge stored twice)
//   adjwgt : size 2m, per-direction edge weights (symmetric)
//   vwgt   : size n*ncon, interleaved vertex weight vectors
// An empty vwgt/adjwgt means "all ones".
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace cpart {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of prebuilt CSR arrays. `ncon` is the number of vertex
  /// weight components; pass vwgt empty for unit weights. Validates shape
  /// (sizes, offsets monotone, indices in range) and throws InputError on
  /// malformed input.
  CsrGraph(std::vector<idx_t> xadj, std::vector<idx_t> adjncy,
           std::vector<wgt_t> vwgt = {}, std::vector<wgt_t> adjwgt = {},
           idx_t ncon = 1);

  idx_t num_vertices() const { return to_idx(xadj_.size()) - 1; }
  /// Number of undirected edges (adjncy stores each twice).
  idx_t num_edges() const { return to_idx(adjncy_.size() / 2); }
  idx_t ncon() const { return ncon_; }

  idx_t degree(idx_t v) const {
    return xadj_[static_cast<std::size_t>(v) + 1] -
           xadj_[static_cast<std::size_t>(v)];
  }

  /// Neighbour ids of v.
  std::span<const idx_t> neighbors(idx_t v) const {
    return {adjncy_.data() + xadj_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(degree(v))};
  }

  /// Edge weights aligned with neighbors(v). Valid only when has_edge_weights().
  std::span<const wgt_t> edge_weights(idx_t v) const {
    assert(has_edge_weights());
    return {adjwgt_.data() + xadj_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(degree(v))};
  }

  bool has_edge_weights() const { return !adjwgt_.empty(); }
  bool has_vertex_weights() const { return !vwgt_.empty(); }

  /// Weight of the j-th incident edge of v (1 when unweighted).
  wgt_t edge_weight(idx_t v, idx_t j) const {
    return adjwgt_.empty()
               ? 1
               : adjwgt_[static_cast<std::size_t>(
                     xadj_[static_cast<std::size_t>(v)] + j)];
  }

  /// The c-th weight component of vertex v (1 when unweighted).
  wgt_t vertex_weight(idx_t v, idx_t c = 0) const {
    assert(c >= 0 && c < ncon_);
    return vwgt_.empty()
               ? 1
               : vwgt_[static_cast<std::size_t>(v) * ncon_ +
                       static_cast<std::size_t>(c)];
  }

  /// Sum of the c-th weight component over all vertices.
  wgt_t total_vertex_weight(idx_t c = 0) const;

  const std::vector<idx_t>& xadj() const { return xadj_; }
  const std::vector<idx_t>& adjncy() const { return adjncy_; }
  const std::vector<wgt_t>& vwgt() const { return vwgt_; }
  const std::vector<wgt_t>& adjwgt() const { return adjwgt_; }

  /// Replaces vertex weights (size must be n*new_ncon; may change ncon).
  void set_vertex_weights(std::vector<wgt_t> vwgt, idx_t ncon);
  /// Replaces edge weights (size must be 2m).
  void set_edge_weights(std::vector<wgt_t> adjwgt);

  /// Checks structural symmetry: (u,v) present iff (v,u) present with the
  /// same weight. O(m log d). Used by tests and input validation.
  bool is_symmetric() const;

 private:
  void validate() const;

  std::vector<idx_t> xadj_{0};
  std::vector<idx_t> adjncy_;
  std::vector<wgt_t> vwgt_;
  std::vector<wgt_t> adjwgt_;
  idx_t ncon_ = 1;
};

}  // namespace cpart
