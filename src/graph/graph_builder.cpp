#include "graph/graph_builder.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

namespace cpart {

GraphBuilder::GraphBuilder(idx_t num_vertices) : n_(num_vertices) {
  require(num_vertices >= 0, "GraphBuilder: negative vertex count");
}

void GraphBuilder::add_edge(idx_t u, idx_t v, wgt_t w) {
  require(u >= 0 && u < n_ && v >= 0 && v < n_,
          "GraphBuilder::add_edge: vertex out of range");
  require(u != v, "GraphBuilder::add_edge: self loops not allowed");
  require(w > 0, "GraphBuilder::add_edge: weights must be positive");
  if (u > v) std::swap(u, v);
  src_.push_back(u);
  dst_.push_back(v);
  wgt_.push_back(w);
}

void GraphBuilder::set_vertex_weights(std::vector<wgt_t> vwgt, idx_t ncon) {
  require(ncon >= 1, "GraphBuilder: ncon must be >= 1");
  require(vwgt.size() == static_cast<std::size_t>(n_) *
                             static_cast<std::size_t>(ncon),
          "GraphBuilder: vwgt size must be n*ncon");
  vwgt_ = std::move(vwgt);
  ncon_ = ncon;
}

CsrGraph GraphBuilder::build(DupPolicy duplicates) {
  // Sort (u, v) pairs and merge duplicates keeping max weight.
  const std::size_t m = src_.size();
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::tie(src_[a], dst_[a]) < std::tie(src_[b], dst_[b]);
  });
  std::vector<idx_t> us, vs;
  std::vector<wgt_t> ws;
  us.reserve(m);
  vs.reserve(m);
  ws.reserve(m);
  for (std::size_t oi = 0; oi < m; ++oi) {
    const std::size_t e = order[oi];
    if (!us.empty() && us.back() == src_[e] && vs.back() == dst_[e]) {
      if (duplicates == DupPolicy::kSum) {
        ws.back() += wgt_[e];
      } else {
        ws.back() = std::max(ws.back(), wgt_[e]);
      }
    } else {
      us.push_back(src_[e]);
      vs.push_back(dst_[e]);
      ws.push_back(wgt_[e]);
    }
  }
  src_.clear();
  dst_.clear();
  wgt_.clear();

  // Count degrees for both directions, then fill.
  std::vector<idx_t> xadj(static_cast<std::size_t>(n_) + 1, 0);
  for (std::size_t e = 0; e < us.size(); ++e) {
    ++xadj[static_cast<std::size_t>(us[e]) + 1];
    ++xadj[static_cast<std::size_t>(vs[e]) + 1];
  }
  for (std::size_t i = 1; i < xadj.size(); ++i) xadj[i] += xadj[i - 1];
  std::vector<idx_t> adjncy(static_cast<std::size_t>(xadj.back()));
  std::vector<wgt_t> adjwgt(adjncy.size());
  std::vector<idx_t> cursor(xadj.begin(), xadj.end() - 1);
  for (std::size_t e = 0; e < us.size(); ++e) {
    const idx_t u = us[e], v = vs[e];
    const wgt_t w = ws[e];
    adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)])] = v;
    adjwgt[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = w;
    adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)])] = u;
    adjwgt[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = w;
  }
  CsrGraph g(std::move(xadj), std::move(adjncy), std::move(vwgt_),
             std::move(adjwgt), ncon_);
  vwgt_.clear();
  ncon_ = 1;
  return g;
}

CsrGraph make_path_graph(idx_t n) {
  GraphBuilder b(n);
  for (idx_t i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

CsrGraph make_grid_graph(idx_t nx, idx_t ny) {
  GraphBuilder b(nx * ny);
  auto id = [ny](idx_t i, idx_t j) { return i * ny + j; };
  for (idx_t i = 0; i < nx; ++i) {
    for (idx_t j = 0; j < ny; ++j) {
      if (i + 1 < nx) b.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < ny) b.add_edge(id(i, j), id(i, j + 1));
    }
  }
  return b.build();
}

CsrGraph make_grid_graph_3d(idx_t nx, idx_t ny, idx_t nz) {
  GraphBuilder b(nx * ny * nz);
  auto id = [ny, nz](idx_t i, idx_t j, idx_t k) {
    return (i * ny + j) * nz + k;
  };
  for (idx_t i = 0; i < nx; ++i) {
    for (idx_t j = 0; j < ny; ++j) {
      for (idx_t k = 0; k < nz; ++k) {
        if (i + 1 < nx) b.add_edge(id(i, j, k), id(i + 1, j, k));
        if (j + 1 < ny) b.add_edge(id(i, j, k), id(i, j + 1, k));
        if (k + 1 < nz) b.add_edge(id(i, j, k), id(i, j, k + 1));
      }
    }
  }
  return b.build();
}

}  // namespace cpart
