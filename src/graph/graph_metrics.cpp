#include "graph/graph_metrics.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/thread_pool.hpp"

namespace cpart {

wgt_t edge_cut(const CsrGraph& g, std::span<const idx_t> part) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "edge_cut: partition size mismatch");
  auto& pool = ThreadPool::global();
  // Each undirected edge appears twice in CSR; sum both directions, halve.
  const wgt_t twice = pool.parallel_reduce<wgt_t>(
      g.num_vertices(), 0, [&](idx_t v) {
        wgt_t local = 0;
        auto nbrs = g.neighbors(v);
        for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
          const idx_t u = nbrs[static_cast<std::size_t>(j)];
          if (part[static_cast<std::size_t>(u)] !=
              part[static_cast<std::size_t>(v)]) {
            local += g.edge_weight(v, j);
          }
        }
        return local;
      });
  return twice / 2;
}

wgt_t total_comm_volume(const CsrGraph& g, std::span<const idx_t> part) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "total_comm_volume: partition size mismatch");
  auto& pool = ThreadPool::global();
  return pool.parallel_reduce<wgt_t>(g.num_vertices(), 0, [&](idx_t v) {
    const idx_t pv = part[static_cast<std::size_t>(v)];
    // Collect distinct external partitions adjacent to v. Degrees are small
    // (mesh graphs), so a local vector beats a hash set.
    idx_t ext[64];
    idx_t n_ext = 0;
    std::vector<idx_t> overflow;
    for (idx_t u : g.neighbors(v)) {
      const idx_t pu = part[static_cast<std::size_t>(u)];
      if (pu == pv) continue;
      bool seen = false;
      for (idx_t i = 0; i < std::min<idx_t>(n_ext, 64); ++i) {
        if (ext[static_cast<std::size_t>(i)] == pu) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        for (idx_t p : overflow) {
          if (p == pu) {
            seen = true;
            break;
          }
        }
      }
      if (!seen) {
        if (n_ext < 64) {
          ext[static_cast<std::size_t>(n_ext)] = pu;
        } else {
          overflow.push_back(pu);
        }
        ++n_ext;
      }
    }
    return static_cast<wgt_t>(n_ext);
  });
}

std::vector<wgt_t> partition_weights(const CsrGraph& g,
                                     std::span<const idx_t> part, idx_t k,
                                     idx_t c) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "partition_weights: partition size mismatch");
  require(k > 0, "partition_weights: k must be positive");
  auto& pool = ThreadPool::global();
  // Per-chunk weight histograms combined in chunk order: deterministic for
  // any thread count. Range errors are flagged, not thrown, inside workers
  // (throwing on a pool thread would terminate) and re-raised afterwards.
  std::vector<std::vector<wgt_t>> partial(
      std::max<unsigned>(1u, pool.num_threads()));
  std::atomic<bool> out_of_range{false};
  pool.parallel_for_chunks(
      g.num_vertices(), [&](unsigned chunk, idx_t begin, idx_t end) {
        assert(static_cast<std::size_t>(chunk) < partial.size());
        auto& w = partial[static_cast<std::size_t>(chunk)];
        w.assign(static_cast<std::size_t>(k), 0);
        for (idx_t v = begin; v < end; ++v) {
          const idx_t p = part[static_cast<std::size_t>(v)];
          if (p < 0 || p >= k) {
            out_of_range.store(true, std::memory_order_relaxed);
            continue;
          }
          w[static_cast<std::size_t>(p)] += g.vertex_weight(v, c);
        }
      });
  require(!out_of_range.load(),
          "partition_weights: partition id out of range");
  std::vector<wgt_t> w(static_cast<std::size_t>(k), 0);
  for (const auto& pw : partial) {
    for (std::size_t p = 0; p < pw.size(); ++p) w[p] += pw[p];
  }
  return w;
}

double load_imbalance(const CsrGraph& g, std::span<const idx_t> part, idx_t k,
                      idx_t c) {
  const std::vector<wgt_t> w = partition_weights(g, part, k, c);
  wgt_t total = 0, maxw = 0;
  for (wgt_t x : w) {
    total += x;
    maxw = std::max(maxw, x);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(maxw) * static_cast<double>(k) /
         static_cast<double>(total);
}

double max_load_imbalance(const CsrGraph& g, std::span<const idx_t> part,
                          idx_t k) {
  double worst = 0.0;
  for (idx_t c = 0; c < g.ncon(); ++c) {
    worst = std::max(worst, load_imbalance(g, part, k, c));
  }
  return worst;
}

idx_t boundary_vertex_count(const CsrGraph& g, std::span<const idx_t> part) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "boundary_vertex_count: partition size mismatch");
  auto& pool = ThreadPool::global();
  return static_cast<idx_t>(
      pool.parallel_reduce<wgt_t>(g.num_vertices(), 0, [&](idx_t v) {
        for (idx_t u : g.neighbors(v)) {
          if (part[static_cast<std::size_t>(u)] !=
              part[static_cast<std::size_t>(v)]) {
            return wgt_t{1};
          }
        }
        return wgt_t{0};
      }));
}

bool is_valid_partition(std::span<const idx_t> part, idx_t k) {
  return std::all_of(part.begin(), part.end(),
                     [k](idx_t p) { return p >= 0 && p < k; });
}

}  // namespace cpart
