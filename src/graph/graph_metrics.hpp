// Partition-quality metrics: edge-cut, total communication volume,
// per-constraint partition weights and load imbalance.
//
// Definitions follow Section 2 of the paper:
//   EdgeCut(P)        = sum of weights of edges cut by P
//   w_j(V_i)          = sum of the j-th weight component over partition i
//   LoadImbalance(P,j)= max_i w_j(V_i) / (w_j(V)/k)
// Total communication volume is Hendrickson's objective: each boundary
// vertex contributes one unit per *distinct* external partition adjacent to
// it (the number of copies of its data that must be shipped).
#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace cpart {

/// Sum of the weights of edges whose endpoints lie in different partitions.
wgt_t edge_cut(const CsrGraph& g, std::span<const idx_t> part);

/// Total communication volume (see header comment).
wgt_t total_comm_volume(const CsrGraph& g, std::span<const idx_t> part);

/// Per-partition weight sums for constraint `c`: result[i] = w_c(V_i).
std::vector<wgt_t> partition_weights(const CsrGraph& g,
                                     std::span<const idx_t> part, idx_t k,
                                     idx_t c = 0);

/// max_i w_c(V_i) / (w_c(V)/k). Returns 1.0 when the total weight of the
/// constraint is zero (vacuously balanced).
double load_imbalance(const CsrGraph& g, std::span<const idx_t> part, idx_t k,
                      idx_t c = 0);

/// Load imbalance across all constraints: max over c of load_imbalance(c).
double max_load_imbalance(const CsrGraph& g, std::span<const idx_t> part,
                          idx_t k);

/// Number of vertices with at least one neighbour in another partition.
idx_t boundary_vertex_count(const CsrGraph& g, std::span<const idx_t> part);

/// True when every entry of `part` lies in [0, k).
bool is_valid_partition(std::span<const idx_t> part, idx_t k);

}  // namespace cpart
