#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>

#include "graph/graph_builder.hpp"

namespace cpart {

void write_metis_graph(std::ostream& os, const CsrGraph& g) {
  const bool vw = g.has_vertex_weights();
  const bool ew = g.has_edge_weights();
  os << g.num_vertices() << ' ' << g.num_edges();
  if (vw || ew) {
    os << " 0" << (vw ? '1' : '0') << (ew ? '1' : '0');
    if (vw && g.ncon() != 1) os << ' ' << g.ncon();
  }
  os << '\n';
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    auto emit = [&](wgt_t x) {
      if (!first) os << ' ';
      os << x;
      first = false;
    };
    if (vw) {
      for (idx_t c = 0; c < g.ncon(); ++c) emit(g.vertex_weight(v, c));
    }
    auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      emit(nbrs[static_cast<std::size_t>(j)] + 1);  // 1-indexed
      if (ew) emit(g.edge_weight(v, j));
    }
    os << '\n';
  }
}

void write_metis_graph_file(const std::string& path, const CsrGraph& g) {
  std::ofstream os(path);
  require(os.good(), "write_metis_graph_file: cannot open " + path);
  write_metis_graph(os, g);
  require(os.good(), "write_metis_graph_file: write failed for " + path);
}

namespace {

/// Next non-comment line; false at EOF.
bool next_data_line(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    if (!line->empty() && (*line)[0] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

CsrGraph read_metis_graph(std::istream& is) {
  std::string line;
  require(next_data_line(is, &line), "read_metis_graph: empty stream");
  std::istringstream header(line);
  long long n = 0, m = 0;
  std::string fmt = "000";
  idx_t ncon = 1;
  header >> n >> m;
  require(!header.fail() && n >= 0 && m >= 0,
          "read_metis_graph: malformed header");
  if (header >> fmt) {
    require(fmt.size() <= 3, "read_metis_graph: bad fmt field");
    while (fmt.size() < 3) fmt.insert(fmt.begin(), '0');
    require(fmt[0] == '0', "read_metis_graph: vertex sizes unsupported");
    long long nc;
    if (header >> nc) {
      require(nc >= 1, "read_metis_graph: bad ncon");
      ncon = static_cast<idx_t>(nc);
    }
  }
  const bool vw = fmt[1] == '1';
  const bool ew = fmt[2] == '1';
  if (!vw) ncon = 1;

  GraphBuilder builder(static_cast<idx_t>(n));
  std::vector<wgt_t> vwgt;
  if (vw) {
    vwgt.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(ncon));
  }
  for (long long v = 0; v < n; ++v) {
    require(next_data_line(is, &line),
            "read_metis_graph: missing vertex line " + std::to_string(v + 1));
    std::istringstream ls(line);
    if (vw) {
      for (idx_t c = 0; c < ncon; ++c) {
        wgt_t w;
        ls >> w;
        require(!ls.fail(), "read_metis_graph: missing vertex weight on line " +
                                std::to_string(v + 1));
        vwgt.push_back(w);
      }
    }
    long long u;
    while (ls >> u) {
      require(u >= 1 && u <= n, "read_metis_graph: neighbour out of range");
      wgt_t w = 1;
      if (ew) {
        ls >> w;
        require(!ls.fail(), "read_metis_graph: missing edge weight");
      }
      // Each undirected edge appears on both endpoint lines; GraphBuilder
      // deduplicates (kMax keeps the weight, which must agree).
      if (u - 1 != v) {
        builder.add_edge(static_cast<idx_t>(v), static_cast<idx_t>(u - 1), w);
      }
    }
  }
  if (vw) builder.set_vertex_weights(std::move(vwgt), ncon);
  CsrGraph g = builder.build();
  require(g.num_edges() == static_cast<idx_t>(m),
          "read_metis_graph: header edge count " + std::to_string(m) +
              " does not match data (" + std::to_string(g.num_edges()) + ")");
  return g;
}

CsrGraph read_metis_graph_file(const std::string& path) {
  std::ifstream is(path);
  require(is.good(), "read_metis_graph_file: cannot open " + path);
  return read_metis_graph(is);
}

void write_partition(std::ostream& os, std::span<const idx_t> part) {
  for (idx_t p : part) os << p << '\n';
}

void write_partition_file(const std::string& path,
                          std::span<const idx_t> part) {
  std::ofstream os(path);
  require(os.good(), "write_partition_file: cannot open " + path);
  write_partition(os, part);
  require(os.good(), "write_partition_file: write failed for " + path);
}

std::vector<idx_t> read_partition(std::istream& is, idx_t expected_size) {
  std::vector<idx_t> part;
  long long p;
  while (is >> p) {
    require(p >= 0, "read_partition: negative partition id");
    part.push_back(static_cast<idx_t>(p));
  }
  require(expected_size == 0 || to_idx(part.size()) == expected_size,
          "read_partition: expected " + std::to_string(expected_size) +
              " entries, got " + std::to_string(part.size()));
  return part;
}

std::vector<idx_t> read_partition_file(const std::string& path,
                                       idx_t expected_size) {
  std::ifstream is(path);
  require(is.good(), "read_partition_file: cannot open " + path);
  return read_partition(is, expected_size);
}

}  // namespace cpart
