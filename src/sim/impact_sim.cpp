#include "sim/impact_sim.hpp"

#include <algorithm>
#include <cmath>

#include "mesh/generators.hpp"
#include "parallel/thread_pool.hpp"

namespace cpart {

namespace {

real_t clamp01(real_t x) { return std::clamp<real_t>(x, 0, 1); }

/// Smoothstep ramp: 0 below a, 1 above b.
real_t ramp(real_t x, real_t a, real_t b) {
  const real_t t = clamp01((x - a) / (b - a));
  return t * t * (3 - 2 * t);
}

}  // namespace

void ImpactSimConfig::scale_resolution(double factor) {
  require(factor > 0, "scale_resolution: factor must be positive");
  const double lin = std::cbrt(factor);
  auto scale = [lin](idx_t v) {
    return std::max<idx_t>(2, static_cast<idx_t>(std::lround(v * lin)));
  };
  plate_cells_xy = scale(plate_cells_xy);
  plate_cells_z = scale(plate_cells_z);
  proj_cells_diameter = scale(proj_cells_diameter);
  proj_cells_z = scale(proj_cells_z);
}

ImpactSim::ImpactSim(const ImpactSimConfig& config) : config_(config) {
  const real_t w = config_.plate_width;
  const real_t t = config_.plate_thickness;
  const real_t gap = config_.plate_gap;

  plate1_top_ = 0;
  plate1_bottom_ = -t;
  plate2_top_ = -t - gap;
  plate2_bottom_ = -2 * t - gap;

  // Upper plate (body 1).
  Mesh mesh = make_hex_box(config_.plate_cells_xy, config_.plate_cells_xy,
                           config_.plate_cells_z, Vec3{-w / 2, -w / 2, plate1_bottom_},
                           Vec3{w, w, t});
  element_body_.assign(static_cast<std::size_t>(mesh.num_elements()),
                       Body::kUpperPlate);
  node_body_.assign(static_cast<std::size_t>(mesh.num_nodes()),
                    Body::kUpperPlate);

  // Lower plate (body 2).
  Mesh plate2 = make_hex_box(config_.plate_cells_xy, config_.plate_cells_xy,
                             config_.plate_cells_z,
                             Vec3{-w / 2, -w / 2, plate2_bottom_}, Vec3{w, w, t});
  mesh.append(plate2);
  element_body_.insert(element_body_.end(),
                       static_cast<std::size_t>(plate2.num_elements()),
                       Body::kLowerPlate);
  node_body_.insert(node_body_.end(),
                    static_cast<std::size_t>(plate2.num_nodes()),
                    Body::kLowerPlate);

  // Projectile (body 0), nose hovering just above the upper plate.
  nose_start_ = 0.15 * t;
  Mesh proj = make_hex_cylinder(config_.proj_radius, config_.proj_length,
                                Vec3{0, 0, nose_start_},
                                config_.proj_cells_diameter,
                                config_.proj_cells_z);
  mesh.append(proj);
  element_body_.insert(element_body_.end(),
                       static_cast<std::size_t>(proj.num_elements()),
                       Body::kProjectile);
  node_body_.insert(node_body_.end(),
                    static_cast<std::size_t>(proj.num_nodes()),
                    Body::kProjectile);

  initial_ = std::move(mesh);
  element_center0_.resize(static_cast<std::size_t>(initial_.num_elements()));
  for (idx_t e = 0; e < initial_.num_elements(); ++e) {
    element_center0_[static_cast<std::size_t>(e)] = initial_.element_center(e);
  }

  // Travel: the nose ends below the lower plate by 60% of its own length,
  // i.e. the projectile fully perforates both plates over the run.
  nose_end_ = plate2_bottom_ - 0.6 * config_.proj_length;
}

real_t ImpactSim::nose_z(idx_t s) const {
  require(s >= 0 && s < config_.num_snapshots, "nose_z: step out of range");
  if (config_.num_snapshots == 1) return nose_start_;
  const real_t f = static_cast<real_t>(s) /
                   static_cast<real_t>(config_.num_snapshots - 1);
  return nose_start_ + f * (nose_end_ - nose_start_);
}

bool ImpactSim::element_eroded(idx_t element, real_t nose) const {
  if (element_body_[static_cast<std::size_t>(element)] == Body::kProjectile) {
    return false;  // the projectile deforms but is not eroded
  }
  const Vec3 c = element_center0_[static_cast<std::size_t>(element)];
  // Under oblique incidence the axis sits at x = obliquity * descent when
  // the nose crosses the element's height — the eroded channel is a tilted
  // cylinder swept by the nose.
  const real_t axis_x = config_.obliquity * (nose_start_ - c.z);
  const real_t rho = std::hypot(c.x - axis_x, c.y);
  // A plate element erodes once the nose has passed its centre while the
  // centre lies inside the (slightly inflated) projectile cross-section.
  return rho <= 1.05 * config_.proj_radius && nose <= c.z;
}

Vec3 ImpactSim::displaced(idx_t node, real_t nose) const {
  const Vec3 p0 = initial_.node(node);
  const Body body = node_body_[static_cast<std::size_t>(node)];
  const real_t r = config_.proj_radius;

  const real_t drift = config_.obliquity * (nose_start_ - nose);
  if (body == Body::kProjectile) {
    // Rigid translation (down plus oblique drift) and nose mushrooming:
    // the leading quarter of the projectile bulges radially as penetration
    // progresses.
    Vec3 p = p0;
    p.z += nose - nose_start_;
    const real_t depth_frac =
        clamp01((nose_start_ - nose) / (nose_start_ - nose_end_));
    const real_t mushroom_zone = 0.25 * config_.proj_length;
    const real_t z_local = p0.z - nose_start_;  // 0 at the nose initially
    if (z_local < mushroom_zone) {
      const real_t s = 1.0 + 0.18 * depth_frac * (1.0 - z_local / mushroom_zone);
      p.x = p0.x * s;
      p.y = p0.y * s;
    }
    p.x += drift;
    return p;
  }

  // Plate node: bulge downward around the impact axis as the nose
  // approaches/passes the plate, and get pushed radially outward near the
  // hole. Both effects freeze once the nose has fully passed the plate
  // (plastic deformation).
  const real_t top = (body == Body::kUpperPlate) ? plate1_top_ : plate2_top_;
  const real_t bottom =
      (body == Body::kUpperPlate) ? plate1_bottom_ : plate2_bottom_;
  // Penetration progress through this plate: 0 before the nose reaches the
  // top, 1 once it has passed below the bottom by one plate thickness.
  const real_t progress =
      ramp(top - nose, 0, (top - bottom) + config_.plate_thickness);
  if (progress <= 0) return p0;

  // Crater centred where the (possibly oblique) axis crosses this plate.
  const real_t crater_x = config_.obliquity * (nose_start_ - top);
  const real_t rho = std::hypot(p0.x - crater_x, p0.y);
  Vec3 p = p0;
  // Downward bulge, Gaussian in radius, capped at 60% plate thickness.
  const real_t bulge = 0.6 * config_.plate_thickness * progress *
                       std::exp(-(rho * rho) / (2.5 * r * r));
  p.z -= bulge;
  // Radial push (crater lip) peaking near the hole radius, centred on the
  // crater.
  if (rho > 1e-9) {
    const real_t push =
        0.35 * r * progress * std::exp(-((rho - r) * (rho - r)) / (2.0 * r * r));
    const real_t scale = (rho + push) / rho;
    p.x = crater_x + (p0.x - crater_x) * scale;
    p.y = p0.y * scale;
  }
  return p;
}

bool ImpactSim::face_in_contact_zone(idx_t first_node,
                                     const Vec3& centroid) const {
  if (config_.contact_zone_factor <= 0) return true;
  if (node_body_[static_cast<std::size_t>(first_node)] == Body::kProjectile) {
    return true;
  }
  const real_t zone = config_.contact_zone_factor * config_.proj_radius;
  const real_t axis_x = config_.obliquity * (nose_start_ - centroid.z);
  return std::hypot(centroid.x - axis_x, centroid.y) <= zone;
}

Mesh ImpactSim::snapshot_mesh(idx_t s, idx_t* eroded) const {
  const real_t nose = nose_z(s);
  Mesh mesh = initial_;
  for (idx_t v = 0; v < mesh.num_nodes(); ++v) {
    mesh.set_node(v, displaced(v, nose));
  }
  std::vector<char> keep(static_cast<std::size_t>(mesh.num_elements()), 1);
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    if (element_eroded(e, nose)) keep[static_cast<std::size_t>(e)] = 0;
  }
  const idx_t removed = mesh.remove_elements(keep);
  if (eroded != nullptr) *eroded = removed;
  return mesh;
}

void ImpactSim::snapshot_into(idx_t s, SnapshotWorkspace& ws,
                              Snapshot& out) const {
  const real_t nose = nose_z(s);
  out.step = s;
  out.nose_z = nose;

  // Deformed mesh: copy-assign reuses out.mesh's storage, then displace
  // every node in parallel (displaced() is a pure function of the node).
  out.mesh = initial_;
  const auto nodes = out.mesh.mutable_nodes();
  ThreadPool::global().parallel_for_chunks(
      out.mesh.num_nodes(), [&](unsigned, idx_t begin, idx_t end) {
        for (idx_t v = begin; v < end; ++v) {
          nodes[static_cast<std::size_t>(v)] = displaced(v, nose);
        }
      });

  // Erosion mask in parallel; the compaction itself stays serial.
  ws.keep_elements.resize(static_cast<std::size_t>(out.mesh.num_elements()));
  ThreadPool::global().parallel_for_chunks(
      out.mesh.num_elements(), [&](unsigned, idx_t begin, idx_t end) {
        for (idx_t e = begin; e < end; ++e) {
          ws.keep_elements[static_cast<std::size_t>(e)] =
              element_eroded(e, nose) ? 0 : 1;
        }
      });
  out.eroded_elements = out.mesh.remove_elements(ws.keep_elements);

  if (config_.contact_zone_factor <= 0) {
    extract_surface_into(out.mesh, ws.surface_ws, out.surface);
    return;
  }
  extract_surface_into(out.mesh, ws.surface_ws, ws.raw_surface);
  // Contact-zone designation (see snapshot()): projectile surface plus
  // plate boundary faces near the impact axis. Pure per-face predicate.
  const real_t zone = config_.contact_zone_factor * config_.proj_radius;
  ws.keep_faces.resize(ws.raw_surface.faces.size());
  ThreadPool::global().parallel_for_chunks(
      ws.raw_surface.num_faces(), [&](unsigned, idx_t begin, idx_t end) {
        for (idx_t f = begin; f < end; ++f) {
          const SurfaceFace& face =
              ws.raw_surface.faces[static_cast<std::size_t>(f)];
          if (node_body_[static_cast<std::size_t>(face.nodes.front())] ==
              Body::kProjectile) {
            ws.keep_faces[static_cast<std::size_t>(f)] = 1;
            continue;
          }
          Vec3 c{};
          for (idx_t id : face.nodes) c = c + out.mesh.node(id);
          c = (1.0 / static_cast<real_t>(face.nodes.size())) * c;
          const real_t axis_x = config_.obliquity * (nose_start_ - c.z);
          ws.keep_faces[static_cast<std::size_t>(f)] =
              std::hypot(c.x - axis_x, c.y) <= zone;
        }
      });
  filter_surface_into(ws.raw_surface, ws.keep_faces, out.mesh.num_nodes(),
                      out.surface);
}

ImpactSim::Snapshot ImpactSim::snapshot(idx_t s) const {
  Snapshot snap;
  snap.step = s;
  snap.nose_z = nose_z(s);
  snap.mesh = snapshot_mesh(s, &snap.eroded_elements);
  snap.surface = extract_surface(snap.mesh);
  if (config_.contact_zone_factor > 0) {
    // Keep the projectile's whole surface plus plate boundary faces near
    // the impact axis — the application-designated contact-surface set.
    const real_t zone = config_.contact_zone_factor * config_.proj_radius;
    std::vector<char> keep(snap.surface.faces.size(), 0);
    for (std::size_t f = 0; f < snap.surface.faces.size(); ++f) {
      const SurfaceFace& face = snap.surface.faces[f];
      if (node_body_[static_cast<std::size_t>(face.nodes.front())] ==
          Body::kProjectile) {
        keep[f] = 1;
        continue;
      }
      Vec3 c{};
      for (idx_t id : face.nodes) c = c + snap.mesh.node(id);
      c = (1.0 / static_cast<real_t>(face.nodes.size())) * c;
      // Zone centred on the (possibly oblique) axis at the face's height.
      const real_t axis_x = config_.obliquity * (nose_start_ - c.z);
      keep[f] = std::hypot(c.x - axis_x, c.y) <= zone;
    }
    snap.surface =
        filter_surface(snap.surface, keep, snap.mesh.num_nodes());
  }
  return snap;
}

}  // namespace cpart
