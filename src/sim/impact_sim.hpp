// Synthetic contact/impact simulation substrate.
//
// The paper's evaluation uses 100 snapshots of an EPIC run of a projectile
// penetrating two plates (proprietary dataset). This module reproduces the
// *geometry class* of that sequence with a closed-form kinematic model: a
// cylindrical hex-mesh projectile travels down through two square plates;
// plate elements in the projectile's path erode (are removed, exposing new
// contact surface), plate nodes bulge and are pushed radially as the nose
// passes, and the projectile nose mushrooms. Every snapshot is a pure
// function of the step index, so snapshots can be generated independently
// and in parallel; node ids are stable across the whole sequence (only
// elements disappear), which is what lets a fixed nodal partition be reused
// across snapshots exactly as the paper's update strategy does.
#pragma once

#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/surface.hpp"

namespace cpart {

struct ImpactSimConfig {
  // Geometry (arbitrary consistent units).
  real_t plate_width = 10.0;      // x/y extent of both square plates
  real_t plate_thickness = 0.8;
  real_t plate_gap = 1.6;         // vertical clearance between the plates
  real_t proj_radius = 1.1;
  real_t proj_length = 3.2;
  // Resolution. Defaults give ~27k nodes — large enough that 100-way
  // decompositions are meaningful, small enough for CI-time benches;
  // scale_resolution(6) approaches the published EPIC mesh magnitude.
  idx_t plate_cells_xy = 48;      // cells along x and y of each plate
  idx_t plate_cells_z = 4;        // cells through each plate's thickness
  idx_t proj_cells_diameter = 12; // cells across the projectile diameter
  idx_t proj_cells_z = 14;        // cells along the projectile length
  // Time stepping.
  idx_t num_snapshots = 100;
  /// Contact-surface designation radius, in units of proj_radius: boundary
  /// faces of the plates are flagged as contact surfaces only within this
  /// distance of the impact axis (the projectile's surface always is).
  /// Non-positive flags every boundary face. This models the application
  /// supplying the contact-surface set, and keeps the contact-node fraction
  /// in the published mesh's regime (~13%) instead of the whole boundary.
  real_t contact_zone_factor = 4.3;

  /// Oblique impact: the projectile axis drifts sideways by this many
  /// x-units per unit of descent (0 = normal incidence). Oblique runs move
  /// the crater across the plates, stressing the incremental-RCB update
  /// (UpdComm) and the per-snapshot descriptor rebuilds.
  real_t obliquity = 0.0;

  /// Scales the resolution so total node counts approach the published
  /// EPIC mesh magnitude (~156k nodes). Factor 1 keeps the defaults.
  void scale_resolution(double factor);
};

/// Body id of an element or node: projectile, upper plate, lower plate.
enum class Body : int { kProjectile = 0, kUpperPlate = 1, kLowerPlate = 2 };

class ImpactSim {
 public:
  explicit ImpactSim(const ImpactSimConfig& config = {});

  idx_t num_snapshots() const { return config_.num_snapshots; }
  const ImpactSimConfig& config() const { return config_; }

  /// The undeformed, un-eroded mesh at step 0 (node ids of every snapshot
  /// refer to this node array).
  const Mesh& initial_mesh() const { return initial_; }

  /// Body of each initial-mesh element / node.
  const std::vector<Body>& element_body() const { return element_body_; }
  const std::vector<Body>& node_body() const { return node_body_; }

  /// Projectile nose z-coordinate at step s.
  real_t nose_z(idx_t s) const;

  struct Snapshot {
    idx_t step = 0;
    Mesh mesh;        // deformed nodes, eroded elements removed
    Surface surface;  // current boundary faces and contact nodes
    real_t nose_z = 0;
    idx_t eroded_elements = 0;
  };

  /// Generates snapshot s in [0, num_snapshots).
  Snapshot snapshot(idx_t s) const;

  /// Generates only the deformed/eroded mesh of snapshot s (cheaper when
  /// the surface is not needed).
  Mesh snapshot_mesh(idx_t s, idx_t* eroded = nullptr) const;

  /// Reusable cross-snapshot scratch for snapshot_into. Buffers grow to
  /// the mesh size on first use and are reused afterwards.
  struct SnapshotWorkspace {
    SurfaceWorkspace surface_ws;
    Surface raw_surface;  // pre-contact-zone boundary surface
    std::vector<char> keep_elements;
    std::vector<char> keep_faces;
  };

  /// snapshot() writing into `out` (mesh/surface storage reused) with all
  /// scratch drawn from `ws`. The displacement, erosion, and contact-zone
  /// loops run in parallel over ThreadPool chunks; each is a pure function
  /// of its element, so the result is identical to snapshot(s) at any
  /// thread count.
  void snapshot_into(idx_t s, SnapshotWorkspace& ws, Snapshot& out) const;

  // Closed-form per-entity kinematics, public so a rank-owned distributed
  // state can advance exactly the nodes/elements it owns (each is a pure
  // function of (entity, nose) — the per-rank update is embarrassingly
  // parallel and bit-identical to the central snapshot).

  /// Deformed position of `node` (initial-mesh id) at nose height `nose`.
  Vec3 displaced(idx_t node, real_t nose) const;
  /// Whether initial-mesh element `element` has eroded at `nose`.
  bool element_eroded(idx_t element, real_t nose) const;
  /// The contact-zone designation predicate on one boundary face, given its
  /// first node (body lookup) and its *deformed* centroid — exactly the
  /// keep-test snapshot()/snapshot_into() apply per face.
  bool face_in_contact_zone(idx_t first_node, const Vec3& centroid) const;

 private:
  ImpactSimConfig config_;
  Mesh initial_;
  std::vector<Body> element_body_;
  std::vector<Body> node_body_;
  std::vector<Vec3> element_center0_;  // undeformed element centroids
  real_t nose_start_ = 0;
  real_t nose_end_ = 0;
  real_t plate1_top_ = 0, plate1_bottom_ = 0;
  real_t plate2_top_ = 0, plate2_bottom_ = 0;
};

}  // namespace cpart
