// Wire codec for the repartition label broadcast (LabelBatchMsg::blob).
//
// A repartition changes the owner of a (usually small, spatially clustered)
// subset of nodes. The old transport shipped one 16-byte LabelUpdateMsg per
// changed node; this codec packs the whole batch into one blob:
//
//   varint update_count
//   update_count x { varint node_delta, varint owner }
//
// Updates are sorted by node id and delta-encoded (delta_0 = node_0,
// delta_i = node_i - node_{i-1}, so every delta after the first is >= 1).
// Changed nodes cluster along partition seams, so deltas are small and most
// updates cost 2-3 bytes — better than 5x under the fixed-width stream.
//
// decode_label_updates is the untrusted half: it bounds the declared count
// against the remaining bytes, rejects unsorted/duplicate node ids and
// trailing garbage, and throws TreeParseError (the pipelines' "payload
// failed validation after transport accepted the frame" error, which the
// SPMD step catches to degrade to the reference path).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace cpart {

/// One ownership change: node `first` now belongs to partition `second`.
/// Matches SubdomainState::pending_labels.
using LabelUpdate = std::pair<idx_t, idx_t>;

/// Encodes `updates` into a blob. Requires node ids strictly ascending and
/// both fields non-negative (the repartitioner emits them that way).
std::string encode_label_updates(const std::vector<LabelUpdate>& updates);

/// Decodes a blob produced by encode_label_updates. Throws TreeParseError
/// on truncation, overlong varints, non-ascending node ids, out-of-range
/// values, or trailing bytes.
std::vector<LabelUpdate> decode_label_updates(std::string_view blob);

}  // namespace cpart
