#include "runtime/rank_executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "runtime/exchange.hpp"
#include "util/timer.hpp"

namespace cpart {

[[noreturn]] void raise_rank_errors(
    std::vector<std::pair<idx_t, std::exception_ptr>>&& errors) {
  if (errors.size() == 1) {
    std::rethrow_exception(errors.front().second);
  }
  std::sort(errors.begin(), errors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ParallelGroupError::Failure> failures;
  failures.reserve(errors.size());
  for (auto& [rank, err] : errors) {
    ParallelGroupError::Failure f;
    f.index = rank;
    try {
      std::rethrow_exception(err);
    } catch (const std::exception& e) {
      f.message = e.what();
    } catch (...) {
      f.message = "unknown exception";
    }
    failures.push_back(std::move(f));
  }
  throw ParallelGroupError(std::move(failures));
}

unsigned rank_dispatch_workers(const ThreadPool& pool, idx_t k) {
  // Inside parallel work (a session step job, a parallel_tasks body) the
  // dispatch runs inline on the calling thread only, so a striped loop at
  // W > 1 would execute its workers sequentially — fatal for gang bodies
  // that block on sibling workers (the async executor's futex waits).
  // Width 1 is always valid: results are width-independent by invariant.
  if (ThreadPool::in_worker()) return 1;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = pool.num_threads();  // unknown: trust the pool size
  const unsigned cap = std::min(std::max(1u, pool.num_threads()),
                                std::max(1u, hw));
  return static_cast<unsigned>(
      std::min<idx_t>(static_cast<idx_t>(cap), k));
}

RankExecutor::RankExecutor(idx_t k) : k_(k) {
  require(k >= 1, "RankExecutor: k must be >= 1");
}

void RankExecutor::superstep(const std::function<void(idx_t)>& body) const {
  run_striped(body, {});
}

void RankExecutor::superstep_timed(const std::function<void(idx_t)>& body,
                                   std::span<double> ms_accum) const {
  require(ms_accum.size() == static_cast<std::size_t>(k_),
          "RankExecutor::superstep_timed: accumulator size mismatch");
  run_striped(body, ms_accum);
}

void RankExecutor::run_striped(const std::function<void(idx_t)>& body,
                               std::span<double> ms_accum) const {
  ThreadPool& pool = ThreadPool::global();
  const unsigned W = rank_dispatch_workers(pool, k_);
  std::vector<std::exception_ptr> rank_errors(static_cast<std::size_t>(k_));
  std::atomic<bool> failed{false};
  pool.parallel_tasks(static_cast<idx_t>(W), [&](idx_t w) {
    for (idx_t rank = w; rank < k_; rank += static_cast<idx_t>(W)) {
      Timer timer;
      try {
        body(rank);
      } catch (...) {
        rank_errors[static_cast<std::size_t>(rank)] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      if (!ms_accum.empty()) {
        ms_accum[static_cast<std::size_t>(rank)] += timer.milliseconds();
      }
    }
  });
  if (!failed.load(std::memory_order_relaxed)) return;
  std::vector<std::pair<idx_t, std::exception_ptr>> errors;
  for (idx_t rank = 0; rank < k_; ++rank) {
    if (rank_errors[static_cast<std::size_t>(rank)]) {
      errors.emplace_back(
          rank, std::move(rank_errors[static_cast<std::size_t>(rank)]));
    }
  }
  raise_rank_errors(std::move(errors));
}

}  // namespace cpart
