#include "runtime/rank_executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/spmd_barrier.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/exchange.hpp"
#include "util/timer.hpp"

namespace cpart {

namespace {

/// Mirrors ThreadPool's dispatch outcome for per-rank failures collected by
/// run_phases: one failing rank rethrows its original exception, several
/// aggregate into a ParallelGroupError keyed by rank id — so a caller
/// cannot tell whether a superstep ran through superstep() or run_phases().
[[noreturn]] void raise_rank_errors(
    std::vector<std::pair<idx_t, std::exception_ptr>>&& errors) {
  if (errors.size() == 1) {
    std::rethrow_exception(errors.front().second);
  }
  std::sort(errors.begin(), errors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ParallelGroupError::Failure> failures;
  failures.reserve(errors.size());
  for (auto& [rank, err] : errors) {
    ParallelGroupError::Failure f;
    f.index = rank;
    try {
      std::rethrow_exception(err);
    } catch (const std::exception& e) {
      f.message = e.what();
    } catch (...) {
      f.message = "unknown exception";
    }
    failures.push_back(std::move(f));
  }
  throw ParallelGroupError(std::move(failures));
}

}  // namespace

RankExecutor::RankExecutor(idx_t k) : k_(k) {
  require(k >= 1, "RankExecutor: k must be >= 1");
}

namespace {

/// Worker count for a rank dispatch. Bounded by the pool (every worker must
/// hold a real thread for the whole dispatch — a queued W+1'th barrier
/// participant would deadlock), by k (parallel_tasks' static stride then
/// gives each of the first W workers exactly one task), and by the
/// machine's concurrency: workers beyond the physical threads cannot run
/// anyway — they only add context switches and barrier convoying, which is
/// pure per-step overhead when the pool is oversubscribed. Extra ranks
/// fold into each worker's stride loop instead.
unsigned rank_workers(const ThreadPool& pool, idx_t k) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = pool.num_threads();  // unknown: trust the pool size
  const unsigned cap = std::min(std::max(1u, pool.num_threads()),
                                std::max(1u, hw));
  return static_cast<unsigned>(
      std::min<idx_t>(static_cast<idx_t>(cap), k));
}

}  // namespace

void RankExecutor::superstep(const std::function<void(idx_t)>& body) const {
  run_striped(body, {});
}

void RankExecutor::superstep_timed(const std::function<void(idx_t)>& body,
                                   std::span<double> ms_accum) const {
  require(ms_accum.size() == static_cast<std::size_t>(k_),
          "RankExecutor::superstep_timed: accumulator size mismatch");
  run_striped(body, ms_accum);
}

void RankExecutor::run_striped(const std::function<void(idx_t)>& body,
                               std::span<double> ms_accum) const {
  ThreadPool& pool = ThreadPool::global();
  const unsigned W = rank_workers(pool, k_);
  std::vector<std::exception_ptr> rank_errors(static_cast<std::size_t>(k_));
  std::atomic<bool> failed{false};
  pool.parallel_tasks(static_cast<idx_t>(W), [&](idx_t w) {
    for (idx_t rank = w; rank < k_; rank += static_cast<idx_t>(W)) {
      Timer timer;
      try {
        body(rank);
      } catch (...) {
        rank_errors[static_cast<std::size_t>(rank)] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      if (!ms_accum.empty()) {
        ms_accum[static_cast<std::size_t>(rank)] += timer.milliseconds();
      }
    }
  });
  if (!failed.load(std::memory_order_relaxed)) return;
  std::vector<std::pair<idx_t, std::exception_ptr>> errors;
  for (idx_t rank = 0; rank < k_; ++rank) {
    if (rank_errors[static_cast<std::size_t>(rank)]) {
      errors.emplace_back(
          rank, std::move(rank_errors[static_cast<std::size_t>(rank)]));
    }
  }
  raise_rank_errors(std::move(errors));
}

void RankExecutor::run_phases(std::span<const Phase> phases,
                              Exchange& exchange) const {
  if (phases.empty()) return;
  for (const Phase& phase : phases) {
    require(static_cast<bool>(phase.body), "run_phases: phase without body");
    require(phase.ms_accum.empty() ||
                phase.ms_accum.size() == static_cast<std::size_t>(k_),
            "run_phases: accumulator size mismatch");
  }

  ThreadPool& pool = ThreadPool::global();
  const unsigned W = rank_workers(pool, k_);
  SpmdBarrier barrier(W);

  // Failure slots: rank r is owned by worker r % W, so no two workers
  // write the same slot. `failed` and `abort` are advisory flags whose
  // writes are ordered by the barrier (set before arrival, read after
  // release), hence relaxed.
  std::vector<std::exception_ptr> rank_errors(static_cast<std::size_t>(k_));
  std::exception_ptr deliver_error;
  std::atomic<bool> failed{false};
  std::atomic<bool> abort{false};

  pool.parallel_tasks(static_cast<idx_t>(W), [&](idx_t w) {
    for (std::size_t p = 0; p < phases.size(); ++p) {
      const Phase& phase = phases[p];
      if (p > 0) {
        barrier.arrive_and_wait([&] {
          // Serial section: every rank of phase p-1 has completed (BSP —
          // sibling ranks run to completion even past a failure), so this
          // is the superstep boundary. Skip the delivery when a rank
          // failed: the failure preempts the rest of the step.
          if (failed.load(std::memory_order_relaxed)) {
            abort.store(true, std::memory_order_relaxed);
            return;
          }
          if (phase.pre_deliver != 0) {
            try {
              exchange.deliver(phase.pre_deliver);
            } catch (...) {
              deliver_error = std::current_exception();
              abort.store(true, std::memory_order_relaxed);
            }
          }
        });
      }
      if (abort.load(std::memory_order_relaxed)) return;
      for (idx_t rank = w; rank < k_; rank += static_cast<idx_t>(W)) {
        Timer timer;
        try {
          phase.body(rank);
        } catch (...) {
          rank_errors[static_cast<std::size_t>(rank)] =
              std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
        if (!phase.ms_accum.empty()) {
          phase.ms_accum[static_cast<std::size_t>(rank)] +=
              timer.milliseconds();
        }
      }
    }
  });

  if (deliver_error) std::rethrow_exception(deliver_error);
  std::vector<std::pair<idx_t, std::exception_ptr>> errors;
  for (idx_t rank = 0; rank < k_; ++rank) {
    if (rank_errors[static_cast<std::size_t>(rank)]) {
      errors.emplace_back(rank,
                          std::move(rank_errors[static_cast<std::size_t>(rank)]));
    }
  }
  if (!errors.empty()) raise_rank_errors(std::move(errors));
}

}  // namespace cpart
