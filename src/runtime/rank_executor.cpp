#include "runtime/rank_executor.hpp"

#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

namespace cpart {

RankExecutor::RankExecutor(idx_t k) : k_(k) {
  require(k >= 1, "RankExecutor: k must be >= 1");
}

void RankExecutor::superstep(const std::function<void(idx_t)>& body) const {
  ThreadPool::global().parallel_tasks(k_, body);
}

void RankExecutor::superstep_timed(const std::function<void(idx_t)>& body,
                                   std::span<double> ms_accum) const {
  require(ms_accum.size() == static_cast<std::size_t>(k_),
          "RankExecutor::superstep_timed: accumulator size mismatch");
  ThreadPool::global().parallel_tasks(k_, [&](idx_t rank) {
    Timer timer;
    body(rank);
    ms_accum[static_cast<std::size_t>(rank)] += timer.milliseconds();
  });
}

}  // namespace cpart
