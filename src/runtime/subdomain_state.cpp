#include "runtime/subdomain_state.hpp"

#include <algorithm>

namespace cpart {

idx_t majority_owner(std::span<const idx_t> nodes,
                     std::span<const idx_t> owner) {
  // Elements have at most 8 nodes; a quadratic count beats a hash map.
  idx_t best = kInvalidIndex;
  idx_t best_count = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const idx_t o = owner[static_cast<std::size_t>(nodes[i])];
    idx_t count = 0;
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      if (owner[static_cast<std::size_t>(nodes[j])] == o) ++count;
    }
    if (count > best_count || (count == best_count && o < best)) {
      best = o;
      best_count = count;
    }
  }
  return best;
}

void collect_tracker_ranks(const MeshTopology& topo,
                           std::span<const idx_t> owner, idx_t v,
                           std::vector<char>& seen, std::vector<idx_t>& out) {
  out.clear();
  const idx_t home = owner[static_cast<std::size_t>(v)];
  for (idx_t e : topo.elements_of(v)) {
    for (idx_t u : topo.mesh().element(e)) {
      const idx_t q = owner[static_cast<std::size_t>(u)];
      if (q == home || seen[static_cast<std::size_t>(q)]) continue;
      seen[static_cast<std::size_t>(q)] = 1;
      out.push_back(q);
    }
  }
  std::sort(out.begin(), out.end());
  for (idx_t q : out) seen[static_cast<std::size_t>(q)] = 0;
}

void SubdomainState::init(const MeshTopology& topo, idx_t r,
                          std::span<const idx_t> owner, idx_t k) {
  rank = r;
  node_owner.assign(owner.begin(), owner.end());
  const std::size_t nn = static_cast<std::size_t>(topo.num_nodes());
  const std::size_t ne = static_cast<std::size_t>(topo.num_elements());
  positions.assign(nn, Vec3{});
  contact_hits.assign(nn, 0);
  node_mask.assign(nn, 0);
  elem_mask.assign(ne, 0);
  rank_seen.assign(static_cast<std::size_t>(k), 0);
  touched.clear();
  begin_step();
  rebuild_views(topo, k);
}

void SubdomainState::begin_step() {
  contact_nodes.clear();
  owned_records.clear();
  local_records.clear();
  descriptors.reset();
  events.clear();
  search_out.clear();
  query_parts.clear();
  pending_labels.clear();
  moved_nodes_out = 0;
  moved_elements_out = 0;
}

void SubdomainState::rebuild_views(const MeshTopology& topo, idx_t k) {
  const idx_t nn = topo.num_nodes();

  owned_nodes.clear();
  for (idx_t v = 0; v < nn; ++v) {
    if (node_owner[static_cast<std::size_t>(v)] == rank) {
      owned_nodes.push_back(v);
    }
  }

  // Tracked elements: the element closure of the owned nodes. The mask is
  // cleared through the collected list so repeated rebuilds stay O(closure).
  tracked_elements.clear();
  for (idx_t v : owned_nodes) {
    for (idx_t e : topo.elements_of(v)) {
      if (elem_mask[static_cast<std::size_t>(e)]) continue;
      elem_mask[static_cast<std::size_t>(e)] = 1;
      tracked_elements.push_back(e);
    }
  }
  std::sort(tracked_elements.begin(), tracked_elements.end());
  for (idx_t e : tracked_elements) elem_mask[static_cast<std::size_t>(e)] = 0;

  owned_elements.clear();
  for (idx_t e : tracked_elements) {
    if (majority_owner(topo.mesh().element(e), node_owner) == rank) {
      owned_elements.push_back(e);
    }
  }

  halo_sends.clear();
  rank_seen.assign(static_cast<std::size_t>(k), 0);
  for (idx_t v : owned_nodes) {
    collect_tracker_ranks(topo, node_owner, v, rank_seen, touched);
    for (idx_t q : touched) halo_sends.push_back({v, q});
  }
  touched.clear();
}

}  // namespace cpart
