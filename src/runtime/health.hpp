// Transport health accounting for the SPMD runtime.
//
// The exchange layer assumes nothing about the wire: every channel cell is
// framed (message count) and checksummed (FNV-1a over the logical wire
// fields) at send time and verified at delivery. This header defines the
// counters that record what the transport detected and did about it —
// corrupt cells per channel, re-delivery attempts, backoff, and whole-step
// degradations to the centralized reference path. A PipelineHealth travels
// on every step report and aggregates across steps with operator+=, so a
// run's fault history is a first-class output next to the traffic matrices.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace cpart {

/// The typed channels of one Exchange, in delivery order. New channels are
/// appended so existing ids (and with them any seeded fault schedule, which
/// keys on the channel id) stay stable across releases.
enum class ChannelId : int {
  kDescriptors = 0,
  kHalo,
  kFaces,
  kCouplingForward,
  kCouplingReturn,
  kBoxes,
  kLabels,           // repartition label broadcast
  kMigrateNodes,     // node-state migration to new owners
  kMigrateElements,  // element-record migration to new owners
};

inline constexpr int kNumChannels = 9;

/// Stable lowercase name ("descriptors", "halo", ...) for reports and JSON.
const char* channel_name(ChannelId id);

/// Channel subset selector for Exchange::deliver(mask): per-channel
/// delivery lets a phase barrier validate and commit only the channels the
/// next phase actually reads, so ranks holding their halo/faces proceed
/// without synchronizing on (say) the descriptor broadcast. Channels
/// outside the mask keep their pending outboxes and their last-committed
/// inboxes untouched.
using ChannelMask = std::uint32_t;

inline constexpr ChannelMask channel_bit(ChannelId id) {
  return ChannelMask{1} << static_cast<int>(id);
}

inline constexpr ChannelMask kAllChannels =
    (ChannelMask{1} << kNumChannels) - 1;

/// Detection counters of one typed channel.
struct ChannelHealth {
  wgt_t corrupt_cells = 0;      // cells that failed delivery validation
  wgt_t checksum_failures = 0;  // payload hash mismatch (count matched)
  wgt_t count_mismatches = 0;   // message-count framing mismatch
  wgt_t redelivered_bytes = 0;  // payload bytes staged again after a failure
  // Readiness stalls (async executor): times a rank blocked waiting for
  // this channel's inbox cells to become ready, and the total nanoseconds
  // spent blocked. A wait on a multi-channel group charges every channel
  // in the group's mask. Timing-dependent by nature, so operator==
  // deliberately ignores these two fields — bit-identity assertions compare
  // what the transport *did*, not how long ranks waited for it.
  wgt_t readiness_stalls = 0;    // waits that found inputs not yet ready
  wgt_t readiness_stall_ns = 0;  // total blocked wall time, nanoseconds

  ChannelHealth& operator+=(const ChannelHealth& other);
  /// Compares the detection counters only (stall counters are wall-clock
  /// measurements and differ run to run even on identical schedules).
  bool operator==(const ChannelHealth& other) const;
};

/// Transport + recovery counters of one pipeline step (or, summed, of a
/// whole run). "Delivery" is one Exchange::deliver() barrier; "attempt" is
/// one validation pass over its pending cells.
struct PipelineHealth {
  wgt_t deliveries = 0;           // deliver() barriers entered
  wgt_t delivery_attempts = 0;    // validation passes (>= deliveries)
  wgt_t retries = 0;              // re-delivery attempts after corruption
  wgt_t corrupt_cells = 0;        // sum over channels
  wgt_t checksum_failures = 0;
  wgt_t count_mismatches = 0;
  wgt_t redelivered_bytes = 0;
  wgt_t exhausted_deliveries = 0;  // deliveries that ran out of retry budget
  wgt_t degraded_steps = 0;        // steps completed via run_step_reference
  wgt_t wire_parse_failures = 0;   // descriptor wires the scanner rejected
  wgt_t failed_ranks = 0;          // rank programs that threw in a superstep
  // Rank-death tolerance (see runtime/checkpoint.hpp and the recovery loop
  // of DistributedSim). All five are deterministic counts of what recovery
  // did, so they participate in += and ==.
  wgt_t rank_deaths = 0;        // ranks declared dead (thrown or watchdogged)
  wgt_t recoveries = 0;         // checkpoint restores performed
  wgt_t replay_steps = 0;       // steps re-executed during recovery replays
  wgt_t checkpoints_written = 0;        // durable checkpoint commits
  wgt_t checkpoint_write_failures = 0;  // commits that exhausted their budget
  double backoff_ms = 0;           // total backoff the retry loop applied
  // Readiness stalls summed over channels (async executor; see
  // ChannelHealth). Excluded from operator== like the per-channel fields.
  wgt_t readiness_stalls = 0;
  wgt_t readiness_stall_ns = 0;
  std::array<ChannelHealth, kNumChannels> channels{};

  const ChannelHealth& channel(ChannelId id) const {
    return channels[static_cast<std::size_t>(static_cast<int>(id))];
  }
  ChannelHealth& channel(ChannelId id) {
    return channels[static_cast<std::size_t>(static_cast<int>(id))];
  }

  /// True when this step fell back to the centralized reference path.
  bool degraded() const { return degraded_steps > 0; }
  /// True when the transport saw no corruption, no retries, no fallback.
  bool clean() const;

  PipelineHealth& operator+=(const PipelineHealth& other);
  /// Folds another health record into this one — the aggregation entry
  /// point the service's StatRegistry uses to roll per-session health up
  /// into service-level totals. Every field participates, including the
  /// per-channel counters and the timing fields (stall nanoseconds,
  /// backoff) that operator== deliberately excludes: aggregation wants the
  /// full cost picture even though identity comparisons do not.
  PipelineHealth& merge(const PipelineHealth& other) { return *this += other; }
  /// Compares everything except the readiness-stall counters, which are
  /// wall-clock measurements (thread- and scheduling-dependent) rather than
  /// part of the deterministic transport schedule.
  bool operator==(const PipelineHealth& other) const;

  /// One-line human summary ("3 deliveries, 0 corrupt cells, ...").
  std::string summary() const;
};

}  // namespace cpart
