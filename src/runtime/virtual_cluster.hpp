// Virtual parallel machine: executes the per-step communication of a
// k-processor contact/impact run concretely instead of analytically.
//
// The paper reports aggregate counts (FEComm, NRemote, M2MComm). Those
// aggregates hide *congestion*: two decompositions with equal totals can
// load the busiest processor very differently. VirtualCluster tracks the
// per-processor send/receive volumes and message counts of every transfer
// routed through it. It is used two ways:
//   * as the transport under the SPMD exchange layer (runtime/exchange.hpp):
//     the typed channels charge it while actually carrying the payloads, so
//     traffic accounting is a side effect of moving the bytes;
//   * by the analytic drivers below, which generate each phase's traffic
//     from the global data structures without executing ranks:
//       fe_halo_traffic       — FE-phase halo exchange (sum == FEComm);
//       global_search_traffic — surface-element shipping (sum == NRemote);
//       m2m_traffic           — ML+RCB mesh-to-mesh (sum == 2 * M2MComm).
// The test suite asserts that the executed SPMD traffic, the analytic
// drivers, and the paper metrics all agree, so the three cross-validate.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "contact/global_search.hpp"
#include "graph/csr_graph.hpp"
#include "mesh/surface.hpp"

namespace cpart {

struct ProcessorTraffic {
  wgt_t sent_units = 0;      // data units sent
  wgt_t received_units = 0;  // data units received
  idx_t messages = 0;        // distinct (src, dst) pairs touched as sender

  bool operator==(const ProcessorTraffic&) const = default;
};

struct StepTraffic {
  std::vector<ProcessorTraffic> processors;

  idx_t num_processors() const { return to_idx(processors.size()); }
  /// Total units transferred (each unit counted once, on the send side).
  wgt_t total_units() const;
  /// Heaviest receiver's volume — the straggler of the exchange.
  wgt_t max_received() const;
  wgt_t max_sent() const;
  /// max over processors of (sent + received) divided by the mean; 1.0 is
  /// perfectly even traffic.
  double imbalance() const;
  /// Total messages (point-to-point pairs with nonzero traffic).
  idx_t total_messages() const;

  /// Element-wise sum of two traffic snapshots (same k).
  StepTraffic& operator+=(const StepTraffic& other);

  /// Exact per-processor equality — what the SPMD-vs-centralized
  /// equivalence tests assert.
  bool operator==(const StepTraffic&) const = default;
};

/// Records point-to-point transfers between k virtual processors.
class VirtualCluster {
 public:
  explicit VirtualCluster(idx_t k);

  idx_t num_processors() const { return k_; }

  /// Transfers `units` data units from processor `from` to `to`.
  /// Self-sends are ignored (local data needs no communication).
  void send(idx_t from, idx_t to, wgt_t units);

  /// Returns the accumulated traffic and resets the cluster.
  StepTraffic finish();

 private:
  idx_t k_;
  std::vector<wgt_t> matrix_;  // k*k send matrix
};

/// FE-phase halo exchange: every boundary vertex sends one unit to each
/// distinct external partition adjacent to it. Summed units equal
/// total_comm_volume(g, part).
StepTraffic fe_halo_traffic(const CsrGraph& g, std::span<const idx_t> part,
                            idx_t k);

/// Global-search shipping: each surface face goes from its owner to every
/// candidate partition the filter reports (excluding the owner). Summed
/// units equal GlobalSearchStats::remote_sends for the same filter.
StepTraffic global_search_traffic(
    const Mesh& mesh, const Surface& surface, std::span<const idx_t> owner,
    real_t margin, idx_t k,
    const std::function<void(const BBox&, std::vector<idx_t>&)>& filter);

/// ML+RCB mesh-to-mesh transfer: each contact point whose FE processor
/// differs from its (relabelled) contact processor moves one unit each way.
/// `relabel` maps contact partition ids to FE partition ids (from m2m_comm).
/// Summed units equal 2 * M2MComm.
StepTraffic m2m_traffic(std::span<const idx_t> fe_labels,
                        std::span<const idx_t> contact_labels,
                        std::span<const idx_t> relabel, idx_t k);

}  // namespace cpart
