#include "runtime/step_pipeline.hpp"

namespace cpart {

StepPipeline::StepPipeline(const ImpactSim& sim) : sim_(sim) {}

const ImpactSim::Snapshot& StepPipeline::advance(idx_t s) {
  sim_.snapshot_into(s, snapshot_ws_, snapshot_);
  return snapshot_;
}

const SubdomainDescriptors& StepPipeline::build_descriptors(
    const McmlDtPartitioner& partitioner) {
  const Mesh& mesh = snapshot_.mesh;
  const Surface& surface = snapshot_.surface;
  const std::vector<idx_t>& partition = partitioner.node_partition();
  require(mesh.num_nodes() == to_idx(partition.size()),
          "StepPipeline::build_descriptors: mesh/partition size mismatch");

  points_.clear();
  labels_.clear();
  points_.reserve(surface.contact_nodes.size());
  labels_.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) {
    points_.push_back(mesh.node(id));
    labels_.push_back(partition[static_cast<std::size_t>(id)]);
  }

  DescriptorOptions dopts = partitioner.config().descriptor;
  dopts.dim = mesh.dim();
  if (descriptors_.has_value()) {
    // Return the retired tree's node storage to the induction pool.
    tree_ws_.recycle(descriptors_->release_tree());
  }
  descriptors_.emplace(points_, labels_, partitioner.k(), dopts, &tree_ws_);
  return *descriptors_;
}

GlobalSearchStats StepPipeline::search(const McmlDtPartitioner& partitioner,
                                       real_t margin) {
  require(descriptors_.has_value(),
          "StepPipeline::search: build_descriptors not called");
  face_owners_into(snapshot_.surface, partitioner.node_partition(),
                   partitioner.k(), owners_);
  return global_search_tree(snapshot_.mesh, snapshot_.surface, owners_,
                            *descriptors_, margin);
}

}  // namespace cpart
