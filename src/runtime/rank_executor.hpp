// BSP superstep executor: runs k rank programs concurrently on the shared
// ThreadPool, with Exchange::deliver() as the barrier between supersteps.
//
// Rank programs are plain callables body(rank). The executor dispatches
// them through ThreadPool::parallel_tasks, whose completion wait IS the
// superstep barrier — there is no blocking barrier inside a rank program,
// which is what makes k > pool-size safe (a real barrier on a fixed pool
// would deadlock once more ranks than workers exist). Corollary: a rank
// program must never block on another rank's output within a superstep;
// cross-rank data only moves at the deliver() boundary. Rank programs must
// also not dispatch pool work themselves (no nested parallelism).
//
// Exceptions thrown by rank programs (e.g. require()) surface on the
// calling thread only after every rank has completed the superstep: a
// single failing rank rethrows its original exception, several failing
// ranks aggregate into one ParallelGroupError carrying each rank id and
// message (see parallel/thread_pool.hpp).
#pragma once

#include <functional>
#include <span>

#include "runtime/health.hpp"
#include "util/common.hpp"

namespace cpart {

class Exchange;

/// One superstep of a fused phase sequence (RankExecutor::run_phases).
struct Phase {
  /// The rank program: body(rank) for every rank in [0, k).
  std::function<void(idx_t)> body;
  /// Channels the inter-phase barrier winner delivers
  /// (Exchange::deliver(mask)) immediately before this phase's bodies run.
  /// 0 = no delivery. Ignored on the first phase (there is no preceding
  /// barrier — the caller delivers before calling run_phases if needed).
  ChannelMask pre_deliver = 0;
  /// Optional per-rank wall-ms accumulator (size k), as superstep_timed.
  std::span<double> ms_accum = {};
};

class RankExecutor {
 public:
  explicit RankExecutor(idx_t k);

  idx_t num_ranks() const { return k_; }

  /// Runs body(rank) for every rank in [0, k) concurrently; returns when
  /// all finished.
  void superstep(const std::function<void(idx_t)>& body) const;

  /// superstep() that also adds each rank's wall milliseconds to
  /// ms_accum[rank] (size k) — the per-rank phase timings bench_spmd
  /// reports. Each rank writes only its own slot, so no synchronization.
  void superstep_timed(const std::function<void(idx_t)>& body,
                       std::span<double> ms_accum) const;

  /// Runs a sequence of supersteps in ONE pool dispatch. W = min(pool
  /// size, hardware concurrency, k) workers each own the ranks
  /// w, w+W, ... for every phase; an
  /// SpmdBarrier separates consecutive phases, and the last worker to
  /// arrive ("winner") performs the next phase's pre_deliver inside the
  /// barrier's serial section. Compared to one parallel_tasks dispatch per
  /// superstep this removes per-phase pool wake/sleep round-trips and —
  /// because only the masked channels are validated — lets ranks proceed
  /// the moment the channels the next phase reads have committed.
  ///
  /// Failure semantics match superstep(): a phase in which ranks threw
  /// completes for every rank, then the remaining phases are skipped and
  /// the failure surfaces on the calling thread (single failure rethrown
  /// unchanged, several aggregated into ParallelGroupError keyed by rank).
  /// A pre_deliver that throws (TransportError) likewise skips the
  /// remaining phases and rethrows on the calling thread.
  void run_phases(std::span<const Phase> phases, Exchange& exchange) const;

 private:
  /// Shared dispatch for superstep()/superstep_timed(): W workers (capped
  /// at the machine's concurrency — see rank_workers in the .cpp) stripe
  /// the k ranks; per-rank failures aggregate exactly as documented on
  /// superstep(). Empty ms_accum skips timing.
  void run_striped(const std::function<void(idx_t)>& body,
                   std::span<double> ms_accum) const;

  idx_t k_;
};

}  // namespace cpart
