// BSP superstep executor: runs k rank programs concurrently on the shared
// ThreadPool, with Exchange::deliver() as the barrier between supersteps.
// Multi-phase rank schedules with channel dependencies run on AsyncExecutor
// (runtime/async_executor.hpp) instead; this executor remains for single
// supersteps whose cross-rank data already moved (scatter, migration
// commit).
//
// Rank programs are plain callables body(rank). The executor dispatches
// them through ThreadPool::parallel_tasks, whose completion wait IS the
// superstep barrier — there is no blocking barrier inside a rank program,
// which is what makes k > pool-size safe (a real barrier on a fixed pool
// would deadlock once more ranks than workers exist). Corollary: a rank
// program must never block on another rank's output within a superstep;
// cross-rank data only moves at the deliver() boundary. Rank programs must
// also not dispatch pool work themselves (no nested parallelism).
//
// Exceptions thrown by rank programs (e.g. require()) surface on the
// calling thread only after every rank has completed the superstep: a
// single failing rank rethrows its original exception, several failing
// ranks aggregate into one ParallelGroupError carrying each rank id and
// message (see parallel/thread_pool.hpp).
#pragma once

#include <exception>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "runtime/health.hpp"
#include "util/common.hpp"

namespace cpart {

class Exchange;
class ThreadPool;

/// Worker count for a rank dispatch. Bounded by the pool (every worker must
/// hold a real thread for the whole dispatch), by k (static stride then
/// gives each of the first W workers at least one rank), and by the
/// machine's concurrency (workers beyond the physical threads only add
/// context switches). Shared by RankExecutor and AsyncExecutor so both
/// stripe ranks over the same W.
unsigned rank_dispatch_workers(const ThreadPool& pool, idx_t k);

/// Mirrors ThreadPool's dispatch outcome for per-rank failures collected by
/// a rank executor: one failing rank rethrows its original exception,
/// several aggregate into a ParallelGroupError keyed by rank id — so a
/// caller cannot tell which executor ran the superstep.
[[noreturn]] void raise_rank_errors(
    std::vector<std::pair<idx_t, std::exception_ptr>>&& errors);

class RankExecutor {
 public:
  explicit RankExecutor(idx_t k);

  idx_t num_ranks() const { return k_; }

  /// Runs body(rank) for every rank in [0, k) concurrently; returns when
  /// all finished.
  void superstep(const std::function<void(idx_t)>& body) const;

  /// superstep() that also adds each rank's wall milliseconds to
  /// ms_accum[rank] (size k) — the per-rank phase timings bench_spmd
  /// reports. Each rank writes only its own slot, so no synchronization.
  void superstep_timed(const std::function<void(idx_t)>& body,
                       std::span<double> ms_accum) const;

 private:
  /// Shared dispatch for superstep()/superstep_timed(): W workers (capped
  /// at the machine's concurrency — see rank_workers in the .cpp) stripe
  /// the k ranks; per-rank failures aggregate exactly as documented on
  /// superstep(). Empty ms_accum skips timing.
  void run_striped(const std::function<void(idx_t)>& body,
                   std::span<double> ms_accum) const;

  idx_t k_;
};

}  // namespace cpart
