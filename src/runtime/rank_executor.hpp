// BSP superstep executor: runs k rank programs concurrently on the shared
// ThreadPool, with Exchange::deliver() as the barrier between supersteps.
//
// Rank programs are plain callables body(rank). The executor dispatches
// them through ThreadPool::parallel_tasks, whose completion wait IS the
// superstep barrier — there is no blocking barrier inside a rank program,
// which is what makes k > pool-size safe (a real barrier on a fixed pool
// would deadlock once more ranks than workers exist). Corollary: a rank
// program must never block on another rank's output within a superstep;
// cross-rank data only moves at the deliver() boundary. Rank programs must
// also not dispatch pool work themselves (no nested parallelism).
//
// Exceptions thrown by rank programs (e.g. require()) surface on the
// calling thread only after every rank has completed the superstep: a
// single failing rank rethrows its original exception, several failing
// ranks aggregate into one ParallelGroupError carrying each rank id and
// message (see parallel/thread_pool.hpp).
#pragma once

#include <functional>
#include <span>

#include "util/common.hpp"

namespace cpart {

class RankExecutor {
 public:
  explicit RankExecutor(idx_t k);

  idx_t num_ranks() const { return k_; }

  /// Runs body(rank) for every rank in [0, k) concurrently; returns when
  /// all finished.
  void superstep(const std::function<void(idx_t)>& body) const;

  /// superstep() that also adds each rank's wall milliseconds to
  /// ms_accum[rank] (size k) — the per-rank phase timings bench_spmd
  /// reports. Each rank writes only its own slot, so no synchronization.
  void superstep_timed(const std::function<void(idx_t)>& body,
                       std::span<double> ms_accum) const;

 private:
  idx_t k_;
};

}  // namespace cpart
