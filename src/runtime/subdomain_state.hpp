// Rank-owned distributed simulation state.
//
// The SPMD contact pipelines of core/pipeline.hpp still read a centrally
// generated snapshot each step; their ranks own *views* of global products.
// SubdomainState goes the rest of the way: each rank holds the authoritative
// state of exactly the nodes its partition label assigns to it (positions,
// accumulated contact hits), plus a ghost layer — the element closure of its
// owned nodes — kept current by halo exchange. Everything a rank derives
// (surface records, contact-node lists, search events) comes from this
// local state; nothing reads a central snapshot.
//
// Ownership of derived entities follows the nodes: an element belongs to the
// majority owner of its nodes (ties to the lowest rank), and so does a
// boundary face. When a repartition changes the node labels, ownership moves
// — and with it the authoritative per-node state, shipped over the
// exchange's migration channels (see core/distributed_sim.hpp for the
// protocol).
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "contact/local_search.hpp"
#include "mesh/mesh_topology.hpp"
#include "mesh/subdomain.hpp"
#include "tree/descriptor_tree.hpp"

namespace cpart {

/// Owner rank of an entity given the owners of its nodes: the most frequent
/// owner, ties broken toward the lowest rank. Deterministic in the node
/// order (it only reads the multiset of owners).
idx_t majority_owner(std::span<const idx_t> nodes,
                     std::span<const idx_t> owner);

/// Appends to `out` (cleared first) the distinct ranks other than owner[v]
/// that track some element incident to v — i.e. own at least one node of
/// it. These are exactly the ranks whose ghost layer contains v, so they
/// are the destinations of v's halo post. Ascending rank order. `seen` is
/// k-sized scratch, all-zero on entry and exit.
void collect_tracker_ranks(const MeshTopology& topo,
                           std::span<const idx_t> owner, idx_t v,
                           std::vector<char>& seen, std::vector<idx_t>& out);

/// One rank's share of the distributed simulation. Dense arrays are sized
/// by the full initial mesh (node id == global id, no local renumbering —
/// the paper's meshes fit per-node arrays comfortably and global ids keep
/// every cross-rank message self-describing); a rank only ever *writes*
/// the entries it owns, plus ghost entries from delivered halo messages.
struct SubdomainState {
  idx_t rank = kInvalidIndex;

  // --- Replicated metadata (identical on every rank between supersteps) ---
  /// Current owner of every node. Updated only at the migration commit.
  std::vector<idx_t> node_owner;

  // --- Ownership views (rebuilt by rebuild_views after migration) ---
  std::vector<idx_t> owned_nodes;      // ascending node id
  std::vector<idx_t> owned_elements;   // ascending; majority-owned by rank
  std::vector<idx_t> tracked_elements; // ascending; >=1 node owned by rank
  std::vector<HaloSend> halo_sends;    // owned node -> ghost-holding rank

  // --- Authoritative per-node state (valid on owned; positions also on
  //     the ghost closure after the halo superstep) ---
  std::vector<Vec3> positions;
  std::vector<wgt_t> contact_hits;

  // --- Per-step products (cleared by begin_step) ---
  std::vector<idx_t> contact_nodes;        // owned, ascending
  std::vector<FaceRecord> owned_records;   // home faces, ascending key
  std::vector<FaceRecord> local_records;   // owned + received, ascending key
  std::optional<SubdomainDescriptors> descriptors;
  std::vector<ContactEvent> events;
  std::vector<ContactEvent> search_out;    // scratch for the search call
  std::vector<idx_t> query_parts;
  SubsetSearchScratch search_scratch;
  /// Label updates received this step, applied at the migration commit.
  std::vector<std::pair<idx_t, idx_t>> pending_labels;  // (node, new owner)
  std::vector<idx_t> owner_scratch;        // next node_owner, built pre-commit
  idx_t moved_nodes_out = 0;
  idx_t moved_elements_out = 0;

  /// Sizes every array for `topo`, copies the initial ownership, zeroes the
  /// per-node state, and builds the ownership views.
  void init(const MeshTopology& topo, idx_t r, std::span<const idx_t> owner,
            idx_t k);

  /// Clears the per-step products.
  void begin_step();

  /// Recomputes owned_nodes / tracked_elements / owned_elements /
  /// halo_sends from node_owner. Called at init and after every migration
  /// commit; between those, the views are stable because the topology is.
  void rebuild_views(const MeshTopology& topo, idx_t k);

  // Scratch (kept across steps so the steady state allocates nothing).
  std::vector<char> node_mask;   // num_nodes, all-zero between uses
  std::vector<char> elem_mask;   // num_elements, all-zero between uses
  std::vector<char> rank_seen;   // k, all-zero between uses
  std::vector<idx_t> touched;
};

}  // namespace cpart
