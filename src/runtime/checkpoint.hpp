// Durable checkpoint/restore for the rank-owned distributed simulation.
//
// A checkpoint captures everything DistributedSim needs to deterministically
// replay from a step boundary: the replicated ownership map, the
// owner-authoritative per-node state (positions, contact-hit accumulators),
// the step index, the exchange's superstep cursor (the fault-schedule key —
// restoring it makes a replayed step draw the exact transport faults of the
// original run), and a hash of the configuration that produced the state.
// Ghost positions and all per-step products are derived state: the replay's
// first halo superstep rebuilds them, so they are not serialized.
//
// Format (version 1, little-endian; varints are the shared LEB128 codec of
// util/varint.hpp, checksums the FNV-1a of the exchange wire framing):
//   magic "cpck" (4 bytes) | version u8
//   varint config_hash | varint step | varint superstep
//   varint k | varint num_nodes
//   owner section: num_nodes varints, each < k
//   per-rank sections, rank 0..k-1:
//     varint owned_count (must equal the owner section's count for the rank)
//     per owned node, ascending id: 3 raw f64 (x, y, z) | varint hits
//   u64 checksum: FNV-1a over every preceding byte
// Decoding never trusts the input: bad magic/version, truncation, overlong
// varints, out-of-range owners/counts/hits, checksum mismatches and
// trailing garbage all throw InputError.
//
// CheckpointStore makes commits durable and atomic: the blob goes to a temp
// name, is fsynced and renamed into place, and only then does a manifest
// (same temp+fsync+rename protocol) start pointing at it — so a crash or an
// injected I/O fault anywhere in the sequence always leaves the previous
// manifest/checkpoint pair intact and loadable.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/exchange.hpp"
#include "util/atomic_file.hpp"
#include "util/common.hpp"

namespace cpart {

struct CheckpointData {
  /// Hash of the configuration that produced the state; load-time guard
  /// against restoring into a differently-configured run.
  std::uint64_t config_hash = 0;
  /// Steps completed when the checkpoint was taken (the next step to run).
  idx_t step = 0;
  /// Exchange superstep cursor at the step boundary.
  std::uint64_t superstep = 0;
  idx_t k = 0;
  std::vector<idx_t> node_owner;    // size num_nodes, values in [0, k)
  std::vector<Vec3> positions;      // authoritative entry per node
  std::vector<wgt_t> contact_hits;  // authoritative entry per node
};

/// Serializes `data` to the version-1 wire format (validates invariants
/// with require()).
std::string encode_checkpoint(const CheckpointData& data);

/// Parses a version-1 checkpoint blob; throws InputError on any hostile or
/// damaged input.
CheckpointData decode_checkpoint(std::string_view bytes);

/// Durable checkpoint directory: at most one live checkpoint, addressed by
/// a checksummed manifest. All file I/O goes through the injected FileShim
/// so tests can fault every primitive.
class CheckpointStore {
 public:
  /// `dir` is created if missing. The shim must outlive the store.
  explicit CheckpointStore(std::string dir,
                           FileShim& shim = FileShim::real());

  /// Commits `data` durably, retrying failed writes up to
  /// `retry.max_attempts` with saturating exponential backoff (recorded
  /// into *backoff_ms when non-null, slept only if retry.sleep_on_backoff).
  /// Returns false when the budget is exhausted — the previous checkpoint
  /// is then still the one load() returns (keep-last-good).
  bool write(const CheckpointData& data, const RetryPolicy& retry,
             double* backoff_ms = nullptr);

  /// Loads the manifest's checkpoint. Returns nullopt when there is no
  /// durable checkpoint or anything on the read path fails validation —
  /// recovery treats both as "nothing to restore".
  std::optional<CheckpointData> load() const;

  const std::string& dir() const { return dir_; }
  std::string manifest_path() const;
  std::string checkpoint_path(idx_t step) const;

 private:
  bool commit_with_retry(const std::string& path, const std::string& bytes,
                         const RetryPolicy& retry, double* backoff_ms);

  std::string dir_;
  FileShim* shim_;
};

}  // namespace cpart
