#include "runtime/async_executor.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <sstream>
#include <thread>
#include <utility>

#include "parallel/thread_pool.hpp"
#include "runtime/exchange.hpp"
#include "runtime/rank_executor.hpp"
#include "util/timer.hpp"

namespace cpart {

namespace {

std::string rank_death_message(const std::vector<idx_t>& ranks) {
  std::ostringstream os;
  os << "rank death detected: rank";
  if (ranks.size() > 1) os << "s";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    os << (i == 0 ? " " : ", ") << ranks[i];
  }
  return os.str();
}

bool is_rank_death(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const RankDeathError&) {
    return true;
  } catch (...) {
    return false;
  }
}

/// One channel group: the mask a consuming phase reads, delivered as one
/// async superstep. Groups are ordered by consuming phase, and group j of a
/// run keys its fault decisions on superstep base+j — the number the j'th
/// deliver() barrier of the fused schedule would have used.
struct Group {
  ChannelMask mask = 0;
  idx_t consume_phase = 0;
  idx_t close_phase = -1;  // last phase writing the mask; -1 = born closed
  const std::vector<std::vector<idx_t>>* providers = nullptr;
};

/// Per-(group, destination) accounting, written only by the destination's
/// owning worker; folded into the Exchange on the calling thread after the
/// pool joins (counted groups only).
struct DstScratch {
  PipelineHealth health{};
  std::array<wgt_t, kNumChannels> bytes{};
  idx_t max_failures = 0;    // worst per-cell failed-attempt count
  idx_t exhausted_cells = 0; // cells still corrupt after the full budget
};

enum class WaitOutcome { kReady, kFailed, kExhausted };

// Same bounded spin as SpmdBarrier before parking on the futex: short,
// because oversubscribed workers spinning steal the CPU the publisher
// needs; long enough to catch the common fast publication without a
// syscall.
constexpr int kSpinIterations = 128;

}  // namespace

RankDeathError::RankDeathError(std::vector<idx_t> ranks)
    : std::runtime_error(rank_death_message(ranks)), ranks_(std::move(ranks)) {}

AsyncExecutor::AsyncExecutor(idx_t k) : k_(k) {
  require(k >= 1, "AsyncExecutor: k must be >= 1");
}

void AsyncExecutor::run(std::span<const AsyncPhase> phases, Exchange& exchange,
                        const AsyncRunOptions& options) const {
  if (phases.empty()) return;
  require(exchange.num_ranks() == k_, "AsyncExecutor: exchange rank mismatch");
  require(options.hung.empty() ||
              options.hung.size() == static_cast<std::size_t>(k_),
          "AsyncExecutor: hang mask size mismatch");
  const auto hung_of = [&options](idx_t r) {
    return !options.hung.empty() && options.hung[static_cast<std::size_t>(r)];
  };
  bool any_hung = false;
  for (idx_t r = 0; r < k_; ++r) any_hung = any_hung || hung_of(r);
  require(!any_hung || options.watchdog_deadline_ms > 0,
          "AsyncExecutor: hung ranks require a watchdog deadline");
  // The watchdog only ever declares injected hung ranks; with none, waits
  // park on the futex as usual and the deadline is moot.
  const bool watchdog_armed = any_hung && options.watchdog_deadline_ms > 0;

  const idx_t P = to_idx(phases.size());
  std::vector<Group> groups;
  std::vector<idx_t> group_of_phase(static_cast<std::size_t>(P), -1);
  ChannelMask all_reads = 0;
  for (idx_t p = 0; p < P; ++p) {
    const AsyncPhase& phase = phases[static_cast<std::size_t>(p)];
    require(static_cast<bool>(phase.body), "AsyncExecutor: phase without body");
    require(phase.ms_accum.empty() ||
                phase.ms_accum.size() == static_cast<std::size_t>(k_),
            "AsyncExecutor: ms accumulator size mismatch");
    require(phase.wait_ms_accum.empty() ||
                phase.wait_ms_accum.size() == static_cast<std::size_t>(k_),
            "AsyncExecutor: wait accumulator size mismatch");
    require(phase.providers == nullptr ||
                phase.providers->size() == static_cast<std::size_t>(k_),
            "AsyncExecutor: provider list size mismatch");
    if (phase.reads == 0) continue;
    require((all_reads & phase.reads) == 0,
            "AsyncExecutor: a channel may be read by at most one phase");
    all_reads |= phase.reads;
    Group grp;
    grp.mask = phase.reads;
    grp.consume_phase = p;
    grp.providers = phase.providers;
    for (idx_t q = 0; q < P; ++q) {
      if (phases[static_cast<std::size_t>(q)].writes & grp.mask) {
        grp.close_phase = std::max(grp.close_phase, q);
      }
    }
    require(grp.close_phase < p,
            "AsyncExecutor: a phase cannot read a channel written by itself "
            "or a later phase");
    group_of_phase[static_cast<std::size_t>(p)] = to_idx(groups.size());
    groups.push_back(grp);
  }

  const idx_t G = to_idx(groups.size());
  const idx_t kNoGroup = G;
  const idx_t kNoPhase = P;
  const std::uint64_t base = exchange.next_superstep();
  const idx_t max_attempts = exchange.retry_policy().max_attempts;
  // With a fault injector armed, validation of each group additionally
  // waits for every rank to complete all prior phases — the exact moment
  // the fused schedule's barrier would deliver. This keeps the injector's
  // (superstep, attempt, channel, src, dst) decision consumption, and in
  // particular which group exhausts the retry budget first, bit-identical
  // to the barrier build at any thread count. Fault-free runs (the normal
  // case) skip the gate entirely and overlap freely.
  const bool gated = exchange.fault_injector() != nullptr;

  // Termination-detection state. row_closed[g*k + src] publishes that src's
  // outbox row of group g is complete; rows_closed[g] counts them toward k
  // (the sent-row total); phase_done[p] counts ranks through phase p;
  // epoch is the monotone word waiters park on. An abort (rank failure,
  // budget exhaustion) publishes through min_failed / exhausted plus an
  // epoch bump, so no waiter can sleep through it.
  std::atomic<std::uint64_t> epoch{0};
  std::vector<std::atomic<std::uint8_t>> row_closed(
      static_cast<std::size_t>(G) * static_cast<std::size_t>(k_));
  std::vector<std::atomic<idx_t>> rows_closed(static_cast<std::size_t>(G));
  std::vector<std::atomic<idx_t>> phase_done(static_cast<std::size_t>(P));
  std::atomic<idx_t> min_failed{kNoPhase};
  std::atomic<idx_t> exhausted{kNoGroup};

  // Groups whose channels were fully posted before the run are born
  // closed: their per-destination validations start immediately and spread
  // across the workers — the former serial section of the fused schedule.
  for (idx_t g = 0; g < G; ++g) {
    if (groups[static_cast<std::size_t>(g)].close_phase >= 0) continue;
    rows_closed[static_cast<std::size_t>(g)].store(k_,
                                                   std::memory_order_relaxed);
    for (idx_t src = 0; src < k_; ++src) {
      row_closed[static_cast<std::size_t>(g * k_ + src)].store(
          1, std::memory_order_relaxed);
    }
  }
  std::vector<std::vector<idx_t>> closes(static_cast<std::size_t>(P));
  for (idx_t g = 0; g < G; ++g) {
    const idx_t cp = groups[static_cast<std::size_t>(g)].close_phase;
    if (cp >= 0) closes[static_cast<std::size_t>(cp)].push_back(g);
  }

  std::vector<DstScratch> scratch(static_cast<std::size_t>(G) *
                                  static_cast<std::size_t>(k_));
  std::vector<std::exception_ptr> rank_errors(static_cast<std::size_t>(k_));
  std::vector<idx_t> rank_error_phase(static_cast<std::size_t>(k_), kNoPhase);

  const auto publish = [&epoch] {
    epoch.fetch_add(1, std::memory_order_release);
    epoch.notify_all();
  };
  const auto fetch_min = [](std::atomic<idx_t>& a, idx_t v) {
    idx_t cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
    }
  };

  // Watchdog declaration (first expired waiter wins the CAS): every hung
  // rank is declared dead at once — its rows force-closed (the exhaustion
  // drain idiom: no waiter can deadlock on a row the rank will never close)
  // and its phase completions force-counted so the gated readiness check
  // can still resolve — then the run unwinds as a failure at phase 0, the
  // earliest phase the dead ranks never executed.
  std::atomic<bool> watchdog_fired{false};
  const auto fire_watchdog = [&] {
    bool expected = false;
    if (!watchdog_fired.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      return;
    }
    for (idx_t d = 0; d < k_; ++d) {
      if (!hung_of(d)) continue;
      for (idx_t h = 0; h < G; ++h) {
        if (groups[static_cast<std::size_t>(h)].close_phase < 0) continue;
        if (row_closed[static_cast<std::size_t>(h * k_ + d)].exchange(
                1, std::memory_order_release) == 0) {
          rows_closed[static_cast<std::size_t>(h)].fetch_add(
              1, std::memory_order_release);
        }
      }
      for (idx_t q = 0; q < P; ++q) {
        phase_done[static_cast<std::size_t>(q)].fetch_add(
            1, std::memory_order_release);
      }
    }
    fetch_min(min_failed, 0);
    publish();
  };

  // Full per-cell validation of destination r's column of group g: every
  // (channel, src, r) cell gets its own retry loop with the barrier-exact
  // injector keys (attempt numbers 0..), then the column commits atomically
  // from r's point of view (inbox assembled in ascending source order).
  // Empty cells — every cell outside the provider topology — validate
  // trivially without consuming an injector decision, exactly as in the
  // barrier loop. Returns false when any cell exhausted the budget (the
  // column is then left uncommitted).
  const auto validate_and_commit = [&](idx_t g, idx_t r,
                                       DstScratch& s) -> bool {
    const Group& grp = groups[static_cast<std::size_t>(g)];
    const std::uint64_t superstep = base + static_cast<std::uint64_t>(g);
    bool ok = true;
    for (int c = 0; c < kNumChannels; ++c) {
      const ChannelId id = static_cast<ChannelId>(c);
      if (!(grp.mask & channel_bit(id))) continue;
      for (idx_t from = 0; from < k_; ++from) {
        idx_t failures = 0;
        while (!exchange.async_validate_cell(id, superstep, failures, from, r,
                                             s.health)) {
          if (++failures >= max_attempts) break;
        }
        s.max_failures = std::max(s.max_failures, failures);
        if (failures >= max_attempts) {
          ++s.exhausted_cells;
          ok = false;
        }
      }
    }
    if (!ok) return false;
    for (int c = 0; c < kNumChannels; ++c) {
      const ChannelId id = static_cast<ChannelId>(c);
      if (!(grp.mask & channel_bit(id))) continue;
      exchange.async_commit_dst(id, r,
                                s.bytes[static_cast<std::size_t>(c)]);
    }
    return true;
  };

  // Gang dispatch, not parallel_tasks: the worker bodies block on each
  // other (futex readiness waits), so every participant must hold a real
  // thread for the whole superstep. run_gang grants exactly that — only
  // currently idle workers join, and the granted width W is handed to the
  // body so the rank striping matches the width actually running.
  ThreadPool& pool = ThreadPool::global();
  pool.run_gang(rank_dispatch_workers(pool, k_), [&](idx_t w, unsigned W) {
    // Readiness wait for destination r of group g (consumed by phase p).
    // Polls, in order: ready (rows closed — all k, or just r's providers;
    // under the injector gate, all ranks through every prior phase),
    // budget exhaustion, then rank failure — so a wait that could both
    // proceed and abort deterministically proceeds.
    const auto wait_ready = [&](idx_t g, idx_t p, idx_t r,
                                double& wait_ms) -> WaitOutcome {
      const Group& grp = groups[static_cast<std::size_t>(g)];
      const auto ready = [&]() -> bool {
        if (gated) {
          if (p == 0) return true;
          return phase_done[static_cast<std::size_t>(p - 1)].load(
                     std::memory_order_acquire) == k_ &&
                 min_failed.load(std::memory_order_acquire) >= p;
        }
        if (rows_closed[static_cast<std::size_t>(g)].load(
                std::memory_order_acquire) == k_) {
          return true;
        }
        if (grp.providers != nullptr) {
          for (idx_t src : (*grp.providers)[static_cast<std::size_t>(r)]) {
            if (row_closed[static_cast<std::size_t>(g * k_ + src)].load(
                    std::memory_order_acquire) == 0) {
              return false;
            }
          }
          return true;
        }
        return false;
      };
      if (ready()) return WaitOutcome::kReady;
      Timer timer;
      WaitOutcome out = WaitOutcome::kReady;
      int spins = 0;
      for (;;) {
        const std::uint64_t e = epoch.load(std::memory_order_acquire);
        if (ready()) break;
        if (exhausted.load(std::memory_order_acquire) != kNoGroup) {
          out = WaitOutcome::kExhausted;
          break;
        }
        if (min_failed.load(std::memory_order_acquire) < p) {
          out = WaitOutcome::kFailed;
          break;
        }
        if (spins < kSpinIterations) {
          ++spins;
          continue;
        }
        if (watchdog_armed) {
          // Bounded polling instead of the futex: the publication that
          // would wake us may never come if the provider is hung, so check
          // the deadline between short sleeps and declare on expiry.
          if (timer.milliseconds() > options.watchdog_deadline_ms) {
            fire_watchdog();
          }
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
          epoch.wait(e, std::memory_order_acquire);
        }
      }
      wait_ms = timer.milliseconds();
      return out;
    };

    for (idx_t p = 0; p < P; ++p) {
      const AsyncPhase& phase = phases[static_cast<std::size_t>(p)];
      const idx_t g = group_of_phase[static_cast<std::size_t>(p)];
      for (idx_t r = w; r < k_; r += static_cast<idx_t>(W)) {
        // A hung rank vanished: no waits, no validation, no body, no row
        // closes, no phase completions. Only the watchdog accounts for it.
        if (hung_of(r)) continue;
        idx_t ex = exhausted.load(std::memory_order_acquire);
        // After an exhaustion, the only remaining work is draining the
        // exhausting group's validation (below) so the detection counters
        // match the barrier build; everything else unwinds. Under the
        // gate no worker can still be at an earlier phase at this point.
        if (ex != kNoGroup && g != ex) return;
        // A rank failure at phase p_fail completes phase p_fail for every
        // rank (BSP semantics), then later phases unwind.
        if (ex == kNoGroup &&
            min_failed.load(std::memory_order_acquire) < p) {
          return;
        }
        bool column_ok = true;
        if (g >= 0) {
          DstScratch& s =
              scratch[static_cast<std::size_t>(g * k_ + r)];
          if (ex == kNoGroup) {
            double wait_ms = 0;
            const WaitOutcome out = wait_ready(g, p, r, wait_ms);
            if (wait_ms > 0) {
              if (!phase.wait_ms_accum.empty()) {
                phase.wait_ms_accum[static_cast<std::size_t>(r)] += wait_ms;
              }
              const wgt_t ns = static_cast<wgt_t>(wait_ms * 1e6);
              ++s.health.readiness_stalls;
              s.health.readiness_stall_ns += ns;
              for (int c = 0; c < kNumChannels; ++c) {
                const ChannelId id = static_cast<ChannelId>(c);
                if (!(groups[static_cast<std::size_t>(g)].mask &
                      channel_bit(id))) {
                  continue;
                }
                ChannelHealth& ch = s.health.channel(id);
                ++ch.readiness_stalls;
                ch.readiness_stall_ns += ns;
              }
            }
            if (out == WaitOutcome::kFailed) return;
            if (out == WaitOutcome::kExhausted) {
              ex = exhausted.load(std::memory_order_acquire);
              if (g != ex) return;
            }
          }
          column_ok = validate_and_commit(g, r, s);
          if (!column_ok) {
            fetch_min(exhausted, g);
            publish();
          }
          ex = exhausted.load(std::memory_order_acquire);
        }
        if (ex != kNoGroup) continue;  // drain mode: validation only
        Timer timer;
        try {
          phase.body(r);
        } catch (...) {
          rank_errors[static_cast<std::size_t>(r)] = std::current_exception();
          rank_error_phase[static_cast<std::size_t>(r)] = p;
          // Recorded before phase_done below: once phase_done[p] reaches
          // k, every failure at phase <= p is visible to the gate.
          fetch_min(min_failed, p);
        }
        if (!phase.ms_accum.empty()) {
          phase.ms_accum[static_cast<std::size_t>(r)] += timer.milliseconds();
        }
        for (idx_t h : closes[static_cast<std::size_t>(p)]) {
          row_closed[static_cast<std::size_t>(h * k_ + r)].store(
              1, std::memory_order_release);
          rows_closed[static_cast<std::size_t>(h)].fetch_add(
              1, std::memory_order_release);
        }
        phase_done[static_cast<std::size_t>(p)].fetch_add(
            1, std::memory_order_release);
        publish();
      }
    }
  });

  // Epilogue (single-threaded): fold exactly the groups the fused
  // schedule's barriers would have delivered. A rank failure at phase
  // p_fail keeps the groups consumed at or before p_fail; an exhaustion at
  // group ex keeps groups 0..ex (with ex itself counted as the exhausted
  // delivery) and takes precedence — the barrier throws at the delivery
  // boundary, before any same-phase rank failure could exist.
  const idx_t p_fail = min_failed.load(std::memory_order_acquire);
  const idx_t ex_g = exhausted.load(std::memory_order_acquire);
  const bool is_ex = ex_g != kNoGroup;

  // A run invoked with hung ranks has by definition failed at phase 0 (the
  // earliest phase they never executed) even if no waiter happened to
  // depend on them and expire the watchdog — e.g. k == 1, or a provider
  // topology that routes around the hung rank. Clamping here also keeps the
  // group fold from counting deliveries the hung ranks never validated.
  const idx_t p_cut = any_hung ? std::min<idx_t>(p_fail, 0) : p_fail;

  idx_t counted = 0;
  if (is_ex) {
    counted = ex_g + 1;
  } else {
    for (idx_t g = 0; g < G; ++g) {
      if (groups[static_cast<std::size_t>(g)].consume_phase <= p_cut) {
        counted = g + 1;
      }
    }
  }

  std::vector<PipelineHealth> fold_health(static_cast<std::size_t>(k_));
  std::vector<std::array<wgt_t, kNumChannels>> fold_bytes(
      static_cast<std::size_t>(k_));
  for (idx_t g = 0; g < counted; ++g) {
    idx_t max_f = 0;
    for (idx_t r = 0; r < k_; ++r) {
      const DstScratch& s = scratch[static_cast<std::size_t>(g * k_ + r)];
      max_f = std::max(max_f, s.max_failures);
      fold_health[static_cast<std::size_t>(r)] = s.health;
      fold_bytes[static_cast<std::size_t>(r)] = s.bytes;
    }
    Exchange::AsyncGroupAccounting acc;
    acc.dst_health = fold_health;
    acc.dst_bytes = fold_bytes;
    acc.passes = std::min<idx_t>(max_f + 1, max_attempts);
    acc.exhausted = is_ex && g == ex_g;
    exchange.async_fold_group(acc);
  }

  if (is_ex) {
    idx_t corrupt = 0;
    for (idx_t r = 0; r < k_; ++r) {
      corrupt +=
          scratch[static_cast<std::size_t>(ex_g * k_ + r)].exhausted_cells;
    }
    exchange.abort_step();
    throw Exchange::exhausted_error(base + static_cast<std::uint64_t>(ex_g),
                                    max_attempts, corrupt);
  }
  // Deaths take precedence and merge: every hung rank plus any bodies that
  // threw RankDeathError surface as one RankDeathError naming the whole
  // casualty list at once, so the recovery path never degrades a death via
  // ParallelGroupError.
  std::vector<idx_t> dead;
  for (idx_t r = 0; r < k_; ++r) {
    if (hung_of(r)) dead.push_back(r);
  }
  std::vector<std::pair<idx_t, std::exception_ptr>> errors;
  if (p_fail != kNoPhase) {
    for (idx_t r = 0; r < k_; ++r) {
      if (rank_errors[static_cast<std::size_t>(r)] &&
          rank_error_phase[static_cast<std::size_t>(r)] == p_fail) {
        if (is_rank_death(rank_errors[static_cast<std::size_t>(r)])) {
          dead.push_back(r);
        } else {
          errors.emplace_back(
              r, std::move(rank_errors[static_cast<std::size_t>(r)]));
        }
      }
    }
  }
  if (!dead.empty()) {
    std::sort(dead.begin(), dead.end());
    throw RankDeathError(std::move(dead));
  }
  if (!errors.empty()) raise_rank_errors(std::move(errors));
}

}  // namespace cpart
