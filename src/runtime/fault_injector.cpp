#include "runtime/fault_injector.hpp"

#include <atomic>

#include "util/seed_stream.hpp"

namespace cpart {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kReorder:
      return "reorder";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultConfig& config) : config_(config) {
  require(config.cell_fault_probability >= 0.0 &&
              config.cell_fault_probability <= 1.0,
          "FaultInjector: cell_fault_probability must be in [0, 1]");
  double total = 0;
  for (double w : config.kind_weights) {
    require(w >= 0, "FaultInjector: kind weights must be non-negative");
    total += w;
  }
  require(total > 0, "FaultInjector: at least one kind weight must be > 0");
  require(config.rank_death_probability >= 0.0 &&
              config.rank_death_probability <= 1.0,
          "FaultInjector: rank_death_probability must be in [0, 1]");
  require(config.rank_hang_probability >= 0.0 &&
              config.rank_hang_probability <= 1.0,
          "FaultInjector: rank_hang_probability must be in [0, 1]");
  require(config.rank_death_probability + config.rank_hang_probability <= 1.0,
          "FaultInjector: rank death + hang probabilities must not exceed 1");
  require((config.kill_rank == kInvalidIndex) ==
              (config.kill_step == kInvalidIndex),
          "FaultInjector: kill_rank and kill_step must be set together");
}

// Decision seeds fold each coordinate of the tuple via the shared
// seed_mix (util/seed_stream.hpp), so the schedule is a pure function of
// the tuple and the formula is the same one every seeded subsystem uses.
std::uint64_t FaultInjector::decision_seed(ChannelId channel,
                                           std::uint64_t superstep,
                                           idx_t attempt, idx_t from,
                                           idx_t to) const {
  std::uint64_t h = config_.seed;
  h = seed_mix(h, superstep);
  h = seed_mix(h, static_cast<std::uint64_t>(attempt));
  h = seed_mix(h, static_cast<std::uint64_t>(static_cast<int>(channel)));
  h = seed_mix(h, static_cast<std::uint64_t>(from));
  h = seed_mix(h, static_cast<std::uint64_t>(to));
  return h;
}

FaultKind FaultInjector::pick_kind(Rng& rng) const {
  double total = 0;
  for (double w : config_.kind_weights) total += w;
  double r = rng.uniform() * total;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    r -= config_.kind_weights[static_cast<std::size_t>(k)];
    if (r < 0) return static_cast<FaultKind>(k);
  }
  return static_cast<FaultKind>(kNumFaultKinds - 1);
}

RankFaultKind FaultInjector::rank_fault(idx_t step, idx_t rank,
                                        idx_t incarnation) const {
  if (incarnation != 0) return RankFaultKind::kNone;
  if (config_.kill_rank != kInvalidIndex && rank == config_.kill_rank &&
      step == config_.kill_step) {
    return config_.kill_hang ? RankFaultKind::kHang : RankFaultKind::kDeath;
  }
  if (config_.rank_death_probability <= 0.0 &&
      config_.rank_hang_probability <= 0.0) {
    return RankFaultKind::kNone;
  }
  // Distinct decision domain from the cell-fault schedule: the extra
  // constant keeps a rank-fault draw from ever correlating with a
  // maybe_corrupt draw at the same coordinates.
  std::uint64_t h = config_.seed;
  h = seed_mix(h, 0x52414e4b44544831ULL);
  h = seed_mix(h, static_cast<std::uint64_t>(step));
  h = seed_mix(h, static_cast<std::uint64_t>(rank));
  Rng rng(h);
  const double u = rng.uniform();
  if (u < config_.rank_death_probability) return RankFaultKind::kDeath;
  if (u < config_.rank_death_probability + config_.rank_hang_probability) {
    return RankFaultKind::kHang;
  }
  return RankFaultKind::kNone;
}

void FaultInjector::record_rank_fault(RankFaultKind kind) {
  if (kind == RankFaultKind::kDeath) {
    std::atomic_ref<wgt_t>(stats_.rank_deaths)
        .fetch_add(1, std::memory_order_relaxed);
  } else if (kind == RankFaultKind::kHang) {
    std::atomic_ref<wgt_t>(stats_.rank_hangs)
        .fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::record(FaultKind kind, ChannelId channel) {
  // Concurrent rank programs validate their own inbox cells under the async
  // executor, so decisions land from several threads at once. The counters
  // are commutative sums, so atomic increments keep the totals exact (and
  // the Stats layout unchanged for single-threaded readers).
  std::atomic_ref<wgt_t>(stats_.faults_injected)
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<wgt_t>(
      stats_.by_kind[static_cast<std::size_t>(static_cast<int>(kind))])
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<wgt_t>(
      stats_.by_channel[static_cast<std::size_t>(static_cast<int>(channel))])
      .fetch_add(1, std::memory_order_relaxed);
}

FaultyFileShim::FaultyFileShim(const IoFaultConfig& config, FileShim& base)
    : config_(config), base_(base) {
  require(config.write_fault_probability >= 0.0 &&
              config.write_fault_probability <= 1.0,
          "FaultyFileShim: write_fault_probability must be in [0, 1]");
  require(config.read_bitflip_probability >= 0.0 &&
              config.read_bitflip_probability <= 1.0,
          "FaultyFileShim: read_bitflip_probability must be in [0, 1]");
}

bool FaultyFileShim::write_file(const std::string& path,
                                const std::string& bytes) {
  Rng rng(seed_mix(config_.seed, 0x494f5752ULL + op_counter_++));
  if (rng.uniform() < config_.write_fault_probability) {
    if (rng.uniform() < 0.5 && !bytes.empty()) {
      // Short write: a prefix lands before the failure is reported.
      ++stats_.short_writes;
      const std::size_t cut =
          static_cast<std::size_t>(rng.uniform_int(to_idx(bytes.size())));
      base_.write_file(path, bytes.substr(0, cut));
      return false;
    }
    ++stats_.enospc_failures;  // nothing lands at all
    return false;
  }
  return base_.write_file(path, bytes);
}

bool FaultyFileShim::sync_file(const std::string& path) {
  return base_.sync_file(path);
}

bool FaultyFileShim::rename_file(const std::string& from,
                                 const std::string& to) {
  if (fail_next_rename_) {
    fail_next_rename_ = false;
    ++stats_.dropped_renames;
    return false;
  }
  return base_.rename_file(from, to);
}

bool FaultyFileShim::read_file(const std::string& path, std::string& out) {
  if (!base_.read_file(path, out)) return false;
  Rng rng(seed_mix(config_.seed, 0x494f5244ULL + op_counter_++));
  if (!out.empty() && rng.uniform() < config_.read_bitflip_probability) {
    ++stats_.read_bitflips;
    const std::size_t byte =
        static_cast<std::size_t>(rng.uniform_int(to_idx(out.size())));
    out[byte] = static_cast<char>(out[byte] ^
                                  (1u << (rng.next() & 7u)));
  }
  return true;
}

bool FaultyFileShim::remove_file(const std::string& path) {
  return base_.remove_file(path);
}

}  // namespace cpart
