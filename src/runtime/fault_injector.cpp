#include "runtime/fault_injector.hpp"

#include <atomic>

namespace cpart {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kReorder:
      return "reorder";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultConfig& config) : config_(config) {
  require(config.cell_fault_probability >= 0.0 &&
              config.cell_fault_probability <= 1.0,
          "FaultInjector: cell_fault_probability must be in [0, 1]");
  double total = 0;
  for (double w : config.kind_weights) {
    require(w >= 0, "FaultInjector: kind weights must be non-negative");
    total += w;
  }
  require(total > 0, "FaultInjector: at least one kind weight must be > 0");
}

namespace {

/// SplitMix64 finalizer — used to fold each coordinate of the decision
/// tuple into the seed so the schedule is a pure function of the tuple.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  std::uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t FaultInjector::decision_seed(ChannelId channel,
                                           std::uint64_t superstep,
                                           idx_t attempt, idx_t from,
                                           idx_t to) const {
  std::uint64_t h = config_.seed;
  h = mix(h, superstep);
  h = mix(h, static_cast<std::uint64_t>(attempt));
  h = mix(h, static_cast<std::uint64_t>(static_cast<int>(channel)));
  h = mix(h, static_cast<std::uint64_t>(from));
  h = mix(h, static_cast<std::uint64_t>(to));
  return h;
}

FaultKind FaultInjector::pick_kind(Rng& rng) const {
  double total = 0;
  for (double w : config_.kind_weights) total += w;
  double r = rng.uniform() * total;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    r -= config_.kind_weights[static_cast<std::size_t>(k)];
    if (r < 0) return static_cast<FaultKind>(k);
  }
  return static_cast<FaultKind>(kNumFaultKinds - 1);
}

void FaultInjector::record(FaultKind kind, ChannelId channel) {
  // Concurrent rank programs validate their own inbox cells under the async
  // executor, so decisions land from several threads at once. The counters
  // are commutative sums, so atomic increments keep the totals exact (and
  // the Stats layout unchanged for single-threaded readers).
  std::atomic_ref<wgt_t>(stats_.faults_injected)
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<wgt_t>(
      stats_.by_kind[static_cast<std::size_t>(static_cast<int>(kind))])
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<wgt_t>(
      stats_.by_channel[static_cast<std::size_t>(static_cast<int>(channel))])
      .fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cpart
