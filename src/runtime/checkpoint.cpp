#include "runtime/checkpoint.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <limits>
#include <thread>
#include <utility>

#include "util/varint.hpp"

namespace cpart {

namespace {

constexpr char kMagic[4] = {'c', 'p', 'c', 'k'};
constexpr std::uint8_t kVersion = 1;
constexpr char kManifestMagic[4] = {'c', 'p', 'm', 'f'};
constexpr std::uint8_t kManifestVersion = 1;

void append_f64(std::string& out, double v) {
  char buf[sizeof(double)];
  std::memcpy(buf, &v, sizeof(double));
  out.append(buf, sizeof(double));
}

bool read_f64(std::string_view bytes, std::size_t& pos, double& v) {
  if (pos > bytes.size() || bytes.size() - pos < sizeof(double)) return false;
  std::memcpy(&v, bytes.data() + pos, sizeof(double));
  pos += sizeof(double);
  return true;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof(std::uint64_t)];
  std::memcpy(buf, &v, sizeof(std::uint64_t));
  out.append(buf, sizeof(std::uint64_t));
}

/// Appends the FNV-1a of everything already in `out` — the trailing
/// integrity frame both the checkpoint and the manifest share.
void seal_checksum(std::string& out) {
  append_u64(out, fnv1a_bytes(kFnvOffsetBasis, out.data(), out.size()));
}

/// Validates the trailing checksum and returns the payload view before it.
std::string_view check_seal(std::string_view bytes, const char* what) {
  require(bytes.size() >= sizeof(std::uint64_t),
          std::string(what) + ": truncated before checksum");
  const std::size_t payload = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload, sizeof(std::uint64_t));
  require(stored == fnv1a_bytes(kFnvOffsetBasis, bytes.data(), payload),
          std::string(what) + ": checksum mismatch");
  return bytes.substr(0, payload);
}

std::uint64_t read_varint_or_throw(std::string_view bytes, std::size_t& pos,
                                   const char* what) {
  std::uint64_t value = 0;
  require(read_varint(bytes, pos, value),
          std::string("checkpoint: truncated or overlong ") + what);
  return value;
}

idx_t read_idx_or_throw(std::string_view bytes, std::size_t& pos,
                        const char* what) {
  const std::uint64_t value = read_varint_or_throw(bytes, pos, what);
  require(value <=
              static_cast<std::uint64_t>(std::numeric_limits<idx_t>::max()),
          std::string("checkpoint: out-of-range ") + what);
  return static_cast<idx_t>(value);
}

}  // namespace

std::string encode_checkpoint(const CheckpointData& data) {
  const std::size_t n = data.node_owner.size();
  require(data.k >= 1, "checkpoint: k must be >= 1");
  require(data.step >= 0, "checkpoint: negative step");
  require(data.positions.size() == n && data.contact_hits.size() == n,
          "checkpoint: state arrays must match the ownership map");

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  append_varint(out, data.config_hash);
  append_varint(out, static_cast<std::uint64_t>(data.step));
  append_varint(out, data.superstep);
  append_varint(out, static_cast<std::uint64_t>(data.k));
  append_varint(out, static_cast<std::uint64_t>(n));
  for (idx_t o : data.node_owner) {
    require(o >= 0 && o < data.k, "checkpoint: owner out of range");
    append_varint(out, static_cast<std::uint64_t>(o));
  }
  for (idx_t r = 0; r < data.k; ++r) {
    std::uint64_t owned = 0;
    for (idx_t o : data.node_owner) owned += o == r ? 1 : 0;
    append_varint(out, owned);
    for (std::size_t v = 0; v < n; ++v) {
      if (data.node_owner[v] != r) continue;
      const Vec3& p = data.positions[v];
      append_f64(out, p.x);
      append_f64(out, p.y);
      append_f64(out, p.z);
      require(data.contact_hits[v] >= 0, "checkpoint: negative hit count");
      append_varint(out, static_cast<std::uint64_t>(data.contact_hits[v]));
    }
  }
  seal_checksum(out);
  return out;
}

CheckpointData decode_checkpoint(std::string_view bytes) {
  const std::string_view payload = check_seal(bytes, "checkpoint");
  require(payload.size() >= sizeof(kMagic) + 1,
          "checkpoint: truncated header");
  require(std::memcmp(payload.data(), kMagic, sizeof(kMagic)) == 0,
          "checkpoint: bad magic");
  std::size_t pos = sizeof(kMagic);
  const std::uint8_t version = static_cast<std::uint8_t>(payload[pos++]);
  require(version == kVersion, "checkpoint: unsupported version");

  CheckpointData data;
  data.config_hash = read_varint_or_throw(payload, pos, "config hash");
  data.step = read_idx_or_throw(payload, pos, "step");
  data.superstep = read_varint_or_throw(payload, pos, "superstep");
  data.k = read_idx_or_throw(payload, pos, "rank count");
  require(data.k >= 1, "checkpoint: k must be >= 1");
  const idx_t num_nodes = read_idx_or_throw(payload, pos, "node count");
  // Every node costs at least one owner byte, so this bound rejects a
  // hostile count before it can drive a huge allocation.
  require(static_cast<std::size_t>(num_nodes) <= payload.size() - pos,
          "checkpoint: node count exceeds payload");

  data.node_owner.resize(static_cast<std::size_t>(num_nodes));
  std::vector<std::uint64_t> owned_of(static_cast<std::size_t>(data.k), 0);
  for (idx_t v = 0; v < num_nodes; ++v) {
    const idx_t o = read_idx_or_throw(payload, pos, "owner");
    require(o < data.k, "checkpoint: owner out of range");
    data.node_owner[static_cast<std::size_t>(v)] = o;
    ++owned_of[static_cast<std::size_t>(o)];
  }

  data.positions.resize(static_cast<std::size_t>(num_nodes));
  data.contact_hits.resize(static_cast<std::size_t>(num_nodes));
  for (idx_t r = 0; r < data.k; ++r) {
    const std::uint64_t owned =
        read_varint_or_throw(payload, pos, "owned count");
    require(owned == owned_of[static_cast<std::size_t>(r)],
            "checkpoint: rank section disagrees with the ownership map");
    for (idx_t v = 0; v < num_nodes; ++v) {
      if (data.node_owner[static_cast<std::size_t>(v)] != r) continue;
      Vec3& p = data.positions[static_cast<std::size_t>(v)];
      require(read_f64(payload, pos, p.x) && read_f64(payload, pos, p.y) &&
                  read_f64(payload, pos, p.z),
              "checkpoint: truncated position");
      const std::uint64_t hits =
          read_varint_or_throw(payload, pos, "hit count");
      require(hits <= static_cast<std::uint64_t>(
                          std::numeric_limits<wgt_t>::max()),
              "checkpoint: out-of-range hit count");
      data.contact_hits[static_cast<std::size_t>(v)] =
          static_cast<wgt_t>(hits);
    }
  }
  require(pos == payload.size(), "checkpoint: trailing garbage");
  return data;
}

CheckpointStore::CheckpointStore(std::string dir, FileShim& shim)
    : dir_(std::move(dir)), shim_(&shim) {
  require(!dir_.empty(), "CheckpointStore: empty directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string CheckpointStore::manifest_path() const {
  return dir_ + "/MANIFEST.cpmf";
}

std::string CheckpointStore::checkpoint_path(idx_t step) const {
  return dir_ + "/ckpt_" + std::to_string(step) + ".cpck";
}

bool CheckpointStore::commit_with_retry(const std::string& path,
                                        const std::string& bytes,
                                        const RetryPolicy& retry,
                                        double* backoff_ms) {
  for (idx_t attempt = 0; attempt < retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      const double backoff = retry.backoff_for(attempt - 1);
      if (backoff_ms != nullptr) *backoff_ms += backoff;
      if (retry.sleep_on_backoff) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
      }
    }
    if (atomic_write_file(path, bytes, *shim_)) return true;
  }
  return false;
}

bool CheckpointStore::write(const CheckpointData& data,
                            const RetryPolicy& retry, double* backoff_ms) {
  const std::string path = checkpoint_path(data.step);

  // Remember what the manifest points at now, so the superseded blob can be
  // removed after — and only after — the new manifest commits.
  std::string previous;
  {
    std::string manifest_bytes;
    if (shim_->read_file(manifest_path(), manifest_bytes)) {
      try {
        std::string_view payload = check_seal(manifest_bytes, "manifest");
        std::size_t pos = sizeof(kManifestMagic) + 1;
        if (payload.size() >= pos &&
            std::memcmp(payload.data(), kManifestMagic,
                        sizeof(kManifestMagic)) == 0) {
          read_varint_or_throw(payload, pos, "manifest step");
          const std::uint64_t len =
              read_varint_or_throw(payload, pos, "manifest name length");
          if (len <= payload.size() - pos) {
            previous.assign(payload.substr(pos, len));
          }
        }
      } catch (const InputError&) {
        // A damaged manifest has no blob worth preserving by name.
      }
    }
  }

  if (!commit_with_retry(path, encode_checkpoint(data), retry, backoff_ms)) {
    return false;
  }

  std::string manifest;
  manifest.append(kManifestMagic, sizeof(kManifestMagic));
  manifest.push_back(static_cast<char>(kManifestVersion));
  append_varint(manifest, static_cast<std::uint64_t>(data.step));
  const std::string name = "ckpt_" + std::to_string(data.step) + ".cpck";
  append_varint(manifest, name.size());
  manifest.append(name);
  seal_checksum(manifest);
  if (!commit_with_retry(manifest_path(), manifest, retry, backoff_ms)) {
    return false;
  }

  if (!previous.empty() && previous != name) {
    shim_->remove_file(dir_ + "/" + previous);
  }
  return true;
}

std::optional<CheckpointData> CheckpointStore::load() const {
  std::string manifest_bytes;
  if (!shim_->read_file(manifest_path(), manifest_bytes)) return std::nullopt;
  try {
    const std::string_view payload = check_seal(manifest_bytes, "manifest");
    require(payload.size() >= sizeof(kManifestMagic) + 1,
            "manifest: truncated header");
    require(std::memcmp(payload.data(), kManifestMagic,
                        sizeof(kManifestMagic)) == 0,
            "manifest: bad magic");
    std::size_t pos = sizeof(kManifestMagic);
    require(static_cast<std::uint8_t>(payload[pos++]) == kManifestVersion,
            "manifest: unsupported version");
    read_varint_or_throw(payload, pos, "manifest step");
    const std::uint64_t len =
        read_varint_or_throw(payload, pos, "manifest name length");
    require(len == payload.size() - pos, "manifest: trailing garbage");
    const std::string name(payload.substr(pos, len));

    std::string blob;
    if (!shim_->read_file(dir_ + "/" + name, blob)) return std::nullopt;
    return decode_checkpoint(blob);
  } catch (const InputError&) {
    return std::nullopt;
  }
}

}  // namespace cpart
