#include "runtime/virtual_cluster.hpp"

#include <algorithm>

namespace cpart {

wgt_t StepTraffic::total_units() const {
  wgt_t total = 0;
  for (const auto& p : processors) total += p.sent_units;
  return total;
}

wgt_t StepTraffic::max_received() const {
  wgt_t best = 0;
  for (const auto& p : processors) best = std::max(best, p.received_units);
  return best;
}

wgt_t StepTraffic::max_sent() const {
  wgt_t best = 0;
  for (const auto& p : processors) best = std::max(best, p.sent_units);
  return best;
}

double StepTraffic::imbalance() const {
  if (processors.empty()) return 1.0;
  wgt_t total = 0, worst = 0;
  for (const auto& p : processors) {
    const wgt_t load = p.sent_units + p.received_units;
    total += load;
    worst = std::max(worst, load);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(worst) *
         static_cast<double>(processors.size()) / static_cast<double>(total);
}

idx_t StepTraffic::total_messages() const {
  idx_t total = 0;
  for (const auto& p : processors) total += p.messages;
  return total;
}

StepTraffic& StepTraffic::operator+=(const StepTraffic& other) {
  require(processors.size() == other.processors.size(),
          "StepTraffic::operator+=: processor count mismatch");
  for (std::size_t i = 0; i < processors.size(); ++i) {
    processors[i].sent_units += other.processors[i].sent_units;
    processors[i].received_units += other.processors[i].received_units;
    processors[i].messages += other.processors[i].messages;
  }
  return *this;
}

VirtualCluster::VirtualCluster(idx_t k) : k_(k) {
  require(k >= 1, "VirtualCluster: k must be >= 1");
  matrix_.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0);
}

void VirtualCluster::send(idx_t from, idx_t to, wgt_t units) {
  require(from >= 0 && from < k_ && to >= 0 && to < k_,
          "VirtualCluster::send: processor out of range");
  require(units >= 0, "VirtualCluster::send: negative units");
  if (from == to || units == 0) return;
  matrix_[static_cast<std::size_t>(from) * k_ + static_cast<std::size_t>(to)] +=
      units;
}

StepTraffic VirtualCluster::finish() {
  StepTraffic traffic;
  traffic.processors.assign(static_cast<std::size_t>(k_), {});
  for (idx_t from = 0; from < k_; ++from) {
    for (idx_t to = 0; to < k_; ++to) {
      const wgt_t units =
          matrix_[static_cast<std::size_t>(from) * k_ +
                  static_cast<std::size_t>(to)];
      if (units == 0) continue;
      traffic.processors[static_cast<std::size_t>(from)].sent_units += units;
      traffic.processors[static_cast<std::size_t>(to)].received_units += units;
      ++traffic.processors[static_cast<std::size_t>(from)].messages;
    }
  }
  std::fill(matrix_.begin(), matrix_.end(), wgt_t{0});
  return traffic;
}

StepTraffic fe_halo_traffic(const CsrGraph& g, std::span<const idx_t> part,
                            idx_t k) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "fe_halo_traffic: partition size mismatch");
  VirtualCluster cluster(k);
  std::vector<char> seen(static_cast<std::size_t>(k), 0);
  std::vector<idx_t> touched;
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    const idx_t pv = part[static_cast<std::size_t>(v)];
    touched.clear();
    for (idx_t u : g.neighbors(v)) {
      const idx_t pu = part[static_cast<std::size_t>(u)];
      if (pu == pv || seen[static_cast<std::size_t>(pu)]) continue;
      seen[static_cast<std::size_t>(pu)] = 1;
      touched.push_back(pu);
    }
    for (idx_t p : touched) {
      cluster.send(pv, p, 1);  // v's data shipped to each adjacent partition
      seen[static_cast<std::size_t>(p)] = 0;
    }
  }
  return cluster.finish();
}

StepTraffic global_search_traffic(
    const Mesh& mesh, const Surface& surface, std::span<const idx_t> owner,
    real_t margin, idx_t k,
    const std::function<void(const BBox&, std::vector<idx_t>&)>& filter) {
  require(owner.size() == surface.faces.size(),
          "global_search_traffic: owner array size mismatch");
  VirtualCluster cluster(k);
  std::vector<idx_t> parts;
  for (std::size_t f = 0; f < surface.faces.size(); ++f) {
    parts.clear();
    const BBox box = face_bbox(mesh, surface.faces[f], margin);
    filter(box, parts);
    for (idx_t p : parts) {
      if (p != owner[f]) cluster.send(owner[f], p, 1);
    }
  }
  return cluster.finish();
}

StepTraffic m2m_traffic(std::span<const idx_t> fe_labels,
                        std::span<const idx_t> contact_labels,
                        std::span<const idx_t> relabel, idx_t k) {
  require(fe_labels.size() == contact_labels.size(),
          "m2m_traffic: label array size mismatch");
  require(relabel.size() == static_cast<std::size_t>(k),
          "m2m_traffic: relabel size mismatch");
  VirtualCluster cluster(k);
  for (std::size_t i = 0; i < fe_labels.size(); ++i) {
    const idx_t fe = fe_labels[i];
    const idx_t contact_as_fe =
        relabel[static_cast<std::size_t>(contact_labels[i])];
    if (fe != contact_as_fe) {
      // One unit to the contact decomposition before the search, one back
      // after — the "twice the M2MComm value" of Section 5.2.
      cluster.send(fe, contact_as_fe, 1);
      cluster.send(contact_as_fe, fe, 1);
    }
  }
  return cluster.finish();
}

}  // namespace cpart
