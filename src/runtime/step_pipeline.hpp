// Incremental per-timestep contact pipeline.
//
// The paper's evaluation loop regenerates everything per snapshot: deform
// the mesh, re-extract the boundary surface, re-induce the subdomain
// descriptor tree, re-run global search. Done naively (ImpactSim::snapshot
// + McmlDtPartitioner::build_descriptors + face_owners + global_search_tree)
// each step pays three full sorts over the contact points, a fresh mesh and
// surface allocation, and per-query scratch churn. StepPipeline owns the
// cross-snapshot state that makes the steady state cheap:
//   * snapshots are generated into a persistent Mesh/Surface workspace with
//     the displacement/erosion/contact-zone loops parallelized
//     (ImpactSim::snapshot_into);
//   * descriptor induction is warm-started from the previous snapshot's
//     per-axis sorted orders (TreeInduceWorkspace) — after coherent motion
//     the orders are nearly sorted and an adaptive merge repair replaces
//     the full sorts — and the retired tree's node storage is recycled;
//   * global search reuses persistent per-thread masks reset via
//     touched-lists, and the face-owner array is a reused buffer.
// Every product is bit-identical to the cold recomputation; see
// docs/pipeline.md for the dataflow and the warm-start invariants.
#pragma once

#include <optional>

#include "contact/global_search.hpp"
#include "core/mcml_dt.hpp"
#include "sim/impact_sim.hpp"
#include "tree/decision_tree.hpp"

namespace cpart {

class StepPipeline {
 public:
  explicit StepPipeline(const ImpactSim& sim);

  /// Generates snapshot `s` into the persistent workspace and makes it
  /// current. Identical to ImpactSim::snapshot(s).
  const ImpactSim::Snapshot& advance(idx_t s);

  /// The snapshot produced by the last advance().
  const ImpactSim::Snapshot& current() const { return snapshot_; }

  /// Rebuilds the subdomain descriptors of the current snapshot under
  /// `partitioner`'s node partition, warm-started from the previous step.
  /// Identical to partitioner.build_descriptors(mesh, surface).
  const SubdomainDescriptors& build_descriptors(
      const McmlDtPartitioner& partitioner);

  /// Descriptors of the last build_descriptors() call.
  const SubdomainDescriptors& descriptors() const { return *descriptors_; }

  /// Global tree search of the current snapshot's surface against the
  /// current descriptors, with face owners derived from `partitioner`'s
  /// node partition. Identical to face_owners + global_search_tree.
  GlobalSearchStats search(const McmlDtPartitioner& partitioner,
                           real_t margin);

  /// Face owners computed by the last search().
  std::span<const idx_t> owners() const { return owners_; }

 private:
  const ImpactSim& sim_;
  ImpactSim::SnapshotWorkspace snapshot_ws_;
  ImpactSim::Snapshot snapshot_;
  TreeInduceWorkspace tree_ws_;
  std::optional<SubdomainDescriptors> descriptors_;
  // Reused gather buffers for the descriptor build.
  std::vector<Vec3> points_;
  std::vector<idx_t> labels_;
  std::vector<idx_t> owners_;
};

}  // namespace cpart
