#include "runtime/label_codec.hpp"

#include <limits>
#include <sstream>

#include "tree/tree_io.hpp"
#include "util/varint.hpp"

namespace cpart {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw TreeParseError("label blob: " + what, pos);
}

}  // namespace

std::string encode_label_updates(const std::vector<LabelUpdate>& updates) {
  std::string blob;
  // 1 count byte + typically 1 delta byte + 1-2 owner bytes per update.
  blob.reserve(1 + 3 * updates.size());
  append_varint(blob, static_cast<std::uint64_t>(updates.size()));
  idx_t prev = 0;
  bool first = true;
  for (const auto& [node, owner] : updates) {
    require(node >= 0 && owner >= 0,
            "encode_label_updates: negative node or owner");
    require(first || node > prev,
            "encode_label_updates: node ids must be strictly ascending");
    const idx_t delta = first ? node : node - prev;
    append_varint(blob, static_cast<std::uint64_t>(delta));
    append_varint(blob, static_cast<std::uint64_t>(owner));
    prev = node;
    first = false;
  }
  return blob;
}

std::vector<LabelUpdate> decode_label_updates(std::string_view blob) {
  constexpr auto kMaxIdx =
      static_cast<std::uint64_t>(std::numeric_limits<idx_t>::max());

  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!read_varint(blob, pos, count)) fail("bad update count", pos);
  // Each update is at least two bytes (delta + owner), so a count the
  // remaining bytes cannot carry is rejected before any allocation.
  if (count > (blob.size() - pos) / 2) {
    fail("declared count exceeds payload", pos);
  }

  std::vector<LabelUpdate> updates;
  updates.reserve(static_cast<std::size_t>(count));
  std::uint64_t node = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    std::uint64_t owner = 0;
    if (!read_varint(blob, pos, delta)) fail("bad node delta", pos);
    if (!read_varint(blob, pos, owner)) fail("bad owner", pos);
    if (i > 0 && delta == 0) fail("duplicate node id", pos);
    node += delta;
    if (node > kMaxIdx || owner > kMaxIdx) fail("value out of range", pos);
    updates.emplace_back(static_cast<idx_t>(node), static_cast<idx_t>(owner));
  }
  if (pos != blob.size()) fail("trailing bytes", pos);
  return updates;
}

}  // namespace cpart
