// Dependency-driven rank execution: channel-granular async supersteps.
//
// RankExecutor's fused-phase schedule separated consecutive rank phases
// with a full SpmdBarrier whose winner delivered whole channels in a serial
// section — every rank waited for every other rank at every phase boundary,
// even for channels it does not read. AsyncExecutor replaces that schedule
// with dependency-driven execution: each phase declares the ChannelMask it
// reads and the mask it writes, and a rank starts its next phase the moment
// *its own* inbox cells for the channels that phase reads have been
// committed. There is no global barrier inside a run:
//
//   * Publication is per (channel-group, source-rank) row: when a rank
//     finishes the last phase that writes into a group, its outbox row is
//     closed with an atomic release store and a shared epoch bump.
//   * A consuming rank validates and commits only its own inbox column —
//     per-cell frame/checksum validation with per-cell retry loops, then a
//     per-destination commit — so a rank consuming halo from 3 neighbors
//     does not wait for the other k-4 (pass an exact provider list to wait
//     on just those rows; without one the rank waits for all k rows).
//   * Quiescence is established by a termination detector, not a barrier:
//     per-group closed-row counters against the sent-row total, plus a
//     monotone epoch word waiters park on (spin-then-futex, the SpmdBarrier
//     idiom). A group is quiescent for rank r once every row r consumes is
//     closed; the run is quiescent when every phase completed or an abort
//     (rank failure, retry-budget exhaustion) was published on the epoch.
//   * Slow serial sections overlap with phases that do not depend on them:
//     a group whose channels were posted before the run (the rank-0
//     descriptor broadcast, the migration label batch) is born closed, so
//     its k per-destination validations — the former serial section —
//     spread across the workers while independent phases proceed.
//
// Determinism: commit assembles each inbox in ascending source order at
// consumption time, so results never depend on arrival order. The fault
// schedule is preserved exactly: per-cell validation keys injector
// decisions on (channel, superstep, attempt, src, dst) — the barrier
// build's exact tuple, with group j of a run numbered superstep base+j —
// and when an injector is armed, group validation additionally gates on
// completion of all prior phases, so detection counters, retry accounting,
// and budget exhaustion stay bit-identical to the barrier schedule at any
// thread count. Health accounting folds per-group, as if one
// deliver(mask) had run per group (see Exchange::async_fold_group);
// readiness waits are counted as per-channel stalls in PipelineHealth.
//
// Failure semantics match RankExecutor: every rank completes the earliest
// failing phase before the run unwinds (later-phase work is discarded), a
// single failing rank rethrows its original exception, several aggregate
// into ParallelGroupError, and an exhausted retry budget aborts the step
// and throws the barrier-identical TransportError.
#pragma once

#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "runtime/health.hpp"
#include "util/common.hpp"

namespace cpart {

class Exchange;

/// One or more rank programs were declared dead: either a body threw this
/// (the seeded death schedule's injection point), or the run's watchdog
/// expired on a rank that never published its rows. The step's state is
/// unusable — unlike TransportError/ParallelGroupError, the pipelines do
/// NOT degrade this to the centralized reference; DistributedSim restores
/// the last durable checkpoint and replays (see runtime/checkpoint.hpp).
class RankDeathError : public std::runtime_error {
 public:
  explicit RankDeathError(std::vector<idx_t> ranks);

  /// The dead ranks, ascending.
  const std::vector<idx_t>& ranks() const { return ranks_; }

 private:
  std::vector<idx_t> ranks_;
};

/// One rank phase of a dependency-driven run.
struct AsyncPhase {
  /// The rank program: body(rank) for every rank in [0, k).
  std::function<void(idx_t)> body;
  /// Channels whose inbox cells this phase's bodies read. They are
  /// validated and committed per destination immediately before body(rank)
  /// runs, as soon as rank's cells are ready. Within one run a channel may
  /// be read by at most one phase, and its last writer must be an earlier
  /// phase (or the caller, before the run — such a group is born closed).
  ChannelMask reads = 0;
  /// Channels this phase's bodies post into (send/broadcast). A written
  /// channel read by a later phase of the same run commits inside the run;
  /// one read by no phase stays staged for a driver-side deliver() after
  /// the run (the rank-0 contact gather pattern).
  ChannelMask writes = 0;
  /// Optional per-rank wall-ms accumulator for the body (size k).
  std::span<double> ms_accum = {};
  /// Optional per-rank wall-ms accumulator for the readiness wait that
  /// precedes the body (size k). Zero when the inputs were already ready.
  std::span<double> wait_ms_accum = {};
  /// Optional exact provider topology for `reads`: providers[dst] lists
  /// every source rank that may post to dst on any channel of the mask.
  /// Lets dst proceed once just those rows are closed (neighbor-granular
  /// delivery). nullptr = any rank may post, wait for all k rows. Ignored
  /// while a fault injector is armed (validation then gates on full phase
  /// completion to keep the fault schedule barrier-identical).
  const std::vector<std::vector<idx_t>>* providers = nullptr;
};

/// Failure-detection knobs of one run.
struct AsyncRunOptions {
  /// Watchdog deadline: a readiness wait blocked longer than this declares
  /// every hung rank dead — their rows are force-closed (the exhaustion
  /// drain idiom, so no waiter deadlocks) and the run unwinds with
  /// RankDeathError instead of blocking forever. 0 disables the watchdog.
  double watchdog_deadline_ms = 0;
  /// Per-rank hang mask (size k, or empty for none): a rank with a nonzero
  /// entry never executes — no bodies, no row closes, no publications —
  /// simulating a vanished process. In-process rank programs cannot
  /// genuinely disappear mid-body, so death candidates are restricted to
  /// this injected set; a deployment over real processes would feed its
  /// liveness signal in here. Requires watchdog_deadline_ms > 0.
  std::span<const char> hung = {};
};

class AsyncExecutor {
 public:
  explicit AsyncExecutor(idx_t k);

  idx_t num_ranks() const { return k_; }

  /// Runs the phase sequence to quiescence in one pool dispatch.
  /// W = min(pool size, hardware concurrency, k) workers each own ranks
  /// w, w+W, ...; a worker advances phase-major (all owned ranks through
  /// phase p before phase p+1), blocking per owned rank only on that
  /// rank's input rows. Consumes one Exchange superstep per group (a
  /// phase with non-zero reads), in phase order.
  void run(std::span<const AsyncPhase> phases, Exchange& exchange,
           const AsyncRunOptions& options = {}) const;

 private:
  idx_t k_;
};

}  // namespace cpart
