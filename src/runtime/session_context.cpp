#include "runtime/session_context.hpp"

namespace cpart {

namespace {

/// Keyed sub-domains of one session's seed stream. New domains are
/// appended with fresh keys so existing derived schedules stay stable.
constexpr std::uint64_t kFaultDomainKey = 0x4641554c54ULL;  // "FAULT"

}  // namespace

SessionContext::SessionContext(SessionContextConfig config)
    : config_(std::move(config)),
      seeds_(SeedStream(config_.service_seed).split(config_.session_key)) {
  if (!config_.checkpoint_root.empty()) {
    require(!config_.name.empty(),
            "SessionContext: a checkpoint root requires a session name");
    checkpoint_dir_ = config_.checkpoint_root + "/" + config_.name;
  }
}

std::uint64_t SessionContext::fault_seed() const {
  return seeds_.derive(kFaultDomainKey);
}

FaultInjector& SessionContext::arm_faults(FaultConfig base) {
  base.seed = fault_seed();
  injector_ = std::make_unique<FaultInjector>(base);
  return *injector_;
}

void SessionContext::record_step(const PipelineHealth& step_health) {
  health_.merge(step_health);
  ++steps_recorded_;
}

}  // namespace cpart
