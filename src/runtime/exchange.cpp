#include "runtime/exchange.hpp"

#include <chrono>
#include <sstream>
#include <thread>

namespace cpart {

Exchange::Exchange(idx_t k)
    : k_(k),
      fe_cluster_(k),
      search_cluster_(k),
      coupling_cluster_(k),
      migration_cluster_(k) {
  descriptors_.resize(k);
  halo_.resize(k);
  faces_.resize(k);
  coupling_forward_.resize(k);
  coupling_return_.resize(k);
  boxes_.resize(k);
  labels_.resize(k);
  migrate_nodes_.resize(k);
  migrate_elements_.resize(k);
}

void Exchange::set_retry_policy(const RetryPolicy& policy) {
  require(policy.max_attempts >= 1,
          "Exchange: retry policy needs at least one attempt");
  require(policy.backoff_base_ms >= 0,
          "Exchange: backoff base must be non-negative");
  retry_ = policy;
}

void Exchange::deliver(ChannelMask mask) {
  const std::uint64_t superstep = superstep_++;
  ++health_.deliveries;

  const auto selected = [mask](ChannelId id) {
    return (mask & channel_bit(id)) != 0;
  };

  idx_t corrupt = 0;
  for (idx_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    ++health_.delivery_attempts;
    corrupt = 0;
    if (selected(ChannelId::kDescriptors)) {
      corrupt += descriptors_.attempt_deliver(
          injector_, ChannelId::kDescriptors, superstep, attempt, health_);
    }
    if (selected(ChannelId::kHalo)) {
      corrupt += halo_.attempt_deliver(injector_, ChannelId::kHalo, superstep,
                                       attempt, health_);
    }
    if (selected(ChannelId::kFaces)) {
      corrupt += faces_.attempt_deliver(injector_, ChannelId::kFaces,
                                        superstep, attempt, health_);
    }
    if (selected(ChannelId::kCouplingForward)) {
      corrupt += coupling_forward_.attempt_deliver(
          injector_, ChannelId::kCouplingForward, superstep, attempt, health_);
    }
    if (selected(ChannelId::kCouplingReturn)) {
      corrupt += coupling_return_.attempt_deliver(
          injector_, ChannelId::kCouplingReturn, superstep, attempt, health_);
    }
    if (selected(ChannelId::kBoxes)) {
      corrupt += boxes_.attempt_deliver(injector_, ChannelId::kBoxes,
                                        superstep, attempt, health_);
    }
    if (selected(ChannelId::kLabels)) {
      corrupt += labels_.attempt_deliver(injector_, ChannelId::kLabels,
                                         superstep, attempt, health_);
    }
    if (selected(ChannelId::kMigrateNodes)) {
      corrupt += migrate_nodes_.attempt_deliver(
          injector_, ChannelId::kMigrateNodes, superstep, attempt, health_);
    }
    if (selected(ChannelId::kMigrateElements)) {
      corrupt += migrate_elements_.attempt_deliver(
          injector_, ChannelId::kMigrateElements, superstep, attempt, health_);
    }
    if (corrupt == 0) break;
    if (attempt + 1 >= retry_.max_attempts) {
      ++health_.exhausted_deliveries;
      const idx_t attempts = retry_.max_attempts;
      abort_step();
      throw exhausted_error(superstep, attempts, corrupt);
    }
    ++health_.retries;
    const double backoff = retry_.backoff_for(attempt);
    health_.backoff_ms += backoff;
    if (retry_.sleep_on_backoff) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff));
    }
  }

  if (selected(ChannelId::kDescriptors)) {
    descriptor_bytes_ += descriptors_.commit(nullptr);
  }
  if (selected(ChannelId::kHalo)) {
    halo_bytes_ += halo_.commit(&fe_cluster_);
  }
  if (selected(ChannelId::kFaces)) {
    face_bytes_ += faces_.commit(&search_cluster_);
  }
  // Forward and return share one cluster finished once per step: a rank
  // pair exchanging coupling data in both directions must count on the
  // combined matrix exactly as m2m_traffic counts it.
  if (selected(ChannelId::kCouplingForward)) {
    coupling_bytes_ += coupling_forward_.commit(&coupling_cluster_);
  }
  if (selected(ChannelId::kCouplingReturn)) {
    coupling_bytes_ += coupling_return_.commit(&coupling_cluster_);
  }
  if (selected(ChannelId::kBoxes)) {
    box_bytes_ += boxes_.commit(nullptr);
  }
  if (selected(ChannelId::kLabels)) {
    label_bytes_ += labels_.commit(nullptr);
  }
  // Node and element migrations share one cluster like the coupling pair:
  // the redistribution matrix counts every record a rank pair exchanged.
  if (selected(ChannelId::kMigrateNodes)) {
    migration_bytes_ += migrate_nodes_.commit(&migration_cluster_);
  }
  if (selected(ChannelId::kMigrateElements)) {
    migration_bytes_ += migrate_elements_.commit(&migration_cluster_);
  }
}

bool Exchange::async_validate_cell(ChannelId id, std::uint64_t superstep,
                                   idx_t attempt, idx_t from, idx_t to,
                                   PipelineHealth& health) {
  switch (id) {
    case ChannelId::kDescriptors:
      return descriptors_.attempt_deliver_cell(injector_, id, superstep,
                                               attempt, from, to, health);
    case ChannelId::kHalo:
      return halo_.attempt_deliver_cell(injector_, id, superstep, attempt,
                                        from, to, health);
    case ChannelId::kFaces:
      return faces_.attempt_deliver_cell(injector_, id, superstep, attempt,
                                         from, to, health);
    case ChannelId::kCouplingForward:
      return coupling_forward_.attempt_deliver_cell(injector_, id, superstep,
                                                    attempt, from, to, health);
    case ChannelId::kCouplingReturn:
      return coupling_return_.attempt_deliver_cell(injector_, id, superstep,
                                                   attempt, from, to, health);
    case ChannelId::kBoxes:
      return boxes_.attempt_deliver_cell(injector_, id, superstep, attempt,
                                         from, to, health);
    case ChannelId::kLabels:
      return labels_.attempt_deliver_cell(injector_, id, superstep, attempt,
                                          from, to, health);
    case ChannelId::kMigrateNodes:
      return migrate_nodes_.attempt_deliver_cell(injector_, id, superstep,
                                                 attempt, from, to, health);
    case ChannelId::kMigrateElements:
      return migrate_elements_.attempt_deliver_cell(injector_, id, superstep,
                                                    attempt, from, to, health);
  }
  require(false, "Exchange::async_validate_cell: unknown channel");
  return false;
}

void Exchange::async_commit_dst(ChannelId id, idx_t to, wgt_t& bytes) {
  switch (id) {
    case ChannelId::kDescriptors:
      bytes += descriptors_.commit_dst(to, nullptr);
      return;
    case ChannelId::kHalo:
      bytes += halo_.commit_dst(to, &fe_cluster_);
      return;
    case ChannelId::kFaces:
      bytes += faces_.commit_dst(to, &search_cluster_);
      return;
    // Forward and return share one cluster, node and element migrations
    // another — identical to the barrier commit mapping above.
    case ChannelId::kCouplingForward:
      bytes += coupling_forward_.commit_dst(to, &coupling_cluster_);
      return;
    case ChannelId::kCouplingReturn:
      bytes += coupling_return_.commit_dst(to, &coupling_cluster_);
      return;
    case ChannelId::kBoxes:
      bytes += boxes_.commit_dst(to, nullptr);
      return;
    case ChannelId::kLabels:
      bytes += labels_.commit_dst(to, nullptr);
      return;
    case ChannelId::kMigrateNodes:
      bytes += migrate_nodes_.commit_dst(to, &migration_cluster_);
      return;
    case ChannelId::kMigrateElements:
      bytes += migrate_elements_.commit_dst(to, &migration_cluster_);
      return;
  }
  require(false, "Exchange::async_commit_dst: unknown channel");
}

void Exchange::async_fold_group(const AsyncGroupAccounting& acc) {
  ++superstep_;
  ++health_.deliveries;
  health_.delivery_attempts += acc.passes;
  for (idx_t pass = 0; pass + 1 < acc.passes; ++pass) {
    ++health_.retries;
    health_.backoff_ms += retry_.backoff_for(pass);
  }
  if (acc.exhausted) ++health_.exhausted_deliveries;
  for (const PipelineHealth& scratch : acc.dst_health) health_ += scratch;
  for (const auto& per_channel : acc.dst_bytes) {
    descriptor_bytes_ +=
        per_channel[static_cast<std::size_t>(ChannelId::kDescriptors)];
    halo_bytes_ += per_channel[static_cast<std::size_t>(ChannelId::kHalo)];
    face_bytes_ += per_channel[static_cast<std::size_t>(ChannelId::kFaces)];
    coupling_bytes_ +=
        per_channel[static_cast<std::size_t>(ChannelId::kCouplingForward)] +
        per_channel[static_cast<std::size_t>(ChannelId::kCouplingReturn)];
    box_bytes_ += per_channel[static_cast<std::size_t>(ChannelId::kBoxes)];
    label_bytes_ += per_channel[static_cast<std::size_t>(ChannelId::kLabels)];
    migration_bytes_ +=
        per_channel[static_cast<std::size_t>(ChannelId::kMigrateNodes)] +
        per_channel[static_cast<std::size_t>(ChannelId::kMigrateElements)];
  }
}

TransportError Exchange::exhausted_error(std::uint64_t superstep,
                                         idx_t attempts, idx_t corrupt_cells) {
  std::ostringstream os;
  os << "Exchange: superstep " << superstep << " still has " << corrupt_cells
     << " corrupt cell(s) after " << attempts << " delivery attempt(s)";
  return TransportError(os.str(), superstep, attempts, corrupt_cells);
}

void Exchange::abort_step() {
  descriptors_.abort();
  halo_.abort();
  faces_.abort();
  coupling_forward_.abort();
  coupling_return_.abort();
  boxes_.abort();
  labels_.abort();
  migrate_nodes_.abort();
  migrate_elements_.abort();
  fe_cluster_.finish();
  search_cluster_.finish();
  coupling_cluster_.finish();
  migration_cluster_.finish();
  descriptor_bytes_ = 0;
  halo_bytes_ = 0;
  face_bytes_ = 0;
  coupling_bytes_ = 0;
  box_bytes_ = 0;
  label_bytes_ = 0;
  migration_bytes_ = 0;
}

}  // namespace cpart
