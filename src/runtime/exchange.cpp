#include "runtime/exchange.hpp"

namespace cpart {

Exchange::Exchange(idx_t k)
    : k_(k), fe_cluster_(k), search_cluster_(k), coupling_cluster_(k) {
  descriptors_.resize(k);
  halo_.resize(k);
  faces_.resize(k);
  coupling_forward_.resize(k);
  coupling_return_.resize(k);
  boxes_.resize(k);
}

void Exchange::deliver() {
  descriptor_bytes_ += descriptors_.deliver(nullptr);
  halo_bytes_ += halo_.deliver(&fe_cluster_);
  face_bytes_ += faces_.deliver(&search_cluster_);
  // Forward and return share one cluster finished once per step: a rank
  // pair exchanging coupling data in both directions must count on the
  // combined matrix exactly as m2m_traffic counts it.
  coupling_bytes_ += coupling_forward_.deliver(&coupling_cluster_);
  coupling_bytes_ += coupling_return_.deliver(&coupling_cluster_);
  box_bytes_ += boxes_.deliver(nullptr);
}

}  // namespace cpart
