// Per-session runtime identity: the state that used to be ambient,
// one-per-process context for "the sim".
//
// Hosting many simulations in one process means nothing sim-scoped may be
// global: each session needs its own seed domain (so chaos schedules never
// correlate across tenants), its own checkpoint directory (so durable
// commits never clobber a neighbor's manifest), its own fault injector,
// and its own accumulated transport health. SessionContext bundles exactly
// those. It lives in runtime/ — below core/ and service/ — because it owns
// no simulation: DistributedSim consumes its pieces (checkpoint_dir wired
// into DistributedSimConfig, the fault seed into the exchange's injector),
// and the service's StatRegistry folds its health record upward.
//
// Seeds are hierarchical (util/seed_stream.hpp): the service holds one
// root, each session derives its stream from (root, session_key), and the
// fault injector's seed is a further split of that — so a session's chaos
// schedule is a pure function of (service seed, session key), independent
// of admission order, scheduling, and every other tenant.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "runtime/fault_injector.hpp"
#include "runtime/health.hpp"
#include "util/seed_stream.hpp"

namespace cpart {

struct SessionContextConfig {
  /// Unique within the service; names the checkpoint subdirectory.
  std::string name;
  /// The service's root seed; every session derivation starts here.
  std::uint64_t service_seed = 0;
  /// Distinct per session (the admission ordinal, or a name hash).
  std::uint64_t session_key = 0;
  /// Service-level checkpoint root; the session gets the subdirectory
  /// `<root>/<name>`. Empty = this session has no durable home (it can
  /// still run, but cannot suspend).
  std::string checkpoint_root;
};

class SessionContext {
 public:
  explicit SessionContext(SessionContextConfig config);

  const std::string& name() const { return config_.name; }

  /// This session's seed stream: SeedStream(service_seed).split(key).
  const SeedStream& seeds() const { return seeds_; }

  /// Seed of the session's fault-injection domain (a keyed split of
  /// seeds(), shared with nothing else).
  std::uint64_t fault_seed() const;

  /// The session's private checkpoint directory (`<root>/<name>`), or
  /// empty when no root was configured.
  const std::string& checkpoint_dir() const { return checkpoint_dir_; }

  /// Arms fault injection for this session: `base` supplies the schedule
  /// shape (probabilities, weights, kill switches); the seed is replaced
  /// with fault_seed() so no two sessions ever draw correlated schedules.
  FaultInjector& arm_faults(FaultConfig base);

  /// The armed injector, or nullptr.
  FaultInjector* injector() { return injector_.get(); }

  /// Folds one step report's health into the session accumulator.
  void record_step(const PipelineHealth& step_health);

  /// Health accumulated over every recorded step (survives suspends — the
  /// context outlives the sim's resident state).
  const PipelineHealth& health() const { return health_; }
  wgt_t steps_recorded() const { return steps_recorded_; }

 private:
  SessionContextConfig config_;
  SeedStream seeds_;
  std::string checkpoint_dir_;
  std::unique_ptr<FaultInjector> injector_;
  PipelineHealth health_{};
  wgt_t steps_recorded_ = 0;
};

}  // namespace cpart
