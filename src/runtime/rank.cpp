#include "runtime/rank.hpp"

#include <algorithm>

namespace cpart {

void Rank::begin_step() {
  descriptors.reset();
  ghosts.clear();
  local_faces.clear();
  events.clear();
}

void Rank::merge_faces(std::span<const idx_t> owned,
                       std::span<const FaceShipMsg> received) {
  local_faces.clear();
  local_faces.reserve(owned.size() + received.size());
  local_faces.insert(local_faces.end(), owned.begin(), owned.end());
  for (const FaceShipMsg& m : received) local_faces.push_back(m.face);
  // A face reaches a rank at most once (the sender's candidate query is
  // deduplicated and excludes the owner), so this is a plain sort of a
  // duplicate-free union: the result is the globally ascending face order
  // the centralized loop produces.
  std::sort(local_faces.begin(), local_faces.end());
}

}  // namespace cpart
