#include "runtime/health.hpp"

#include <sstream>

namespace cpart {

const char* channel_name(ChannelId id) {
  switch (id) {
    case ChannelId::kDescriptors:
      return "descriptors";
    case ChannelId::kHalo:
      return "halo";
    case ChannelId::kFaces:
      return "faces";
    case ChannelId::kCouplingForward:
      return "coupling_forward";
    case ChannelId::kCouplingReturn:
      return "coupling_return";
    case ChannelId::kBoxes:
      return "boxes";
    case ChannelId::kLabels:
      return "labels";
    case ChannelId::kMigrateNodes:
      return "migrate_nodes";
    case ChannelId::kMigrateElements:
      return "migrate_elements";
  }
  return "unknown";
}

ChannelHealth& ChannelHealth::operator+=(const ChannelHealth& other) {
  corrupt_cells += other.corrupt_cells;
  checksum_failures += other.checksum_failures;
  count_mismatches += other.count_mismatches;
  redelivered_bytes += other.redelivered_bytes;
  readiness_stalls += other.readiness_stalls;
  readiness_stall_ns += other.readiness_stall_ns;
  return *this;
}

bool ChannelHealth::operator==(const ChannelHealth& other) const {
  return corrupt_cells == other.corrupt_cells &&
         checksum_failures == other.checksum_failures &&
         count_mismatches == other.count_mismatches &&
         redelivered_bytes == other.redelivered_bytes;
}

bool PipelineHealth::clean() const {
  return corrupt_cells == 0 && retries == 0 && exhausted_deliveries == 0 &&
         degraded_steps == 0 && wire_parse_failures == 0 &&
         failed_ranks == 0 && rank_deaths == 0 &&
         checkpoint_write_failures == 0;
}

PipelineHealth& PipelineHealth::operator+=(const PipelineHealth& other) {
  deliveries += other.deliveries;
  delivery_attempts += other.delivery_attempts;
  retries += other.retries;
  corrupt_cells += other.corrupt_cells;
  checksum_failures += other.checksum_failures;
  count_mismatches += other.count_mismatches;
  redelivered_bytes += other.redelivered_bytes;
  exhausted_deliveries += other.exhausted_deliveries;
  degraded_steps += other.degraded_steps;
  wire_parse_failures += other.wire_parse_failures;
  failed_ranks += other.failed_ranks;
  rank_deaths += other.rank_deaths;
  recoveries += other.recoveries;
  replay_steps += other.replay_steps;
  checkpoints_written += other.checkpoints_written;
  checkpoint_write_failures += other.checkpoint_write_failures;
  backoff_ms += other.backoff_ms;
  readiness_stalls += other.readiness_stalls;
  readiness_stall_ns += other.readiness_stall_ns;
  for (int c = 0; c < kNumChannels; ++c) {
    channels[static_cast<std::size_t>(c)] +=
        other.channels[static_cast<std::size_t>(c)];
  }
  return *this;
}

bool PipelineHealth::operator==(const PipelineHealth& other) const {
  if (!(deliveries == other.deliveries &&
        delivery_attempts == other.delivery_attempts &&
        retries == other.retries && corrupt_cells == other.corrupt_cells &&
        checksum_failures == other.checksum_failures &&
        count_mismatches == other.count_mismatches &&
        redelivered_bytes == other.redelivered_bytes &&
        exhausted_deliveries == other.exhausted_deliveries &&
        degraded_steps == other.degraded_steps &&
        wire_parse_failures == other.wire_parse_failures &&
        failed_ranks == other.failed_ranks &&
        rank_deaths == other.rank_deaths && recoveries == other.recoveries &&
        replay_steps == other.replay_steps &&
        checkpoints_written == other.checkpoints_written &&
        checkpoint_write_failures == other.checkpoint_write_failures &&
        backoff_ms == other.backoff_ms)) {
    return false;
  }
  for (int c = 0; c < kNumChannels; ++c) {
    if (!(channels[static_cast<std::size_t>(c)] ==
          other.channels[static_cast<std::size_t>(c)])) {
      return false;
    }
  }
  return true;
}

std::string PipelineHealth::summary() const {
  std::ostringstream os;
  os << deliveries << " deliveries, " << retries << " retries, "
     << corrupt_cells << " corrupt cells (" << checksum_failures
     << " checksum, " << count_mismatches << " framing), " << degraded_steps
     << " degraded steps, " << readiness_stalls << " readiness stalls ("
     << readiness_stall_ns / 1000000 << " ms blocked)";
  if (rank_deaths > 0 || recoveries > 0 || checkpoints_written > 0 ||
      checkpoint_write_failures > 0) {
    os << ", " << rank_deaths << " rank deaths, " << recoveries
       << " recoveries (" << replay_steps << " replayed steps), "
       << checkpoints_written << " checkpoints ("
       << checkpoint_write_failures << " failed writes)";
  }
  return os.str();
}

}  // namespace cpart
