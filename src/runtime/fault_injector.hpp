// Deterministic, seeded fault injection for the exchange transport.
//
// The injector sits between a channel's outbox and its delivery validation:
// for every non-empty cell of every delivery attempt it makes a counter-based
// decision — a hash of (seed, superstep, attempt, channel, from, to), never
// of call order or wall clock — whether to corrupt the staged wire copy, and
// with which fault kind. The same seed therefore produces the identical
// fault schedule at any thread count and on every rerun, which is what lets
// the chaos tests assert bit-identical recovery and exact health counters.
//
// Faults mutate only the wire copy the channel stages for delivery; the
// sender's outbox is retained untouched until the cell validates, so a
// retried delivery re-stages pristine data (a fresh decision is made per
// attempt — persistent schedules can exhaust the retry budget on purpose).
//
// All five kinds are detectable by the cell framing (message count) plus the
// FNV-1a payload checksum:
//   drop, duplicate, truncate(tail) -> count mismatch
//   bit-flip, reorder, truncate(payload) -> checksum mismatch
//
// maybe_corrupt() is thread-safe: the decision itself is a pure function of
// the tuple (no shared state), and the stats counters are commutative sums
// recorded with atomic increments — under the async executor concurrent
// rank programs validate their own inbox cells, so decisions land from
// several threads at once. Totals are exact and schedule-independent.
#pragma once

#include <array>
#include <vector>

#include "runtime/health.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace cpart {

enum class FaultKind : int {
  kDrop = 0,      // remove one message from the cell
  kDuplicate,     // deliver one message twice
  kTruncate,      // short read: cut the cell tail (or a message's payload)
  kBitFlip,       // flip one bit inside one message
  kReorder,       // swap two messages (delivery-order corruption)
};

inline constexpr int kNumFaultKinds = 5;

const char* fault_kind_name(FaultKind kind);

struct FaultConfig {
  std::uint64_t seed = 1;
  /// Probability that a given non-empty cell is corrupted on a given
  /// delivery attempt. 0 disables injection entirely.
  double cell_fault_probability = 0.0;
  /// Relative weights of the fault kinds (need not sum to 1).
  std::array<double, kNumFaultKinds> kind_weights{1, 1, 1, 1, 1};
  /// Inject only from this superstep (deliver() counter) on — lets a
  /// schedule spare the warm-up step.
  std::uint64_t first_superstep = 0;
};

class FaultInjector {
 public:
  /// What the injector actually did (decisions that hit an eligible cell).
  /// The chaos tests assert these match the detection counters in
  /// PipelineHealth exactly: every injected fault is detected, and nothing
  /// is detected that was not injected.
  struct Stats {
    wgt_t faults_injected = 0;
    std::array<wgt_t, kNumFaultKinds> by_kind{};
    std::array<wgt_t, kNumChannels> by_channel{};

    bool operator==(const Stats&) const = default;
  };

  explicit FaultInjector(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Decides deterministically whether to corrupt `wire` (the staged copy of
  /// one cell) and applies at most one fault. Returns true when a fault was
  /// applied. `wire` must be non-empty.
  template <typename T>
  bool maybe_corrupt(ChannelId channel, std::uint64_t superstep, idx_t attempt,
                     idx_t from, idx_t to, std::vector<T>& wire) {
    if (wire.empty() || config_.cell_fault_probability <= 0.0 ||
        superstep < config_.first_superstep) {
      return false;
    }
    Rng rng(decision_seed(channel, superstep, attempt, from, to));
    if (rng.uniform() >= config_.cell_fault_probability) return false;
    FaultKind kind = pick_kind(rng);
    // A reorder needs two messages to be observable; demote to a drop so
    // every injected fault is guaranteed detectable (stats record what was
    // actually applied).
    if (kind == FaultKind::kReorder && wire.size() < 2) {
      kind = FaultKind::kDrop;
    }
    apply(kind, rng, wire);
    record(kind, channel);
    return true;
  }

 private:
  std::uint64_t decision_seed(ChannelId channel, std::uint64_t superstep,
                              idx_t attempt, idx_t from, idx_t to) const;
  FaultKind pick_kind(Rng& rng) const;
  void record(FaultKind kind, ChannelId channel);

  template <typename T>
  static void apply(FaultKind kind, Rng& rng, std::vector<T>& wire) {
    const idx_t n = to_idx(wire.size());
    switch (kind) {
      case FaultKind::kDrop:
        wire.erase(wire.begin() + rng.uniform_int(n));
        return;
      case FaultKind::kDuplicate: {
        const idx_t i = rng.uniform_int(n);
        wire.insert(wire.begin() + i, wire[static_cast<std::size_t>(i)]);
        return;
      }
      case FaultKind::kTruncate: {
        // Prefer truncating one message's own payload (variable-length
        // messages define fault_truncate_payload via ADL); otherwise model a
        // short read by cutting the cell tail.
        const idx_t i = rng.uniform_int(n);
        if (fault_truncate_payload(wire[static_cast<std::size_t>(i)],
                                   rng.next())) {
          return;
        }
        wire.resize(static_cast<std::size_t>(rng.uniform_int(n)));
        return;
      }
      case FaultKind::kBitFlip:
        fault_bitflip(wire[static_cast<std::size_t>(rng.uniform_int(n))],
                      rng.next());
        return;
      case FaultKind::kReorder: {
        const idx_t i = rng.uniform_int(n);
        idx_t j = rng.uniform_int(n - 1);
        if (j >= i) ++j;
        std::swap(wire[static_cast<std::size_t>(i)],
                  wire[static_cast<std::size_t>(j)]);
        return;
      }
    }
  }

  FaultConfig config_;
  Stats stats_;
};

}  // namespace cpart
