// Deterministic, seeded fault injection for the exchange transport.
//
// The injector sits between a channel's outbox and its delivery validation:
// for every non-empty cell of every delivery attempt it makes a counter-based
// decision — a hash of (seed, superstep, attempt, channel, from, to), never
// of call order or wall clock — whether to corrupt the staged wire copy, and
// with which fault kind. The same seed therefore produces the identical
// fault schedule at any thread count and on every rerun, which is what lets
// the chaos tests assert bit-identical recovery and exact health counters.
//
// Faults mutate only the wire copy the channel stages for delivery; the
// sender's outbox is retained untouched until the cell validates, so a
// retried delivery re-stages pristine data (a fresh decision is made per
// attempt — persistent schedules can exhaust the retry budget on purpose).
//
// All five kinds are detectable by the cell framing (message count) plus the
// FNV-1a payload checksum:
//   drop, duplicate, truncate(tail) -> count mismatch
//   bit-flip, reorder, truncate(payload) -> checksum mismatch
//
// maybe_corrupt() is thread-safe: the decision itself is a pure function of
// the tuple (no shared state), and the stats counters are commutative sums
// recorded with atomic increments — under the async executor concurrent
// rank programs validate their own inbox cells, so decisions land from
// several threads at once. Totals are exact and schedule-independent.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "runtime/health.hpp"
#include "util/atomic_file.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace cpart {

enum class FaultKind : int {
  kDrop = 0,      // remove one message from the cell
  kDuplicate,     // deliver one message twice
  kTruncate,      // short read: cut the cell tail (or a message's payload)
  kBitFlip,       // flip one bit inside one message
  kReorder,       // swap two messages (delivery-order corruption)
};

inline constexpr int kNumFaultKinds = 5;

const char* fault_kind_name(FaultKind kind);

/// Whole-rank faults: a rank program that dies mid-step (throws before
/// producing its sends) or hangs (never runs, never closes its rows — the
/// watchdog's job to detect). Decided per (step, rank, incarnation), where
/// the incarnation counts recovery restarts: a replayed step is a new
/// incarnation, so the same schedule does not re-kill the rank forever.
enum class RankFaultKind : int {
  kNone = 0,
  kDeath,
  kHang,
};

struct FaultConfig {
  std::uint64_t seed = 1;
  /// Probability that a given non-empty cell is corrupted on a given
  /// delivery attempt. 0 disables injection entirely.
  double cell_fault_probability = 0.0;
  /// Relative weights of the fault kinds (need not sum to 1).
  std::array<double, kNumFaultKinds> kind_weights{1, 1, 1, 1, 1};
  /// Inject only from this superstep (deliver() counter) on — lets a
  /// schedule spare the warm-up step.
  std::uint64_t first_superstep = 0;
  /// Per-(step, rank) probability that the rank dies this step (throws out
  /// of its phase body). Applies to incarnation 0 only — replays survive.
  double rank_death_probability = 0.0;
  /// Per-(step, rank) probability that the rank hangs this step (never
  /// publishes; only the executor watchdog can unblock the run).
  double rank_hang_probability = 0.0;
  /// Explicit one-shot kill: rank `kill_rank` fails at step `kill_step`
  /// (incarnation 0 only). kInvalidIndex disables. Combines with the
  /// probabilistic schedule above.
  idx_t kill_rank = kInvalidIndex;
  idx_t kill_step = kInvalidIndex;
  /// When true the explicit kill hangs instead of dying.
  bool kill_hang = false;
};

class FaultInjector {
 public:
  /// What the injector actually did (decisions that hit an eligible cell).
  /// The chaos tests assert these match the detection counters in
  /// PipelineHealth exactly: every injected fault is detected, and nothing
  /// is detected that was not injected.
  struct Stats {
    wgt_t faults_injected = 0;
    std::array<wgt_t, kNumFaultKinds> by_kind{};
    std::array<wgt_t, kNumChannels> by_channel{};
    wgt_t rank_deaths = 0;
    wgt_t rank_hangs = 0;

    bool operator==(const Stats&) const = default;
  };

  explicit FaultInjector(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Whole-rank fault decision for (step, rank, incarnation) — a pure
  /// function of the tuple and the seed, independent of thread count and of
  /// everything the cell-fault schedule draws. The explicit kill_rank /
  /// kill_step pair fires at incarnation 0 only, as does the probabilistic
  /// schedule: a replayed step must be survivable or recovery could never
  /// make progress.
  RankFaultKind rank_fault(idx_t step, idx_t rank, idx_t incarnation) const;

  /// Counts an armed whole-rank fault into the stats (the step driver calls
  /// this once per rank it actually sabotages).
  void record_rank_fault(RankFaultKind kind);

  /// Decides deterministically whether to corrupt `wire` (the staged copy of
  /// one cell) and applies at most one fault. Returns true when a fault was
  /// applied. `wire` must be non-empty.
  template <typename T>
  bool maybe_corrupt(ChannelId channel, std::uint64_t superstep, idx_t attempt,
                     idx_t from, idx_t to, std::vector<T>& wire) {
    if (wire.empty() || config_.cell_fault_probability <= 0.0 ||
        superstep < config_.first_superstep) {
      return false;
    }
    Rng rng(decision_seed(channel, superstep, attempt, from, to));
    if (rng.uniform() >= config_.cell_fault_probability) return false;
    FaultKind kind = pick_kind(rng);
    // A reorder needs two messages to be observable; demote to a drop so
    // every injected fault is guaranteed detectable (stats record what was
    // actually applied).
    if (kind == FaultKind::kReorder && wire.size() < 2) {
      kind = FaultKind::kDrop;
    }
    apply(kind, rng, wire);
    record(kind, channel);
    return true;
  }

 private:
  std::uint64_t decision_seed(ChannelId channel, std::uint64_t superstep,
                              idx_t attempt, idx_t from, idx_t to) const;
  FaultKind pick_kind(Rng& rng) const;
  void record(FaultKind kind, ChannelId channel);

  template <typename T>
  static void apply(FaultKind kind, Rng& rng, std::vector<T>& wire) {
    const idx_t n = to_idx(wire.size());
    switch (kind) {
      case FaultKind::kDrop:
        wire.erase(wire.begin() + rng.uniform_int(n));
        return;
      case FaultKind::kDuplicate: {
        const idx_t i = rng.uniform_int(n);
        wire.insert(wire.begin() + i, wire[static_cast<std::size_t>(i)]);
        return;
      }
      case FaultKind::kTruncate: {
        // Prefer truncating one message's own payload (variable-length
        // messages define fault_truncate_payload via ADL); otherwise model a
        // short read by cutting the cell tail.
        const idx_t i = rng.uniform_int(n);
        if (fault_truncate_payload(wire[static_cast<std::size_t>(i)],
                                   rng.next())) {
          return;
        }
        wire.resize(static_cast<std::size_t>(rng.uniform_int(n)));
        return;
      }
      case FaultKind::kBitFlip:
        fault_bitflip(wire[static_cast<std::size_t>(rng.uniform_int(n))],
                      rng.next());
        return;
      case FaultKind::kReorder: {
        const idx_t i = rng.uniform_int(n);
        idx_t j = rng.uniform_int(n - 1);
        if (j >= i) ++j;
        std::swap(wire[static_cast<std::size_t>(i)],
                  wire[static_cast<std::size_t>(j)]);
        return;
      }
    }
  }

  FaultConfig config_;
  Stats stats_;
};

/// Seeded I/O fault schedule for FaultyFileShim. Decisions are counter-based
/// (a hash of the seed and the per-shim operation index), so a fixed
/// sequence of file operations draws a reproducible fault schedule.
struct IoFaultConfig {
  std::uint64_t seed = 1;
  /// Probability that a write_file() fails — split evenly between a short
  /// write (a prefix lands on disk before the failure is reported) and an
  /// ENOSPC-style failure (nothing lands).
  double write_fault_probability = 0.0;
  /// Probability that a read_file() returns the payload with one bit
  /// flipped (silent media corruption; checksums must catch it).
  double read_bitflip_probability = 0.0;
};

/// A FileShim that injects I/O faults in front of a base shim. Used by the
/// checkpoint tests to prove the durable-commit protocol never loses the
/// last-good checkpoint: failed and torn writes surface as write_file /
/// rename_file returning false (or leaving a prefix under the temp name),
/// and flipped reads surface as checksum rejections at load.
class FaultyFileShim : public FileShim {
 public:
  struct Stats {
    wgt_t short_writes = 0;
    wgt_t enospc_failures = 0;
    wgt_t read_bitflips = 0;
    wgt_t dropped_renames = 0;

    bool operator==(const Stats&) const = default;
  };

  explicit FaultyFileShim(const IoFaultConfig& config,
                          FileShim& base = FileShim::real());

  const Stats& stats() const { return stats_; }

  /// Arms a one-shot torn commit: the next rename_file() is skipped (the
  /// temp file stays, the final name keeps its old content) — the exact
  /// state a crash between temp write and rename leaves behind.
  void fail_next_rename() { fail_next_rename_ = true; }

  bool write_file(const std::string& path, const std::string& bytes) override;
  bool sync_file(const std::string& path) override;
  bool rename_file(const std::string& from, const std::string& to) override;
  bool read_file(const std::string& path, std::string& out) override;
  bool remove_file(const std::string& path) override;

 private:
  IoFaultConfig config_;
  FileShim& base_;
  std::uint64_t op_counter_ = 0;
  bool fail_next_rename_ = false;
  Stats stats_;
};

}  // namespace cpart
