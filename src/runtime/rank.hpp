// One SPMD rank: the per-processor state a rank program carries across the
// supersteps of a pipeline step.
//
// The ownership view (which nodes/faces/halo posts are mine) lives in
// mesh/subdomain.hpp; this struct holds what the rank *computes* during a
// step — its own descriptor copy (rank 0 induces, everyone else parses the
// broadcast wire), the received ghost layer, the merged local face list,
// and the local contact events. All buffers are rank-private and reused
// across steps, so the steady state is allocation-light and the rank
// programs run concurrently without sharing any mutable state.
#pragma once

#include <optional>
#include <vector>

#include "contact/local_search.hpp"
#include "runtime/exchange.hpp"
#include "tree/descriptor_tree.hpp"

namespace cpart {

struct Rank {
  idx_t id = 0;

  /// This rank's descriptor copy. Each rank needs its OWN copy even in
  /// shared memory: query_box keeps mutable mask/touched scratch, so a
  /// shared instance would race.
  std::optional<SubdomainDescriptors> descriptors;

  /// The ghost layer received in the FE halo exchange — the real payload a
  /// production FE phase would compute on.
  std::vector<HaloNodeMsg> ghosts;

  /// Owned + received surface faces, ascending (the centralized pipeline's
  /// faces_on[rank] order).
  std::vector<idx_t> local_faces;

  /// Contact events this rank found in its local search.
  std::vector<ContactEvent> events;

  /// query_box / local-search scratch.
  std::vector<idx_t> query_parts;
  SubsetSearchScratch search_scratch;

  /// Clears the per-step products (keeps capacities and the view).
  void begin_step();

  /// Rebuilds local_faces as the ascending merge of `owned` (already
  /// ascending) and the face ids of `received` — identical to the order the
  /// centralized global-search loop appends faces_on[rank] in.
  void merge_faces(std::span<const idx_t> owned,
                   std::span<const FaceShipMsg> received);
};

}  // namespace cpart
