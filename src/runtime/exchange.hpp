// Typed message exchange between SPMD ranks — the transport layer of the
// per-rank contact pipeline.
//
// The pre-refactor pipelines computed every phase globally and *accounted*
// traffic through VirtualCluster as a parallel bookkeeping path. Here the
// ranks actually move typed payloads (halo node coordinates, serialized
// descriptor trees, shipped surface faces, contact-point round-trips)
// through channels, and VirtualCluster sits underneath as the transport:
// the per-processor traffic matrices fall out of carrying the messages.
//
// Execution model is BSP: during a superstep every rank writes only its own
// outbox row of each channel (rank-private cells — no locks), then the
// step driver calls Exchange::deliver() as the barrier, which routes every
// cell into the destination inboxes in ascending source order (the
// deterministic delivery order) and charges the phase clusters.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "geom/bbox.hpp"
#include "runtime/virtual_cluster.hpp"

namespace cpart {

// ---------------------------------------------------------------------------
// Message types. wire_bytes() is the size an MPI encoding of the message
// would put on the wire; it feeds the measured payload-byte reports.
// ---------------------------------------------------------------------------

/// FE halo exchange: one boundary node's current position.
struct HaloNodeMsg {
  idx_t node = kInvalidIndex;
  Vec3 position{};
};

inline wgt_t wire_bytes(const HaloNodeMsg&) {
  return static_cast<wgt_t>(sizeof(idx_t) + 3 * sizeof(real_t));
}

/// Descriptor broadcast: the serialized descriptor tree (tree_io wire
/// format — 17 significant digits, exact double round-trip).
struct DescriptorTreeMsg {
  std::string wire;
};

inline wgt_t wire_bytes(const DescriptorTreeMsg& m) {
  return static_cast<wgt_t>(m.wire.size());
}

/// Element shipping: one surface face with its node ids and coordinates.
struct FaceShipMsg {
  idx_t face = kInvalidIndex;     // global surface-face index
  idx_t element = kInvalidIndex;  // owning mesh element
  std::int32_t num_nodes = 0;
  std::array<idx_t, 4> nodes{kInvalidIndex, kInvalidIndex, kInvalidIndex,
                             kInvalidIndex};
  std::array<Vec3, 4> coords{};
};

inline wgt_t wire_bytes(const FaceShipMsg& m) {
  return static_cast<wgt_t>(2 * sizeof(idx_t) + sizeof(std::int32_t)) +
         static_cast<wgt_t>(m.num_nodes) *
             static_cast<wgt_t>(sizeof(idx_t) + 3 * sizeof(real_t));
}

/// ML+RCB coupling: one contact point shipped between the FE and the RCB
/// decompositions (forward before the search, results back after).
struct ContactPointMsg {
  idx_t node = kInvalidIndex;
  Vec3 position{};
};

inline wgt_t wire_bytes(const ContactPointMsg&) {
  return static_cast<wgt_t>(sizeof(idx_t) + 3 * sizeof(real_t));
}

/// ML+RCB subdomain-box allgather: one rank's RCB bounding box.
struct SubdomainBoxMsg {
  idx_t rank = kInvalidIndex;
  BBox box{};
};

inline wgt_t wire_bytes(const SubdomainBoxMsg&) {
  return static_cast<wgt_t>(sizeof(idx_t) + 6 * sizeof(real_t));
}

// ---------------------------------------------------------------------------
// TypedChannel
// ---------------------------------------------------------------------------

/// One contiguous run of a rank's inbox that arrived from a single source.
struct SourceRange {
  idx_t from = kInvalidIndex;
  idx_t begin = 0;  // [begin, end) into inbox(rank)
  idx_t end = 0;
};

/// A k-rank point-to-point channel for messages of type T.
///
/// send() may be called concurrently by different source ranks: the outbox
/// cells are indexed (from, to), and rank r only ever writes row r. deliver
/// runs on the step driver between supersteps.
template <typename T>
class TypedChannel {
 public:
  TypedChannel() = default;

  void resize(idx_t k) {
    require(k >= 1, "TypedChannel: k must be >= 1");
    k_ = k;
    cells_.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(k),
                  Cell{});
    inboxes_.assign(static_cast<std::size_t>(k), {});
    sources_.assign(static_cast<std::size_t>(k), {});
  }

  idx_t num_ranks() const { return k_; }

  /// Posts `item` from rank `from` to rank `to`. Self-sends are local data
  /// and are dropped, matching VirtualCluster::send.
  void send(idx_t from, idx_t to, T item) {
    require(from >= 0 && from < k_ && to >= 0 && to < k_,
            "TypedChannel::send: rank out of range");
    if (from == to) return;
    Cell& cell = cells_[static_cast<std::size_t>(from) *
                            static_cast<std::size_t>(k_) +
                        static_cast<std::size_t>(to)];
    cell.bytes += wire_bytes(item);
    cell.items.push_back(std::move(item));
  }

  /// Posts `item` from `from` to every other rank.
  void broadcast(idx_t from, const T& item) {
    for (idx_t to = 0; to < k_; ++to) {
      if (to != from) send(from, to, item);
    }
  }

  /// Barrier half: routes every outbox cell into the destination inboxes in
  /// ascending source order, charges `transport` (when non-null) with
  /// `units_per_item` per message, and returns the payload bytes moved.
  /// Inboxes from the previous superstep are replaced.
  wgt_t deliver(VirtualCluster* transport, wgt_t units_per_item = 1) {
    wgt_t bytes = 0;
    for (idx_t to = 0; to < k_; ++to) {
      auto& inbox = inboxes_[static_cast<std::size_t>(to)];
      auto& sources = sources_[static_cast<std::size_t>(to)];
      inbox.clear();
      sources.clear();
      for (idx_t from = 0; from < k_; ++from) {
        Cell& cell = cells_[static_cast<std::size_t>(from) *
                                static_cast<std::size_t>(k_) +
                            static_cast<std::size_t>(to)];
        if (cell.items.empty()) continue;
        const idx_t begin = to_idx(inbox.size());
        inbox.insert(inbox.end(), std::make_move_iterator(cell.items.begin()),
                     std::make_move_iterator(cell.items.end()));
        sources.push_back({from, begin, to_idx(inbox.size())});
        if (transport != nullptr) {
          transport->send(from, to,
                          to_idx(cell.items.size()) * units_per_item);
        }
        bytes += cell.bytes;
        cell.items.clear();
        cell.bytes = 0;
      }
    }
    return bytes;
  }

  /// Messages delivered to `rank` last superstep, ascending source order.
  const std::vector<T>& inbox(idx_t rank) const {
    return inboxes_[static_cast<std::size_t>(rank)];
  }

  /// Per-source runs of inbox(rank) — lets a receiver answer each source.
  std::span<const SourceRange> inbox_sources(idx_t rank) const {
    return sources_[static_cast<std::size_t>(rank)];
  }

 private:
  struct Cell {
    std::vector<T> items;
    wgt_t bytes = 0;
  };

  idx_t k_ = 0;
  std::vector<Cell> cells_;  // k*k, row = source rank
  std::vector<std::vector<T>> inboxes_;
  std::vector<std::vector<SourceRange>> sources_;
};

// ---------------------------------------------------------------------------
// Exchange
// ---------------------------------------------------------------------------

/// The channel bundle one pipeline step runs over, with the VirtualCluster
/// transports underneath. Three traffic groups mirror the report fields of
/// the centralized pipelines:
///   * halo            -> fe cluster        (units == fe_halo_traffic)
///   * faces           -> search cluster    (units == NRemote shipping)
///   * coupling fwd+ret -> one shared coupling cluster, finished once, so a
///     rank pair active in both directions counts like the centralized
///     m2m_traffic matrix (messages included);
/// descriptor and box broadcasts move bytes but are charged to no cluster —
/// the centralized pipelines report them as byte counts, not StepTraffic.
class Exchange {
 public:
  explicit Exchange(idx_t k);

  idx_t num_ranks() const { return k_; }

  TypedChannel<DescriptorTreeMsg>& descriptors() { return descriptors_; }
  TypedChannel<HaloNodeMsg>& halo() { return halo_; }
  TypedChannel<FaceShipMsg>& faces() { return faces_; }
  TypedChannel<ContactPointMsg>& coupling_forward() { return coupling_forward_; }
  TypedChannel<ContactPointMsg>& coupling_return() { return coupling_return_; }
  TypedChannel<SubdomainBoxMsg>& boxes() { return boxes_; }

  /// The superstep barrier: delivers every channel (outboxes -> inboxes),
  /// charging the phase clusters and accumulating payload bytes.
  void deliver();

  /// Per-group traffic since the last take (finishing resets the cluster).
  StepTraffic take_fe_traffic() { return fe_cluster_.finish(); }
  StepTraffic take_search_traffic() { return search_cluster_.finish(); }
  StepTraffic take_coupling_traffic() { return coupling_cluster_.finish(); }

  /// Payload bytes accumulated since the last take (reads reset to 0).
  wgt_t take_descriptor_bytes() { return std::exchange(descriptor_bytes_, 0); }
  wgt_t take_halo_bytes() { return std::exchange(halo_bytes_, 0); }
  wgt_t take_face_bytes() { return std::exchange(face_bytes_, 0); }
  wgt_t take_coupling_bytes() { return std::exchange(coupling_bytes_, 0); }
  wgt_t take_box_bytes() { return std::exchange(box_bytes_, 0); }

 private:
  idx_t k_;
  TypedChannel<DescriptorTreeMsg> descriptors_;
  TypedChannel<HaloNodeMsg> halo_;
  TypedChannel<FaceShipMsg> faces_;
  TypedChannel<ContactPointMsg> coupling_forward_;
  TypedChannel<ContactPointMsg> coupling_return_;
  TypedChannel<SubdomainBoxMsg> boxes_;
  VirtualCluster fe_cluster_;
  VirtualCluster search_cluster_;
  VirtualCluster coupling_cluster_;
  wgt_t descriptor_bytes_ = 0;
  wgt_t halo_bytes_ = 0;
  wgt_t face_bytes_ = 0;
  wgt_t coupling_bytes_ = 0;
  wgt_t box_bytes_ = 0;
};

}  // namespace cpart
