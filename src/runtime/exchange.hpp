// Typed message exchange between SPMD ranks — the transport layer of the
// per-rank contact pipeline.
//
// The pre-refactor pipelines computed every phase globally and *accounted*
// traffic through VirtualCluster as a parallel bookkeeping path. Here the
// ranks actually move typed payloads (halo node coordinates, serialized
// descriptor trees, shipped surface faces, contact-point round-trips)
// through channels, and VirtualCluster sits underneath as the transport:
// the per-processor traffic matrices fall out of carrying the messages.
//
// Execution model is BSP: during a superstep every rank writes only its own
// outbox row of each channel (rank-private cells — no locks), then the
// step driver calls Exchange::deliver() as the barrier, which routes every
// cell into the destination inboxes in ascending source order (the
// deterministic delivery order) and charges the phase clusters.
//
// The transport does not trust the wire. Every cell is framed (message
// count) and checksummed (FNV-1a over the logical wire fields) at send
// time; deliver() validates both before anything reaches an inbox. Corrupt
// cells — whether injected by a seeded FaultInjector or caused by genuine
// memory corruption — are re-staged from the retained outbox and
// re-delivered with bounded retries and exponential backoff; only when the
// budget is exhausted does deliver() throw TransportError, which the
// pipelines catch to degrade the step to the centralized reference path.
// All detection and recovery activity is counted in PipelineHealth.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "geom/bbox.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/health.hpp"
#include "runtime/virtual_cluster.hpp"

namespace cpart {

// ---------------------------------------------------------------------------
// Message types. wire_bytes() is the size an MPI encoding of the message
// would put on the wire; it feeds the measured payload-byte reports.
// wire_hash() covers the same logical fields and feeds the per-cell
// delivery checksum. The fault_* overloads are the FaultInjector's
// customization points (found by ADL) for message-level corruption.
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a trivially copyable value's bytes, chained onto `h`.
template <typename S>
std::uint64_t fnv1a_value(std::uint64_t h, const S& value) {
  static_assert(std::is_trivially_copyable_v<S>);
  const auto* bytes = reinterpret_cast<const unsigned char*>(&value);
  for (std::size_t i = 0; i < sizeof(S); ++i) {
    h = (h ^ bytes[i]) * kFnvPrime;
  }
  return h;
}

/// FNV-1a mixing over a byte buffer, eight bytes per round (tail bytes
/// individually). Bulk payloads (the descriptor-tree broadcast is tens of
/// KB, checksummed at send AND at delivery validation) make the canonical
/// byte-at-a-time loop a measurable per-step cost; word mixing is ~8x
/// cheaper and detects every corruption class the transport injects: any
/// bit flip changes its word (xor then multiply-by-odd-prime is injective
/// mod 2^64), and truncation changes the size, which every caller hashes
/// ahead of the buffer.
inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                 std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= size; i += sizeof(std::uint64_t)) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes + i, sizeof(word));
    h = (h ^ word) * kFnvPrime;
  }
  for (; i < size; ++i) {
    h = (h ^ bytes[i]) * kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a_vec3(std::uint64_t h, const Vec3& v) {
  h = fnv1a_value(h, v.x);
  h = fnv1a_value(h, v.y);
  return fnv1a_value(h, v.z);
}

/// Flips one bit of a trivially copyable field, chosen by `r`.
template <typename S>
void flip_bit_in(S& value, std::uint64_t r) {
  static_assert(std::is_trivially_copyable_v<S>);
  auto* bytes = reinterpret_cast<unsigned char*>(&value);
  const std::uint64_t bit = r % (sizeof(S) * 8);
  bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
}

/// FE halo exchange: one boundary node's current position.
struct HaloNodeMsg {
  idx_t node = kInvalidIndex;
  Vec3 position{};
};

inline wgt_t wire_bytes(const HaloNodeMsg&) {
  return static_cast<wgt_t>(sizeof(idx_t) + 3 * sizeof(real_t));
}

inline std::uint64_t wire_hash(const HaloNodeMsg& m) {
  std::uint64_t h = fnv1a_value(kFnvOffsetBasis, m.node);
  return fnv1a_vec3(h, m.position);
}

inline void fault_bitflip(HaloNodeMsg& m, std::uint64_t r) {
  switch (r % 4) {
    case 0: flip_bit_in(m.node, r / 4); break;
    case 1: flip_bit_in(m.position.x, r / 4); break;
    case 2: flip_bit_in(m.position.y, r / 4); break;
    default: flip_bit_in(m.position.z, r / 4); break;
  }
}

inline bool fault_truncate_payload(HaloNodeMsg&, std::uint64_t) {
  return false;  // fixed-layout message: truncation cuts the cell tail
}

/// Descriptor broadcast: the serialized descriptor tree (tree_io wire
/// format — binary or text, both with exact double round-trip). The
/// transport treats the payload as opaque bytes; the per-cell frame and the
/// byte-level fault hooks below work identically for either encoding.
struct DescriptorTreeMsg {
  std::string wire;
};

inline wgt_t wire_bytes(const DescriptorTreeMsg& m) {
  return static_cast<wgt_t>(m.wire.size());
}

inline std::uint64_t wire_hash(const DescriptorTreeMsg& m) {
  std::uint64_t h = fnv1a_value(kFnvOffsetBasis, m.wire.size());
  return fnv1a_bytes(h, m.wire.data(), m.wire.size());
}

inline void fault_bitflip(DescriptorTreeMsg& m, std::uint64_t r) {
  if (m.wire.empty()) return;
  const std::size_t i = static_cast<std::size_t>(r % m.wire.size());
  m.wire[i] = static_cast<char>(m.wire[i] ^
                                static_cast<char>(1 << ((r / 7) % 8)));
}

inline bool fault_truncate_payload(DescriptorTreeMsg& m, std::uint64_t r) {
  if (m.wire.empty()) return false;
  m.wire.resize(static_cast<std::size_t>(r % m.wire.size()));
  return true;
}

/// Element shipping: one surface face with its node ids and coordinates.
struct FaceShipMsg {
  idx_t face = kInvalidIndex;     // global surface-face index
  idx_t element = kInvalidIndex;  // owning mesh element
  std::int32_t num_nodes = 0;
  std::array<idx_t, 4> nodes{kInvalidIndex, kInvalidIndex, kInvalidIndex,
                             kInvalidIndex};
  std::array<Vec3, 4> coords{};
};

inline wgt_t wire_bytes(const FaceShipMsg& m) {
  return static_cast<wgt_t>(2 * sizeof(idx_t) + sizeof(std::int32_t)) +
         static_cast<wgt_t>(m.num_nodes) *
             static_cast<wgt_t>(sizeof(idx_t) + 3 * sizeof(real_t));
}

inline std::uint64_t wire_hash(const FaceShipMsg& m) {
  std::uint64_t h = fnv1a_value(kFnvOffsetBasis, m.face);
  h = fnv1a_value(h, m.element);
  h = fnv1a_value(h, m.num_nodes);
  for (idx_t id : m.nodes) h = fnv1a_value(h, id);
  for (const Vec3& c : m.coords) h = fnv1a_vec3(h, c);
  return h;
}

inline void fault_bitflip(FaceShipMsg& m, std::uint64_t r) {
  switch (r % 4) {
    case 0: flip_bit_in(m.face, r / 4); break;
    case 1: flip_bit_in(m.element, r / 4); break;
    case 2: flip_bit_in(m.nodes[(r / 4) % 4], r / 16); break;
    default: flip_bit_in(m.coords[(r / 4) % 4].x, r / 16); break;
  }
}

inline bool fault_truncate_payload(FaceShipMsg&, std::uint64_t) {
  return false;
}

/// ML+RCB coupling: one contact point shipped between the FE and the RCB
/// decompositions (forward before the search, results back after).
struct ContactPointMsg {
  idx_t node = kInvalidIndex;
  Vec3 position{};
};

inline wgt_t wire_bytes(const ContactPointMsg&) {
  return static_cast<wgt_t>(sizeof(idx_t) + 3 * sizeof(real_t));
}

inline std::uint64_t wire_hash(const ContactPointMsg& m) {
  std::uint64_t h = fnv1a_value(kFnvOffsetBasis, m.node);
  return fnv1a_vec3(h, m.position);
}

inline void fault_bitflip(ContactPointMsg& m, std::uint64_t r) {
  if (r % 4 == 0) {
    flip_bit_in(m.node, r / 4);
  } else {
    flip_bit_in(m.position[static_cast<int>(r % 3)], r / 4);
  }
}

inline bool fault_truncate_payload(ContactPointMsg&, std::uint64_t) {
  return false;
}

/// ML+RCB subdomain-box allgather: one rank's RCB bounding box.
struct SubdomainBoxMsg {
  idx_t rank = kInvalidIndex;
  BBox box{};
};

inline wgt_t wire_bytes(const SubdomainBoxMsg&) {
  return static_cast<wgt_t>(sizeof(idx_t) + 6 * sizeof(real_t));
}

inline std::uint64_t wire_hash(const SubdomainBoxMsg& m) {
  std::uint64_t h = fnv1a_value(kFnvOffsetBasis, m.rank);
  h = fnv1a_vec3(h, m.box.lo);
  return fnv1a_vec3(h, m.box.hi);
}

inline void fault_bitflip(SubdomainBoxMsg& m, std::uint64_t r) {
  if (r % 7 == 0) {
    flip_bit_in(m.rank, r / 7);
  } else {
    Vec3& v = (r % 2 == 0) ? m.box.lo : m.box.hi;
    flip_bit_in(v[static_cast<int>(r % 3)], r / 7);
  }
}

inline bool fault_truncate_payload(SubdomainBoxMsg&, std::uint64_t) {
  return false;
}

/// Repartition label broadcast: the changed entries of the new labeling as
/// one delta-varint blob (see runtime/label_codec.hpp). Rank 0 broadcasts a
/// single batch; every rank decodes it into its pending label list and
/// splices the updates into its ownership replica at the commit superstep.
/// Batching replaced the old 16-byte-per-node LabelUpdateMsg stream: one
/// message per receiver, ~2-3 bytes per changed node on the wire.
struct LabelBatchMsg {
  std::string blob;
};

inline wgt_t wire_bytes(const LabelBatchMsg& m) {
  return static_cast<wgt_t>(m.blob.size());
}

inline std::uint64_t wire_hash(const LabelBatchMsg& m) {
  std::uint64_t h = fnv1a_value(kFnvOffsetBasis, m.blob.size());
  return fnv1a_bytes(h, m.blob.data(), m.blob.size());
}

inline void fault_bitflip(LabelBatchMsg& m, std::uint64_t r) {
  if (m.blob.empty()) return;
  const std::size_t i = static_cast<std::size_t>(r % m.blob.size());
  m.blob[i] = static_cast<char>(m.blob[i] ^
                                static_cast<char>(1 << ((r / 7) % 8)));
}

inline bool fault_truncate_payload(LabelBatchMsg& m, std::uint64_t r) {
  if (m.blob.empty()) return false;
  m.blob.resize(static_cast<std::size_t>(r % m.blob.size()));
  return true;
}

/// Node-state migration: the authoritative per-node state a rank ships to
/// the node's new owner after a repartition (position plus the accumulated
/// contact-hit counter — the receiver must splice both, or the ownership
/// oracle diverges).
struct NodeMigrateMsg {
  idx_t node = kInvalidIndex;
  Vec3 position{};
  wgt_t contact_hits = 0;
};

inline wgt_t wire_bytes(const NodeMigrateMsg&) {
  return static_cast<wgt_t>(sizeof(idx_t) + 3 * sizeof(real_t) +
                            sizeof(wgt_t));
}

inline std::uint64_t wire_hash(const NodeMigrateMsg& m) {
  std::uint64_t h = fnv1a_value(kFnvOffsetBasis, m.node);
  h = fnv1a_vec3(h, m.position);
  return fnv1a_value(h, m.contact_hits);
}

inline void fault_bitflip(NodeMigrateMsg& m, std::uint64_t r) {
  switch (r % 5) {
    case 0: flip_bit_in(m.node, r / 5); break;
    case 1: flip_bit_in(m.position.x, r / 5); break;
    case 2: flip_bit_in(m.position.y, r / 5); break;
    case 3: flip_bit_in(m.position.z, r / 5); break;
    default: flip_bit_in(m.contact_hits, r / 5); break;
  }
}

inline bool fault_truncate_payload(NodeMigrateMsg&, std::uint64_t) {
  return false;
}

/// Element-record migration: one element's connectivity record re-homed to
/// the new majority owner of its nodes. The receiver validates the record
/// against its immutable topology before splicing.
struct ElementMigrateMsg {
  idx_t element = kInvalidIndex;
  std::int32_t num_nodes = 0;
  std::array<idx_t, 8> nodes{kInvalidIndex, kInvalidIndex, kInvalidIndex,
                             kInvalidIndex, kInvalidIndex, kInvalidIndex,
                             kInvalidIndex, kInvalidIndex};
};

inline wgt_t wire_bytes(const ElementMigrateMsg& m) {
  return static_cast<wgt_t>(sizeof(idx_t) + sizeof(std::int32_t)) +
         static_cast<wgt_t>(m.num_nodes) * static_cast<wgt_t>(sizeof(idx_t));
}

inline std::uint64_t wire_hash(const ElementMigrateMsg& m) {
  std::uint64_t h = fnv1a_value(kFnvOffsetBasis, m.element);
  h = fnv1a_value(h, m.num_nodes);
  for (idx_t id : m.nodes) h = fnv1a_value(h, id);
  return h;
}

inline void fault_bitflip(ElementMigrateMsg& m, std::uint64_t r) {
  switch (r % 3) {
    case 0: flip_bit_in(m.element, r / 3); break;
    case 1: flip_bit_in(m.num_nodes, r / 3); break;
    default: flip_bit_in(m.nodes[(r / 3) % 8], r / 24); break;
  }
}

inline bool fault_truncate_payload(ElementMigrateMsg&, std::uint64_t) {
  return false;
}

// ---------------------------------------------------------------------------
// Errors and retry policy
// ---------------------------------------------------------------------------

/// Thrown by Exchange::deliver() when a superstep's delivery still has
/// corrupt cells after the full retry budget. The pipelines catch it and
/// complete the step through the centralized reference path.
class TransportError : public std::runtime_error {
 public:
  TransportError(const std::string& msg, std::uint64_t superstep,
                 idx_t attempts, idx_t corrupt_cells)
      : std::runtime_error(msg),
        superstep_(superstep),
        attempts_(attempts),
        corrupt_cells_(corrupt_cells) {}

  std::uint64_t superstep() const { return superstep_; }
  idx_t attempts() const { return attempts_; }
  idx_t corrupt_cells() const { return corrupt_cells_; }

 private:
  std::uint64_t superstep_;
  idx_t attempts_;
  idx_t corrupt_cells_;
};

struct RetryPolicy {
  /// Total delivery attempts per superstep (first try + retries).
  idx_t max_attempts = 4;
  /// Exponential backoff base applied between attempts; always recorded in
  /// PipelineHealth::backoff_ms, actually slept only when sleep_on_backoff
  /// (the in-process transport has no congestion to wait out, so tests and
  /// benches keep it off).
  double backoff_base_ms = 0.5;
  bool sleep_on_backoff = false;

  /// Doublings after which the backoff stops growing. 2^62 stays exactly
  /// representable as a double and inside std::uint64_t, so the shift is
  /// well-defined for every retry count instead of overflowing (shifting a
  /// 64-bit one by >= 64 is UB, and callers like the checkpoint store retry
  /// far past 64 attempts).
  static constexpr idx_t kBackoffSaturation = 62;

  /// Backoff before retry `retry` (0-based): base * 2^min(retry,
  /// saturation). Total so far grows linearly once saturated.
  double backoff_for(idx_t retry) const {
    const idx_t capped = retry < kBackoffSaturation ? retry : kBackoffSaturation;
    return backoff_base_ms *
           static_cast<double>(std::uint64_t{1} << capped);
  }
};

// ---------------------------------------------------------------------------
// TypedChannel
// ---------------------------------------------------------------------------

/// One contiguous run of a rank's inbox that arrived from a single source.
struct SourceRange {
  idx_t from = kInvalidIndex;
  idx_t begin = 0;  // [begin, end) into inbox(rank)
  idx_t end = 0;
};

/// A k-rank point-to-point channel for messages of type T.
///
/// send() may be called concurrently by different source ranks: the outbox
/// cells are indexed (from, to), and rank r only ever writes row r. Each
/// cell carries a frame (message count + running FNV-1a checksum) built at
/// send time. Delivery is two-phase and runs on the step driver between
/// supersteps: attempt_deliver() stages each pending cell onto the "wire"
/// (optionally corrupted by a FaultInjector) and validates it against the
/// frame — the outbox is retained until its cell validates, so corrupt
/// cells can be re-staged; commit() then assembles the inboxes from the
/// validated cells in ascending source order and charges the transport.
template <typename T>
class TypedChannel {
 public:
  TypedChannel() = default;

  void resize(idx_t k) {
    require(k >= 1, "TypedChannel: k must be >= 1");
    k_ = k;
    cells_.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(k),
                  Cell{});
    inboxes_.assign(static_cast<std::size_t>(k), {});
    sources_.assign(static_cast<std::size_t>(k), {});
  }

  idx_t num_ranks() const { return k_; }

  /// Posts `item` from rank `from` to rank `to`. Self-sends are local data
  /// and are dropped, matching VirtualCluster::send.
  void send(idx_t from, idx_t to, T item) {
    require(from >= 0 && from < k_ && to >= 0 && to < k_,
            "TypedChannel::send: rank out of range");
    if (from == to) return;
    const std::uint64_t item_hash = wire_hash(item);
    post(from, to, std::move(item), item_hash);
  }

  /// Posts `item` from `from` to every other rank. The frame checksum of
  /// the (identical) copies is computed once, not per destination — for a
  /// bulk payload like the descriptor tree the k-1 redundant hashes were a
  /// measurable per-step cost. Delivery validation still hashes each cell's
  /// wire copy independently.
  void broadcast(idx_t from, const T& item) {
    require(from >= 0 && from < k_, "TypedChannel::broadcast: rank out of range");
    const std::uint64_t item_hash = wire_hash(item);
    for (idx_t to = 0; to < k_; ++to) {
      if (to != from) post(from, to, item, item_hash);
    }
  }

  /// One delivery attempt: stages every pending cell onto the wire (through
  /// `injector` when non-null — the wire copy may be corrupted, the outbox
  /// stays pristine), recomputes count + checksum, and marks cells that
  /// validate. Returns the number of cells that failed validation this
  /// attempt; detection counters accumulate into `health`.
  idx_t attempt_deliver(FaultInjector* injector, ChannelId id,
                        std::uint64_t superstep, idx_t attempt,
                        PipelineHealth& health) {
    idx_t corrupt = 0;
    for (idx_t from = 0; from < k_; ++from) {
      for (idx_t to = 0; to < k_; ++to) {
        if (!attempt_deliver_cell(injector, id, superstep, attempt, from, to,
                                  health)) {
          ++corrupt;
        }
      }
    }
    return corrupt;
  }

  /// One validation attempt of the single (from, to) cell — the identical
  /// staging/validation body attempt_deliver() runs, with the identical
  /// (channel, superstep, attempt, from, to) injector decision key, so the
  /// async executor's per-cell retry loops consume the exact fault schedule
  /// the barrier loop would. Returns true when the cell is staged OK (empty
  /// cells validate trivially). Safe to call concurrently for distinct
  /// cells; `health` is whatever scratch the caller owns.
  bool attempt_deliver_cell(FaultInjector* injector, ChannelId id,
                            std::uint64_t superstep, idx_t attempt, idx_t from,
                            idx_t to, PipelineHealth& health) {
    Cell& cell = cells_[static_cast<std::size_t>(from) *
                            static_cast<std::size_t>(k_) +
                        static_cast<std::size_t>(to)];
    if (cell.staged_ok) return true;
    if (cell.count == 0) {
      cell.staged_ok = true;
      return true;
    }
    std::vector<T> wire;
    if (injector != nullptr) {
      wire = cell.items;  // outbox retained until the cell validates
      injector->maybe_corrupt(id, superstep, attempt, from, to, wire);
    } else {
      // Fast path: nothing between us and the inbox can corrupt the
      // data except genuine in-process memory corruption, which the
      // checksum below still detects (and which no retry could fix).
      wire = std::move(cell.items);
      cell.items.clear();
    }
    std::uint64_t h = kFnvOffsetBasis;
    for (const T& item : wire) h = (h ^ wire_hash(item)) * kFnvPrime;
    const bool count_ok = to_idx(wire.size()) == cell.count;
    const bool hash_ok = h == cell.hash;
    if (count_ok && hash_ok) {
      cell.staged = std::move(wire);
      cell.staged_ok = true;
      return true;
    }
    ChannelHealth& ch = health.channel(id);
    ++ch.corrupt_cells;
    ++health.corrupt_cells;
    if (!count_ok) {
      ++ch.count_mismatches;
      ++health.count_mismatches;
    } else {
      ++ch.checksum_failures;
      ++health.checksum_failures;
    }
    ch.redelivered_bytes += cell.bytes;
    health.redelivered_bytes += cell.bytes;
    return false;
  }

  /// Barrier second half, called once every cell validated: replaces the
  /// inboxes with the staged cells in ascending source order, charges
  /// `transport` (when non-null) with `units_per_item` per message, resets
  /// the cells, and returns the payload bytes moved.
  wgt_t commit(VirtualCluster* transport, wgt_t units_per_item = 1) {
    wgt_t bytes = 0;
    for (idx_t to = 0; to < k_; ++to) {
      bytes += commit_dst(to, transport, units_per_item);
    }
    return bytes;
  }

  /// Per-destination commit: assembles rank `to`'s inbox from its validated
  /// staged cells in ascending source order, charges `transport`, resets
  /// the column's cells, and returns the payload bytes moved. The caller
  /// guarantees every non-empty cell of the column is staged_ok. Concurrent
  /// calls for different `to` are safe: they touch disjoint cells, inboxes,
  /// source lists, and transport matrix entries (VirtualCluster::send
  /// writes only matrix[from * k + to]).
  wgt_t commit_dst(idx_t to, VirtualCluster* transport,
                   wgt_t units_per_item = 1) {
    wgt_t bytes = 0;
    auto& inbox = inboxes_[static_cast<std::size_t>(to)];
    auto& sources = sources_[static_cast<std::size_t>(to)];
    inbox.clear();
    sources.clear();
    for (idx_t from = 0; from < k_; ++from) {
      Cell& cell = cells_[static_cast<std::size_t>(from) *
                              static_cast<std::size_t>(k_) +
                          static_cast<std::size_t>(to)];
      if (cell.count > 0) {
        const idx_t begin = to_idx(inbox.size());
        inbox.insert(inbox.end(),
                     std::make_move_iterator(cell.staged.begin()),
                     std::make_move_iterator(cell.staged.end()));
        sources.push_back({from, begin, to_idx(inbox.size())});
        if (transport != nullptr) {
          transport->send(from, to, cell.count * units_per_item);
        }
        bytes += cell.bytes;
      }
      cell.reset();
    }
    return bytes;
  }

  /// Drops all pending outboxes, staged data, and inboxes (degraded-mode
  /// cleanup after an exhausted delivery).
  void abort() {
    for (Cell& cell : cells_) cell.reset();
    for (auto& inbox : inboxes_) inbox.clear();
    for (auto& sources : sources_) sources.clear();
  }

  /// Messages delivered to `rank` last superstep, ascending source order.
  const std::vector<T>& inbox(idx_t rank) const {
    return inboxes_[static_cast<std::size_t>(rank)];
  }

  /// Per-source runs of inbox(rank) — lets a receiver answer each source.
  std::span<const SourceRange> inbox_sources(idx_t rank) const {
    return sources_[static_cast<std::size_t>(rank)];
  }

 private:
  /// Shared body of send()/broadcast(): folds a precomputed item hash into
  /// the cell's send-side frame and appends the item to the outbox.
  void post(idx_t from, idx_t to, T item, std::uint64_t item_hash) {
    Cell& cell = cells_[static_cast<std::size_t>(from) *
                            static_cast<std::size_t>(k_) +
                        static_cast<std::size_t>(to)];
    cell.bytes += wire_bytes(item);
    cell.hash = (cell.hash ^ item_hash) * kFnvPrime;
    ++cell.count;
    cell.items.push_back(std::move(item));
  }

  struct Cell {
    std::vector<T> items;   // outbox, retained until validated
    std::vector<T> staged;  // validated wire copy awaiting commit
    wgt_t bytes = 0;
    std::uint64_t hash = kFnvOffsetBasis;  // send-side frame checksum
    idx_t count = 0;                       // send-side frame message count
    bool staged_ok = false;

    void reset() {
      items.clear();
      staged.clear();
      bytes = 0;
      hash = kFnvOffsetBasis;
      count = 0;
      staged_ok = false;
    }
  };

  idx_t k_ = 0;
  std::vector<Cell> cells_;  // k*k, row = source rank
  std::vector<std::vector<T>> inboxes_;
  std::vector<std::vector<SourceRange>> sources_;
};

// ---------------------------------------------------------------------------
// Exchange
// ---------------------------------------------------------------------------

/// The channel bundle one pipeline step runs over, with the VirtualCluster
/// transports underneath. Three traffic groups mirror the report fields of
/// the centralized pipelines:
///   * halo            -> fe cluster        (units == fe_halo_traffic)
///   * faces           -> search cluster    (units == NRemote shipping)
///   * coupling fwd+ret -> one shared coupling cluster, finished once, so a
///     rank pair active in both directions counts like the centralized
///     m2m_traffic matrix (messages included);
///   * migrate_nodes + migrate_elements -> one shared migration cluster
///     (units == migrated records, the repartition redistribution volume);
/// descriptor, box, and label broadcasts move bytes but are charged to no
/// cluster — the centralized paths report them as byte counts, not
/// StepTraffic.
class Exchange {
 public:
  explicit Exchange(idx_t k);

  idx_t num_ranks() const { return k_; }

  TypedChannel<DescriptorTreeMsg>& descriptors() { return descriptors_; }
  TypedChannel<HaloNodeMsg>& halo() { return halo_; }
  TypedChannel<FaceShipMsg>& faces() { return faces_; }
  TypedChannel<ContactPointMsg>& coupling_forward() { return coupling_forward_; }
  TypedChannel<ContactPointMsg>& coupling_return() { return coupling_return_; }
  TypedChannel<SubdomainBoxMsg>& boxes() { return boxes_; }
  TypedChannel<LabelBatchMsg>& labels() { return labels_; }
  TypedChannel<NodeMigrateMsg>& migrate_nodes() { return migrate_nodes_; }
  TypedChannel<ElementMigrateMsg>& migrate_elements() {
    return migrate_elements_;
  }

  /// Arms (or disarms, with nullptr) fault injection on every channel.
  /// Non-owning; the injector must outlive the exchange's use of it.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const { return retry_; }

  /// The superstep barrier: validates and delivers the channels selected by
  /// `mask` (outboxes -> inboxes), charging the phase clusters and
  /// accumulating payload bytes. Channels outside the mask are untouched —
  /// pending outboxes stay pending, last-committed inboxes stay readable —
  /// which is what lets a phase barrier commit only the channels the next
  /// phase reads. Corrupt cells are re-delivered from the retained outboxes
  /// up to RetryPolicy::max_attempts; throws TransportError when the budget
  /// is exhausted (after clearing the channels so the caller can fall back
  /// cleanly). Every call counts as one delivery barrier regardless of the
  /// mask, so health accounting is mask-agnostic.
  void deliver(ChannelMask mask = kAllChannels);

  /// Clears every channel, the phase clusters, and the byte accumulators —
  /// but not the health counters. Used by the degraded path so the next
  /// step starts from a clean transport.
  void abort_step();

  // -------------------------------------------------------------------------
  // Channel-granular async delivery (AsyncExecutor). The barrier path above
  // and these entry points share the per-cell validation and per-destination
  // commit bodies, so fault schedules, detection counters, traffic charges,
  // and payload-byte accounting stay bit-identical between the two
  // schedules. A "group" is one ChannelMask a consuming phase reads; the
  // executor validates and commits each destination's cells independently,
  // then folds the group's accounting here as if one deliver(mask) barrier
  // had run.
  // -------------------------------------------------------------------------

  /// Superstep id the next delivery — barrier or async group — will key its
  /// fault decisions on. Async groups of one run are numbered consecutively
  /// from this value in group order.
  std::uint64_t next_superstep() const { return superstep_; }

  /// Rewinds (or advances) the superstep cursor. Checkpoint recovery
  /// restores the cursor recorded at checkpoint time so a replayed step
  /// keys the exact fault schedule of the original run — the determinism
  /// that makes replay bit-identical under an armed injector.
  void set_next_superstep(std::uint64_t superstep) { superstep_ = superstep; }

  /// One validation attempt of the (from, to) cell of channel `id` at
  /// (superstep, attempt) — the barrier loop's exact injector decision key.
  /// Detection counters accumulate into `health`, a caller-private scratch
  /// folded later by async_fold_group. Returns true when the cell staged OK.
  /// Thread-safe for distinct cells.
  bool async_validate_cell(ChannelId id, std::uint64_t superstep,
                           idx_t attempt, idx_t from, idx_t to,
                           PipelineHealth& health);

  /// Commits every staged cell addressed to `to` on channel `id` (ascending
  /// source order), charging the channel's phase cluster, and adds the
  /// payload bytes to `bytes` (caller-private scratch; async_fold_group
  /// moves them into the per-channel accumulators for counted groups only).
  /// Thread-safe for distinct `to`.
  void async_commit_dst(ChannelId id, idx_t to, wgt_t& bytes);

  /// Accounting of one completed (or exhausted) async group, folded into
  /// the exchange exactly as the deliver(mask) barrier would have recorded
  /// it: one delivery; `passes` validation passes (the barrier runs
  /// min(1 + max per-cell failures, max_attempts) passes over the group);
  /// passes-1 retries with exponential-backoff accounting; the
  /// per-destination detection scratches merged in ascending rank order;
  /// and the per-destination payload bytes added to the per-channel
  /// accumulators. Advances the superstep counter by one. When `exhausted`,
  /// also counts the exhausted delivery — the caller then abort_step()s and
  /// throws exhausted_error(), matching the barrier's failure sequence.
  struct AsyncGroupAccounting {
    std::span<const PipelineHealth> dst_health;
    std::span<const std::array<wgt_t, kNumChannels>> dst_bytes;
    idx_t passes = 1;
    bool exhausted = false;
  };
  void async_fold_group(const AsyncGroupAccounting& acc);

  /// The TransportError deliver() throws on retry-budget exhaustion, with
  /// the identical message text — shared so the async path's degraded-mode
  /// handling is indistinguishable from the barrier's.
  static TransportError exhausted_error(std::uint64_t superstep,
                                        idx_t attempts, idx_t corrupt_cells);

  /// Health counters since the last take (reads reset them).
  PipelineHealth take_health() { return std::exchange(health_, {}); }
  const PipelineHealth& health() const { return health_; }

  /// Per-group traffic since the last take (finishing resets the cluster).
  StepTraffic take_fe_traffic() { return fe_cluster_.finish(); }
  StepTraffic take_search_traffic() { return search_cluster_.finish(); }
  StepTraffic take_coupling_traffic() { return coupling_cluster_.finish(); }
  StepTraffic take_migration_traffic() { return migration_cluster_.finish(); }

  /// Payload bytes accumulated since the last take (reads reset to 0).
  wgt_t take_descriptor_bytes() { return std::exchange(descriptor_bytes_, 0); }
  wgt_t take_halo_bytes() { return std::exchange(halo_bytes_, 0); }
  wgt_t take_face_bytes() { return std::exchange(face_bytes_, 0); }
  wgt_t take_coupling_bytes() { return std::exchange(coupling_bytes_, 0); }
  wgt_t take_box_bytes() { return std::exchange(box_bytes_, 0); }
  wgt_t take_label_bytes() { return std::exchange(label_bytes_, 0); }
  wgt_t take_migration_bytes() { return std::exchange(migration_bytes_, 0); }

 private:
  idx_t k_;
  TypedChannel<DescriptorTreeMsg> descriptors_;
  TypedChannel<HaloNodeMsg> halo_;
  TypedChannel<FaceShipMsg> faces_;
  TypedChannel<ContactPointMsg> coupling_forward_;
  TypedChannel<ContactPointMsg> coupling_return_;
  TypedChannel<SubdomainBoxMsg> boxes_;
  TypedChannel<LabelBatchMsg> labels_;
  TypedChannel<NodeMigrateMsg> migrate_nodes_;
  TypedChannel<ElementMigrateMsg> migrate_elements_;
  VirtualCluster fe_cluster_;
  VirtualCluster search_cluster_;
  VirtualCluster coupling_cluster_;
  VirtualCluster migration_cluster_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_{};
  PipelineHealth health_{};
  std::uint64_t superstep_ = 0;  // deliver() barriers since construction
  wgt_t descriptor_bytes_ = 0;
  wgt_t halo_bytes_ = 0;
  wgt_t face_bytes_ = 0;
  wgt_t coupling_bytes_ = 0;
  wgt_t box_bytes_ = 0;
  wgt_t label_bytes_ = 0;
  wgt_t migration_bytes_ = 0;
};

}  // namespace cpart
