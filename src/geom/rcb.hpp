// Recursive coordinate bisection (RCB) with incremental update.
//
// RCB is the geometric partitioner the ML+RCB baseline uses to decompose the
// contact points (Plimpton et al.). Each recursion splits the current point
// set with an axis-parallel cut at the weighted median of the longest axis,
// assigning ceil(k/2) of the k parts to the low side. The sequence of cuts
// forms a binary tree.
//
// Incremental update (paper Section 3): as contact points move between
// time steps, the *structure* of the tree (axes, part counts) is kept and
// only the cut coordinates are recomputed from the new positions. Because
// the structure is stable, most points keep their labels, which is exactly
// the "modify the previous RCB partitioning" behaviour whose residual
// movement the paper measures as UpdComm.
#pragma once

#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "util/common.hpp"

namespace cpart {

class RcbTree {
 public:
  /// Builds a k-way RCB decomposition of `points` (optionally weighted;
  /// empty weights mean unit). `dim` selects 2D or 3D cuts.
  static RcbTree build(std::span<const Vec3> points,
                       std::span<const wgt_t> weights, idx_t k, int dim = 3);

  /// Re-balances the existing cut structure against new positions of the
  /// *same* logical point set (sizes may differ — points may appear or
  /// disappear as the surface erodes). Labels are recomputed; compare with
  /// the previous labels() to measure redistribution (UpdComm).
  void update(std::span<const Vec3> points, std::span<const wgt_t> weights);

  idx_t num_parts() const { return k_; }
  int dim() const { return dim_; }

  /// Label of each input point from the last build/update.
  const std::vector<idx_t>& labels() const { return labels_; }

  /// Locates an arbitrary point by descending the cut planes.
  idx_t locate(Vec3 p) const;

  /// Total number of tree nodes (interior + leaves).
  idx_t num_nodes() const { return to_idx(nodes_.size()); }

 private:
  struct Node {
    int axis = -1;        // -1 for leaves
    real_t cut = 0;       // cut coordinate (points with coord < cut go left)
    idx_t left = kInvalidIndex;
    idx_t right = kInvalidIndex;
    idx_t k_left = 0;     // parts assigned to the low side
    idx_t k_total = 1;    // parts covered by this subtree
    idx_t part = kInvalidIndex;  // leaf: final part id
  };

  idx_t build_node(std::span<const Vec3> points, std::span<const wgt_t> weights,
                   std::span<idx_t> ids, idx_t k, idx_t first_part);
  void update_node(idx_t node_id, std::span<const Vec3> points,
                   std::span<const wgt_t> weights, std::span<idx_t> ids);

  /// Sorts `ids` by coordinate along `axis` and returns the split position
  /// s such that the weight of ids[0..s) best matches `target_fraction` of
  /// the total, with s in [1, |ids|-1] whenever |ids| >= 2. Sets *cut to a
  /// coordinate separating the two sides.
  static idx_t weighted_split(std::span<const Vec3> points,
                              std::span<const wgt_t> weights,
                              std::span<idx_t> ids, int axis,
                              double target_fraction, real_t* cut);

  std::vector<Node> nodes_;
  idx_t root_ = kInvalidIndex;
  idx_t k_ = 0;
  int dim_ = 3;
  std::vector<idx_t> labels_;
};

}  // namespace cpart
