#include "geom/kdtree.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace cpart {

KdTree::KdTree(std::span<const Vec3> points, int dim)
    : points_(points.begin(), points.end()), dim_(dim) {
  require(dim == 2 || dim == 3, "KdTree: dim must be 2 or 3");
  ids_.resize(points_.size());
  std::iota(ids_.begin(), ids_.end(), idx_t{0});
  if (!ids_.empty()) {
    nodes_.reserve(2 * points_.size() / kLeafSize + 4);
    root_ = build(0, to_idx(ids_.size()));
  }
}

idx_t KdTree::build(idx_t begin, idx_t end) {
  const idx_t id = to_idx(nodes_.size());
  nodes_.emplace_back();
  BBox bounds;
  for (idx_t i = begin; i < end; ++i) {
    bounds.expand(points_[static_cast<std::size_t>(
        ids_[static_cast<std::size_t>(i)])]);
  }
  nodes_[static_cast<std::size_t>(id)].bounds = bounds;
  nodes_[static_cast<std::size_t>(id)].begin = begin;
  nodes_[static_cast<std::size_t>(id)].end = end;
  const int axis = bounds.longest_axis(dim_);
  if (end - begin <= kLeafSize || bounds.extent(axis) <= 0) {
    return id;  // leaf
  }
  const idx_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid, ids_.begin() + end,
                   [&](idx_t a, idx_t b) {
                     return points_[static_cast<std::size_t>(a)][axis] <
                            points_[static_cast<std::size_t>(b)][axis];
                   });
  const real_t cut =
      points_[static_cast<std::size_t>(ids_[static_cast<std::size_t>(mid)])]
             [axis];
  const idx_t left = build(begin, mid);
  const idx_t right = build(mid, end);
  Node& node = nodes_[static_cast<std::size_t>(id)];
  node.axis = axis;
  node.cut = cut;
  node.left = left;
  node.right = right;
  return id;
}

void KdTree::query_box(const BBox& box, std::vector<idx_t>& out) const {
  if (empty() || box.empty()) return;
  std::vector<idx_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (!box.intersects(node.bounds)) continue;
    if (node.axis < 0) {
      for (idx_t i = node.begin; i < node.end; ++i) {
        const idx_t p = ids_[static_cast<std::size_t>(i)];
        if (box.contains(points_[static_cast<std::size_t>(p)])) {
          out.push_back(p);
        }
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
}

void KdTree::nearest_impl(idx_t node_id, Vec3 q, idx_t* best,
                          real_t* best_d2) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  // Prune by box distance.
  real_t box_d2 = 0;
  for (int a = 0; a < dim_; ++a) {
    const real_t lo = node.bounds.lo[a], hi = node.bounds.hi[a];
    const real_t d = q[a] < lo ? lo - q[a] : (q[a] > hi ? q[a] - hi : 0);
    box_d2 += d * d;
  }
  if (box_d2 > *best_d2) return;
  if (node.axis < 0) {
    for (idx_t i = node.begin; i < node.end; ++i) {
      const idx_t p = ids_[static_cast<std::size_t>(i)];
      const real_t d2 = distance2(q, points_[static_cast<std::size_t>(p)]);
      if (d2 < *best_d2 || (d2 == *best_d2 && p < *best)) {
        *best_d2 = d2;
        *best = p;
      }
    }
    return;
  }
  // Descend the nearer side first for tighter pruning.
  const bool left_first = q[node.axis] < node.cut;
  nearest_impl(left_first ? node.left : node.right, q, best, best_d2);
  nearest_impl(left_first ? node.right : node.left, q, best, best_d2);
}

idx_t KdTree::nearest(Vec3 q) const {
  if (empty()) return kInvalidIndex;
  idx_t best = kInvalidIndex;
  real_t best_d2 = std::numeric_limits<real_t>::max();
  nearest_impl(root_, q, &best, &best_d2);
  return best;
}

}  // namespace cpart
