#include "geom/bbox.hpp"

#include <cmath>

namespace cpart {

real_t norm(Vec3 a) { return std::sqrt(dot(a, a)); }

real_t dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

int BBox::longest_axis(int dim) const {
  assert(dim >= 1 && dim <= 3);
  int best = 0;
  for (int a = 1; a < dim; ++a) {
    if (extent(a) > extent(best)) best = a;
  }
  return best;
}

BBox bbox_of(std::span<const Vec3> points) {
  BBox b;
  for (const Vec3& p : points) b.expand(p);
  return b;
}

BBox bbox_of(std::span<const Vec3> points, std::span<const idx_t> subset) {
  BBox b;
  for (idx_t i : subset) b.expand(points[static_cast<std::size_t>(i)]);
  return b;
}

}  // namespace cpart
