// Geometric primitives: 3-component points and axis-aligned bounding boxes.
//
// The library treats 2D problems as 3D with z == 0 and algorithms take an
// explicit `dim` (2 or 3) so split-axis searches only scan meaningful axes.
#pragma once

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace cpart {

struct Vec3 {
  real_t x = 0, y = 0, z = 0;

  real_t operator[](int axis) const {
    assert(axis >= 0 && axis < 3);
    return axis == 0 ? x : (axis == 1 ? y : z);
  }
  real_t& operator[](int axis) {
    assert(axis >= 0 && axis < 3);
    return axis == 0 ? x : (axis == 1 ? y : z);
  }

  friend Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3 operator*(real_t s, Vec3 a) { return {s * a.x, s * a.y, s * a.z}; }
  friend bool operator==(Vec3 a, Vec3 b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

real_t norm(Vec3 a);
real_t dot(Vec3 a, Vec3 b);

/// Axis-aligned bounding box; empty() until the first expand().
struct BBox {
  Vec3 lo{+1e300, +1e300, +1e300};
  Vec3 hi{-1e300, -1e300, -1e300};

  bool empty() const { return lo.x > hi.x; }

  void expand(Vec3 p) {
    for (int a = 0; a < 3; ++a) {
      lo[a] = std::min(lo[a], p[a]);
      hi[a] = std::max(hi[a], p[a]);
    }
  }
  void expand(const BBox& b) {
    if (b.empty()) return;
    expand(b.lo);
    expand(b.hi);
  }

  /// Enlarges by `margin` on every side (used for contact tolerances).
  void inflate(real_t margin) {
    for (int a = 0; a < 3; ++a) {
      lo[a] -= margin;
      hi[a] += margin;
    }
  }

  bool contains(Vec3 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  /// Closed-interval overlap test (touching boxes intersect).
  bool intersects(const BBox& b) const {
    if (empty() || b.empty()) return false;
    return lo.x <= b.hi.x && b.lo.x <= hi.x && lo.y <= b.hi.y &&
           b.lo.y <= hi.y && lo.z <= b.hi.z && b.lo.z <= hi.z;
  }

  Vec3 center() const { return 0.5 * (lo + hi); }
  real_t extent(int axis) const { return hi[axis] - lo[axis]; }

  /// Axis with the largest extent among the first `dim` axes.
  int longest_axis(int dim = 3) const;
};

/// Bounding box of a point set (optionally restricted to an index subset).
BBox bbox_of(std::span<const Vec3> points);
BBox bbox_of(std::span<const Vec3> points, std::span<const idx_t> subset);

}  // namespace cpart
