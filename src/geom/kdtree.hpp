// Static kd-tree over points: box (range) queries and nearest-neighbour
// lookup. Used by the local contact search to find the surface nodes near a
// surface element, and by the a-priori pair prediction.
#pragma once

#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "util/common.hpp"

namespace cpart {

class KdTree {
 public:
  KdTree() = default;

  /// Builds over a snapshot of `points` (copied indices, referenced
  /// coordinates must outlive the tree or be re-supplied to queries — the
  /// tree stores its own copy of the coordinates for safety).
  explicit KdTree(std::span<const Vec3> points, int dim = 3);

  idx_t size() const { return to_idx(points_.size()); }
  bool empty() const { return points_.empty(); }

  /// Appends the indices of every point inside `box` (closed intervals).
  void query_box(const BBox& box, std::vector<idx_t>& out) const;

  /// Index of the point nearest to `q` (ties broken by lower index);
  /// kInvalidIndex when empty.
  idx_t nearest(Vec3 q) const;

  /// Squared distance helper for callers that also want the metric.
  static real_t distance2(Vec3 a, Vec3 b) {
    const Vec3 d = a - b;
    return dot(d, d);
  }

 private:
  struct Node {
    int axis = -1;  // -1 for leaves
    real_t cut = 0;
    idx_t left = kInvalidIndex;
    idx_t right = kInvalidIndex;
    idx_t begin = 0, end = 0;  // leaf: range in ids_
    BBox bounds;
  };

  idx_t build(idx_t begin, idx_t end);
  void nearest_impl(idx_t node, Vec3 q, idx_t* best, real_t* best_d2) const;

  std::vector<Vec3> points_;
  std::vector<idx_t> ids_;  // permuted point indices
  std::vector<Node> nodes_;
  idx_t root_ = kInvalidIndex;
  int dim_ = 3;
  static constexpr idx_t kLeafSize = 12;
};

}  // namespace cpart
