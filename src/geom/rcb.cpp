#include "geom/rcb.hpp"

#include <algorithm>
#include <numeric>

namespace cpart {

namespace {

wgt_t weight_of(std::span<const wgt_t> weights, idx_t i) {
  return weights.empty() ? 1 : weights[static_cast<std::size_t>(i)];
}

}  // namespace

idx_t RcbTree::weighted_split(std::span<const Vec3> points,
                              std::span<const wgt_t> weights,
                              std::span<idx_t> ids, int axis,
                              double target_fraction, real_t* cut) {
  assert(ids.size() >= 2);
  std::sort(ids.begin(), ids.end(), [&](idx_t a, idx_t b) {
    const real_t ca = points[static_cast<std::size_t>(a)][axis];
    const real_t cb = points[static_cast<std::size_t>(b)][axis];
    if (ca != cb) return ca < cb;
    return a < b;  // deterministic tie-break
  });
  wgt_t total = 0;
  for (idx_t i : ids) total += weight_of(weights, i);
  const double target = target_fraction * static_cast<double>(total);
  // Walk the sorted order accumulating weight; split where the prefix weight
  // first reaches the target (clamped so neither side is empty).
  wgt_t prefix = 0;
  idx_t split = 1;
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    prefix += weight_of(weights, ids[i]);
    split = to_idx(i + 1);
    if (static_cast<double>(prefix) >= target) break;
  }
  const real_t lo = points[static_cast<std::size_t>(
      ids[static_cast<std::size_t>(split - 1)])][axis];
  const real_t hi =
      points[static_cast<std::size_t>(ids[static_cast<std::size_t>(split)])]
            [axis];
  *cut = 0.5 * (lo + hi);
  return split;
}

idx_t RcbTree::build_node(std::span<const Vec3> points,
                          std::span<const wgt_t> weights, std::span<idx_t> ids,
                          idx_t k, idx_t first_part) {
  const idx_t node_id = to_idx(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].k_total = k;
  if (k == 1 || ids.size() <= 1) {
    nodes_[static_cast<std::size_t>(node_id)].part = first_part;
    for (idx_t i : ids) labels_[static_cast<std::size_t>(i)] = first_part;
    return node_id;
  }
  const idx_t k_left = (k + 1) / 2;
  const BBox box = bbox_of(points, ids);
  const int axis = box.longest_axis(dim_);
  real_t cut = 0;
  const idx_t split =
      weighted_split(points, weights, ids, axis,
                     static_cast<double>(k_left) / static_cast<double>(k),
                     &cut);
  // Fill the node fields before recursing; note nodes_ may reallocate, so
  // never hold a reference across build_node calls.
  nodes_[static_cast<std::size_t>(node_id)].axis = axis;
  nodes_[static_cast<std::size_t>(node_id)].cut = cut;
  nodes_[static_cast<std::size_t>(node_id)].k_left = k_left;
  const idx_t left = build_node(points, weights,
                                ids.subspan(0, static_cast<std::size_t>(split)),
                                k_left, first_part);
  const idx_t right =
      build_node(points, weights, ids.subspan(static_cast<std::size_t>(split)),
                 k - k_left, first_part + k_left);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

RcbTree RcbTree::build(std::span<const Vec3> points,
                       std::span<const wgt_t> weights, idx_t k, int dim) {
  require(k >= 1, "RcbTree::build: k must be >= 1");
  require(dim == 2 || dim == 3, "RcbTree::build: dim must be 2 or 3");
  require(weights.empty() || weights.size() == points.size(),
          "RcbTree::build: weights size mismatch");
  RcbTree t;
  t.k_ = k;
  t.dim_ = dim;
  t.labels_.assign(points.size(), 0);
  std::vector<idx_t> ids(points.size());
  std::iota(ids.begin(), ids.end(), idx_t{0});
  if (!ids.empty()) {
    t.root_ = t.build_node(points, weights, ids, k, 0);
  }
  return t;
}

void RcbTree::update_node(idx_t node_id, std::span<const Vec3> points,
                          std::span<const wgt_t> weights,
                          std::span<idx_t> ids) {
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.axis < 0) {  // leaf
    for (idx_t i : ids) labels_[static_cast<std::size_t>(i)] = node.part;
    return;
  }
  if (ids.size() <= 1) {
    // Degenerate: too few points for this subtree; dump them on the left
    // branch so they land in a valid part id.
    for (idx_t i : ids) {
      idx_t cur = node_id;
      while (nodes_[static_cast<std::size_t>(cur)].axis >= 0) {
        cur = nodes_[static_cast<std::size_t>(cur)].left;
      }
      labels_[static_cast<std::size_t>(i)] =
          nodes_[static_cast<std::size_t>(cur)].part;
    }
    return;
  }
  real_t cut = 0;
  const idx_t split = weighted_split(
      points, weights, ids, node.axis,
      static_cast<double>(node.k_left) / static_cast<double>(node.k_total),
      &cut);
  node.cut = cut;
  update_node(node.left, points, weights,
              ids.subspan(0, static_cast<std::size_t>(split)));
  update_node(node.right, points, weights,
              ids.subspan(static_cast<std::size_t>(split)));
}

void RcbTree::update(std::span<const Vec3> points,
                     std::span<const wgt_t> weights) {
  require(root_ != kInvalidIndex, "RcbTree::update: tree is empty");
  require(weights.empty() || weights.size() == points.size(),
          "RcbTree::update: weights size mismatch");
  labels_.assign(points.size(), 0);
  std::vector<idx_t> ids(points.size());
  std::iota(ids.begin(), ids.end(), idx_t{0});
  if (!ids.empty()) update_node(root_, points, weights, ids);
}

idx_t RcbTree::locate(Vec3 p) const {
  require(root_ != kInvalidIndex, "RcbTree::locate: tree is empty");
  idx_t cur = root_;
  while (nodes_[static_cast<std::size_t>(cur)].axis >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    cur = (p[node.axis] < node.cut) ? node.left : node.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].part;
}

}  // namespace cpart
