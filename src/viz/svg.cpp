#include "viz/svg.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cpart {

SvgCanvas::SvgCanvas(const BBox& world, int pixels) : world_(world) {
  require(!world.empty(), "SvgCanvas: empty world box");
  require(pixels > 0, "SvgCanvas: non-positive pixel width");
  const double ex = world_.extent(0);
  const double ey = world_.extent(1);
  require(ex > 0 && ey > 0, "SvgCanvas: degenerate world box");
  scale_ = pixels / ex;
  width_ = pixels;
  height_ = static_cast<int>(ey * scale_) + 1;
}

double SvgCanvas::sx(double x) const { return (x - world_.lo.x) * scale_; }
double SvgCanvas::sy(double y) const { return (world_.hi.y - y) * scale_; }

void SvgCanvas::add_rect(const BBox& box, const std::string& fill,
                         const std::string& stroke, double stroke_width,
                         double fill_opacity) {
  std::ostringstream os;
  os << "<rect x=\"" << sx(box.lo.x) << "\" y=\"" << sy(box.hi.y)
     << "\" width=\"" << box.extent(0) * scale_ << "\" height=\""
     << box.extent(1) * scale_ << "\" fill=\"" << fill << "\" fill-opacity=\""
     << fill_opacity << "\" stroke=\"" << stroke << "\" stroke-width=\""
     << stroke_width << "\"/>";
  shapes_.push_back(os.str());
}

void SvgCanvas::add_circle(Vec3 center, double world_radius,
                           const std::string& fill, const std::string& stroke) {
  std::ostringstream os;
  os << "<circle cx=\"" << sx(center.x) << "\" cy=\"" << sy(center.y)
     << "\" r=\"" << world_radius * scale_ << "\" fill=\"" << fill
     << "\" stroke=\"" << stroke << "\"/>";
  shapes_.push_back(os.str());
}

void SvgCanvas::add_line(Vec3 a, Vec3 b, const std::string& stroke,
                         double stroke_width) {
  std::ostringstream os;
  os << "<line x1=\"" << sx(a.x) << "\" y1=\"" << sy(a.y) << "\" x2=\""
     << sx(b.x) << "\" y2=\"" << sy(b.y) << "\" stroke=\"" << stroke
     << "\" stroke-width=\"" << stroke_width << "\"/>";
  shapes_.push_back(os.str());
}

void SvgCanvas::add_text(Vec3 at, const std::string& text, int font_px,
                         const std::string& fill) {
  std::ostringstream os;
  os << "<text x=\"" << sx(at.x) << "\" y=\"" << sy(at.y) << "\" font-size=\""
     << font_px << "\" fill=\"" << fill << "\">" << text << "</text>";
  shapes_.push_back(os.str());
}

void SvgCanvas::add_polygon(const std::vector<Vec3>& points,
                            const std::string& fill, const std::string& stroke,
                            double stroke_width, double fill_opacity) {
  std::ostringstream os;
  os << "<polygon points=\"";
  for (const Vec3& p : points) os << sx(p.x) << ',' << sy(p.y) << ' ';
  os << "\" fill=\"" << fill << "\" fill-opacity=\"" << fill_opacity
     << "\" stroke=\"" << stroke << "\" stroke-width=\"" << stroke_width
     << "\"/>";
  shapes_.push_back(os.str());
}

std::string SvgCanvas::render() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
     << "\" height=\"" << height_ << "\">\n";
  for (const std::string& s : shapes_) os << "  " << s << '\n';
  os << "</svg>\n";
  return os.str();
}

void SvgCanvas::save(const std::string& path) const {
  std::ofstream os(path);
  require(os.good(), "SvgCanvas::save: cannot open " + path);
  os << render();
  require(os.good(), "SvgCanvas::save: write failed for " + path);
}

std::string SvgCanvas::partition_color(idx_t p) {
  static const char* kPalette[] = {
      "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
      "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#1f77b4", "#ff7f0e",
      "#2ca02c", "#d62728", "#9467bd", "#8c564b"};
  constexpr idx_t kCount = static_cast<idx_t>(std::size(kPalette));
  return kPalette[static_cast<std::size_t>(((p % kCount) + kCount) % kCount)];
}

}  // namespace cpart
