// Minimal SVG output for 2D figures (Figure 1/2 reproductions, partition
// cross-sections of the impact simulation).
#pragma once

#include <string>
#include <vector>

#include "geom/bbox.hpp"
#include "util/common.hpp"

namespace cpart {

class SvgCanvas {
 public:
  /// World-coordinate viewport mapped to a `pixels`-wide image (height
  /// follows the aspect ratio). y points up in world space.
  SvgCanvas(const BBox& world, int pixels = 800);

  void add_rect(const BBox& box, const std::string& fill,
                const std::string& stroke = "black", double stroke_width = 1.0,
                double fill_opacity = 1.0);
  void add_circle(Vec3 center, double world_radius, const std::string& fill,
                  const std::string& stroke = "none");
  void add_line(Vec3 a, Vec3 b, const std::string& stroke,
                double stroke_width = 1.0);
  void add_text(Vec3 at, const std::string& text, int font_px = 12,
                const std::string& fill = "black");
  /// Closed polygon through world-space points.
  void add_polygon(const std::vector<Vec3>& points, const std::string& fill,
                   const std::string& stroke = "black",
                   double stroke_width = 1.0, double fill_opacity = 1.0);

  std::string render() const;
  void save(const std::string& path) const;

  /// Distinct fill colours for partition ids (cycled palette).
  static std::string partition_color(idx_t p);

 private:
  double sx(double x) const;
  double sy(double y) const;

  BBox world_;
  double scale_;
  int width_, height_;
  std::vector<std::string> shapes_;
};

}  // namespace cpart
