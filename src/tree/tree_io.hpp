// Decision-tree serialization.
//
// In the parallel algorithm the descriptor tree is built once and
// "communicated to all the processors" (paper Section 4.1.1) — NTNodes
// measures exactly this cost. This module provides the wire format: a
// compact line-oriented text encoding with a round-trip guarantee, plus a
// structural-equality helper used by the tests.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "tree/decision_tree.hpp"
#include "util/common.hpp"

namespace cpart {

/// Structured scan-level parse failure: truncated stream, non-numeric
/// token, trailing garbage, implausible counts. Carries the byte offset
/// into the wire text where scanning failed so a corrupt broadcast can be
/// localized. Structural failures after a clean scan (bad child indices,
/// cycles) still raise plain InputError from assemble_tree.
class TreeParseError : public InputError {
 public:
  TreeParseError(const std::string& msg, std::size_t byte_offset)
      : InputError(msg + " (at byte " + std::to_string(byte_offset) + ")"),
        byte_offset_(byte_offset) {}

  std::size_t byte_offset() const { return byte_offset_; }

 private:
  std::size_t byte_offset_;
};

void write_tree(std::ostream& os, const DecisionTree& tree);
std::string tree_to_string(const DecisionTree& tree);

/// Parses the format produced by write_tree. Never trusts the wire: every
/// token conversion is checked, node/minority counts are bounded by the
/// remaining input, and trailing garbage is rejected. Throws TreeParseError
/// (with byte offset) on malformed text and InputError on structurally
/// inconsistent trees (bad child indices, cycles); never asserts and never
/// returns a partial tree.
DecisionTree read_tree(std::istream& is);
DecisionTree tree_from_string(const std::string& text);

/// Deep structural equality (topology, cuts, labels, bounds).
bool trees_equal(const DecisionTree& a, const DecisionTree& b);

/// Assembles a tree from raw node records (also used by read_tree).
/// Validates: root in range, children in range and acyclic, exactly the
/// leaf nodes have axis < 0, minority CSR sizes consistent.
DecisionTree assemble_tree(std::vector<TreeNode> nodes, idx_t root,
                           std::vector<idx_t> minority_offsets,
                           std::vector<idx_t> minority_labels);

}  // namespace cpart
