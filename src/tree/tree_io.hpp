// Decision-tree serialization.
//
// In the parallel algorithm the descriptor tree is built once and
// "communicated to all the processors" (paper Section 4.1.1) — NTNodes
// measures exactly this cost. This module provides the wire format: a
// compact line-oriented text encoding with a round-trip guarantee, plus a
// structural-equality helper used by the tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "tree/decision_tree.hpp"
#include "util/common.hpp"

namespace cpart {

/// Structured scan-level parse failure: truncated stream, non-numeric
/// token, trailing garbage, implausible counts. Carries the byte offset
/// into the wire text where scanning failed so a corrupt broadcast can be
/// localized. Structural failures after a clean scan (bad child indices,
/// cycles) still raise plain InputError from assemble_tree.
class TreeParseError : public InputError {
 public:
  TreeParseError(const std::string& msg, std::size_t byte_offset)
      : InputError(msg + " (at byte " + std::to_string(byte_offset) + ")"),
        byte_offset_(byte_offset) {}

  std::size_t byte_offset() const { return byte_offset_; }

 private:
  std::size_t byte_offset_;
};

void write_tree(std::ostream& os, const DecisionTree& tree);
std::string tree_to_string(const DecisionTree& tree);

/// Wire encodings of a descriptor tree. kText is the line-oriented decimal
/// format above (debuggable, ~1.6x larger, ~14x slower to encode); kBinary
/// is the versioned
/// little-endian codec below (what the SPMD broadcast ships by default).
/// Both round-trip exactly; decode_tree() tells them apart by magic.
enum class TreeWireFormat { kText, kBinary };

/// Version byte of the binary codec. Bump on ANY layout change (field
/// widths, record order, varint placement); decoders reject every version
/// they do not know, so mixed-version ranks fail loudly at parse time
/// instead of mis-reading records.
inline constexpr std::uint8_t kTreeBinaryVersion = 1;

/// Binary wire layout (all integers little-endian):
///   magic "cptb" (4 bytes) | version u8 | varint node_count |
///   varint root+1 | node_count fixed 74-byte records
///     (axis i8, pure u8, cut f64, left i32, right i32, label i32,
///      count i32, bounds lo/hi 6 x f64) |
///   node_count minority lists (varint count, then that many varint labels)
/// No trailing bytes. Counts are bounded by the remaining input before any
/// allocation; truncation, bad magic/version, overlong varints and trailing
/// garbage raise TreeParseError with the byte offset, exactly like the text
/// parser. Structural damage that survives a clean scan is still caught by
/// assemble_tree (InputError).
std::string tree_to_binary(const DecisionTree& tree);
DecisionTree tree_from_binary(std::string_view bytes);

/// Encodes in the requested format.
std::string encode_tree(const DecisionTree& tree, TreeWireFormat format);

/// Decodes either wire format, dispatching on the magic bytes.
DecisionTree decode_tree(const std::string& wire);

/// Parses the format produced by write_tree. Never trusts the wire: every
/// token conversion is checked, node/minority counts are bounded by the
/// remaining input, and trailing garbage is rejected. Throws TreeParseError
/// (with byte offset) on malformed text and InputError on structurally
/// inconsistent trees (bad child indices, cycles); never asserts and never
/// returns a partial tree.
DecisionTree read_tree(std::istream& is);
DecisionTree tree_from_string(const std::string& text);

/// Deep structural equality (topology, cuts, labels, bounds).
bool trees_equal(const DecisionTree& a, const DecisionTree& b);

/// Assembles a tree from raw node records (also used by read_tree).
/// Validates: root in range, children in range and acyclic, exactly the
/// leaf nodes have axis < 0, minority CSR sizes consistent.
DecisionTree assemble_tree(std::vector<TreeNode> nodes, idx_t root,
                           std::vector<idx_t> minority_offsets,
                           std::vector<idx_t> minority_labels);

}  // namespace cpart
