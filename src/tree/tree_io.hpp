// Decision-tree serialization.
//
// In the parallel algorithm the descriptor tree is built once and
// "communicated to all the processors" (paper Section 4.1.1) — NTNodes
// measures exactly this cost. This module provides the wire format: a
// compact line-oriented text encoding with a round-trip guarantee, plus a
// structural-equality helper used by the tests.
#pragma once

#include <iosfwd>
#include <string>

#include "tree/decision_tree.hpp"

namespace cpart {

void write_tree(std::ostream& os, const DecisionTree& tree);
std::string tree_to_string(const DecisionTree& tree);

/// Parses the format produced by write_tree; throws InputError on malformed
/// or structurally inconsistent input (bad child indices, cycles).
DecisionTree read_tree(std::istream& is);
DecisionTree tree_from_string(const std::string& text);

/// Deep structural equality (topology, cuts, labels, bounds).
bool trees_equal(const DecisionTree& a, const DecisionTree& b);

/// Assembles a tree from raw node records (also used by read_tree).
/// Validates: root in range, children in range and acyclic, exactly the
/// leaf nodes have axis < 0, minority CSR sizes consistent.
DecisionTree assemble_tree(std::vector<TreeNode> nodes, idx_t root,
                           std::vector<idx_t> minority_offsets,
                           std::vector<idx_t> minority_labels);

}  // namespace cpart
