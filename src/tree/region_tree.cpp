#include "tree/region_tree.hpp"

#include <cmath>

namespace cpart {

RegionTreeOptions recommended_region_options(idx_t n, idx_t k, int dim) {
  require(n >= 1 && k >= 1, "recommended_region_options: bad n or k");
  RegionTreeOptions o;
  o.dim = dim;
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  o.max_pure = std::max<idx_t>(1, static_cast<idx_t>(dn / std::pow(dk, 1.25)));
  o.max_impure = std::max<idx_t>(1, static_cast<idx_t>(dn / std::pow(dk, 2.25)));
  return o;
}

RegionTree::RegionTree(std::span<const Vec3> points,
                       std::span<const idx_t> part, idx_t num_parts,
                       const RegionTreeOptions& options) {
  require(options.max_pure >= 1 && options.max_impure >= 1,
          "RegionTree: max_pure and max_impure must be >= 1");
  TreeInduceOptions induce;
  induce.dim = options.dim;
  induce.max_pure = options.max_pure;
  induce.max_impure = options.max_impure;
  InducedTree induced = induce_tree(points, part, num_parts, induce);
  tree_ = std::move(induced.tree);

  // Densify leaf ids into region indices 0..R-1 and record majorities.
  std::vector<idx_t> leaf_to_region(
      static_cast<std::size_t>(tree_.num_nodes()), kInvalidIndex);
  for (idx_t id = 0; id < tree_.num_nodes(); ++id) {
    const TreeNode& nd = tree_.node(id);
    if (nd.axis < 0) {
      leaf_to_region[static_cast<std::size_t>(id)] = num_regions_++;
      region_majority_.push_back(nd.label);
    }
  }
  region_of_point_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const idx_t leaf = induced.point_leaf[i];
    region_of_point_[i] = leaf_to_region[static_cast<std::size_t>(leaf)];
  }
}

std::vector<idx_t> RegionTree::majority_partition() const {
  std::vector<idx_t> p(region_of_point_.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = region_majority_[static_cast<std::size_t>(region_of_point_[i])];
  }
  return p;
}

}  // namespace cpart
