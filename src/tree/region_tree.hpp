// Tree-friendly region decomposition over ALL mesh nodes (paper Section 4.2).
//
// To make the multi-constraint partition's boundaries piecewise
// axes-parallel, a decision tree is induced over *every* vertex of the
// nodal graph with two termination thresholds:
//   max_p — pure nodes with >= max_p points are still split (median of the
//           longest axis), so no region grows too heavy to move later;
//   max_i — impure nodes with < max_i points become leaves, bounding the
//           tree size near complicated boundaries.
// Each leaf becomes one rectangular/box region; region points are then
// reassigned to the region's majority partition (P -> P'), and the regions
// become super-vertices of the collapsed graph G' on which multi-constraint
// k-way refinement restores balance (P' -> P'').
//
// Recommended parameter ranges (paper Section 4.2):
//   n/k^1.5 <= max_p <= n/k      and      n/k^2.5 <= max_i <= n/k^2.
#pragma once

#include <span>
#include <vector>

#include "tree/decision_tree.hpp"

namespace cpart {

struct RegionTreeOptions {
  int dim = 3;
  idx_t max_pure = 0;    // the paper's max_p; must be >= 1
  idx_t max_impure = 0;  // the paper's max_i; must be >= 1
};

/// Mid-range defaults from the paper's recommended intervals:
/// max_p = n / k^1.25, max_i = n / k^2.25 (geometric midpoints).
RegionTreeOptions recommended_region_options(idx_t n, idx_t k, int dim = 3);

class RegionTree {
 public:
  /// Induces the region tree over all vertex positions with their current
  /// partition labels.
  RegionTree(std::span<const Vec3> points, std::span<const idx_t> part,
             idx_t num_parts, const RegionTreeOptions& options);

  idx_t num_regions() const { return num_regions_; }
  idx_t num_tree_nodes() const { return tree_.num_nodes(); }

  /// Dense region index (0 .. num_regions-1) of each input point.
  const std::vector<idx_t>& region_of_point() const { return region_of_point_; }

  /// Majority partition of each region — the P' assignment.
  const std::vector<idx_t>& region_majority() const { return region_majority_; }

  /// P': every point reassigned to its region's majority partition.
  std::vector<idx_t> majority_partition() const;

  const DecisionTree& tree() const { return tree_; }

 private:
  DecisionTree tree_;
  idx_t num_regions_ = 0;
  std::vector<idx_t> region_of_point_;
  std::vector<idx_t> region_majority_;
};

}  // namespace cpart
