#include "tree/descriptor_tree.hpp"

#include <algorithm>

namespace cpart {

SubdomainDescriptors::SubdomainDescriptors(
    std::span<const Vec3> contact_points, std::span<const idx_t> part_of_point,
    idx_t num_parts, const DescriptorOptions& options,
    TreeInduceWorkspace* workspace)
    : num_parts_(num_parts) {
  TreeInduceOptions induce;
  induce.dim = options.dim;
  induce.gap_alpha = options.gap_alpha;
  induce.parallel = options.parallel;
  // The per-point leaf map is never consulted here; skip producing it.
  induce.want_point_leaf = false;
  // Descriptor trees terminate exactly at purity: max_pure = 0 (pure nodes
  // are always leaves), max_impure = 0 (impure nodes split until no
  // separating hyperplane exists).
  InducedTree induced =
      induce_tree(contact_points, part_of_point, num_parts, induce, workspace);
  tree_ = std::move(induced.tree);
  domain_ = bbox_of(contact_points);

  regions_per_part_.assign(static_cast<std::size_t>(num_parts), 0);
  for (idx_t id = 0; id < tree_.num_nodes(); ++id) {
    const TreeNode& nd = tree_.node(id);
    if (nd.axis < 0 && nd.label != kInvalidIndex) {
      ++regions_per_part_[static_cast<std::size_t>(nd.label)];
    }
  }
  mask_.assign(static_cast<std::size_t>(num_parts), 0);
}

SubdomainDescriptors::SubdomainDescriptors(DecisionTree tree, idx_t num_parts)
    : tree_(std::move(tree)), num_parts_(num_parts) {
  require(num_parts >= 1, "SubdomainDescriptors: num_parts must be >= 1");
  domain_ = tree_.empty() ? BBox{} : tree_.node(tree_.root()).bounds;
  regions_per_part_.assign(static_cast<std::size_t>(num_parts), 0);
  for (idx_t id = 0; id < tree_.num_nodes(); ++id) {
    const TreeNode& nd = tree_.node(id);
    if (nd.axis < 0 && nd.label != kInvalidIndex) {
      require(nd.label >= 0 && nd.label < num_parts,
              "SubdomainDescriptors: leaf label out of range for num_parts");
      ++regions_per_part_[static_cast<std::size_t>(nd.label)];
    }
  }
  mask_.assign(static_cast<std::size_t>(num_parts), 0);
}

idx_t SubdomainDescriptors::num_regions(idx_t p) const {
  require(p >= 0 && p < num_parts_, "num_regions: partition out of range");
  return regions_per_part_[static_cast<std::size_t>(p)];
}

void SubdomainDescriptors::query_box(const BBox& box,
                                     std::vector<idx_t>& parts) const {
  // mask_ is all-zero on entry; collect records each label it sets in
  // touched_, and only those entries are cleared afterwards.
  tree_.collect_box_labels(box, mask_, touched_);
  std::sort(touched_.begin(), touched_.end());
  for (idx_t p : touched_) {
    parts.push_back(p);
    mask_[static_cast<std::size_t>(p)] = 0;
  }
  touched_.clear();
}

std::vector<BBox> SubdomainDescriptors::region_boxes(idx_t p) const {
  require(p >= 0 && p < num_parts_, "region_boxes: partition out of range");
  std::vector<BBox> boxes;
  if (tree_.empty()) return boxes;
  // DFS carrying the clipped region of each node.
  struct Item {
    idx_t id;
    BBox box;
  };
  std::vector<Item> stack{{tree_.root(), domain_}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const TreeNode& nd = tree_.node(item.id);
    if (nd.axis < 0) {
      if (nd.label == p) boxes.push_back(item.box);
      continue;
    }
    BBox left = item.box;
    left.hi[nd.axis] = nd.cut;
    BBox right = item.box;
    right.lo[nd.axis] = nd.cut;
    stack.push_back({nd.left, left});
    stack.push_back({nd.right, right});
  }
  return boxes;
}

}  // namespace cpart
