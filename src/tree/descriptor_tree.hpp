// Subdomain geometric descriptors (paper Section 4.1).
//
// Given the contact points and their partition labels, the descriptor tree
// bisects space until every leaf rectangle/box contains contact points from
// a single partition; each subdomain's descriptor is the union of its leaf
// boxes. NTNodes — the paper's setup-cost metric — is the node count of
// this tree. The tree also answers the global-search query: which
// partitions' regions does a surface element's bounding box intersect?
#pragma once

#include <span>
#include <vector>

#include "tree/decision_tree.hpp"

namespace cpart {

struct DescriptorOptions {
  int dim = 3;
  /// Gap-preferring split selection (Section 6 future work); 0 disables.
  double gap_alpha = 0.0;
  /// Induce independent subtrees concurrently on the global ThreadPool
  /// (TreeInduceOptions::parallel). The tree — and its serialized bytes —
  /// are identical at every thread count.
  bool parallel = false;
};

class SubdomainDescriptors {
 public:
  /// Induces descriptors for `num_parts` subdomains from contact-point
  /// positions and their partition labels.
  SubdomainDescriptors(std::span<const Vec3> contact_points,
                       std::span<const idx_t> part_of_point, idx_t num_parts,
                       const DescriptorOptions& options = {},
                       TreeInduceWorkspace* workspace = nullptr);

  /// Reassembles descriptors around a tree received off the wire (the SPMD
  /// descriptor broadcast: rank 0 induces, everyone else parses — see
  /// tree_io.hpp for the exact-round-trip format). The tree must be a
  /// descriptor tree for `num_parts` subdomains; the domain box is the root
  /// node's bounds, which induce_tree sets to the bbox of all contact
  /// points — the same box the inducing constructor computes.
  SubdomainDescriptors(DecisionTree tree, idx_t num_parts);

  idx_t num_parts() const { return num_parts_; }

  /// NTNodes: total nodes (interior + leaf) of the descriptor tree.
  idx_t num_tree_nodes() const { return tree_.num_nodes(); }
  idx_t num_leaves() const { return tree_.num_leaves(); }
  idx_t max_depth() const { return tree_.max_depth(); }

  /// Number of leaf boxes describing partition p.
  idx_t num_regions(idx_t p) const;

  /// Appends to `parts` every partition whose descriptor region intersects
  /// `box` (deduplicated, ascending). This is the global-search filter.
  void query_box(const BBox& box, std::vector<idx_t>& parts) const;

  const DecisionTree& tree() const { return tree_; }

  /// Moves the descriptor tree out — e.g. into
  /// TreeInduceWorkspace::recycle() before rebuilding descriptors for the
  /// next snapshot. Leaves the descriptors empty.
  DecisionTree release_tree() { return std::move(tree_); }

  /// Leaf boxes of partition p clipped to the overall domain box; used by
  /// visualization and tests (region/partition correspondence).
  std::vector<BBox> region_boxes(idx_t p) const;

 private:
  DecisionTree tree_;
  idx_t num_parts_ = 0;
  std::vector<idx_t> regions_per_part_;
  BBox domain_;
  // query_box scratch: mask_ is all-zero between calls and reset via the
  // touched-list, so a query costs O(|result|), not O(num_parts).
  mutable std::vector<char> mask_;
  mutable std::vector<idx_t> touched_;
};

}  // namespace cpart
