#include "tree/tree_io.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace cpart {

void write_tree(std::ostream& os, const DecisionTree& tree) {
  os << "cparttree 1\n";
  os << tree.num_nodes() << ' ' << (tree.empty() ? -1 : tree.root()) << '\n';
  os << std::setprecision(17);
  for (idx_t id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& nd = tree.node(id);
    os << nd.axis << ' ' << nd.cut << ' ' << nd.left << ' ' << nd.right << ' '
       << nd.label << ' ' << (nd.pure ? 1 : 0) << ' ' << nd.count;
    os << ' ' << nd.bounds.lo.x << ' ' << nd.bounds.lo.y << ' '
       << nd.bounds.lo.z << ' ' << nd.bounds.hi.x << ' ' << nd.bounds.hi.y
       << ' ' << nd.bounds.hi.z;
    const auto minorities = tree.minority_labels(id);
    os << ' ' << minorities.size();
    for (idx_t l : minorities) os << ' ' << l;
    os << '\n';
  }
}

std::string tree_to_string(const DecisionTree& tree) {
  std::ostringstream os;
  write_tree(os, tree);
  return os.str();
}

DecisionTree read_tree(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  require(is.good() && magic == "cparttree" && version == 1,
          "read_tree: not a cparttree v1 stream");
  idx_t count = 0, root = 0;
  is >> count >> root;
  require(!is.fail() && count >= 0, "read_tree: bad node count");
  std::vector<TreeNode> nodes(static_cast<std::size_t>(count));
  std::vector<idx_t> offsets{0};
  std::vector<idx_t> labels;
  for (idx_t id = 0; id < count; ++id) {
    TreeNode& nd = nodes[static_cast<std::size_t>(id)];
    int pure = 0;
    is >> nd.axis >> nd.cut >> nd.left >> nd.right >> nd.label >> pure >>
        nd.count;
    is >> nd.bounds.lo.x >> nd.bounds.lo.y >> nd.bounds.lo.z >>
        nd.bounds.hi.x >> nd.bounds.hi.y >> nd.bounds.hi.z;
    nd.pure = pure != 0;
    idx_t num_minorities = 0;
    is >> num_minorities;
    require(!is.fail() && num_minorities >= 0,
            "read_tree: bad node record " + std::to_string(id));
    for (idx_t i = 0; i < num_minorities; ++i) {
      idx_t l;
      is >> l;
      require(!is.fail(), "read_tree: truncated minority list");
      labels.push_back(l);
    }
    offsets.push_back(to_idx(labels.size()));
  }
  return assemble_tree(std::move(nodes), root, std::move(offsets),
                       std::move(labels));
}

DecisionTree tree_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_tree(is);
}

DecisionTree assemble_tree(std::vector<TreeNode> nodes, idx_t root,
                           std::vector<idx_t> minority_offsets,
                           std::vector<idx_t> minority_labels) {
  const idx_t count = to_idx(nodes.size());
  require((count == 0) == (root < 0),
          "assemble_tree: root/emptiness mismatch");
  require(count == 0 || (root >= 0 && root < count),
          "assemble_tree: root out of range");
  require(minority_offsets.size() ==
              (count == 0 ? std::size_t{1}
                          : static_cast<std::size_t>(count) + 1) ||
              (count == 0 && minority_offsets.empty()),
          "assemble_tree: minority offsets size mismatch");
  // Validate children and count leaves; detect cycles by checking each node
  // is referenced at most once and the root never is.
  idx_t leaves = 0;
  std::vector<char> referenced(static_cast<std::size_t>(count), 0);
  for (idx_t id = 0; id < count; ++id) {
    const TreeNode& nd = nodes[static_cast<std::size_t>(id)];
    if (nd.axis < 0) {
      ++leaves;
      continue;
    }
    require(nd.axis < 3, "assemble_tree: bad split axis");
    for (idx_t child : {nd.left, nd.right}) {
      require(child >= 0 && child < count,
              "assemble_tree: child index out of range");
      require(!referenced[static_cast<std::size_t>(child)],
              "assemble_tree: node referenced twice (not a tree)");
      referenced[static_cast<std::size_t>(child)] = 1;
    }
  }
  require(count == 0 || !referenced[static_cast<std::size_t>(root)],
          "assemble_tree: root has a parent");
  DecisionTree tree;
  tree.nodes_ = std::move(nodes);
  tree.root_ = count == 0 ? kInvalidIndex : root;
  tree.num_leaves_ = leaves;
  tree.minority_offsets_ = std::move(minority_offsets);
  tree.minority_labels_ = std::move(minority_labels);
  return tree;
}

bool trees_equal(const DecisionTree& a, const DecisionTree& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_leaves() != b.num_leaves()) {
    return false;
  }
  if (a.empty()) return b.empty();
  if (a.root() != b.root()) return false;
  for (idx_t id = 0; id < a.num_nodes(); ++id) {
    const TreeNode& x = a.node(id);
    const TreeNode& y = b.node(id);
    if (x.axis != y.axis || x.cut != y.cut || x.left != y.left ||
        x.right != y.right || x.label != y.label || x.pure != y.pure ||
        x.count != y.count) {
      return false;
    }
    if (!(x.bounds.lo == y.bounds.lo) || !(x.bounds.hi == y.bounds.hi)) {
      return false;
    }
    const auto ma = a.minority_labels(id);
    const auto mb = b.minority_labels(id);
    if (ma.size() != mb.size() ||
        !std::equal(ma.begin(), ma.end(), mb.begin())) {
      return false;
    }
  }
  return true;
}

}  // namespace cpart
