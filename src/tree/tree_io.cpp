#include "tree/tree_io.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <iomanip>
#include <iterator>
#include <limits>
#include <sstream>
#include <string_view>

#include "util/varint.hpp"

namespace cpart {

void write_tree(std::ostream& os, const DecisionTree& tree) {
  os << "cparttree 1\n";
  os << tree.num_nodes() << ' ' << (tree.empty() ? -1 : tree.root()) << '\n';
  os << std::setprecision(17);
  for (idx_t id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& nd = tree.node(id);
    os << nd.axis << ' ' << nd.cut << ' ' << nd.left << ' ' << nd.right << ' '
       << nd.label << ' ' << (nd.pure ? 1 : 0) << ' ' << nd.count;
    os << ' ' << nd.bounds.lo.x << ' ' << nd.bounds.lo.y << ' '
       << nd.bounds.lo.z << ' ' << nd.bounds.hi.x << ' ' << nd.bounds.hi.y
       << ' ' << nd.bounds.hi.z;
    const auto minorities = tree.minority_labels(id);
    os << ' ' << minorities.size();
    for (idx_t l : minorities) os << ' ' << l;
    os << '\n';
  }
}

std::string tree_to_string(const DecisionTree& tree) {
  std::ostringstream os;
  write_tree(os, tree);
  return os.str();
}

namespace {

/// Locale-free tokenizer for the wire format. The istream number path goes
/// through the global locale, whose shared state serializes concurrent
/// parses — and the SPMD descriptor broadcast has k-1 ranks parsing the
/// same tree inside one superstep. std::from_chars has no shared state and
/// reads the same decimal text exactly (17 significant digits round-trip).
///
/// The scanner never trusts the wire: every std::from_chars result (both
/// the error code and the consumed length) is checked, and every failure —
/// truncation, a non-numeric or partially numeric token, out-of-range
/// values, trailing garbage — raises TreeParseError with the byte offset
/// where scanning stopped.
class WireScanner {
 public:
  explicit WireScanner(std::string_view text) : text_(text) {}

  std::string_view token(const char* what) {
    while (pos_ < text_.size() && is_space(text_[pos_])) ++pos_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !is_space(text_[pos_])) ++pos_;
    if (pos_ == start) {
      fail(std::string("read_tree: unexpected end of input, expected ") +
               what,
           start);
    }
    return text_.substr(start, pos_ - start);
  }

  template <typename T>
  T number(const char* what) {
    const std::string_view tok = token(what);
    const std::size_t start = pos_ - tok.size();
    T value{};
    const auto res =
        std::from_chars(tok.data(), tok.data() + tok.size(), value);
    if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) {
      fail(std::string("read_tree: bad ") + what + " '" + std::string(tok) +
               "'",
           start);
    }
    return value;
  }

  /// Rejects anything but trailing whitespace after the last record.
  void expect_end() {
    while (pos_ < text_.size() && is_space(text_[pos_])) ++pos_;
    if (pos_ < text_.size()) {
      fail("read_tree: trailing garbage after tree", pos_);
    }
  }

  /// Bytes not yet consumed — used to bound count fields before
  /// preallocating (every encoded record costs at least one byte per
  /// element, so a count larger than the remaining input is garbage, not a
  /// giant allocation).
  std::size_t remaining() const { return text_.size() - pos_; }

  std::size_t pos() const { return pos_; }

  [[noreturn]] static void fail(const std::string& msg, std::size_t offset) {
    throw TreeParseError(msg, offset);
  }

 private:
  static bool is_space(char c) {
    return c == ' ' || c == '\n' || c == '\r' || c == '\t';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

DecisionTree parse_tree(std::string_view text) {
  WireScanner sc(text);
  if (text.empty()) {
    WireScanner::fail("read_tree: empty input", 0);
  }
  const std::string_view magic = sc.token("magic");
  if (magic != "cparttree") {
    WireScanner::fail("read_tree: not a cparttree stream", 0);
  }
  const int version = sc.number<int>("version");
  if (version != 1) {
    WireScanner::fail("read_tree: unsupported cparttree version " +
                          std::to_string(version),
                      sc.pos());
  }
  const idx_t count = sc.number<idx_t>("node count");
  if (count < 0 || static_cast<std::size_t>(count) > sc.remaining()) {
    WireScanner::fail("read_tree: implausible node count " +
                          std::to_string(count),
                      sc.pos());
  }
  const idx_t root = sc.number<idx_t>("root");
  std::vector<TreeNode> nodes(static_cast<std::size_t>(count));
  std::vector<idx_t> offsets{0};
  std::vector<idx_t> labels;
  for (idx_t id = 0; id < count; ++id) {
    TreeNode& nd = nodes[static_cast<std::size_t>(id)];
    nd.axis = sc.number<int>("axis");
    nd.cut = sc.number<real_t>("cut");
    nd.left = sc.number<idx_t>("left");
    nd.right = sc.number<idx_t>("right");
    nd.label = sc.number<idx_t>("label");
    nd.pure = sc.number<int>("pure flag") != 0;
    nd.count = sc.number<idx_t>("count");
    nd.bounds.lo.x = sc.number<real_t>("bounds");
    nd.bounds.lo.y = sc.number<real_t>("bounds");
    nd.bounds.lo.z = sc.number<real_t>("bounds");
    nd.bounds.hi.x = sc.number<real_t>("bounds");
    nd.bounds.hi.y = sc.number<real_t>("bounds");
    nd.bounds.hi.z = sc.number<real_t>("bounds");
    const idx_t num_minorities = sc.number<idx_t>("minority count");
    if (num_minorities < 0 ||
        static_cast<std::size_t>(num_minorities) > sc.remaining()) {
      WireScanner::fail("read_tree: implausible minority count in node " +
                            std::to_string(id),
                        sc.pos());
    }
    for (idx_t i = 0; i < num_minorities; ++i) {
      labels.push_back(sc.number<idx_t>("minority label"));
    }
    offsets.push_back(to_idx(labels.size()));
  }
  sc.expect_end();
  return assemble_tree(std::move(nodes), root, std::move(offsets),
                       std::move(labels));
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

constexpr char kBinaryMagic[4] = {'c', 'p', 't', 'b'};
// axis i8 + pure u8 + cut f64 + (left,right,label,count) i32 + bounds 6*f64.
constexpr std::size_t kNodeRecordBytes = 1 + 1 + 8 + 4 * 4 + 6 * 8;

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_f64(std::string& out, double v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

/// Bounded little-endian reader mirroring WireScanner's guarantees for the
/// binary layout: every read checks the remaining length first, and every
/// failure raises TreeParseError with the byte offset where decoding
/// stopped. Fixed-width fields make truncation detection exact.
class BinaryScanner {
 public:
  explicit BinaryScanner(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::int32_t i32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return static_cast<std::int32_t>(v);
  }

  double f64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return std::bit_cast<double>(v);
  }

  std::uint64_t varint(const char* what) {
    std::uint64_t v = 0;
    if (!read_varint(bytes_, pos_, v)) {
      fail(std::string("read_tree: bad varint ") + what, pos_);
    }
    return v;
  }

  void expect_magic() {
    need(sizeof(kBinaryMagic), "magic");
    if (bytes_.compare(0, sizeof(kBinaryMagic), kBinaryMagic,
                       sizeof(kBinaryMagic)) != 0) {
      fail("read_tree: not a cptb stream", 0);
    }
    pos_ += sizeof(kBinaryMagic);
  }

  void expect_end() const {
    if (pos_ < bytes_.size()) {
      fail("read_tree: trailing bytes after tree", pos_);
    }
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t pos() const { return pos_; }

  [[noreturn]] static void fail(const std::string& msg, std::size_t offset) {
    throw TreeParseError(msg, offset);
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (bytes_.size() - pos_ < n) {
      fail(std::string("read_tree: unexpected end of input, expected ") +
               what,
           bytes_.size());
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string tree_to_binary(const DecisionTree& tree) {
  std::string out;
  const idx_t count = tree.num_nodes();
  out.reserve(8 + static_cast<std::size_t>(count) * (kNodeRecordBytes + 1));
  out.append(kBinaryMagic, sizeof(kBinaryMagic));
  out.push_back(static_cast<char>(kTreeBinaryVersion));
  append_varint(out, static_cast<std::uint64_t>(count));
  append_varint(out,
                static_cast<std::uint64_t>(tree.empty() ? 0 : tree.root() + 1));
  for (idx_t id = 0; id < count; ++id) {
    const TreeNode& nd = tree.node(id);
    out.push_back(static_cast<char>(static_cast<std::int8_t>(nd.axis)));
    out.push_back(static_cast<char>(nd.pure ? 1 : 0));
    append_f64(out, nd.cut);
    append_u32(out, static_cast<std::uint32_t>(nd.left));
    append_u32(out, static_cast<std::uint32_t>(nd.right));
    append_u32(out, static_cast<std::uint32_t>(nd.label));
    append_u32(out, static_cast<std::uint32_t>(nd.count));
    append_f64(out, nd.bounds.lo.x);
    append_f64(out, nd.bounds.lo.y);
    append_f64(out, nd.bounds.lo.z);
    append_f64(out, nd.bounds.hi.x);
    append_f64(out, nd.bounds.hi.y);
    append_f64(out, nd.bounds.hi.z);
  }
  for (idx_t id = 0; id < count; ++id) {
    const auto minorities = tree.minority_labels(id);
    append_varint(out, minorities.size());
    for (idx_t l : minorities) {
      append_varint(out, static_cast<std::uint64_t>(l));
    }
  }
  return out;
}

DecisionTree tree_from_binary(std::string_view bytes) {
  BinaryScanner sc(bytes);
  if (bytes.empty()) {
    BinaryScanner::fail("read_tree: empty input", 0);
  }
  sc.expect_magic();
  const std::uint8_t version = sc.u8("version");
  if (version != kTreeBinaryVersion) {
    BinaryScanner::fail("read_tree: unsupported cptb version " +
                            std::to_string(version),
                        sc.pos() - 1);
  }
  const std::uint64_t raw_count = sc.varint("node count");
  // Every node costs a fixed record plus at least one minority-count byte:
  // a count that cannot fit in the remaining input is garbage, rejected
  // before any allocation.
  if (raw_count > sc.remaining() / (kNodeRecordBytes + 1)) {
    BinaryScanner::fail("read_tree: implausible node count " +
                            std::to_string(raw_count),
                        sc.pos());
  }
  const idx_t count = static_cast<idx_t>(raw_count);
  const std::uint64_t raw_root = sc.varint("root");
  if (raw_root > raw_count) {
    BinaryScanner::fail("read_tree: root out of range", sc.pos());
  }
  const idx_t root = static_cast<idx_t>(raw_root) - 1;
  std::vector<TreeNode> nodes(static_cast<std::size_t>(count));
  for (idx_t id = 0; id < count; ++id) {
    TreeNode& nd = nodes[static_cast<std::size_t>(id)];
    nd.axis = static_cast<std::int8_t>(sc.u8("axis"));
    nd.pure = sc.u8("pure flag") != 0;
    nd.cut = sc.f64("cut");
    nd.left = sc.i32("left");
    nd.right = sc.i32("right");
    nd.label = sc.i32("label");
    nd.count = sc.i32("count");
    nd.bounds.lo.x = sc.f64("bounds");
    nd.bounds.lo.y = sc.f64("bounds");
    nd.bounds.lo.z = sc.f64("bounds");
    nd.bounds.hi.x = sc.f64("bounds");
    nd.bounds.hi.y = sc.f64("bounds");
    nd.bounds.hi.z = sc.f64("bounds");
  }
  std::vector<idx_t> offsets{0};
  std::vector<idx_t> labels;
  for (idx_t id = 0; id < count; ++id) {
    const std::uint64_t num_minorities = sc.varint("minority count");
    if (num_minorities > sc.remaining()) {
      BinaryScanner::fail("read_tree: implausible minority count in node " +
                              std::to_string(id),
                          sc.pos());
    }
    for (std::uint64_t i = 0; i < num_minorities; ++i) {
      const std::uint64_t l = sc.varint("minority label");
      if (l > static_cast<std::uint64_t>(
                  std::numeric_limits<std::int32_t>::max())) {
        BinaryScanner::fail("read_tree: minority label out of range",
                            sc.pos());
      }
      labels.push_back(static_cast<idx_t>(l));
    }
    offsets.push_back(to_idx(labels.size()));
  }
  sc.expect_end();
  return assemble_tree(std::move(nodes), root, std::move(offsets),
                       std::move(labels));
}

std::string encode_tree(const DecisionTree& tree, TreeWireFormat format) {
  return format == TreeWireFormat::kBinary ? tree_to_binary(tree)
                                           : tree_to_string(tree);
}

DecisionTree decode_tree(const std::string& wire) {
  if (wire.size() >= sizeof(kBinaryMagic) &&
      wire.compare(0, sizeof(kBinaryMagic), kBinaryMagic,
                   sizeof(kBinaryMagic)) == 0) {
    return tree_from_binary(wire);
  }
  return parse_tree(wire);
}

DecisionTree read_tree(std::istream& is) {
  const std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  return parse_tree(text);
}

DecisionTree tree_from_string(const std::string& text) {
  return parse_tree(text);
}

DecisionTree assemble_tree(std::vector<TreeNode> nodes, idx_t root,
                           std::vector<idx_t> minority_offsets,
                           std::vector<idx_t> minority_labels) {
  const idx_t count = to_idx(nodes.size());
  require((count == 0) == (root < 0),
          "assemble_tree: root/emptiness mismatch");
  require(count == 0 || (root >= 0 && root < count),
          "assemble_tree: root out of range");
  require(minority_offsets.size() ==
              (count == 0 ? std::size_t{1}
                          : static_cast<std::size_t>(count) + 1) ||
              (count == 0 && minority_offsets.empty()),
          "assemble_tree: minority offsets size mismatch");
  // Validate children and count leaves; detect cycles by checking each node
  // is referenced at most once and the root never is.
  idx_t leaves = 0;
  std::vector<char> referenced(static_cast<std::size_t>(count), 0);
  for (idx_t id = 0; id < count; ++id) {
    const TreeNode& nd = nodes[static_cast<std::size_t>(id)];
    if (nd.axis < 0) {
      ++leaves;
      continue;
    }
    require(nd.axis < 3, "assemble_tree: bad split axis");
    for (idx_t child : {nd.left, nd.right}) {
      require(child >= 0 && child < count,
              "assemble_tree: child index out of range");
      require(!referenced[static_cast<std::size_t>(child)],
              "assemble_tree: node referenced twice (not a tree)");
      referenced[static_cast<std::size_t>(child)] = 1;
    }
  }
  require(count == 0 || !referenced[static_cast<std::size_t>(root)],
          "assemble_tree: root has a parent");
  DecisionTree tree;
  tree.nodes_ = std::move(nodes);
  tree.root_ = count == 0 ? kInvalidIndex : root;
  tree.num_leaves_ = leaves;
  tree.minority_offsets_ = std::move(minority_offsets);
  tree.minority_labels_ = std::move(minority_labels);
  return tree;
}

bool trees_equal(const DecisionTree& a, const DecisionTree& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_leaves() != b.num_leaves()) {
    return false;
  }
  if (a.empty()) return b.empty();
  if (a.root() != b.root()) return false;
  for (idx_t id = 0; id < a.num_nodes(); ++id) {
    const TreeNode& x = a.node(id);
    const TreeNode& y = b.node(id);
    if (x.axis != y.axis || x.cut != y.cut || x.left != y.left ||
        x.right != y.right || x.label != y.label || x.pure != y.pure ||
        x.count != y.count) {
      return false;
    }
    if (!(x.bounds.lo == y.bounds.lo) || !(x.bounds.hi == y.bounds.hi)) {
      return false;
    }
    const auto ma = a.minority_labels(id);
    const auto mb = b.minority_labels(id);
    if (ma.size() != mb.size() ||
        !std::equal(ma.begin(), ma.end(), mb.begin())) {
      return false;
    }
  }
  return true;
}

}  // namespace cpart
