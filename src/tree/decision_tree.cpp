#include "tree/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "parallel/thread_pool.hpp"

namespace cpart {

idx_t DecisionTree::max_depth() const {
  if (empty()) return 0;
  idx_t best = 0;
  // Iterative DFS with explicit depth to avoid recursion limits on the
  // pathological deep trees of Figure 2.
  std::vector<std::pair<idx_t, idx_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const TreeNode& nd = node(id);
    if (nd.axis < 0) {
      best = std::max(best, depth);
    } else {
      stack.emplace_back(nd.left, depth + 1);
      stack.emplace_back(nd.right, depth + 1);
    }
  }
  return best;
}

idx_t DecisionTree::locate(Vec3 p) const {
  require(!empty(), "DecisionTree::locate: empty tree");
  idx_t cur = root_;
  while (node(cur).axis >= 0) {
    const TreeNode& nd = node(cur);
    cur = (p[nd.axis] < nd.cut) ? nd.left : nd.right;
  }
  return cur;
}

void DecisionTree::collect_box_leaves(const BBox& box,
                                      std::vector<idx_t>& out) const {
  if (empty() || box.empty()) return;
  std::vector<idx_t> stack{root_};
  while (!stack.empty()) {
    const idx_t id = stack.back();
    stack.pop_back();
    const TreeNode& nd = node(id);
    if (!box.intersects(nd.bounds)) continue;
    if (nd.axis < 0) {
      out.push_back(id);
      continue;
    }
    stack.push_back(nd.left);
    stack.push_back(nd.right);
  }
}

void DecisionTree::collect_box_labels(const BBox& box,
                                      std::vector<char>& mask) const {
  if (empty() || box.empty()) return;
  std::vector<idx_t> stack{root_};
  while (!stack.empty()) {
    const idx_t id = stack.back();
    stack.pop_back();
    const TreeNode& nd = node(id);
    if (!box.intersects(nd.bounds)) continue;
    if (nd.axis < 0) {
      if (nd.label != kInvalidIndex) {
        mask[static_cast<std::size_t>(nd.label)] = 1;
      }
      if (!nd.pure) {
        for (idx_t l : minority_labels(id)) {
          mask[static_cast<std::size_t>(l)] = 1;
        }
      }
      continue;
    }
    stack.push_back(nd.left);
    stack.push_back(nd.right);
  }
}

void DecisionTree::collect_box_labels(const BBox& box, std::vector<char>& mask,
                                      std::vector<idx_t>& touched) const {
  if (empty() || box.empty()) return;
  auto set_label = [&](idx_t l) {
    char& bit = mask[static_cast<std::size_t>(l)];
    if (!bit) {
      bit = 1;
      touched.push_back(l);
    }
  };
  std::vector<idx_t> stack{root_};
  while (!stack.empty()) {
    const idx_t id = stack.back();
    stack.pop_back();
    const TreeNode& nd = node(id);
    if (!box.intersects(nd.bounds)) continue;
    if (nd.axis < 0) {
      if (nd.label != kInvalidIndex) set_label(nd.label);
      if (!nd.pure) {
        for (idx_t l : minority_labels(id)) set_label(l);
      }
      continue;
    }
    stack.push_back(nd.left);
    stack.push_back(nd.right);
  }
}

std::span<const idx_t> DecisionTree::minority_labels(idx_t id) const {
  if (minority_offsets_.empty()) return {};
  const auto b = static_cast<std::size_t>(
      minority_offsets_[static_cast<std::size_t>(id)]);
  const auto e = static_cast<std::size_t>(
      minority_offsets_[static_cast<std::size_t>(id) + 1]);
  return {minority_labels_.data() + b, e - b};
}

// ---------------------------------------------------------------------------
// Induction
// ---------------------------------------------------------------------------

namespace {

/// Pending subtree: node id within its context plus the point range.
struct InduceItem {
  idx_t node;
  idx_t lo, hi;
};

/// Per-worker build state, pooled in the workspace. Node ids are local to
/// the context.
struct InduceContext {
  std::vector<TreeNode> nodes;
  std::vector<InduceItem> stack;
  std::vector<std::pair<idx_t, std::vector<idx_t>>> minorities;  // local ids
  std::vector<wgt_t> counts;
  std::vector<wgt_t> left_counts;
  std::vector<idx_t> scratch;
  idx_t leaves = 0;

  idx_t new_node() {
    nodes.emplace_back();
    return to_idx(nodes.size()) - 1;
  }

  void reset(idx_t num_labels) {
    nodes.clear();
    stack.clear();
    minorities.clear();
    counts.assign(static_cast<std::size_t>(num_labels), 0);
    left_counts.assign(static_cast<std::size_t>(num_labels), 0);
    leaves = 0;
  }
};

/// Per-axis scratch for the warm-start repair sort (one per axis so cold
/// parallel sorts of the three axes don't share state).
struct RepairBuffers {
  std::vector<idx_t> scratch;
  std::vector<idx_t> runs;
  std::vector<idx_t> runs_next;
};

}  // namespace

struct TreeInduceWorkspace::Impl {
  /// Globally-sorted per-axis orders saved by the previous induction.
  std::array<std::vector<idx_t>, 3> orders;
  std::size_t num_points = 0;
  int dim = 0;
  bool valid = false;
  /// Working copies consumed (leaf-partitioned) by the build.
  std::array<std::vector<idx_t>, 3> work;
  std::vector<char> side;
  std::array<RepairBuffers, 3> repair;
  /// Context pool: a deque so growing it for task contexts never
  /// invalidates the reference to the main context (slot 0).
  std::deque<InduceContext> contexts;
  std::vector<TreeNode> node_pool;  // retired tree storage (recycle())
};

TreeInduceWorkspace::TreeInduceWorkspace() : impl_(std::make_unique<Impl>()) {}
TreeInduceWorkspace::~TreeInduceWorkspace() = default;
TreeInduceWorkspace::TreeInduceWorkspace(TreeInduceWorkspace&&) noexcept =
    default;
TreeInduceWorkspace& TreeInduceWorkspace::operator=(
    TreeInduceWorkspace&&) noexcept = default;

void TreeInduceWorkspace::invalidate() { impl_->valid = false; }

bool TreeInduceWorkspace::warm(std::size_t num_points) const {
  return impl_->valid && impl_->num_points == num_points;
}

void TreeInduceWorkspace::recycle(DecisionTree&& tree) {
  if (tree.nodes_.capacity() > impl_->node_pool.capacity()) {
    impl_->node_pool = std::move(tree.nodes_);
    impl_->node_pool.clear();
  }
  tree = DecisionTree();
}

/// Implements induce_tree(). Keeps one index array per axis, each sorted by
/// that axis's coordinate; every tree node owns the same contiguous
/// subrange [lo, hi) of all arrays, and splits stable-partition each array
/// so sortedness is preserved without re-sorting (the paper's "the required
/// sorting can be done once for the entire set").
///
/// Parallel mode (options.parallel): a sequential phase expands the tree
/// until the work stack holds enough independent subranges, then each
/// pending subtree is built concurrently into its own node buffer (the
/// per-axis sorted arrays are shared — subranges are disjoint — while
/// histograms and scratch are per-worker) and spliced into the final tree
/// with deterministic offsets.
///
/// All build state lives in a TreeInduceWorkspace::Impl (a local one when
/// the caller passed no workspace): sorted orders saved there seed the next
/// call's orders via the adaptive repair pass instead of three full sorts,
/// and contexts/buffers keep their capacity across calls.
class TreeInducer {
 public:
  TreeInducer(std::span<const Vec3> points, std::span<const idx_t> labels,
              idx_t num_labels, const TreeInduceOptions& options,
              TreeInduceWorkspace::Impl& ws)
      : points_(points),
        labels_(labels),
        num_labels_(num_labels),
        options_(options),
        ws_(ws),
        sorted_(ws.work),
        side_(ws.side) {}

  using Item = InduceItem;
  using Context = InduceContext;

  InducedTree run() {
    const idx_t n = to_idx(points_.size());
    InducedTree result;
    result.num_labels = num_labels_;
    if (options_.want_point_leaf) {
      result.point_leaf.assign(points_.size(), kInvalidIndex);
      point_leaf_ = result.point_leaf.data();
    }
    if (n == 0) return result;

    prepare_orders(n);
    // side_ entries are fully (re)written by apply_split before being read,
    // so the buffer only needs the right size, not a cleared state.
    side_.resize(points_.size());

    Context& main_ctx = context(0);
    if (main_ctx.nodes.capacity() < ws_.node_pool.capacity()) {
      main_ctx.nodes = std::move(ws_.node_pool);
      main_ctx.nodes.clear();
    }
    ws_.node_pool.clear();
    const idx_t root = main_ctx.new_node();
    main_ctx.stack.push_back({root, 0, n});

    // The frontier/splice path runs whenever parallel mode is requested on
    // a large enough input — even with one worker (tasks then run inline).
    // The frontier width is a pinned constant, NOT derived from the pool
    // size: the frontier determines the splice order and with it the node
    // numbering, so a worker-dependent width would make the serialized
    // tree bytes differ across thread counts. 64 keeps >= 4 subtrees per
    // worker at every pool size this library runs (<= 16 workers).
    const bool go_parallel = options_.parallel && n >= 4096;
    const idx_t frontier_target = go_parallel ? idx_t{64} : idx_t{0};

    if (go_parallel) {
      // Sequential phase: expand breadth-first-ish until the work stack
      // holds enough independent subranges.
      while (!main_ctx.stack.empty() &&
             to_idx(main_ctx.stack.size()) < frontier_target) {
        // Pop the widest item so the frontier ranges stay balanced.
        std::size_t widest = 0;
        for (std::size_t i = 1; i < main_ctx.stack.size(); ++i) {
          if (main_ctx.stack[i].hi - main_ctx.stack[i].lo >
              main_ctx.stack[widest].hi - main_ctx.stack[widest].lo) {
            widest = i;
          }
        }
        const Item item = main_ctx.stack[widest];
        main_ctx.stack.erase(main_ctx.stack.begin() +
                             static_cast<std::ptrdiff_t>(widest));
        process(main_ctx, item);
      }
    } else {
      while (!main_ctx.stack.empty()) {
        const Item item = main_ctx.stack.back();
        main_ctx.stack.pop_back();
        process(main_ctx, item);
      }
    }

    std::vector<Item> frontier;
    std::size_t num_tasks = 0;
    if (go_parallel && !main_ctx.stack.empty()) {
      frontier = std::move(main_ctx.stack);
      main_ctx.stack.clear();
      num_tasks = frontier.size();
      // Acquire (and reset) the pooled task contexts up front: the pool is
      // a deque, so later growth never invalidates main_ctx.
      for (std::size_t t = 0; t < num_tasks; ++t) context(t + 1);
      ThreadPool::global().parallel_tasks(
          to_idx(num_tasks), [&](idx_t t) {
            Context& ctx = ws_.contexts[static_cast<std::size_t>(t) + 1];
            const Item top = frontier[static_cast<std::size_t>(t)];
            const idx_t local_root = ctx.new_node();
            ctx.stack.push_back({local_root, top.lo, top.hi});
            while (!ctx.stack.empty()) {
              const Item item = ctx.stack.back();
              ctx.stack.pop_back();
              process(ctx, item);
            }
          });
    }

    // Splice: main context nodes keep their ids; each task's local node j
    // maps to (j == 0 ? frontier node id : base_t + j - 1).
    DecisionTree& tree = result.tree;
    tree.root_ = root;
    tree.nodes_ = std::move(main_ctx.nodes);
    tree.num_leaves_ = main_ctx.leaves;
    std::vector<std::pair<idx_t, std::vector<idx_t>>> all_minorities =
        std::move(main_ctx.minorities);

    std::vector<idx_t> base(num_tasks);
    idx_t next = to_idx(tree.nodes_.size());
    for (std::size_t t = 0; t < num_tasks; ++t) {
      base[t] = next;
      next += std::max<idx_t>(0, to_idx(ws_.contexts[t + 1].nodes.size()) - 1);
    }
    tree.nodes_.resize(static_cast<std::size_t>(next));
    for (std::size_t t = 0; t < num_tasks; ++t) {
      Context& ctx = ws_.contexts[t + 1];
      const Item top = frontier[t];
      auto remap = [&](idx_t local) {
        return local == 0 ? top.node : base[t] + local - 1;
      };
      for (idx_t j = 0; j < to_idx(ctx.nodes.size()); ++j) {
        TreeNode nd = ctx.nodes[static_cast<std::size_t>(j)];
        if (nd.axis >= 0) {
          nd.left = remap(nd.left);
          nd.right = remap(nd.right);
        }
        tree.nodes_[static_cast<std::size_t>(remap(j))] = nd;
      }
      // Point-leaf entries of this subtree hold local ids; the subtree's
      // points are exactly sorted_[0][top.lo .. top.hi).
      if (point_leaf_ != nullptr) {
        for (idx_t i = top.lo; i < top.hi; ++i) {
          idx_t& slot = result.point_leaf[static_cast<std::size_t>(
              sorted_[0][static_cast<std::size_t>(i)])];
          slot = remap(slot);
        }
      }
      for (auto& [local_id, labels] : ctx.minorities) {
        all_minorities.emplace_back(remap(local_id), std::move(labels));
      }
      tree.num_leaves_ += ctx.leaves;
    }

    // Compact the per-leaf minority labels into CSR form.
    tree.minority_offsets_.assign(
        static_cast<std::size_t>(tree.num_nodes()) + 1, 0);
    for (const auto& [id, labels] : all_minorities) {
      tree.minority_offsets_[static_cast<std::size_t>(id) + 1] =
          to_idx(labels.size());
    }
    for (std::size_t i = 1; i < tree.minority_offsets_.size(); ++i) {
      tree.minority_offsets_[i] += tree.minority_offsets_[i - 1];
    }
    tree.minority_labels_.resize(
        static_cast<std::size_t>(tree.minority_offsets_.back()));
    for (const auto& [id, labels] : all_minorities) {
      std::copy(labels.begin(), labels.end(),
                tree.minority_labels_.begin() +
                    tree.minority_offsets_[static_cast<std::size_t>(id)]);
    }
    return result;
  }

 private:
  struct Split {
    bool found = false;
    int axis = -1;
    idx_t position = 0;  // points sorted_[axis][lo .. lo+position) go left
    real_t cut = 0;
    double score = -1;
  };

  real_t coord(idx_t point, int axis) const {
    return points_[static_cast<std::size_t>(point)][axis];
  }
  idx_t label(idx_t point) const {
    return labels_[static_cast<std::size_t>(point)];
  }

  /// Histogram of labels over [lo, hi); fills ctx.counts and returns the
  /// majority label and whether the range is pure.
  std::pair<idx_t, bool> tally(Context& ctx, idx_t lo, idx_t hi) const {
    std::fill(ctx.counts.begin(), ctx.counts.end(), wgt_t{0});
    for (idx_t i = lo; i < hi; ++i) {
      ++ctx.counts[static_cast<std::size_t>(
          label(sorted_[0][static_cast<std::size_t>(i)]))];
    }
    idx_t majority = 0;
    idx_t distinct = 0;
    for (idx_t l = 0; l < num_labels_; ++l) {
      if (ctx.counts[static_cast<std::size_t>(l)] > 0) {
        ++distinct;
        if (ctx.counts[static_cast<std::size_t>(l)] >
            ctx.counts[static_cast<std::size_t>(majority)]) {
          majority = l;
        }
      }
    }
    return {majority, distinct <= 1};
  }

  /// Best Eq.-1 split over all axes for the (impure) range [lo, hi).
  Split best_gini_split(Context& ctx, idx_t lo, idx_t hi) const {
    Split best;
    const idx_t m = hi - lo;
    double sumsq_total = 0;
    for (idx_t l = 0; l < num_labels_; ++l) {
      const double c =
          static_cast<double>(ctx.counts[static_cast<std::size_t>(l)]);
      sumsq_total += c * c;
    }
    for (int axis = 0; axis < options_.dim; ++axis) {
      const auto& ord = sorted_[axis];
      const real_t span_lo = coord(ord[static_cast<std::size_t>(lo)], axis);
      const real_t span_hi = coord(ord[static_cast<std::size_t>(hi - 1)], axis);
      if (span_lo == span_hi) continue;  // degenerate axis
      const real_t width = span_hi - span_lo;
      std::fill(ctx.left_counts.begin(), ctx.left_counts.end(), wgt_t{0});
      double sumsq_left = 0;
      double sumsq_right = sumsq_total;
      for (idx_t i = 0; i + 1 < m; ++i) {
        const idx_t p = ord[static_cast<std::size_t>(lo + i)];
        const idx_t lp = label(p);
        // Move p from the right side to the left side; both sums update in
        // O(1): (c+1)^2 - c^2 = 2c+1 and c^2 - (c-1)^2 = 2c-1.
        const double cl =
            static_cast<double>(ctx.left_counts[static_cast<std::size_t>(lp)]);
        const double cr =
            static_cast<double>(ctx.counts[static_cast<std::size_t>(lp)]) - cl;
        sumsq_left += 2 * cl + 1;
        sumsq_right -= 2 * cr - 1;
        ++ctx.left_counts[static_cast<std::size_t>(lp)];
        const real_t c0 = coord(p, axis);
        const real_t c1 = coord(ord[static_cast<std::size_t>(lo + i + 1)], axis);
        if (c0 == c1) continue;  // hyperplane must separate distinct coords
        double score = std::sqrt(sumsq_left) + std::sqrt(sumsq_right);
        if (options_.gap_alpha > 0) {
          // Gap preference: wider empty corridors score higher. Scaled by m
          // so it is commensurate with the count-scaled purity term.
          score += options_.gap_alpha * static_cast<double>(m) *
                   static_cast<double>((c1 - c0) / width);
        }
        if (score > best.score) {
          best.found = true;
          best.axis = axis;
          best.position = i + 1;
          best.cut = 0.5 * (c0 + c1);
          best.score = score;
        }
      }
    }
    return best;
  }

  /// Median split along the longest non-degenerate axis; used for oversized
  /// pure nodes (paper's max_p rule; the split index is useless there).
  Split median_split(idx_t lo, idx_t hi) const {
    Split best;
    const idx_t m = hi - lo;
    // Order axes by extent, try the longest first (manual ordering of at
    // most three entries; std::sort on the partial array trips GCC's
    // -Warray-bounds).
    std::array<int, 3> axes{0, 1, 2};
    std::array<real_t, 3> ext{};
    for (int a = 0; a < options_.dim; ++a) {
      ext[static_cast<std::size_t>(a)] =
          coord(sorted_[a][static_cast<std::size_t>(hi - 1)], a) -
          coord(sorted_[a][static_cast<std::size_t>(lo)], a);
    }
    for (int i = 1; i < options_.dim; ++i) {
      for (int j = i; j > 0 &&
                      ext[static_cast<std::size_t>(axes[static_cast<std::size_t>(j)])] >
                          ext[static_cast<std::size_t>(
                              axes[static_cast<std::size_t>(j - 1)])];
           --j) {
        std::swap(axes[static_cast<std::size_t>(j)],
                  axes[static_cast<std::size_t>(j - 1)]);
      }
    }
    for (int ai = 0; ai < options_.dim; ++ai) {
      const int axis = axes[static_cast<std::size_t>(ai)];
      if (ext[static_cast<std::size_t>(axis)] <= 0) continue;
      const auto& ord = sorted_[axis];
      // Find the split nearest m/2 where coordinates actually differ.
      const idx_t mid = m / 2;
      for (idx_t delta = 0; delta < m; ++delta) {
        for (int sign = -1; sign <= 1; sign += 2) {
          const idx_t pos = mid + sign * delta;
          if (pos < 1 || pos >= m) continue;
          const real_t c0 = coord(ord[static_cast<std::size_t>(lo + pos - 1)], axis);
          const real_t c1 = coord(ord[static_cast<std::size_t>(lo + pos)], axis);
          if (c0 == c1) continue;
          best.found = true;
          best.axis = axis;
          best.position = pos;
          best.cut = 0.5 * (c0 + c1);
          return best;
        }
      }
    }
    return best;
  }

  /// Splits [lo, hi) at `split`, stable-partitioning every axis order so
  /// each side stays sorted. Returns the boundary index. Touches only the
  /// [lo, hi) slices of the shared arrays, so disjoint ranges can split
  /// concurrently.
  idx_t apply_split(Context& ctx, const Split& split, idx_t lo, idx_t hi) {
    const auto& ord = sorted_[split.axis];
    for (idx_t i = lo; i < lo + split.position; ++i) {
      side_[static_cast<std::size_t>(ord[static_cast<std::size_t>(i)])] = 0;
    }
    for (idx_t i = lo + split.position; i < hi; ++i) {
      side_[static_cast<std::size_t>(ord[static_cast<std::size_t>(i)])] = 1;
    }
    ctx.scratch.resize(static_cast<std::size_t>(hi - lo));
    for (int a = 0; a < options_.dim; ++a) {
      auto& arr = sorted_[a];
      idx_t out_left = lo;
      idx_t out_right = 0;
      for (idx_t i = lo; i < hi; ++i) {
        const idx_t p = arr[static_cast<std::size_t>(i)];
        if (side_[static_cast<std::size_t>(p)] == 0) {
          arr[static_cast<std::size_t>(out_left++)] = p;
        } else {
          ctx.scratch[static_cast<std::size_t>(out_right++)] = p;
        }
      }
      std::copy(ctx.scratch.begin(), ctx.scratch.begin() + out_right,
                arr.begin() + out_left);
    }
    return lo + split.position;
  }

  void make_leaf(Context& ctx, idx_t id, idx_t lo, idx_t hi, idx_t majority,
                 bool pure) {
    TreeNode& nd = ctx.nodes[static_cast<std::size_t>(id)];
    nd.axis = -1;
    nd.label = majority;
    nd.pure = pure;
    nd.count = hi - lo;
    ++ctx.leaves;
    if (point_leaf_ != nullptr) {
      for (idx_t i = lo; i < hi; ++i) {
        point_leaf_[static_cast<std::size_t>(
            sorted_[0][static_cast<std::size_t>(i)])] = id;
      }
    }
    if (!pure) {
      std::vector<idx_t> minorities;
      for (idx_t l = 0; l < num_labels_; ++l) {
        if (l != majority && ctx.counts[static_cast<std::size_t>(l)] > 0) {
          minorities.push_back(l);
        }
      }
      ctx.minorities.emplace_back(id, std::move(minorities));
    }
  }

  /// Exact point bounding box of [lo, hi): the sorted order per axis makes
  /// each extent the first/last coordinate in O(1).
  BBox range_bounds(idx_t lo, idx_t hi) const {
    BBox box;
    box.lo = Vec3{0, 0, 0};
    box.hi = Vec3{0, 0, 0};
    for (int a = 0; a < options_.dim; ++a) {
      box.lo[a] = coord(sorted_[a][static_cast<std::size_t>(lo)], a);
      box.hi[a] = coord(sorted_[a][static_cast<std::size_t>(hi - 1)], a);
    }
    return box;
  }

  /// Pooled context `i`, reset for this induction. The pool is a deque, so
  /// growing it never invalidates references to earlier contexts.
  Context& context(std::size_t i) {
    while (ws_.contexts.size() <= i) ws_.contexts.emplace_back();
    Context& ctx = ws_.contexts[i];
    ctx.reset(num_labels_);
    return ctx;
  }

  bool order_less(idx_t x, idx_t y, int axis) const {
    const real_t cx = coord(x, axis);
    const real_t cy = coord(y, axis);
    if (cx != cy) return cx < cy;
    return x < y;  // tie-break: makes the order a strict total order
  }

  /// Fills sorted_[a] (a < dim) with indices 0..n-1 ordered by
  /// (coordinate, index). The index tie-break makes the comparator a
  /// strict total order, so the sorted array is *unique*: whether it is
  /// produced by a full std::sort or by the warm repair pass, the result
  /// is bit-identical — the warm start can never change the tree.
  void prepare_orders(idx_t n) {
    // Warm only when the saved orders cover this point count and at least
    // as many axes. A stale seed would still sort correctly (the repair
    // pass is a real sort), just slower; the checks are perf gates.
    const bool warm = ws_.valid && ws_.num_points == points_.size() &&
                      ws_.dim >= options_.dim;
    auto build_axis = [&](int a) {
      auto& arr = sorted_[static_cast<std::size_t>(a)];
      auto& saved = ws_.orders[static_cast<std::size_t>(a)];
      if (warm) {
        // After coherent motion the previous order is nearly sorted:
        // repair it instead of sorting from scratch.
        std::swap(arr, saved);
        repair_sort(arr, a);
      } else {
        arr.resize(points_.size());
        std::iota(arr.begin(), arr.end(), idx_t{0});
        std::sort(arr.begin(), arr.end(),
                  [&](idx_t x, idx_t y) { return order_less(x, y, a); });
      }
      // Save the globally-sorted order now, before the build
      // leaf-partitions the work copy in place.
      saved = arr;
    };
    if (options_.parallel && n >= 4096 && options_.dim > 1) {
      // Axes are independent (separate work/order/repair buffers).
      ThreadPool::global().parallel_tasks(
          static_cast<idx_t>(options_.dim),
          [&](idx_t a) { build_axis(static_cast<int>(a)); });
    } else {
      for (int a = 0; a < options_.dim; ++a) build_axis(a);
    }
    ws_.valid = true;
    ws_.num_points = points_.size();
    ws_.dim = options_.dim;
  }

  /// Adaptive re-sort of a nearly-sorted order array: finds the maximal
  /// ascending runs and merges them pairwise (natural bottom-up merge
  /// sort). O(n) when already sorted, O(n log r) for r runs; falls back to
  /// std::sort when the array is too disordered for merging to pay off.
  void repair_sort(std::vector<idx_t>& arr, int axis) {
    const idx_t n = to_idx(arr.size());
    auto less = [&](idx_t x, idx_t y) { return order_less(x, y, axis); };
    RepairBuffers& rb = ws_.repair[static_cast<std::size_t>(axis)];
    rb.runs.clear();
    rb.runs.push_back(0);
    for (idx_t i = 1; i < n; ++i) {
      if (less(arr[static_cast<std::size_t>(i)],
               arr[static_cast<std::size_t>(i - 1)])) {
        rb.runs.push_back(i);
      }
    }
    rb.runs.push_back(n);
    std::size_t num_runs = rb.runs.size() - 1;
    if (num_runs <= 1) return;  // already sorted
    if (num_runs > static_cast<std::size_t>(n / 8) + 1) {
      std::sort(arr.begin(), arr.end(), less);
      return;
    }
    rb.scratch.resize(arr.size());
    std::vector<idx_t>* src = &arr;
    std::vector<idx_t>* dst = &rb.scratch;
    while (num_runs > 1) {
      rb.runs_next.clear();
      rb.runs_next.push_back(rb.runs.front());
      std::size_t r = 0;
      while (r + 1 < num_runs) {
        const auto a = static_cast<std::ptrdiff_t>(rb.runs[r]);
        const auto b = static_cast<std::ptrdiff_t>(rb.runs[r + 1]);
        const auto c = static_cast<std::ptrdiff_t>(rb.runs[r + 2]);
        std::merge(src->begin() + a, src->begin() + b, src->begin() + b,
                   src->begin() + c, dst->begin() + a, less);
        rb.runs_next.push_back(rb.runs[r + 2]);
        r += 2;
      }
      if (r < num_runs) {  // odd run count: carry the last run over
        const auto a = static_cast<std::ptrdiff_t>(rb.runs[r]);
        const auto b = static_cast<std::ptrdiff_t>(rb.runs[r + 1]);
        std::copy(src->begin() + a, src->begin() + b, dst->begin() + a);
        rb.runs_next.push_back(rb.runs[r + 1]);
      }
      std::swap(rb.runs, rb.runs_next);
      std::swap(src, dst);
      num_runs = rb.runs.size() - 1;
    }
    if (src != &arr) std::copy(src->begin(), src->end(), arr.begin());
  }

  void process(Context& ctx, const Item& item) {
    const auto [id, lo, hi] = item;
    const auto [majority, pure] = tally(ctx, lo, hi);
    const idx_t m = hi - lo;
    ctx.nodes[static_cast<std::size_t>(id)].bounds = range_bounds(lo, hi);

    Split split;
    if (pure) {
      const bool oversized = options_.max_pure > 0 && m >= options_.max_pure;
      if (oversized) split = median_split(lo, hi);
      // Pure and small (or unsplittable): leaf.
    } else {
      const bool undersized = options_.max_impure > 0 && m < options_.max_impure;
      if (!undersized) {
        split = best_gini_split(ctx, lo, hi);
        // Mixed labels on coincident coordinates cannot be separated by an
        // axis-parallel plane: fall through to an impure leaf; box queries
        // union all labels present (conservative, never misses).
      }
    }

    if (!split.found) {
      make_leaf(ctx, id, lo, hi, majority, pure);
      return;
    }

    const idx_t boundary = apply_split(ctx, split, lo, hi);
    const idx_t left = ctx.new_node();
    const idx_t right = ctx.new_node();
    TreeNode& nd = ctx.nodes[static_cast<std::size_t>(id)];
    nd.axis = split.axis;
    nd.cut = split.cut;
    nd.left = left;
    nd.right = right;
    nd.label = majority;
    nd.pure = pure;
    nd.count = m;
    ctx.stack.push_back({left, lo, boundary});
    ctx.stack.push_back({right, boundary, hi});
  }

  std::span<const Vec3> points_;
  std::span<const idx_t> labels_;
  idx_t num_labels_;
  TreeInduceOptions options_;

  TreeInduceWorkspace::Impl& ws_;
  // References into the workspace: the per-axis orders consumed
  // (leaf-partitioned) by the build, and the shared point→side scratch.
  std::array<std::vector<idx_t>, 3>& sorted_;
  std::vector<char>& side_;
  idx_t* point_leaf_ = nullptr;
};

InducedTree induce_tree(std::span<const Vec3> points,
                        std::span<const idx_t> labels, idx_t num_labels,
                        const TreeInduceOptions& options) {
  return induce_tree(points, labels, num_labels, options, nullptr);
}

InducedTree induce_tree(std::span<const Vec3> points,
                        std::span<const idx_t> labels, idx_t num_labels,
                        const TreeInduceOptions& options,
                        TreeInduceWorkspace* workspace) {
  require(points.size() == labels.size(),
          "induce_tree: points/labels size mismatch");
  require(num_labels >= 1, "induce_tree: need at least one label");
  require(options.dim == 2 || options.dim == 3,
          "induce_tree: dim must be 2 or 3");
  for (idx_t l : labels) {
    require(l >= 0 && l < num_labels, "induce_tree: label out of range");
  }
  TreeInduceWorkspace local;
  TreeInduceWorkspace& ws = workspace != nullptr ? *workspace : local;
  TreeInducer inducer(points, labels, num_labels, options, *ws.impl_);
  return inducer.run();
}

}  // namespace cpart
