// Axis-parallel decision trees over labeled point sets (paper Section 4.1).
//
// A tree recursively bisects space with axis-parallel hyperplanes. Interior
// nodes hold "coord < cut?" tests (yes → left, matching the paper's Figure 1
// convention); leaves hold the label (partition id) of the points they
// cover, a purity flag, and the point count. Two inductions are built on the
// shared inducer:
//   * descriptor trees (tree/descriptor_tree.hpp): split until every leaf is
//     pure — the subdomain geometric descriptors used for global search;
//   * region trees (tree/region_tree.hpp): the max_p / max_i terminated
//     variant over *all* mesh nodes used to make partitions tree-friendly
//     (paper Section 4.2).
//
// Split selection maximizes the paper's Eq. 1 splitting index
//     sqrt(sum_i |A1_i|^2) + sqrt(sum_i |A2_i|^2)
// over every hyperplane between successive distinct coordinates along each
// of the first `dim` axes, computed incrementally in O(1) per candidate over
// pre-sorted coordinate orders (O(|A| * dim) per node).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "util/common.hpp"

namespace cpart {

class TreeInduceWorkspace;
struct InducedTree;
struct TreeInduceOptions;

struct TreeNode {
  int axis = -1;                 // -1 for leaves
  real_t cut = 0;                // interior: points with coord < cut go left
  idx_t left = kInvalidIndex;
  idx_t right = kInvalidIndex;
  idx_t label = kInvalidIndex;   // majority label of covered points
  bool pure = false;             // all covered points share `label`
  idx_t count = 0;               // number of covered points
  /// Tight bounding box of the points covered by this node. Box queries
  /// test against it rather than the (unbounded) space cell: a subdomain
  /// only "occupies" space near its actual contact points, which removes
  /// the empty-space false positives the paper's Section 6 discusses.
  BBox bounds;
};

class DecisionTree {
 public:
  DecisionTree() = default;

  idx_t num_nodes() const { return to_idx(nodes_.size()); }
  idx_t num_leaves() const { return num_leaves_; }
  idx_t root() const { return root_; }
  bool empty() const { return root_ == kInvalidIndex; }

  const TreeNode& node(idx_t id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }

  /// Longest root-to-leaf path (a single leaf tree has depth 0).
  idx_t max_depth() const;

  /// Descends to the leaf containing p; returns its node id.
  idx_t locate(Vec3 p) const;

  /// Label of the leaf containing p.
  idx_t classify(Vec3 p) const { return node(locate(p)).label; }

  /// Appends the ids of every leaf whose region intersects `box`.
  void collect_box_leaves(const BBox& box, std::vector<idx_t>& out) const;

  /// Sets mask[l] for every label l of a leaf intersecting `box`.
  /// `mask` must be pre-sized to the number of labels and pre-cleared (the
  /// call only sets bits). Impure leaves conservatively set the majority
  /// label and all minority labels recorded at build time.
  void collect_box_labels(const BBox& box, std::vector<char>& mask) const;

  /// Touched-list variant: also appends each label to `touched` the first
  /// time its mask bit is set, so the caller can reset only those entries
  /// (O(|touched|)) instead of clearing the whole mask (O(num_labels)).
  void collect_box_labels(const BBox& box, std::vector<char>& mask,
                          std::vector<idx_t>& touched) const;

  /// Labels present in the (impure) leaf `id` beyond the majority label.
  std::span<const idx_t> minority_labels(idx_t id) const;

 private:
  friend class TreeInducer;
  friend class TreeInduceWorkspace;
  friend DecisionTree assemble_tree(std::vector<TreeNode> nodes, idx_t root,
                                    std::vector<idx_t> minority_offsets,
                                    std::vector<idx_t> minority_labels);

  std::vector<TreeNode> nodes_;
  idx_t root_ = kInvalidIndex;
  idx_t num_leaves_ = 0;
  // Impure-leaf minority labels, CSR-style keyed by node id.
  std::vector<idx_t> minority_offsets_;  // size num_nodes()+1 when present
  std::vector<idx_t> minority_labels_;
};

/// Options for tree induction; the defaults build a descriptor tree.
struct TreeInduceOptions {
  int dim = 3;
  /// 0: pure nodes always become leaves. Otherwise pure nodes with
  /// count >= max_pure are split at the median of their longest axis
  /// (paper Section 4.2, the max_p parameter).
  idx_t max_pure = 0;
  /// 0: impure nodes are split until no separating hyperplane exists.
  /// Otherwise impure nodes with count < max_impure become (impure) leaves
  /// (paper Section 4.2, the max_i parameter).
  idx_t max_impure = 0;
  /// Gap-preferring split selection (paper Section 6 future work): blends
  /// the purity score with the normalized width of the coordinate gap the
  /// hyperplane passes through. 0 disables.
  double gap_alpha = 0.0;
  /// Builds independent subtrees concurrently once the frontier is wide
  /// enough (efficient parallel tree-induction formulations exist — paper
  /// Section 4.1.1 / ScalParC). The resulting tree is geometrically
  /// identical to the sequential one; only node numbering differs.
  bool parallel = false;
  /// When false, InducedTree::point_leaf is left empty (and the per-point
  /// leaf writes are skipped). Descriptor builds never read it.
  bool want_point_leaf = true;
};

/// Reusable cross-call state for induce_tree(). Holds the previous call's
/// globally-sorted per-axis orders — when the same point set is re-induced
/// after coherent motion the orders are nearly sorted, and an adaptive
/// natural-merge repair pass replaces the three full sorts — plus pooled
/// build buffers (per-worker contexts, retired node storage). The warm
/// start is an optimization only: induce_tree() with a workspace returns a
/// result bit-identical to the cold call for the same inputs and options,
/// whatever state the workspace is in. One workspace serves one logical
/// sequence of inductions and must not be shared across threads.
class TreeInduceWorkspace {
 public:
  TreeInduceWorkspace();
  ~TreeInduceWorkspace();
  TreeInduceWorkspace(TreeInduceWorkspace&&) noexcept;
  TreeInduceWorkspace& operator=(TreeInduceWorkspace&&) noexcept;

  /// Drops the saved orders so the next induction sorts from scratch
  /// (pooled buffer capacity is kept). Call when the point set changes
  /// identity, e.g. erosion added contact nodes; a stale seed is never
  /// incorrect, only slower, so this is a performance hint.
  void invalidate();

  /// True when the saved orders will seed the next induction over
  /// `num_points` points.
  bool warm(std::size_t num_points) const;

  /// Returns a retired tree's node storage to the pool so the next
  /// induction reuses its capacity. Leaves `tree` empty.
  void recycle(DecisionTree&& tree);

  struct Impl;

 private:
  friend class TreeInducer;
  friend InducedTree induce_tree(std::span<const Vec3>, std::span<const idx_t>,
                                 idx_t, const TreeInduceOptions&,
                                 TreeInduceWorkspace*);
  std::unique_ptr<Impl> impl_;
};

/// Induction result: the tree plus the leaf id assigned to every input point.
struct InducedTree {
  DecisionTree tree;
  std::vector<idx_t> point_leaf;
  idx_t num_labels = 0;
};

/// Builds a decision tree over `points` with partition labels `labels`
/// (each in [0, num_labels)). See TreeInduceOptions for termination control.
InducedTree induce_tree(std::span<const Vec3> points,
                        std::span<const idx_t> labels, idx_t num_labels,
                        const TreeInduceOptions& options = {});

/// Warm-started variant: `workspace` carries the per-axis sorted orders and
/// recycled buffers across calls (nullptr behaves like the cold overload).
/// The result is bit-identical to the cold call for the same inputs.
InducedTree induce_tree(std::span<const Vec3> points,
                        std::span<const idx_t> labels, idx_t num_labels,
                        const TreeInduceOptions& options,
                        TreeInduceWorkspace* workspace);

}  // namespace cpart
