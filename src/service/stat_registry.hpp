// Service-level statistics: per-session health rolled up, step latencies
// kept as samples for percentile reporting.
//
// Each session accumulates its own PipelineHealth in its SessionContext;
// the registry's job is the service view — one merged health record (via
// PipelineHealth::merge), service-wide step counts, and latency
// percentiles over every recorded step. Latencies are also retained per
// session so a caller can compute class-level percentiles (e.g. "p99 of
// the small sessions while a large one is co-resident" — the isolation
// metric bench_service reports).
#pragma once

#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "runtime/health.hpp"
#include "runtime/session_context.hpp"

namespace cpart {

struct ServiceStats {
  idx_t sessions = 0;          // contexts folded into this snapshot
  wgt_t steps = 0;             // steps those contexts recorded
  PipelineHealth health;       // merge() over every session's accumulator
  idx_t latency_samples = 0;   // recorded step latencies
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

class StatRegistry {
 public:
  /// Records one completed step's wall latency. Thread-safe — called from
  /// session jobs on pool workers.
  void record_step(const std::string& session, double latency_ms);

  /// Copy of one session's recorded latencies (empty if none).
  std::vector<double> session_latencies(const std::string& session) const;

  idx_t samples() const;

  /// The service view: every context's health merged, plus percentiles
  /// over all recorded latencies.
  ServiceStats aggregate(
      std::span<const SessionContext* const> contexts) const;

  /// Nearest-rank percentile of an ascending-sorted sample set; q in
  /// [0, 1]. 0 on an empty set.
  static double percentile(const std::vector<double>& sorted, double q);

 private:
  mutable std::mutex mutex_;
  std::vector<double> latencies_ms_;
  std::map<std::string, std::vector<double>> by_session_;
};

}  // namespace cpart
