// Multi-tenant simulation service: session lifecycle over the shared pool.
//
// A session is one DistributedSim plus everything that scopes it: a
// SessionContext (seeds, checkpoint subdirectory, fault injector, health
// accumulator), a TaskArena (its fair share of the process's WorkerPool),
// and its step products. The manager owns admission control — a bounded
// number of resident sessions and a resident-bytes budget; sessions beyond
// it queue (or are rejected) and are admitted as residents leave — and the
// lifecycle verbs: create, step, suspend, resume, destroy.
//
// Execution model: step() queues work on the session's arena and returns;
// pool workers execute the steps. Each session runs one step per queued
// arena item and requeues itself for the next, so the pool's deficit-
// round-robin scheduler re-decides between every step — a session with a
// thousand queued steps cannot monopolize the service, and a large
// session's long step occupies exactly one worker (its inner dispatches
// run inline, see below). Lifecycle calls are driver-thread operations:
// call them from one thread; only the step execution itself is concurrent.
//
// Bit-identity: a session's step jobs run on pool workers, so in_worker()
// is true for their entire body and every dispatch the sim issues runs
// inline at width 1. By the width-independence invariant
// (docs/parallelism.md) that is bit-identical to running the same sim
// alone at any thread count — per-session results do not depend on the
// pool size, co-residents, or the scheduler's interleaving. Fault
// schedules are per-session pure functions of (service seed, session key)
// via SessionContext, so they replay identically too.
//
// Suspend/resume ride the rank-death recovery machinery: suspend commits a
// durable checkpoint at the current step and releases both the rank states
// and the arena; resume re-admits under the same budget, rebuilds the
// arena, and restores through DistributedSim::resume — bit-identical to
// never having suspended.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/distributed_sim.hpp"
#include "parallel/task_arena.hpp"
#include "parallel/worker_pool.hpp"
#include "runtime/session_context.hpp"
#include "service/stat_registry.hpp"
#include "sim/impact_sim.hpp"

namespace cpart {

struct SessionConfig {
  std::string name;
  ImpactSimConfig sim{};
  /// Per-sim knobs. checkpoint_dir is overridden with the session's
  /// private subdirectory (SessionContext::checkpoint_dir) whenever the
  /// service has a checkpoint root.
  DistributedSimConfig dist{};
  /// Fair-share weight of this session's arena (see ArenaOptions::weight).
  idx_t arena_weight = 1;
  /// Optional cap on the session's dispatch width (ArenaOptions).
  unsigned max_parallelism = 0;
  /// Arm per-session fault injection: `faults` gives the schedule shape;
  /// its seed is replaced by the session's derived fault domain.
  bool inject_faults = false;
  FaultConfig faults{};
};

struct ServiceConfig {
  /// Service root seed; every session derives its streams from it.
  std::uint64_t seed = 0;
  /// Checkpoint root directory; sessions get `<root>/<name>`. Empty
  /// disables durability (sessions cannot suspend).
  std::string checkpoint_root;
  /// Admission control: bounded resident sessions ...
  idx_t max_resident_sessions = 64;
  /// ... and a resident-bytes budget over the sims' rank-state footprint
  /// (0 = unmetered). A session that would not fit waits in the pending
  /// queue. The first session is always admitted even when it alone
  /// exceeds the budget, so an oversized session reports its true cost
  /// instead of starving forever.
  std::size_t resident_bytes_budget = 0;
  /// Full service: queue the create (admit later, FIFO) or reject it.
  bool queue_when_full = true;
};

enum class SessionState { kPending, kResident, kSuspended };

const char* session_state_name(SessionState state);

class SessionManager {
 public:
  SessionManager(WorkerPool& pool, ServiceConfig config);
  /// Drains and destroys every session.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a session and tries to admit it. False when the service is
  /// full and queue_when_full is off (the session is not registered).
  bool create(const SessionConfig& config);

  /// Queues `count` simulation steps. Snapshot indices continue from the
  /// session's cursor; steps execute on pool workers, one arena item per
  /// step. Resident sessions only.
  void step(const std::string& name, idx_t count = 1);

  /// Blocks until the session has no queued or executing steps.
  void wait(const std::string& name);
  void wait_all();

  /// Durable commit + release of the session's resident state and arena.
  /// False (still resident) when the commit fails or the service has no
  /// checkpoint root. Frees budget, so a pending session may be admitted.
  bool suspend(const std::string& name);

  /// Re-admits a suspended session under the same budget rules and
  /// restores it from its suspend checkpoint. False when admission has no
  /// room (try again after a suspend/destroy) or the restore fails.
  bool resume(const std::string& name);

  /// Drains (if resident) and removes the session. Its health is retired
  /// into the service totals; checkpoint files stay on disk.
  void destroy(const std::string& name);

  SessionState state(const std::string& name) const;

  /// This session's completed step reports, in step order, cleared from
  /// the session. Rethrows the session's stored error, if any.
  std::vector<DistributedStepReport> take_reports(const std::string& name);

  const SessionContext& context(const std::string& name) const;

  /// The resident sim (nullptr while pending/suspended) — for oracle
  /// comparisons by tests and benches.
  DistributedSim* sim(const std::string& name);

  ArenaStats arena_stats(const std::string& name) const;

  idx_t resident_sessions() const;
  idx_t pending_sessions() const;
  idx_t suspended_sessions() const;
  /// Resident-bytes currently accounted against the budget. Exactly what
  /// admission added for each resident session, so it returns to zero
  /// when every session is suspended or destroyed (leak check).
  std::size_t resident_bytes() const;

  StatRegistry& stats() { return registry_; }
  /// Service totals: live sessions' health merged with retired sessions',
  /// plus latency percentiles over every recorded step.
  ServiceStats service_stats() const;
  SchedulerStats scheduler_stats() const { return pool_.stats(); }

 private:
  struct Session {
    SessionConfig config;
    SessionContext context;
    SessionState state = SessionState::kPending;
    std::unique_ptr<ImpactSim> sim;
    std::unique_ptr<TaskArena> arena;
    std::unique_ptr<DistributedSim> dist;
    std::size_t accounted_bytes = 0;  // what admission charged the budget
    // Step-pump state, guarded by m (touched by pool workers).
    std::mutex m;
    idx_t steps_requested = 0;
    idx_t next_snapshot = 0;
    bool job_active = false;
    std::vector<DistributedStepReport> reports;
    std::exception_ptr error;

    Session(SessionConfig cfg, SessionContext ctx)
        : config(std::move(cfg)), context(std::move(ctx)) {}
  };

  std::shared_ptr<Session> find(const std::string& name) const;

  /// Admits pending sessions FIFO while the resident count and byte
  /// budget allow: builds the ImpactSim (for the size estimate), then the
  /// arena and the DistributedSim, and charges the actual footprint.
  void admit_pending();
  /// True when a session of `estimate` bytes fits right now.
  bool admission_fits(std::size_t estimate) const;
  void make_resident(Session& s);

  /// One queued step: runs it, records latency/health/report, requeues
  /// itself while more steps are requested.
  void pump(const std::shared_ptr<Session>& s);

  WorkerPool& pool_;
  ServiceConfig config_;
  StatRegistry registry_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::deque<std::string> pending_;  // FIFO admission queue
  std::uint64_t next_session_key_ = 0;
  std::size_t resident_bytes_ = 0;
  // Retired (destroyed) sessions' contribution to service totals.
  idx_t retired_sessions_ = 0;
  wgt_t retired_steps_ = 0;
  PipelineHealth retired_health_{};
};

}  // namespace cpart
