#include "service/stat_registry.hpp"

#include <algorithm>
#include <cmath>

namespace cpart {

void StatRegistry::record_step(const std::string& session,
                               double latency_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_ms_.push_back(latency_ms);
  by_session_[session].push_back(latency_ms);
}

std::vector<double> StatRegistry::session_latencies(
    const std::string& session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_session_.find(session);
  return it == by_session_.end() ? std::vector<double>{} : it->second;
}

idx_t StatRegistry::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return to_idx(latencies_ms_.size());
}

double StatRegistry::percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

ServiceStats StatRegistry::aggregate(
    std::span<const SessionContext* const> contexts) const {
  ServiceStats s;
  for (const SessionContext* ctx : contexts) {
    if (ctx == nullptr) continue;
    ++s.sessions;
    s.steps += ctx->steps_recorded();
    s.health.merge(ctx->health());
  }
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = latencies_ms_;
  }
  std::sort(sorted.begin(), sorted.end());
  s.latency_samples = to_idx(sorted.size());
  if (!sorted.empty()) {
    double sum = 0;
    for (double v : sorted) sum += v;
    s.mean_ms = sum / static_cast<double>(sorted.size());
    s.p50_ms = percentile(sorted, 0.50);
    s.p95_ms = percentile(sorted, 0.95);
    s.p99_ms = percentile(sorted, 0.99);
    s.max_ms = sorted.back();
  }
  return s;
}

}  // namespace cpart
