#include "service/session_manager.hpp"

#include <algorithm>
#include <utility>

#include "util/common.hpp"
#include "util/timer.hpp"

namespace cpart {

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kPending: return "pending";
    case SessionState::kResident: return "resident";
    case SessionState::kSuspended: return "suspended";
  }
  return "?";
}

SessionManager::SessionManager(WorkerPool& pool, ServiceConfig config)
    : pool_(pool), config_(std::move(config)) {
  require(config_.max_resident_sessions > 0,
          "SessionManager: max_resident_sessions must be positive");
}

SessionManager::~SessionManager() {
  // Drain in-flight steps before tearing down arenas; errors stay stored in
  // the sessions and die with them.
  for (auto& [name, s] : sessions_) {
    if (s->arena) s->arena->drain();
  }
}

std::shared_ptr<SessionManager::Session> SessionManager::find(
    const std::string& name) const {
  const auto it = sessions_.find(name);
  require(it != sessions_.end(), "SessionManager: unknown session " + name);
  return it->second;
}

bool SessionManager::admission_fits(std::size_t estimate) const {
  const idx_t resident =
      to_idx(std::count_if(sessions_.begin(), sessions_.end(), [](auto& e) {
        return e.second->state == SessionState::kResident;
      }));
  if (resident >= config_.max_resident_sessions) return false;
  if (config_.resident_bytes_budget == 0) return true;
  // First-session override: an oversized sim may run alone.
  if (resident == 0) return true;
  return resident_bytes_ + estimate <= config_.resident_bytes_budget;
}

void SessionManager::make_resident(Session& s) {
  if (!s.sim) s.sim = std::make_unique<ImpactSim>(s.config.sim);
  if (!s.arena) {
    ArenaOptions opts;
    opts.weight = s.config.arena_weight;
    opts.max_parallelism = s.config.max_parallelism;
    s.arena = std::make_unique<TaskArena>(pool_, opts);
  }
  if (!s.dist) {
    DistributedSimConfig dc = s.config.dist;
    if (!s.context.checkpoint_dir().empty())
      dc.checkpoint_dir = s.context.checkpoint_dir();
    s.dist = std::make_unique<DistributedSim>(*s.sim, dc);
    if (s.config.inject_faults) {
      // Re-arming is idempotent: the schedule is a pure function of the
      // session's fault seed, so a resume rebuilds the identical injector.
      s.dist->exchange().set_fault_injector(
          &s.context.arm_faults(s.config.faults));
    }
  } else if (s.dist->suspended()) {
    require(s.dist->resume(), "SessionManager: resume failed for session " +
                                  s.config.name);
  }
  s.accounted_bytes = s.dist->resident_bytes();
  resident_bytes_ += s.accounted_bytes;
  s.state = SessionState::kResident;
}

void SessionManager::admit_pending() {
  while (!pending_.empty()) {
    const auto it = sessions_.find(pending_.front());
    if (it == sessions_.end()) {  // destroyed while pending
      pending_.pop_front();
      continue;
    }
    Session& s = *it->second;
    // Build the ImpactSim first: the admission estimate needs the mesh
    // dimensions, and the sim itself is cheap (snapshots are generated on
    // demand) — only the DistributedSim rank states are metered.
    if (!s.sim) s.sim = std::make_unique<ImpactSim>(s.config.sim);
    const Mesh& mesh = s.sim->initial_mesh();
    const std::size_t estimate = DistributedSim::estimate_resident_bytes(
        mesh.num_nodes(), mesh.num_elements(), s.config.dist.decomposition.k);
    if (!admission_fits(estimate)) return;  // FIFO: head blocks the queue
    pending_.pop_front();
    make_resident(s);
  }
}

bool SessionManager::create(const SessionConfig& config) {
  require(!config.name.empty(), "SessionManager: session needs a name");
  require(sessions_.find(config.name) == sessions_.end(),
          "SessionManager: duplicate session " + config.name);
  SessionContextConfig ctx;
  ctx.name = config.name;
  ctx.service_seed = config_.seed;
  ctx.session_key = next_session_key_;
  ctx.checkpoint_root = config_.checkpoint_root;
  auto s = std::make_shared<Session>(config, SessionContext(ctx));
  // The key is burned even on rejection so a retry derives the same
  // schedule only if it lands in the same slot — admission order is part of
  // the service seed contract, documented in docs/service.md.
  ++next_session_key_;
  sessions_.emplace(config.name, s);
  pending_.push_back(config.name);
  admit_pending();
  if (s->state == SessionState::kPending && !config_.queue_when_full) {
    pending_.erase(std::find(pending_.begin(), pending_.end(), config.name));
    sessions_.erase(config.name);
    return false;
  }
  return true;
}

void SessionManager::pump(const std::shared_ptr<Session>& s) {
  idx_t snapshot;
  {
    std::lock_guard<std::mutex> lock(s->m);
    if (s->steps_requested == 0 || s->error) {
      s->job_active = false;
      return;
    }
    snapshot = s->next_snapshot;
  }
  Timer timer;
  DistributedStepReport report;
  std::exception_ptr error;
  try {
    report = s->dist->run_step(snapshot);
  } catch (...) {
    error = std::current_exception();
  }
  const double latency_ms = timer.milliseconds();
  bool more = false;
  {
    std::lock_guard<std::mutex> lock(s->m);
    if (error) {
      s->error = error;
      s->steps_requested = 0;
    } else {
      registry_.record_step(s->config.name, latency_ms);
      s->context.record_step(report.health);
      s->reports.push_back(std::move(report));
      ++s->next_snapshot;
      --s->steps_requested;
      more = s->steps_requested > 0;
    }
    s->job_active = more;
  }
  // Requeue as a fresh arena item (instead of looping here) so the DRR
  // scheduler re-decides between every step — this is the fairness
  // mechanism, not an optimization.
  if (more) {
    auto self = s;
    s->arena->submit([this, self] { pump(self); });
  }
}

void SessionManager::step(const std::string& name, idx_t count) {
  auto s = find(name);
  require(s->state == SessionState::kResident,
          "SessionManager::step: session " + name + " is " +
              session_state_name(s->state));
  if (count <= 0) return;
  bool start = false;
  {
    std::lock_guard<std::mutex> lock(s->m);
    s->steps_requested += count;
    if (!s->job_active) {
      s->job_active = true;
      start = true;
    }
  }
  if (start) {
    auto self = s;
    s->arena->submit([this, self] { pump(self); });
  }
}

void SessionManager::wait(const std::string& name) {
  auto s = find(name);
  if (s->arena) s->arena->drain();
}

void SessionManager::wait_all() {
  for (auto& [name, s] : sessions_) {
    if (s->arena) s->arena->drain();
  }
}

bool SessionManager::suspend(const std::string& name) {
  auto s = find(name);
  if (s->state == SessionState::kSuspended) return true;
  require(s->state == SessionState::kResident,
          "SessionManager::suspend: session " + name + " is pending");
  s->arena->drain();
  if (!s->dist->suspend()) return false;  // keep-last-good: still resident
  s->arena.reset();  // unregisters the queue; drained, so safe
  require(resident_bytes_ >= s->accounted_bytes,
          "SessionManager: resident-bytes accounting underflow");
  resident_bytes_ -= s->accounted_bytes;
  s->accounted_bytes = 0;
  s->state = SessionState::kSuspended;
  admit_pending();
  return true;
}

bool SessionManager::resume(const std::string& name) {
  auto s = find(name);
  if (s->state == SessionState::kResident) return true;
  require(s->state == SessionState::kSuspended,
          "SessionManager::resume: session " + name + " is pending");
  const Mesh& mesh = s->sim->initial_mesh();
  const std::size_t estimate = DistributedSim::estimate_resident_bytes(
      mesh.num_nodes(), mesh.num_elements(), s->config.dist.decomposition.k);
  if (!admission_fits(estimate)) return false;
  if (!s->dist->resume()) return false;
  ArenaOptions opts;
  opts.weight = s->config.arena_weight;
  opts.max_parallelism = s->config.max_parallelism;
  s->arena = std::make_unique<TaskArena>(pool_, opts);
  s->accounted_bytes = s->dist->resident_bytes();
  resident_bytes_ += s->accounted_bytes;
  s->state = SessionState::kResident;
  return true;
}

void SessionManager::destroy(const std::string& name) {
  auto s = find(name);
  if (s->arena) s->arena->drain();
  if (s->state == SessionState::kResident) {
    require(resident_bytes_ >= s->accounted_bytes,
            "SessionManager: resident-bytes accounting underflow");
    resident_bytes_ -= s->accounted_bytes;
  }
  ++retired_sessions_;
  retired_steps_ += s->context.steps_recorded();
  retired_health_.merge(s->context.health());
  const auto pending_it = std::find(pending_.begin(), pending_.end(), name);
  if (pending_it != pending_.end()) pending_.erase(pending_it);
  sessions_.erase(name);
  admit_pending();
}

SessionState SessionManager::state(const std::string& name) const {
  return find(name)->state;
}

std::vector<DistributedStepReport> SessionManager::take_reports(
    const std::string& name) {
  auto s = find(name);
  std::lock_guard<std::mutex> lock(s->m);
  if (s->error) {
    const std::exception_ptr e = std::exchange(s->error, nullptr);
    std::rethrow_exception(e);
  }
  return std::exchange(s->reports, {});
}

const SessionContext& SessionManager::context(const std::string& name) const {
  return find(name)->context;
}

DistributedSim* SessionManager::sim(const std::string& name) {
  auto s = find(name);
  return s->state == SessionState::kResident ? s->dist.get() : nullptr;
}

ArenaStats SessionManager::arena_stats(const std::string& name) const {
  auto s = find(name);
  require(s->arena != nullptr,
          "SessionManager::arena_stats: session " + name + " has no arena");
  return s->arena->stats();
}

idx_t SessionManager::resident_sessions() const {
  return to_idx(std::count_if(sessions_.begin(), sessions_.end(), [](auto& e) {
    return e.second->state == SessionState::kResident;
  }));
}

idx_t SessionManager::pending_sessions() const {
  return to_idx(pending_.size());
}

idx_t SessionManager::suspended_sessions() const {
  return to_idx(std::count_if(sessions_.begin(), sessions_.end(), [](auto& e) {
    return e.second->state == SessionState::kSuspended;
  }));
}

std::size_t SessionManager::resident_bytes() const { return resident_bytes_; }

ServiceStats SessionManager::service_stats() const {
  std::vector<const SessionContext*> contexts;
  contexts.reserve(sessions_.size());
  for (const auto& [name, s] : sessions_) contexts.push_back(&s->context);
  ServiceStats stats = registry_.aggregate(contexts);
  stats.sessions += retired_sessions_;
  stats.steps += retired_steps_;
  stats.health.merge(retired_health_);
  return stats;
}

}  // namespace cpart
