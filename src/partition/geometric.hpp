// Geometry-aware multi-constraint partitioning (paper Section 6: "the
// development of better geometry-aware multi-constraint partitioning
// algorithms can greatly improve the performance of this approach").
//
// A recursive coordinate bisection over the mesh nodes that balances a
// *vector* of vertex weights at every cut: for each candidate axis the cut
// position minimizing the worst per-constraint deviation from the target
// fraction is found via prefix sums over the sorted order, and the best
// axis wins. The result is balanced in all constraints and has perfectly
// axes-parallel boundaries by construction — the region-tree adjustment
// becomes nearly a no-op and the decision-tree descriptors stay tiny; the
// trade-off is that edges are ignored, so the cut is whatever geometry
// gives (the G' refinement step recovers most of it).
#pragma once

#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "util/common.hpp"

namespace cpart {

struct GeometricPartitionOptions {
  idx_t k = 2;
  int dim = 3;
  idx_t ncon = 1;
};

/// Partitions `points` into k parts balancing every component of the
/// interleaved weight vectors `vwgt` (size points.size() * ncon; empty
/// means unit weights, ncon forced to 1). Returns one label per point.
std::vector<idx_t> geometric_multiconstraint_partition(
    std::span<const Vec3> points, std::span<const wgt_t> vwgt,
    const GeometricPartitionOptions& options);

}  // namespace cpart
