#include "partition/partitioner.hpp"

#include <algorithm>

#include "graph/graph_metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "partition/kway_multilevel.hpp"
#include "util/seed_stream.hpp"
#include "util/timer.hpp"

namespace cpart {

Partitioner::Partitioner(PartitionerConfig config)
    : config_(std::move(config)) {
  require(config_.options.k >= 1, "Partitioner: k must be >= 1");
  require(config_.hierarchy.groups >= 0,
          "Partitioner: hierarchy.groups must be >= 0");
}

idx_t Partitioner::groups() const {
  return std::clamp<idx_t>(config_.hierarchy.groups, 1, k());
}

std::vector<idx_t> Partitioner::group_of_parts() const {
  return part_groups(k(), groups());
}

std::vector<idx_t> Partitioner::partition(const CsrGraph& g,
                                          HierarchyStats* stats) const {
  if (hierarchical()) {
    HierarchicalResult result =
        hierarchical_partition(g, config_.options, config_.hierarchy);
    if (stats != nullptr) *stats = result.stats;
    return std::move(result.part);
  }
  Timer timer;
  std::vector<idx_t> part =
      config_.scheme == PartitionScheme::kDirectKway
          ? partition_graph_kway(g, config_.options)
          : partition_graph(g, config_.options);
  if (stats != nullptr) {
    stats->groups = 1;
    stats->local_ms = timer.milliseconds();
    stats->final_cut = edge_cut(g, part);
    stats->final_balance = max_load_imbalance(g, part, k());
    stats->group_cut = stats->final_cut;
    stats->group_balance = 1.0;
  }
  return part;
}

std::vector<idx_t> Partitioner::repartition(const CsrGraph& g,
                                            std::span<const idx_t> old_part,
                                            const RepartitionOptions& options,
                                            bool* moved_cross_group) const {
  require(old_part.size() == static_cast<std::size_t>(g.num_vertices()),
          "Partitioner::repartition: old partition size mismatch");
  if (moved_cross_group != nullptr) *moved_cross_group = false;
  RepartitionOptions ro = options;
  ro.k = k();
  const idx_t num_groups = groups();
  if (num_groups <= 1) {
    return repartition_graph(g, old_part, ro);
  }

  // Vertex -> group through the contiguous part->group assignment.
  const std::vector<idx_t> group_of_part = part_groups(k(), num_groups);
  std::vector<idx_t> vertex_group(static_cast<std::size_t>(g.num_vertices()));
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    const idx_t p = old_part[static_cast<std::size_t>(v)];
    require(p >= 0 && p < k(),
            "Partitioner::repartition: old partition id out of range");
    vertex_group[static_cast<std::size_t>(v)] =
        group_of_part[static_cast<std::size_t>(p)];
  }

  // Escalate to one global repartition only when some group's load drifted
  // past the threshold — the expensive cross-group migration is the
  // exception, not the steady state.
  const double imbalance =
      hierarchy_group_imbalance(g, vertex_group, k(), num_groups);
  if (imbalance > config_.hierarchy.cross_group_threshold) {
    if (moved_cross_group != nullptr) *moved_cross_group = true;
    return repartition_graph(g, old_part, ro);
  }

  // Group-local repartition: adapt each group's induced subgraph to its
  // share of the parts, independently and in parallel. Per-group seeds
  // derive from (seed, group) only, so labels are thread-count invariant.
  std::vector<idx_t> part(old_part.begin(), old_part.end());
  ThreadPool::global().parallel_tasks(num_groups, [&](idx_t grp) {
    const InducedSubgraph sub = induce_subgraph(g, vertex_group, grp);
    if (sub.graph.num_vertices() == 0) return;
    const idx_t first = parts_begin(grp, k(), num_groups);
    const idx_t group_k = parts_begin(grp + 1, k(), num_groups) - first;
    std::vector<idx_t> sub_old(
        static_cast<std::size_t>(sub.graph.num_vertices()));
    for (idx_t sv = 0; sv < sub.graph.num_vertices(); ++sv) {
      sub_old[static_cast<std::size_t>(sv)] =
          old_part[static_cast<std::size_t>(
              sub.parent[static_cast<std::size_t>(sv)])] -
          first;
    }
    RepartitionOptions sub_ro = ro;
    sub_ro.k = group_k;
    sub_ro.seed = seed_mix(ro.seed, static_cast<std::uint64_t>(grp));
    const std::vector<idx_t> sub_new =
        repartition_graph(sub.graph, sub_old, sub_ro);
    for (idx_t sv = 0; sv < sub.graph.num_vertices(); ++sv) {
      part[static_cast<std::size_t>(
          sub.parent[static_cast<std::size_t>(sv)])] =
          first + sub_new[static_cast<std::size_t>(sv)];
    }
  });
  return part;
}

}  // namespace cpart
