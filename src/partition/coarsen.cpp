#include "partition/coarsen.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/thread_pool.hpp"

namespace cpart {

namespace {

/// Greedy serial heavy-edge matching in permutation order: each unmatched
/// vertex grabs its heaviest unmatched neighbour (first maximum in adjacency
/// order). Writes into `match`; vertices left without a partner match
/// themselves. Skips vertices already matched on entry, so the parallel path
/// reuses it to finish off its leftovers deterministically.
void match_serial(const CsrGraph& g, std::span<const idx_t> order,
                  std::vector<idx_t>& match) {
  const idx_t n = g.num_vertices();
  for (idx_t oi = 0; oi < n; ++oi) {
    const idx_t v = order[static_cast<std::size_t>(oi)];
    if (match[static_cast<std::size_t>(v)] != kInvalidIndex) continue;
    idx_t best = kInvalidIndex;
    wgt_t best_w = -1;
    auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t u = nbrs[static_cast<std::size_t>(j)];
      if (match[static_cast<std::size_t>(u)] != kInvalidIndex) continue;
      const wgt_t w = g.edge_weight(v, j);
      if (w > best_w) {
        best_w = w;
        best = u;
      }
    }
    if (best != kInvalidIndex) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }
}

/// The original single-buffer contraction: number coarse vertices in
/// permutation order, group members, aggregate edges through a slot array.
Coarsening contract_serial(const CsrGraph& g, std::span<const idx_t> order,
                           std::span<const idx_t> match) {
  const idx_t n = g.num_vertices();
  const idx_t ncon = g.ncon();

  // Number coarse vertices: the lower-indexed endpoint of each pair (in the
  // visiting order) claims the id.
  Coarsening result;
  result.coarse_of_fine.assign(static_cast<std::size_t>(n), kInvalidIndex);
  idx_t nc = 0;
  for (idx_t oi = 0; oi < n; ++oi) {
    const idx_t v = order[static_cast<std::size_t>(oi)];
    if (result.coarse_of_fine[static_cast<std::size_t>(v)] != kInvalidIndex) {
      continue;
    }
    const idx_t u = match[static_cast<std::size_t>(v)];
    result.coarse_of_fine[static_cast<std::size_t>(v)] = nc;
    result.coarse_of_fine[static_cast<std::size_t>(u)] = nc;
    ++nc;
  }

  // Group fine vertices by coarse id (pairs or singletons).
  std::vector<idx_t> members(static_cast<std::size_t>(n));
  std::vector<idx_t> member_off(static_cast<std::size_t>(nc) + 1, 0);
  for (idx_t v = 0; v < n; ++v) {
    ++member_off[static_cast<std::size_t>(
                     result.coarse_of_fine[static_cast<std::size_t>(v)]) +
                 1];
  }
  for (std::size_t i = 1; i < member_off.size(); ++i) {
    member_off[i] += member_off[i - 1];
  }
  {
    std::vector<idx_t> cursor(member_off.begin(), member_off.end() - 1);
    for (idx_t v = 0; v < n; ++v) {
      const idx_t c = result.coarse_of_fine[static_cast<std::size_t>(v)];
      members[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] =
          v;
    }
  }

  // Contract: aggregate vertex weights and neighbour edges. `slot[c]` marks
  // where coarse neighbour c currently sits in the edge buffer.
  std::vector<wgt_t> cvwgt(static_cast<std::size_t>(nc) *
                               static_cast<std::size_t>(ncon),
                           0);
  std::vector<idx_t> cxadj{0};
  cxadj.reserve(static_cast<std::size_t>(nc) + 1);
  std::vector<idx_t> cadjncy;
  std::vector<wgt_t> cadjwgt;
  std::vector<idx_t> slot(static_cast<std::size_t>(nc), kInvalidIndex);

  for (idx_t c = 0; c < nc; ++c) {
    const idx_t edge_begin = to_idx(cadjncy.size());
    for (idx_t mi = member_off[static_cast<std::size_t>(c)];
         mi < member_off[static_cast<std::size_t>(c) + 1]; ++mi) {
      const idx_t v = members[static_cast<std::size_t>(mi)];
      for (idx_t cc = 0; cc < ncon; ++cc) {
        cvwgt[static_cast<std::size_t>(c) * ncon + static_cast<std::size_t>(cc)] +=
            g.vertex_weight(v, cc);
      }
      auto nbrs = g.neighbors(v);
      for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
        const idx_t cu = result.coarse_of_fine[static_cast<std::size_t>(
            nbrs[static_cast<std::size_t>(j)])];
        if (cu == c) continue;  // internal edge of the contracted pair
        const wgt_t w = g.edge_weight(v, j);
        idx_t& s = slot[static_cast<std::size_t>(cu)];
        if (s >= edge_begin && s < to_idx(cadjncy.size()) &&
            cadjncy[static_cast<std::size_t>(s)] == cu) {
          cadjwgt[static_cast<std::size_t>(s)] += w;
        } else {
          s = to_idx(cadjncy.size());
          cadjncy.push_back(cu);
          cadjwgt.push_back(w);
        }
      }
    }
    cxadj.push_back(to_idx(cadjncy.size()));
  }

  result.coarse = CsrGraph(std::move(cxadj), std::move(cadjncy),
                           std::move(cvwgt), std::move(cadjwgt), ncon);
  return result;
}

/// Round-based parallel heavy-edge matching. Each round over the still
/// unmatched vertices: (1) every vertex proposes its heaviest unmatched
/// neighbour, ties resolved toward the earlier vertex in the permutation;
/// (2) proposers race to claim their target through an atomic CAS-min on
/// permutation rank, so the earliest-ranked proposer wins no matter how the
/// threads interleave; (3) a handshake pass forms pairs from mutual
/// proposals and from uncontested claims. Every decision is a function of
/// the round-start state and the rank order — never of the thread schedule —
/// so the matching is bit-identical for any thread count. A bounded number
/// of rounds matches the bulk of the graph; a serial sweep finishes the
/// stragglers (deterministic by construction).
void match_parallel(const CsrGraph& g, std::span<const idx_t> order,
                    std::span<const idx_t> rank, std::vector<idx_t>& match,
                    ThreadPool& pool) {
  const idx_t n = g.num_vertices();
  const idx_t kUnclaimed = n;  // rank sentinel: beyond every real rank
  std::vector<idx_t> proposal(static_cast<std::size_t>(n), kInvalidIndex);
  std::vector<std::atomic<idx_t>> claim(static_cast<std::size_t>(n));
  std::vector<idx_t> active(static_cast<std::size_t>(n));
  pool.parallel_for(
      n, [&](idx_t v) { active[static_cast<std::size_t>(v)] = v; });

  // Compaction buffers, reused across rounds (`next` swaps with `active`
  // instead of reallocating every round).
  std::vector<idx_t> scan;
  std::vector<idx_t> next;
  constexpr int kMaxRounds = 12;
  for (int round = 0; round < kMaxRounds && !active.empty(); ++round) {
    const idx_t na = to_idx(active.size());

    // (1) Propose the heaviest unmatched neighbour; reset the claim slot.
    pool.parallel_for(na, [&](idx_t i) {
      const idx_t v = active[static_cast<std::size_t>(i)];
      claim[static_cast<std::size_t>(v)].store(kUnclaimed,
                                               std::memory_order_relaxed);
      idx_t best = kInvalidIndex;
      wgt_t best_w = -1;
      auto nbrs = g.neighbors(v);
      for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
        const idx_t u = nbrs[static_cast<std::size_t>(j)];
        if (match[static_cast<std::size_t>(u)] != kInvalidIndex) continue;
        const wgt_t w = g.edge_weight(v, j);
        if (w > best_w ||
            (w == best_w && best != kInvalidIndex &&
             rank[static_cast<std::size_t>(u)] <
                 rank[static_cast<std::size_t>(best)])) {
          best_w = w;
          best = u;
        }
      }
      proposal[static_cast<std::size_t>(v)] = best;
    });

    // (2) Claim targets: CAS-min on the proposer's rank.
    pool.parallel_for(na, [&](idx_t i) {
      const idx_t v = active[static_cast<std::size_t>(i)];
      const idx_t u = proposal[static_cast<std::size_t>(v)];
      if (u == kInvalidIndex) return;
      const idx_t r = rank[static_cast<std::size_t>(v)];
      auto& slot = claim[static_cast<std::size_t>(u)];
      idx_t cur = slot.load(std::memory_order_relaxed);
      while (r < cur &&
             !slot.compare_exchange_weak(cur, r, std::memory_order_relaxed)) {
      }
    });

    // (3) Handshake. Exactly one thread writes each matched slot:
    //  - mutual proposals always pair; the earlier-ranked endpoint writes;
    //  - otherwise (v, u) pairs when v holds the winning claim on u, nobody
    //    proposed v, and u is not bound into a mutual pair of its own.
    pool.parallel_for(na, [&](idx_t i) {
      const idx_t v = active[static_cast<std::size_t>(i)];
      const idx_t u = proposal[static_cast<std::size_t>(v)];
      if (u == kInvalidIndex) {
        // No unmatched neighbour remains: v stays single.
        match[static_cast<std::size_t>(v)] = v;
        return;
      }
      if (proposal[static_cast<std::size_t>(u)] == v) {
        if (rank[static_cast<std::size_t>(v)] <
            rank[static_cast<std::size_t>(u)]) {
          match[static_cast<std::size_t>(v)] = u;
          match[static_cast<std::size_t>(u)] = v;
        }
        return;
      }
      const idx_t pu = proposal[static_cast<std::size_t>(u)];
      const bool u_mutual =
          pu != kInvalidIndex && proposal[static_cast<std::size_t>(pu)] == u;
      if (!u_mutual &&
          claim[static_cast<std::size_t>(u)].load(std::memory_order_relaxed) ==
              rank[static_cast<std::size_t>(v)] &&
          claim[static_cast<std::size_t>(v)].load(std::memory_order_relaxed) ==
              kUnclaimed) {
        match[static_cast<std::size_t>(v)] = u;
        match[static_cast<std::size_t>(u)] = v;
      }
    });

    // (4) Compact the survivors (exclusive scan keeps their order).
    scan.assign(static_cast<std::size_t>(na), 0);
    pool.parallel_for(na, [&](idx_t i) {
      scan[static_cast<std::size_t>(i)] =
          match[static_cast<std::size_t>(
              active[static_cast<std::size_t>(i)])] == kInvalidIndex
              ? 1
              : 0;
    });
    const idx_t remaining =
        pool.parallel_exclusive_scan(std::span<idx_t>(scan));
    if (remaining == na) break;  // theory says impossible; stay safe anyway
    next.resize(static_cast<std::size_t>(remaining));
    pool.parallel_for(na, [&](idx_t i) {
      const idx_t v = active[static_cast<std::size_t>(i)];
      if (match[static_cast<std::size_t>(v)] == kInvalidIndex) {
        next[static_cast<std::size_t>(scan[static_cast<std::size_t>(i)])] = v;
      }
    });
    std::swap(active, next);
  }

  // Serial finish for whatever the rounds left over (a few percent at most):
  // greedy in permutation order, exactly like the small-graph path.
  if (!active.empty()) match_serial(g, order, match);
}

/// Two-pass parallel contraction. Coarse ids follow the permutation order of
/// pair leaders (the earlier-ranked endpoints) via an exclusive scan — the
/// same numbering the serial path produces for a given matching. Pass one
/// counts each coarse vertex's distinct neighbours and aggregates vertex
/// weights; an exclusive scan turns the counts into CSR offsets; pass two
/// fills the preallocated ranges. Per-chunk tag/position scratch replaces
/// the serial slot buffer.
Coarsening contract_parallel(const CsrGraph& g, std::span<const idx_t> order,
                             std::span<const idx_t> rank,
                             std::span<const idx_t> match, ThreadPool& pool) {
  const idx_t n = g.num_vertices();
  const idx_t ncon = g.ncon();
  Coarsening result;
  result.coarse_of_fine.assign(static_cast<std::size_t>(n), kInvalidIndex);

  const auto is_leader = [&](idx_t v, idx_t u) {
    return u == v ||
           rank[static_cast<std::size_t>(v)] < rank[static_cast<std::size_t>(u)];
  };

  // Number coarse vertices: leaders claim ids in permutation order.
  std::vector<idx_t> lead(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](idx_t oi) {
    const idx_t v = order[static_cast<std::size_t>(oi)];
    lead[static_cast<std::size_t>(oi)] =
        is_leader(v, match[static_cast<std::size_t>(v)]) ? 1 : 0;
  });
  const idx_t nc = pool.parallel_exclusive_scan(std::span<idx_t>(lead));

  // Member table: fv0[c] is the leader, fv1[c] the partner (or invalid).
  std::vector<idx_t> fv0(static_cast<std::size_t>(nc));
  std::vector<idx_t> fv1(static_cast<std::size_t>(nc));
  pool.parallel_for(n, [&](idx_t oi) {
    const idx_t v = order[static_cast<std::size_t>(oi)];
    const idx_t u = match[static_cast<std::size_t>(v)];
    if (!is_leader(v, u)) return;
    const idx_t c = lead[static_cast<std::size_t>(oi)];
    result.coarse_of_fine[static_cast<std::size_t>(v)] = c;
    fv0[static_cast<std::size_t>(c)] = v;
    if (u != v) {
      result.coarse_of_fine[static_cast<std::size_t>(u)] = c;
      fv1[static_cast<std::size_t>(c)] = u;
    } else {
      fv1[static_cast<std::size_t>(c)] = kInvalidIndex;
    }
  });

  // Per-chunk dedup scratch shared by both passes, allocated (and
  // sentinel-initialized) once per contraction instead of once per chunk
  // per pass — the O(nc)-per-chunk init was what made coarsening slower at
  // high thread counts than serial. Pass 1 stamps tag entries with c, pass
  // 2 with nc + c: the stamp ranges are disjoint, so pass 2 reuses pass 1's
  // tags without clearing them.
  struct ChunkScratch {
    std::vector<idx_t> tag;
    std::vector<idx_t> pos;
  };
  std::vector<ChunkScratch> scratch(
      std::max<unsigned>(1u, pool.num_threads()));
  const auto chunk_scratch = [&](unsigned chunk, bool want_pos) -> ChunkScratch& {
    ChunkScratch& cs = scratch[static_cast<std::size_t>(chunk)];
    if (to_idx(cs.tag.size()) < nc) {
      cs.tag.assign(static_cast<std::size_t>(nc), kInvalidIndex);
    }
    if (want_pos && to_idx(cs.pos.size()) < nc) {
      cs.pos.resize(static_cast<std::size_t>(nc));
    }
    return cs;
  };

  // Pass 1: per-coarse-vertex distinct-neighbour counts + vertex weights.
  std::vector<wgt_t> cvwgt(static_cast<std::size_t>(nc) *
                               static_cast<std::size_t>(ncon),
                           0);
  std::vector<idx_t> cxadj(static_cast<std::size_t>(nc) + 1, 0);
  pool.parallel_for_chunks(nc, [&](unsigned chunk, idx_t cb, idx_t ce) {
    std::vector<idx_t>& tag = chunk_scratch(chunk, false).tag;
    for (idx_t c = cb; c < ce; ++c) {
      idx_t cnt = 0;
      for (int s = 0; s < 2; ++s) {
        const idx_t v = s == 0 ? fv0[static_cast<std::size_t>(c)]
                               : fv1[static_cast<std::size_t>(c)];
        if (v == kInvalidIndex) continue;
        for (idx_t cc = 0; cc < ncon; ++cc) {
          cvwgt[static_cast<std::size_t>(c) * ncon +
                static_cast<std::size_t>(cc)] += g.vertex_weight(v, cc);
        }
        auto nbrs = g.neighbors(v);
        for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
          const idx_t cu = result.coarse_of_fine[static_cast<std::size_t>(
              nbrs[static_cast<std::size_t>(j)])];
          if (cu == c) continue;  // internal edge of the contracted pair
          if (tag[static_cast<std::size_t>(cu)] != c) {
            tag[static_cast<std::size_t>(cu)] = c;
            ++cnt;
          }
        }
      }
      cxadj[static_cast<std::size_t>(c)] = cnt;
    }
  });
  const idx_t nnz = pool.parallel_exclusive_scan(
      std::span<idx_t>(cxadj.data(), static_cast<std::size_t>(nc)));
  cxadj[static_cast<std::size_t>(nc)] = nnz;

  // Pass 2: fill each coarse vertex's preallocated CSR range.
  std::vector<idx_t> cadjncy(static_cast<std::size_t>(nnz));
  std::vector<wgt_t> cadjwgt(static_cast<std::size_t>(nnz));
  pool.parallel_for_chunks(nc, [&](unsigned chunk, idx_t cb, idx_t ce) {
    ChunkScratch& cs = chunk_scratch(chunk, true);
    std::vector<idx_t>& tag = cs.tag;
    std::vector<idx_t>& pos = cs.pos;
    for (idx_t c = cb; c < ce; ++c) {
      const idx_t stamp = nc + c;  // disjoint from pass 1's stamps
      idx_t w = cxadj[static_cast<std::size_t>(c)];
      for (int s = 0; s < 2; ++s) {
        const idx_t v = s == 0 ? fv0[static_cast<std::size_t>(c)]
                               : fv1[static_cast<std::size_t>(c)];
        if (v == kInvalidIndex) continue;
        auto nbrs = g.neighbors(v);
        for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
          const idx_t cu = result.coarse_of_fine[static_cast<std::size_t>(
              nbrs[static_cast<std::size_t>(j)])];
          if (cu == c) continue;
          const wgt_t ew = g.edge_weight(v, j);
          if (tag[static_cast<std::size_t>(cu)] != stamp) {
            tag[static_cast<std::size_t>(cu)] = stamp;
            pos[static_cast<std::size_t>(cu)] = w;
            cadjncy[static_cast<std::size_t>(w)] = cu;
            cadjwgt[static_cast<std::size_t>(w)] = ew;
            ++w;
          } else {
            cadjwgt[static_cast<std::size_t>(
                pos[static_cast<std::size_t>(cu)])] += ew;
          }
        }
      }
      assert(w == cxadj[static_cast<std::size_t>(c) + 1]);
    }
  });

  result.coarse = CsrGraph(std::move(cxadj), std::move(cadjncy),
                           std::move(cvwgt), std::move(cadjwgt), ncon);
  return result;
}

}  // namespace

Coarsening coarsen_once(const CsrGraph& g, Rng& rng,
                        const CoarsenOptions& options) {
  const idx_t n = g.num_vertices();
  const std::vector<idx_t> order = random_permutation(n, rng);

  if (n < options.parallel_threshold) {
    std::vector<idx_t> match(static_cast<std::size_t>(n), kInvalidIndex);
    match_serial(g, order, match);
    return contract_serial(g, order, match);
  }

  ThreadPool& pool = ThreadPool::global();
  std::vector<idx_t> rank(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](idx_t oi) {
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(oi)])] = oi;
  });
  std::vector<idx_t> match(static_cast<std::size_t>(n), kInvalidIndex);
  match_parallel(g, order, rank, match, pool);
  return contract_parallel(g, order, rank, match, pool);
}

}  // namespace cpart
