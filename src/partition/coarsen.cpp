#include "partition/coarsen.hpp"

namespace cpart {

Coarsening coarsen_once(const CsrGraph& g, Rng& rng) {
  const idx_t n = g.num_vertices();
  const idx_t ncon = g.ncon();
  std::vector<idx_t> match(static_cast<std::size_t>(n), kInvalidIndex);
  const std::vector<idx_t> order = random_permutation(n, rng);

  // Heavy-edge matching.
  for (idx_t oi = 0; oi < n; ++oi) {
    const idx_t v = order[static_cast<std::size_t>(oi)];
    if (match[static_cast<std::size_t>(v)] != kInvalidIndex) continue;
    idx_t best = kInvalidIndex;
    wgt_t best_w = -1;
    auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t u = nbrs[static_cast<std::size_t>(j)];
      if (match[static_cast<std::size_t>(u)] != kInvalidIndex) continue;
      const wgt_t w = g.edge_weight(v, j);
      if (w > best_w) {
        best_w = w;
        best = u;
      }
    }
    if (best != kInvalidIndex) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }

  // Number coarse vertices: the lower-indexed endpoint of each pair (in the
  // visiting order) claims the id.
  Coarsening result;
  result.coarse_of_fine.assign(static_cast<std::size_t>(n), kInvalidIndex);
  idx_t nc = 0;
  for (idx_t oi = 0; oi < n; ++oi) {
    const idx_t v = order[static_cast<std::size_t>(oi)];
    if (result.coarse_of_fine[static_cast<std::size_t>(v)] != kInvalidIndex) {
      continue;
    }
    const idx_t u = match[static_cast<std::size_t>(v)];
    result.coarse_of_fine[static_cast<std::size_t>(v)] = nc;
    result.coarse_of_fine[static_cast<std::size_t>(u)] = nc;
    ++nc;
  }

  // Group fine vertices by coarse id (pairs or singletons).
  std::vector<idx_t> members(static_cast<std::size_t>(n));
  std::vector<idx_t> member_off(static_cast<std::size_t>(nc) + 1, 0);
  for (idx_t v = 0; v < n; ++v) {
    ++member_off[static_cast<std::size_t>(
                     result.coarse_of_fine[static_cast<std::size_t>(v)]) +
                 1];
  }
  for (std::size_t i = 1; i < member_off.size(); ++i) {
    member_off[i] += member_off[i - 1];
  }
  {
    std::vector<idx_t> cursor(member_off.begin(), member_off.end() - 1);
    for (idx_t v = 0; v < n; ++v) {
      const idx_t c = result.coarse_of_fine[static_cast<std::size_t>(v)];
      members[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] =
          v;
    }
  }

  // Contract: aggregate vertex weights and neighbour edges. `slot[c]` marks
  // where coarse neighbour c currently sits in the edge buffer.
  std::vector<wgt_t> cvwgt(static_cast<std::size_t>(nc) *
                               static_cast<std::size_t>(ncon),
                           0);
  std::vector<idx_t> cxadj{0};
  cxadj.reserve(static_cast<std::size_t>(nc) + 1);
  std::vector<idx_t> cadjncy;
  std::vector<wgt_t> cadjwgt;
  std::vector<idx_t> slot(static_cast<std::size_t>(nc), kInvalidIndex);

  for (idx_t c = 0; c < nc; ++c) {
    const idx_t edge_begin = to_idx(cadjncy.size());
    for (idx_t mi = member_off[static_cast<std::size_t>(c)];
         mi < member_off[static_cast<std::size_t>(c) + 1]; ++mi) {
      const idx_t v = members[static_cast<std::size_t>(mi)];
      for (idx_t cc = 0; cc < ncon; ++cc) {
        cvwgt[static_cast<std::size_t>(c) * ncon + static_cast<std::size_t>(cc)] +=
            g.vertex_weight(v, cc);
      }
      auto nbrs = g.neighbors(v);
      for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
        const idx_t cu = result.coarse_of_fine[static_cast<std::size_t>(
            nbrs[static_cast<std::size_t>(j)])];
        if (cu == c) continue;  // internal edge of the contracted pair
        const wgt_t w = g.edge_weight(v, j);
        idx_t& s = slot[static_cast<std::size_t>(cu)];
        if (s >= edge_begin && s < to_idx(cadjncy.size()) &&
            cadjncy[static_cast<std::size_t>(s)] == cu) {
          cadjwgt[static_cast<std::size_t>(s)] += w;
        } else {
          s = to_idx(cadjncy.size());
          cadjncy.push_back(cu);
          cadjwgt.push_back(w);
        }
      }
    }
    cxadj.push_back(to_idx(cadjncy.size()));
  }

  result.coarse = CsrGraph(std::move(cxadj), std::move(cadjncy),
                           std::move(cvwgt), std::move(cadjwgt), ncon);
  return result;
}

}  // namespace cpart
