// Direct multilevel k-way partitioning (the kmetis-style alternative to
// recursive bisection).
//
// Coarsens the whole graph once to ~C*k vertices, computes the initial
// k-way partition there via recursive bisection, then uncoarsens with
// multi-constraint greedy k-way refinement (plus connectivity cleanup) at
// every level. Compared to pure recursive bisection this sees the global
// k-way objective during refinement, which typically wins on communication
// volume for large k; `bench_ablation` compares the two.
#pragma once

#include "partition/partition.hpp"

namespace cpart {

/// Computes a k-way partitioning with the direct multilevel k-way scheme.
/// Options are shared with partition_graph(); `coarsen_target` is
/// interpreted per-partition (the coarsest graph has ~max(coarsen_target/4,
/// 15) * k vertices).
std::vector<idx_t> partition_graph_kway(const CsrGraph& g,
                                        const PartitionOptions& options);

}  // namespace cpart
