#include "partition/refine_bisection.hpp"

#include <algorithm>
#include <queue>

#include "graph/graph_metrics.hpp"

namespace cpart {

namespace {

/// Shared balance bookkeeping for a bisection of a multi-weight graph.
class BisectionBalance {
 public:
  BisectionBalance(const CsrGraph& g, std::span<const idx_t> part01,
                   double left_fraction, double epsilon)
      : g_(g), ncon_(g.ncon()) {
    totals_.resize(static_cast<std::size_t>(ncon_));
    side_[0].assign(static_cast<std::size_t>(ncon_), 0);
    side_[1].assign(static_cast<std::size_t>(ncon_), 0);
    for (idx_t c = 0; c < ncon_; ++c) {
      totals_[static_cast<std::size_t>(c)] = g.total_vertex_weight(c);
    }
    for (idx_t v = 0; v < g.num_vertices(); ++v) {
      const int s = part01[static_cast<std::size_t>(v)];
      for (idx_t c = 0; c < ncon_; ++c) {
        side_[s][static_cast<std::size_t>(c)] += g.vertex_weight(v, c);
      }
    }
    limit_[0].resize(static_cast<std::size_t>(ncon_));
    limit_[1].resize(static_cast<std::size_t>(ncon_));
    for (idx_t c = 0; c < ncon_; ++c) {
      const double t = static_cast<double>(totals_[static_cast<std::size_t>(c)]);
      limit_[0][static_cast<std::size_t>(c)] = (1.0 + epsilon) * left_fraction * t;
      limit_[1][static_cast<std::size_t>(c)] =
          (1.0 + epsilon) * (1.0 - left_fraction) * t;
    }
  }

  /// Applies the move of v from its current side `from` to 1-from.
  void apply(idx_t v, int from) {
    for (idx_t c = 0; c < ncon_; ++c) {
      const wgt_t w = g_.vertex_weight(v, c);
      side_[from][static_cast<std::size_t>(c)] -= w;
      side_[1 - from][static_cast<std::size_t>(c)] += w;
    }
  }

  double violation() const {
    double viol = 0;
    for (int s = 0; s < 2; ++s) {
      for (idx_t c = 0; c < ncon_; ++c) {
        const wgt_t total = totals_[static_cast<std::size_t>(c)];
        if (total == 0) continue;
        const double over = static_cast<double>(side_[s][static_cast<std::size_t>(c)]) -
                            limit_[s][static_cast<std::size_t>(c)];
        if (over > 0) viol += over / static_cast<double>(total);
      }
    }
    return viol;
  }

  /// Violation if v moved from side `from` (apply, measure, undo).
  double violation_after(idx_t v, int from) {
    apply(v, from);
    const double viol = violation();
    apply(v, 1 - from);
    return viol;
  }

 private:
  const CsrGraph& g_;
  idx_t ncon_;
  std::vector<wgt_t> totals_;
  std::vector<wgt_t> side_[2];
  std::vector<double> limit_[2];
};

struct HeapEntry {
  wgt_t gain;
  std::uint64_t stamp;
  idx_t vertex;
  bool operator<(const HeapEntry& o) const {
    if (gain != o.gain) return gain < o.gain;  // max-heap by gain
    return vertex < o.vertex;
  }
};

}  // namespace

double bisection_violation(const CsrGraph& g, std::span<const idx_t> part01,
                           double left_fraction, double epsilon) {
  BisectionBalance bal(g, part01, left_fraction, epsilon);
  return bal.violation();
}

idx_t fm_refine_bisection(const CsrGraph& g, std::span<idx_t> part01,
                          double left_fraction, double epsilon, int passes,
                          Rng& rng) {
  const idx_t n = g.num_vertices();
  require(part01.size() == static_cast<std::size_t>(n),
          "fm_refine_bisection: partition size mismatch");
  if (n == 0) return 0;

  std::vector<wgt_t> gain(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> stamp(static_cast<std::size_t>(n), 0);
  std::vector<char> locked(static_cast<std::size_t>(n), 0);
  idx_t total_moved = 0;

  auto compute_gain = [&](idx_t v) {
    wgt_t ext = 0, internal = 0;
    auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t u = nbrs[static_cast<std::size_t>(j)];
      const wgt_t w = g.edge_weight(v, j);
      if (part01[static_cast<std::size_t>(u)] ==
          part01[static_cast<std::size_t>(v)]) {
        internal += w;
      } else {
        ext += w;
      }
    }
    return ext - internal;
  };

  for (int pass = 0; pass < passes; ++pass) {
    BisectionBalance bal(g, part01, left_fraction, epsilon);
    std::fill(locked.begin(), locked.end(), 0);

    // Heaps of candidate moves, one per source side, with lazy invalidation
    // via per-vertex stamps.
    std::priority_queue<HeapEntry> heap[2];
    std::uint64_t clock = 1;
    auto push_vertex = [&](idx_t v) {
      gain[static_cast<std::size_t>(v)] = compute_gain(v);
      stamp[static_cast<std::size_t>(v)] = ++clock;
      heap[part01[static_cast<std::size_t>(v)]].push(
          HeapEntry{gain[static_cast<std::size_t>(v)], clock, v});
    };
    // Seed with boundary vertices (all vertices for tiny graphs, so
    // balance-only moves remain possible when the boundary is empty).
    for (idx_t v = 0; v < n; ++v) {
      bool boundary = n <= 2048;
      if (!boundary) {
        for (idx_t u : g.neighbors(v)) {
          if (part01[static_cast<std::size_t>(u)] !=
              part01[static_cast<std::size_t>(v)]) {
            boundary = true;
            break;
          }
        }
      }
      if (boundary) push_vertex(v);
    }

    // Pops up to `limit` fresh (non-stale, unlocked) entries from a side's
    // heap into `out`; entries not chosen must be re-pushed by the caller.
    auto pop_fresh = [&](int side, int limit, std::vector<HeapEntry>& out) {
      auto& h = heap[side];
      limit += to_idx(out.size());  // quota is per side, not cumulative
      while (!h.empty() && to_idx(out.size()) < limit) {
        const HeapEntry e = h.top();
        h.pop();
        if (locked[static_cast<std::size_t>(e.vertex)] ||
            stamp[static_cast<std::size_t>(e.vertex)] != e.stamp ||
            part01[static_cast<std::size_t>(e.vertex)] != side) {
          continue;
        }
        out.push_back(e);
      }
    };

    // Move log for rollback to the best prefix.
    std::vector<idx_t> moves;
    moves.reserve(static_cast<std::size_t>(n));
    double cur_viol = bal.violation();
    wgt_t cur_cut_delta = 0;  // relative to pass start
    double best_viol = cur_viol;
    wgt_t best_cut_delta = 0;
    std::size_t best_prefix = 0;

    const idx_t move_limit = n;
    std::vector<HeapEntry> candidates;
    while (to_idx(moves.size()) < move_limit) {
      // Probe several fresh candidates from each side so that an
      // inadmissible high-gain entry cannot starve its whole side; keep the
      // admissible one with the best (violation_after, gain) ordering.
      candidates.clear();
      pop_fresh(0, 8, candidates);
      pop_fresh(1, 8, candidates);
      idx_t chosen = kInvalidIndex;
      double chosen_viol = 0;
      for (const HeapEntry& e : candidates) {
        const idx_t v = e.vertex;
        const int side = part01[static_cast<std::size_t>(v)];
        const double after = bal.violation_after(v, side);
        // Admissible: does not worsen balance; strictly-better balance moves
        // are always admissible (that is how imbalance gets repaired).
        if (after > cur_viol + 1e-12) continue;
        if (chosen == kInvalidIndex) {
          chosen = v;
          chosen_viol = after;
          continue;
        }
        // Prefer the move that repairs more violation; then higher gain;
        // then random (keeps the two sides from starving each other).
        const wgt_t gv = gain[static_cast<std::size_t>(v)];
        const wgt_t gc = gain[static_cast<std::size_t>(chosen)];
        if (after < chosen_viol - 1e-12 ||
            (std::abs(after - chosen_viol) <= 1e-12 &&
             (gv > gc || (gv == gc && rng.uniform() < 0.5)))) {
          chosen = v;
          chosen_viol = after;
        }
      }
      // Re-push unused candidates (their stamps are still current).
      for (const HeapEntry& e : candidates) {
        if (e.vertex != chosen) {
          heap[part01[static_cast<std::size_t>(e.vertex)]].push(e);
        }
      }
      if (chosen == kInvalidIndex) break;

      const int from = part01[static_cast<std::size_t>(chosen)];
      bal.apply(chosen, from);
      cur_viol = chosen_viol;
      cur_cut_delta -= gain[static_cast<std::size_t>(chosen)];
      part01[static_cast<std::size_t>(chosen)] =
          static_cast<idx_t>(1 - from);
      locked[static_cast<std::size_t>(chosen)] = 1;
      moves.push_back(chosen);

      // Refresh unlocked neighbours (gains changed by +-2w).
      for (idx_t u : g.neighbors(chosen)) {
        if (!locked[static_cast<std::size_t>(u)]) push_vertex(u);
      }

      if (cur_viol < best_viol - 1e-12 ||
          (cur_viol <= best_viol + 1e-12 && cur_cut_delta < best_cut_delta)) {
        best_viol = cur_viol;
        best_cut_delta = cur_cut_delta;
        best_prefix = moves.size();
      }
    }

    // Roll back to the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const idx_t v = moves[i - 1];
      const int from = part01[static_cast<std::size_t>(v)];
      bal.apply(v, from);
      part01[static_cast<std::size_t>(v)] = static_cast<idx_t>(1 - from);
    }
    total_moved += to_idx(best_prefix);
    if (best_prefix == 0) break;  // pass made no progress
  }
  return total_moved;
}

}  // namespace cpart
