#include "partition/kway_multilevel.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"
#include "partition/coarsen.hpp"
#include "partition/connectivity.hpp"

namespace cpart {

std::vector<idx_t> partition_graph_kway(const CsrGraph& g,
                                        const PartitionOptions& options) {
  const idx_t n = g.num_vertices();
  const idx_t k = options.k;
  require(k >= 1, "partition_graph_kway: k must be >= 1");
  if (k == 1 || n == 0) {
    return std::vector<idx_t>(static_cast<std::size_t>(n), 0);
  }

  Rng rng(options.seed ^ 0x517cc1b727220a95ULL);

  // Coarsen the whole graph down to a small multiple of k.
  CoarsenOptions copts;
  copts.parallel_threshold = options.coarsen_parallel_threshold;
  const idx_t coarsest_size =
      std::max<idx_t>(options.coarsen_target / 4, 15) * k;
  std::vector<Coarsening> chain;
  const CsrGraph* cur = &g;
  while (cur->num_vertices() > coarsest_size) {
    Coarsening c = coarsen_once(*cur, rng, copts);
    if (c.coarse.num_vertices() > cur->num_vertices() * 19 / 20) break;
    chain.push_back(std::move(c));
    cur = &chain.back().coarse;
  }

  // Initial k-way partition of the coarsest graph via recursive bisection.
  // A slightly tighter epsilon leaves headroom for refinement drift during
  // uncoarsening.
  PartitionOptions init = options;
  init.epsilon = std::max(0.02, options.epsilon * 0.8);
  init.kway_passes = 0;  // the uncoarsening loop below refines anyway
  std::vector<idx_t> part = partition_graph(*cur, init);

  // Uncoarsen, refining at every level.
  KwayRefineOptions refine;
  refine.k = k;
  refine.epsilon = options.epsilon;
  refine.passes = std::max(4, options.kway_passes / 2);
  {
    // Refine the coarsest partition in place first.
    kway_refine(*cur, part, refine, rng);
  }
  for (std::size_t i = chain.size(); i-- > 0;) {
    const CsrGraph& fine = (i == 0) ? g : chain[i - 1].coarse;
    std::vector<idx_t> fine_part(static_cast<std::size_t>(fine.num_vertices()));
    const std::vector<idx_t>& map = chain[i].coarse_of_fine;
    ThreadPool::global().parallel_for(fine.num_vertices(), [&](idx_t v) {
      fine_part[static_cast<std::size_t>(v)] =
          part[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])];
    });
    kway_refine(fine, fine_part, refine, rng);
    part = std::move(fine_part);
  }

  // Final cleanup at the finest level: reabsorb stranded fragments, then
  // polish.
  if (options.kway_passes > 0) {
    KwayRefineOptions polish = refine;
    polish.passes = options.kway_passes;
    for (int round = 0; round < 2; ++round) {
      merge_partition_fragments(g, part, k);
      kway_refine(g, part, polish, rng);
    }
  }
  return part;
}

}  // namespace cpart
