// Partition connectivity cleanup.
//
// FM-style refinement under multiple balance constraints can leave
// partitions as unions of disconnected fragments, which inflates the
// communication volume and scatters the subdomain geometry (bad for the
// decision-tree descriptors). Like METIS, we repair this with an explicit
// pass: every component of a partition other than its largest is migrated
// wholesale to the neighbouring partition it is most strongly connected to;
// a k-way refinement afterwards restores balance.
#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/common.hpp"

namespace cpart {

/// Number of connected components of each partition. result[p] == 0 when
/// partition p is empty.
std::vector<idx_t> partition_components(const CsrGraph& g,
                                        std::span<const idx_t> part, idx_t k);

/// Moves every non-largest component of every partition into its most
/// strongly connected neighbouring partition. Returns the number of
/// vertices moved. Balance is NOT preserved — run kway_refine afterwards.
idx_t merge_partition_fragments(const CsrGraph& g, std::span<idx_t> part,
                                idx_t k);

}  // namespace cpart
