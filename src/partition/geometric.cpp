#include "partition/geometric.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace cpart {

namespace {

class GeometricBisector {
 public:
  GeometricBisector(std::span<const Vec3> points, std::span<const wgt_t> vwgt,
                    idx_t ncon, int dim)
      : points_(points), vwgt_(vwgt), ncon_(ncon), dim_(dim) {}

  void run(std::span<idx_t> ids, idx_t k, idx_t first_part,
           std::vector<idx_t>* labels) {
    if (k == 1 || ids.size() <= 1) {
      for (idx_t i : ids) {
        (*labels)[static_cast<std::size_t>(i)] = first_part;
      }
      return;
    }
    const idx_t k_left = (k + 1) / 2;
    const double target =
        static_cast<double>(k_left) / static_cast<double>(k);

    // Totals of each constraint over this subset.
    std::vector<double> totals(static_cast<std::size_t>(ncon_), 0);
    for (idx_t i : ids) {
      for (idx_t c = 0; c < ncon_; ++c) {
        totals[static_cast<std::size_t>(c)] +=
            static_cast<double>(weight(i, c));
      }
    }

    // Try each axis: sort, prefix-scan, keep the axis/position whose worst
    // per-constraint deviation from the target fraction is smallest.
    int best_axis = -1;
    idx_t best_split = 1;
    double best_score = std::numeric_limits<double>::max();
    std::vector<idx_t> order(ids.begin(), ids.end());
    std::vector<double> prefix(static_cast<std::size_t>(ncon_));
    for (int axis = 0; axis < dim_; ++axis) {
      std::sort(order.begin(), order.end(), [&](idx_t a, idx_t b) {
        const real_t ca = points_[static_cast<std::size_t>(a)][axis];
        const real_t cb = points_[static_cast<std::size_t>(b)][axis];
        if (ca != cb) return ca < cb;
        return a < b;
      });
      std::fill(prefix.begin(), prefix.end(), 0.0);
      for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        for (idx_t c = 0; c < ncon_; ++c) {
          prefix[static_cast<std::size_t>(c)] +=
              static_cast<double>(weight(order[i], c));
        }
        double score = 0;
        for (idx_t c = 0; c < ncon_; ++c) {
          const double total = totals[static_cast<std::size_t>(c)];
          if (total <= 0) continue;
          score = std::max(
              score,
              std::abs(prefix[static_cast<std::size_t>(c)] / total - target));
        }
        if (score < best_score) {
          best_score = score;
          best_axis = axis;
          best_split = to_idx(i + 1);
        }
      }
    }
    // Re-sort along the winning axis (order currently holds the last axis).
    std::sort(order.begin(), order.end(), [&](idx_t a, idx_t b) {
      const real_t ca = points_[static_cast<std::size_t>(a)][best_axis];
      const real_t cb = points_[static_cast<std::size_t>(b)][best_axis];
      if (ca != cb) return ca < cb;
      return a < b;
    });
    std::copy(order.begin(), order.end(), ids.begin());
    run(ids.subspan(0, static_cast<std::size_t>(best_split)), k_left,
        first_part, labels);
    run(ids.subspan(static_cast<std::size_t>(best_split)), k - k_left,
        first_part + k_left, labels);
  }

 private:
  wgt_t weight(idx_t i, idx_t c) const {
    return vwgt_.empty()
               ? 1
               : vwgt_[static_cast<std::size_t>(i) * ncon_ +
                       static_cast<std::size_t>(c)];
  }

  std::span<const Vec3> points_;
  std::span<const wgt_t> vwgt_;
  idx_t ncon_;
  int dim_;
};

}  // namespace

std::vector<idx_t> geometric_multiconstraint_partition(
    std::span<const Vec3> points, std::span<const wgt_t> vwgt,
    const GeometricPartitionOptions& options) {
  require(options.k >= 1, "geometric partition: k must be >= 1");
  require(options.dim == 2 || options.dim == 3,
          "geometric partition: dim must be 2 or 3");
  const idx_t ncon = vwgt.empty() ? 1 : options.ncon;
  require(ncon >= 1, "geometric partition: ncon must be >= 1");
  require(vwgt.empty() ||
              vwgt.size() == points.size() * static_cast<std::size_t>(ncon),
          "geometric partition: vwgt size must be n*ncon");
  std::vector<idx_t> labels(points.size(), 0);
  if (options.k == 1 || points.empty()) return labels;
  std::vector<idx_t> ids(points.size());
  std::iota(ids.begin(), ids.end(), idx_t{0});
  GeometricBisector bisector(points, vwgt, ncon, options.dim);
  bisector.run(ids, options.k, 0, &labels);
  return labels;
}

}  // namespace cpart
