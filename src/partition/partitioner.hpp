// The library's single partitioning entry point.
//
// Every client (McmlDtPartitioner, MlRcbPartitioner, the a-priori analysis,
// DistributedSim's repartitioner, the CLI tools) used to call the
// kway_multilevel layer directly, each with slightly different option
// plumbing. Partitioner unifies that call surface: one config selects the
// flat scheme (recursive bisection or direct k-way) and, when
// hierarchy.groups >= 2, the two-level hierarchical path of
// partition/hierarchical.hpp. Repartitioning goes through the same facade
// and inherits the hierarchy: moves stay inside each rank group unless a
// group's load breaches the cross-group threshold.
#pragma once

#include <span>
#include <vector>

#include "partition/hierarchical.hpp"
#include "partition/partition.hpp"

namespace cpart {

enum class PartitionScheme {
  /// Multilevel recursive bisection (partition_graph) — the default and
  /// the paper's configuration.
  kRecursiveBisection,
  /// Direct multilevel k-way (partition_graph_kway).
  kDirectKway,
};

struct PartitionerConfig {
  PartitionScheme scheme = PartitionScheme::kRecursiveBisection;
  /// k, epsilon, seed and multilevel knobs, shared by every path.
  PartitionOptions options{};
  /// groups >= 2 switches partition()/repartition() to the two-level path.
  HierarchyOptions hierarchy{};
};

class Partitioner {
 public:
  explicit Partitioner(PartitionerConfig config);

  const PartitionerConfig& config() const { return config_; }
  idx_t k() const { return config_.options.k; }
  /// Effective group count: hierarchy.groups clamped to [1, k].
  idx_t groups() const;
  bool hierarchical() const { return groups() > 1; }

  /// Group id of each part under the contiguous part->group assignment
  /// (all parts in group 0 when the hierarchy is disabled). With rank ==
  /// part id this is the rank-group map of the runtime layer.
  std::vector<idx_t> group_of_parts() const;

  /// Partitions g into k parts. `stats`, when non-null, receives the
  /// per-level diagnostics (flat runs fill the final level only).
  std::vector<idx_t> partition(const CsrGraph& g,
                               HierarchyStats* stats = nullptr) const;

  /// Adapts `old_part` to the (possibly changed) graph, trading cut for
  /// migration volume. Hierarchical instances repartition each group's
  /// induced subgraph independently — migration traffic stays group-local —
  /// unless some group's weight exceeds cross_group_threshold times its
  /// proportional target, in which case one global repartition may move
  /// vertices across groups. `moved_cross_group`, when non-null, reports
  /// whether that escalation fired.
  std::vector<idx_t> repartition(const CsrGraph& g,
                                 std::span<const idx_t> old_part,
                                 const RepartitionOptions& options,
                                 bool* moved_cross_group = nullptr) const;

 private:
  PartitionerConfig config_;
};

}  // namespace cpart
