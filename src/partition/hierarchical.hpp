// Two-level hierarchical partitioning (Kong et al., arXiv:1809.02666;
// rank-hierarchy mapping as in Preclik & Rüde, arXiv:1501.05810).
//
// Level 1 coarsens the graph to a small proxy and splits it into G rank
// groups by recursive bisection with part-count-proportional fractions;
// the group labels project back through the coarsening chain. Level 2
// induces the subgraph of each group and partitions it independently into
// the group's contiguous share of the k parts — the per-group problems run
// concurrently on the ThreadPool (each one inline within its worker), and
// because every stage is pool-size invariant the final labels are
// bit-identical across thread counts at a fixed seed. Partitioning the
// top level on the proxy instead of the full graph is what makes the
// scheme scale: the expensive full-resolution work parallelizes over
// groups, and nothing global ever runs at full k.
#pragma once

#include <vector>

#include "partition/partition.hpp"

namespace cpart {

struct HierarchyOptions {
  /// Number of rank groups G; <= 1 disables the hierarchy.
  idx_t groups = 0;
  /// Imbalance tolerance of each top-level bisection. Tighter than the
  /// final epsilon: group-level imbalance multiplies into every part of
  /// the group and cannot be repaired by the group-local second level.
  double group_epsilon = 0.05;
  /// Stop coarsening the top-level proxy once it has at most about this
  /// many vertices (never below 32 * G).
  idx_t proxy_target = 8192;
  /// Group-local repartitioning escalates to a full cross-group
  /// repartition only when some group's weight exceeds this multiple of
  /// its part-count-proportional target (see Partitioner::repartition).
  double cross_group_threshold = 1.25;
};

/// Per-level diagnostics of one hierarchical partition.
struct HierarchyStats {
  idx_t groups = 1;
  idx_t proxy_vertices = 0;  // top-level proxy size after coarsening
  double group_ms = 0;       // coarsen + split + project
  double local_ms = 0;       // parallel per-group partitions
  wgt_t group_cut = 0;       // cut of the G-way group labeling on g
  double group_balance = 0;  // worst constraint vs part-count targets
  wgt_t final_cut = 0;
  double final_balance = 0;
};

struct HierarchicalResult {
  std::vector<idx_t> part;  // final labels in [0, k)
  HierarchyStats stats;
};

/// First part id of group `grp` when k parts spread contiguously over G
/// groups: parts [parts_begin(g), parts_begin(g+1)) belong to group g.
inline idx_t parts_begin(idx_t grp, idx_t k, idx_t groups) {
  return to_idx(static_cast<std::int64_t>(grp) * k / groups);
}

/// Group of each part id under the contiguous assignment above (size k).
std::vector<idx_t> part_groups(idx_t k, idx_t groups);

/// Subgraph induced by the vertices with labels[v] == value. Cut edges are
/// dropped; `parent` maps sub ids (ascending) back to ids in g. Shared by
/// the two-level split, the group-local repartitioner, and tests.
struct InducedSubgraph {
  CsrGraph graph;
  std::vector<idx_t> parent;
};
InducedSubgraph induce_subgraph(const CsrGraph& g,
                                std::span<const idx_t> labels, idx_t value);

/// Worst-constraint imbalance of a G-way group labeling against
/// part-count-proportional targets: max over (group, c) of
/// w_c(group) / (w_c(V) * parts_share(group)).
double hierarchy_group_imbalance(const CsrGraph& g,
                                 std::span<const idx_t> group_of, idx_t k,
                                 idx_t groups);

/// Two-level partition of g into base.k parts over `hierarchy.groups`
/// groups. Falls back to partition_graph when the hierarchy is disabled
/// (groups <= 1) or trivial (k == 1).
HierarchicalResult hierarchical_partition(const CsrGraph& g,
                                          const PartitionOptions& base,
                                          const HierarchyOptions& hierarchy);

}  // namespace cpart
