#include "partition/hierarchical.hpp"

#include <algorithm>

#include "graph/graph_metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "partition/coarsen.hpp"
#include "util/seed_stream.hpp"
#include "util/timer.hpp"

namespace cpart {

std::vector<idx_t> part_groups(idx_t k, idx_t groups) {
  require(k >= 1 && groups >= 1 && groups <= k,
          "part_groups: need 1 <= groups <= k");
  std::vector<idx_t> out(static_cast<std::size_t>(k));
  for (idx_t grp = 0; grp < groups; ++grp) {
    const idx_t lo = parts_begin(grp, k, groups);
    const idx_t hi = parts_begin(grp + 1, k, groups);
    for (idx_t p = lo; p < hi; ++p) out[static_cast<std::size_t>(p)] = grp;
  }
  return out;
}

InducedSubgraph induce_subgraph(const CsrGraph& g,
                                std::span<const idx_t> labels, idx_t value) {
  const idx_t n = g.num_vertices();
  const idx_t ncon = g.ncon();
  std::vector<idx_t> local(static_cast<std::size_t>(n), kInvalidIndex);
  InducedSubgraph sub;
  for (idx_t v = 0; v < n; ++v) {
    if (labels[static_cast<std::size_t>(v)] == value) {
      local[static_cast<std::size_t>(v)] = to_idx(sub.parent.size());
      sub.parent.push_back(v);
    }
  }
  const idx_t ns = to_idx(sub.parent.size());
  std::vector<idx_t> xadj{0};
  xadj.reserve(static_cast<std::size_t>(ns) + 1);
  std::vector<idx_t> adjncy;
  std::vector<wgt_t> adjwgt;
  std::vector<wgt_t> vwgt(static_cast<std::size_t>(ns) *
                          static_cast<std::size_t>(ncon));
  for (idx_t sv = 0; sv < ns; ++sv) {
    const idx_t v = sub.parent[static_cast<std::size_t>(sv)];
    for (idx_t c = 0; c < ncon; ++c) {
      vwgt[static_cast<std::size_t>(sv) * ncon + static_cast<std::size_t>(c)] =
          g.vertex_weight(v, c);
    }
    const auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t lu =
          local[static_cast<std::size_t>(nbrs[static_cast<std::size_t>(j)])];
      if (lu == kInvalidIndex) continue;
      adjncy.push_back(lu);
      adjwgt.push_back(g.edge_weight(v, j));
    }
    xadj.push_back(to_idx(adjncy.size()));
  }
  sub.graph = CsrGraph(std::move(xadj), std::move(adjncy), std::move(vwgt),
                       std::move(adjwgt), ncon);
  return sub;
}

namespace {

/// Recursively splits the vertices of `g` into groups [g0, g1) by weighted
/// bisection: the left fraction is the left half's share of the part count,
/// so groups owning more parts receive proportionally more weight. Writes
/// through `parent` into `group_out`.
void split_groups(const CsrGraph& g, std::span<const idx_t> parent, idx_t g0,
                  idx_t g1, idx_t k, idx_t groups, double epsilon,
                  const PartitionOptions& options, Rng& rng,
                  std::vector<idx_t>& group_out) {
  if (g.num_vertices() == 0) return;
  if (g1 - g0 == 1) {
    for (idx_t v = 0; v < g.num_vertices(); ++v) {
      group_out[static_cast<std::size_t>(
          parent[static_cast<std::size_t>(v)])] = g0;
    }
    return;
  }
  const idx_t gm = (g0 + g1 + 1) / 2;  // left gets the larger group half
  const idx_t left_parts = parts_begin(gm, k, groups) - parts_begin(g0, k, groups);
  const idx_t total_parts =
      parts_begin(g1, k, groups) - parts_begin(g0, k, groups);
  const double fraction =
      static_cast<double>(left_parts) / static_cast<double>(total_parts);
  const std::vector<idx_t> side =
      bisect_graph(g, fraction, epsilon, options, rng);
  for (idx_t s = 0; s < 2; ++s) {
    InducedSubgraph sub = induce_subgraph(g, side, s);
    for (idx_t& p : sub.parent) p = parent[static_cast<std::size_t>(p)];
    split_groups(sub.graph, sub.parent, s == 0 ? g0 : gm, s == 0 ? gm : g1, k,
                 groups, epsilon, options, rng, group_out);
  }
}

}  // namespace

double hierarchy_group_imbalance(const CsrGraph& g,
                                 std::span<const idx_t> group_of, idx_t k,
                                 idx_t groups) {
  const idx_t ncon = g.ncon();
  std::vector<wgt_t> weight(static_cast<std::size_t>(groups) *
                                static_cast<std::size_t>(ncon),
                            0);
  std::vector<wgt_t> total(static_cast<std::size_t>(ncon), 0);
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    const idx_t grp = group_of[static_cast<std::size_t>(v)];
    for (idx_t c = 0; c < ncon; ++c) {
      const wgt_t w = g.vertex_weight(v, c);
      weight[static_cast<std::size_t>(grp) * ncon +
             static_cast<std::size_t>(c)] += w;
      total[static_cast<std::size_t>(c)] += w;
    }
  }
  double worst = 1.0;
  for (idx_t grp = 0; grp < groups; ++grp) {
    const double share =
        static_cast<double>(parts_begin(grp + 1, k, groups) -
                            parts_begin(grp, k, groups)) /
        static_cast<double>(k);
    for (idx_t c = 0; c < ncon; ++c) {
      const double target = static_cast<double>(total[static_cast<std::size_t>(c)]) * share;
      if (target <= 0) continue;
      worst = std::max(
          worst, static_cast<double>(
                     weight[static_cast<std::size_t>(grp) * ncon +
                            static_cast<std::size_t>(c)]) /
                     target);
    }
  }
  return worst;
}

HierarchicalResult hierarchical_partition(const CsrGraph& g,
                                          const PartitionOptions& base,
                                          const HierarchyOptions& hierarchy) {
  const idx_t n = g.num_vertices();
  const idx_t k = base.k;
  require(k >= 1, "hierarchical_partition: k must be >= 1");
  const idx_t groups = std::clamp<idx_t>(hierarchy.groups, 1, k);

  HierarchicalResult result;
  if (groups <= 1 || k == 1 || n == 0) {
    Timer timer;
    result.part = partition_graph(g, base);
    result.stats.local_ms = timer.milliseconds();
    result.stats.groups = 1;
    result.stats.final_cut = edge_cut(g, result.part);
    result.stats.final_balance = max_load_imbalance(g, result.part, k);
    result.stats.group_cut = result.stats.final_cut;
    result.stats.group_balance = 1.0;
    return result;
  }

  Timer timer;
  Rng rng(seed_mix(base.seed, 0x9c0a));

  // Level 1: coarsen to the proxy, split the proxy into G groups, project
  // the labels back through the chain. The proxy partition sees summed
  // vertex-weight vectors, so multi-constraint balance carries through.
  CoarsenOptions copts;
  copts.parallel_threshold = base.coarsen_parallel_threshold;
  const idx_t proxy_size =
      std::max<idx_t>(hierarchy.proxy_target, 32 * groups);
  std::vector<Coarsening> chain;
  const CsrGraph* cur = &g;
  while (cur->num_vertices() > proxy_size) {
    Coarsening c = coarsen_once(*cur, rng, copts);
    if (c.coarse.num_vertices() > cur->num_vertices() * 19 / 20) break;
    chain.push_back(std::move(c));
    cur = &chain.back().coarse;
  }
  result.stats.proxy_vertices = cur->num_vertices();

  std::vector<idx_t> proxy_group(
      static_cast<std::size_t>(cur->num_vertices()), 0);
  {
    std::vector<idx_t> parent(static_cast<std::size_t>(cur->num_vertices()));
    for (idx_t v = 0; v < cur->num_vertices(); ++v) {
      parent[static_cast<std::size_t>(v)] = v;
    }
    split_groups(*cur, parent, 0, groups, k, groups, hierarchy.group_epsilon,
                 base, rng, proxy_group);
  }

  std::vector<idx_t> group_of(static_cast<std::size_t>(n));
  {
    std::vector<idx_t> coarse_part = std::move(proxy_group);
    for (std::size_t i = chain.size(); i-- > 0;) {
      const CsrGraph& fine = (i == 0) ? g : chain[i - 1].coarse;
      std::vector<idx_t> fine_part(
          static_cast<std::size_t>(fine.num_vertices()));
      const std::vector<idx_t>& map = chain[i].coarse_of_fine;
      ThreadPool::global().parallel_for(fine.num_vertices(), [&](idx_t v) {
        fine_part[static_cast<std::size_t>(v)] = coarse_part
            [static_cast<std::size_t>(map[static_cast<std::size_t>(v)])];
      });
      coarse_part = std::move(fine_part);
    }
    group_of = std::move(coarse_part);
  }
  result.stats.groups = groups;
  result.stats.group_ms = timer.milliseconds();

  // Level 2: partition each group's induced subgraph into its contiguous
  // share of the parts. The per-group problems are independent — they run
  // concurrently via parallel_tasks, each one inline inside its worker —
  // and each derives its seed from (base seed, group id) only, so the
  // labels cannot depend on the pool size.
  timer.reset();
  result.part.assign(static_cast<std::size_t>(n), 0);
  ThreadPool::global().parallel_tasks(groups, [&](idx_t grp) {
    const InducedSubgraph sub = induce_subgraph(g, group_of, grp);
    if (sub.graph.num_vertices() == 0) return;
    const idx_t first = parts_begin(grp, k, groups);
    PartitionOptions sub_opts = base;
    sub_opts.k = parts_begin(grp + 1, k, groups) - first;
    sub_opts.seed = seed_mix(base.seed, static_cast<std::uint64_t>(grp));
    const std::vector<idx_t> sub_part = partition_graph(sub.graph, sub_opts);
    for (idx_t sv = 0; sv < sub.graph.num_vertices(); ++sv) {
      result.part[static_cast<std::size_t>(
          sub.parent[static_cast<std::size_t>(sv)])] =
          first + sub_part[static_cast<std::size_t>(sv)];
    }
  });
  result.stats.local_ms = timer.milliseconds();

  result.stats.group_cut = edge_cut(g, group_of);
  result.stats.group_balance =
      hierarchy_group_imbalance(g, group_of, k, groups);
  result.stats.final_cut = edge_cut(g, result.part);
  result.stats.final_balance = max_load_imbalance(g, result.part, k);
  return result;
}

}  // namespace cpart
