#include "partition/connectivity.hpp"

#include <algorithm>

namespace cpart {

namespace {

/// Labels same-partition connected components. Returns the component id per
/// vertex plus, per component, its partition, size, and vertex list order.
struct Components {
  std::vector<idx_t> comp_of_vertex;
  std::vector<idx_t> comp_partition;
  std::vector<wgt_t> comp_size;  // vertex count
};

Components find_components(const CsrGraph& g, std::span<const idx_t> part) {
  const idx_t n = g.num_vertices();
  Components c;
  c.comp_of_vertex.assign(static_cast<std::size_t>(n), kInvalidIndex);
  std::vector<idx_t> queue;
  for (idx_t v = 0; v < n; ++v) {
    if (c.comp_of_vertex[static_cast<std::size_t>(v)] != kInvalidIndex) {
      continue;
    }
    const idx_t comp = to_idx(c.comp_partition.size());
    c.comp_partition.push_back(part[static_cast<std::size_t>(v)]);
    c.comp_size.push_back(0);
    queue.clear();
    queue.push_back(v);
    c.comp_of_vertex[static_cast<std::size_t>(v)] = comp;
    while (!queue.empty()) {
      const idx_t u = queue.back();
      queue.pop_back();
      ++c.comp_size[static_cast<std::size_t>(comp)];
      for (idx_t w : g.neighbors(u)) {
        if (c.comp_of_vertex[static_cast<std::size_t>(w)] == kInvalidIndex &&
            part[static_cast<std::size_t>(w)] ==
                part[static_cast<std::size_t>(u)]) {
          c.comp_of_vertex[static_cast<std::size_t>(w)] = comp;
          queue.push_back(w);
        }
      }
    }
  }
  return c;
}

}  // namespace

std::vector<idx_t> partition_components(const CsrGraph& g,
                                        std::span<const idx_t> part, idx_t k) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "partition_components: partition size mismatch");
  const Components c = find_components(g, part);
  std::vector<idx_t> counts(static_cast<std::size_t>(k), 0);
  for (idx_t p : c.comp_partition) {
    require(p >= 0 && p < k, "partition_components: label out of range");
    ++counts[static_cast<std::size_t>(p)];
  }
  return counts;
}

idx_t merge_partition_fragments(const CsrGraph& g, std::span<idx_t> part,
                                idx_t k) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "merge_partition_fragments: partition size mismatch");
  const idx_t n = g.num_vertices();
  const Components c = find_components(g, part);
  const idx_t num_comps = to_idx(c.comp_partition.size());

  // Largest component of each partition keeps its identity.
  std::vector<idx_t> main_comp(static_cast<std::size_t>(k), kInvalidIndex);
  for (idx_t comp = 0; comp < num_comps; ++comp) {
    const idx_t p = c.comp_partition[static_cast<std::size_t>(comp)];
    require(p >= 0 && p < k, "merge_partition_fragments: label out of range");
    idx_t& best = main_comp[static_cast<std::size_t>(p)];
    if (best == kInvalidIndex ||
        c.comp_size[static_cast<std::size_t>(comp)] >
            c.comp_size[static_cast<std::size_t>(best)]) {
      best = comp;
    }
  }

  // Edge weight from each fragment to each adjacent partition; the heaviest
  // connection wins. Accumulated in a flat (component -> partition) map via
  // per-component scratch to stay O(m).
  std::vector<wgt_t> link(static_cast<std::size_t>(k), 0);
  std::vector<idx_t> touched;
  std::vector<idx_t> target(static_cast<std::size_t>(num_comps), kInvalidIndex);

  // Group vertices by component for a single pass per component.
  std::vector<idx_t> comp_offset(static_cast<std::size_t>(num_comps) + 1, 0);
  for (idx_t v = 0; v < n; ++v) {
    ++comp_offset[static_cast<std::size_t>(
                      c.comp_of_vertex[static_cast<std::size_t>(v)]) +
                  1];
  }
  for (std::size_t i = 1; i < comp_offset.size(); ++i) {
    comp_offset[i] += comp_offset[i - 1];
  }
  std::vector<idx_t> comp_vertices(static_cast<std::size_t>(n));
  {
    std::vector<idx_t> cursor(comp_offset.begin(), comp_offset.end() - 1);
    for (idx_t v = 0; v < n; ++v) {
      const idx_t comp = c.comp_of_vertex[static_cast<std::size_t>(v)];
      comp_vertices[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(comp)]++)] = v;
    }
  }

  for (idx_t comp = 0; comp < num_comps; ++comp) {
    const idx_t p = c.comp_partition[static_cast<std::size_t>(comp)];
    if (comp == main_comp[static_cast<std::size_t>(p)]) continue;
    touched.clear();
    for (idx_t vi = comp_offset[static_cast<std::size_t>(comp)];
         vi < comp_offset[static_cast<std::size_t>(comp) + 1]; ++vi) {
      const idx_t v = comp_vertices[static_cast<std::size_t>(vi)];
      auto nbrs = g.neighbors(v);
      for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
        const idx_t u = nbrs[static_cast<std::size_t>(j)];
        const idx_t pu = part[static_cast<std::size_t>(u)];
        if (pu == p) continue;
        if (link[static_cast<std::size_t>(pu)] == 0) touched.push_back(pu);
        link[static_cast<std::size_t>(pu)] += g.edge_weight(v, j);
      }
    }
    idx_t best = kInvalidIndex;
    wgt_t best_w = 0;
    for (idx_t q : touched) {
      if (link[static_cast<std::size_t>(q)] > best_w) {
        best_w = link[static_cast<std::size_t>(q)];
        best = q;
      }
      link[static_cast<std::size_t>(q)] = 0;
    }
    target[static_cast<std::size_t>(comp)] = best;  // may stay kInvalidIndex
  }

  idx_t moved = 0;
  for (idx_t v = 0; v < n; ++v) {
    const idx_t comp = c.comp_of_vertex[static_cast<std::size_t>(v)];
    const idx_t t = target[static_cast<std::size_t>(comp)];
    if (t != kInvalidIndex) {
      part[static_cast<std::size_t>(v)] = t;
      ++moved;
    }
  }
  return moved;
}

}  // namespace cpart
