#include "partition/initial_partition.hpp"

#include <algorithm>
#include <queue>

#include "graph/graph_metrics.hpp"
#include "partition/refine_bisection.hpp"

namespace cpart {

namespace {

/// One GGG attempt: grows side 0 from `seed` until it holds the target
/// share of every weight component. Frontier vertices are prioritized by FM
/// gain (ext - int with respect to the growing region) plus a steering term
/// that favours vertices carrying the constraints the region is short on —
/// without it, lumpy secondary constraints (contact nodes) end up entirely
/// on one side and FM has to shred the boundary repairing them.
std::vector<idx_t> grow_from(const CsrGraph& g, idx_t seed,
                             double left_fraction) {
  const idx_t n = g.num_vertices();
  const idx_t ncon = g.ncon();
  std::vector<idx_t> part(static_cast<std::size_t>(n), 1);
  std::vector<wgt_t> totals(static_cast<std::size_t>(ncon));
  std::vector<wgt_t> grown(static_cast<std::size_t>(ncon), 0);
  for (idx_t c = 0; c < ncon; ++c) {
    totals[static_cast<std::size_t>(c)] = g.total_vertex_weight(c);
  }
  const auto target0 = static_cast<wgt_t>(
      left_fraction * static_cast<double>(totals[0]));

  struct Entry {
    double priority;
    idx_t vertex;
    bool operator<(const Entry& o) const {
      if (priority != o.priority) return priority < o.priority;
      return vertex < o.vertex;
    }
  };
  std::priority_queue<Entry> frontier;
  std::vector<wgt_t> to_region(static_cast<std::size_t>(n), 0);
  std::vector<char> in_region(static_cast<std::size_t>(n), 0);

  // Mean degree-weighted edge weight scales the steering bonus so it is
  // commensurate with typical gains.
  double mean_w = 1.0;
  if (g.has_edge_weights()) {
    double sum = 0;
    for (wgt_t w : g.adjwgt()) sum += static_cast<double>(w);
    mean_w = g.adjwgt().empty() ? 1.0 : sum / static_cast<double>(g.adjwgt().size());
  }

  auto priority_of = [&](idx_t v) {
    wgt_t away = 0;
    auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      if (!in_region[static_cast<std::size_t>(
              nbrs[static_cast<std::size_t>(j)])]) {
        away += g.edge_weight(v, j);
      }
    }
    double p = static_cast<double>(to_region[static_cast<std::size_t>(v)] - away);
    // Steering: compare each secondary constraint's progress with the
    // primary's; prefer carriers of lagging constraints.
    if (ncon > 1 && totals[0] > 0) {
      const double progress0 =
          static_cast<double>(grown[0]) / static_cast<double>(totals[0]);
      for (idx_t c = 1; c < ncon; ++c) {
        const wgt_t tc = totals[static_cast<std::size_t>(c)];
        if (tc == 0) continue;
        const double progress_c =
            static_cast<double>(grown[static_cast<std::size_t>(c)]) /
            static_cast<double>(tc);
        const double lag = progress0 - progress_c;  // >0: constraint c behind
        p += 2.0 * mean_w * lag *
             static_cast<double>(g.vertex_weight(v, c) > 0 ? 1 : -1);
      }
    }
    return p;
  };

  idx_t next_seed = seed;
  while (grown[0] < target0) {
    idx_t v = kInvalidIndex;
    while (!frontier.empty()) {
      const Entry e = frontier.top();
      frontier.pop();
      if (!in_region[static_cast<std::size_t>(e.vertex)]) {
        v = e.vertex;
        break;
      }
    }
    if (v == kInvalidIndex) {
      // Disconnected component exhausted: restart from the next untouched
      // vertex so growth can continue.
      while (next_seed < n && in_region[static_cast<std::size_t>(next_seed)]) {
        ++next_seed;
      }
      if (next_seed >= n) break;
      v = next_seed;
    }
    in_region[static_cast<std::size_t>(v)] = 1;
    part[static_cast<std::size_t>(v)] = 0;
    for (idx_t c = 0; c < ncon; ++c) {
      grown[static_cast<std::size_t>(c)] += g.vertex_weight(v, c);
    }
    auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t u = nbrs[static_cast<std::size_t>(j)];
      if (in_region[static_cast<std::size_t>(u)]) continue;
      to_region[static_cast<std::size_t>(u)] += g.edge_weight(v, j);
      frontier.push(Entry{priority_of(u), u});
    }
  }
  return part;
}

}  // namespace

std::vector<idx_t> initial_bisection(const CsrGraph& g, double left_fraction,
                                     double epsilon, int tries,
                                     int refine_passes, Rng& rng) {
  const idx_t n = g.num_vertices();
  require(n > 0, "initial_bisection: empty graph");
  require(left_fraction > 0.0 && left_fraction < 1.0,
          "initial_bisection: left_fraction must be in (0, 1)");

  std::vector<idx_t> best;
  double best_viol = 0;
  wgt_t best_cut = 0;
  for (int t = 0; t < std::max(1, tries); ++t) {
    const idx_t seed = rng.uniform_int(n);
    std::vector<idx_t> part = grow_from(g, seed, left_fraction);
    fm_refine_bisection(g, part, left_fraction, epsilon, refine_passes, rng);
    const double viol = bisection_violation(g, part, left_fraction, epsilon);
    const wgt_t cut = edge_cut(g, part);
    if (best.empty() || viol < best_viol - 1e-12 ||
        (viol <= best_viol + 1e-12 && cut < best_cut)) {
      best = std::move(part);
      best_viol = viol;
      best_cut = cut;
    }
  }
  return best;
}

}  // namespace cpart
