// Greedy multi-constraint k-way refinement (paper Sections 2 and 4.2).
//
// Works directly on a k-way partition: a balance pass drains overweight
// partitions through their least-damaging boundary moves, then a refinement
// pass makes positive-gain boundary moves that respect all balance limits.
// The same routine refines the collapsed region graph G' (where vertices
// are whole rectangular regions), which is what keeps the final partition's
// boundaries piecewise axes-parallel.
#include <algorithm>
#include <cmath>

#include "partition/partition.hpp"

namespace cpart {

namespace {

/// Bookkeeping of per-partition weight vectors and the (1+eps) limits.
class KwayBalance {
 public:
  KwayBalance(const CsrGraph& g, std::span<const idx_t> part, idx_t k,
              double epsilon)
      : g_(g), k_(k), ncon_(g.ncon()) {
    totals_.resize(static_cast<std::size_t>(ncon_));
    for (idx_t c = 0; c < ncon_; ++c) {
      totals_[static_cast<std::size_t>(c)] = g.total_vertex_weight(c);
    }
    pw_.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(ncon_), 0);
    for (idx_t v = 0; v < g.num_vertices(); ++v) {
      add(part[static_cast<std::size_t>(v)], v, +1);
    }
    limit_.resize(static_cast<std::size_t>(ncon_));
    for (idx_t c = 0; c < ncon_; ++c) {
      limit_[static_cast<std::size_t>(c)] =
          (1.0 + epsilon) * static_cast<double>(totals_[static_cast<std::size_t>(c)]) /
          static_cast<double>(k);
    }
  }

  void move(idx_t v, idx_t from, idx_t to) {
    add(from, v, -1);
    add(to, v, +1);
  }

  wgt_t weight(idx_t p, idx_t c) const {
    return pw_[static_cast<std::size_t>(p) * ncon_ + static_cast<std::size_t>(c)];
  }
  double limit(idx_t c) const { return limit_[static_cast<std::size_t>(c)]; }

  /// True when every constraint of partition p is within its limit.
  bool within_limits(idx_t p) const {
    for (idx_t c = 0; c < ncon_; ++c) {
      if (static_cast<double>(weight(p, c)) > limit(c) + 1e-9) return false;
    }
    return true;
  }

  /// True when adding v to p keeps p within limits.
  bool fits(idx_t v, idx_t p) const {
    for (idx_t c = 0; c < ncon_; ++c) {
      if (static_cast<double>(weight(p, c) + g_.vertex_weight(v, c)) >
          limit(c) + 1e-9) {
        return false;
      }
    }
    return true;
  }

  /// Total normalized overweight across all partitions and constraints.
  double violation() const {
    double viol = 0;
    for (idx_t p = 0; p < k_; ++p) viol += violation_of(p);
    return viol;
  }

  double violation_of(idx_t p) const {
    double viol = 0;
    for (idx_t c = 0; c < ncon_; ++c) {
      const wgt_t total = totals_[static_cast<std::size_t>(c)];
      if (total == 0) continue;
      const double over = static_cast<double>(weight(p, c)) - limit(c);
      if (over > 0) viol += over / static_cast<double>(total);
    }
    return viol;
  }

  /// Violation change if v moved from -> to (negative is good).
  double violation_delta(idx_t v, idx_t from, idx_t to) {
    const double before = violation_of(from) + violation_of(to);
    auto* self = this;
    self->move(v, from, to);
    const double after = violation_of(from) + violation_of(to);
    self->move(v, to, from);
    return after - before;
  }

 private:
  void add(idx_t p, idx_t v, int sign) {
    for (idx_t c = 0; c < ncon_; ++c) {
      pw_[static_cast<std::size_t>(p) * ncon_ + static_cast<std::size_t>(c)] +=
          sign * g_.vertex_weight(v, c);
    }
  }

  const CsrGraph& g_;
  idx_t k_;
  idx_t ncon_;
  std::vector<wgt_t> totals_;
  std::vector<wgt_t> pw_;
  std::vector<double> limit_;
};

/// Edge weight from v to each adjacent partition. Mesh degrees are tiny,
/// but collapsed region graphs can touch many partitions, so the lists are
/// growable (reused across gathers — no steady-state allocation).
struct Connectivity {
  std::vector<idx_t> parts;    // adjacent partition ids
  std::vector<wgt_t> weights;  // accumulated edge weight per entry
  int count = 0;
  wgt_t own = 0;

  void gather(const CsrGraph& g, std::span<const idx_t> part, idx_t v) {
    parts.clear();
    weights.clear();
    count = 0;
    own = 0;
    const idx_t pv = part[static_cast<std::size_t>(v)];
    auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t pu =
          part[static_cast<std::size_t>(nbrs[static_cast<std::size_t>(j)])];
      const wgt_t w = g.edge_weight(v, j);
      if (pu == pv) {
        own += w;
        continue;
      }
      bool found = false;
      for (int i = 0; i < count; ++i) {
        if (parts[static_cast<std::size_t>(i)] == pu) {
          weights[static_cast<std::size_t>(i)] += w;
          found = true;
          break;
        }
      }
      if (!found) {
        parts.push_back(pu);
        weights.push_back(w);
        ++count;
      }
    }
  }
};

wgt_t anchor_adjust(const KwayRefineOptions& o, idx_t v, idx_t from, idx_t to) {
  if (o.anchor.empty() || o.anchor_gain == 0) return 0;
  const idx_t a = o.anchor[static_cast<std::size_t>(v)];
  wgt_t adj = 0;
  if (to == a) adj += o.anchor_gain;
  if (from == a) adj -= o.anchor_gain;
  return adj;
}

}  // namespace

idx_t kway_refine(const CsrGraph& g, std::span<idx_t> part,
                  const KwayRefineOptions& options, Rng& rng) {
  const idx_t n = g.num_vertices();
  const idx_t k = options.k;
  require(part.size() == static_cast<std::size_t>(n),
          "kway_refine: partition size mismatch");
  require(k >= 1, "kway_refine: k must be >= 1");
  require(options.anchor.empty() ||
              options.anchor.size() == static_cast<std::size_t>(n),
          "kway_refine: anchor size mismatch");
  for (idx_t p : part) {
    require(p >= 0 && p < k, "kway_refine: partition id out of range");
  }
  if (k == 1 || n == 0) return 0;

  KwayBalance bal(g, part, k, options.epsilon);
  Connectivity conn;
  idx_t total_moves = 0;

  for (int pass = 0; pass < options.passes; ++pass) {
    idx_t pass_moves = 0;
    const std::vector<idx_t> order = random_permutation(n, rng);

    // --- Balance phase: drain overweight partitions. -----------------------
    // Boundary vertices first (their moves keep partitions connected);
    // interior vertices may teleport only if the boundary sweep could not
    // restore balance (rare: a partition overweight in a constraint whose
    // carriers are all interior).
    for (int sub = 0; sub < 2 && bal.violation() > 1e-12; ++sub) {
      const bool boundary_only = (sub == 0);
      for (idx_t oi = 0; oi < n; ++oi) {
        const idx_t v = order[static_cast<std::size_t>(oi)];
        const idx_t pv = part[static_cast<std::size_t>(v)];
        if (bal.within_limits(pv)) continue;
        conn.gather(g, part, v);
        if (boundary_only && conn.count == 0) continue;
        // Candidate targets: adjacent partitions first (cheap boundary),
        // falling back to the globally least-loaded partition when the
        // vertex has no external neighbours (possible on collapsed graphs).
        idx_t best_to = kInvalidIndex;
        double best_delta = 0;
        wgt_t best_gain = 0;
        auto consider = [&](idx_t q, wgt_t w_to_q) {
          const double delta = bal.violation_delta(v, pv, q);
          if (delta >= -1e-12) return;  // must strictly reduce violation
          const wgt_t gain = w_to_q - conn.own + anchor_adjust(options, v, pv, q);
          const bool better =
              best_to == kInvalidIndex || delta < best_delta - 1e-15 ||
              (delta <= best_delta + 1e-15 && gain > best_gain);
          if (better) {
            best_to = q;
            best_delta = delta;
            best_gain = gain;
          }
        };
        for (int i = 0; i < conn.count; ++i) {
          consider(conn.parts[static_cast<std::size_t>(i)],
                   conn.weights[static_cast<std::size_t>(i)]);
        }
        if (best_to == kInvalidIndex) {
          // No adjacent partition helps; try the least-violating partition
          // overall so balance can always make progress.
          idx_t lightest = kInvalidIndex;
          double lightest_delta = -1e-12;
          for (idx_t q = 0; q < k; ++q) {
            if (q == pv) continue;
            const double delta = bal.violation_delta(v, pv, q);
            if (delta < lightest_delta) {
              lightest_delta = delta;
              lightest = q;
            }
          }
          if (lightest != kInvalidIndex) {
            best_to = lightest;
          }
        }
        if (best_to != kInvalidIndex) {
          bal.move(v, pv, best_to);
          part[static_cast<std::size_t>(v)] = best_to;
          ++pass_moves;
        }
      }
    }

    // --- Refinement phase: positive-gain boundary moves under balance. -----
    for (idx_t oi = 0; oi < n; ++oi) {
      const idx_t v = order[static_cast<std::size_t>(oi)];
      const idx_t pv = part[static_cast<std::size_t>(v)];
      conn.gather(g, part, v);
      if (conn.count == 0) continue;  // interior vertex
      idx_t best_to = kInvalidIndex;
      wgt_t best_gain = 0;
      for (int i = 0; i < conn.count; ++i) {
        const idx_t q = conn.parts[static_cast<std::size_t>(i)];
        const wgt_t gain =
            conn.weights[static_cast<std::size_t>(i)] - conn.own + anchor_adjust(options, v, pv, q);
        if (gain <= 0) continue;
        if (!bal.fits(v, q)) continue;
        if (best_to == kInvalidIndex || gain > best_gain) {
          best_to = q;
          best_gain = gain;
        }
      }
      if (best_to != kInvalidIndex) {
        bal.move(v, pv, best_to);
        part[static_cast<std::size_t>(v)] = best_to;
        ++pass_moves;
      }
    }

    total_moves += pass_moves;
    if (pass_moves == 0) break;
  }
  return total_moves;
}

}  // namespace cpart
