// Greedy multi-constraint k-way refinement (paper Sections 2 and 4.2).
//
// Works directly on a k-way partition: a balance pass drains overweight
// partitions through their least-damaging boundary moves, then a refinement
// pass makes positive-gain boundary moves that respect all balance limits.
// The same routine refines the collapsed region graph G' (where vertices
// are whole rectangular regions), which is what keeps the final partition's
// boundaries piecewise axes-parallel.
//
// Gains come from an incremental cache: per-vertex internal weight and
// external (partition, weight) tables built once in parallel and patched in
// O(deg) after every move, instead of rescanning each candidate's
// neighbourhood at every query. A pass costs O(boundary + moved·deg) rather
// than O(n·deg).
#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"
#include "partition/partition.hpp"

namespace cpart {

namespace {

/// Bookkeeping of per-partition weight vectors and the (1+eps) limits.
class KwayBalance {
 public:
  KwayBalance(const CsrGraph& g, std::span<const idx_t> part, idx_t k,
              double epsilon)
      : g_(g), k_(k), ncon_(g.ncon()) {
    totals_.resize(static_cast<std::size_t>(ncon_));
    for (idx_t c = 0; c < ncon_; ++c) {
      totals_[static_cast<std::size_t>(c)] = g.total_vertex_weight(c);
    }
    pw_.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(ncon_), 0);
    for (idx_t v = 0; v < g.num_vertices(); ++v) {
      add(part[static_cast<std::size_t>(v)], v, +1);
    }
    limit_.resize(static_cast<std::size_t>(ncon_));
    for (idx_t c = 0; c < ncon_; ++c) {
      limit_[static_cast<std::size_t>(c)] =
          (1.0 + epsilon) * static_cast<double>(totals_[static_cast<std::size_t>(c)]) /
          static_cast<double>(k);
    }
  }

  void move(idx_t v, idx_t from, idx_t to) {
    add(from, v, -1);
    add(to, v, +1);
  }

  wgt_t weight(idx_t p, idx_t c) const {
    return pw_[static_cast<std::size_t>(p) * ncon_ + static_cast<std::size_t>(c)];
  }
  double limit(idx_t c) const { return limit_[static_cast<std::size_t>(c)]; }

  /// True when every constraint of partition p is within its limit.
  bool within_limits(idx_t p) const {
    for (idx_t c = 0; c < ncon_; ++c) {
      if (static_cast<double>(weight(p, c)) > limit(c) + 1e-9) return false;
    }
    return true;
  }

  /// True when adding v to p keeps p within limits.
  bool fits(idx_t v, idx_t p) const {
    for (idx_t c = 0; c < ncon_; ++c) {
      if (static_cast<double>(weight(p, c) + g_.vertex_weight(v, c)) >
          limit(c) + 1e-9) {
        return false;
      }
    }
    return true;
  }

  /// Total normalized overweight across all partitions and constraints.
  double violation() const {
    double viol = 0;
    for (idx_t p = 0; p < k_; ++p) viol += violation_of(p);
    return viol;
  }

  double violation_of(idx_t p) const {
    double viol = 0;
    for (idx_t c = 0; c < ncon_; ++c) {
      const wgt_t total = totals_[static_cast<std::size_t>(c)];
      if (total == 0) continue;
      const double over = static_cast<double>(weight(p, c)) - limit(c);
      if (over > 0) viol += over / static_cast<double>(total);
    }
    return viol;
  }

  /// Violation change if v moved from -> to (negative is good).
  double violation_delta(idx_t v, idx_t from, idx_t to) {
    const double before = violation_of(from) + violation_of(to);
    auto* self = this;
    self->move(v, from, to);
    const double after = violation_of(from) + violation_of(to);
    self->move(v, to, from);
    return after - before;
  }

 private:
  void add(idx_t p, idx_t v, int sign) {
    for (idx_t c = 0; c < ncon_; ++c) {
      pw_[static_cast<std::size_t>(p) * ncon_ + static_cast<std::size_t>(c)] +=
          sign * g_.vertex_weight(v, c);
    }
  }

  const CsrGraph& g_;
  idx_t k_;
  idx_t ncon_;
  std::vector<wgt_t> totals_;
  std::vector<wgt_t> pw_;
  std::vector<double> limit_;
};

/// Incremental gain tables. For every vertex: `own` (edge weight into its
/// current partition) and a compact list of (partition, weight) entries for
/// the adjacent foreign partitions. A vertex touches at most degree(v)
/// distinct partitions, so entries live in CSR-parallel ranges indexed by
/// the graph's own xadj offsets — no hashing, no steady-state allocation.
/// Built once in parallel (per-vertex, schedule-independent), then patched
/// serially in O(deg) per move.
class GainCache {
 public:
  GainCache(const CsrGraph& g, std::span<const idx_t> part) : g_(g) {
    const idx_t n = g.num_vertices();
    own_.assign(static_cast<std::size_t>(n), 0);
    nd_.assign(static_cast<std::size_t>(n), 0);
    parts_.resize(g.adjncy().size());
    wgts_.resize(g.adjncy().size());
    ThreadPool::global().parallel_for(n, [&](idx_t v) { rebuild(v, part); });
  }

  /// True when v has at least one neighbour in a foreign partition.
  bool is_boundary(idx_t v) const {
    return nd_[static_cast<std::size_t>(v)] > 0;
  }
  idx_t count(idx_t v) const { return nd_[static_cast<std::size_t>(v)]; }
  wgt_t own(idx_t v) const { return own_[static_cast<std::size_t>(v)]; }

  idx_t part_at(idx_t v, idx_t i) const {
    return parts_[entry(v, i)];
  }
  wgt_t weight_at(idx_t v, idx_t i) const {
    return wgts_[entry(v, i)];
  }

  /// Patches the tables for the move v: from -> to. `part` must already
  /// reflect the move (only neighbours' labels are read, so the order does
  /// not matter in practice, but keep the convention tight).
  void apply_move(idx_t v, idx_t from, idx_t to,
                  std::span<const idx_t> part) {
    // v itself: weight toward `to` becomes internal, the old internal weight
    // becomes the external entry for `from`.
    const wgt_t old_own = own_[static_cast<std::size_t>(v)];
    own_[static_cast<std::size_t>(v)] = remove_entry(v, to);
    if (old_own > 0) add_weight(v, from, old_own);

    // Neighbours: the edge to v switched sides.
    auto nbrs = g_.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t u = nbrs[static_cast<std::size_t>(j)];
      const idx_t pu = part[static_cast<std::size_t>(u)];
      const wgt_t w = g_.edge_weight(v, j);
      if (pu == from) {
        own_[static_cast<std::size_t>(u)] -= w;
        add_weight(u, to, w);
      } else if (pu == to) {
        own_[static_cast<std::size_t>(u)] += w;
        sub_weight(u, from, w);
      } else {
        sub_weight(u, from, w);
        add_weight(u, to, w);
      }
    }
  }

 private:
  std::size_t base(idx_t v) const {
    return static_cast<std::size_t>(g_.xadj()[static_cast<std::size_t>(v)]);
  }
  std::size_t entry(idx_t v, idx_t i) const {
    assert(i >= 0 && i < nd_[static_cast<std::size_t>(v)]);
    return base(v) + static_cast<std::size_t>(i);
  }

  void rebuild(idx_t v, std::span<const idx_t> part) {
    const idx_t pv = part[static_cast<std::size_t>(v)];
    wgt_t own = 0;
    idx_t cnt = 0;
    const std::size_t b = base(v);
    auto nbrs = g_.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t pu =
          part[static_cast<std::size_t>(nbrs[static_cast<std::size_t>(j)])];
      const wgt_t w = g_.edge_weight(v, j);
      if (pu == pv) {
        own += w;
        continue;
      }
      idx_t i = 0;
      while (i < cnt && parts_[b + static_cast<std::size_t>(i)] != pu) ++i;
      if (i == cnt) {
        parts_[b + static_cast<std::size_t>(cnt)] = pu;
        wgts_[b + static_cast<std::size_t>(cnt)] = w;
        ++cnt;
      } else {
        wgts_[b + static_cast<std::size_t>(i)] += w;
      }
    }
    own_[static_cast<std::size_t>(v)] = own;
    nd_[static_cast<std::size_t>(v)] = cnt;
  }

  /// Removes the entry for partition p; returns its weight (0 if absent).
  wgt_t remove_entry(idx_t v, idx_t p) {
    const std::size_t b = base(v);
    idx_t& cnt = nd_[static_cast<std::size_t>(v)];
    for (idx_t i = 0; i < cnt; ++i) {
      if (parts_[b + static_cast<std::size_t>(i)] == p) {
        const wgt_t w = wgts_[b + static_cast<std::size_t>(i)];
        --cnt;
        parts_[b + static_cast<std::size_t>(i)] =
            parts_[b + static_cast<std::size_t>(cnt)];
        wgts_[b + static_cast<std::size_t>(i)] =
            wgts_[b + static_cast<std::size_t>(cnt)];
        return w;
      }
    }
    return 0;
  }

  void add_weight(idx_t v, idx_t p, wgt_t w) {
    const std::size_t b = base(v);
    idx_t& cnt = nd_[static_cast<std::size_t>(v)];
    for (idx_t i = 0; i < cnt; ++i) {
      if (parts_[b + static_cast<std::size_t>(i)] == p) {
        wgts_[b + static_cast<std::size_t>(i)] += w;
        return;
      }
    }
    assert(static_cast<std::size_t>(cnt) <
           static_cast<std::size_t>(g_.degree(v)));
    parts_[b + static_cast<std::size_t>(cnt)] = p;
    wgts_[b + static_cast<std::size_t>(cnt)] = w;
    ++cnt;
  }

  void sub_weight(idx_t v, idx_t p, wgt_t w) {
    const std::size_t b = base(v);
    idx_t& cnt = nd_[static_cast<std::size_t>(v)];
    for (idx_t i = 0; i < cnt; ++i) {
      if (parts_[b + static_cast<std::size_t>(i)] == p) {
        wgts_[b + static_cast<std::size_t>(i)] -= w;
        if (wgts_[b + static_cast<std::size_t>(i)] == 0) {
          --cnt;
          parts_[b + static_cast<std::size_t>(i)] =
              parts_[b + static_cast<std::size_t>(cnt)];
          wgts_[b + static_cast<std::size_t>(i)] =
              wgts_[b + static_cast<std::size_t>(cnt)];
        }
        return;
      }
    }
    assert(false && "sub_weight: partition entry missing");
  }

  const CsrGraph& g_;
  std::vector<wgt_t> own_;
  std::vector<idx_t> nd_;
  std::vector<idx_t> parts_;
  std::vector<wgt_t> wgts_;
};

wgt_t anchor_adjust(const KwayRefineOptions& o, idx_t v, idx_t from, idx_t to) {
  if (o.anchor.empty() || o.anchor_gain == 0) return 0;
  const idx_t a = o.anchor[static_cast<std::size_t>(v)];
  wgt_t adj = 0;
  if (to == a) adj += o.anchor_gain;
  if (from == a) adj -= o.anchor_gain;
  return adj;
}

}  // namespace

idx_t kway_refine(const CsrGraph& g, std::span<idx_t> part,
                  const KwayRefineOptions& options, Rng& rng) {
  const idx_t n = g.num_vertices();
  const idx_t k = options.k;
  require(part.size() == static_cast<std::size_t>(n),
          "kway_refine: partition size mismatch");
  require(k >= 1, "kway_refine: k must be >= 1");
  require(options.anchor.empty() ||
              options.anchor.size() == static_cast<std::size_t>(n),
          "kway_refine: anchor size mismatch");
  for (idx_t p : part) {
    require(p >= 0 && p < k, "kway_refine: partition id out of range");
  }
  if (k == 1 || n == 0) return 0;

  KwayBalance bal(g, part, k, options.epsilon);
  GainCache cache(g, part);
  idx_t total_moves = 0;

  const auto commit = [&](idx_t v, idx_t from, idx_t to) {
    bal.move(v, from, to);
    part[static_cast<std::size_t>(v)] = to;
    cache.apply_move(v, from, to, part);
  };

  for (int pass = 0; pass < options.passes; ++pass) {
    idx_t pass_moves = 0;
    const std::vector<idx_t> order = random_permutation(n, rng);

    // --- Balance phase: drain overweight partitions. -----------------------
    // Boundary vertices first (their moves keep partitions connected);
    // interior vertices may teleport only if the boundary sweep could not
    // restore balance (rare: a partition overweight in a constraint whose
    // carriers are all interior).
    for (int sub = 0; sub < 2 && bal.violation() > 1e-12; ++sub) {
      const bool boundary_only = (sub == 0);
      for (idx_t oi = 0; oi < n; ++oi) {
        const idx_t v = order[static_cast<std::size_t>(oi)];
        const idx_t pv = part[static_cast<std::size_t>(v)];
        if (bal.within_limits(pv)) continue;
        if (boundary_only && !cache.is_boundary(v)) continue;
        // Candidate targets: adjacent partitions first (cheap boundary),
        // falling back to the globally least-loaded partition when the
        // vertex has no external neighbours (possible on collapsed graphs).
        idx_t best_to = kInvalidIndex;
        double best_delta = 0;
        wgt_t best_gain = 0;
        const wgt_t own = cache.own(v);
        auto consider = [&](idx_t q, wgt_t w_to_q) {
          const double delta = bal.violation_delta(v, pv, q);
          if (delta >= -1e-12) return;  // must strictly reduce violation
          const wgt_t gain = w_to_q - own + anchor_adjust(options, v, pv, q);
          const bool better =
              best_to == kInvalidIndex || delta < best_delta - 1e-15 ||
              (delta <= best_delta + 1e-15 && gain > best_gain);
          if (better) {
            best_to = q;
            best_delta = delta;
            best_gain = gain;
          }
        };
        for (idx_t i = 0; i < cache.count(v); ++i) {
          consider(cache.part_at(v, i), cache.weight_at(v, i));
        }
        if (best_to == kInvalidIndex) {
          // No adjacent partition helps; try the least-violating partition
          // overall so balance can always make progress.
          idx_t lightest = kInvalidIndex;
          double lightest_delta = -1e-12;
          for (idx_t q = 0; q < k; ++q) {
            if (q == pv) continue;
            const double delta = bal.violation_delta(v, pv, q);
            if (delta < lightest_delta) {
              lightest_delta = delta;
              lightest = q;
            }
          }
          if (lightest != kInvalidIndex) {
            best_to = lightest;
          }
        }
        if (best_to != kInvalidIndex) {
          commit(v, pv, best_to);
          ++pass_moves;
        }
      }
    }

    // --- Refinement phase: positive-gain boundary moves under balance. -----
    for (idx_t oi = 0; oi < n; ++oi) {
      const idx_t v = order[static_cast<std::size_t>(oi)];
      if (!cache.is_boundary(v)) continue;  // interior vertex
      const idx_t pv = part[static_cast<std::size_t>(v)];
      const wgt_t own = cache.own(v);
      idx_t best_to = kInvalidIndex;
      wgt_t best_gain = 0;
      for (idx_t i = 0; i < cache.count(v); ++i) {
        const idx_t q = cache.part_at(v, i);
        const wgt_t gain =
            cache.weight_at(v, i) - own + anchor_adjust(options, v, pv, q);
        if (gain <= 0) continue;
        if (!bal.fits(v, q)) continue;
        if (best_to == kInvalidIndex || gain > best_gain) {
          best_to = q;
          best_gain = gain;
        }
      }
      if (best_to != kInvalidIndex) {
        commit(v, pv, best_to);
        ++pass_moves;
      }
    }

    total_moves += pass_moves;
    if (pass_moves == 0) break;
  }
  return total_moves;
}

}  // namespace cpart
