// Initial bisection of the coarsest graph via greedy graph growing (GGG).
//
// Several randomized attempts grow a region from a random seed, preferring
// frontier vertices that pull the least new edge weight across the boundary,
// until side 0 holds `left_fraction` of the first weight component. Each
// attempt is polished with FM (which also repairs the remaining
// constraints); the attempt with the best (violation, cut) wins.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace cpart {

std::vector<idx_t> initial_bisection(const CsrGraph& g, double left_fraction,
                                     double epsilon, int tries,
                                     int refine_passes, Rng& rng);

}  // namespace cpart
