// Multi-constraint repartitioning (paper Sections 2 and 4.3): adapt an
// existing partition to a changed graph, trading edge-cut quality against
// the volume of data that must migrate. Implemented as anchored k-way
// refinement — every vertex's previous partition acts as an anchor whose
// pull (`migration_cost`) a move must overcome in cut units.
#include "partition/partition.hpp"

namespace cpart {

std::vector<idx_t> repartition_graph(const CsrGraph& g,
                                     std::span<const idx_t> old_part,
                                     const RepartitionOptions& options) {
  const idx_t n = g.num_vertices();
  require(old_part.size() == static_cast<std::size_t>(n),
          "repartition_graph: old partition size mismatch");
  for (idx_t p : old_part) {
    require(p >= 0 && p < options.k,
            "repartition_graph: old partition id out of range");
  }
  std::vector<idx_t> part(old_part.begin(), old_part.end());
  Rng rng(options.seed);
  KwayRefineOptions kro;
  kro.k = options.k;
  kro.epsilon = options.epsilon;
  kro.passes = options.passes;
  kro.anchor = old_part;
  kro.anchor_gain = options.migration_cost;
  kway_refine(g, part, kro, rng);
  return part;
}

}  // namespace cpart
