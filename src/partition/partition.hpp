// Public entry points of the multilevel graph partitioner.
//
// This module plays the role METIS/ParMETIS plays in the paper: multilevel
// k-way partitioning via recursive bisection (heavy-edge matching
// coarsening, greedy-graph-growing initial bisections, FM boundary
// refinement), with *multi-constraint* balance — every component of the
// vertex-weight vectors is balanced to within (1 + epsilon) — plus a
// standalone multi-constraint k-way refinement and a repartitioner
// (Section 2 / Section 4.2 of the paper).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace cpart {

struct PartitionOptions {
  idx_t k = 2;
  /// Per-constraint load-imbalance tolerance: LoadImbalance(P, c) <= 1+epsilon.
  double epsilon = 0.10;
  std::uint64_t seed = 1;
  /// Stop coarsening a bisection problem once the graph has at most this
  /// many vertices.
  idx_t coarsen_target = 120;
  /// Independent greedy-graph-growing attempts per initial bisection.
  int initial_tries = 8;
  /// FM passes per uncoarsening level.
  int refine_passes = 8;
  /// Final k-way polish passes on the full graph (0 disables).
  int kway_passes = 10;
  /// Graphs with at least this many vertices coarsen through the parallel
  /// matching/contraction path (see CoarsenOptions::parallel_threshold).
  /// The switch depends only on graph size, never on the pool, so partitions
  /// are bit-identical across thread counts. Set huge to force the serial
  /// path (used by quality-regression tests and benches).
  idx_t coarsen_parallel_threshold = 4096;
};

/// Computes a k-way partitioning of g balancing all g.ncon() vertex-weight
/// components within (1 + epsilon) while minimizing edge-cut. Returns one
/// partition id per vertex.
std::vector<idx_t> partition_graph(const CsrGraph& g,
                                   const PartitionOptions& options);

/// Multilevel bisection: labels each vertex 0 or 1 such that side 0 receives
/// `left_fraction` of every weight component (within epsilon).
std::vector<idx_t> bisect_graph(const CsrGraph& g, double left_fraction,
                                double epsilon, const PartitionOptions& options,
                                Rng& rng);

struct KwayRefineOptions {
  idx_t k = 2;
  double epsilon = 0.10;
  int passes = 10;
  /// When non-empty (size n), vertices prefer their anchor partition:
  /// the move gain toward/away from anchor[v] is adjusted by anchor_gain.
  /// Used by the repartitioner to limit data migration.
  std::span<const idx_t> anchor;
  wgt_t anchor_gain = 0;
};

/// Greedy multi-constraint k-way refinement: alternates balance passes
/// (drain overweight partitions along least-damaging boundary moves) and
/// refinement passes (positive-gain boundary moves that keep balance).
/// Modifies `part` in place; returns the number of vertices moved.
idx_t kway_refine(const CsrGraph& g, std::span<idx_t> part,
                  const KwayRefineOptions& options, Rng& rng);

struct RepartitionOptions {
  idx_t k = 2;
  double epsilon = 0.10;
  int passes = 10;
  /// Edge-cut units a vertex move must win to justify migrating the vertex
  /// away from its previous partition (the repartitioning trade-off).
  wgt_t migration_cost = 2;
  std::uint64_t seed = 1;
};

/// Multi-constraint repartitioning: adapts `old_part` to the (possibly
/// changed) graph g, restoring balance and improving cut while keeping the
/// number of vertices that change partition small (paper Sections 2, 4.3).
std::vector<idx_t> repartition_graph(const CsrGraph& g,
                                     std::span<const idx_t> old_part,
                                     const RepartitionOptions& options);

}  // namespace cpart
