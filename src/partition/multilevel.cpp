// Multilevel driver: coarsen / initial-partition / uncoarsen-and-refine
// bisections, composed into k-way partitionings by recursive bisection with
// proportional part counts, plus a final k-way polish pass.
#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"
#include "partition/coarsen.hpp"
#include "partition/connectivity.hpp"
#include "partition/initial_partition.hpp"
#include "partition/partition.hpp"
#include "partition/refine_bisection.hpp"

namespace cpart {

namespace {

std::vector<idx_t> multilevel_bisect(const CsrGraph& g, double left_fraction,
                                     double epsilon,
                                     const PartitionOptions& options,
                                     Rng& rng) {
  CoarsenOptions copts;
  copts.parallel_threshold = options.coarsen_parallel_threshold;
  // Coarsening chain: chain[i] maps graph_i -> graph_{i+1}; graph_0 is g.
  std::vector<Coarsening> chain;
  const CsrGraph* cur = &g;
  while (cur->num_vertices() > options.coarsen_target) {
    Coarsening c = coarsen_once(*cur, rng, copts);
    // Matching collapse stalls on star-like graphs; stop when the graph
    // shrinks by less than 5% to avoid spinning.
    if (c.coarse.num_vertices() > cur->num_vertices() * 19 / 20) break;
    chain.push_back(std::move(c));
    cur = &chain.back().coarse;
  }

  std::vector<idx_t> part =
      initial_bisection(*cur, left_fraction, epsilon, options.initial_tries,
                        options.refine_passes, rng);

  for (std::size_t i = chain.size(); i-- > 0;) {
    const CsrGraph& fine = (i == 0) ? g : chain[i - 1].coarse;
    std::vector<idx_t> fine_part(static_cast<std::size_t>(fine.num_vertices()));
    const std::vector<idx_t>& map = chain[i].coarse_of_fine;
    ThreadPool::global().parallel_for(fine.num_vertices(), [&](idx_t v) {
      fine_part[static_cast<std::size_t>(v)] =
          part[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])];
    });
    fm_refine_bisection(fine, fine_part, left_fraction, epsilon,
                        options.refine_passes, rng);
    part = std::move(fine_part);
  }
  return part;
}

/// Extracts the subgraph induced by the vertices with part01[v] == side.
/// Returns the subgraph and the parent id of each sub-vertex. Cut edges are
/// dropped (standard recursive-bisection behaviour).
struct Subgraph {
  CsrGraph graph;
  std::vector<idx_t> parent;  // sub id -> parent id
};

Subgraph induce_side(const CsrGraph& g, std::span<const idx_t> part01,
                     idx_t side) {
  const idx_t n = g.num_vertices();
  const idx_t ncon = g.ncon();
  std::vector<idx_t> local(static_cast<std::size_t>(n), kInvalidIndex);
  Subgraph sub;
  for (idx_t v = 0; v < n; ++v) {
    if (part01[static_cast<std::size_t>(v)] == side) {
      local[static_cast<std::size_t>(v)] = to_idx(sub.parent.size());
      sub.parent.push_back(v);
    }
  }
  const idx_t ns = to_idx(sub.parent.size());
  std::vector<idx_t> xadj{0};
  xadj.reserve(static_cast<std::size_t>(ns) + 1);
  std::vector<idx_t> adjncy;
  std::vector<wgt_t> adjwgt;
  std::vector<wgt_t> vwgt(static_cast<std::size_t>(ns) *
                          static_cast<std::size_t>(ncon));
  for (idx_t sv = 0; sv < ns; ++sv) {
    const idx_t v = sub.parent[static_cast<std::size_t>(sv)];
    for (idx_t c = 0; c < ncon; ++c) {
      vwgt[static_cast<std::size_t>(sv) * ncon + static_cast<std::size_t>(c)] =
          g.vertex_weight(v, c);
    }
    auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t lu =
          local[static_cast<std::size_t>(nbrs[static_cast<std::size_t>(j)])];
      if (lu == kInvalidIndex) continue;
      adjncy.push_back(lu);
      adjwgt.push_back(g.edge_weight(v, j));
    }
    xadj.push_back(to_idx(adjncy.size()));
  }
  sub.graph = CsrGraph(std::move(xadj), std::move(adjncy), std::move(vwgt),
                       std::move(adjwgt), ncon);
  return sub;
}

/// Recursive bisection assigning parts [first_part, first_part + k) to the
/// vertices of `g`, writing through `parent` into the global partition.
void recursive_bisect(const CsrGraph& g, std::span<const idx_t> parent,
                      idx_t k, idx_t first_part, double epsilon_per_level,
                      const PartitionOptions& options, Rng& rng,
                      std::vector<idx_t>& out) {
  if (k == 1) {
    for (idx_t v = 0; v < g.num_vertices(); ++v) {
      out[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])] =
          first_part;
    }
    return;
  }
  const idx_t k_left = (k + 1) / 2;
  const double fraction =
      static_cast<double>(k_left) / static_cast<double>(k);
  const std::vector<idx_t> part01 =
      multilevel_bisect(g, fraction, epsilon_per_level, options, rng);

  for (idx_t side = 0; side < 2; ++side) {
    Subgraph sub = induce_side(g, part01, side);
    // Map the sub-vertex parents through to the outermost ids.
    for (idx_t& p : sub.parent) {
      p = parent[static_cast<std::size_t>(p)];
    }
    const idx_t sub_k = (side == 0) ? k_left : k - k_left;
    const idx_t sub_first = (side == 0) ? first_part : first_part + k_left;
    recursive_bisect(sub.graph, sub.parent, sub_k, sub_first,
                     epsilon_per_level, options, rng, out);
  }
}

}  // namespace

std::vector<idx_t> bisect_graph(const CsrGraph& g, double left_fraction,
                                double epsilon, const PartitionOptions& options,
                                Rng& rng) {
  require(g.num_vertices() > 0, "bisect_graph: empty graph");
  require(left_fraction > 0.0 && left_fraction < 1.0,
          "bisect_graph: left_fraction must be in (0, 1)");
  return multilevel_bisect(g, left_fraction, epsilon, options, rng);
}

std::vector<idx_t> partition_graph(const CsrGraph& g,
                                   const PartitionOptions& options) {
  const idx_t n = g.num_vertices();
  const idx_t k = options.k;
  require(k >= 1, "partition_graph: k must be >= 1");
  std::vector<idx_t> part(static_cast<std::size_t>(n), 0);
  if (k == 1 || n == 0) return part;

  Rng rng(options.seed);
  // Imbalance budget per bisection level: tight budgets (epsilon/levels)
  // force the bisector to contort boundaries around lumpy constraints, so we
  // give each level a looser budget (epsilon / sqrt(levels)) and let the
  // final k-way polish repair the residual against the full epsilon.
  const int levels =
      std::max(1, static_cast<int>(std::ceil(std::log2(static_cast<double>(k)))));
  const double eps_level = std::clamp(
      options.epsilon / std::sqrt(static_cast<double>(levels)), 0.02,
      options.epsilon);

  std::vector<idx_t> parent(static_cast<std::size_t>(n));
  for (idx_t v = 0; v < n; ++v) parent[static_cast<std::size_t>(v)] = v;
  recursive_bisect(g, parent, k, 0, eps_level, options, rng, part);

  if (options.kway_passes > 0) {
    KwayRefineOptions kro;
    kro.k = k;
    kro.epsilon = options.epsilon;
    kro.passes = options.kway_passes;
    // Alternate fragment cleanup with refinement: merging stray components
    // unbalances the partition, refinement re-balances and may strand new
    // fragments; two rounds reach a fixed point in practice.
    for (int round = 0; round < 2; ++round) {
      merge_partition_fragments(g, part, k);
      kway_refine(g, part, kro, rng);
    }
  }
  return part;
}

}  // namespace cpart
