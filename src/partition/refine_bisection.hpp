// Fiduccia–Mattheyses boundary refinement for (multi-constraint) bisections.
//
// Moves vertices between the two sides to reduce edge-cut while driving all
// vertex-weight components toward the target split (left side receives
// `left_fraction` of each component, tolerance epsilon). Each pass performs
// a sequence of locked moves with rollback to the best prefix, where states
// are ordered lexicographically by (balance violation, cut).
#pragma once

#include <span>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace cpart {

/// Relative balance violation of a 0/1 partition: sum over constraints and
/// sides of the overweight beyond (1+epsilon)*target, normalized by the
/// constraint total. 0 means every constraint is within tolerance.
double bisection_violation(const CsrGraph& g, std::span<const idx_t> part01,
                           double left_fraction, double epsilon);

/// Runs up to `passes` FM passes; modifies part01 in place. Returns the
/// number of vertices whose side changed overall.
idx_t fm_refine_bisection(const CsrGraph& g, std::span<idx_t> part01,
                          double left_fraction, double epsilon, int passes,
                          Rng& rng);

}  // namespace cpart
