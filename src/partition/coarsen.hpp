// Graph coarsening via heavy-edge matching (HEM) and contraction — the first
// phase of the multilevel paradigm (Karypis & Kumar).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace cpart {

struct Coarsening {
  CsrGraph coarse;
  /// coarse vertex id of each fine vertex.
  std::vector<idx_t> coarse_of_fine;
};

/// One coarsening level: computes a heavy-edge matching (vertices visited in
/// random order, each unmatched vertex matches its heaviest unmatched
/// neighbour) and contracts matched pairs. Vertex-weight vectors add
/// component-wise; parallel coarse edges merge with summed weights.
Coarsening coarsen_once(const CsrGraph& g, Rng& rng);

}  // namespace cpart
