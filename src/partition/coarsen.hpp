// Graph coarsening via heavy-edge matching (HEM) and contraction — the first
// phase of the multilevel paradigm (Karypis & Kumar).
//
// Two implementations sit behind one entry point: the original serial HEM +
// slot-buffer contraction (used below a size threshold, where thread fan-out
// costs more than it saves), and a parallel path for large graphs:
// round-based propose/claim/handshake matching with atomic CAS claims, and a
// two-pass contraction (parallel degree counting + exclusive-scan offsets,
// then parallel CSR fill). Both paths are deterministic for a fixed seed
// regardless of the thread count — the parallel matching resolves every
// conflict by permutation rank, never by thread schedule.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace cpart {

struct Coarsening {
  CsrGraph coarse;
  /// coarse vertex id of each fine vertex.
  std::vector<idx_t> coarse_of_fine;
};

struct CoarsenOptions {
  /// Graphs with at least this many vertices take the parallel matching +
  /// contraction path; smaller ones use the serial path. The switch depends
  /// only on the graph, never on the pool size, so results stay bit-identical
  /// across thread counts.
  idx_t parallel_threshold = 4096;
};

/// One coarsening level: computes a heavy-edge matching (vertices visited in
/// random order, each unmatched vertex matches its heaviest unmatched
/// neighbour) and contracts matched pairs. Vertex-weight vectors add
/// component-wise; parallel coarse edges merge with summed weights.
Coarsening coarsen_once(const CsrGraph& g, Rng& rng,
                        const CoarsenOptions& options = {});

}  // namespace cpart
