#include "contact/global_search.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"

namespace cpart {

BBoxFilter::BBoxFilter(std::vector<BBox> boxes) : boxes_(std::move(boxes)) {}

BBoxFilter BBoxFilter::from_points(std::span<const Vec3> points,
                                   std::span<const idx_t> labels,
                                   idx_t num_parts) {
  require(points.size() == labels.size(),
          "BBoxFilter::from_points: size mismatch");
  std::vector<BBox> boxes(static_cast<std::size_t>(num_parts));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const idx_t l = labels[i];
    require(l >= 0 && l < num_parts,
            "BBoxFilter::from_points: label out of range");
    boxes[static_cast<std::size_t>(l)].expand(points[i]);
  }
  return BBoxFilter(std::move(boxes));
}

void BBoxFilter::query_box(const BBox& query, std::vector<idx_t>& parts) const {
  for (idx_t p = 0; p < num_parts(); ++p) {
    if (boxes_[static_cast<std::size_t>(p)].intersects(query)) {
      parts.push_back(p);
    }
  }
}

std::vector<idx_t> face_owners(const Surface& surface,
                               std::span<const idx_t> node_labels,
                               idx_t num_parts) {
  std::vector<idx_t> owners;
  face_owners_into(surface, node_labels, num_parts, owners);
  return owners;
}

void face_owners_into(const Surface& surface,
                      std::span<const idx_t> node_labels, idx_t num_parts,
                      std::vector<idx_t>& owners) {
  owners.assign(surface.faces.size(), kInvalidIndex);
  std::vector<idx_t> votes(static_cast<std::size_t>(num_parts), 0);
  std::vector<idx_t> touched;
  for (std::size_t f = 0; f < surface.faces.size(); ++f) {
    touched.clear();
    for (idx_t node : surface.faces[f].nodes) {
      const idx_t l = node_labels[static_cast<std::size_t>(node)];
      require(l >= 0 && l < num_parts, "face_owners: label out of range");
      if (votes[static_cast<std::size_t>(l)]++ == 0) touched.push_back(l);
    }
    idx_t best = touched.front();
    for (idx_t l : touched) {
      const idx_t vl = votes[static_cast<std::size_t>(l)];
      const idx_t vb = votes[static_cast<std::size_t>(best)];
      if (vl > vb || (vl == vb && l < best)) best = l;
    }
    owners[f] = best;
    for (idx_t l : touched) votes[static_cast<std::size_t>(l)] = 0;
  }
}

GlobalSearchStats global_search(
    const Mesh& mesh, const Surface& surface, std::span<const idx_t> owner,
    real_t margin,
    const std::function<void(const BBox&, std::vector<idx_t>&)>& filter) {
  require(owner.size() == surface.faces.size(),
          "global_search: owner array size mismatch");
  const idx_t nf = surface.num_faces();
  // One partial-stats slot per chunk, combined in chunk order: deterministic
  // totals with no atomic contention. Chunk indices are `unsigned` from the
  // pool; buffers are std::size_t-indexed, so every access goes through one
  // explicit widening cast (the repo-wide idiom for pool chunk buffers).
  struct Partial {
    wgt_t remote = 0;
    wgt_t sent = 0;
    wgt_t candidates = 0;
  };
  std::vector<Partial> partial(
      std::max<unsigned>(1u, ThreadPool::global().num_threads()));
  ThreadPool::global().parallel_for_chunks(
      nf, [&](unsigned chunk, idx_t begin, idx_t end) {
        assert(static_cast<std::size_t>(chunk) < partial.size());
        std::vector<idx_t> parts;
        Partial local;
        for (idx_t f = begin; f < end; ++f) {
          parts.clear();
          const BBox box =
              face_bbox(mesh, surface.faces[static_cast<std::size_t>(f)], margin);
          filter(box, parts);
          local.candidates += to_idx(parts.size());
          idx_t remote_here = 0;
          for (idx_t p : parts) {
            if (p != owner[static_cast<std::size_t>(f)]) ++remote_here;
          }
          local.remote += remote_here;
          if (remote_here > 0) ++local.sent;
        }
        partial[static_cast<std::size_t>(chunk)] = local;
      });
  GlobalSearchStats stats;
  for (const Partial& p : partial) {
    stats.remote_sends += p.remote;
    stats.elements_sent += static_cast<idx_t>(p.sent);
    stats.candidates += p.candidates;
  }
  return stats;
}

GlobalSearchStats global_search_bbox(const Mesh& mesh, const Surface& surface,
                                     std::span<const idx_t> owner,
                                     const BBoxFilter& filter, real_t margin) {
  return global_search(mesh, surface, owner, margin,
                       [&filter](const BBox& box, std::vector<idx_t>& parts) {
                         filter.query_box(box, parts);
                       });
}

GlobalSearchStats global_search_tree(const Mesh& mesh, const Surface& surface,
                                     std::span<const idx_t> owner,
                                     const SubdomainDescriptors& descriptors,
                                     real_t margin) {
  // SubdomainDescriptors::query_box uses a shared scratch mask, so each
  // worker thread keeps its own persistent mask instead. The mask stays
  // all-zero between queries and only the entries recorded in the touched
  // list are reset, so a query costs O(|result|) rather than O(k).
  const DecisionTree& tree = descriptors.tree();
  const idx_t k = descriptors.num_parts();
  return global_search(
      mesh, surface, owner, margin,
      [&tree, k](const BBox& box, std::vector<idx_t>& parts) {
        thread_local std::vector<char> mask;
        thread_local std::vector<idx_t> touched;
        if (mask.size() < static_cast<std::size_t>(k)) {
          mask.assign(static_cast<std::size_t>(k), 0);
        }
        tree.collect_box_labels(box, mask, touched);
        std::sort(touched.begin(), touched.end());
        for (idx_t p : touched) {
          parts.push_back(p);
          mask[static_cast<std::size_t>(p)] = 0;
        }
        touched.clear();
      });
}

}  // namespace cpart
