#include "contact/search_metrics.hpp"

#include "match/hungarian.hpp"

namespace cpart {

M2MResult m2m_comm(std::span<const idx_t> fe_labels,
                   std::span<const idx_t> contact_labels, idx_t k) {
  require(fe_labels.size() == contact_labels.size(),
          "m2m_comm: label array size mismatch");
  require(k >= 1, "m2m_comm: k must be >= 1");
  // Coincidence matrix C[i*k + j]: points with FE label i and contact label j.
  std::vector<wgt_t> coincidence(static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(k),
                                 0);
  for (std::size_t p = 0; p < fe_labels.size(); ++p) {
    const idx_t i = fe_labels[p];
    const idx_t j = contact_labels[p];
    require(i >= 0 && i < k && j >= 0 && j < k, "m2m_comm: label out of range");
    ++coincidence[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(j)];
  }
  // Maximal-weight matching of contact partitions onto FE partitions; the
  // matched mass stays local, everything else must be communicated.
  // Transpose so rows are contact partitions.
  std::vector<wgt_t> transposed(coincidence.size());
  for (idx_t i = 0; i < k; ++i) {
    for (idx_t j = 0; j < k; ++j) {
      transposed[static_cast<std::size_t>(j) * k + static_cast<std::size_t>(i)] =
          coincidence[static_cast<std::size_t>(i) * k +
                      static_cast<std::size_t>(j)];
    }
  }
  M2MResult result;
  result.relabel = max_weight_assignment(transposed, k);
  const wgt_t matched = assignment_weight(transposed, k, result.relabel);
  result.mismatched = static_cast<wgt_t>(fe_labels.size()) - matched;
  return result;
}

wgt_t upd_comm(std::span<const idx_t> ids_a, std::span<const idx_t> labels_a,
               std::span<const idx_t> ids_b, std::span<const idx_t> labels_b,
               idx_t universe) {
  require(ids_a.size() == labels_a.size() && ids_b.size() == labels_b.size(),
          "upd_comm: parallel array size mismatch");
  std::vector<idx_t> label_of(static_cast<std::size_t>(universe),
                              kInvalidIndex);
  for (std::size_t i = 0; i < ids_a.size(); ++i) {
    const idx_t id = ids_a[i];
    require(id >= 0 && id < universe, "upd_comm: id out of range");
    label_of[static_cast<std::size_t>(id)] = labels_a[i];
  }
  wgt_t moved = 0;
  for (std::size_t i = 0; i < ids_b.size(); ++i) {
    const idx_t id = ids_b[i];
    require(id >= 0 && id < universe, "upd_comm: id out of range");
    const idx_t old_label = label_of[static_cast<std::size_t>(id)];
    if (old_label != kInvalidIndex && old_label != labels_b[i]) ++moved;
  }
  return moved;
}

}  // namespace cpart
