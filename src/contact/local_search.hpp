// Local contact search (paper Section 2, second step of contact detection).
//
// The global search narrows the candidates; local search finds the actual
// node-to-surface proximities/penetrations. The paper leaves the local
// algorithm to the production code ("the exact details of the local search
// phase do not affect the approach used to perform the global search") —
// this module provides a standard node-to-face scheme so the library's
// contact pipeline runs end-to-end:
//   * every contact node is tested against nearby surface faces of *other*
//     bodies (or other elements, when body info is absent);
//   * faces are triangulated, the closest point on each triangle gives the
//     gap; a node within `tolerance` of a face is a contact event, and a
//     negative signed distance (behind the face's outward normal) marks
//     penetration.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/kdtree.hpp"
#include "mesh/surface.hpp"

namespace cpart {

struct ContactEvent {
  idx_t node = kInvalidIndex;   // the impacting contact node
  idx_t face = kInvalidIndex;   // index into Surface::faces
  real_t distance = 0;          // unsigned gap (0 when on the face)
  real_t signed_distance = 0;   // negative: behind the face normal
  Vec3 closest_point{};         // closest point on the face
};

struct LocalSearchOptions {
  /// Proximity threshold: nodes within this distance of a face produce an
  /// event.
  real_t tolerance = 0.1;
  /// When non-empty (size num_nodes), contacts between a node and a face
  /// of the same body are ignored (standard self-contact exclusion).
  std::span<const int> body_of_node{};
  /// Keep only the closest face per node (default) or all faces in range.
  bool closest_only = true;
};

/// Closest point on triangle (a, b, c) to p (Ericson's algorithm).
Vec3 closest_point_on_triangle(Vec3 p, Vec3 a, Vec3 b, Vec3 c);

/// Outward-ish normal of a (possibly non-planar quad) face, averaged over
/// its triangulation. Not normalized when the face is degenerate.
Vec3 face_normal(const Mesh& mesh, const SurfaceFace& face);

/// Runs local search over all contact nodes vs all surface faces, using a
/// kd-tree over face centroids to localize. Events are sorted by (node,
/// distance).
std::vector<ContactEvent> local_contact_search(
    const Mesh& mesh, const Surface& surface, const LocalSearchOptions& opts);

/// Local search restricted to a candidate face subset per node — the shape
/// the parallel pipeline produces (global search ships candidate elements
/// to the owning processor of the nodes). `candidate_faces[i]` lists face
/// indices to test against node `surface.contact_nodes[i]`.
std::vector<ContactEvent> local_contact_search_candidates(
    const Mesh& mesh, const Surface& surface,
    std::span<const std::vector<idx_t>> candidate_faces,
    const LocalSearchOptions& opts);

/// Local search of a node subset against a face subset — what one
/// processor executes after global search delivered its elements:
/// `node_ids` are global node ids (the processor's own contact nodes),
/// `face_ids` index into surface.faces (local + received elements).
std::vector<ContactEvent> local_contact_search_subset(
    const Mesh& mesh, const Surface& surface,
    std::span<const idx_t> node_ids, std::span<const idx_t> face_ids,
    const LocalSearchOptions& opts);

/// Reusable buffers for local_contact_search_subset_into. Each SPMD rank
/// owns one instance: the buffers grow to the rank's largest step and make
/// the steady-state per-step search allocation-light. Never share one
/// scratch between concurrently searching ranks.
struct SubsetSearchScratch {
  std::vector<Vec3> centroids;
  std::vector<idx_t> candidates;
  std::vector<std::array<Vec3, 3>> triangles;
};

/// local_contact_search_subset() writing into `out` (cleared first) with
/// all scratch drawn from `scratch`. The events — order included — are
/// identical to the allocating overload.
void local_contact_search_subset_into(const Mesh& mesh, const Surface& surface,
                                      std::span<const idx_t> node_ids,
                                      std::span<const idx_t> face_ids,
                                      const LocalSearchOptions& opts,
                                      SubsetSearchScratch& scratch,
                                      std::vector<ContactEvent>& out);

/// A self-contained surface-face record — what the rank-owned pipeline
/// ships and searches instead of indices into a central Surface. `key` is a
/// stable face id (element * faces_per_element + local_face, identical on
/// every rank that derives the face), and the node coordinates travel with
/// the record so the receiver needs no central mesh.
struct FaceRecord {
  idx_t key = kInvalidIndex;
  std::int32_t num_nodes = 0;
  std::array<idx_t, 4> nodes{kInvalidIndex, kInvalidIndex, kInvalidIndex,
                             kInvalidIndex};
  std::array<Vec3, 4> coords{};
};

/// Local search of `node_ids` against face records, with node positions
/// drawn from `positions` (dense, indexed by global node id). Same
/// arithmetic, exclusions, and (node, distance) ordering as
/// local_contact_search_subset_into; events carry record.key in
/// ContactEvent::face. `opts.body_of_node` uses global node ids too.
void local_contact_search_records_into(std::span<const idx_t> node_ids,
                                       std::span<const Vec3> positions,
                                       int dim,
                                       std::span<const FaceRecord> faces,
                                       const LocalSearchOptions& opts,
                                       SubsetSearchScratch& scratch,
                                       std::vector<ContactEvent>& out);

}  // namespace cpart
