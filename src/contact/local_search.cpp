#include "contact/local_search.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "parallel/thread_pool.hpp"

namespace cpart {

Vec3 closest_point_on_triangle(Vec3 p, Vec3 a, Vec3 b, Vec3 c) {
  // Ericson, "Real-Time Collision Detection", 5.1.5.
  const Vec3 ab = b - a;
  const Vec3 ac = c - a;
  const Vec3 ap = p - a;
  const real_t d1 = dot(ab, ap);
  const real_t d2 = dot(ac, ap);
  if (d1 <= 0 && d2 <= 0) return a;

  const Vec3 bp = p - b;
  const real_t d3 = dot(ab, bp);
  const real_t d4 = dot(ac, bp);
  if (d3 >= 0 && d4 <= d3) return b;

  const real_t vc = d1 * d4 - d3 * d2;
  if (vc <= 0 && d1 >= 0 && d3 <= 0) {
    const real_t v = d1 / (d1 - d3);
    return a + v * ab;
  }

  const Vec3 cp = p - c;
  const real_t d5 = dot(ab, cp);
  const real_t d6 = dot(ac, cp);
  if (d6 >= 0 && d5 <= d6) return c;

  const real_t vb = d5 * d2 - d1 * d6;
  if (vb <= 0 && d2 >= 0 && d6 <= 0) {
    const real_t w = d2 / (d2 - d6);
    return a + w * ac;
  }

  const real_t va = d3 * d6 - d5 * d4;
  if (va <= 0 && (d4 - d3) >= 0 && (d5 - d6) >= 0) {
    const real_t w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
    return b + w * (c - b);
  }

  const real_t denom = 1.0 / (va + vb + vc);
  const real_t v = vb * denom;
  const real_t w = vc * denom;
  return a + v * ab + w * ac;
}

namespace {

Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

/// Triangulation of a face: (0,1,2) plus (0,2,3) for quads; edges in 2D are
/// treated as degenerate triangles (a, b, b).
void face_triangles(const Mesh& mesh, const SurfaceFace& face,
                    std::vector<std::array<Vec3, 3>>* tris) {
  tris->clear();
  const auto& ids = face.nodes;
  if (ids.size() == 2) {
    tris->push_back({mesh.node(ids[0]), mesh.node(ids[1]), mesh.node(ids[1])});
  } else if (ids.size() == 3) {
    tris->push_back(
        {mesh.node(ids[0]), mesh.node(ids[1]), mesh.node(ids[2])});
  } else {
    tris->push_back(
        {mesh.node(ids[0]), mesh.node(ids[1]), mesh.node(ids[2])});
    tris->push_back(
        {mesh.node(ids[0]), mesh.node(ids[2]), mesh.node(ids[3])});
  }
}

/// Closest point on a (possibly degenerate) triangle, robust to b == c.
Vec3 closest_on_tri_robust(Vec3 p, const std::array<Vec3, 3>& t) {
  if (t[1] == t[2]) {
    // Segment case.
    const Vec3 ab = t[1] - t[0];
    const real_t len2 = dot(ab, ab);
    if (len2 <= 0) return t[0];
    const real_t s = std::clamp<real_t>(dot(p - t[0], ab) / len2, 0, 1);
    return t[0] + s * ab;
  }
  return closest_point_on_triangle(p, t[0], t[1], t[2]);
}

struct FaceTest {
  real_t distance;
  real_t signed_distance;
  Vec3 closest;
};

FaceTest test_face(const Mesh& mesh, const SurfaceFace& face, Vec3 p,
                   std::vector<std::array<Vec3, 3>>* scratch) {
  face_triangles(mesh, face, scratch);
  FaceTest best{std::numeric_limits<real_t>::max(), 0, {}};
  for (const auto& tri : *scratch) {
    const Vec3 c = closest_on_tri_robust(p, tri);
    const real_t d = norm(p - c);
    if (d < best.distance) {
      best.distance = d;
      best.closest = c;
    }
  }
  const Vec3 n = face_normal(mesh, face);
  const real_t nn = norm(n);
  best.signed_distance =
      nn > 0 ? dot(p - best.closest, (1.0 / nn) * n) : best.distance;
  return best;
}

}  // namespace

Vec3 face_normal(const Mesh& mesh, const SurfaceFace& face) {
  const auto& ids = face.nodes;
  if (ids.size() < 3) {
    // 2D edge: rotate the edge direction by 90 degrees in the plane.
    const Vec3 d = mesh.node(ids[1]) - mesh.node(ids[0]);
    return {-d.y, d.x, 0};
  }
  Vec3 n{};
  const Vec3 a = mesh.node(ids[0]);
  for (std::size_t i = 1; i + 1 < ids.size(); ++i) {
    n = n + cross(mesh.node(ids[i]) - a, mesh.node(ids[i + 1]) - a);
  }
  return n;
}

std::vector<ContactEvent> local_contact_search(
    const Mesh& mesh, const Surface& surface, const LocalSearchOptions& opts) {
  require(opts.tolerance > 0, "local_contact_search: tolerance must be > 0");
  require(opts.body_of_node.empty() ||
              opts.body_of_node.size() ==
                  static_cast<std::size_t>(mesh.num_nodes()),
          "local_contact_search: body array size mismatch");

  // kd-tree over face centroids; candidate faces for a node are those whose
  // centroid lies within (tolerance + face radius bound).
  std::vector<Vec3> centroids(surface.faces.size());
  real_t max_radius = 0;
  for (std::size_t f = 0; f < surface.faces.size(); ++f) {
    Vec3 c{};
    for (idx_t id : surface.faces[f].nodes) c = c + mesh.node(id);
    c = (1.0 / static_cast<real_t>(surface.faces[f].nodes.size())) * c;
    centroids[f] = c;
    for (idx_t id : surface.faces[f].nodes) {
      max_radius = std::max(max_radius, norm(mesh.node(id) - c));
    }
  }
  const KdTree tree(centroids, mesh.dim());
  const real_t reach = opts.tolerance + max_radius;

  const idx_t num_contact = surface.num_contact_nodes();
  std::vector<std::vector<ContactEvent>> per_chunk(
      std::max<unsigned>(1, ThreadPool::global().num_threads()));
  ThreadPool::global().parallel_for_chunks(
      num_contact, [&](unsigned chunk, idx_t begin, idx_t end) {
        assert(static_cast<std::size_t>(chunk) < per_chunk.size());
        std::vector<idx_t> candidates;
        std::vector<std::array<Vec3, 3>> scratch;
        auto& events = per_chunk[static_cast<std::size_t>(chunk)];
        for (idx_t i = begin; i < end; ++i) {
          const idx_t node = surface.contact_nodes[static_cast<std::size_t>(i)];
          const Vec3 p = mesh.node(node);
          BBox box;
          box.expand(p);
          box.inflate(reach);
          candidates.clear();
          tree.query_box(box, candidates);
          ContactEvent best;
          bool have_best = false;
          for (idx_t f : candidates) {
            const SurfaceFace& face =
                surface.faces[static_cast<std::size_t>(f)];
            // Exclusions: a node never contacts a face it belongs to, and
            // (with body info) never a face of its own body.
            if (std::find(face.nodes.begin(), face.nodes.end(), node) !=
                face.nodes.end()) {
              continue;
            }
            if (!opts.body_of_node.empty() &&
                opts.body_of_node[static_cast<std::size_t>(node)] ==
                    opts.body_of_node[static_cast<std::size_t>(
                        face.nodes.front())]) {
              continue;
            }
            const FaceTest t = test_face(mesh, face, p, &scratch);
            if (t.distance > opts.tolerance) continue;
            ContactEvent e;
            e.node = node;
            e.face = f;
            e.distance = t.distance;
            e.signed_distance = t.signed_distance;
            e.closest_point = t.closest;
            if (opts.closest_only) {
              if (!have_best || e.distance < best.distance) {
                best = e;
                have_best = true;
              }
            } else {
              events.push_back(e);
            }
          }
          if (opts.closest_only && have_best) events.push_back(best);
        }
      });

  std::vector<ContactEvent> all;
  for (auto& chunk : per_chunk) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  std::sort(all.begin(), all.end(), [](const ContactEvent& a,
                                       const ContactEvent& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.distance < b.distance;
  });
  return all;
}

std::vector<ContactEvent> local_contact_search_subset(
    const Mesh& mesh, const Surface& surface,
    std::span<const idx_t> node_ids, std::span<const idx_t> face_ids,
    const LocalSearchOptions& opts) {
  SubsetSearchScratch scratch;
  std::vector<ContactEvent> events;
  local_contact_search_subset_into(mesh, surface, node_ids, face_ids, opts,
                                   scratch, events);
  return events;
}

void local_contact_search_subset_into(const Mesh& mesh, const Surface& surface,
                                      std::span<const idx_t> node_ids,
                                      std::span<const idx_t> face_ids,
                                      const LocalSearchOptions& opts,
                                      SubsetSearchScratch& scratch,
                                      std::vector<ContactEvent>& out) {
  require(opts.tolerance > 0,
          "local_contact_search_subset: tolerance must be > 0");
  out.clear();
  // kd-tree over the face subset's centroids.
  scratch.centroids.assign(face_ids.size(), Vec3{});
  real_t max_radius = 0;
  for (std::size_t i = 0; i < face_ids.size(); ++i) {
    const idx_t f = face_ids[i];
    require(f >= 0 && f < surface.num_faces(),
            "local_contact_search_subset: face index out of range");
    const SurfaceFace& face = surface.faces[static_cast<std::size_t>(f)];
    Vec3 c{};
    for (idx_t id : face.nodes) c = c + mesh.node(id);
    c = (1.0 / static_cast<real_t>(face.nodes.size())) * c;
    scratch.centroids[i] = c;
    for (idx_t id : face.nodes) {
      max_radius = std::max(max_radius, norm(mesh.node(id) - c));
    }
  }
  const KdTree tree(scratch.centroids, mesh.dim());
  const real_t reach = opts.tolerance + max_radius;

  for (idx_t node : node_ids) {
    const Vec3 p = mesh.node(node);
    BBox box;
    box.expand(p);
    box.inflate(reach);
    scratch.candidates.clear();
    tree.query_box(box, scratch.candidates);
    ContactEvent best;
    bool have_best = false;
    for (idx_t local : scratch.candidates) {
      const idx_t f = face_ids[static_cast<std::size_t>(local)];
      const SurfaceFace& face = surface.faces[static_cast<std::size_t>(f)];
      if (std::find(face.nodes.begin(), face.nodes.end(), node) !=
          face.nodes.end()) {
        continue;
      }
      if (!opts.body_of_node.empty() &&
          opts.body_of_node[static_cast<std::size_t>(node)] ==
              opts.body_of_node[static_cast<std::size_t>(face.nodes.front())]) {
        continue;
      }
      const FaceTest t = test_face(mesh, face, p, &scratch.triangles);
      if (t.distance > opts.tolerance) continue;
      ContactEvent e;
      e.node = node;
      e.face = f;
      e.distance = t.distance;
      e.signed_distance = t.signed_distance;
      e.closest_point = t.closest;
      if (opts.closest_only) {
        if (!have_best || e.distance < best.distance) {
          best = e;
          have_best = true;
        }
      } else {
        out.push_back(e);
      }
    }
    if (opts.closest_only && have_best) out.push_back(best);
  }
  std::sort(out.begin(), out.end(),
            [](const ContactEvent& a, const ContactEvent& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.distance < b.distance;
            });
}

namespace {

/// Triangulation of a face record, mirroring face_triangles: (0,1,2) plus
/// (0,2,3) for quads, degenerate (a, b, b) for 2-node edges.
void record_triangles(const FaceRecord& rec,
                      std::vector<std::array<Vec3, 3>>* tris) {
  tris->clear();
  const auto& c = rec.coords;
  if (rec.num_nodes == 2) {
    tris->push_back({c[0], c[1], c[1]});
  } else if (rec.num_nodes == 3) {
    tris->push_back({c[0], c[1], c[2]});
  } else {
    tris->push_back({c[0], c[1], c[2]});
    tris->push_back({c[0], c[2], c[3]});
  }
}

/// face_normal over a record's coordinates (fan cross-sum from node 0).
Vec3 record_normal(const FaceRecord& rec) {
  if (rec.num_nodes < 3) {
    const Vec3 d = rec.coords[1] - rec.coords[0];
    return {-d.y, d.x, 0};
  }
  Vec3 n{};
  const Vec3 a = rec.coords[0];
  for (std::int32_t i = 1; i + 1 < rec.num_nodes; ++i) {
    n = n + cross(rec.coords[static_cast<std::size_t>(i)] - a,
                  rec.coords[static_cast<std::size_t>(i) + 1] - a);
  }
  return n;
}

FaceTest test_record(const FaceRecord& rec, Vec3 p,
                     std::vector<std::array<Vec3, 3>>* scratch) {
  record_triangles(rec, scratch);
  FaceTest best{std::numeric_limits<real_t>::max(), 0, {}};
  for (const auto& tri : *scratch) {
    const Vec3 c = closest_on_tri_robust(p, tri);
    const real_t d = norm(p - c);
    if (d < best.distance) {
      best.distance = d;
      best.closest = c;
    }
  }
  const Vec3 n = record_normal(rec);
  const real_t nn = norm(n);
  best.signed_distance =
      nn > 0 ? dot(p - best.closest, (1.0 / nn) * n) : best.distance;
  return best;
}

bool record_contains_node(const FaceRecord& rec, idx_t node) {
  for (std::int32_t i = 0; i < rec.num_nodes; ++i) {
    if (rec.nodes[static_cast<std::size_t>(i)] == node) return true;
  }
  return false;
}

}  // namespace

void local_contact_search_records_into(std::span<const idx_t> node_ids,
                                       std::span<const Vec3> positions,
                                       int dim,
                                       std::span<const FaceRecord> faces,
                                       const LocalSearchOptions& opts,
                                       SubsetSearchScratch& scratch,
                                       std::vector<ContactEvent>& out) {
  require(opts.tolerance > 0,
          "local_contact_search_records: tolerance must be > 0");
  out.clear();
  scratch.centroids.assign(faces.size(), Vec3{});
  real_t max_radius = 0;
  for (std::size_t i = 0; i < faces.size(); ++i) {
    const FaceRecord& rec = faces[i];
    require(rec.num_nodes >= 2 && rec.num_nodes <= 4,
            "local_contact_search_records: bad face record");
    Vec3 c{};
    for (std::int32_t j = 0; j < rec.num_nodes; ++j) {
      c = c + rec.coords[static_cast<std::size_t>(j)];
    }
    c = (1.0 / static_cast<real_t>(rec.num_nodes)) * c;
    scratch.centroids[i] = c;
    for (std::int32_t j = 0; j < rec.num_nodes; ++j) {
      max_radius = std::max(
          max_radius, norm(rec.coords[static_cast<std::size_t>(j)] - c));
    }
  }
  const KdTree tree(scratch.centroids, dim);
  const real_t reach = opts.tolerance + max_radius;

  for (idx_t node : node_ids) {
    const Vec3 p = positions[static_cast<std::size_t>(node)];
    BBox box;
    box.expand(p);
    box.inflate(reach);
    scratch.candidates.clear();
    tree.query_box(box, scratch.candidates);
    ContactEvent best;
    bool have_best = false;
    for (idx_t local : scratch.candidates) {
      const FaceRecord& rec = faces[static_cast<std::size_t>(local)];
      if (record_contains_node(rec, node)) continue;
      if (!opts.body_of_node.empty() &&
          opts.body_of_node[static_cast<std::size_t>(node)] ==
              opts.body_of_node[static_cast<std::size_t>(rec.nodes[0])]) {
        continue;
      }
      const FaceTest t = test_record(rec, p, &scratch.triangles);
      if (t.distance > opts.tolerance) continue;
      ContactEvent e;
      e.node = node;
      e.face = rec.key;
      e.distance = t.distance;
      e.signed_distance = t.signed_distance;
      e.closest_point = t.closest;
      if (opts.closest_only) {
        if (!have_best || e.distance < best.distance) {
          best = e;
          have_best = true;
        }
      } else {
        out.push_back(e);
      }
    }
    if (opts.closest_only && have_best) out.push_back(best);
  }
  std::sort(out.begin(), out.end(),
            [](const ContactEvent& a, const ContactEvent& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.distance < b.distance;
            });
}

std::vector<ContactEvent> local_contact_search_candidates(
    const Mesh& mesh, const Surface& surface,
    std::span<const std::vector<idx_t>> candidate_faces,
    const LocalSearchOptions& opts) {
  require(candidate_faces.size() == surface.contact_nodes.size(),
          "local_contact_search_candidates: candidate list size mismatch");
  std::vector<ContactEvent> events;
  std::vector<std::array<Vec3, 3>> scratch;
  for (std::size_t i = 0; i < candidate_faces.size(); ++i) {
    const idx_t node = surface.contact_nodes[i];
    const Vec3 p = mesh.node(node);
    ContactEvent best;
    bool have_best = false;
    for (idx_t f : candidate_faces[i]) {
      require(f >= 0 && f < surface.num_faces(),
              "local_contact_search_candidates: face index out of range");
      const SurfaceFace& face = surface.faces[static_cast<std::size_t>(f)];
      if (std::find(face.nodes.begin(), face.nodes.end(), node) !=
          face.nodes.end()) {
        continue;
      }
      if (!opts.body_of_node.empty() &&
          opts.body_of_node[static_cast<std::size_t>(node)] ==
              opts.body_of_node[static_cast<std::size_t>(face.nodes.front())]) {
        continue;
      }
      const FaceTest t = test_face(mesh, face, p, &scratch);
      if (t.distance > opts.tolerance) continue;
      ContactEvent e;
      e.node = node;
      e.face = f;
      e.distance = t.distance;
      e.signed_distance = t.signed_distance;
      e.closest_point = t.closest;
      if (opts.closest_only) {
        if (!have_best || e.distance < best.distance) {
          best = e;
          have_best = true;
        }
      } else {
        events.push_back(e);
      }
    }
    if (opts.closest_only && have_best) events.push_back(best);
  }
  std::sort(events.begin(), events.end(),
            [](const ContactEvent& a, const ContactEvent& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.distance < b.distance;
            });
  return events;
}

}  // namespace cpart
