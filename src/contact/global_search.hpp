// Parallel global contact search (paper Sections 2 and 4).
//
// Each processor must discover which *other* partitions a surface element
// might touch and send the element there. The filter deciding "might touch"
// is the difference between the two algorithms:
//   * ML+RCB represents each contact subdomain by one bounding box
//     (BBoxFilter) — coarse, and overlapping boxes cause false positives;
//   * MCML+DT represents each subdomain by its decision-tree leaf boxes
//     (SubdomainDescriptors::query_box) — tight, few false positives.
// NRemote is the total number of (surface element, remote partition) sends
// the filter produces.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "mesh/surface.hpp"
#include "tree/descriptor_tree.hpp"

namespace cpart {

/// One-bounding-box-per-subdomain filter (the ML+RCB global search).
class BBoxFilter {
 public:
  /// boxes[p] is the bounding box of partition p's contact points.
  explicit BBoxFilter(std::vector<BBox> boxes);

  /// Builds the per-partition boxes from labeled contact points.
  static BBoxFilter from_points(std::span<const Vec3> points,
                                std::span<const idx_t> labels, idx_t num_parts);

  idx_t num_parts() const { return to_idx(boxes_.size()); }
  const BBox& box(idx_t p) const { return boxes_[static_cast<std::size_t>(p)]; }

  /// Appends every partition whose box intersects `query` (ascending).
  void query_box(const BBox& query, std::vector<idx_t>& parts) const;

 private:
  std::vector<BBox> boxes_;
};

/// Majority owner of each surface face under a per-*node* labeling:
/// the partition owning most of the face's nodes (ties -> lowest id).
std::vector<idx_t> face_owners(const Surface& surface,
                               std::span<const idx_t> node_labels,
                               idx_t num_parts);

/// face_owners() writing into `owners` (storage reused across calls).
void face_owners_into(const Surface& surface,
                      std::span<const idx_t> node_labels, idx_t num_parts,
                      std::vector<idx_t>& owners);

struct GlobalSearchStats {
  /// NRemote: total (element, remote partition) sends.
  wgt_t remote_sends = 0;
  /// Elements whose filter result contains at least one remote partition.
  idx_t elements_sent = 0;
  /// Candidate partitions examined (incl. own) — filter work measure.
  wgt_t candidates = 0;
};

/// Runs the global-search filter over every surface face. `filter` appends
/// candidate partitions for a face bounding box; faces are inflated by
/// `margin` (contact tolerance) before querying. Thread-safe filters are
/// evaluated in parallel.
GlobalSearchStats global_search(
    const Mesh& mesh, const Surface& surface, std::span<const idx_t> owner,
    real_t margin,
    const std::function<void(const BBox&, std::vector<idx_t>&)>& filter);

/// Convenience wrappers for the two filters under comparison.
GlobalSearchStats global_search_bbox(const Mesh& mesh, const Surface& surface,
                                     std::span<const idx_t> owner,
                                     const BBoxFilter& filter, real_t margin);
GlobalSearchStats global_search_tree(const Mesh& mesh, const Surface& surface,
                                     std::span<const idx_t> owner,
                                     const SubdomainDescriptors& descriptors,
                                     real_t margin);

}  // namespace cpart
