// Communication metrics connecting the two decompositions (paper Section 5.1).
//
//   M2MComm — contact points whose FE-phase partition differs from their
//     contact-phase partition, after the contact partition has been
//     relabelled by an exact maximal-weight matching to maximize agreement.
//     Paid by ML+RCB twice per time step (to the contact decomposition and
//     back); structurally zero for MCML+DT.
//   UpdComm — contact points whose contact-phase label changed between
//     consecutive snapshots (redistribution cost of incremental RCB).
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace cpart {

struct M2MResult {
  /// Contact points whose (relabelled) contact partition differs from the
  /// FE partition.
  wgt_t mismatched = 0;
  /// The optimal relabelling: contact partition j plays FE partition
  /// relabel[j].
  std::vector<idx_t> relabel;
};

/// Computes M2MComm between per-point FE labels and contact labels (both in
/// [0, k)).
M2MResult m2m_comm(std::span<const idx_t> fe_labels,
                   std::span<const idx_t> contact_labels, idx_t k);

/// UpdComm between two consecutive labelings of (subsets of) a persistent
/// point set: `ids_a`/`labels_a` and `ids_b`/`labels_b` are parallel arrays
/// keyed by stable point ids; counts ids present in both with different
/// labels. `universe` is the stable id space size.
wgt_t upd_comm(std::span<const idx_t> ids_a, std::span<const idx_t> labels_a,
               std::span<const idx_t> ids_b, std::span<const idx_t> labels_b,
               idx_t universe);

}  // namespace cpart
