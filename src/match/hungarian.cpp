#include "match/hungarian.hpp"

#include <algorithm>
#include <limits>

namespace cpart {

std::vector<idx_t> max_weight_assignment(const std::vector<wgt_t>& weights,
                                         idx_t n) {
  require(n >= 0, "max_weight_assignment: negative size");
  require(weights.size() == static_cast<std::size_t>(n) *
                                static_cast<std::size_t>(n),
          "max_weight_assignment: matrix size must be n*n");
  if (n == 0) return {};

  // Classic potentials formulation on the minimization problem; maximize by
  // negating the weights. 1-based internal arrays, sentinel column 0.
  const wgt_t kInf = std::numeric_limits<wgt_t>::max() / 4;
  auto cost = [&](idx_t r, idx_t c) {
    return -weights[static_cast<std::size_t>(r) * n + static_cast<std::size_t>(c)];
  };

  std::vector<wgt_t> u(static_cast<std::size_t>(n) + 1, 0);
  std::vector<wgt_t> v(static_cast<std::size_t>(n) + 1, 0);
  std::vector<idx_t> match(static_cast<std::size_t>(n) + 1, 0);  // col -> row
  std::vector<idx_t> way(static_cast<std::size_t>(n) + 1, 0);

  for (idx_t i = 1; i <= n; ++i) {
    match[0] = i;
    idx_t j0 = 0;
    std::vector<wgt_t> minv(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(n) + 1, 0);
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      const idx_t i0 = match[static_cast<std::size_t>(j0)];
      wgt_t delta = kInf;
      idx_t j1 = 0;
      for (idx_t j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const wgt_t cur = cost(i0 - 1, j - 1) - u[static_cast<std::size_t>(i0)] -
                          v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (idx_t j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(match[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<std::size_t>(j0)] != 0);
    // Augment along the alternating path.
    do {
      const idx_t j1 = way[static_cast<std::size_t>(j0)];
      match[static_cast<std::size_t>(j0)] = match[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<idx_t> row_to_col(static_cast<std::size_t>(n), kInvalidIndex);
  for (idx_t j = 1; j <= n; ++j) {
    row_to_col[static_cast<std::size_t>(match[static_cast<std::size_t>(j)] - 1)] =
        j - 1;
  }
  return row_to_col;
}

wgt_t assignment_weight(const std::vector<wgt_t>& weights, idx_t n,
                        const std::vector<idx_t>& row_to_col) {
  require(row_to_col.size() == static_cast<std::size_t>(n),
          "assignment_weight: assignment size mismatch");
  wgt_t total = 0;
  for (idx_t r = 0; r < n; ++r) {
    total += weights[static_cast<std::size_t>(r) * n +
                     static_cast<std::size_t>(row_to_col[static_cast<std::size_t>(r)])];
  }
  return total;
}

}  // namespace cpart
