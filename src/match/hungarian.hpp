// Exact maximum-weight bipartite assignment (Hungarian algorithm, O(k^3)).
//
// The paper minimizes the ML+RCB mapping cost (M2MComm) by relabelling the
// RCB partitions with "a maximal weight matching algorithm" on the k x k
// coincidence matrix between the FE partition and the contact partition.
// k is at most a few hundred, so the exact cubic algorithm is instant.
#pragma once

#include <vector>

#include "util/common.hpp"

namespace cpart {

/// Given a square weight matrix w (row-major, n x n), returns the column
/// assigned to each row so that the total weight is maximized.
std::vector<idx_t> max_weight_assignment(const std::vector<wgt_t>& weights,
                                         idx_t n);

/// Total weight of an assignment under the same matrix layout.
wgt_t assignment_weight(const std::vector<wgt_t>& weights, idx_t n,
                        const std::vector<idx_t>& row_to_col);

}  // namespace cpart
