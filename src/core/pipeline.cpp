#include "core/pipeline.hpp"

#include <algorithm>
#include <array>

#include "contact/global_search.hpp"
#include "contact/search_metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "tree/tree_io.hpp"
#include "util/timer.hpp"

namespace cpart {

void SearchConfig::validate(const char* who) const {
  require(search_margin >= contact_tolerance,
          std::string(who) +
              ": search_margin must cover contact_tolerance, or remote "
              "contacts could be missed");
}

LocalSearchOptions SearchConfig::local_options(
    std::span<const int> body_of_node) const {
  LocalSearchOptions local;
  local.tolerance = contact_tolerance;
  local.body_of_node = body_of_node;
  local.closest_only = closest_only;
  return local;
}

namespace {

bool event_order(const ContactEvent& a, const ContactEvent& b) {
  if (a.node != b.node) return a.node < b.node;
  return a.distance < b.distance;
}

/// The face shipment payload: ids plus the coordinates the receiver's
/// search needs.
FaceShipMsg make_face_msg(const Mesh& mesh, const SurfaceFace& face, idx_t f) {
  FaceShipMsg m;
  m.face = f;
  m.element = face.element;
  m.num_nodes = static_cast<std::int32_t>(face.nodes.size());
  for (std::size_t i = 0; i < face.nodes.size() && i < m.nodes.size(); ++i) {
    m.nodes[i] = face.nodes[i];
    m.coords[i] = mesh.node(face.nodes[i]);
  }
  return m;
}

/// Deterministic merge: per-rank events concatenated in rank order, then
/// one global sort by (node, distance) — the identical input sequence and
/// comparison the centralized implementation sorts, hence bit-identical
/// output.
template <typename Report>
void merge_rank_events(const std::vector<Rank>& ranks, Report& report) {
  report.events_per_processor.assign(ranks.size(), 0);
  report.events.clear();
  for (std::size_t q = 0; q < ranks.size(); ++q) {
    report.events_per_processor[q] = to_idx(ranks[q].events.size());
    report.events.insert(report.events.end(), ranks[q].events.begin(),
                         ranks[q].events.end());
  }
  std::sort(report.events.begin(), report.events.end(), event_order);
  report.contact_events = to_idx(report.events.size());
  report.penetrating_events = 0;
  for (const ContactEvent& e : report.events) {
    if (e.signed_distance < 0) ++report.penetrating_events;
  }
}

void init_phase(RankPhaseBreakdown& phase, idx_t k) {
  phase.descriptor_ms.assign(static_cast<std::size_t>(k), 0.0);
  phase.halo_ms.assign(static_cast<std::size_t>(k), 0.0);
  phase.ship_ms.assign(static_cast<std::size_t>(k), 0.0);
  phase.search_ms.assign(static_cast<std::size_t>(k), 0.0);
  phase.descriptor_wait_ms.assign(static_cast<std::size_t>(k), 0.0);
  phase.halo_wait_ms.assign(static_cast<std::size_t>(k), 0.0);
  phase.ship_wait_ms.assign(static_cast<std::size_t>(k), 0.0);
  phase.search_wait_ms.assign(static_cast<std::size_t>(k), 0.0);
}

/// providers[dst] = sorted unique list of ranks that post halo nodes to dst
/// — the inverse of the per-rank halo send lists, so the consuming phase can
/// wait on just its neighbors' rows instead of all k.
void build_halo_providers(const std::vector<SubdomainView>& views, idx_t k,
                          std::vector<std::vector<idx_t>>& providers) {
  providers.assign(static_cast<std::size_t>(k), {});
  for (idx_t r = 0; r < k; ++r) {
    for (const HaloSend& hs : views[static_cast<std::size_t>(r)].halo_sends) {
      providers[static_cast<std::size_t>(hs.dst)].push_back(r);
    }
  }
  for (std::vector<idx_t>& list : providers) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

}  // namespace

void validate_snapshot_identity(const Mesh& mesh, const Surface& surface,
                                ElementType type0, idx_t num_nodes0,
                                idx_t max_elements, const char* who) {
  const std::string w(who);
  require(mesh.element_type() == type0,
          w + ": snapshot element type differs from the construction mesh");
  require(mesh.num_nodes() == num_nodes0,
          w + ": snapshot node count differs from the construction mesh "
              "(node ids must be stable across the sequence)");
  require(mesh.num_elements() <= max_elements,
          w + ": snapshot has more elements than the construction mesh "
              "(elements can only erode within one sequence)");
  require(to_idx(surface.is_contact_node.size()) == mesh.num_nodes(),
          w + ": surface contact arrays are not indexed by this mesh's "
              "nodes");
}

ContactPipeline::ContactPipeline(const Mesh& mesh0, const Surface& surface0,
                                 const PipelineConfig& config)
    : config_(config),
      partitioner_(mesh0, surface0, config.decomposition),
      element_type0_(mesh0.element_type()),
      num_nodes0_(mesh0.num_nodes()),
      num_elements0_(mesh0.num_elements()),
      exchange_(config.decomposition.k),
      executor_(config.decomposition.k) {
  config_.search.validate("ContactPipeline");
  ranks_.resize(static_cast<std::size_t>(k()));
  for (idx_t r = 0; r < k(); ++r) {
    ranks_[static_cast<std::size_t>(r)].id = r;
  }
}

PipelineStepReport ContactPipeline::run_step(const Mesh& mesh,
                                             const Surface& surface,
                                             std::span<const int> body_of_node) {
  validate_snapshot_identity(mesh, surface, element_type0_, num_nodes0_,
                             num_elements0_, "ContactPipeline");
  PipelineStepReport report;
  PipelineHealth health;
  const bool ok = try_spmd_step(exchange_, health, [&] {
    report = run_step_spmd(mesh, surface, body_of_node);
  });
  if (ok) {
    report.health = exchange_.take_health();
    return report;
  }
  report = run_step_reference(mesh, surface, body_of_node);
  report.health = health;
  return report;
}

PipelineStepReport ContactPipeline::run_step_spmd(
    const Mesh& mesh, const Surface& surface,
    std::span<const int> body_of_node) {
  const idx_t num_parts = k();
  PipelineStepReport report;
  init_phase(report.phase, num_parts);

  // Per-step ownership views. The nodal graph is cached across snapshots
  // (rebuilt only when erosion changed the topology) and the halo send
  // lists follow its version.
  const CsrGraph& graph = graph_cache_.get(mesh);
  const std::vector<idx_t>& part = partitioner_.node_partition();
  contact_labels_.clear();
  contact_labels_.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) {
    contact_labels_.push_back(part[static_cast<std::size_t>(id)]);
  }
  face_owners_into(surface, part, num_parts, face_owner_);
  build_subdomain_views(surface.contact_nodes, contact_labels_, face_owner_,
                        num_parts, views_);
  if (halo_version_ != graph_cache_.version()) {
    build_halo_sends(graph, part, num_parts, views_);
    build_halo_providers(views_, num_parts, halo_providers_);
    halo_version_ = graph_cache_.version();
  }

  // --- Driver section: induce this snapshot's descriptors on behalf of
  // rank 0 — parallel subtree induction across the whole pool, warm-started
  // from last step's recycled tree storage — and broadcast the encoded
  // tree. Charged to descriptor_ms[0], where rank 0's induce+serialize was
  // timed before the phase fusion. The broadcast group is born closed (its
  // rows are posted here, before the run), so the k per-destination wire
  // validations — the former serial section of delivery #1 — spread across
  // the async workers while the halo phase proceeds underneath them. --------
  {
    Timer timer;
    if (ranks_[0].descriptors.has_value()) {
      induce_ws_.recycle(ranks_[0].descriptors->release_tree());
    }
    for (Rank& rank : ranks_) rank.begin_step();
    std::vector<Vec3> points;
    points.reserve(surface.contact_nodes.size());
    for (idx_t id : surface.contact_nodes) points.push_back(mesh.node(id));
    DescriptorOptions dopts = partitioner_.config().descriptor;
    dopts.dim = mesh.dim();
    dopts.parallel = true;
    ranks_[0].descriptors.emplace(points, contact_labels_, num_parts, dopts,
                                  &induce_ws_);
    exchange_.descriptors().broadcast(
        0, DescriptorTreeMsg{encode_tree(ranks_[0].descriptors->tree(),
                                         config_.wire_format)});
    report.phase.descriptor_ms[0] += timer.milliseconds();
  }
  report.descriptor_tree_nodes = ranks_[0].descriptors->num_tree_nodes();

  // --- Phases 1-4 in one dependency-driven run: parse (reads the born-
  // closed broadcast — delivery #1), halo post, ghost intake + element
  // shipping (reads halo from just this rank's neighbors — delivery #2),
  // local search (reads faces — delivery #3). A rank enters each phase the
  // moment its own inbox cells commit; there is no global barrier. ----------
  const auto parse_phase = [&](idx_t r) {
    // Every other rank parses its own copy off the wire (the format round-
    // trips doubles exactly, so all k copies answer queries identically).
    if (r == 0) return;
    const auto& in = exchange_.descriptors().inbox(r);
    require(in.size() == 1, "ContactPipeline: descriptor broadcast lost");
    ranks_[static_cast<std::size_t>(r)].descriptors.emplace(
        decode_tree(in.front().wire), num_parts);
  };
  const auto halo_phase = [&](idx_t r) {
    for (const HaloSend& hs : views_[static_cast<std::size_t>(r)].halo_sends) {
      exchange_.halo().send(r, hs.dst,
                            HaloNodeMsg{hs.node, mesh.node(hs.node)});
    }
  };
  const auto ship_phase = [&](idx_t r) {
    Rank& rank = ranks_[static_cast<std::size_t>(r)];
    const auto& ghosts_in = exchange_.halo().inbox(r);
    rank.ghosts.assign(ghosts_in.begin(), ghosts_in.end());
    for (idx_t f : views_[static_cast<std::size_t>(r)].owned_faces) {
      const SurfaceFace& face = surface.faces[static_cast<std::size_t>(f)];
      const BBox box = face_bbox(mesh, face, config_.search.search_margin);
      rank.query_parts.clear();
      rank.descriptors->query_box(box, rank.query_parts);
      for (idx_t q : rank.query_parts) {
        if (q == r) continue;
        exchange_.faces().send(r, q, make_face_msg(mesh, face, f));
      }
    }
  };
  const LocalSearchOptions local = config_.search.local_options(body_of_node);
  const auto search_phase = [&](idx_t r) {
    Rank& rank = ranks_[static_cast<std::size_t>(r)];
    const SubdomainView& view = views_[static_cast<std::size_t>(r)];
    rank.merge_faces(view.owned_faces, exchange_.faces().inbox(r));
    if (view.contact_nodes.empty() || rank.local_faces.empty()) return;
    local_contact_search_subset_into(mesh, surface, view.contact_nodes,
                                     rank.local_faces, local,
                                     rank.search_scratch, rank.events);
  };
  const std::array<AsyncPhase, 4> phases = {
      AsyncPhase{.body = parse_phase,
                 .reads = channel_bit(ChannelId::kDescriptors),
                 .ms_accum = report.phase.descriptor_ms,
                 .wait_ms_accum = report.phase.descriptor_wait_ms},
      AsyncPhase{.body = halo_phase,
                 .writes = channel_bit(ChannelId::kHalo),
                 .ms_accum = report.phase.halo_ms},
      AsyncPhase{.body = ship_phase,
                 .reads = channel_bit(ChannelId::kHalo),
                 .writes = channel_bit(ChannelId::kFaces),
                 .ms_accum = report.phase.ship_ms,
                 .wait_ms_accum = report.phase.ship_wait_ms,
                 .providers = &halo_providers_},
      AsyncPhase{.body = search_phase,
                 .reads = channel_bit(ChannelId::kFaces),
                 .ms_accum = report.phase.search_ms,
                 .wait_ms_accum = report.phase.search_wait_ms},
  };
  executor_.run(phases, exchange_);
  report.descriptor_broadcast_bytes = exchange_.take_descriptor_bytes();
  report.fe_exchange = exchange_.take_fe_traffic();
  report.halo_payload_bytes = exchange_.take_halo_bytes();
  report.search_exchange = exchange_.take_search_traffic();
  report.face_payload_bytes = exchange_.take_face_bytes();

  merge_rank_events(ranks_, report);
  return report;
}

PipelineStepReport ContactPipeline::run_step_reference(
    const Mesh& mesh, const Surface& surface,
    std::span<const int> body_of_node) const {
  validate_snapshot_identity(mesh, surface, element_type0_, num_nodes0_,
                             num_elements0_, "ContactPipeline");
  const idx_t num_parts = k();
  PipelineStepReport report;

  // --- Phase 1: descriptor update + broadcast. The tree is built with the
  // exact options the SPMD driver uses (parallel subtree induction
  // included — node numbering, and hence the text encoding, depends on it),
  // so the modeled broadcast bytes match the SPMD path in either format. ----
  std::vector<Vec3> points;
  std::vector<idx_t> labels;
  points.reserve(surface.contact_nodes.size());
  labels.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) {
    points.push_back(mesh.node(id));
    labels.push_back(
        partitioner_.node_partition()[static_cast<std::size_t>(id)]);
  }
  DescriptorOptions dopts = partitioner_.config().descriptor;
  dopts.dim = mesh.dim();
  dopts.parallel = true;
  const SubdomainDescriptors descriptors(points, labels, num_parts, dopts);
  report.descriptor_tree_nodes = descriptors.num_tree_nodes();
  report.descriptor_broadcast_bytes =
      static_cast<wgt_t>(
          encode_tree(descriptors.tree(), config_.wire_format).size()) *
      std::max<wgt_t>(0, num_parts - 1);

  // --- Phase 2: FE halo exchange. ------------------------------------------
  const CsrGraph graph = nodal_graph(mesh);
  report.fe_exchange =
      fe_halo_traffic(graph, partitioner_.node_partition(), num_parts);

  // --- Phase 3: global search & element shipping. --------------------------
  const std::vector<idx_t> owners =
      face_owners(surface, partitioner_.node_partition(), num_parts);
  VirtualCluster cluster(num_parts);
  // faces_on[q]: the elements processor q holds after the exchange (its own
  // plus every element shipped to it).
  std::vector<std::vector<idx_t>> faces_on(static_cast<std::size_t>(num_parts));
  {
    std::vector<idx_t> parts;
    for (idx_t f = 0; f < surface.num_faces(); ++f) {
      const idx_t home = owners[static_cast<std::size_t>(f)];
      faces_on[static_cast<std::size_t>(home)].push_back(f);
      parts.clear();
      const BBox box = face_bbox(mesh, surface.faces[static_cast<std::size_t>(f)],
                                 config_.search.search_margin);
      descriptors.query_box(box, parts);
      for (idx_t q : parts) {
        if (q == home) continue;
        cluster.send(home, q, 1);
        faces_on[static_cast<std::size_t>(q)].push_back(f);
      }
    }
  }
  report.search_exchange = cluster.finish();

  // --- Phase 4: per-processor local search. --------------------------------
  // nodes_on[q]: processor q's own contact nodes.
  std::vector<std::vector<idx_t>> nodes_on(static_cast<std::size_t>(num_parts));
  for (idx_t id : surface.contact_nodes) {
    nodes_on[static_cast<std::size_t>(
                 partitioner_.node_partition()[static_cast<std::size_t>(id)])]
        .push_back(id);
  }
  const LocalSearchOptions local = config_.search.local_options(body_of_node);
  report.events_per_processor.assign(static_cast<std::size_t>(num_parts), 0);
  for (idx_t q = 0; q < num_parts; ++q) {
    if (nodes_on[static_cast<std::size_t>(q)].empty() ||
        faces_on[static_cast<std::size_t>(q)].empty()) {
      continue;
    }
    std::vector<ContactEvent> local_events = local_contact_search_subset(
        mesh, surface, nodes_on[static_cast<std::size_t>(q)],
        faces_on[static_cast<std::size_t>(q)], local);
    report.events_per_processor[static_cast<std::size_t>(q)] =
        to_idx(local_events.size());
    report.events.insert(report.events.end(), local_events.begin(),
                         local_events.end());
  }
  std::sort(report.events.begin(), report.events.end(), event_order);
  report.contact_events = to_idx(report.events.size());
  for (const ContactEvent& e : report.events) {
    if (e.signed_distance < 0) ++report.penetrating_events;
  }
  return report;
}

// ---------------------------------------------------------------------------
// ML+RCB baseline pipeline
// ---------------------------------------------------------------------------

MlRcbPipeline::MlRcbPipeline(const Mesh& mesh0, const Surface& surface0,
                             const MlRcbPipelineConfig& config)
    : config_(config),
      partitioner_(mesh0, surface0, config.decomposition),
      element_type0_(mesh0.element_type()),
      num_nodes0_(mesh0.num_nodes()),
      num_elements0_(mesh0.num_elements()),
      exchange_(config.decomposition.k),
      executor_(config.decomposition.k) {
  config_.search.validate("MlRcbPipeline");
  ranks_.resize(static_cast<std::size_t>(k()));
  for (idx_t r = 0; r < k(); ++r) {
    ranks_[static_cast<std::size_t>(r)].id = r;
  }
}

void MlRcbPipeline::advance_partition(const Mesh& mesh, const Surface& surface,
                                      MlRcbStepReport& report) {
  // A snapshot from a different simulation would silently re-balance the
  // incremental RCB against foreign geometry — reject it up front instead.
  validate_snapshot_identity(mesh, surface, element_type0_, num_nodes0_,
                             num_elements0_, "MlRcbPipeline");
  // Advance the incremental RCB (UpdComm). The first step may legitimately
  // be a later snapshot of the same sequence than the construction one, so
  // its movement is a catch-up, not charged as UpdComm.
  const wgt_t moved = partitioner_.update_contact_partition(mesh, surface);
  if (first_step_) {
    first_step_ = false;
  } else {
    report.upd_comm = moved;
  }
}

MlRcbStepReport MlRcbPipeline::run_step(const Mesh& mesh,
                                        const Surface& surface,
                                        std::span<const int> body_of_node) {
  MlRcbStepReport report;
  init_phase(report.phase, k());
  // The stateful RCB advance runs exactly once per step, before the part
  // that can fail — the degraded path below must not re-run it.
  advance_partition(mesh, surface, report);

  PipelineHealth health;
  const bool ok = try_spmd_step(exchange_, health, [&] {
    run_step_spmd(mesh, surface, body_of_node, report);
  });
  if (ok) {
    report.health = exchange_.take_health();
    return report;
  }
  MlRcbStepReport degraded;
  degraded.upd_comm = report.upd_comm;
  run_reference_phases(mesh, surface, body_of_node, degraded);
  degraded.health = health;
  return degraded;
}

void MlRcbPipeline::run_step_spmd(const Mesh& mesh, const Surface& surface,
                                  std::span<const int> body_of_node,
                                  MlRcbStepReport& report) {
  const idx_t num_parts = k();
  const CsrGraph& graph = graph_cache_.get(mesh);
  const std::vector<idx_t>& fe_part = partitioner_.node_partition();

  // FE labels of the current contact nodes (index-aligned with
  // partitioner_.contact_ids()/contact_labels()).
  fe_labels_.clear();
  fe_labels_.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) {
    fe_labels_.push_back(fe_part[static_cast<std::size_t>(id)]);
  }
  const std::vector<idx_t>& cids = partitioner_.contact_ids();
  const std::vector<idx_t>& clabels = partitioner_.contact_labels();
  const M2MResult m2m = m2m_comm(fe_labels_, clabels, num_parts);

  // Ownership in the RCB decomposition: per-node labels -> face owners.
  rcb_node_labels_.assign(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (std::size_t i = 0; i < cids.size(); ++i) {
    rcb_node_labels_[static_cast<std::size_t>(cids[i])] = clabels[i];
  }
  face_owners_into(surface, rcb_node_labels_, num_parts, face_owner_);
  build_subdomain_views(cids, clabels, face_owner_, num_parts, views_);
  if (halo_version_ != graph_cache_.version()) {
    build_halo_sends(graph, fe_part, num_parts, views_);
    halo_version_ = graph_cache_.version();
  }

  // One shared filter: BBoxFilter queries are pure (no mutable scratch), so
  // unlike the descriptor copies all ranks can read the same instance.
  const BBoxFilter filter = partitioner_.make_bbox_filter(mesh);

  // --- Phases 1-3 in one dependency-driven run. Phase 1 posts halo nodes,
  // forward coupling, and the subdomain-box allgather; phase 2 consumes all
  // three (delivery #1 — the exact channel set the first full-mask barrier
  // delivery used to carry), returns the coupling points and ships elements;
  // phase 3 consumes the return coupling and shipped faces (delivery #2).
  // A rank enters each phase once its own inbox cells commit. ---------------
  const auto post_phase = [&](idx_t r) {
    Rank& rank = ranks_[static_cast<std::size_t>(r)];
    rank.begin_step();
    for (const HaloSend& hs : views_[static_cast<std::size_t>(r)].halo_sends) {
      exchange_.halo().send(r, hs.dst,
                            HaloNodeMsg{hs.node, mesh.node(hs.node)});
    }
    // Forward coupling: this FE rank ships each of its contact points
    // whose (relabelled) RCB owner is elsewhere.
    for (std::size_t i = 0; i < fe_labels_.size(); ++i) {
      if (fe_labels_[i] != r) continue;
      const idx_t contact_as_fe =
          m2m.relabel[static_cast<std::size_t>(clabels[i])];
      if (contact_as_fe == r) continue;
      exchange_.coupling_forward().send(
          r, contact_as_fe, ContactPointMsg{cids[i], mesh.node(cids[i])});
    }
    // RCB subdomain-box allgather (bytes only — the centralized step
    // reports no traffic for it either).
    exchange_.boxes().broadcast(r, SubdomainBoxMsg{r, filter.box(r)});
  };
  const auto ship_phase = [&](idx_t r) {
    Rank& rank = ranks_[static_cast<std::size_t>(r)];
    // Return trip: each received contact point goes back to its source
    // after the search (the "twice the M2MComm value" of Section 5.2).
    const auto& coupling_in = exchange_.coupling_forward().inbox(r);
    for (const SourceRange& sr :
         exchange_.coupling_forward().inbox_sources(r)) {
      for (idx_t i = sr.begin; i < sr.end; ++i) {
        exchange_.coupling_return().send(
            r, sr.from, coupling_in[static_cast<std::size_t>(i)]);
      }
    }
    const auto& ghosts_in = exchange_.halo().inbox(r);
    rank.ghosts.assign(ghosts_in.begin(), ghosts_in.end());
    for (idx_t f : views_[static_cast<std::size_t>(r)].owned_faces) {
      const SurfaceFace& face = surface.faces[static_cast<std::size_t>(f)];
      const BBox box = face_bbox(mesh, face, config_.search.search_margin);
      rank.query_parts.clear();
      filter.query_box(box, rank.query_parts);
      for (idx_t q : rank.query_parts) {
        if (q == r) continue;
        exchange_.faces().send(r, q, make_face_msg(mesh, face, f));
      }
    }
  };
  const LocalSearchOptions local = config_.search.local_options(body_of_node);
  const auto search_phase = [&](idx_t r) {
    Rank& rank = ranks_[static_cast<std::size_t>(r)];
    const SubdomainView& view = views_[static_cast<std::size_t>(r)];
    rank.merge_faces(view.owned_faces, exchange_.faces().inbox(r));
    if (view.contact_nodes.empty() || rank.local_faces.empty()) return;
    local_contact_search_subset_into(mesh, surface, view.contact_nodes,
                                     rank.local_faces, local,
                                     rank.search_scratch, rank.events);
  };
  const ChannelMask post_mask = channel_bit(ChannelId::kHalo) |
                                channel_bit(ChannelId::kCouplingForward) |
                                channel_bit(ChannelId::kBoxes);
  const ChannelMask ship_mask = channel_bit(ChannelId::kCouplingReturn) |
                                channel_bit(ChannelId::kFaces);
  const std::array<AsyncPhase, 3> phases = {
      AsyncPhase{.body = post_phase,
                 .writes = post_mask,
                 .ms_accum = report.phase.halo_ms},
      AsyncPhase{.body = ship_phase,
                 .reads = post_mask,
                 .writes = ship_mask,
                 .ms_accum = report.phase.ship_ms,
                 .wait_ms_accum = report.phase.ship_wait_ms},
      AsyncPhase{.body = search_phase,
                 .reads = ship_mask,
                 .ms_accum = report.phase.search_ms,
                 .wait_ms_accum = report.phase.search_wait_ms},
  };
  executor_.run(phases, exchange_);
  report.fe_exchange = exchange_.take_fe_traffic();
  report.halo_payload_bytes = exchange_.take_halo_bytes();
  report.search_exchange = exchange_.take_search_traffic();
  report.coupling_exchange = exchange_.take_coupling_traffic();
  report.face_payload_bytes = exchange_.take_face_bytes();
  report.coupling_payload_bytes = exchange_.take_coupling_bytes();
  report.box_allgather_bytes = exchange_.take_box_bytes();

  merge_rank_events(ranks_, report);
}

MlRcbStepReport MlRcbPipeline::run_step_reference(
    const Mesh& mesh, const Surface& surface,
    std::span<const int> body_of_node) {
  MlRcbStepReport report;
  advance_partition(mesh, surface, report);
  run_reference_phases(mesh, surface, body_of_node, report);
  return report;
}

void MlRcbPipeline::run_reference_phases(const Mesh& mesh,
                                         const Surface& surface,
                                         std::span<const int> body_of_node,
                                         MlRcbStepReport& report) const {
  const idx_t num_parts = k();

  // FE halo exchange in the graph decomposition.
  const CsrGraph graph = nodal_graph(mesh);
  report.fe_exchange =
      fe_halo_traffic(graph, partitioner_.node_partition(), num_parts);

  // Coupling: surface-node data to the contact decomposition and back.
  std::vector<idx_t> fe_labels;
  fe_labels.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) {
    fe_labels.push_back(
        partitioner_.node_partition()[static_cast<std::size_t>(id)]);
  }
  const M2MResult m2m =
      m2m_comm(fe_labels, partitioner_.contact_labels(), num_parts);
  report.coupling_exchange = m2m_traffic(
      fe_labels, partitioner_.contact_labels(), m2m.relabel, num_parts);

  // Global search in the RCB decomposition: subdomain bounding boxes.
  std::vector<idx_t> rcb_node_labels(
      static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (std::size_t i = 0; i < partitioner_.contact_ids().size(); ++i) {
    rcb_node_labels[static_cast<std::size_t>(partitioner_.contact_ids()[i])] =
        partitioner_.contact_labels()[i];
  }
  const std::vector<idx_t> owners =
      face_owners(surface, rcb_node_labels, num_parts);
  const BBoxFilter filter = partitioner_.make_bbox_filter(mesh);
  VirtualCluster cluster(num_parts);
  std::vector<std::vector<idx_t>> faces_on(static_cast<std::size_t>(num_parts));
  {
    std::vector<idx_t> parts;
    for (idx_t f = 0; f < surface.num_faces(); ++f) {
      const idx_t home = owners[static_cast<std::size_t>(f)];
      faces_on[static_cast<std::size_t>(home)].push_back(f);
      parts.clear();
      const BBox box = face_bbox(mesh, surface.faces[static_cast<std::size_t>(f)],
                                 config_.search.search_margin);
      filter.query_box(box, parts);
      for (idx_t q : parts) {
        if (q == home) continue;
        cluster.send(home, q, 1);
        faces_on[static_cast<std::size_t>(q)].push_back(f);
      }
    }
  }
  report.search_exchange = cluster.finish();

  // Local search in the RCB decomposition.
  std::vector<std::vector<idx_t>> nodes_on(static_cast<std::size_t>(num_parts));
  for (std::size_t i = 0; i < partitioner_.contact_ids().size(); ++i) {
    nodes_on[static_cast<std::size_t>(partitioner_.contact_labels()[i])]
        .push_back(partitioner_.contact_ids()[i]);
  }
  const LocalSearchOptions local = config_.search.local_options(body_of_node);
  report.events_per_processor.assign(static_cast<std::size_t>(num_parts), 0);
  for (idx_t q = 0; q < num_parts; ++q) {
    if (nodes_on[static_cast<std::size_t>(q)].empty() ||
        faces_on[static_cast<std::size_t>(q)].empty()) {
      continue;
    }
    const auto local_events = local_contact_search_subset(
        mesh, surface, nodes_on[static_cast<std::size_t>(q)],
        faces_on[static_cast<std::size_t>(q)], local);
    report.events_per_processor[static_cast<std::size_t>(q)] =
        to_idx(local_events.size());
    report.events.insert(report.events.end(), local_events.begin(),
                         local_events.end());
  }
  std::sort(report.events.begin(), report.events.end(), event_order);
  report.contact_events = to_idx(report.events.size());
  for (const ContactEvent& e : report.events) {
    if (e.signed_distance < 0) ++report.penetrating_events;
  }
}

}  // namespace cpart
