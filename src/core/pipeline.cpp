#include "core/pipeline.hpp"

#include <algorithm>

#include "contact/global_search.hpp"
#include "contact/search_metrics.hpp"
#include "mesh/mesh_graphs.hpp"
#include "tree/tree_io.hpp"

namespace cpart {

ContactPipeline::ContactPipeline(const Mesh& mesh0, const Surface& surface0,
                                 const PipelineConfig& config)
    : config_(config), partitioner_(mesh0, surface0, config.decomposition) {
  require(config_.search_margin >= config_.contact_tolerance,
          "ContactPipeline: search_margin must cover contact_tolerance, or "
          "remote contacts could be missed");
}

PipelineStepReport ContactPipeline::run_step(
    const Mesh& mesh, const Surface& surface,
    std::span<const int> body_of_node) const {
  const idx_t num_parts = k();
  PipelineStepReport report;

  // --- Phase 1: descriptor update + broadcast. -----------------------------
  const SubdomainDescriptors descriptors =
      partitioner_.build_descriptors(mesh, surface);
  report.descriptor_tree_nodes = descriptors.num_tree_nodes();
  report.descriptor_broadcast_bytes =
      static_cast<wgt_t>(tree_to_string(descriptors.tree()).size()) *
      std::max<wgt_t>(0, num_parts - 1);

  // --- Phase 2: FE halo exchange. ------------------------------------------
  const CsrGraph graph = nodal_graph(mesh);
  report.fe_exchange =
      fe_halo_traffic(graph, partitioner_.node_partition(), num_parts);

  // --- Phase 3: global search & element shipping. --------------------------
  const std::vector<idx_t> owners =
      face_owners(surface, partitioner_.node_partition(), num_parts);
  VirtualCluster cluster(num_parts);
  // faces_on[q]: the elements processor q holds after the exchange (its own
  // plus every element shipped to it).
  std::vector<std::vector<idx_t>> faces_on(static_cast<std::size_t>(num_parts));
  {
    std::vector<idx_t> parts;
    for (idx_t f = 0; f < surface.num_faces(); ++f) {
      const idx_t home = owners[static_cast<std::size_t>(f)];
      faces_on[static_cast<std::size_t>(home)].push_back(f);
      parts.clear();
      const BBox box = face_bbox(mesh, surface.faces[static_cast<std::size_t>(f)],
                                 config_.search_margin);
      descriptors.query_box(box, parts);
      for (idx_t q : parts) {
        if (q == home) continue;
        cluster.send(home, q, 1);
        faces_on[static_cast<std::size_t>(q)].push_back(f);
      }
    }
  }
  report.search_exchange = cluster.finish();

  // --- Phase 4: per-processor local search. --------------------------------
  // nodes_on[q]: processor q's own contact nodes.
  std::vector<std::vector<idx_t>> nodes_on(static_cast<std::size_t>(num_parts));
  for (idx_t id : surface.contact_nodes) {
    nodes_on[static_cast<std::size_t>(
                 partitioner_.node_partition()[static_cast<std::size_t>(id)])]
        .push_back(id);
  }
  LocalSearchOptions local;
  local.tolerance = config_.contact_tolerance;
  local.body_of_node = body_of_node;
  local.closest_only = config_.closest_only;
  report.events_per_processor.assign(static_cast<std::size_t>(num_parts), 0);
  for (idx_t q = 0; q < num_parts; ++q) {
    if (nodes_on[static_cast<std::size_t>(q)].empty() ||
        faces_on[static_cast<std::size_t>(q)].empty()) {
      continue;
    }
    std::vector<ContactEvent> local_events = local_contact_search_subset(
        mesh, surface, nodes_on[static_cast<std::size_t>(q)],
        faces_on[static_cast<std::size_t>(q)], local);
    report.events_per_processor[static_cast<std::size_t>(q)] =
        to_idx(local_events.size());
    report.events.insert(report.events.end(), local_events.begin(),
                         local_events.end());
  }
  std::sort(report.events.begin(), report.events.end(),
            [](const ContactEvent& a, const ContactEvent& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.distance < b.distance;
            });
  report.contact_events = to_idx(report.events.size());
  for (const ContactEvent& e : report.events) {
    if (e.signed_distance < 0) ++report.penetrating_events;
  }
  return report;
}

// ---------------------------------------------------------------------------
// ML+RCB baseline pipeline
// ---------------------------------------------------------------------------

MlRcbPipeline::MlRcbPipeline(const Mesh& mesh0, const Surface& surface0,
                             const MlRcbPipelineConfig& config)
    : config_(config), partitioner_(mesh0, surface0, config.decomposition) {
  require(config_.search_margin >= config_.contact_tolerance,
          "MlRcbPipeline: search_margin must cover contact_tolerance");
}

MlRcbStepReport MlRcbPipeline::run_step(const Mesh& mesh,
                                        const Surface& surface,
                                        std::span<const int> body_of_node) {
  const idx_t num_parts = k();
  MlRcbStepReport report;

  // Advance the incremental RCB (UpdComm). Updating on the very first step
  // re-balances against the snapshot the caller actually passed (which may
  // not be the snapshot the pipeline was built on); its movement is not
  // charged as UpdComm.
  const wgt_t moved = partitioner_.update_contact_partition(mesh, surface);
  if (first_step_) {
    first_step_ = false;
  } else {
    report.upd_comm = moved;
  }

  // FE halo exchange in the graph decomposition.
  const CsrGraph graph = nodal_graph(mesh);
  report.fe_exchange =
      fe_halo_traffic(graph, partitioner_.node_partition(), num_parts);

  // Coupling: surface-node data to the contact decomposition and back.
  std::vector<idx_t> fe_labels;
  fe_labels.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) {
    fe_labels.push_back(
        partitioner_.node_partition()[static_cast<std::size_t>(id)]);
  }
  const M2MResult m2m =
      m2m_comm(fe_labels, partitioner_.contact_labels(), num_parts);
  report.coupling_exchange = m2m_traffic(
      fe_labels, partitioner_.contact_labels(), m2m.relabel, num_parts);

  // Global search in the RCB decomposition: subdomain bounding boxes.
  std::vector<idx_t> rcb_node_labels(
      static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (std::size_t i = 0; i < partitioner_.contact_ids().size(); ++i) {
    rcb_node_labels[static_cast<std::size_t>(partitioner_.contact_ids()[i])] =
        partitioner_.contact_labels()[i];
  }
  const std::vector<idx_t> owners =
      face_owners(surface, rcb_node_labels, num_parts);
  const BBoxFilter filter = partitioner_.make_bbox_filter(mesh);
  VirtualCluster cluster(num_parts);
  std::vector<std::vector<idx_t>> faces_on(static_cast<std::size_t>(num_parts));
  {
    std::vector<idx_t> parts;
    for (idx_t f = 0; f < surface.num_faces(); ++f) {
      const idx_t home = owners[static_cast<std::size_t>(f)];
      faces_on[static_cast<std::size_t>(home)].push_back(f);
      parts.clear();
      const BBox box = face_bbox(mesh, surface.faces[static_cast<std::size_t>(f)],
                                 config_.search_margin);
      filter.query_box(box, parts);
      for (idx_t q : parts) {
        if (q == home) continue;
        cluster.send(home, q, 1);
        faces_on[static_cast<std::size_t>(q)].push_back(f);
      }
    }
  }
  report.search_exchange = cluster.finish();

  // Local search in the RCB decomposition.
  std::vector<std::vector<idx_t>> nodes_on(static_cast<std::size_t>(num_parts));
  for (std::size_t i = 0; i < partitioner_.contact_ids().size(); ++i) {
    nodes_on[static_cast<std::size_t>(partitioner_.contact_labels()[i])]
        .push_back(partitioner_.contact_ids()[i]);
  }
  LocalSearchOptions local;
  local.tolerance = config_.contact_tolerance;
  local.body_of_node = body_of_node;
  local.closest_only = config_.closest_only;
  for (idx_t q = 0; q < num_parts; ++q) {
    if (nodes_on[static_cast<std::size_t>(q)].empty() ||
        faces_on[static_cast<std::size_t>(q)].empty()) {
      continue;
    }
    const auto local_events = local_contact_search_subset(
        mesh, surface, nodes_on[static_cast<std::size_t>(q)],
        faces_on[static_cast<std::size_t>(q)], local);
    report.events.insert(report.events.end(), local_events.begin(),
                         local_events.end());
  }
  std::sort(report.events.begin(), report.events.end(),
            [](const ContactEvent& a, const ContactEvent& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.distance < b.distance;
            });
  report.contact_events = to_idx(report.events.size());
  for (const ContactEvent& e : report.events) {
    if (e.signed_distance < 0) ++report.penetrating_events;
  }
  return report;
}

}  // namespace cpart
