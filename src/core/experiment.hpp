// End-to-end contact/impact partitioning experiment (paper Section 5).
//
// Runs both algorithms over the full snapshot sequence of the impact
// simulation and accounts the paper's metrics per snapshot:
//   FEComm   — total communication volume of the mesh partition
//   NTNodes  — descriptor-tree size (MCML+DT)
//   NRemote  — surface elements shipped for global search
//   M2MComm  — FE <-> contact decomposition transfer (ML+RCB)
//   UpdComm  — incremental-RCB redistribution (ML+RCB)
// Averages over the sequence reproduce Table 1; the per-snapshot series
// drive the time-series figures and the ablations.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/mcml_dt.hpp"
#include "core/ml_rcb.hpp"
#include "parallel/worker_pool.hpp"
#include "runtime/exchange.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/health.hpp"
#include "sim/impact_sim.hpp"

namespace cpart {

enum class UpdatePolicy {
  /// Keep the mesh partition fixed; rebuild only the descriptors each
  /// snapshot (the strategy used in the paper's evaluation).
  kFixedPartition,
  /// Repartition (multi-constraint repartitioning + tree-friendly
  /// adjustment) every `repartition_period` snapshots; descriptors rebuilt
  /// every snapshot. Period 1 = paper's "first approach"; larger periods =
  /// the hybrid approach (Section 4.3).
  kPeriodicRepartition,
};

struct ExperimentConfig {
  ImpactSimConfig sim{};
  idx_t k = 25;
  double epsilon = 0.10;
  wgt_t contact_edge_weight = 5;
  std::uint64_t seed = 1;
  /// Contact-search tolerance: surface-element boxes are inflated by this
  /// fraction of the mean plate cell size before filtering.
  double margin_cell_fraction = 0.5;
  UpdatePolicy policy = UpdatePolicy::kFixedPartition;
  idx_t repartition_period = 10;  // used by kPeriodicRepartition
  /// Ablation switches.
  bool tree_friendly = true;
  double gap_alpha = 0.0;
  /// Use the geometry-aware multi-constraint initial partition (Section 6
  /// future-work direction) instead of multilevel graph partitioning.
  bool geometric_init = false;
  /// Process only every `stride`-th snapshot (1 = all). Lets quick checks
  /// subsample the sequence without changing the simulated trajectory.
  idx_t snapshot_stride = 1;
  /// Opt-in robustness probe: additionally drive the SPMD ContactPipeline
  /// over the same snapshots and aggregate its transport health into the
  /// result. Off by default — the metric sweep itself is analytic and runs
  /// no exchange.
  bool spmd_health_probe = false;
  /// Opt-in probe of the rank-owned DistributedSim: drives the live
  /// migration protocol over the same snapshots (repartitioning every
  /// `repartition_period` steps under kPeriodicRepartition, never under
  /// kFixedPartition) and aggregates its transport health and migration
  /// accounting into the result. Shares the fault/retry knobs below.
  bool distributed_probe = false;
  /// Fault schedule for the probes (cell_fault_probability == 0 -> clean
  /// transport) and their retry budget.
  FaultConfig fault{};
  RetryPolicy retry{};
};

/// Per-snapshot metric record.
struct SnapshotMetrics {
  idx_t step = 0;
  idx_t contact_nodes = 0;
  idx_t surface_faces = 0;
  // MCML+DT
  wgt_t dt_fe_comm = 0;
  wgt_t dt_tree_nodes = 0;
  wgt_t dt_remote = 0;
  wgt_t dt_repart_moved = 0;
  double dt_imbalance_fe = 0;
  double dt_imbalance_contact = 0;
  // ML+RCB
  wgt_t rcb_fe_comm = 0;
  wgt_t rcb_m2m = 0;
  wgt_t rcb_upd = 0;
  wgt_t rcb_remote = 0;
  double rcb_imbalance_fe = 0;
  double rcb_imbalance_contact = 0;
};

struct AlgorithmAverages {
  double fe_comm = 0;
  double tree_nodes = 0;  // MCML+DT only
  double remote = 0;
  double m2m = 0;   // ML+RCB only
  double upd = 0;   // ML+RCB only
  double repart_moved = 0;  // repartition policies only
  double imbalance_fe = 0;
  double imbalance_contact = 0;
  /// Mean per-step communication including decomposition-coupling costs:
  /// FEComm + 2*M2MComm + UpdComm (+ repartition movement). The quantity
  /// behind the paper's "72% / 29% more communication" claim.
  double total_step_comm = 0;
};

struct ExperimentResult {
  idx_t k = 0;
  idx_t snapshots = 0;
  std::vector<SnapshotMetrics> series;
  AlgorithmAverages mcml_dt;
  AlgorithmAverages ml_rcb;
  /// Aggregated transport health of the SPMD probe; all counters stay zero
  /// when ExperimentConfig::spmd_health_probe is off.
  PipelineHealth spmd_health;
  idx_t spmd_probe_steps = 0;
  /// Aggregates of the DistributedSim probe; all zero when
  /// ExperimentConfig::distributed_probe is off.
  PipelineHealth distributed_health;
  idx_t distributed_probe_steps = 0;
  idx_t distributed_migration_steps = 0;
  wgt_t distributed_moved_nodes = 0;
  wgt_t distributed_moved_elements = 0;
  wgt_t distributed_migration_bytes = 0;
  /// Shared-scheduler activity over this experiment: the global pool's
  /// counters as a delta from experiment start (items_executed,
  /// gang_slots_executed), with the instantaneous gauges (worker counts,
  /// queue depths, registered arenas) sampled at the end.
  SchedulerStats scheduler;
};

/// Runs the full experiment. When `progress` is non-null, one line per
/// snapshot is written to it.
ExperimentResult run_contact_experiment(const ExperimentConfig& config,
                                        std::ostream* progress = nullptr);

}  // namespace cpart
