// A-priori contact partitioning (paper Section 3, first class of methods).
//
// When the surfaces that will come in contact are known in advance, extra
// edges between potentially-contacting surface nodes steer a two-constraint
// partitioner toward placing contacting pairs on the same processor
// (Hoover et al., ParaDyn). Provided as an extension for the known-contact
// problem class; the paper's own evaluation targets the unknown-contact
// class handled by MCML+DT.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "mesh/mesh.hpp"
#include "mesh/surface.hpp"
#include "partition/partitioner.hpp"

namespace cpart {

struct AprioriConfig {
  idx_t k = 8;
  double epsilon = 0.10;
  /// Weight of the artificial contact-pair edges.
  wgt_t contact_pair_weight = 10;
  PartitionOptions partitioner{};
  /// Two-level hierarchy (groups >= 2 enables; see partition/hierarchical.hpp).
  HierarchyOptions hierarchy{};
};

/// Predicted contact pairs: node ids expected to come into contact.
using ContactPairs = std::vector<std::pair<idx_t, idx_t>>;

/// Predicts contact pairs geometrically: contact nodes of *different*
/// bodies within `radius` of each other (a simple stand-in for an
/// application-supplied prediction). `body_of_node` distinguishes bodies.
ContactPairs predict_contact_pairs(const Mesh& mesh, const Surface& surface,
                                   std::span<const int> body_of_node,
                                   real_t radius);

/// Builds the augmented two-constraint graph (mesh edges + contact-pair
/// edges) and partitions it. Returns the node partition.
std::vector<idx_t> apriori_contact_partition(const Mesh& mesh,
                                             const Surface& surface,
                                             const ContactPairs& pairs,
                                             const AprioriConfig& config);

/// Fraction of predicted pairs whose endpoints landed in the same
/// partition (the quantity this method maximizes).
double colocated_pair_fraction(const ContactPairs& pairs,
                               std::span<const idx_t> part);

}  // namespace cpart
