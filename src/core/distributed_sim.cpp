#include "core/distributed_sim.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "runtime/label_codec.hpp"
#include "tree/tree_io.hpp"
#include "util/timer.hpp"

namespace cpart {

namespace {

/// Scans the live boundary faces of element `e` at nose height `nose` and
/// calls fn(lf, ids, nf) for every face that passes the contact-zone
/// designation. This is THE kept-face predicate of the distributed step —
/// both flavors call it per element, so erosion, boundary, centroid, and
/// zone arithmetic are identical by construction (the centroid follows
/// ImpactSim::snapshot exactly: sum in face-node order, then (1/n) *).
template <typename Fn>
void scan_element_faces(const ImpactSim& sim, const MeshTopology& topo,
                        idx_t e, real_t nose, std::span<const Vec3> positions,
                        Fn&& fn) {
  if (sim.element_eroded(e, nose)) return;
  const int fpe = topo.faces_per_element();
  std::array<idx_t, 4> ids;
  for (int lf = 0; lf < fpe; ++lf) {
    const idx_t nb = topo.face_neighbor(e, lf);
    if (nb != kInvalidIndex && !sim.element_eroded(nb, nose)) continue;
    const int nf = topo.face_nodes(e, lf, ids);
    Vec3 c{};
    for (int i = 0; i < nf; ++i) {
      c = c + positions[static_cast<std::size_t>(ids[i])];
    }
    c = (1.0 / static_cast<real_t>(nf)) * c;
    if (!sim.face_in_contact_zone(ids[0], c)) continue;
    fn(lf, ids, nf);
  }
}

bool event_order(const ContactEvent& a, const ContactEvent& b) {
  if (a.node != b.node) return a.node < b.node;
  return a.distance < b.distance;
}

void finalize_events(DistributedStepReport& report) {
  std::sort(report.events.begin(), report.events.end(), event_order);
  report.contact_events = to_idx(report.events.size());
  report.penetrating_events = 0;
  for (const ContactEvent& e : report.events) {
    if (e.signed_distance < 0) ++report.penetrating_events;
  }
}

FaceRecord record_from_msg(const FaceShipMsg& m) {
  FaceRecord rec;
  rec.key = m.face;
  rec.num_nodes = m.num_nodes;
  rec.nodes = m.nodes;
  rec.coords = m.coords;
  return rec;
}

/// Repartitioning runs through the same facade the initial decomposition
/// uses, with the same hierarchy — k is the rank count and the groups are
/// contiguous rank ranges.
PartitionerConfig repartitioner_config(const DistributedSimConfig& config) {
  PartitionerConfig pc;
  pc.options = config.decomposition.partitioner;
  pc.options.k = config.decomposition.k;
  pc.options.epsilon = config.decomposition.epsilon;
  pc.hierarchy = config.decomposition.hierarchy;
  return pc;
}

}  // namespace

DistributedSim::DistributedSim(const ImpactSim& sim,
                               const DistributedSimConfig& config)
    : sim_(&sim),
      config_(config),
      partitioner_(repartitioner_config(config)),
      topo_(sim.initial_mesh()),
      exchange_(config.decomposition.k),
      executor_(config.decomposition.k),
      async_(config.decomposition.k) {
  config_.search.validate("DistributedSim");
  require(config_.repartition_period >= 0,
          "DistributedSim: repartition_period must be >= 0");

  body_of_node_.reserve(sim.node_body().size());
  for (Body b : sim.node_body()) body_of_node_.push_back(static_cast<int>(b));

  // Initial decomposition: the paper's MCML+DT partition of the snapshot-0
  // mesh becomes the initial ownership map. The partitioner is not kept —
  // afterwards the labels live in (and only in) the rank states.
  const ImpactSim::Snapshot snap0 = sim.snapshot(0);
  McmlDtPartitioner partitioner(snap0.mesh, snap0.surface,
                                config_.decomposition);
  states_.resize(static_cast<std::size_t>(k()));
  for (idx_t r = 0; r < k(); ++r) {
    states_[static_cast<std::size_t>(r)].init(topo_, r,
                                              partitioner.node_partition(),
                                              k());
  }
}

std::vector<idx_t> DistributedSim::compute_repartition(
    idx_t s, std::span<const idx_t> owner, std::span<const char> is_contact,
    bool* cross_group) const {
  // The repartition graph is built over the immutable topology (eroded
  // elements included) — the same substrate the ownership machinery runs
  // on, so the protocol never needs a compacted central mesh.
  const CsrGraph g =
      build_two_phase_graph(sim_->initial_mesh(), is_contact,
                            config_.decomposition.contact_edge_weight);
  RepartitionOptions ro = config_.repartition;
  ro.seed = config_.repartition.seed + static_cast<std::uint64_t>(s);
  return partitioner_.repartition(g, owner, ro, cross_group);
}

DistributedStepReport DistributedSim::run_step(idx_t s) {
  require(!suspended_, "DistributedSim::run_step: sim is suspended");
  PipelineHealth recovery_health;
  double checkpoint_ms = 0;
  double recovery_ms = 0;
  idx_t replayed = 0;
  bool recovered = false;

  // Lazy store init plus a baseline checkpoint before the first step, so a
  // restore is always possible — a death before the first period boundary
  // replays from the initial decomposition.
  if (config_.checkpoint_period > 0 && store_ == nullptr) {
    require(!config_.checkpoint_dir.empty(),
            "DistributedSim: checkpoint_period > 0 requires checkpoint_dir");
    store_ = std::make_unique<CheckpointStore>(config_.checkpoint_dir,
                                               *checkpoint_shim_);
    Timer baseline_timer;
    if (store_->write(make_checkpoint_data(), config_.checkpoint_retry,
                      &recovery_health.backoff_ms)) {
      ++recovery_health.checkpoints_written;
    } else {
      ++recovery_health.checkpoint_write_failures;
    }
    checkpoint_ms += baseline_timer.milliseconds();
  }

  step_history_.push_back(s);

  DistributedStepReport report;
  for (;;) {
    try {
      // Run every uncompleted history entry. On the fault-free path that is
      // exactly the one step just pushed; after a restore the cursor is
      // rewound and all but the last entry are replays — re-executions of
      // steps lost to the rollback, bit-identical to their first run, whose
      // reports are discarded (the caller already has them; replay exists
      // to rebuild state).
      while (replay_pos_ < step_history_.size()) {
        const bool is_replay = replay_pos_ + 1 < step_history_.size();
        Timer attempt_timer;
        report = DistributedStepReport{};
        run_step_attempt(step_history_[replay_pos_], report);
        ++steps_run_;
        ++replay_pos_;
        if (is_replay) {
          ++replayed;
          ++recovery_health.replay_steps;
          recovery_health += report.health;
          recovery_ms += attempt_timer.milliseconds();
        }
      }
      break;
    } catch (const RankDeathError& death) {
      Timer restore_timer;
      exchange_.abort_step();
      // Drain the dead attempt's transport counters so they do not leak
      // into the next attempt's report; they stay in the recovery tally —
      // those deliveries did happen.
      recovery_health += exchange_.take_health();
      recovery_health.rank_deaths += static_cast<wgt_t>(death.ranks().size());
      recovery_health.failed_ranks += static_cast<wgt_t>(death.ranks().size());
      recovered = true;
      if (restore_from_checkpoint()) {
        ++recovery_health.recoveries;
      } else {
        // No durable checkpoint (checkpointing disabled, or the store is
        // unreadable): complete this step degraded from the start-of-step
        // snapshot and continue unprotected — the same fallback the
        // transport-exhaustion path uses.
        report = DistributedStepReport{};
        std::vector<idx_t> owner = start_owner_;
        std::vector<wgt_t> hits = start_hits_;
        run_reference_body(step_history_[replay_pos_], is_migration_step(),
                           owner, hits, report);
        scatter_global_state(owner, hits);
        ++recovery_health.degraded_steps;
        ++steps_run_;
        ++replay_pos_;
      }
      recovery_ms += restore_timer.milliseconds();
    }
  }

  // Period boundary: commit a fresh checkpoint. A failed commit never
  // destroys the previous one (keep-last-good) — the history keeps
  // accumulating so a later death still replays from the last durable
  // state.
  if (store_ != nullptr && config_.checkpoint_period > 0 &&
      steps_run_ % config_.checkpoint_period == 0) {
    Timer commit_timer;
    if (store_->write(make_checkpoint_data(), config_.checkpoint_retry,
                      &recovery_health.backoff_ms)) {
      ++recovery_health.checkpoints_written;
      step_history_.clear();
      replay_pos_ = 0;
    } else {
      ++recovery_health.checkpoint_write_failures;
    }
    checkpoint_ms += commit_timer.milliseconds();
  }

  report.recovered = recovered;
  report.replayed_steps = replayed;
  report.checkpoint_ms = checkpoint_ms;
  report.recovery_ms = recovery_ms;
  report.health += recovery_health;
  return report;
}

void DistributedSim::run_step_attempt(idx_t s, DistributedStepReport& report) {
  const bool migrate = is_migration_step();
  const idx_t nn = topo_.num_nodes();

  // This execution's injected rank faults, decided up front as a pure
  // function of (seed, logical step, rank, incarnation). The incarnation is
  // the execution count of the logical step, so a replayed step draws kNone
  // and recovery always makes progress.
  any_death_ = false;
  any_hang_ = false;
  FaultInjector* injector = exchange_.fault_injector();
  if (injector != nullptr) {
    const auto step_id = static_cast<std::size_t>(steps_run_);
    if (step_attempts_.size() <= step_id) {
      step_attempts_.resize(step_id + 1, 0);
    }
    const idx_t incarnation = step_attempts_[step_id]++;
    death_mask_.assign(static_cast<std::size_t>(k()), 0);
    hang_mask_.assign(static_cast<std::size_t>(k()), 0);
    for (idx_t r = 0; r < k(); ++r) {
      const RankFaultKind kind =
          injector->rank_fault(steps_run_, r, incarnation);
      if (kind == RankFaultKind::kNone) continue;
      injector->record_rank_fault(kind);
      if (kind == RankFaultKind::kDeath) {
        death_mask_[static_cast<std::size_t>(r)] = 1;
        any_death_ = true;
      } else {
        hang_mask_[static_cast<std::size_t>(r)] = 1;
        any_hang_ = true;
      }
    }
  }

  // Start-of-step recovery snapshot: if the transport gives up mid-step the
  // reference body reruns the whole step from here (positions need no
  // recovery — they are recomputed closed-form and re-haloed every step).
  start_owner_ = states_[0].node_owner;
  start_hits_.resize(static_cast<std::size_t>(nn));
  for (idx_t v = 0; v < nn; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    start_hits_[sv] =
        states_[static_cast<std::size_t>(start_owner_[sv])].contact_hits[sv];
  }

  PipelineHealth health;
  const bool ok = try_spmd_step(exchange_, health, [&] {
    run_step_spmd(s, migrate, report);
  });
  if (ok) {
    report.health = exchange_.take_health();
  } else {
    report = DistributedStepReport{};
    std::vector<idx_t> owner = start_owner_;
    std::vector<wgt_t> hits = start_hits_;
    run_reference_body(s, migrate, owner, hits, report);
    scatter_global_state(owner, hits);
    report.health = health;
  }
}

DistributedStepReport DistributedSim::run_step_reference(idx_t s) {
  const bool migrate = is_migration_step();
  const idx_t nn = topo_.num_nodes();
  std::vector<idx_t> owner = states_[0].node_owner;
  std::vector<wgt_t> hits(static_cast<std::size_t>(nn));
  for (idx_t v = 0; v < nn; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    hits[sv] = states_[static_cast<std::size_t>(owner[sv])].contact_hits[sv];
  }
  DistributedStepReport report;
  run_reference_body(s, migrate, owner, hits, report);
  scatter_global_state(owner, hits);
  ++steps_run_;
  return report;
}

void DistributedSim::run_step_spmd(idx_t s, bool migrate,
                                   DistributedStepReport& report) {
  const idx_t np = k();
  const idx_t nn = topo_.num_nodes();
  const real_t nose = sim_->nose_z(s);
  report.step = s;
  report.migrated = migrate;

  // Recycle last step's descriptor tree into the induction workspace while
  // the descriptors are still alive — superstep A's begin_step drops them.
  if (states_[0].descriptors.has_value()) {
    induce_ws_.recycle(states_[0].descriptors->release_tree());
  }

  // Neighbor topology of this step's halo: dst waits on just these source
  // rows instead of all k (the send lists change across migrations, so the
  // inverse is rebuilt per step).
  halo_providers_.assign(static_cast<std::size_t>(np), {});
  for (idx_t r = 0; r < np; ++r) {
    for (const HaloSend& hs : states_[static_cast<std::size_t>(r)].halo_sends) {
      halo_providers_[static_cast<std::size_t>(hs.dst)].push_back(r);
    }
  }
  for (std::vector<idx_t>& list : halo_providers_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  // --- Supersteps A+B in one dependency-driven run: owned kinematics +
  // halo post, then — per rank, as soon as its own halo neighbors' rows
  // commit (delivery #1) — ghost intake, local surface extraction, and the
  // contact-point gather to rank 0. The gather commits in the driver
  // delivery below. ---------------------------------------------------------
  const auto phase_a = [&](idx_t r) {
    if (any_death_ && death_mask_[static_cast<std::size_t>(r)]) {
      // The injected death: the rank vanishes at step entry, before any of
      // its sends. RankDeathError is not degradable — it unwinds through
      // try_spmd_step into the recovery loop of run_step.
      throw RankDeathError({r});
    }
    SubdomainState& st = states_[static_cast<std::size_t>(r)];
    st.begin_step();
    for (idx_t v : st.owned_nodes) {
      st.positions[static_cast<std::size_t>(v)] = sim_->displaced(v, nose);
    }
    for (const HaloSend& hs : st.halo_sends) {
      exchange_.halo().send(
          r, hs.dst,
          HaloNodeMsg{hs.node,
                      st.positions[static_cast<std::size_t>(hs.node)]});
    }
  };
  const auto phase_b = [&](idx_t r) {
    SubdomainState& st = states_[static_cast<std::size_t>(r)];
    for (const HaloNodeMsg& m : exchange_.halo().inbox(r)) {
      st.positions[static_cast<std::size_t>(m.node)] = m.position;
    }
    for (idx_t e : st.tracked_elements) {
      scan_element_faces(
          *sim_, topo_, e, nose, st.positions,
          [&](int lf, const std::array<idx_t, 4>& ids, int nf) {
            for (int i = 0; i < nf; ++i) {
              const auto v = static_cast<std::size_t>(ids[i]);
              if (st.node_owner[v] == r && !st.node_mask[v]) {
                st.node_mask[v] = 1;
                st.contact_nodes.push_back(ids[i]);
              }
            }
            const idx_t home = majority_owner(
                {ids.data(), static_cast<std::size_t>(nf)}, st.node_owner);
            if (home != r) return;
            FaceRecord rec;
            rec.key = topo_.face_key(e, lf);
            rec.num_nodes = nf;
            for (int i = 0; i < nf; ++i) {
              rec.nodes[i] = ids[i];
              rec.coords[i] = st.positions[static_cast<std::size_t>(ids[i])];
            }
            st.owned_records.push_back(rec);
          });
    }
    std::sort(st.contact_nodes.begin(), st.contact_nodes.end());
    for (idx_t v : st.contact_nodes) {
      st.node_mask[static_cast<std::size_t>(v)] = 0;
    }
    for (idx_t v : st.contact_nodes) {
      exchange_.coupling_forward().send(
          r, 0, ContactPointMsg{v, st.positions[static_cast<std::size_t>(v)]});
    }
  };
  const std::array<AsyncPhase, 2> kinematics_phases = {
      AsyncPhase{.body = phase_a, .writes = channel_bit(ChannelId::kHalo)},
      AsyncPhase{.body = phase_b,
                 .reads = channel_bit(ChannelId::kHalo),
                 .writes = channel_bit(ChannelId::kCouplingForward),
                 .providers = &halo_providers_},
  };
  // Injected hangs arm the executor's watchdog so a rank that never
  // publishes is declared dead instead of deadlocking the run.
  AsyncRunOptions fault_options;
  if (any_hang_) {
    fault_options.watchdog_deadline_ms = config_.watchdog_deadline_ms;
    fault_options.hung = hang_mask_;
  }
  async_.run(kinematics_phases, exchange_, fault_options);  // delivery #1
  report.fe_exchange = exchange_.take_fe_traffic();
  report.halo_payload_bytes = exchange_.take_halo_bytes();

  exchange_.deliver(channel_bit(ChannelId::kCouplingForward));  // #2
  report.coupling_exchange = exchange_.take_coupling_traffic();
  report.coupling_payload_bytes = exchange_.take_coupling_bytes();

  // On migration steps the driver computes the new labels here, between the
  // contact gather and the descriptor superstep: kway refinement dispatches
  // ThreadPool work, which a rank program must never do (nested dispatch
  // deadlocks the pool). The wire protocol stays rank-level — rank 0
  // broadcasts the changed labels, each rank computes its own outgoing set.
  std::vector<idx_t> new_part;
  if (migrate) {
    contact_mask_.assign(static_cast<std::size_t>(nn), 0);
    for (const SubdomainState& st : states_) {
      for (idx_t v : st.contact_nodes) {
        contact_mask_[static_cast<std::size_t>(v)] = 1;
      }
    }
    new_part = compute_repartition(s, states_[0].node_owner, contact_mask_,
                                   &report.repart_cross_group);
  }

  // --- Driver section (was superstep C): rank 0's induction runs on the
  // calling thread so it can fan subtrees out across the whole ThreadPool
  // (dopts.parallel — a rank program must never dispatch pool work), warmed
  // by the recycled storage of last step's tree. The broadcast payloads are
  // the binary codecs: encode_tree for the descriptor tree, one delta-coded
  // label blob per step instead of one message per changed node. -------------
  {
    SubdomainState& st = states_[0];
    std::vector<std::pair<idx_t, Vec3>> pts;
    pts.reserve(st.contact_nodes.size() +
                exchange_.coupling_forward().inbox(0).size());
    for (idx_t v : st.contact_nodes) {
      pts.emplace_back(v, st.positions[static_cast<std::size_t>(v)]);
    }
    for (const ContactPointMsg& m : exchange_.coupling_forward().inbox(0)) {
      pts.emplace_back(m.node, m.position);
    }
    // Each node has exactly one owner, so ids are unique and the sort is a
    // total order — the global ascending contact-id order of the oracle.
    std::sort(pts.begin(), pts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Vec3> points;
    std::vector<idx_t> labels;
    points.reserve(pts.size());
    labels.reserve(pts.size());
    for (const auto& [id, p] : pts) {
      points.push_back(p);
      labels.push_back(st.node_owner[static_cast<std::size_t>(id)]);
    }
    DescriptorOptions dopts = config_.decomposition.descriptor;
    dopts.dim = topo_.mesh().dim();
    dopts.parallel = true;
    st.descriptors.emplace(points, labels, np, dopts, &induce_ws_);
    exchange_.descriptors().broadcast(
        0, DescriptorTreeMsg{encode_tree(st.descriptors->tree(),
                                         config_.wire_format)});
    if (migrate) {
      for (idx_t v = 0; v < nn; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        if (new_part[sv] == st.node_owner[sv]) continue;
        st.pending_labels.emplace_back(v, new_part[sv]);
      }
      if (!st.pending_labels.empty()) {
        exchange_.labels().broadcast(
            0, LabelBatchMsg{encode_label_updates(st.pending_labels)});
      }
    }
  }
  report.descriptor_tree_nodes = states_[0].descriptors->num_tree_nodes();

  // --- Supersteps D+E(+F) in one dependency-driven run. The broadcast
  // group (descriptors + labels, delivery #3) is born closed — posted by
  // the driver above — so each rank's wire validation and decode start
  // immediately and the former serial section spreads across the workers.
  // E follows per rank as its faces cells commit (delivery #4); on
  // migration steps F consumes the migration channels (delivery #5) and
  // commits the handover. ---------------------------------------------------
  const LocalSearchOptions local = config_.search.local_options(body_of_node_);
  const int dim = topo_.mesh().dim();
  const auto phase_d = [&](idx_t r) {
    SubdomainState& st = states_[static_cast<std::size_t>(r)];
    if (r != 0) {
      const auto& in = exchange_.descriptors().inbox(r);
      require(in.size() == 1, "DistributedSim: descriptor broadcast lost");
      st.descriptors.emplace(decode_tree(in.front().wire), np);
      const auto& lin = exchange_.labels().inbox(r);
      if (!lin.empty()) {
        require(lin.size() == 1, "DistributedSim: label broadcast lost");
        st.pending_labels = decode_label_updates(lin.front().blob);
      }
    }
    for (const FaceRecord& rec : st.owned_records) {
      BBox box;
      for (int i = 0; i < rec.num_nodes; ++i) box.expand(rec.coords[i]);
      box.inflate(config_.search.search_margin);
      st.query_parts.clear();
      st.descriptors->query_box(box, st.query_parts);
      for (idx_t q : st.query_parts) {
        if (q == r) continue;
        FaceShipMsg m;
        m.face = rec.key;
        m.element = rec.key / static_cast<idx_t>(topo_.faces_per_element());
        m.num_nodes = rec.num_nodes;
        m.nodes = rec.nodes;
        m.coords = rec.coords;
        exchange_.faces().send(r, q, m);
      }
    }
  };
  const auto phase_e = [&](idx_t r) {
    SubdomainState& st = states_[static_cast<std::size_t>(r)];
    st.local_records.assign(st.owned_records.begin(), st.owned_records.end());
    for (const FaceShipMsg& m : exchange_.faces().inbox(r)) {
      st.local_records.push_back(record_from_msg(m));
    }
    // Face keys are globally unique (one home rank derives each face), so
    // sorting by key reproduces the oracle's global ascending-key order.
    std::sort(st.local_records.begin(), st.local_records.end(),
              [](const FaceRecord& a, const FaceRecord& b) {
                return a.key < b.key;
              });
    if (!st.contact_nodes.empty() && !st.local_records.empty()) {
      local_contact_search_records_into(st.contact_nodes, st.positions, dim,
                                        st.local_records, local,
                                        st.search_scratch, st.events);
    }
    for (const ContactEvent& ev : st.events) {
      ++st.contact_hits[static_cast<std::size_t>(ev.node)];
    }
    if (!migrate) return;
    // Node migration: this rank ships the authoritative state of every
    // owned node the new labels take away — including this step's hits.
    for (const auto& [v, o] : st.pending_labels) {
      const auto sv = static_cast<std::size_t>(v);
      if (st.node_owner[sv] != r || o == r) continue;
      exchange_.migrate_nodes().send(
          r, o, NodeMigrateMsg{v, st.positions[sv], st.contact_hits[sv]});
      ++st.moved_nodes_out;
    }
    // Element migration: owned elements whose majority owner changes under
    // the new labels are re-homed with their connectivity record.
    st.owner_scratch.assign(st.node_owner.begin(), st.node_owner.end());
    for (const auto& [v, o] : st.pending_labels) {
      st.owner_scratch[static_cast<std::size_t>(v)] = o;
    }
    for (idx_t e : st.owned_elements) {
      const auto elem = topo_.mesh().element(e);
      const idx_t new_home = majority_owner(elem, st.owner_scratch);
      if (new_home == r) continue;
      ElementMigrateMsg m;
      m.element = e;
      m.num_nodes = static_cast<std::int32_t>(elem.size());
      for (std::size_t i = 0; i < elem.size(); ++i) m.nodes[i] = elem[i];
      exchange_.migrate_elements().send(r, new_home, m);
      ++st.moved_elements_out;
    }
  };
  // --- Phase F (migration steps only): migration commit — apply labels,
  // splice migrated state, validate element records, rebuild ownership
  // views. ------------------------------------------------------------------
  const auto phase_f = [&](idx_t r) {
    SubdomainState& st = states_[static_cast<std::size_t>(r)];
    // Zero migrated-away accumulators while node_owner is still the old
    // map, so stale owned state cannot leak past the handover.
    for (const auto& [v, o] : st.pending_labels) {
      const auto sv = static_cast<std::size_t>(v);
      if (st.node_owner[sv] == r && o != r) st.contact_hits[sv] = 0;
    }
    std::swap(st.node_owner, st.owner_scratch);
    for (const NodeMigrateMsg& m : exchange_.migrate_nodes().inbox(r)) {
      require(m.node >= 0 && m.node < nn,
              "DistributedSim: migrated node id out of range");
      const auto sv = static_cast<std::size_t>(m.node);
      require(st.node_owner[sv] == r,
              "DistributedSim: node migrated to a rank that does not own it");
      st.positions[sv] = m.position;
      st.contact_hits[sv] = m.contact_hits;
    }
    for (const ElementMigrateMsg& m : exchange_.migrate_elements().inbox(r)) {
      require(m.element >= 0 && m.element < topo_.num_elements(),
              "DistributedSim: migrated element id out of range");
      const auto elem = topo_.mesh().element(m.element);
      require(static_cast<std::size_t>(m.num_nodes) == elem.size(),
              "DistributedSim: migrated element arity mismatch");
      for (std::size_t i = 0; i < elem.size(); ++i) {
        require(m.nodes[i] == elem[i],
                "DistributedSim: migrated element connectivity mismatch");
      }
      require(majority_owner(elem, st.node_owner) == r,
              "DistributedSim: element re-homed to the wrong rank");
    }
    st.rebuild_views(topo_, np);
  };

  const ChannelMask broadcast_mask = channel_bit(ChannelId::kDescriptors) |
                                     channel_bit(ChannelId::kLabels);
  const ChannelMask migrate_mask = channel_bit(ChannelId::kMigrateNodes) |
                                   channel_bit(ChannelId::kMigrateElements);
  std::vector<AsyncPhase> search_phases;
  search_phases.push_back(AsyncPhase{.body = phase_d,
                                     .reads = broadcast_mask,
                                     .writes = channel_bit(ChannelId::kFaces)});
  search_phases.push_back(
      AsyncPhase{.body = phase_e,
                 .reads = channel_bit(ChannelId::kFaces),
                 .writes = migrate ? migrate_mask : ChannelMask{0}});
  if (migrate) {
    search_phases.push_back(AsyncPhase{.body = phase_f,
                                       .reads = migrate_mask});
  }
  // deliveries #3, #4 (+ #5) inside (unreachable with a hang armed — the
  // first run already unwound — but the options are step-scoped)
  async_.run(search_phases, exchange_, fault_options);
  report.descriptor_broadcast_bytes = exchange_.take_descriptor_bytes();
  report.label_broadcast_bytes = exchange_.take_label_bytes();
  report.search_exchange = exchange_.take_search_traffic();
  report.face_payload_bytes = exchange_.take_face_bytes();

  if (migrate) {
    report.migration_exchange = exchange_.take_migration_traffic();
    report.migration_payload_bytes = exchange_.take_migration_bytes();
    for (const SubdomainState& st : states_) {
      report.repart_moved_nodes += st.moved_nodes_out;
      report.repart_moved_elements += st.moved_elements_out;
    }
  }

  // Deterministic merge: rank order, then one global (node, distance) sort.
  report.events_per_processor.assign(static_cast<std::size_t>(np), 0);
  report.events.clear();
  for (idx_t q = 0; q < np; ++q) {
    const SubdomainState& st = states_[static_cast<std::size_t>(q)];
    report.events_per_processor[static_cast<std::size_t>(q)] =
        to_idx(st.events.size());
    report.events.insert(report.events.end(), st.events.begin(),
                         st.events.end());
  }
  finalize_events(report);

  const std::vector<idx_t>& owner = states_[0].node_owner;
  std::vector<wgt_t> hits(static_cast<std::size_t>(nn));
  for (idx_t v = 0; v < nn; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    hits[sv] = states_[static_cast<std::size_t>(owner[sv])].contact_hits[sv];
  }
  report.ownership_hash = ownership_hash(owner, hits);
}

void DistributedSim::run_reference_body(idx_t s, bool migrate,
                                        std::vector<idx_t>& owner,
                                        std::vector<wgt_t>& hits,
                                        DistributedStepReport& report) const {
  const idx_t np = k();
  const idx_t nn = topo_.num_nodes();
  const idx_t ne = topo_.num_elements();
  const real_t nose = sim_->nose_z(s);
  report.step = s;
  report.migrated = migrate;

  // Kinematics for every node — the centralized body holds the whole state.
  std::vector<Vec3> positions(static_cast<std::size_t>(nn));
  for (idx_t v = 0; v < nn; ++v) {
    positions[static_cast<std::size_t>(v)] = sim_->displaced(v, nose);
  }

  // FE halo: one unit per (owned node, tracker rank) pair — the identical
  // enumeration the rank states post from (shared collect_tracker_ranks).
  {
    VirtualCluster fe(np);
    std::vector<char> seen(static_cast<std::size_t>(np), 0);
    std::vector<idx_t> trackers;
    const wgt_t msg_bytes = wire_bytes(HaloNodeMsg{});
    for (idx_t v = 0; v < nn; ++v) {
      collect_tracker_ranks(topo_, owner, v, seen, trackers);
      for (idx_t q : trackers) {
        fe.send(owner[static_cast<std::size_t>(v)], q, 1);
        report.halo_payload_bytes += msg_bytes;
      }
    }
    report.fe_exchange = fe.finish();
  }

  // Global surface extraction + contact designation (same per-element scan
  // as the rank programs, over all elements in ascending order).
  struct HomedRecord {
    FaceRecord rec;
    idx_t home = kInvalidIndex;
  };
  std::vector<HomedRecord> records;
  std::vector<char> is_contact(static_cast<std::size_t>(nn), 0);
  for (idx_t e = 0; e < ne; ++e) {
    scan_element_faces(
        *sim_, topo_, e, nose, positions,
        [&](int lf, const std::array<idx_t, 4>& ids, int nf) {
          for (int i = 0; i < nf; ++i) {
            is_contact[static_cast<std::size_t>(ids[i])] = 1;
          }
          HomedRecord hr;
          hr.home = majority_owner(
              {ids.data(), static_cast<std::size_t>(nf)}, owner);
          hr.rec.key = topo_.face_key(e, lf);
          hr.rec.num_nodes = nf;
          for (int i = 0; i < nf; ++i) {
            hr.rec.nodes[i] = ids[i];
            hr.rec.coords[i] = positions[static_cast<std::size_t>(ids[i])];
          }
          records.push_back(hr);
        });
  }
  std::vector<idx_t> contact_ids;
  for (idx_t v = 0; v < nn; ++v) {
    if (is_contact[static_cast<std::size_t>(v)]) contact_ids.push_back(v);
  }

  // Contact-point gather to rank 0.
  {
    VirtualCluster coupling(np);
    const wgt_t msg_bytes = wire_bytes(ContactPointMsg{});
    for (idx_t v : contact_ids) {
      if (owner[static_cast<std::size_t>(v)] == 0) continue;
      coupling.send(owner[static_cast<std::size_t>(v)], 0, 1);
      report.coupling_payload_bytes += msg_bytes;
    }
    report.coupling_exchange = coupling.finish();
  }

  // Descriptor induction from the gathered points (labels are the current,
  // pre-migration owners, exactly as rank 0 induces them).
  std::vector<Vec3> points;
  std::vector<idx_t> labels;
  points.reserve(contact_ids.size());
  labels.reserve(contact_ids.size());
  for (idx_t v : contact_ids) {
    points.push_back(positions[static_cast<std::size_t>(v)]);
    labels.push_back(owner[static_cast<std::size_t>(v)]);
  }
  DescriptorOptions dopts = config_.decomposition.descriptor;
  dopts.dim = topo_.mesh().dim();
  dopts.parallel = true;
  const SubdomainDescriptors descriptors(points, labels, np, dopts);
  report.descriptor_tree_nodes = descriptors.num_tree_nodes();
  report.descriptor_broadcast_bytes =
      static_cast<wgt_t>(
          encode_tree(descriptors.tree(), config_.wire_format).size()) *
      std::max<wgt_t>(0, np - 1);

  // Repartition: computed here (where the SPMD driver computes it, from the
  // same labels and contact mask) but APPLIED only after the search — the
  // rank protocol commits ownership at superstep F.
  std::vector<idx_t> new_part;
  std::vector<idx_t> changed;
  if (migrate) {
    new_part =
        compute_repartition(s, owner, is_contact, &report.repart_cross_group);
    for (idx_t v = 0; v < nn; ++v) {
      if (new_part[static_cast<std::size_t>(v)] !=
          owner[static_cast<std::size_t>(v)]) {
        changed.push_back(v);
      }
    }
    if (!changed.empty()) {
      std::vector<LabelUpdate> updates;
      updates.reserve(changed.size());
      for (idx_t v : changed) {
        updates.emplace_back(v, new_part[static_cast<std::size_t>(v)]);
      }
      report.label_broadcast_bytes =
          static_cast<wgt_t>(encode_label_updates(updates).size()) *
          std::max<wgt_t>(0, np - 1);
    }
  }

  // Global search + element shipping under the descriptor filter.
  std::vector<std::vector<FaceRecord>> faces_on(
      static_cast<std::size_t>(np));
  {
    VirtualCluster search(np);
    std::vector<idx_t> parts;
    for (const HomedRecord& hr : records) {
      faces_on[static_cast<std::size_t>(hr.home)].push_back(hr.rec);
      BBox box;
      for (int i = 0; i < hr.rec.num_nodes; ++i) box.expand(hr.rec.coords[i]);
      box.inflate(config_.search.search_margin);
      parts.clear();
      descriptors.query_box(box, parts);
      FaceShipMsg probe;
      probe.num_nodes = hr.rec.num_nodes;
      for (idx_t q : parts) {
        if (q == hr.home) continue;
        search.send(hr.home, q, 1);
        report.face_payload_bytes += wire_bytes(probe);
        faces_on[static_cast<std::size_t>(q)].push_back(hr.rec);
      }
    }
    report.search_exchange = search.finish();
  }

  // Per-rank local search (serial) + hit accounting.
  std::vector<std::vector<idx_t>> nodes_on(static_cast<std::size_t>(np));
  for (idx_t v : contact_ids) {
    nodes_on[static_cast<std::size_t>(owner[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  const LocalSearchOptions local = config_.search.local_options(body_of_node_);
  const int dim = topo_.mesh().dim();
  report.events_per_processor.assign(static_cast<std::size_t>(np), 0);
  SubsetSearchScratch scratch;
  std::vector<ContactEvent> rank_events;
  for (idx_t q = 0; q < np; ++q) {
    const auto sq = static_cast<std::size_t>(q);
    rank_events.clear();
    if (!nodes_on[sq].empty() && !faces_on[sq].empty()) {
      local_contact_search_records_into(nodes_on[sq], positions, dim,
                                        faces_on[sq], local, scratch,
                                        rank_events);
    }
    report.events_per_processor[sq] = to_idx(rank_events.size());
    report.events.insert(report.events.end(), rank_events.begin(),
                         rank_events.end());
    for (const ContactEvent& ev : rank_events) {
      ++hits[static_cast<std::size_t>(ev.node)];
    }
  }
  finalize_events(report);

  // Migration accounting + ownership commit. Moving a node's state between
  // owners is a no-op on the global arrays, so only owner changes apply.
  if (migrate) {
    VirtualCluster migration(np);
    const wgt_t node_bytes = wire_bytes(NodeMigrateMsg{});
    for (idx_t v : changed) {
      migration.send(owner[static_cast<std::size_t>(v)],
                     new_part[static_cast<std::size_t>(v)], 1);
      report.migration_payload_bytes += node_bytes;
    }
    report.repart_moved_nodes = to_idx(changed.size());
    for (idx_t e = 0; e < ne; ++e) {
      const auto elem = topo_.mesh().element(e);
      const idx_t old_home = majority_owner(elem, owner);
      const idx_t new_home = majority_owner(elem, new_part);
      if (old_home == new_home) continue;
      migration.send(old_home, new_home, 1);
      ElementMigrateMsg probe;
      probe.num_nodes = static_cast<std::int32_t>(elem.size());
      report.migration_payload_bytes += wire_bytes(probe);
      ++report.repart_moved_elements;
    }
    report.migration_exchange = migration.finish();
    for (idx_t v : changed) {
      owner[static_cast<std::size_t>(v)] =
          new_part[static_cast<std::size_t>(v)];
    }
  }

  report.ownership_hash = ownership_hash(owner, hits);
}

void DistributedSim::scatter_global_state(std::span<const idx_t> owner,
                                          std::span<const wgt_t> hits) {
  executor_.superstep([&](idx_t r) {
    SubdomainState& st = states_[static_cast<std::size_t>(r)];
    st.node_owner.assign(owner.begin(), owner.end());
    st.contact_hits.assign(hits.begin(), hits.end());
    st.rebuild_views(topo_, k());
  });
}

std::uint64_t DistributedSim::config_hash() const {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a_value(h, k());
  h = fnv1a_value(h, static_cast<int>(config_.wire_format));
  h = fnv1a_value(h, config_.repartition_period);
  h = fnv1a_value(h, config_.repartition.seed);
  h = fnv1a_value(h, topo_.num_nodes());
  h = fnv1a_value(h, topo_.num_elements());
  return h;
}

CheckpointData DistributedSim::make_checkpoint_data() const {
  const idx_t nn = topo_.num_nodes();
  CheckpointData ck;
  ck.config_hash = config_hash();
  ck.step = steps_run_;
  ck.superstep = exchange_.next_superstep();
  ck.k = k();
  ck.node_owner = states_[0].node_owner;
  ck.positions.resize(static_cast<std::size_t>(nn));
  ck.contact_hits.resize(static_cast<std::size_t>(nn));
  for (idx_t v = 0; v < nn; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    const SubdomainState& st =
        states_[static_cast<std::size_t>(ck.node_owner[sv])];
    ck.positions[sv] = st.positions[sv];
    ck.contact_hits[sv] = st.contact_hits[sv];
  }
  return ck;
}

bool DistributedSim::restore_from_checkpoint() {
  if (store_ == nullptr) return false;
  const std::optional<CheckpointData> ck = store_->load();
  if (!ck.has_value()) return false;
  if (ck->config_hash != config_hash() || ck->k != k() ||
      to_idx(ck->node_owner.size()) != topo_.num_nodes()) {
    // A decodable checkpoint from some other run shares the directory —
    // unusable for this instance; treat as no checkpoint at all.
    return false;
  }
  executor_.superstep([&](idx_t r) {
    SubdomainState& st = states_[static_cast<std::size_t>(r)];
    st.node_owner = ck->node_owner;
    st.positions = ck->positions;
    st.contact_hits = ck->contact_hits;
    st.rebuild_views(topo_, k());
  });
  // Roll the cursors back: the step counter drives the migration cadence
  // and the rank-fault schedule; the exchange superstep cursor keys the
  // transport fault schedule, so the replayed deliveries re-draw exactly
  // the decisions of the original run.
  steps_run_ = ck->step;
  exchange_.set_next_superstep(ck->superstep);
  replay_pos_ = 0;
  return true;
}

bool DistributedSim::suspend(double* backoff_ms_accum) {
  if (suspended_) return true;
  require(!config_.checkpoint_dir.empty(),
          "DistributedSim::suspend: requires checkpoint_dir");
  if (store_ == nullptr) {
    store_ = std::make_unique<CheckpointStore>(config_.checkpoint_dir,
                                               *checkpoint_shim_);
  }
  double scratch = 0;
  if (!store_->write(
          make_checkpoint_data(), config_.checkpoint_retry,
          backoff_ms_accum != nullptr ? backoff_ms_accum : &scratch)) {
    // Keep-last-good: the previous checkpoint (if any) survives and the
    // rank states stay resident, so the sim remains runnable as if the
    // suspend was never asked for.
    return false;
  }
  // The checkpoint now IS the session. Drop the per-rank states — the
  // dominant resident cost — and the replay history: the commit above is
  // a zero-replay restore point, so resume never re-executes a step the
  // caller already saw.
  states_.clear();
  states_.shrink_to_fit();
  step_history_.clear();
  replay_pos_ = 0;
  suspended_ = true;
  return true;
}

bool DistributedSim::resume() {
  if (!suspended_) return true;
  const std::optional<CheckpointData> ck = store_->load();
  if (!ck.has_value() || ck->config_hash != config_hash() || ck->k != k() ||
      to_idx(ck->node_owner.size()) != topo_.num_nodes()) {
    return false;  // unusable blob: stay suspended, state intact on disk
  }
  // Rebuild the rank states from scratch (suspend released them), then
  // overwrite the authoritative per-node state with the checkpoint — the
  // same scatter the rank-death recovery performs, minus replay (the
  // suspend commit was taken at the current step).
  states_.resize(static_cast<std::size_t>(k()));
  executor_.superstep([&](idx_t r) {
    SubdomainState& st = states_[static_cast<std::size_t>(r)];
    st.init(topo_, r, ck->node_owner, k());
    st.positions = ck->positions;
    st.contact_hits = ck->contact_hits;
  });
  steps_run_ = ck->step;
  exchange_.set_next_superstep(ck->superstep);
  replay_pos_ = 0;
  suspended_ = false;
  return true;
}

std::size_t DistributedSim::resident_bytes() const {
  std::size_t total = 0;
  for (const SubdomainState& st : states_) {
    total += st.node_owner.capacity() * sizeof(idx_t);
    total += st.owned_nodes.capacity() * sizeof(idx_t);
    total += st.owned_elements.capacity() * sizeof(idx_t);
    total += st.tracked_elements.capacity() * sizeof(idx_t);
    total += st.halo_sends.capacity() * sizeof(HaloSend);
    total += st.positions.capacity() * sizeof(Vec3);
    total += st.contact_hits.capacity() * sizeof(wgt_t);
    total += st.node_mask.capacity() * sizeof(char);
    total += st.elem_mask.capacity() * sizeof(char);
    total += st.rank_seen.capacity() * sizeof(char);
    total += st.touched.capacity() * sizeof(idx_t);
  }
  return total;
}

std::size_t DistributedSim::estimate_resident_bytes(idx_t num_nodes,
                                                    idx_t num_elements,
                                                    idx_t k) {
  // Per rank, the full-mesh dense arrays dominate: node_owner, positions,
  // contact_hits, and the two per-node/per-element masks. The ownership
  // views (owned/tracked lists, halo sends) sum to roughly one more
  // node-sized array across all ranks, which the mask terms absorb.
  const auto nn = static_cast<std::size_t>(num_nodes);
  const auto ne = static_cast<std::size_t>(num_elements);
  return static_cast<std::size_t>(k) *
         (nn * (sizeof(idx_t) + sizeof(Vec3) + sizeof(wgt_t) + 2) + ne);
}

std::uint64_t DistributedSim::ownership_hash(
    std::span<const idx_t> owner, std::span<const wgt_t> hits) const {
  std::uint64_t h = kFnvOffsetBasis;
  for (idx_t o : owner) h = fnv1a_value(h, o);
  for (wgt_t w : hits) h = fnv1a_value(h, w);
  return h;
}

std::vector<idx_t> DistributedSim::ownership_map() const {
  for (const SubdomainState& st : states_) {
    require(st.node_owner == states_[0].node_owner,
            "DistributedSim: ownership replicas diverged");
  }
  return states_[0].node_owner;
}

std::vector<wgt_t> DistributedSim::gather_contact_hits() const {
  const std::vector<idx_t>& owner = states_[0].node_owner;
  std::vector<wgt_t> hits(owner.size());
  for (std::size_t v = 0; v < owner.size(); ++v) {
    hits[v] = states_[static_cast<std::size_t>(owner[v])].contact_hits[v];
  }
  return hits;
}

}  // namespace cpart
