// ML+RCB — the baseline (paper Section 3; Plimpton/Attaway/Hendrickson).
//
// Two decoupled decompositions: a single-constraint multilevel partition of
// the whole mesh for the FE phase, and an RCB decomposition of the contact
// points for contact search. Balanced and geometric — but every time step
// pays M2MComm twice to ship surface-node data between the decompositions,
// and the incremental RCB update pays UpdComm in moved contact points.
#pragma once

#include <span>
#include <vector>

#include "contact/global_search.hpp"
#include "geom/rcb.hpp"
#include "mesh/mesh.hpp"
#include "mesh/surface.hpp"
#include "partition/partitioner.hpp"

namespace cpart {

struct MlRcbConfig {
  idx_t k = 25;
  double epsilon = 0.10;
  PartitionOptions partitioner{};
  /// Two-level hierarchy for the FE decomposition (groups >= 2 enables).
  HierarchyOptions hierarchy{};
};

class MlRcbPartitioner {
 public:
  /// Partitions the snapshot-0 mesh (FE decomposition) and builds the
  /// initial RCB decomposition of its contact points.
  MlRcbPartitioner(const Mesh& mesh, const Surface& surface,
                   const MlRcbConfig& config);

  idx_t k() const { return config_.k; }

  /// FE-phase node partition (single-constraint multilevel).
  const std::vector<idx_t>& node_partition() const { return fe_partition_; }

  /// Incremental-RCB update for a new snapshot: the cut structure is kept,
  /// cut coordinates re-balance against the moved contact points. Returns
  /// UpdComm — contact points (stable node ids) whose label changed.
  wgt_t update_contact_partition(const Mesh& mesh, const Surface& surface);

  /// RCB label per entry of the *current* surface's contact_nodes array.
  const std::vector<idx_t>& contact_labels() const { return contact_labels_; }
  /// Stable node ids the labels refer to (the current contact node set).
  const std::vector<idx_t>& contact_ids() const { return contact_ids_; }

  /// Bounding-box filter over the current RCB subdomains.
  BBoxFilter make_bbox_filter(const Mesh& mesh) const;

 private:
  MlRcbConfig config_;
  std::vector<idx_t> fe_partition_;
  RcbTree rcb_;
  std::vector<idx_t> contact_ids_;
  std::vector<idx_t> contact_labels_;
};

}  // namespace cpart
