// Rank-owned distributed contact simulation with live element migration.
//
// The SPMD pipelines of core/pipeline.hpp still consume centrally generated
// snapshots: a driver builds the deformed mesh and surface, and the ranks
// own views into them. DistributedSim removes the central snapshot from the
// step path entirely. Each rank holds a SubdomainState — the authoritative
// positions and contact-hit accumulators of exactly the nodes it owns, plus
// a ghost layer (the element closure of its owned nodes) refreshed by halo
// exchange — and derives everything else locally against the immutable
// MeshTopology:
//   A. kinematics + halo — each rank advances its owned nodes with the
//      closed-form ImpactSim kinematics and posts boundary positions to the
//      ranks tracking them (the halo carries the *authoritative* values;
//      receivers never recompute ghosts);
//   B. local surface extraction — each rank scans its tracked elements,
//      keeps live boundary faces in the contact zone, marks its owned
//      contact nodes, and emits a FaceRecord for every face it is the
//      majority owner of; owned contact points stream to rank 0;
//   C. descriptor induction — the driver (on behalf of rank 0) induces this
//      step's subdomain descriptors from the gathered contact points —
//      parallel subtree induction on the whole pool, warm-started from last
//      step's recycled tree storage — and broadcasts the encoded tree
//      (plus, on migration steps, one delta-coded blob of the changed
//      labels of the new repartition);
//   D. global search — every rank parses its descriptor copy and ships each
//      owned face record to the candidate ranks the tree names;
//   E. local search — owned contact nodes vs owned + received records;
//      events charge the per-node hit accumulators. On migration steps each
//      rank then computes its outgoing set from the new labels and ships
//      node state (position + hits) and element records over the exchange's
//      migration channels;
//   F. migration commit — receivers splice the migrated state, validate
//      element records against the immutable topology, and every rank
//      rebuilds its ownership views from the new labels.
//
// Supersteps A+B and D+E+F each run as one dependency-driven
// AsyncExecutor::run: each phase declares the channels it reads, and a rank
// enters its next phase the moment its own inbox cells commit — B waits
// only on its halo neighbors' rows, and the descriptor/label broadcast
// group is born closed so its per-rank wire validations spread across the
// workers while D proceeds. The contact-point gather boundary remains a
// driver-side delivery (rank 0's induction must run on the calling
// thread), and the migration commit F consumes the migration channels as
// the last phase of the second run. The per-step delivery count (4, or 5
// with migration) and the staged-inbox commit semantics are unchanged.
//
// The pre-refactor shape survives as run_step_reference(): one centralized
// body computing the same step on gathered global state, with all traffic
// modeled analytically. It is the bit-identity oracle — events, traffic
// matrices, payload bytes, ownership maps, and hit accumulators must match
// the SPMD path exactly at any thread count, including across a
// repartition-with-migration step. Both flavors read and write the same
// rank states, so a single instance can interleave them, and the degraded
// path (transport retry exhaustion under fault injection) completes the
// step by running the reference body on the start-of-step state.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mcml_dt.hpp"
#include "core/pipeline.hpp"
#include "mesh/mesh_topology.hpp"
#include "partition/partitioner.hpp"
#include "runtime/async_executor.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/exchange.hpp"
#include "runtime/rank_executor.hpp"
#include "runtime/subdomain_state.hpp"
#include "sim/impact_sim.hpp"

namespace cpart {

struct DistributedSimConfig {
  McmlDtConfig decomposition{};
  SearchConfig search{};
  /// Wire encoding of the per-step descriptor-tree broadcast (and the
  /// analytic byte model of the reference flavor — both switch together,
  /// so cross-flavor byte comparisons hold in either format).
  TreeWireFormat wire_format = TreeWireFormat::kBinary;
  /// Repartition (and migrate state) every `period` steps; 0 disables. The
  /// first eligible step is step index `period` (never the first step run).
  idx_t repartition_period = 0;
  /// Repartitioning knobs; `k` is overridden with decomposition.k and
  /// `seed` is offset by the snapshot index so every migration step draws
  /// an independent (but reproducible) refinement sequence.
  RepartitionOptions repartition{};
  /// Durable checkpoint cadence: commit a checkpoint after every `period`
  /// completed steps (plus a baseline before the first step); 0 disables
  /// checkpointing, in which case a detected rank death degrades the step
  /// to the centralized reference body instead of restore+replay. Requires
  /// checkpoint_dir when > 0.
  idx_t checkpoint_period = 0;
  /// Directory holding the checkpoint blobs and manifest (created on first
  /// use; see CheckpointStore).
  std::string checkpoint_dir;
  /// Commit budget/backoff for checkpoint writes. An exhausted budget never
  /// destroys the previous checkpoint (keep-last-good): the sim counts a
  /// checkpoint_write_failure and continues unprotected until the next
  /// period boundary.
  RetryPolicy checkpoint_retry{};
  /// Watchdog deadline handed to the async runs whenever a hang is injected
  /// this step; see AsyncRunOptions::watchdog_deadline_ms.
  double watchdog_deadline_ms = 250.0;
};

struct DistributedStepReport {
  idx_t step = 0;
  bool migrated = false;  // this step ran the repartition+migration protocol
  StepTraffic fe_exchange;         // halo (superstep A)
  StepTraffic coupling_exchange;   // contact-point gather to rank 0 (B)
  StepTraffic search_exchange;     // face shipping (D)
  StepTraffic migration_exchange;  // node+element migration (E, if migrated)
  wgt_t descriptor_tree_nodes = 0;
  wgt_t descriptor_broadcast_bytes = 0;
  wgt_t label_broadcast_bytes = 0;  // repartition label updates (C)
  wgt_t halo_payload_bytes = 0;
  wgt_t coupling_payload_bytes = 0;
  wgt_t face_payload_bytes = 0;
  /// Satellite migration accounting: what the repartition actually moved.
  wgt_t migration_payload_bytes = 0;
  idx_t repart_moved_nodes = 0;
  idx_t repart_moved_elements = 0;
  /// True when a hierarchical repartition escalated past the group level:
  /// some rank group breached cross_group_threshold and one global
  /// repartition ran instead of the group-local ones. Always false with the
  /// hierarchy disabled.
  bool repart_cross_group = false;
  idx_t contact_events = 0;
  idx_t penetrating_events = 0;
  std::vector<ContactEvent> events;  // merged, sorted by (node, distance)
  std::vector<idx_t> events_per_processor;
  /// FNV-1a over the end-of-step ownership map and the owner-authoritative
  /// contact-hit accumulators — the cheap cross-flavor state oracle.
  std::uint64_t ownership_hash = 0;
  /// Rank-death recovery accounting: `recovered` is set when at least one
  /// death was detected and repaired while producing this report, and
  /// `replayed_steps` counts previously completed steps re-executed from
  /// the restored checkpoint. checkpoint_ms covers encoding + durable
  /// commit; recovery_ms covers restore + replay (the step's MTTR share).
  bool recovered = false;
  idx_t replayed_steps = 0;
  double checkpoint_ms = 0;
  double recovery_ms = 0;
  PipelineHealth health;
};

class DistributedSim {
 public:
  /// Decomposes the snapshot-0 mesh with MCML+DT and splits the result into
  /// per-rank SubdomainStates. `sim` must outlive the DistributedSim.
  DistributedSim(const ImpactSim& sim, const DistributedSimConfig& config);

  idx_t k() const { return config_.decomposition.k; }
  const DistributedSimConfig& config() const { return config_; }
  const MeshTopology& topology() const { return topo_; }
  const std::vector<SubdomainState>& states() const { return states_; }

  /// Number of rank groups (1 when the hierarchy is disabled). Rank r is a
  /// part id, so group g owns the contiguous rank range
  /// [parts_begin(g, k, groups), parts_begin(g+1, k, groups)).
  idx_t groups() const { return partitioner_.groups(); }
  /// Group id of each rank under that contiguous assignment.
  std::vector<idx_t> rank_groups() const {
    return partitioner_.group_of_parts();
  }

  /// Executes snapshot step `s` SPMD (k rank programs on the global
  /// ThreadPool). Steps must be run in the order the instance is driven —
  /// the migration cadence counts steps run, not snapshot indices. Degrades
  /// to the reference body on transport/rank failure, with
  /// health.degraded_steps == 1 on the report.
  ///
  /// Rank-death tolerance: with checkpoint_period > 0 the sim keeps a
  /// durable checkpoint (runtime/checkpoint.hpp) and, when the injected
  /// death/hang schedule kills a rank mid-step, restores every rank from
  /// the last checkpoint and deterministically replays the lost steps —
  /// the returned report (and all later ones) is bit-identical to a
  /// fault-free run. Replay cannot re-fire the original fault: the
  /// injector keys rank faults on the per-step incarnation, which the sim
  /// bumps on every re-execution.
  DistributedStepReport run_step(idx_t s);

  /// The centralized oracle: gathers the rank states, computes the same
  /// step (including repartition + migration accounting) in one body, and
  /// scatters the result back into the rank states. Bit-identical to
  /// run_step at any thread count.
  DistributedStepReport run_step_reference(idx_t s);

  /// The exchange the SPMD supersteps run over — for fault injection and
  /// retry-policy tuning by tests/benches.
  Exchange& exchange() { return exchange_; }

  /// Routes checkpoint I/O through `shim` (fault injection: short writes,
  /// ENOSPC, read bit-flips — see FaultyFileShim). Must be called before
  /// the first run_step; `shim` must outlive the sim.
  void set_checkpoint_shim(FileShim& shim) { checkpoint_shim_ = &shim; }

  /// Suspends the session: commits a durable checkpoint at the current
  /// step (a zero-replay restore point) and releases the per-rank states —
  /// the dominant resident cost, so a suspended sim keeps only topology
  /// and configuration in memory. Requires checkpoint_dir; must be called
  /// between steps. False (with everything still resident and runnable)
  /// when the commit exhausts its retry budget — keep-last-good means a
  /// failed suspend never loses state. Idempotent. `backoff_ms_accum`,
  /// when given, accumulates the commit's retry backoff.
  bool suspend(double* backoff_ms_accum = nullptr);

  /// Resumes a suspended session: restores every rank from the suspend
  /// checkpoint through exactly the rank-death recovery path (rebuild rank
  /// states, scatter checkpointed ownership/positions/hits, roll the step
  /// and superstep cursors) — so a resumed run is bit-identical to one
  /// that never suspended. False (still suspended) when the checkpoint
  /// cannot be loaded or fails validation. Idempotent.
  bool resume();

  bool suspended() const { return suspended_; }

  /// Bytes held by the per-rank states right now (0 while suspended) —
  /// what a service's resident-bytes budget meters.
  std::size_t resident_bytes() const;

  /// Admission-control estimate of resident_bytes() for a not-yet-built
  /// sim: the k-replicated dense arrays dominate, so the model is
  /// k * (num_nodes * (owner + position + hits + masks) + num_elements).
  static std::size_t estimate_resident_bytes(idx_t num_nodes,
                                             idx_t num_elements, idx_t k);

  /// The replicated ownership map, validated identical across all ranks.
  std::vector<idx_t> ownership_map() const;

  /// The owner-authoritative per-node contact-hit accumulators.
  std::vector<wgt_t> gather_contact_hits() const;

 private:
  bool is_migration_step() const {
    return config_.repartition_period > 0 && steps_run_ > 0 &&
           steps_run_ % config_.repartition_period == 0;
  }

  /// One attempt at snapshot step `s`: the SPMD path with the degraded
  /// reference fallback — exactly the pre-recovery run_step body, minus the
  /// step-counter bump. Throws RankDeathError when a rank dies (injected
  /// death or watchdog-declared hang); every other failure completes the
  /// step degraded as before.
  void run_step_attempt(idx_t s, DistributedStepReport& report);

  /// The SPMD supersteps; throws on transport/parse/rank failure.
  void run_step_spmd(idx_t s, bool migrate, DistributedStepReport& report);

  /// FNV-1a over the immutable run parameters a checkpoint must have been
  /// written under to be restorable into this instance.
  std::uint64_t config_hash() const;

  /// The durable state as of now: ownership labels, owner-authoritative
  /// positions and hit accumulators, the step counter, and the exchange
  /// superstep cursor (so replayed deliveries key the exact transport
  /// fault schedule).
  CheckpointData make_checkpoint_data() const;

  /// Restores every rank from the last durable checkpoint: scatters the
  /// checkpointed state, rolls back steps_run_ and the exchange superstep
  /// cursor, and rewinds the replay cursor to the start of step_history_.
  /// False when no usable checkpoint exists (checkpointing disabled, or
  /// the store has no loadable manifest).
  bool restore_from_checkpoint();

  /// The centralized step body over explicit global state (owner + hits are
  /// read and updated in place). Shared by run_step_reference and the
  /// degraded path of run_step.
  void run_reference_body(idx_t s, bool migrate, std::vector<idx_t>& owner,
                          std::vector<wgt_t>& hits,
                          DistributedStepReport& report) const;

  /// Computes this step's repartition from the current labels and the
  /// contact mask (identical call on both flavors: same graph, same seed).
  /// Hierarchical configurations repartition group-locally by default and
  /// escalate cross-group only on threshold breach (*cross_group reports
  /// which). Runs on the driver thread — kway refinement dispatches pool
  /// work, so it must never run inside a rank program.
  std::vector<idx_t> compute_repartition(idx_t s, std::span<const idx_t> owner,
                                         std::span<const char> is_contact,
                                         bool* cross_group) const;

  /// Copies `owner`/`hits` into every rank state and rebuilds the views —
  /// how the reference body's results (and the degraded recovery) re-enter
  /// the rank-owned representation.
  void scatter_global_state(std::span<const idx_t> owner,
                            std::span<const wgt_t> hits);

  std::uint64_t ownership_hash(std::span<const idx_t> owner,
                               std::span<const wgt_t> hits) const;

  const ImpactSim* sim_;
  DistributedSimConfig config_;
  Partitioner partitioner_;  // the unified repartition entry (owns hierarchy)
  MeshTopology topo_;
  std::vector<int> body_of_node_;  // same-body search exclusion
  std::vector<SubdomainState> states_;
  Exchange exchange_;
  // The step's multi-phase runs are dependency-driven (async_); the plain
  // striped executor remains for single supersteps whose cross-rank data
  // already moved (scatter_global_state).
  RankExecutor executor_;
  AsyncExecutor async_;
  idx_t steps_run_ = 0;
  // Driver scratch.
  TreeInduceWorkspace induce_ws_;  // warm storage across per-step inductions
  // halo_providers_[dst]: ranks that post halo nodes to dst this step — the
  // inverse of the rank states' halo send lists, rebuilt per step (views
  // change on migration).
  std::vector<std::vector<idx_t>> halo_providers_;
  std::vector<char> contact_mask_;
  std::vector<idx_t> start_owner_;   // start-of-step recovery snapshot
  std::vector<wgt_t> start_hits_;
  // Rank-death tolerance (see run_step). step_history_ records the snapshot
  // ids of every step since the last durable checkpoint; replay_pos_ is its
  // completed prefix, rewound to 0 by a restore. step_attempts_ counts
  // executions per logical step — the incarnation the injector keys rank
  // faults on, so a replayed step never re-fires its kill.
  FileShim* checkpoint_shim_ = &FileShim::real();
  std::unique_ptr<CheckpointStore> store_;  // created lazily by run_step
  std::vector<idx_t> step_history_;
  std::size_t replay_pos_ = 0;
  std::vector<idx_t> step_attempts_;
  // This attempt's injected rank faults (sized k while an injector with a
  // rank-fault schedule is armed; consulted by run_step_spmd).
  std::vector<char> death_mask_;
  std::vector<char> hang_mask_;
  bool any_death_ = false;
  bool any_hang_ = false;
  bool suspended_ = false;  // see suspend()/resume()
};

}  // namespace cpart
