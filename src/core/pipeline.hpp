// End-to-end parallel contact pipeline, executed SPMD on the rank/exchange
// runtime.
//
// One full time step the way a production MPI integration of MCML+DT would
// run it (paper Sections 2 and 4), as k concurrent per-rank programs over
// typed exchange channels (runtime/exchange.hpp):
//   1. descriptor update — rank 0 induces this snapshot's descriptor tree
//      from the moved contact points and broadcasts the serialized tree to
//      the other k-1 ranks (bytes x (k-1) = the NTNodes setup cost); every
//      receiver parses its own copy;
//   2. FE halo exchange — each rank posts its boundary-node positions to
//      the adjacent partitions;
//   3. global search — each rank filters its own surface faces through its
//      descriptor copy and ships each face (ids + coordinates) to every
//      candidate rank;
//   4. local search — each rank tests its own contact nodes against its
//      owned + received faces.
// The per-rank events are merged deterministically (rank order, then sorted
// by (node, distance)) — bit-identical to the centralized implementation,
// which is retained as run_step_reference() and serves as the equivalence
// oracle for tests and benches. The union of the per-rank local searches
// must also equal a serial search over the whole surface whenever the
// search margin covers the contact tolerance — the integration tests assert
// exactly that, which validates the conservativeness of the descriptor
// filter end-to-end.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "contact/local_search.hpp"
#include "core/mcml_dt.hpp"
#include "core/ml_rcb.hpp"
#include "mesh/mesh_graphs.hpp"
#include "mesh/subdomain.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/async_executor.hpp"
#include "runtime/exchange.hpp"
#include "runtime/health.hpp"
#include "runtime/rank.hpp"
#include "runtime/virtual_cluster.hpp"
#include "tree/tree_io.hpp"

namespace cpart {

/// Validates that (mesh, surface) plausibly continues the snapshot sequence
/// a pipeline was constructed on: identical node count (node ids are stable
/// across a simulation sequence), same element type, element count no larger
/// than at construction (elements only erode, never appear), and contact
/// arrays indexed by this mesh's nodes. Throws InputError naming `who` on
/// any mismatch — a snapshot from a different simulation must be rejected,
/// not silently re-balanced against.
void validate_snapshot_identity(const Mesh& mesh, const Surface& surface,
                                ElementType type0, idx_t num_nodes0,
                                idx_t max_elements, const char* who);

/// Runs an SPMD step body, degrading on exactly the failure classes the
/// robustness layer owns: transport retry exhaustion (TransportError),
/// rejected descriptor wires (TreeParseError), and failing rank programs
/// (ParallelGroupError). Anything else (config errors, logic bugs) still
/// propagates — degrading would mask it. On failure, `health` receives the
/// step's counters (plus what the transport could not record itself) with
/// degraded_steps == 1, and the exchange is reset for the fallback. Shared
/// by every pipeline built on the rank/exchange runtime.
template <typename Spmd>
bool try_spmd_step(Exchange& exchange, PipelineHealth& health, Spmd&& spmd) {
  wgt_t parse_failures = 0;
  wgt_t failed_ranks = 0;
  try {
    spmd();
    return true;
  } catch (const TransportError&) {
    // Retry/exhaustion counters were recorded by the exchange itself.
  } catch (const TreeParseError&) {
    // One rank program rejected a descriptor wire off the transport.
    parse_failures = 1;
    failed_ranks = 1;
  } catch (const ParallelGroupError& e) {
    failed_ranks = to_idx(e.failures().size());
  }
  health = exchange.take_health();
  health.wire_parse_failures += parse_failures;
  health.failed_ranks += failed_ranks;
  ++health.degraded_steps;
  exchange.abort_step();
  return false;
}

/// Contact-search knobs shared by both pipelines (deduplicated — they used
/// to be copy-pasted fields with the margin/tolerance check in two places).
struct SearchConfig {
  /// Global-search inflation of surface-element boxes. Must be at least the
  /// local tolerance for the pipeline to be exact (checked by validate()).
  real_t search_margin = 0.1;
  /// Local-search proximity tolerance.
  real_t contact_tolerance = 0.1;
  /// Report every face within tolerance (false) or only the closest per
  /// node (true).
  bool closest_only = true;

  /// Throws InputError unless search_margin >= contact_tolerance (`who`
  /// prefixes the message).
  void validate(const char* who) const;

  /// The LocalSearchOptions these knobs describe.
  LocalSearchOptions local_options(std::span<const int> body_of_node) const;
};

struct PipelineConfig {
  McmlDtConfig decomposition{};
  SearchConfig search{};
  /// Wire encoding of the per-step descriptor-tree broadcast; both flavors
  /// switch together, so cross-flavor byte comparisons hold in either
  /// format (see tree/tree_io.hpp).
  TreeWireFormat wire_format = TreeWireFormat::kBinary;
};

/// Per-rank wall milliseconds of each SPMD phase of the last run_step
/// (empty after run_step_reference, which has no per-rank execution).
struct RankPhaseBreakdown {
  std::vector<double> descriptor_ms;  // induce/serialize (rank 0), parse
  std::vector<double> halo_ms;        // halo posting
  std::vector<double> ship_ms;        // ghost intake + element shipping
  std::vector<double> search_ms;      // merge + local search
  // Readiness-wait wall ms preceding each phase under the dependency-driven
  // executor: time the rank spent blocked until the inbox rows its phase
  // reads were closed (0 for phases with no reads or already-ready inputs).
  std::vector<double> descriptor_wait_ms;
  std::vector<double> halo_wait_ms;
  std::vector<double> ship_wait_ms;
  std::vector<double> search_wait_ms;
};

struct PipelineStepReport {
  StepTraffic fe_exchange;       // phase 2
  StepTraffic search_exchange;   // phase 3
  wgt_t descriptor_tree_nodes = 0;
  wgt_t descriptor_broadcast_bytes = 0;  // phase 1 cost
  /// Measured payload bytes the exchange actually carried (SPMD path only;
  /// the reference path models units, not bytes, and leaves these 0).
  wgt_t halo_payload_bytes = 0;
  wgt_t face_payload_bytes = 0;
  /// Periodic-repartition migration accounting: what the last repartition
  /// moved, charged to the step it happened in. The pipelines themselves
  /// keep a fixed partition, so these stay 0 unless the driver runs the
  /// repartitioning update policy (experiment driver, bench_spmd
  /// --repart_period) — DistributedSim fills the equivalent fields of its
  /// own report natively.
  idx_t repart_moved_nodes = 0;
  idx_t repart_moved_elements = 0;
  wgt_t repart_moved_bytes = 0;
  idx_t contact_events = 0;
  idx_t penetrating_events = 0;
  std::vector<ContactEvent> events;  // merged, sorted by (node, distance)
  /// Contact events found by each processor (sums to contact_events).
  std::vector<idx_t> events_per_processor;
  RankPhaseBreakdown phase;  // SPMD path only
  /// Transport detection/recovery counters of this step. clean() on a
  /// healthy step; degraded() when the step fell back to the reference
  /// path. run_step_reference leaves it default (no transport ran).
  PipelineHealth health;
};

class ContactPipeline {
 public:
  /// Decomposes the snapshot-0 mesh; the partition is reused across steps
  /// (the paper's fixed-partition update policy).
  ContactPipeline(const Mesh& mesh0, const Surface& surface0,
                  const PipelineConfig& config);

  idx_t k() const { return config_.decomposition.k; }
  const McmlDtPartitioner& partitioner() const { return partitioner_; }

  /// Executes one full step SPMD: k rank programs run concurrently on the
  /// global ThreadPool, exchanging real payloads. `body_of_node` (size
  /// num_nodes) enables the standard same-body contact exclusion. Snapshots
  /// must come from one simulation sequence (the nodal-graph cache keys on
  /// monotone erosion — see NodalGraphCache).
  ///
  /// Robustness: delivery validation failures are retried inside the
  /// exchange (see RetryPolicy); if the transport gives up (TransportError),
  /// a descriptor wire is rejected (TreeParseError), or rank programs throw
  /// (ParallelGroupError), the step completes through run_step_reference
  /// instead of crashing, with health.degraded_steps == 1 on the report.
  PipelineStepReport run_step(const Mesh& mesh, const Surface& surface,
                              std::span<const int> body_of_node = {});

  /// The pre-refactor centralized implementation, kept as the equivalence
  /// oracle: run_step must match it bit for bit (events, per-rank counts,
  /// traffic), which the spmd tests assert at 1 and 8 threads.
  PipelineStepReport run_step_reference(
      const Mesh& mesh, const Surface& surface,
      std::span<const int> body_of_node = {}) const;

  /// The Exchange this pipeline's supersteps run over — exposed so callers
  /// (tests, benches, the experiment driver) can arm fault injection and
  /// tune the retry policy.
  Exchange& exchange() { return exchange_; }

 private:
  /// The SPMD step body; throws on transport/parse/rank-program failure
  /// (run_step catches and degrades).
  PipelineStepReport run_step_spmd(const Mesh& mesh, const Surface& surface,
                                   std::span<const int> body_of_node);

  PipelineConfig config_;
  McmlDtPartitioner partitioner_;
  // Snapshot-sequence identity captured at construction; every step's
  // snapshot is validated against it (see validate_snapshot_identity).
  ElementType element_type0_;
  idx_t num_nodes0_ = 0;
  idx_t num_elements0_ = 0;
  // SPMD state, reused across steps.
  NodalGraphCache graph_cache_;
  std::uint64_t halo_version_ = 0;  // views_ halo lists match this version
  std::vector<SubdomainView> views_;
  std::vector<Rank> ranks_;
  Exchange exchange_;
  AsyncExecutor executor_;
  // Inverse of views_[*].halo_sends — halo_providers_[dst] lists every rank
  // that posts halo nodes to dst. Rebuilt with the halo lists (same
  // halo_version_ key); lets the ship phase start on a rank once just its
  // neighbors' rows closed.
  std::vector<std::vector<idx_t>> halo_providers_;
  TreeInduceWorkspace induce_ws_;      // warm storage across step inductions
  std::vector<idx_t> contact_labels_;  // per-step gather scratch
  std::vector<idx_t> face_owner_;
};

// ---------------------------------------------------------------------------
// The same end-to-end step for the ML+RCB baseline.
// ---------------------------------------------------------------------------

struct MlRcbPipelineConfig {
  MlRcbConfig decomposition{};
  SearchConfig search{};
};

struct MlRcbStepReport {
  StepTraffic fe_exchange;
  StepTraffic coupling_exchange;  // mesh-to-mesh, both directions
  StepTraffic search_exchange;
  wgt_t upd_comm = 0;  // incremental-RCB redistribution this step
  /// Measured payload bytes (SPMD path only, like PipelineStepReport).
  wgt_t halo_payload_bytes = 0;
  wgt_t face_payload_bytes = 0;
  wgt_t coupling_payload_bytes = 0;
  wgt_t box_allgather_bytes = 0;  // RCB subdomain-box allgather
  idx_t contact_events = 0;
  idx_t penetrating_events = 0;
  std::vector<ContactEvent> events;
  std::vector<idx_t> events_per_processor;
  RankPhaseBreakdown phase;  // SPMD path only (descriptor_ms stays 0)
  /// Transport health of this step (see PipelineStepReport::health).
  PipelineHealth health;
};

/// ML+RCB's step: FE halo on the graph decomposition, transfer of contact
/// data to the RCB decomposition and back (2x M2MComm), element shipping
/// under the bounding-box filter, local search in the RCB decomposition.
/// Equally exact: the per-processor searches reproduce the serial result
/// (the subdomain boxes are conservative).
class MlRcbPipeline {
 public:
  MlRcbPipeline(const Mesh& mesh0, const Surface& surface0,
                const MlRcbPipelineConfig& config);

  idx_t k() const { return config_.decomposition.k; }
  const MlRcbPartitioner& partitioner() const { return partitioner_; }

  /// Advances the incremental RCB and executes the step SPMD. Must be
  /// called in snapshot order (the RCB update is stateful). Degrades to the
  /// centralized phases on transport/rank failure exactly like
  /// ContactPipeline::run_step — the RCB advance runs once either way.
  MlRcbStepReport run_step(const Mesh& mesh, const Surface& surface,
                           std::span<const int> body_of_node = {});

  /// The pre-refactor centralized step (also advances the RCB — drive a
  /// given pipeline instance through exactly one of run_step /
  /// run_step_reference; the equivalence tests compare two identically
  /// seeded instances).
  MlRcbStepReport run_step_reference(const Mesh& mesh, const Surface& surface,
                                     std::span<const int> body_of_node = {});

  /// See ContactPipeline::exchange().
  Exchange& exchange() { return exchange_; }

 private:
  /// Shared stateful preamble of both step flavors: RCB advance + UpdComm
  /// bookkeeping.
  void advance_partition(const Mesh& mesh, const Surface& surface,
                         MlRcbStepReport& report);

  /// The SPMD supersteps after advance_partition; throws on failure.
  void run_step_spmd(const Mesh& mesh, const Surface& surface,
                     std::span<const int> body_of_node,
                     MlRcbStepReport& report);

  /// The centralized phases after advance_partition (shared by
  /// run_step_reference and the degraded path of run_step, which must not
  /// advance the stateful RCB a second time).
  void run_reference_phases(const Mesh& mesh, const Surface& surface,
                            std::span<const int> body_of_node,
                            MlRcbStepReport& report) const;

  MlRcbPipelineConfig config_;
  MlRcbPartitioner partitioner_;
  // Snapshot-sequence identity captured at construction (see
  // validate_snapshot_identity).
  ElementType element_type0_;
  idx_t num_nodes0_ = 0;
  idx_t num_elements0_ = 0;
  bool first_step_ = true;
  // SPMD state, reused across steps.
  NodalGraphCache graph_cache_;
  std::uint64_t halo_version_ = 0;
  std::vector<SubdomainView> views_;
  std::vector<Rank> ranks_;
  Exchange exchange_;
  AsyncExecutor executor_;
  std::vector<idx_t> fe_labels_;  // per-step gather scratch
  std::vector<idx_t> rcb_node_labels_;
  std::vector<idx_t> face_owner_;
};

}  // namespace cpart
