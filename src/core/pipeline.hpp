// End-to-end parallel contact pipeline on the virtual cluster.
//
// Orchestrates one full time step the way a production MPI integration of
// MCML+DT would (paper Sections 2 and 4):
//   1. descriptor update — induce this snapshot's descriptor tree from the
//      moved contact points and broadcast it to all k processors
//      (serialized size x (k-1) = the NTNodes setup cost, in bytes);
//   2. FE halo exchange — boundary-node data to adjacent partitions;
//   3. global search — every surface element shipped to the partitions
//      whose descriptor regions its (inflated) bounding box intersects;
//   4. local search — each processor tests its own contact nodes against
//      its local + received elements.
// The union of the per-processor local searches must equal a serial local
// search over the whole surface whenever the search margin covers the
// contact tolerance — the integration tests assert exactly that, which
// validates the conservativeness of the descriptor filter end-to-end.
#pragma once

#include <span>

#include "contact/local_search.hpp"
#include "core/mcml_dt.hpp"
#include "core/ml_rcb.hpp"
#include "runtime/virtual_cluster.hpp"

namespace cpart {

struct PipelineConfig {
  McmlDtConfig decomposition{};
  /// Global-search inflation of surface-element boxes. Must be at least the
  /// local tolerance for the pipeline to be exact (checked).
  real_t search_margin = 0.1;
  /// Local-search proximity tolerance.
  real_t contact_tolerance = 0.1;
  /// Report every face within tolerance (false) or only the closest per
  /// node (true).
  bool closest_only = true;
};

struct PipelineStepReport {
  StepTraffic fe_exchange;       // phase 2
  StepTraffic search_exchange;   // phase 3
  wgt_t descriptor_tree_nodes = 0;
  wgt_t descriptor_broadcast_bytes = 0;  // phase 1 cost
  idx_t contact_events = 0;
  idx_t penetrating_events = 0;
  std::vector<ContactEvent> events;  // merged, sorted by (node, distance)
  /// Contact events found by each processor (sums to contact_events).
  std::vector<idx_t> events_per_processor;
};

class ContactPipeline {
 public:
  /// Decomposes the snapshot-0 mesh; the partition is reused across steps
  /// (the paper's fixed-partition update policy).
  ContactPipeline(const Mesh& mesh0, const Surface& surface0,
                  const PipelineConfig& config);

  idx_t k() const { return config_.decomposition.k; }
  const McmlDtPartitioner& partitioner() const { return partitioner_; }

  /// Executes one full step on the given snapshot. `body_of_node` (size
  /// num_nodes) enables the standard same-body contact exclusion.
  PipelineStepReport run_step(const Mesh& mesh, const Surface& surface,
                              std::span<const int> body_of_node = {}) const;

 private:
  PipelineConfig config_;
  McmlDtPartitioner partitioner_;
};

// ---------------------------------------------------------------------------
// The same end-to-end step for the ML+RCB baseline.
// ---------------------------------------------------------------------------

struct MlRcbPipelineConfig {
  MlRcbConfig decomposition{};
  real_t search_margin = 0.1;
  real_t contact_tolerance = 0.1;
  bool closest_only = true;
};

struct MlRcbStepReport {
  StepTraffic fe_exchange;
  StepTraffic coupling_exchange;  // mesh-to-mesh, both directions
  StepTraffic search_exchange;
  wgt_t upd_comm = 0;  // incremental-RCB redistribution this step
  idx_t contact_events = 0;
  idx_t penetrating_events = 0;
  std::vector<ContactEvent> events;
};

/// ML+RCB's step: FE halo on the graph decomposition, transfer of contact
/// data to the RCB decomposition and back (2x M2MComm), element shipping
/// under the bounding-box filter, local search in the RCB decomposition.
/// Equally exact: the per-processor searches reproduce the serial result
/// (the subdomain boxes are conservative).
class MlRcbPipeline {
 public:
  MlRcbPipeline(const Mesh& mesh0, const Surface& surface0,
                const MlRcbPipelineConfig& config);

  idx_t k() const { return config_.decomposition.k; }
  const MlRcbPartitioner& partitioner() const { return partitioner_; }

  /// Advances the incremental RCB and executes the step. Must be called in
  /// snapshot order (the RCB update is stateful).
  MlRcbStepReport run_step(const Mesh& mesh, const Surface& surface,
                           std::span<const int> body_of_node = {});

 private:
  MlRcbPipelineConfig config_;
  MlRcbPartitioner partitioner_;
  bool first_step_ = true;
};

}  // namespace cpart
