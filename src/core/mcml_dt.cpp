#include "core/mcml_dt.hpp"

#include <algorithm>

#include "graph/graph_builder.hpp"
#include "graph/graph_metrics.hpp"
#include "mesh/mesh_graphs.hpp"
#include "partition/connectivity.hpp"
#include "partition/geometric.hpp"

namespace cpart {

CsrGraph build_two_phase_graph(const Mesh& mesh,
                               std::span<const char> is_contact_node,
                               wgt_t contact_edge_weight) {
  require(is_contact_node.size() == static_cast<std::size_t>(mesh.num_nodes()),
          "build_two_phase_graph: contact mask size mismatch");
  GraphBuilder builder(mesh.num_nodes());
  const auto edges = element_edges(mesh.element_type());
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (const auto& [a, b] : edges) {
      const idx_t u = elem[static_cast<std::size_t>(a)];
      const idx_t v = elem[static_cast<std::size_t>(b)];
      const bool both_contact = is_contact_node[static_cast<std::size_t>(u)] &&
                                is_contact_node[static_cast<std::size_t>(v)];
      builder.add_edge(u, v, both_contact ? contact_edge_weight : 1);
    }
  }
  // Two constraints: FE work (1 per node) and contact-search work (1 per
  // contact node). Section 5 uses exactly these unit weights.
  std::vector<wgt_t> vwgt(static_cast<std::size_t>(mesh.num_nodes()) * 2);
  for (idx_t v = 0; v < mesh.num_nodes(); ++v) {
    vwgt[static_cast<std::size_t>(v) * 2] = 1;
    vwgt[static_cast<std::size_t>(v) * 2 + 1] =
        is_contact_node[static_cast<std::size_t>(v)] ? 1 : 0;
  }
  builder.set_vertex_weights(std::move(vwgt), 2);
  return builder.build();
}

namespace {

/// Collapses the region tree's leaves into the quotient graph G'
/// (Section 4.2): one vertex per region carrying the summed weight vectors,
/// edges aggregating all fine edges between different regions.
CsrGraph build_region_graph(const CsrGraph& g,
                            std::span<const idx_t> region_of_vertex,
                            idx_t num_regions) {
  GraphBuilder builder(num_regions);
  std::vector<wgt_t> vwgt(static_cast<std::size_t>(num_regions) *
                              static_cast<std::size_t>(g.ncon()),
                          0);
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    const idx_t rv = region_of_vertex[static_cast<std::size_t>(v)];
    for (idx_t c = 0; c < g.ncon(); ++c) {
      vwgt[static_cast<std::size_t>(rv) * g.ncon() +
           static_cast<std::size_t>(c)] += g.vertex_weight(v, c);
    }
    const auto nbrs = g.neighbors(v);
    for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
      const idx_t u = nbrs[static_cast<std::size_t>(j)];
      if (u <= v) continue;  // count each undirected edge once
      const idx_t ru = region_of_vertex[static_cast<std::size_t>(u)];
      if (ru != rv) builder.add_edge(rv, ru, g.edge_weight(v, j));
    }
  }
  builder.set_vertex_weights(std::move(vwgt), g.ncon());
  return builder.build(DupPolicy::kSum);
}

}  // namespace

McmlDtPartitioner::McmlDtPartitioner(const Mesh& mesh, const Surface& surface,
                                     const McmlDtConfig& config)
    : config_(config) {
  require(config_.k >= 1, "McmlDtPartitioner: k must be >= 1");
  const idx_t n = mesh.num_nodes();
  const CsrGraph g = build_two_phase_graph(mesh, surface.is_contact_node,
                                           config_.contact_edge_weight);

  // Step 1-2: multi-constraint partitioning (P).
  PartitionOptions popts = config_.partitioner;
  popts.k = config_.k;
  popts.epsilon = config_.epsilon;
  if (config_.initial == InitialPartitioner::kGeometric) {
    GeometricPartitionOptions gopts;
    gopts.k = config_.k;
    gopts.dim = mesh.dim();
    gopts.ncon = 2;
    partition_ =
        geometric_multiconstraint_partition(mesh.nodes(), g.vwgt(), gopts);
  } else {
    PartitionerConfig pc;
    pc.options = popts;
    pc.hierarchy = config_.hierarchy;
    partition_ = Partitioner(pc).partition(g, &hierarchy_stats_);
  }
  stats_.cut_initial = edge_cut(g, partition_);
  stats_.imbalance_initial = max_load_imbalance(g, partition_, config_.k);

  if (!config_.tree_friendly || config_.k == 1) {
    stats_.cut_majority = stats_.cut_initial;
    stats_.cut_final = stats_.cut_initial;
    stats_.imbalance_majority = stats_.imbalance_initial;
    stats_.imbalance_final = stats_.imbalance_initial;
    return;
  }

  // Step 3a: region tree over all nodes, majority reassignment (P -> P').
  RegionTreeOptions ropts = config_.region;
  if (ropts.max_pure == 0 || ropts.max_impure == 0) {
    ropts = recommended_region_options(n, config_.k, mesh.dim());
  }
  ropts.dim = mesh.dim();
  const RegionTree regions(mesh.nodes(), partition_, config_.k, ropts);
  stats_.num_regions = regions.num_regions();
  stats_.region_tree_nodes = regions.num_tree_nodes();
  partition_ = regions.majority_partition();
  stats_.cut_majority = edge_cut(g, partition_);
  stats_.imbalance_majority = max_load_imbalance(g, partition_, config_.k);

  // Step 3b: multi-constraint k-way refinement on the collapsed graph G'
  // (P' -> P''), moving whole regions so boundaries stay axes-parallel.
  const CsrGraph region_graph =
      build_region_graph(g, regions.region_of_point(), regions.num_regions());
  std::vector<idx_t> region_part = regions.region_majority();
  KwayRefineOptions kro;
  kro.k = config_.k;
  kro.epsilon = config_.epsilon;
  kro.passes = std::max(8, popts.kway_passes);
  Rng rng(popts.seed ^ 0xabcdef1234567ULL);
  for (int round = 0; round < 2; ++round) {
    merge_partition_fragments(region_graph, region_part, config_.k);
    kway_refine(region_graph, region_part, kro, rng);
  }
  for (idx_t v = 0; v < n; ++v) {
    partition_[static_cast<std::size_t>(v)] = region_part[static_cast<std::size_t>(
        regions.region_of_point()[static_cast<std::size_t>(v)])];
  }
  stats_.cut_final = edge_cut(g, partition_);
  stats_.imbalance_final = max_load_imbalance(g, partition_, config_.k);
}

SubdomainDescriptors McmlDtPartitioner::build_descriptors(
    const Mesh& mesh, const Surface& surface) const {
  require(mesh.num_nodes() == to_idx(partition_.size()),
          "build_descriptors: mesh node count differs from partition");
  // Gather the current positions and labels of the contact points.
  std::vector<Vec3> points;
  std::vector<idx_t> labels;
  points.reserve(surface.contact_nodes.size());
  labels.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) {
    points.push_back(mesh.node(id));
    labels.push_back(partition_[static_cast<std::size_t>(id)]);
  }
  DescriptorOptions dopts = config_.descriptor;
  dopts.dim = mesh.dim();
  return SubdomainDescriptors(points, labels, config_.k, dopts);
}

void McmlDtPartitioner::set_node_partition(std::vector<idx_t> partition) {
  require(partition.size() == partition_.size(),
          "set_node_partition: size mismatch");
  for (idx_t p : partition) {
    require(p >= 0 && p < config_.k,
            "set_node_partition: partition id out of range");
  }
  partition_ = std::move(partition);
}

}  // namespace cpart
