#include "core/ml_rcb.hpp"

#include "contact/search_metrics.hpp"
#include "mesh/mesh_graphs.hpp"

namespace cpart {

MlRcbPartitioner::MlRcbPartitioner(const Mesh& mesh, const Surface& surface,
                                   const MlRcbConfig& config)
    : config_(config) {
  require(config_.k >= 1, "MlRcbPartitioner: k must be >= 1");
  // FE decomposition: plain single-constraint multilevel partitioning of the
  // (unweighted) nodal graph — the role METIS plays for ML+RCB's first phase.
  const CsrGraph g = nodal_graph(mesh);
  PartitionerConfig pc;
  pc.options = config_.partitioner;
  pc.options.k = config_.k;
  pc.options.epsilon = config_.epsilon;
  pc.hierarchy = config_.hierarchy;
  fe_partition_ = Partitioner(pc).partition(g);

  // Contact decomposition: RCB over the contact points.
  std::vector<Vec3> points;
  points.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) points.push_back(mesh.node(id));
  rcb_ = RcbTree::build(points, {}, config_.k, mesh.dim());
  contact_ids_ = surface.contact_nodes;
  contact_labels_ = rcb_.labels();
}

wgt_t MlRcbPartitioner::update_contact_partition(const Mesh& mesh,
                                                 const Surface& surface) {
  std::vector<Vec3> points;
  points.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) points.push_back(mesh.node(id));
  const std::vector<idx_t> old_ids = std::move(contact_ids_);
  const std::vector<idx_t> old_labels = std::move(contact_labels_);
  rcb_.update(points, {});
  contact_ids_ = surface.contact_nodes;
  contact_labels_ = rcb_.labels();
  return upd_comm(old_ids, old_labels, contact_ids_, contact_labels_,
                  mesh.num_nodes());
}

BBoxFilter MlRcbPartitioner::make_bbox_filter(const Mesh& mesh) const {
  std::vector<Vec3> points;
  points.reserve(contact_ids_.size());
  for (idx_t id : contact_ids_) points.push_back(mesh.node(id));
  return BBoxFilter::from_points(points, contact_labels_, config_.k);
}

}  // namespace cpart
