#include "core/apriori.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/mcml_dt.hpp"
#include "graph/graph_builder.hpp"
#include "mesh/mesh_graphs.hpp"

namespace cpart {

ContactPairs predict_contact_pairs(const Mesh& mesh, const Surface& surface,
                                   std::span<const int> body_of_node,
                                   real_t radius) {
  require(body_of_node.size() == static_cast<std::size_t>(mesh.num_nodes()),
          "predict_contact_pairs: body array size mismatch");
  require(radius > 0, "predict_contact_pairs: radius must be positive");
  // Uniform-grid spatial hash over the contact nodes; pairs are contact
  // nodes of different bodies within `radius`.
  struct CellKey {
    long long x, y, z;
    bool operator==(const CellKey&) const = default;
  };
  struct CellHash {
    std::size_t operator()(const CellKey& k) const {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (long long v : {k.x, k.y, k.z}) {
        h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<CellKey, std::vector<idx_t>, CellHash> grid;
  auto cell_of = [radius](Vec3 p) {
    return CellKey{static_cast<long long>(std::floor(p.x / radius)),
                   static_cast<long long>(std::floor(p.y / radius)),
                   static_cast<long long>(std::floor(p.z / radius))};
  };
  for (idx_t id : surface.contact_nodes) {
    grid[cell_of(mesh.node(id))].push_back(id);
  }
  ContactPairs pairs;
  const real_t r2 = radius * radius;
  for (idx_t a : surface.contact_nodes) {
    const Vec3 pa = mesh.node(a);
    const CellKey base = cell_of(pa);
    for (long long dx = -1; dx <= 1; ++dx) {
      for (long long dy = -1; dy <= 1; ++dy) {
        for (long long dz = -1; dz <= 1; ++dz) {
          const auto it =
              grid.find(CellKey{base.x + dx, base.y + dy, base.z + dz});
          if (it == grid.end()) continue;
          for (idx_t b : it->second) {
            if (b <= a) continue;  // each unordered pair once
            if (body_of_node[static_cast<std::size_t>(a)] ==
                body_of_node[static_cast<std::size_t>(b)]) {
              continue;
            }
            const Vec3 d = mesh.node(b) - pa;
            if (dot(d, d) <= r2) pairs.emplace_back(a, b);
          }
        }
      }
    }
  }
  return pairs;
}

std::vector<idx_t> apriori_contact_partition(const Mesh& mesh,
                                             const Surface& surface,
                                             const ContactPairs& pairs,
                                             const AprioriConfig& config) {
  GraphBuilder builder(mesh.num_nodes());
  const auto edges = element_edges(mesh.element_type());
  for (idx_t e = 0; e < mesh.num_elements(); ++e) {
    const auto elem = mesh.element(e);
    for (const auto& [a, b] : edges) {
      builder.add_edge(elem[static_cast<std::size_t>(a)],
                       elem[static_cast<std::size_t>(b)]);
    }
  }
  for (const auto& [a, b] : pairs) {
    builder.add_edge(a, b, config.contact_pair_weight);
  }
  std::vector<wgt_t> vwgt(static_cast<std::size_t>(mesh.num_nodes()) * 2);
  for (idx_t v = 0; v < mesh.num_nodes(); ++v) {
    vwgt[static_cast<std::size_t>(v) * 2] = 1;
    vwgt[static_cast<std::size_t>(v) * 2 + 1] =
        surface.is_contact_node[static_cast<std::size_t>(v)] ? 1 : 0;
  }
  builder.set_vertex_weights(std::move(vwgt), 2);
  const CsrGraph g = builder.build();

  PartitionerConfig pc;
  pc.options = config.partitioner;
  pc.options.k = config.k;
  pc.options.epsilon = config.epsilon;
  pc.hierarchy = config.hierarchy;
  return Partitioner(pc).partition(g);
}

double colocated_pair_fraction(const ContactPairs& pairs,
                               std::span<const idx_t> part) {
  if (pairs.empty()) return 1.0;
  std::size_t colocated = 0;
  for (const auto& [a, b] : pairs) {
    if (part[static_cast<std::size_t>(a)] == part[static_cast<std::size_t>(b)]) {
      ++colocated;
    }
  }
  return static_cast<double>(colocated) / static_cast<double>(pairs.size());
}

}  // namespace cpart
