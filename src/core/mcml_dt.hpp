// MCML+DT — the paper's algorithm (Section 4).
//
// One decomposition serves both computation phases:
//  1. Build the nodal graph with two vertex weights (FE work; contact-search
//     work, nonzero only on contact nodes) and edge weights (contact-contact
//     edges weighted higher, default 5 vs 1 — Section 5's configuration).
//  2. Multi-constraint multilevel partitioning balances both phases.
//  3. Tree-friendly adjustment: a max_p/max_i-terminated region tree over
//     all nodes reassigns each rectangular region to its majority partition
//     (P'), then multi-constraint k-way refinement on the collapsed region
//     graph G' restores balance without breaking the axes-parallel
//     boundaries (P'').
//  4. Per snapshot, a descriptor tree over the current contact points gives
//     each subdomain a tight set of axes-parallel boxes; global search
//     streams surface-element bounding boxes down this tree.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "mesh/mesh.hpp"
#include "mesh/surface.hpp"
#include "partition/partitioner.hpp"
#include "tree/descriptor_tree.hpp"
#include "tree/region_tree.hpp"

namespace cpart {

/// How the initial multi-constraint partition P is computed.
enum class InitialPartitioner {
  /// Multilevel multi-constraint graph partitioning (the paper's choice).
  kMultilevelGraph,
  /// Geometry-aware multi-constraint RCB (the paper's Section-6 future-work
  /// direction): balanced in all constraints with axes-parallel boundaries
  /// by construction; the G' refinement then recovers cut quality.
  kGeometric,
};

struct McmlDtConfig {
  idx_t k = 25;
  double epsilon = 0.10;
  /// Weight of edges connecting two contact nodes (others get 1).
  wgt_t contact_edge_weight = 5;
  InitialPartitioner initial = InitialPartitioner::kMultilevelGraph;
  /// Enables the tree-friendly P -> P' -> P'' adjustment (Section 4.2).
  /// Disabling it is the "raw multi-constraint partition" ablation.
  bool tree_friendly = true;
  /// Region-tree thresholds; zeros mean "use the paper's recommended
  /// mid-range values derived from n and k".
  RegionTreeOptions region{};
  /// Multilevel partitioner knobs (seed, coarsening, refinement).
  PartitionOptions partitioner{};
  /// Two-level hierarchy (groups >= 2 partitions group-first; see
  /// partition/hierarchical.hpp). Ignored by the geometric initializer.
  HierarchyOptions hierarchy{};
  /// Descriptor induction (gap_alpha enables the Section-6 extension).
  DescriptorOptions descriptor{};
};

/// Builds the contact/impact nodal graph of Section 4.2: two vertex weight
/// components (all-ones; contact indicator) and contact-weighted edges.
CsrGraph build_two_phase_graph(const Mesh& mesh,
                               std::span<const char> is_contact_node,
                               wgt_t contact_edge_weight);

class McmlDtPartitioner {
 public:
  /// Partitions the snapshot-0 mesh. `surface` must come from `mesh`.
  McmlDtPartitioner(const Mesh& mesh, const Surface& surface,
                    const McmlDtConfig& config);

  const McmlDtConfig& config() const { return config_; }
  idx_t k() const { return config_.k; }

  /// Final node partition P'' (per mesh node).
  const std::vector<idx_t>& node_partition() const { return partition_; }

  /// Diagnostics of the adjustment pipeline.
  struct PipelineStats {
    wgt_t cut_initial = 0;       // after multi-constraint partitioning (P)
    wgt_t cut_majority = 0;      // after region-majority reassignment (P')
    wgt_t cut_final = 0;         // after G' refinement (P'')
    double imbalance_initial = 0;
    double imbalance_majority = 0;
    double imbalance_final = 0;
    idx_t num_regions = 0;       // leaves of the region tree
    idx_t region_tree_nodes = 0;
  };
  const PipelineStats& stats() const { return stats_; }

  /// Per-level diagnostics of the initial partition (meaningful when
  /// config().hierarchy.groups >= 2; flat runs fill the final level only).
  const HierarchyStats& hierarchy_stats() const { return hierarchy_stats_; }

  /// Induces this snapshot's subdomain descriptors from the current contact
  /// points (the paper's fixed-partition update strategy: the partition
  /// stays, only the descriptors are rebuilt).
  SubdomainDescriptors build_descriptors(const Mesh& mesh,
                                         const Surface& surface) const;

  /// Replaces the node partition (used by the repartitioning update
  /// policy); must be a valid k-way labeling of the same node set.
  void set_node_partition(std::vector<idx_t> partition);

 private:
  McmlDtConfig config_;
  std::vector<idx_t> partition_;
  PipelineStats stats_;
  HierarchyStats hierarchy_stats_;
};

}  // namespace cpart
