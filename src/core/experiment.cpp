#include "core/experiment.hpp"

#include <optional>
#include <ostream>

#include "contact/search_metrics.hpp"
#include "core/distributed_sim.hpp"
#include "core/pipeline.hpp"
#include "graph/graph_metrics.hpp"
#include "mesh/mesh_graphs.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/step_pipeline.hpp"
#include "util/timer.hpp"

namespace cpart {

namespace {

/// Imbalance of a labeling restricted to a subset: max count / mean count.
double subset_imbalance(std::span<const idx_t> labels, idx_t k) {
  if (labels.empty()) return 1.0;
  std::vector<wgt_t> counts(static_cast<std::size_t>(k), 0);
  for (idx_t l : labels) ++counts[static_cast<std::size_t>(l)];
  wgt_t maxc = 0;
  for (wgt_t c : counts) maxc = std::max(maxc, c);
  return static_cast<double>(maxc) * static_cast<double>(k) /
         static_cast<double>(labels.size());
}

/// Labels of the contact nodes under a per-node labeling.
std::vector<idx_t> gather_contact_labels(const Surface& surface,
                                         std::span<const idx_t> node_labels) {
  std::vector<idx_t> out;
  out.reserve(surface.contact_nodes.size());
  for (idx_t id : surface.contact_nodes) {
    out.push_back(node_labels[static_cast<std::size_t>(id)]);
  }
  return out;
}

}  // namespace

ExperimentResult run_contact_experiment(const ExperimentConfig& config,
                                        std::ostream* progress) {
  require(config.k >= 1, "run_contact_experiment: k must be >= 1");
  require(config.snapshot_stride >= 1,
          "run_contact_experiment: stride must be >= 1");
  // Baseline for the scheduler-activity delta reported in the result.
  const SchedulerStats sched_start = ThreadPool::global().scheduler_stats();
  const ImpactSim sim(config.sim);

  // Contact tolerance from the plate cell size (geometry-scale aware).
  const real_t cell =
      config.sim.plate_width / static_cast<real_t>(config.sim.plate_cells_xy);
  const real_t margin = static_cast<real_t>(config.margin_cell_fraction) * cell;

  // --- Build both partitioners on snapshot 0. ------------------------------
  // The pipeline owns the cross-snapshot state (snapshot workspace, warm
  // descriptor-induction orders, search scratch); every product is
  // bit-identical to cold recomputation.
  StepPipeline pipeline(sim);
  const ImpactSim::Snapshot& snap0 = pipeline.advance(0);

  McmlDtConfig dt_config;
  dt_config.k = config.k;
  dt_config.epsilon = config.epsilon;
  dt_config.contact_edge_weight = config.contact_edge_weight;
  dt_config.tree_friendly = config.tree_friendly;
  dt_config.initial = config.geometric_init ? InitialPartitioner::kGeometric
                                            : InitialPartitioner::kMultilevelGraph;
  dt_config.partitioner.seed = config.seed;
  dt_config.descriptor.gap_alpha = config.gap_alpha;
  McmlDtPartitioner mcml(snap0.mesh, snap0.surface, dt_config);

  MlRcbConfig rcb_config;
  rcb_config.k = config.k;
  rcb_config.epsilon = config.epsilon;
  rcb_config.partitioner.seed = config.seed + 1;
  MlRcbPartitioner mlrcb(snap0.mesh, snap0.surface, rcb_config);

  // Optional SPMD health probe: a real ContactPipeline driven over the same
  // snapshots, with the configured fault schedule and retry budget armed on
  // its exchange. The analytic metric sweep below is untouched by it.
  std::optional<FaultInjector> probe_injector;
  std::optional<ContactPipeline> probe;
  if (config.spmd_health_probe) {
    PipelineConfig probe_config;
    probe_config.decomposition = dt_config;
    probe_config.search.search_margin = margin;
    probe_config.search.contact_tolerance = margin;
    probe.emplace(snap0.mesh, snap0.surface, probe_config);
    probe->exchange().set_retry_policy(config.retry);
    if (config.fault.cell_fault_probability > 0) {
      probe_injector.emplace(config.fault);
      probe->exchange().set_fault_injector(&*probe_injector);
    }
  }

  // Optional rank-owned DistributedSim probe: the live-migration protocol
  // over the same snapshots, with the same fault schedule/retry budget.
  std::optional<FaultInjector> dist_injector;
  std::optional<DistributedSim> dist_probe;
  if (config.distributed_probe) {
    DistributedSimConfig dconfig;
    dconfig.decomposition = dt_config;
    dconfig.search.search_margin = margin;
    dconfig.search.contact_tolerance = margin;
    dconfig.repartition_period =
        config.policy == UpdatePolicy::kPeriodicRepartition
            ? config.repartition_period
            : 0;
    dconfig.repartition.epsilon = config.epsilon;
    dconfig.repartition.seed = config.seed;
    dist_probe.emplace(sim, dconfig);
    dist_probe->exchange().set_retry_policy(config.retry);
    if (config.fault.cell_fault_probability > 0) {
      dist_injector.emplace(config.fault);
      dist_probe->exchange().set_fault_injector(&*dist_injector);
    }
  }

  ExperimentResult result;
  result.k = config.k;

  std::vector<idx_t> prev_dt_partition = mcml.node_partition();

  // The nodal graph only changes when erosion removes elements, so cache it
  // across snapshots instead of rebuilding every step.
  NodalGraphCache graph_cache;

  for (idx_t s = 0; s < sim.num_snapshots(); s += config.snapshot_stride) {
    const ImpactSim::Snapshot& snap =
        (s == 0) ? pipeline.current() : pipeline.advance(s);
    const CsrGraph& graph = graph_cache.get(snap.mesh);

    SnapshotMetrics m;
    m.step = s;
    m.contact_nodes = snap.surface.num_contact_nodes();
    m.surface_faces = snap.surface.num_faces();

    // --- MCML+DT --------------------------------------------------------
    if (s > 0 && config.policy == UpdatePolicy::kPeriodicRepartition &&
        config.repartition_period > 0 &&
        (s / config.snapshot_stride) % config.repartition_period == 0) {
      // Repartition the evolved two-phase graph anchored to the current
      // partition, then reapply the tree-friendly adjustment.
      const CsrGraph two_phase = build_two_phase_graph(
          snap.mesh, snap.surface.is_contact_node, config.contact_edge_weight);
      RepartitionOptions ro;
      ro.k = config.k;
      ro.epsilon = config.epsilon;
      ro.seed = config.seed + static_cast<std::uint64_t>(s);
      std::vector<idx_t> new_part =
          repartition_graph(two_phase, mcml.node_partition(), ro);
      wgt_t moved = 0;
      for (std::size_t v = 0; v < new_part.size(); ++v) {
        if (new_part[v] != prev_dt_partition[v]) ++moved;
      }
      m.dt_repart_moved = moved;
      mcml.set_node_partition(std::move(new_part));
      prev_dt_partition = mcml.node_partition();
    }

    m.dt_fe_comm = total_comm_volume(graph, mcml.node_partition());
    const SubdomainDescriptors& descriptors = pipeline.build_descriptors(mcml);
    m.dt_tree_nodes = descriptors.num_tree_nodes();
    m.dt_remote = pipeline.search(mcml, margin).remote_sends;
    {
      const std::vector<idx_t> contact_labels =
          gather_contact_labels(snap.surface, mcml.node_partition());
      m.dt_imbalance_fe = load_imbalance(graph, mcml.node_partition(), config.k);
      m.dt_imbalance_contact = subset_imbalance(contact_labels, config.k);
    }

    // --- ML+RCB ----------------------------------------------------------
    m.rcb_fe_comm = total_comm_volume(graph, mlrcb.node_partition());
    if (s > 0) {
      m.rcb_upd = mlrcb.update_contact_partition(snap.mesh, snap.surface);
    }
    {
      const std::vector<idx_t> fe_labels =
          gather_contact_labels(snap.surface, mlrcb.node_partition());
      m.rcb_m2m = m2m_comm(fe_labels, mlrcb.contact_labels(), config.k).mismatched;
      m.rcb_imbalance_fe =
          load_imbalance(graph, mlrcb.node_partition(), config.k);
      m.rcb_imbalance_contact = subset_imbalance(mlrcb.contact_labels(), config.k);
    }
    {
      // The contact phase runs in the RCB decomposition: owners follow the
      // per-node RCB labels.
      std::vector<idx_t> rcb_node_labels(
          static_cast<std::size_t>(snap.mesh.num_nodes()), 0);
      const auto& ids = mlrcb.contact_ids();
      const auto& labels = mlrcb.contact_labels();
      for (std::size_t i = 0; i < ids.size(); ++i) {
        rcb_node_labels[static_cast<std::size_t>(ids[i])] = labels[i];
      }
      const std::vector<idx_t> owners =
          face_owners(snap.surface, rcb_node_labels, config.k);
      const BBoxFilter filter = mlrcb.make_bbox_filter(snap.mesh);
      m.rcb_remote =
          global_search_bbox(snap.mesh, snap.surface, owners, filter, margin)
              .remote_sends;
    }

    if (probe) {
      const PipelineStepReport pr = probe->run_step(snap.mesh, snap.surface);
      result.spmd_health += pr.health;
      ++result.spmd_probe_steps;
    }
    if (dist_probe) {
      const DistributedStepReport dr = dist_probe->run_step(s);
      result.distributed_health += dr.health;
      ++result.distributed_probe_steps;
      result.distributed_migration_steps += dr.migrated ? 1 : 0;
      result.distributed_moved_nodes += dr.repart_moved_nodes;
      result.distributed_moved_elements += dr.repart_moved_elements;
      result.distributed_migration_bytes += dr.migration_payload_bytes;
    }

    result.series.push_back(m);
    if (progress != nullptr) {
      *progress << "snapshot " << s << ": contact_nodes=" << m.contact_nodes
                << " dt{fe=" << m.dt_fe_comm << " nt=" << m.dt_tree_nodes
                << " rem=" << m.dt_remote << "} rcb{fe=" << m.rcb_fe_comm
                << " m2m=" << m.rcb_m2m << " upd=" << m.rcb_upd
                << " rem=" << m.rcb_remote << "}\n";
    }
  }

  // --- Averages. -----------------------------------------------------------
  result.snapshots = to_idx(result.series.size());
  const double ns = static_cast<double>(result.snapshots);
  for (const SnapshotMetrics& m : result.series) {
    result.mcml_dt.fe_comm += static_cast<double>(m.dt_fe_comm) / ns;
    result.mcml_dt.tree_nodes += static_cast<double>(m.dt_tree_nodes) / ns;
    result.mcml_dt.remote += static_cast<double>(m.dt_remote) / ns;
    result.mcml_dt.repart_moved += static_cast<double>(m.dt_repart_moved) / ns;
    result.mcml_dt.imbalance_fe += m.dt_imbalance_fe / ns;
    result.mcml_dt.imbalance_contact += m.dt_imbalance_contact / ns;
    result.ml_rcb.fe_comm += static_cast<double>(m.rcb_fe_comm) / ns;
    result.ml_rcb.m2m += static_cast<double>(m.rcb_m2m) / ns;
    result.ml_rcb.upd += static_cast<double>(m.rcb_upd) / ns;
    result.ml_rcb.remote += static_cast<double>(m.rcb_remote) / ns;
    result.ml_rcb.imbalance_fe += m.rcb_imbalance_fe / ns;
    result.ml_rcb.imbalance_contact += m.rcb_imbalance_contact / ns;
  }
  // Coupling-inclusive per-step communication (Section 5.2's comparison):
  // ML+RCB ships surface-node data to the contact decomposition and back
  // (2x M2MComm) plus the incremental-RCB redistribution; MCML+DT has no
  // coupling cost (one decomposition), only repartition movement if that
  // policy is active.
  result.mcml_dt.total_step_comm =
      result.mcml_dt.fe_comm + result.mcml_dt.repart_moved;
  result.ml_rcb.total_step_comm = result.ml_rcb.fe_comm +
                                  2.0 * result.ml_rcb.m2m + result.ml_rcb.upd;
  result.scheduler = ThreadPool::global().scheduler_stats();
  result.scheduler.items_executed -= sched_start.items_executed;
  result.scheduler.gang_slots_executed -= sched_start.gang_slots_executed;
  if (probe && progress != nullptr) {
    *progress << "spmd health over " << result.spmd_probe_steps
              << " probe steps: " << result.spmd_health.summary()
              << "\nscheduler: " << result.scheduler.items_executed
              << " arena items, " << result.scheduler.gang_slots_executed
              << " gang slots on " << result.scheduler.total_workers
              << " workers\n";
  }
  if (dist_probe && progress != nullptr) {
    *progress << "distributed probe over " << result.distributed_probe_steps
              << " steps: " << result.distributed_migration_steps
              << " migration steps moved " << result.distributed_moved_nodes
              << " nodes / " << result.distributed_moved_elements
              << " elements (" << result.distributed_migration_bytes
              << " bytes); " << result.distributed_health.summary() << "\n";
  }
  return result;
}

}  // namespace cpart
