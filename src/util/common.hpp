// Common fixed-width index types and small helpers shared by every module.
//
// The library follows the METIS convention of 32-bit vertex/element ids by
// default; all containers are indexed with `idx_t`. Weights are 64-bit so
// that partition-weight sums over multi-million-vertex graphs cannot
// overflow.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cpart {

using idx_t = std::int32_t;     // vertex / element / node index
using wgt_t = std::int64_t;     // vertex & edge weight (sums fit 64 bits)
using real_t = double;          // geometric coordinate

inline constexpr idx_t kInvalidIndex = -1;

/// Thrown on malformed user input (bad mesh file, inconsistent sizes, ...).
class InputError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws InputError with `msg` when `cond` is false. Used to validate
/// user-facing API inputs; internal invariants use assert().
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InputError(msg);
}

/// Integer ceiling division for non-negative operands.
template <typename T>
constexpr T ceil_div(T a, T b) {
  assert(b > 0 && a >= 0);
  return (a + b - 1) / b;
}

/// Checked narrowing from size_t-like values to idx_t.
template <typename T>
idx_t to_idx(T v) {
  assert(v >= 0);
  assert(static_cast<std::uint64_t>(v) <=
         static_cast<std::uint64_t>(std::numeric_limits<idx_t>::max()));
  return static_cast<idx_t>(v);
}

}  // namespace cpart
