// Plain-text and CSV table rendering for bench output.
//
// Benches print paper-style tables (aligned columns, header row) to stdout
// and optionally dump the same rows as CSV so results can be post-processed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cpart {

/// A simple row/column table. Cells are strings; numeric helpers format with
/// fixed precision. Rendering right-aligns numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_cell calls append to it.
  void begin_row();
  void add_cell(const std::string& value);
  void add_cell(long long value);
  void add_cell(double value, int precision = 2);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Cell accessor (row-major); throws InputError when out of range.
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders with aligned columns and a separator under the header.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our content).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cpart
