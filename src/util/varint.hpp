// LEB128 varints for the binary wire formats (tree_io binary codec, label
// batch blobs). Unsigned base-128, little-endian groups, at most 10 bytes
// for a 64-bit value. Decoding never trusts the input: overlong encodings
// beyond 10 bytes and truncated streams are reported through the caller's
// error sink rather than read past the end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace cpart {

inline void append_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// Number of bytes append_varint(value) emits.
inline std::size_t varint_size(std::uint64_t value) {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

/// Reads one varint from bytes[pos...]. On success advances pos and returns
/// true; on truncation or an encoding longer than 10 bytes returns false
/// with pos at the offending offset.
inline bool read_varint(std::string_view bytes, std::size_t& pos,
                        std::uint64_t& value) {
  value = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= bytes.size()) return false;
    const std::uint8_t b = static_cast<std::uint8_t>(bytes[pos]);
    ++pos;
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
  }
  return false;  // continuation bit still set after 10 bytes
}

}  // namespace cpart
