#include "util/rng.hpp"

namespace cpart {

std::vector<idx_t> random_permutation(idx_t n, Rng& rng) {
  std::vector<idx_t> perm(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  // Fisher–Yates.
  for (idx_t i = n - 1; i > 0; --i) {
    const idx_t j = rng.uniform_int(i + 1);
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

}  // namespace cpart
