// Minimal command-line flag parser for benches and examples.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags raise InputError so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cpart {

class Flags {
 public:
  /// Registers a flag with a default value and help text. Call before parse().
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);
  void define_bool(const std::string& name, bool default_value,
                   const std::string& help);

  /// Parses argv; throws InputError on unknown flags or missing values.
  /// Returns leftover positional arguments.
  std::vector<std::string> parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// One-line-per-flag usage text.
  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    bool is_bool = false;
  };
  const Spec& spec(const std::string& name) const;

  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace cpart
