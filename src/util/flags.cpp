#include "util/flags.hpp"

#include <cstdlib>
#include <sstream>

namespace cpart {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  specs_[name] = Spec{default_value, help, /*is_bool=*/false};
}

void Flags::define_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  specs_[name] = Spec{default_value ? "true" : "false", help, /*is_bool=*/true};
}

const Flags::Spec& Flags::spec(const std::string& name) const {
  auto it = specs_.find(name);
  require(it != specs_.end(), "unknown flag: --" + name);
  return it->second;
}

std::vector<std::string> Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    const Spec& s = spec(name);
    if (!value) {
      if (s.is_bool) {
        value = "true";
      } else {
        require(i + 1 < argc, "flag --" + name + " expects a value");
        value = argv[++i];
      }
    }
    values_[name] = *value;
  }
  return positional;
}

std::string Flags::get_string(const std::string& name) const {
  const Spec& s = spec(name);
  auto it = values_.find(name);
  return it != values_.end() ? it->second : s.default_value;
}

long Flags::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  char* end = nullptr;
  const long r = std::strtol(v.c_str(), &end, 10);
  require(end && *end == '\0' && !v.empty(),
          "flag --" + name + " expects an integer, got '" + v + "'");
  return r;
}

double Flags::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  require(end && *end == '\0' && !v.empty(),
          "flag --" + name + " expects a number, got '" + v + "'");
  return r;
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw InputError("flag --" + name + " expects a boolean, got '" + v + "'");
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, s] : specs_) {
    os << "  --" << name << " (default: " << s.default_value << ")  " << s.help
       << '\n';
  }
  return os.str();
}

}  // namespace cpart
