// Wall-clock timing helpers for benches and progress reporting.
#pragma once

#include <chrono>
#include <string>

namespace cpart {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across repeated start/stop scopes (e.g. per-phase cost
/// over many snapshots).
class AccumTimer {
 public:
  void start() { t_.reset(); }
  void stop() { total_ += t_.seconds(); ++count_; }
  double total_seconds() const { return total_; }
  long count() const { return count_; }
  double mean_seconds() const { return count_ ? total_ / count_ : 0.0; }

 private:
  Timer t_;
  double total_ = 0.0;
  long count_ = 0;
};

/// Formats a duration like "1.23 s" / "45.6 ms" for human-readable logs.
std::string format_duration(double seconds);

}  // namespace cpart
