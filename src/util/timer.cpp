#include "util/timer.hpp"

#include <cstdio>

namespace cpart {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace cpart
