// Deterministic, splittable pseudo-random number generator.
//
// All randomized stages of the library (matching visit order, initial
// partition seeds, tie breaking) draw from an explicitly seeded Rng so that
// every experiment is reproducible bit-for-bit. The generator is
// SplitMix64 — tiny state, high quality for the non-cryptographic uses here,
// and trivially splittable for per-thread streams.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace cpart {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  idx_t uniform_int(idx_t bound) {
    assert(bound > 0);
    return static_cast<idx_t>(next() % static_cast<std::uint64_t>(bound));
  }

  /// Uniform real in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Derive an independent stream (e.g. one per thread or per level).
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t state_;
};

/// Uniformly random permutation of {0, ..., n-1}.
std::vector<idx_t> random_permutation(idx_t n, Rng& rng);

}  // namespace cpart
