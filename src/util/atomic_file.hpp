// Durable file commits: temp file + fsync + atomic rename.
//
// Every on-disk artifact that must never be observed torn — checkpoint
// blobs and manifests, finalized cpmk meshes, bench JSON — goes through
// this layer. The protocol is the classic one: write the full payload to a
// temporary name in the same directory, fsync it, then rename() over the
// final name. POSIX rename is atomic within a filesystem, so a reader (or
// a crash) sees either the complete old file or the complete new one,
// never a prefix.
//
// All primitive operations go through a FileShim so fault-injection tests
// can fail them deterministically (short write, ENOSPC, torn rename, read
// bit-flips) without touching a real filesystem error path.
#pragma once

#include <string>

namespace cpart {

/// Primitive file operations behind the durable-commit protocol. The
/// default implementation (FileShim::real()) talks to the actual
/// filesystem; tests substitute a faulting subclass.
class FileShim {
 public:
  virtual ~FileShim() = default;

  /// Writes `bytes` to `path`, replacing any existing content. Returns
  /// false on any I/O failure (the file may then hold a prefix — exactly
  /// why callers write to a temp name first).
  virtual bool write_file(const std::string& path, const std::string& bytes);

  /// Flushes `path`'s data to stable storage (fsync). Returns false on
  /// failure.
  virtual bool sync_file(const std::string& path);

  /// Atomically renames `from` over `to`. Returns false on failure.
  virtual bool rename_file(const std::string& from, const std::string& to);

  /// Reads the whole of `path` into `out`. Returns false when the file
  /// cannot be opened or read.
  virtual bool read_file(const std::string& path, std::string& out);

  /// Removes `path`; best-effort, returns false when nothing was removed.
  virtual bool remove_file(const std::string& path);

  /// The real-filesystem shim (process-wide singleton).
  static FileShim& real();
};

/// Durably commits `bytes` to `path`: writes `path` + ".tmp", syncs it and
/// renames it over `path`. On failure the temp file is removed best-effort
/// and any previous content of `path` is left intact. Returns true on a
/// complete commit.
bool atomic_write_file(const std::string& path, const std::string& bytes,
                       FileShim& shim = FileShim::real());

/// Durably finalizes a file a caller already streamed to `temp_path`:
/// syncs it and renames it over `final_path`. For writers too large to
/// buffer in memory (ChunkedMeshWriter). Returns true on success; on
/// failure `temp_path` is left in place for inspection.
bool atomic_finalize_file(const std::string& temp_path,
                          const std::string& final_path,
                          FileShim& shim = FileShim::real());

}  // namespace cpart
