// Seeded stream derivation shared by every subsystem that splits one root
// seed into independent decision domains.
//
// Three layers used to re-derive child seeds ad hoc — the fault injector's
// decision tuples, the hierarchical partitioner's per-group seeds, and the
// repartitioner's group streams — each with its own private mix function.
// They now share this one: a SplitMix64-style fold of a 64-bit key into a
// 64-bit seed. The fold is a pure function of (seed, key), so derived
// schedules are independent of call order, thread count, and wall clock —
// the property every seeded subsystem here (chaos schedules, partition
// randomization, per-session streams) is built on.
//
// The derivation is hierarchical by construction: derive() of a derived
// seed opens a fresh sub-domain, so a service can hand every session a
// split of its root seed, each session can hand its fault injector a split
// of that, and no two streams ever correlate. SeedStream is the small
// value-type wrapper for exactly that chaining.
#pragma once

#include <cstdint>

namespace cpart {

/// Folds `key` into `seed` and finalizes with the SplitMix64 mixer.
/// Chain calls to fold a tuple coordinate by coordinate (the fault
/// injector's (superstep, attempt, channel, src, dst) schedule does).
constexpr std::uint64_t seed_mix(std::uint64_t seed, std::uint64_t key) {
  seed ^= key + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  std::uint64_t z = seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A seed plus the derivation operations over it: derive(key) yields the
/// child seed of a keyed sub-domain, split(key) the child stream rooted
/// there. Distinct keys give independent streams; the same (root, key)
/// always gives the same stream.
class SeedStream {
 public:
  explicit constexpr SeedStream(std::uint64_t root) : seed_(root) {}

  constexpr std::uint64_t seed() const { return seed_; }

  /// Seed of the sub-domain `key` — seed_mix(seed(), key).
  constexpr std::uint64_t derive(std::uint64_t key) const {
    return seed_mix(seed_, key);
  }

  /// Child stream rooted at derive(key).
  constexpr SeedStream split(std::uint64_t key) const {
    return SeedStream(derive(key));
  }

 private:
  std::uint64_t seed_;
};

}  // namespace cpart
