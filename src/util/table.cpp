#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/common.hpp"

namespace cpart {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::begin_row() { rows_.emplace_back(); }

void Table::add_cell(const std::string& value) {
  require(!rows_.empty(), "Table::add_cell before begin_row");
  rows_.back().push_back(value);
}

void Table::add_cell(long long value) { add_cell(std::to_string(value)); }

void Table::add_cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  add_cell(std::string(buf));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  require(row < rows_.size() && col < rows_[row].size(),
          "Table::cell out of range");
  return rows_[row][col];
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  bool digit = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit = true;
    } else if (s[i] != '.' && s[i] != '%') {
      return false;
    }
  }
  return digit;
}

}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      const std::size_t pad = width[c] - std::min(width[c], v.size());
      if (looks_numeric(v)) {
        os << "  " << std::string(pad, ' ') << v;
      } else {
        os << "  " << v << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace cpart
