#include "util/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define CPART_HAS_FSYNC 1
#else
#define CPART_HAS_FSYNC 0
#endif

namespace cpart {

bool FileShim::write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return static_cast<bool>(out);
}

bool FileShim::sync_file(const std::string& path) {
#if CPART_HAS_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  // No portable fsync: the buffered write already flushed, which is the
  // best durability this platform offers.
  std::ifstream probe(path, std::ios::binary);
  return static_cast<bool>(probe);
#endif
}

bool FileShim::rename_file(const std::string& from, const std::string& to) {
  return std::rename(from.c_str(), to.c_str()) == 0;
}

bool FileShim::read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  out = buf.str();
  return true;
}

bool FileShim::remove_file(const std::string& path) {
  return std::remove(path.c_str()) == 0;
}

FileShim& FileShim::real() {
  static FileShim shim;
  return shim;
}

bool atomic_write_file(const std::string& path, const std::string& bytes,
                       FileShim& shim) {
  const std::string temp = path + ".tmp";
  if (!shim.write_file(temp, bytes)) {
    shim.remove_file(temp);
    return false;
  }
  if (!atomic_finalize_file(temp, path, shim)) {
    shim.remove_file(temp);
    return false;
  }
  return true;
}

bool atomic_finalize_file(const std::string& temp_path,
                          const std::string& final_path, FileShim& shim) {
  if (!shim.sync_file(temp_path)) return false;
  return shim.rename_file(temp_path, final_path);
}

}  // namespace cpart
