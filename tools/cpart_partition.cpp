// Command-line graph partitioner (METIS-style): reads a METIS-format graph
// file, partitions it with the library's multilevel algorithms, reports
// quality, and writes the partition file.
//
//   cpart_partition <graph-file> --k 16 [--scheme rb|kway] [--eps 0.1]
//                   [--seed 1] [--groups 4] [--out graph.part.16]
#include <iostream>

#include "graph/graph_io.hpp"
#include "graph/graph_metrics.hpp"
#include "partition/partitioner.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace cpart;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("k", "8", "number of partitions");
  flags.define("eps", "0.10", "per-constraint imbalance tolerance");
  flags.define("seed", "1", "random seed");
  flags.define("scheme", "rb", "partitioning scheme: rb | kway");
  flags.define("groups", "0",
               "rank groups for two-level hierarchical partitioning "
               "(>= 2 enables)");
  flags.define("out", "", "partition output file (default <graph>.part.<k>)");
  try {
    const auto positional = flags.parse(argc, argv);
    require(positional.size() == 1,
            "expected exactly one positional argument: the graph file");
    const std::string graph_path = positional[0];
    const idx_t k = static_cast<idx_t>(flags.get_int("k"));

    const CsrGraph g = read_metis_graph_file(graph_path);
    std::cout << "graph: " << g.num_vertices() << " vertices, "
              << g.num_edges() << " edges, " << g.ncon() << " constraint(s)\n";

    const std::string scheme = flags.get_string("scheme");
    require(scheme == "rb" || scheme == "kway",
            "--scheme must be 'rb' or 'kway'");
    PartitionerConfig pc;
    pc.scheme = scheme == "kway" ? PartitionScheme::kDirectKway
                                 : PartitionScheme::kRecursiveBisection;
    pc.options.k = k;
    pc.options.epsilon = flags.get_double("eps");
    pc.options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    pc.hierarchy.groups = static_cast<idx_t>(flags.get_int("groups"));
    const Partitioner partitioner(pc);

    Timer timer;
    HierarchyStats hs;
    const std::vector<idx_t> part = partitioner.partition(g, &hs);
    std::cout << "partitioned in " << format_duration(timer.seconds())
              << " (" << scheme;
    if (partitioner.hierarchical()) {
      std::cout << ", " << partitioner.groups() << " groups";
    }
    std::cout << ")\n";
    if (partitioner.hierarchical()) {
      std::cout << "group-cut:   " << hs.group_cut << " (proxy "
                << hs.proxy_vertices << " vertices, balance "
                << hs.group_balance << ")\n";
    }
    std::cout << "edge-cut:    " << edge_cut(g, part) << '\n';
    std::cout << "comm-volume: " << total_comm_volume(g, part) << '\n';
    for (idx_t c = 0; c < g.ncon(); ++c) {
      std::cout << "imbalance[" << c << "]: " << load_imbalance(g, part, k, c)
                << '\n';
    }

    std::string out = flags.get_string("out");
    if (out.empty()) out = graph_path + ".part." + std::to_string(k);
    write_partition_file(out, part);
    std::cout << "partition written to " << out << '\n';
    return 0;
  } catch (const InputError& e) {
    std::cerr << "error: " << e.what() << "\n"
              << flags.usage("cpart_partition <graph-file>");
    return 1;
  }
}
