// Mesh inspector: reads a cpartmesh file, reports its statistics (surface,
// graphs, bounds), optionally partitions its nodal graph and exports a VTK
// file with partition / contact fields for visualization.
//
//   cpart_meshinfo <mesh-file> [--k 8] [--vtk out.vtk] [--graph out.graph]
#include <iostream>

#include "graph/graph_io.hpp"
#include "graph/graph_metrics.hpp"
#include "mesh/mesh_graphs.hpp"
#include "mesh/mesh_io.hpp"
#include "mesh/surface.hpp"
#include "mesh/vtk_io.hpp"
#include "partition/partition.hpp"
#include "util/flags.hpp"

using namespace cpart;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("k", "0", "partition the nodal graph into k parts (0: skip)");
  flags.define("vtk", "", "write a VTK file with contact/partition fields");
  flags.define("graph", "", "export the nodal graph in METIS format");
  try {
    const auto positional = flags.parse(argc, argv);
    require(positional.size() == 1,
            "expected exactly one positional argument: the mesh file");
    const Mesh mesh = read_mesh_file(positional[0]);
    const Surface surface = extract_surface(mesh);
    const BBox bounds = mesh.bounds();

    std::cout << "element type:  " << element_type_name(mesh.element_type())
              << " (" << mesh.dim() << "D)\n";
    std::cout << "nodes:         " << mesh.num_nodes() << '\n';
    std::cout << "elements:      " << mesh.num_elements() << '\n';
    std::cout << "bounds:        [" << bounds.lo.x << ", " << bounds.lo.y
              << ", " << bounds.lo.z << "] .. [" << bounds.hi.x << ", "
              << bounds.hi.y << ", " << bounds.hi.z << "]\n";
    std::cout << "surface faces: " << surface.num_faces() << '\n';
    std::cout << "contact nodes: " << surface.num_contact_nodes() << '\n';

    const CsrGraph nodal = nodal_graph(mesh);
    const CsrGraph dual = dual_graph(mesh);
    std::cout << "nodal graph:   " << nodal.num_vertices() << " vertices, "
              << nodal.num_edges() << " edges\n";
    std::cout << "dual graph:    " << dual.num_vertices() << " vertices, "
              << dual.num_edges() << " edges\n";

    std::vector<idx_t> part;
    const idx_t k = static_cast<idx_t>(flags.get_int("k"));
    if (k > 1) {
      PartitionOptions opts;
      opts.k = k;
      part = partition_graph(nodal, opts);
      std::cout << "k=" << k << " partition: edge-cut " << edge_cut(nodal, part)
                << ", comm-volume " << total_comm_volume(nodal, part)
                << ", imbalance " << load_imbalance(nodal, part, k) << '\n';
    }

    const std::string vtk_path = flags.get_string("vtk");
    if (!vtk_path.empty()) {
      std::vector<idx_t> contact(surface.is_contact_node.begin(),
                                 surface.is_contact_node.end());
      std::vector<VtkScalarField> fields{{"contact", contact}};
      if (!part.empty()) fields.push_back({"partition", part});
      write_vtk_file(vtk_path, mesh, fields);
      std::cout << "VTK written to " << vtk_path << '\n';
    }
    const std::string graph_path = flags.get_string("graph");
    if (!graph_path.empty()) {
      write_metis_graph_file(graph_path, nodal);
      std::cout << "nodal graph written to " << graph_path << '\n';
    }
    return 0;
  } catch (const InputError& e) {
    std::cerr << "error: " << e.what() << "\n"
              << flags.usage("cpart_meshinfo <mesh-file>");
    return 1;
  }
}
