// Tests for core/: the two-phase graph model, the MCML+DT pipeline
// (P -> P' -> P''), descriptor rebuilds, the ML+RCB baseline, the a-priori
// extension, and the experiment driver.
#include <gtest/gtest.h>

#include "core/apriori.hpp"
#include "core/experiment.hpp"
#include "core/mcml_dt.hpp"
#include "core/ml_rcb.hpp"
#include "graph/graph_metrics.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh_graphs.hpp"
#include "sim/impact_sim.hpp"

namespace cpart {
namespace {

ImpactSimConfig tiny_sim() {
  ImpactSimConfig c;
  c.plate_cells_xy = 12;
  c.plate_cells_z = 2;
  c.proj_cells_diameter = 6;
  c.proj_cells_z = 6;
  c.num_snapshots = 6;
  return c;
}

TEST(TwoPhaseGraph, WeightsFollowContactStructure) {
  const Mesh m = make_hex_box(3, 3, 3, Vec3{0, 0, 0}, Vec3{1, 1, 1});
  const Surface s = extract_surface(m);
  const CsrGraph g = build_two_phase_graph(m, s.is_contact_node, 5);
  EXPECT_EQ(g.ncon(), 2);
  EXPECT_EQ(g.num_vertices(), m.num_nodes());
  // Constraint 0 counts all nodes; constraint 1 counts contact nodes.
  EXPECT_EQ(g.total_vertex_weight(0), m.num_nodes());
  EXPECT_EQ(g.total_vertex_weight(1), s.num_contact_nodes());
  // Edges between two boundary (contact) nodes weigh 5; check a corner
  // node: all its neighbours are boundary nodes.
  idx_t corner = kInvalidIndex;
  for (idx_t v = 0; v < m.num_nodes(); ++v) {
    const Vec3 p = m.node(v);
    if (p.x == 0 && p.y == 0 && p.z == 0) corner = v;
  }
  ASSERT_NE(corner, kInvalidIndex);
  const auto wgts = g.edge_weights(corner);
  for (wgt_t w : wgts) EXPECT_EQ(w, 5);
  // An interior-interior edge weighs 1: the centre node of the 4x4x4 grid
  // has at least one interior neighbour.
  idx_t interior = kInvalidIndex;
  for (idx_t v = 0; v < m.num_nodes(); ++v) {
    if (!s.is_contact_node[static_cast<std::size_t>(v)]) interior = v;
  }
  ASSERT_NE(interior, kInvalidIndex);
  bool found_unit = false;
  auto nbrs = g.neighbors(interior);
  for (idx_t j = 0; j < to_idx(nbrs.size()); ++j) {
    if (!s.is_contact_node[static_cast<std::size_t>(
            nbrs[static_cast<std::size_t>(j)])]) {
      EXPECT_EQ(g.edge_weight(interior, j), 1);
      found_unit = true;
    }
  }
  EXPECT_TRUE(found_unit);
}

TEST(McmlDt, PartitionBalancedOnBothPhases) {
  const ImpactSim sim(tiny_sim());
  const auto snap = sim.snapshot(0);
  McmlDtConfig config;
  config.k = 6;
  config.epsilon = 0.10;
  const McmlDtPartitioner p(snap.mesh, snap.surface, config);
  ASSERT_TRUE(is_valid_partition(p.node_partition(), 6));
  const CsrGraph g = build_two_phase_graph(
      snap.mesh, snap.surface.is_contact_node, config.contact_edge_weight);
  // Both constraints within tolerance (small slack for the region step).
  EXPECT_LE(load_imbalance(g, p.node_partition(), 6, 0), 1.13);
  EXPECT_LE(load_imbalance(g, p.node_partition(), 6, 1), 1.13);
}

TEST(McmlDt, TreeFriendlyReducesDescriptorSize) {
  const ImpactSim sim(tiny_sim());
  const auto snap = sim.snapshot(0);
  McmlDtConfig plain;
  plain.k = 6;
  plain.tree_friendly = false;
  McmlDtConfig friendly;
  friendly.k = 6;
  friendly.tree_friendly = true;
  const McmlDtPartitioner p_plain(snap.mesh, snap.surface, plain);
  const McmlDtPartitioner p_friendly(snap.mesh, snap.surface, friendly);
  const auto d_plain = p_plain.build_descriptors(snap.mesh, snap.surface);
  const auto d_friendly = p_friendly.build_descriptors(snap.mesh, snap.surface);
  // The adjusted partition has axes-parallel boundaries: its descriptor
  // tree must not be larger (usually much smaller).
  EXPECT_LE(d_friendly.num_tree_nodes(), d_plain.num_tree_nodes());
  EXPECT_GT(p_friendly.stats().num_regions, 0);
}

TEST(McmlDt, DescriptorsCoverEveryPartitionWithContactPoints) {
  const ImpactSim sim(tiny_sim());
  const auto snap = sim.snapshot(0);
  McmlDtConfig config;
  config.k = 4;
  const McmlDtPartitioner p(snap.mesh, snap.surface, config);
  const auto desc = p.build_descriptors(snap.mesh, snap.surface);
  // Each partition owning contact points has at least one region.
  std::vector<bool> has_points(4, false);
  for (idx_t id : snap.surface.contact_nodes) {
    has_points[static_cast<std::size_t>(
        p.node_partition()[static_cast<std::size_t>(id)])] = true;
  }
  for (idx_t q = 0; q < 4; ++q) {
    if (has_points[static_cast<std::size_t>(q)]) {
      EXPECT_GT(desc.num_regions(q), 0) << "partition " << q;
    }
  }
}

TEST(McmlDt, DescriptorsTrackMovedContactPoints) {
  const ImpactSim sim(tiny_sim());
  const auto snap0 = sim.snapshot(0);
  McmlDtConfig config;
  config.k = 4;
  const McmlDtPartitioner p(snap0.mesh, snap0.surface, config);
  const auto d0 = p.build_descriptors(snap0.mesh, snap0.surface);
  const auto snap_late = sim.snapshot(5);
  const auto d1 = p.build_descriptors(snap_late.mesh, snap_late.surface);
  // Same partition, different geometry: the descriptors must differ.
  EXPECT_NE(d0.num_tree_nodes() * 1000 + d0.num_leaves(),
            d1.num_tree_nodes() * 1000 + d1.num_leaves());
}

TEST(McmlDt, SetNodePartitionValidates) {
  const ImpactSim sim(tiny_sim());
  const auto snap = sim.snapshot(0);
  McmlDtConfig config;
  config.k = 3;
  McmlDtPartitioner p(snap.mesh, snap.surface, config);
  std::vector<idx_t> bad(p.node_partition().size(), 7);
  EXPECT_THROW(p.set_node_partition(bad), InputError);
  std::vector<idx_t> wrong_size{0, 1};
  EXPECT_THROW(p.set_node_partition(wrong_size), InputError);
  std::vector<idx_t> ok(p.node_partition().size(), 2);
  p.set_node_partition(ok);
  EXPECT_EQ(p.node_partition()[0], 2);
}

TEST(MlRcb, ContactLabelsAlignWithSurface) {
  const ImpactSim sim(tiny_sim());
  const auto snap = sim.snapshot(0);
  MlRcbConfig config;
  config.k = 5;
  const MlRcbPartitioner p(snap.mesh, snap.surface, config);
  EXPECT_EQ(p.contact_ids().size(), snap.surface.contact_nodes.size());
  EXPECT_EQ(p.contact_labels().size(), p.contact_ids().size());
  for (idx_t l : p.contact_labels()) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 5);
  }
  ASSERT_TRUE(is_valid_partition(p.node_partition(), 5));
}

TEST(MlRcb, UpdateReportsBoundedMovement) {
  const ImpactSim sim(tiny_sim());
  const auto snap0 = sim.snapshot(0);
  MlRcbConfig config;
  config.k = 4;
  MlRcbPartitioner p(snap0.mesh, snap0.surface, config);
  const auto snap1 = sim.snapshot(1);
  const wgt_t moved = p.update_contact_partition(snap1.mesh, snap1.surface);
  // One small time step: few points change RCB subdomain.
  EXPECT_LT(moved, to_idx(p.contact_ids().size()) / 2);
  EXPECT_EQ(p.contact_ids().size(), snap1.surface.contact_nodes.size());
}

TEST(Apriori, PredictionFindsCrossBodyPairsOnly) {
  const ImpactSim sim(tiny_sim());
  const auto snap = sim.snapshot(2);  // projectile near the upper plate
  std::vector<int> body(static_cast<std::size_t>(snap.mesh.num_nodes()));
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<int>(sim.node_body()[i]);
  }
  const ContactPairs pairs =
      predict_contact_pairs(snap.mesh, snap.surface, body, 0.5);
  EXPECT_GT(pairs.size(), 0u);
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(body[static_cast<std::size_t>(a)],
              body[static_cast<std::size_t>(b)]);
    EXPECT_LE(norm(snap.mesh.node(a) - snap.mesh.node(b)), 0.5 + 1e-9);
  }
}

TEST(Apriori, PartitionColocatesPredictedPairs) {
  const ImpactSim sim(tiny_sim());
  const auto snap = sim.snapshot(2);
  std::vector<int> body(static_cast<std::size_t>(snap.mesh.num_nodes()));
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<int>(sim.node_body()[i]);
  }
  const ContactPairs pairs =
      predict_contact_pairs(snap.mesh, snap.surface, body, 0.6);
  ASSERT_GT(pairs.size(), 10u);
  AprioriConfig config;
  config.k = 4;
  config.contact_pair_weight = 20;
  const auto part =
      apriori_contact_partition(snap.mesh, snap.surface, pairs, config);
  const double with_pairs = colocated_pair_fraction(pairs, part);
  // Baseline: same partitioner without the artificial pair edges.
  const auto base =
      apriori_contact_partition(snap.mesh, snap.surface, {}, config);
  const double without = colocated_pair_fraction(pairs, base);
  EXPECT_GE(with_pairs + 0.05, without);  // never meaningfully worse
  EXPECT_GT(with_pairs, 0.5);             // most pairs co-located
}

TEST(Experiment, TinyRunProducesConsistentMetrics) {
  ExperimentConfig config;
  config.sim = tiny_sim();
  config.k = 4;
  config.snapshot_stride = 2;
  const ExperimentResult r = run_contact_experiment(config);
  EXPECT_EQ(r.k, 4);
  EXPECT_EQ(r.snapshots, 3);  // steps 0, 2, 4
  ASSERT_EQ(r.series.size(), 3u);
  // Structural invariants.
  for (const SnapshotMetrics& m : r.series) {
    EXPECT_GT(m.contact_nodes, 0);
    EXPECT_GT(m.dt_tree_nodes, 0);
    EXPECT_GE(m.dt_fe_comm, 0);
    EXPECT_GE(m.rcb_m2m, 0);
    EXPECT_LE(m.rcb_m2m, m.contact_nodes);
    EXPECT_GE(m.dt_imbalance_fe, 1.0);
    EXPECT_GE(m.rcb_imbalance_contact, 1.0);
  }
  EXPECT_EQ(r.series[0].rcb_upd, 0);  // no update on the first snapshot
  // MCML+DT has no decomposition-coupling cost.
  EXPECT_DOUBLE_EQ(r.mcml_dt.total_step_comm, r.mcml_dt.fe_comm);
  EXPECT_GT(r.ml_rcb.total_step_comm, r.ml_rcb.fe_comm);
}

TEST(Experiment, RepartitionPolicyMovesNodes) {
  ExperimentConfig config;
  config.sim = tiny_sim();
  config.k = 4;
  config.policy = UpdatePolicy::kPeriodicRepartition;
  config.repartition_period = 2;
  const ExperimentResult r = run_contact_experiment(config);
  // At least one repartition event happened and its movement was recorded
  // (possibly zero if the partition stayed optimal, but the field exists).
  EXPECT_GE(r.mcml_dt.repart_moved, 0.0);
  EXPECT_EQ(r.snapshots, 6);
}

TEST(Experiment, DistributedProbeAggregatesMigration) {
  ExperimentConfig config;
  config.sim = tiny_sim();
  config.k = 4;
  config.policy = UpdatePolicy::kPeriodicRepartition;
  config.repartition_period = 2;
  config.distributed_probe = true;
  const ExperimentResult r = run_contact_experiment(config);
  EXPECT_EQ(r.distributed_probe_steps, r.snapshots);
  EXPECT_GT(r.distributed_migration_steps, 0);
  EXPECT_TRUE(r.distributed_health.clean())
      << r.distributed_health.summary();
  // Moves may legitimately be zero on a tiny mesh, but the accounting must
  // be self-consistent: bytes are charged iff something moved.
  EXPECT_EQ(r.distributed_moved_nodes + r.distributed_moved_elements > 0,
            r.distributed_migration_bytes > 0);
  // Off by default: the probe aggregates stay zero.
  config.distributed_probe = false;
  const ExperimentResult off = run_contact_experiment(config);
  EXPECT_EQ(off.distributed_probe_steps, 0);
  EXPECT_EQ(off.distributed_health, PipelineHealth{});
}

TEST(Experiment, RejectsBadConfig) {
  ExperimentConfig config;
  config.sim = tiny_sim();
  config.k = 0;
  EXPECT_THROW(run_contact_experiment(config), InputError);
  config.k = 2;
  config.snapshot_stride = 0;
  EXPECT_THROW(run_contact_experiment(config), InputError);
}

}  // namespace
}  // namespace cpart
