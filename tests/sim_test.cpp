// Tests for sim/: the synthetic impact sequence — determinism, stable node
// ids, monotone erosion, moving contact surface, configuration scaling.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/impact_sim.hpp"

namespace cpart {
namespace {

ImpactSimConfig tiny_config() {
  ImpactSimConfig c;
  c.plate_cells_xy = 12;
  c.plate_cells_z = 2;
  c.proj_cells_diameter = 6;
  c.proj_cells_z = 6;
  c.num_snapshots = 10;
  return c;
}

TEST(ImpactSim, InitialMeshHasThreeBodies) {
  const ImpactSim sim(tiny_config());
  const Mesh& m = sim.initial_mesh();
  EXPECT_GT(m.num_nodes(), 0);
  std::set<Body> bodies(sim.node_body().begin(), sim.node_body().end());
  EXPECT_EQ(bodies.size(), 3u);
  EXPECT_EQ(sim.element_body().size(),
            static_cast<std::size_t>(m.num_elements()));
  EXPECT_EQ(sim.node_body().size(), static_cast<std::size_t>(m.num_nodes()));
}

TEST(ImpactSim, NoseDescendsMonotonically) {
  const ImpactSim sim(tiny_config());
  for (idx_t s = 1; s < sim.num_snapshots(); ++s) {
    EXPECT_LT(sim.nose_z(s), sim.nose_z(s - 1));
  }
  // Starts above the upper plate, ends below the lower plate.
  EXPECT_GT(sim.nose_z(0), 0);
  EXPECT_LT(sim.nose_z(sim.num_snapshots() - 1), -2.0);
}

TEST(ImpactSim, SnapshotsAreDeterministic) {
  const ImpactSim sim(tiny_config());
  const auto a = sim.snapshot(5);
  const auto b = sim.snapshot(5);
  EXPECT_EQ(a.mesh.num_elements(), b.mesh.num_elements());
  for (idx_t i = 0; i < a.mesh.num_nodes(); ++i) {
    EXPECT_EQ(a.mesh.node(i), b.mesh.node(i));
  }
}

TEST(ImpactSim, NodeIdsStableAcrossSnapshots) {
  const ImpactSim sim(tiny_config());
  const auto first = sim.snapshot(0);
  const auto last = sim.snapshot(sim.num_snapshots() - 1);
  // Node count never changes; only elements disappear.
  EXPECT_EQ(first.mesh.num_nodes(), last.mesh.num_nodes());
  EXPECT_EQ(first.mesh.num_nodes(), sim.initial_mesh().num_nodes());
}

TEST(ImpactSim, ErosionMonotonicallyIncreases) {
  const ImpactSim sim(tiny_config());
  idx_t prev = 0;
  for (idx_t s = 0; s < sim.num_snapshots(); ++s) {
    idx_t eroded = 0;
    sim.snapshot_mesh(s, &eroded);
    EXPECT_GE(eroded, prev);
    prev = eroded;
  }
  EXPECT_GT(prev, 0);  // the projectile does punch through
}

TEST(ImpactSim, ProjectileElementsNeverErode) {
  ImpactSimConfig c = tiny_config();
  const ImpactSim sim(c);
  idx_t proj_elems = 0;
  for (Body b : sim.element_body()) proj_elems += b == Body::kProjectile;
  idx_t eroded = 0;
  const Mesh final = sim.snapshot_mesh(sim.num_snapshots() - 1, &eroded);
  // All remaining elements = initial - eroded; projectile never shrinks.
  EXPECT_EQ(final.num_elements(), sim.initial_mesh().num_elements() - eroded);
  EXPECT_GE(final.num_elements(), proj_elems);
}

TEST(ImpactSim, ContactSurfaceEvolvesAndStaysInZone) {
  ImpactSimConfig c = tiny_config();
  c.contact_zone_factor = 2.0;
  const ImpactSim sim(c);
  const auto early = sim.snapshot(0);
  const auto late = sim.snapshot(sim.num_snapshots() - 1);
  EXPECT_GT(early.surface.num_contact_nodes(), 0);
  EXPECT_GT(late.surface.num_contact_nodes(), 0);
  // The node sets differ (erosion exposes new surface).
  EXPECT_NE(early.surface.contact_nodes, late.surface.contact_nodes);
}

TEST(ImpactSim, ZoneFactorControlsContactCount) {
  ImpactSimConfig narrow = tiny_config();
  narrow.contact_zone_factor = 1.5;
  ImpactSimConfig wide = tiny_config();
  wide.contact_zone_factor = -1;  // everything
  const auto n = ImpactSim(narrow).snapshot(0);
  const auto w = ImpactSim(wide).snapshot(0);
  EXPECT_LT(n.surface.num_contact_nodes(), w.surface.num_contact_nodes());
}

TEST(ImpactSim, PlateNodesDeformNearImpactOnly) {
  const ImpactSim sim(tiny_config());
  const Mesh mid = sim.snapshot_mesh(sim.num_snapshots() / 2);
  const Mesh& init = sim.initial_mesh();
  real_t max_near = 0, max_far = 0;
  for (idx_t v = 0; v < init.num_nodes(); ++v) {
    if (sim.node_body()[static_cast<std::size_t>(v)] == Body::kProjectile) {
      continue;
    }
    const Vec3 p0 = init.node(v);
    const real_t moved = norm(mid.node(v) - p0);
    const real_t rho = std::hypot(p0.x, p0.y);
    if (rho < 2.0) {
      max_near = std::max(max_near, moved);
    } else if (rho > 4.0) {
      max_far = std::max(max_far, moved);
    }
  }
  EXPECT_GT(max_near, 0.05);  // crater forms
  EXPECT_LT(max_far, 0.05);   // far field essentially rigid
}

TEST(ImpactSim, ScaleResolutionGrowsMesh) {
  ImpactSimConfig small = tiny_config();
  ImpactSimConfig big = tiny_config();
  big.scale_resolution(8.0);  // 2x linear
  EXPECT_EQ(big.plate_cells_xy, 2 * small.plate_cells_xy);
  const idx_t n_small = ImpactSim(small).initial_mesh().num_nodes();
  const idx_t n_big = ImpactSim(big).initial_mesh().num_nodes();
  EXPECT_GT(n_big, 4 * n_small);
}

TEST(ImpactSim, ObliqueImpactDriftsCrater) {
  ImpactSimConfig straight = tiny_config();
  ImpactSimConfig oblique = tiny_config();
  oblique.obliquity = 0.4;
  const ImpactSim sim_s(straight);
  const ImpactSim sim_o(oblique);
  // Both fully perforate; the oblique channel erodes at least as many
  // elements (it sweeps a longer path through each plate).
  idx_t eroded_s = 0, eroded_o = 0;
  sim_s.snapshot_mesh(sim_s.num_snapshots() - 1, &eroded_s);
  sim_o.snapshot_mesh(sim_o.num_snapshots() - 1, &eroded_o);
  EXPECT_GT(eroded_s, 0);
  EXPECT_GE(eroded_o, eroded_s);
  // The projectile ends displaced in +x for the oblique run.
  const Mesh end_s = sim_s.snapshot_mesh(sim_s.num_snapshots() - 1);
  const Mesh end_o = sim_o.snapshot_mesh(sim_o.num_snapshots() - 1);
  real_t mean_sx = 0, mean_ox = 0;
  idx_t count = 0;
  for (idx_t v = 0; v < end_s.num_nodes(); ++v) {
    if (sim_s.node_body()[static_cast<std::size_t>(v)] == Body::kProjectile) {
      mean_sx += end_s.node(v).x;
      mean_ox += end_o.node(v).x;
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(mean_ox / count, mean_sx / count + 0.5);
}

TEST(ImpactSim, ObliqueContactZoneFollowsAxis) {
  ImpactSimConfig c = tiny_config();
  c.obliquity = 0.5;
  c.contact_zone_factor = 2.0;
  const ImpactSim sim(c);
  const auto snap = sim.snapshot(sim.num_snapshots() - 1);
  EXPECT_GT(snap.surface.num_contact_nodes(), 0);
}

TEST(ImpactSim, StepOutOfRangeThrows) {
  const ImpactSim sim(tiny_config());
  EXPECT_THROW(sim.nose_z(-1), InputError);
  EXPECT_THROW(sim.nose_z(sim.num_snapshots()), InputError);
}

}  // namespace
}  // namespace cpart
