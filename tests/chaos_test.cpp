// Chaos tests for the fault-injected exchange transport: every fault kind
// must be detected by the cell framing/checksum, retries must recover from
// transient corruption with bit-identical results, exhausted budgets must
// degrade to the centralized reference path instead of crashing, and the
// health counters must match the injected schedule exactly.
//
// The soak seed can be swept from CI via the CPART_CHAOS_SEED environment
// variable (default 1); the fault schedule is a pure function of the seed,
// so every failure reproduces locally with the same value.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/exchange.hpp"
#include "runtime/fault_injector.hpp"
#include "sim/impact_sim.hpp"

namespace cpart {
namespace {

std::uint64_t chaos_seed() {
  const char* env = std::getenv("CPART_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
}

void expect_events_identical(const std::vector<ContactEvent>& got,
                             const std::vector<ContactEvent>& want,
                             const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << what << " event " << i;
    EXPECT_EQ(got[i].face, want[i].face) << what << " event " << i;
    // Exact double comparison — bit-identity, not tolerance.
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " event " << i;
    EXPECT_EQ(got[i].signed_distance, want[i].signed_distance)
        << what << " event " << i;
  }
}

/// A FaultConfig that fires on every cell with exactly one kind.
FaultConfig only_kind(FaultKind kind, std::uint64_t seed = 3) {
  FaultConfig fc;
  fc.seed = seed;
  fc.cell_fault_probability = 1.0;
  fc.kind_weights = {};
  fc.kind_weights[static_cast<std::size_t>(static_cast<int>(kind))] = 1.0;
  return fc;
}

std::vector<HaloNodeMsg> halo_inbox_payload(idx_t base) {
  std::vector<HaloNodeMsg> items;
  for (idx_t i = 0; i < 3; ++i) {
    items.push_back({base + i, Vec3{0.5 * static_cast<real_t>(i),
                                    1.25, -2.0 * static_cast<real_t>(base)}});
  }
  return items;
}

// ---------------------------------------------------------------------------
// Injection + detection unit tests
// ---------------------------------------------------------------------------

TEST(FaultInjector, ScheduleIsDeterministic) {
  const FaultConfig fc{.seed = 42, .cell_fault_probability = 0.5};
  FaultInjector a(fc);
  FaultInjector b(fc);
  for (std::uint64_t step = 0; step < 32; ++step) {
    std::vector<HaloNodeMsg> wa = halo_inbox_payload(7);
    std::vector<HaloNodeMsg> wb = halo_inbox_payload(7);
    const bool fa = a.maybe_corrupt(ChannelId::kHalo, step, 0, 0, 1, wa);
    const bool fb = b.maybe_corrupt(ChannelId::kHalo, step, 0, 0, 1, wb);
    EXPECT_EQ(fa, fb) << "superstep " << step;
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wire_hash(wa[i]), wire_hash(wb[i]));
    }
  }
  EXPECT_EQ(a.stats(), b.stats());
  EXPECT_GT(a.stats().faults_injected, 0);
  EXPECT_LT(a.stats().faults_injected, 32);  // p=0.5 must also skip some
}

TEST(Exchange, EveryFaultKindIsDetectedAndClassified) {
  for (int kind = 0; kind < kNumFaultKinds; ++kind) {
    FaultInjector injector(only_kind(static_cast<FaultKind>(kind)));
    Exchange ex(3);
    ex.set_fault_injector(&injector);
    ex.set_retry_policy({.max_attempts = 1});
    for (const HaloNodeMsg& m : halo_inbox_payload(0)) ex.halo().send(0, 1, m);
    for (const HaloNodeMsg& m : halo_inbox_payload(9)) ex.halo().send(2, 1, m);
    EXPECT_THROW(ex.deliver(), TransportError)
        << fault_kind_name(static_cast<FaultKind>(kind));
    const PipelineHealth h = ex.take_health();
    EXPECT_EQ(h.corrupt_cells, injector.stats().faults_injected);
    EXPECT_EQ(h.corrupt_cells,
              h.checksum_failures + h.count_mismatches);
    EXPECT_EQ(h.exhausted_deliveries, 1);
    EXPECT_EQ(h.channel(ChannelId::kHalo).corrupt_cells, h.corrupt_cells);
    switch (static_cast<FaultKind>(kind)) {
      case FaultKind::kDrop:
      case FaultKind::kDuplicate:
      case FaultKind::kTruncate:
        EXPECT_EQ(h.count_mismatches, h.corrupt_cells)
            << fault_kind_name(static_cast<FaultKind>(kind));
        break;
      case FaultKind::kBitFlip:
      case FaultKind::kReorder:
        EXPECT_EQ(h.checksum_failures, h.corrupt_cells)
            << fault_kind_name(static_cast<FaultKind>(kind));
        break;
    }
    // The exhausted delivery aborted the step: inboxes are empty and the
    // next (fault-free) delivery starts clean.
    EXPECT_TRUE(ex.halo().inbox(1).empty());
    ex.set_fault_injector(nullptr);
    for (const HaloNodeMsg& m : halo_inbox_payload(0)) ex.halo().send(0, 1, m);
    ex.deliver();
    EXPECT_EQ(ex.halo().inbox(1).size(), 3u);
    EXPECT_TRUE(ex.take_health().clean());
  }
}

TEST(Exchange, PayloadTruncationOnDescriptorWireIsDetected) {
  FaultInjector injector(only_kind(FaultKind::kTruncate));
  Exchange ex(2);
  ex.set_fault_injector(&injector);
  ex.set_retry_policy({.max_attempts = 1});
  ex.descriptors().send(0, 1, DescriptorTreeMsg{"cparttree 1\n0 -1\n"});
  EXPECT_THROW(ex.deliver(), TransportError);
  const PipelineHealth h = ex.take_health();
  // A variable-length message truncates its own payload: same message
  // count, different bytes -> checksum failure, not framing.
  EXPECT_EQ(h.checksum_failures, 1);
  EXPECT_EQ(h.count_mismatches, 0);
  EXPECT_EQ(h.channel(ChannelId::kDescriptors).checksum_failures, 1);
}

TEST(Exchange, RetryRedeliversPristinePayloadWithinBudget) {
  FaultConfig fc;
  fc.seed = chaos_seed();
  // Each retry re-decides independently, so the budget must cover the
  // geometric tail: p^attempts * supersteps must be negligible for every
  // seed (0.3^12 * 64 ~ 3e-5).
  fc.cell_fault_probability = 0.3;
  FaultInjector injector(fc);
  Exchange ex(2);
  ex.set_fault_injector(&injector);
  ex.set_retry_policy({.max_attempts = 12, .backoff_base_ms = 0.25});
  const std::vector<HaloNodeMsg> payload = halo_inbox_payload(100);
  wgt_t supersteps_with_faults = 0;
  for (int step = 0; step < 64; ++step) {
    const wgt_t before = injector.stats().faults_injected;
    for (const HaloNodeMsg& m : payload) ex.halo().send(0, 1, m);
    ex.deliver();  // must never throw at this budget
    if (injector.stats().faults_injected > before) ++supersteps_with_faults;
    // Whatever the schedule did, the inbox is the pristine outbox.
    const auto& in = ex.halo().inbox(1);
    ASSERT_EQ(in.size(), payload.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(wire_hash(in[i]), wire_hash(payload[i]));
    }
  }
  EXPECT_GT(supersteps_with_faults, 0) << "schedule injected nothing";
  const PipelineHealth h = ex.take_health();
  EXPECT_EQ(h.corrupt_cells, injector.stats().faults_injected);
  EXPECT_GT(h.retries, 0);
  EXPECT_GT(h.backoff_ms, 0.0);  // recorded even without sleeping
  EXPECT_EQ(h.deliveries, 64);
  EXPECT_EQ(h.exhausted_deliveries, 0);
  EXPECT_EQ(h.degraded_steps, 0);
}

TEST(Exchange, SelfSendsAreNeverFaulted) {
  FaultInjector injector(only_kind(FaultKind::kBitFlip));
  Exchange ex(2);
  ex.set_fault_injector(&injector);
  ex.set_retry_policy({.max_attempts = 1});
  ex.halo().send(0, 0, HaloNodeMsg{1, {}});  // dropped as local data
  ex.deliver();
  EXPECT_EQ(injector.stats().faults_injected, 0);
  EXPECT_TRUE(ex.take_health().clean());
}

// ---------------------------------------------------------------------------
// Pipeline degradation
// ---------------------------------------------------------------------------

class ChaosPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImpactSimConfig sc;
    sc.plate_cells_xy = 16;
    sc.plate_cells_z = 2;
    sc.proj_cells_diameter = 6;
    sc.proj_cells_z = 6;
    sc.num_snapshots = 60;
    sim_ = std::make_unique<ImpactSim>(sc);
    snap0_ = sim_->snapshot(0);
    body_.resize(static_cast<std::size_t>(snap0_.mesh.num_nodes()));
    for (std::size_t i = 0; i < body_.size(); ++i) {
      body_[i] = static_cast<int>(sim_->node_body()[i]);
    }
  }

  void TearDown() override { ThreadPool::set_global_threads(0); }

  PipelineConfig dt_config(idx_t k) const {
    PipelineConfig c;
    c.decomposition.k = k;
    c.search.search_margin = 0.12;
    c.search.contact_tolerance = 0.08;
    return c;
  }

  MlRcbPipelineConfig rcb_config(idx_t k) const {
    MlRcbPipelineConfig c;
    c.decomposition.k = k;
    c.search.search_margin = 0.12;
    c.search.contact_tolerance = 0.08;
    return c;
  }

  std::unique_ptr<ImpactSim> sim_;
  ImpactSim::Snapshot snap0_;
  std::vector<int> body_;
};

TEST_F(ChaosPipelineTest, ExhaustedBudgetDegradesToReferenceNotCrash) {
  ThreadPool::set_global_threads(4);
  ContactPipeline pipeline(snap0_.mesh, snap0_.surface, dt_config(4));
  FaultInjector injector(
      FaultConfig{.seed = 5, .cell_fault_probability = 1.0});
  pipeline.exchange().set_fault_injector(&injector);
  pipeline.exchange().set_retry_policy({.max_attempts = 2});

  const auto snap = sim_->snapshot(29);
  const PipelineStepReport ref =
      pipeline.run_step_reference(snap.mesh, snap.surface, body_);
  const PipelineStepReport got =
      pipeline.run_step(snap.mesh, snap.surface, body_);

  EXPECT_TRUE(got.health.degraded());
  EXPECT_EQ(got.health.degraded_steps, 1);
  EXPECT_EQ(got.health.exhausted_deliveries, 1);
  EXPECT_GT(got.health.corrupt_cells, 0);
  // The degraded step still produces the full, correct answer.
  expect_events_identical(got.events, ref.events, "degraded contact");
  EXPECT_EQ(got.events_per_processor, ref.events_per_processor);
  EXPECT_EQ(got.fe_exchange, ref.fe_exchange);
  EXPECT_EQ(got.search_exchange, ref.search_exchange);

  // Disarming the injector heals the next step completely.
  pipeline.exchange().set_fault_injector(nullptr);
  const PipelineStepReport healed =
      pipeline.run_step(snap.mesh, snap.surface, body_);
  EXPECT_TRUE(healed.health.clean()) << healed.health.summary();
  expect_events_identical(healed.events, ref.events, "healed contact");
}

TEST_F(ChaosPipelineTest, MlRcbDegradedStepMatchesOracleAndKeepsRcbState) {
  ThreadPool::set_global_threads(4);
  MlRcbPipeline faulty(snap0_.mesh, snap0_.surface, rcb_config(4));
  MlRcbPipeline oracle(snap0_.mesh, snap0_.surface, rcb_config(4));
  FaultInjector injector(
      FaultConfig{.seed = 6, .cell_fault_probability = 1.0});

  // Steps 10 and 20 degrade; step 29 runs fault-free. The stateful RCB
  // advance must happen exactly once per step either way, so the faulty
  // instance stays in lockstep with the oracle across the whole sequence.
  for (idx_t s : {idx_t{10}, idx_t{20}, idx_t{29}}) {
    const bool inject = s != 29;
    faulty.exchange().set_fault_injector(inject ? &injector : nullptr);
    faulty.exchange().set_retry_policy({.max_attempts = 2});
    const auto snap = sim_->snapshot(s);
    const MlRcbStepReport ref =
        oracle.run_step_reference(snap.mesh, snap.surface, body_);
    const MlRcbStepReport got =
        faulty.run_step(snap.mesh, snap.surface, body_);
    EXPECT_EQ(got.health.degraded(), inject) << "s=" << s;
    expect_events_identical(got.events, ref.events,
                            "mlrcb s=" + std::to_string(s));
    EXPECT_EQ(got.events_per_processor, ref.events_per_processor);
    EXPECT_EQ(got.upd_comm, ref.upd_comm) << "s=" << s;
  }
}

// ---------------------------------------------------------------------------
// Headline soak: bit-identity under a randomized-but-seeded schedule
// ---------------------------------------------------------------------------

TEST_F(ChaosPipelineTest, SoakFiftyStepsBitIdenticalAtOneAndEightThreads) {
  constexpr idx_t kSteps = 50;
  const idx_t k = 6;

  // Fault-free baseline events per step.
  ThreadPool::set_global_threads(8);
  std::vector<std::vector<ContactEvent>> baseline;
  {
    ContactPipeline pipeline(snap0_.mesh, snap0_.surface, dt_config(k));
    for (idx_t s = 0; s < kSteps; ++s) {
      const auto snap = sim_->snapshot(s);
      PipelineStepReport r = pipeline.run_step(snap.mesh, snap.surface, body_);
      ASSERT_TRUE(r.health.clean()) << "baseline s=" << s;
      baseline.push_back(std::move(r.events));
    }
  }

  FaultConfig fc;
  fc.seed = chaos_seed();
  fc.cell_fault_probability = 0.08;
  // 0.08^8 ~ 2e-9 per cell chain: no seed can plausibly exhaust the budget.
  RetryPolicy retry{.max_attempts = 8, .backoff_base_ms = 0.1};

  PipelineHealth health_at_1;
  FaultInjector::Stats stats_at_1;
  for (unsigned threads : {1u, 8u}) {
    ThreadPool::set_global_threads(threads);
    ContactPipeline pipeline(snap0_.mesh, snap0_.surface, dt_config(k));
    FaultInjector injector(fc);
    pipeline.exchange().set_fault_injector(&injector);
    pipeline.exchange().set_retry_policy(retry);

    PipelineHealth total;
    for (idx_t s = 0; s < kSteps; ++s) {
      const auto snap = sim_->snapshot(s);
      const PipelineStepReport r =
          pipeline.run_step(snap.mesh, snap.surface, body_);
      total += r.health;
      // The headline invariant: within the retry budget, contact events are
      // bit-identical to the fault-free run.
      expect_events_identical(r.events, baseline[static_cast<std::size_t>(s)],
                              "threads=" + std::to_string(threads) +
                                  " s=" + std::to_string(s));
    }

    // Every injected fault was detected, nothing was detected that was not
    // injected, and no step needed the degraded path.
    EXPECT_EQ(total.corrupt_cells, injector.stats().faults_injected);
    EXPECT_GT(injector.stats().faults_injected, 0) << "schedule was empty";
    EXPECT_GT(total.retries, 0);
    EXPECT_EQ(total.exhausted_deliveries, 0);
    EXPECT_EQ(total.degraded_steps, 0);
    EXPECT_EQ(total.wire_parse_failures, 0);
    EXPECT_EQ(total.deliveries, wgt_t{3} * kSteps);

    if (threads == 1) {
      health_at_1 = total;
      stats_at_1 = injector.stats();
    } else {
      // Counter-based decisions: the schedule and therefore the entire
      // health history is thread-count independent.
      EXPECT_EQ(total, health_at_1);
      EXPECT_EQ(injector.stats(), stats_at_1);
    }
  }
}

// The dependency-driven executor lets ranks finish phases out of global
// order (a rank may be searching while another is still shipping). This
// soak pins down both halves of the contract across three fixed seeds:
//   * fault-free, the fully-async schedule is bit-identical to itself at 1
//     and 8 threads and to the fault-free baseline (no barrier anywhere);
//   * with an injector armed, validation gates on phase completion, so the
//     fault schedule, detection counters, and retry accounting are
//     bit-identical across thread counts — and the events still match the
//     fault-free run. Readiness-stall counters are timing-dependent by
//     nature and deliberately excluded from PipelineHealth equality.
TEST_F(ChaosPipelineTest, AsyncOutOfOrderSoakKeepsFaultScheduleAndBitIdentity) {
  constexpr idx_t kSteps = 12;
  const idx_t k = 6;

  ThreadPool::set_global_threads(8);
  std::vector<std::vector<ContactEvent>> baseline;
  {
    ContactPipeline pipeline(snap0_.mesh, snap0_.surface, dt_config(k));
    for (idx_t s = 0; s < kSteps; ++s) {
      const auto snap = sim_->snapshot(s);
      PipelineStepReport r = pipeline.run_step(snap.mesh, snap.surface, body_);
      ASSERT_TRUE(r.health.clean()) << "baseline s=" << s;
      baseline.push_back(std::move(r.events));
    }
  }

  for (const std::uint64_t seed :
       {chaos_seed(), std::uint64_t{20260805}, std::uint64_t{987654321}}) {
    FaultConfig fc;
    fc.seed = seed;
    fc.cell_fault_probability = 0.08;
    const RetryPolicy retry{.max_attempts = 8, .backoff_base_ms = 0.1};

    PipelineHealth health_at_1;
    FaultInjector::Stats stats_at_1;
    for (unsigned threads : {1u, 8u}) {
      ThreadPool::set_global_threads(threads);
      ContactPipeline pipeline(snap0_.mesh, snap0_.surface, dt_config(k));
      FaultInjector injector(fc);
      pipeline.exchange().set_fault_injector(&injector);
      pipeline.exchange().set_retry_policy(retry);

      PipelineHealth total;
      for (idx_t s = 0; s < kSteps; ++s) {
        const auto snap = sim_->snapshot(s);
        const PipelineStepReport r =
            pipeline.run_step(snap.mesh, snap.surface, body_);
        total += r.health;
        expect_events_identical(
            r.events, baseline[static_cast<std::size_t>(s)],
            "seed=" + std::to_string(seed) +
                " threads=" + std::to_string(threads) +
                " s=" + std::to_string(s));
      }
      EXPECT_EQ(total.corrupt_cells, injector.stats().faults_injected)
          << "seed=" << seed;
      EXPECT_EQ(total.degraded_steps, 0) << "seed=" << seed;
      EXPECT_EQ(total.deliveries, wgt_t{3} * kSteps) << "seed=" << seed;
      if (threads == 1) {
        health_at_1 = total;
        stats_at_1 = injector.stats();
      } else {
        EXPECT_EQ(total, health_at_1) << "seed=" << seed;
        EXPECT_EQ(injector.stats(), stats_at_1) << "seed=" << seed;
      }
    }
  }
}

TEST_F(ChaosPipelineTest, MlRcbSoakUnderFaultsMatchesFaultFreeTwin) {
  constexpr idx_t kSteps = 15;
  ThreadPool::set_global_threads(8);
  MlRcbPipeline faulty(snap0_.mesh, snap0_.surface, rcb_config(4));
  MlRcbPipeline clean(snap0_.mesh, snap0_.surface, rcb_config(4));
  FaultConfig fc;
  fc.seed = chaos_seed() + 17;
  fc.cell_fault_probability = 0.08;
  FaultInjector injector(fc);
  faulty.exchange().set_fault_injector(&injector);
  faulty.exchange().set_retry_policy({.max_attempts = 8});

  PipelineHealth total;
  for (idx_t s = 0; s < kSteps; ++s) {
    const auto snap = sim_->snapshot(s);
    const MlRcbStepReport want = clean.run_step(snap.mesh, snap.surface, body_);
    const MlRcbStepReport got = faulty.run_step(snap.mesh, snap.surface, body_);
    total += got.health;
    expect_events_identical(got.events, want.events,
                            "mlrcb soak s=" + std::to_string(s));
    EXPECT_EQ(got.upd_comm, want.upd_comm) << "s=" << s;
    EXPECT_EQ(got.coupling_exchange, want.coupling_exchange) << "s=" << s;
  }
  EXPECT_EQ(total.corrupt_cells, injector.stats().faults_injected);
  EXPECT_GT(injector.stats().faults_injected, 0);
  EXPECT_EQ(total.degraded_steps, 0);
  EXPECT_EQ(total.exhausted_deliveries, 0);
}

}  // namespace
}  // namespace cpart
