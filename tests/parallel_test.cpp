// Tests for parallel/: thread-pool correctness under contention, coverage of
// the iteration space, deterministic reductions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/spmd_barrier.hpp"
#include "parallel/task_arena.hpp"
#include "parallel/thread_pool.hpp"

namespace cpart {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](idx_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const idx_t n = 100000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](idx_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (idx_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReduceMatchesSerialSum) {
  ThreadPool pool(8);
  const idx_t n = 50000;
  const wgt_t parallel_sum =
      pool.parallel_reduce<wgt_t>(n, 0, [](idx_t i) { return wgt_t{i}; });
  const wgt_t serial = static_cast<wgt_t>(n) * (n - 1) / 2;
  EXPECT_EQ(parallel_sum, serial);
}

TEST(ThreadPool, ReduceDeterministicAcrossCalls) {
  ThreadPool pool(8);
  const idx_t n = 30000;
  auto run = [&] {
    return pool.parallel_reduce<double>(
        n, 0.0, [](idx_t i) { return 1.0 / (1.0 + static_cast<double>(i)); });
  };
  const double a = run();
  const double b = run();
  EXPECT_EQ(a, b);  // bitwise equal: chunk combination order is fixed
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](idx_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](idx_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RepeatedDispatchesDoNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(5000, [&](idx_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200L * 5000);
}

TEST(ThreadPool, ChunkIndicesAreDisjointAndOrdered) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<idx_t, idx_t>> ranges;
  pool.parallel_for_chunks(100000, [&](unsigned, idx_t b, idx_t e) {
    std::lock_guard<std::mutex> lock(m);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  idx_t covered = 0;
  for (auto [b, e] : ranges) {
    EXPECT_EQ(b, covered);
    EXPECT_GT(e, b);
    covered = e;
  }
  EXPECT_EQ(covered, 100000);
}

TEST(ThreadPool, ParallelTasksRunsEachExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(37);
  pool.parallel_tasks(37, [&](idx_t t) {
    hits[static_cast<std::size_t>(t)].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelTasksHandlesFewerTasksThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_tasks(3, [&](idx_t) { ++calls; });
  EXPECT_EQ(calls.load(), 3);
  pool.parallel_tasks(0, [&](idx_t) { ++calls; });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ParallelTasksOnSingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_tasks(5, [&](idx_t t) { order.push_back(static_cast<int>(t)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelTasksUnevenWork) {
  // Tasks with wildly different costs must all complete.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_tasks(13, [&](idx_t t) {
    long local = 0;
    for (long i = 0; i < (t + 1) * 10000; ++i) local += i % 7;
    total.fetch_add(local + 1, std::memory_order_relaxed);
  });
  EXPECT_GT(total.load(), 13);
}

TEST(ThreadPool, GlobalPoolUsable) {
  const wgt_t s = ThreadPool::global().parallel_reduce<wgt_t>(
      1000, 0, [](idx_t) { return wgt_t{1}; });
  EXPECT_EQ(s, 1000);
}

TEST(ThreadPool, SetGlobalThreadsSwapsThePool) {
  ThreadPool::set_global_threads(3);
  // Requests above the hardware concurrency are honored: worker count is
  // part of the execution shape (barrier-phased SPMD), not just a speed
  // knob, so a 3-worker request yields 3 workers on any host.
  EXPECT_EQ(ThreadPool::global().num_threads(), 3u);
  const wgt_t s = ThreadPool::global().parallel_reduce<wgt_t>(
      5000, 0, [](idx_t) { return wgt_t{1}; });
  EXPECT_EQ(s, 5000);
  ThreadPool::set_global_threads(0);
  EXPECT_GE(ThreadPool::global().num_threads(), 1u);
}

TEST(ThreadPool, ExclusiveScanMatchesSerial) {
  ThreadPool pool(4);
  const idx_t n = 100000;
  std::vector<idx_t> data(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) {
    data[static_cast<std::size_t>(i)] = (i * 7 + 3) % 11;
  }
  std::vector<idx_t> expected(data);
  idx_t running = 0;
  for (auto& x : expected) {
    const idx_t v = x;
    x = running;
    running += v;
  }
  const idx_t total = pool.parallel_exclusive_scan(std::span<idx_t>(data));
  EXPECT_EQ(total, running);
  EXPECT_EQ(data, expected);
}

TEST(ThreadPool, ExclusiveScanIdenticalAcrossThreadCounts) {
  const idx_t n = 65536;
  std::vector<std::vector<wgt_t>> results;
  std::vector<wgt_t> totals;
  for (unsigned threads : {1u, 2u, 5u, 8u}) {
    ThreadPool pool(threads);
    std::vector<wgt_t> data(static_cast<std::size_t>(n));
    for (idx_t i = 0; i < n; ++i) {
      data[static_cast<std::size_t>(i)] = (i % 13) - 6;  // negatives too
    }
    totals.push_back(pool.parallel_exclusive_scan(std::span<wgt_t>(data)));
    results.push_back(std::move(data));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]);
    EXPECT_EQ(totals[0], totals[i]);
  }
}

TEST(ThreadPool, ExclusiveScanEmptyAndTiny) {
  ThreadPool pool(4);
  std::vector<idx_t> empty;
  EXPECT_EQ(pool.parallel_exclusive_scan(std::span<idx_t>(empty)), 0);
  std::vector<idx_t> one{5};
  EXPECT_EQ(pool.parallel_exclusive_scan(std::span<idx_t>(one)), 5);
  EXPECT_EQ(one[0], 0);
}

TEST(ThreadPool, SingleFailingTaskRethrowsOriginalException) {
  ThreadPool pool(4);
  try {
    pool.parallel_tasks(8, [](idx_t i) {
      if (i == 3) throw InputError("rank 3 failed");
    });
    FAIL() << "expected InputError";
  } catch (const InputError& e) {
    EXPECT_STREQ(e.what(), "rank 3 failed");
  }
}

TEST(ThreadPool, MultipleFailingTasksAggregateEveryRank) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> ran(16);
  try {
    pool.parallel_tasks(16, [&](idx_t i) {
      ran[static_cast<std::size_t>(i)].fetch_add(1);
      if (i % 5 == 2) {  // tasks 2, 7, 12 fail
        throw InputError("rank " + std::to_string(i) + " failed");
      }
    });
    FAIL() << "expected ParallelGroupError";
  } catch (const ParallelGroupError& e) {
    ASSERT_EQ(e.failures().size(), 3u);
    // Failures are sorted by task index (== rank id) with the original
    // messages preserved.
    EXPECT_EQ(e.failures()[0].index, 2);
    EXPECT_EQ(e.failures()[1].index, 7);
    EXPECT_EQ(e.failures()[2].index, 12);
    EXPECT_EQ(e.failures()[1].message, "rank 7 failed");
    EXPECT_NE(std::string(e.what()).find("rank 12 failed"),
              std::string::npos);
  }
  // BSP semantics: every task completed its superstep despite the failures.
  for (auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(ThreadPool, MultipleFailingTasksAggregateInline) {
  // The single-thread inline path must aggregate identically.
  ThreadPool pool(1);
  std::vector<int> ran(6, 0);
  try {
    pool.parallel_tasks(6, [&](idx_t i) {
      ++ran[static_cast<std::size_t>(i)];
      if (i == 1 || i == 4) throw InputError("boom");
    });
    FAIL() << "expected ParallelGroupError";
  } catch (const ParallelGroupError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].index, 1);
    EXPECT_EQ(e.failures()[1].index, 4);
  }
  for (int r : ran) EXPECT_EQ(r, 1);
}

TEST(ThreadPool, NonStdExceptionAggregatesAsUnknown) {
  ThreadPool pool(1);
  try {
    pool.parallel_tasks(4, [](idx_t i) {
      if (i == 0) throw 42;
      if (i == 2) throw InputError("typed");
    });
    FAIL() << "expected ParallelGroupError";
  } catch (const ParallelGroupError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].message, "unknown exception");
    EXPECT_EQ(e.failures()[1].message, "typed");
  }
}

TEST(SpmdBarrier, SinglePartcipantAlwaysWinsAndRunsSerial) {
  SpmdBarrier barrier(1);
  int serial_runs = 0;
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(barrier.arrive_and_wait([&] { ++serial_runs; }));
  }
  EXPECT_EQ(serial_runs, 5);
}

TEST(SpmdBarrier, PhasesAreTotallyOrderedAcrossThreads) {
  // W raw threads hammer R rounds: within a round every participant's
  // pre-barrier increment must be visible to every post-barrier read, the
  // serial section must run exactly once per round, and no thread may enter
  // round r+1 before round r's release. TSan runs this in CI.
  constexpr unsigned kWorkers = 8;
  constexpr int kRounds = 200;
  SpmdBarrier barrier(kWorkers);
  std::vector<int> arrivals(kRounds, 0);      // written under the barrier
  std::atomic<int> serial_runs{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      int wins = 0;
      for (int r = 0; r < kRounds; ++r) {
        if (barrier.arrive_and_wait([&, r] {
              // Serial section: counts itself and closes the round.
              serial_runs.fetch_add(1, std::memory_order_relaxed);
              arrivals[static_cast<std::size_t>(r)] += 1;
            })) {
          ++wins;
        }
        // Every thread observes the serial write of its own round — the
        // epoch release publishes it.
        if (arrivals[static_cast<std::size_t>(r)] != 1) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      (void)wins;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial_runs.load(), kRounds);
  EXPECT_EQ(mismatches.load(), 0);
  for (int r = 0; r < kRounds; ++r) {
    EXPECT_EQ(arrivals[static_cast<std::size_t>(r)], 1) << "round " << r;
  }
}

TEST(TaskArena, SubmitAndDrainRunsEveryJob) {
  ThreadPool pool(3);
  TaskArena arena(pool.workers());
  std::atomic<int> runs{0};
  for (int i = 0; i < 50; ++i) {
    arena.submit([&] { runs.fetch_add(1, std::memory_order_relaxed); });
  }
  arena.drain();
  EXPECT_EQ(runs.load(), 50);
  EXPECT_EQ(arena.stats().queue_depth, 0);
  EXPECT_EQ(arena.stats().jobs_failed, 0);
}

TEST(TaskArena, ThrowingJobIsCountedNotPropagated) {
  ThreadPool pool(2);
  TaskArena arena(pool.workers());
  std::atomic<int> runs{0};
  arena.submit([] { throw std::runtime_error("boom"); });
  arena.submit([&] { runs.fetch_add(1, std::memory_order_relaxed); });
  arena.drain();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(arena.stats().jobs_failed, 1);
}

TEST(TaskArena, MaxParallelismCapsWidth) {
  ThreadPool pool(8);
  ArenaOptions opts;
  opts.max_parallelism = 2;
  TaskArena arena(pool.workers(), opts);
  // The uncapped width already folds in hardware concurrency (this may be
  // a 1-core machine); the cap can only lower it further.
  TaskArena uncapped(pool.workers());
  EXPECT_EQ(arena.width(), std::min(2u, uncapped.width()));
  EXPECT_LE(arena.width(), 2u);
  EXPECT_EQ(arena.stats().width, arena.width());
  // The cap changes only the dispatch width, never the results.
  std::vector<std::atomic<int>> hits(10000);
  arena.parallel_for(10000, [&](idx_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskArena, DeficitRoundRobinHonorsWeights) {
  // One worker, two arenas with weights 3:1, the worker parked on a latch
  // while both queues fill. On release the scheduler's deficit round-robin
  // must interleave 3 heavy items per light one, deterministically.
  ThreadPool pool(1);
  TaskArena parking(pool.workers());
  ArenaOptions heavy_opts;
  heavy_opts.weight = 3;
  TaskArena heavy(pool.workers(), heavy_opts);
  TaskArena light(pool.workers());

  std::mutex m;
  std::condition_variable cv;
  bool go = false;
  parking.submit([&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return go; });
  });

  std::vector<char> order;
  std::mutex order_m;
  const auto record = [&](char tag) {
    std::lock_guard<std::mutex> lock(order_m);
    order.push_back(tag);
  };
  for (int i = 0; i < 6; ++i) {
    heavy.submit([&] { record('H'); });
  }
  for (int i = 0; i < 2; ++i) {
    light.submit([&] { record('L'); });
  }
  {
    std::lock_guard<std::mutex> lock(m);
    go = true;
  }
  cv.notify_all();
  heavy.drain();
  light.drain();
  ASSERT_EQ(order.size(), 8u);
  const auto heavy_in_first = [&](std::size_t n) {
    return std::count(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(n), 'H');
  };
  EXPECT_EQ(heavy_in_first(4), 3);  // 3 heavy per round trip of the ring
  EXPECT_EQ(heavy_in_first(8), 6);
  EXPECT_EQ(heavy.stats().items_run, 6);
  EXPECT_EQ(light.stats().items_run, 2);
}

TEST(TaskArena, ArenaScopeRoutesFacadeDispatch) {
  ThreadPool pool(4);
  ArenaOptions opts;
  opts.max_parallelism = 1;  // observable: bound dispatch runs inline
  TaskArena arena(pool.workers(), opts);
  ArenaScope scope(arena);
  ASSERT_EQ(ArenaScope::current(), &arena);
  // With the width-1 arena bound, the facade must run the whole range
  // inline on the calling thread, even though the pool has 4 workers and
  // the range is far past the inline threshold.
  const std::thread::id caller = std::this_thread::get_id();
  const idx_t n = 10000;
  std::vector<std::thread::id> ran_on(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](idx_t i) {
    ran_on[static_cast<std::size_t>(i)] = std::this_thread::get_id();
  });
  for (const auto& id : ran_on) EXPECT_EQ(id, caller);
}

TEST(WorkerPool, GangRunsWithDistinctParticipants) {
  ThreadPool pool(4);
  const unsigned granted = pool.run_gang(4, [&](idx_t w, unsigned width) {
    EXPECT_LT(static_cast<unsigned>(w), width);
  });
  EXPECT_GE(granted, 1u);
  EXPECT_LE(granted, 4u);
}

TEST(WorkerPool, GangParticipantsCanBlockOnEachOther) {
  // The gang guarantee: every granted participant is backed by a distinct
  // thread, so SPMD bodies may rendezvous. Each participant spins until all
  // of them arrive — with any two participants sharing a thread this hangs
  // (and the suite's ctest timeout would flag it).
  ThreadPool pool(4);
  std::atomic<unsigned> arrived{0};
  pool.run_gang(4, [&](idx_t, unsigned width) {
    arrived.fetch_add(1, std::memory_order_acq_rel);
    while (arrived.load(std::memory_order_acquire) < width) {
      std::this_thread::yield();
    }
  });
  EXPECT_GT(arrived.load(), 0u);
}

TEST(WorkerPool, GangInsideWorkerRunsInline) {
  ThreadPool pool(4);
  std::atomic<unsigned> inner_width{0};
  pool.run_gang(2, [&](idx_t w, unsigned) {
    if (w != 0) return;
    // Nested gang from inside a worker must not wait for helpers that
    // could never be granted.
    pool.run_gang(4, [&](idx_t, unsigned width) {
      inner_width.store(width, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_width.load(), 1u);
}

TEST(SchedulerStats, CountsWorkAndArenas) {
  ThreadPool pool(3);
  const SchedulerStats before = pool.scheduler_stats();
  EXPECT_EQ(before.total_workers, 3);
  EXPECT_EQ(before.registered_arenas, 1);  // the facade's default arena
  {
    TaskArena arena(pool.workers());
    EXPECT_EQ(pool.scheduler_stats().registered_arenas, 2);
    for (int i = 0; i < 20; ++i) {
      arena.submit([] {});
    }
    arena.drain();
    EXPECT_GE(pool.scheduler_stats().items_executed, before.items_executed + 20);
  }
  EXPECT_EQ(pool.scheduler_stats().registered_arenas, 1);
  // Gang helpers are granted only from parked workers, so freshly woken
  // pools may grant none on the first try — retry until one lands.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    pool.run_gang(3, [](idx_t, unsigned) {});
    if (pool.scheduler_stats().gang_slots_executed > 0) break;
    std::this_thread::yield();
  }
  EXPECT_GT(pool.scheduler_stats().gang_slots_executed, 0);
  EXPECT_EQ(pool.scheduler_stats().queued_items, 0);
}

TEST(SpmdBarrier, ExactlyOneWinnerPerRound) {
  constexpr unsigned kWorkers = 5;
  constexpr int kRounds = 100;
  SpmdBarrier barrier(kWorkers);
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        if (barrier.arrive_and_wait()) {
          wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), kRounds);
}

}  // namespace
}  // namespace cpart
