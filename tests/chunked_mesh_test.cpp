// Chunked on-disk mesh format: round-trip bit-identity against the in-core
// representation at block sizes that land exactly on, one under and one
// over the section boundaries; bounded-window accounting; streamed graph
// builds equal to the in-core builds; rejection of truncated and corrupted
// files; and the streamed large-impact generator.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/graph_metrics.hpp"
#include "mesh/chunked_mesh.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh_graphs.hpp"

namespace cpart {
namespace {

class ChunkedMesh : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cpart_chunked_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

void expect_mesh_equal(const Mesh& a, const Mesh& b) {
  ASSERT_EQ(a.element_type(), b.element_type());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_elements(), b.num_elements());
  for (idx_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.node(i), b.node(i)) << "node " << i;
  }
  for (idx_t e = 0; e < a.num_elements(); ++e) {
    const auto ea = a.element(e);
    const auto eb = b.element(e);
    for (std::size_t j = 0; j < ea.size(); ++j) {
      EXPECT_EQ(ea[j], eb[j]) << "element " << e << " slot " << j;
    }
  }
}

TEST_F(ChunkedMesh, RoundTripAtBlockBoundaries) {
  // 4x3x2 hex box: 60 nodes, 24 elements. Block sizes exactly on, one
  // under and one over each section's divisors must all round-trip
  // bit-identically — the final partial block is the edge being probed.
  const Mesh m = make_hex_box(4, 3, 2, Vec3{0, 0, 0}, Vec3{4, 3, 2});
  ASSERT_EQ(m.num_nodes(), 60);
  ASSERT_EQ(m.num_elements(), 24);
  const idx_t node_sizes[] = {60, 59, 61, 30, 29, 31, 1};
  const idx_t elem_sizes[] = {24, 23, 25, 12, 11, 13, 1};
  for (std::size_t i = 0; i < std::size(node_sizes); ++i) {
    const std::string p = path("box_" + std::to_string(i) + ".cpmk");
    write_chunked_mesh(p, m, node_sizes[i], elem_sizes[i]);
    ChunkedMeshReader reader(p);
    EXPECT_EQ(reader.num_nodes(), m.num_nodes());
    EXPECT_EQ(reader.num_elements(), m.num_elements());
    const Mesh r = reader.load_mesh();
    expect_mesh_equal(m, r);
  }
}

TEST_F(ChunkedMesh, RoundTripAllElementTypes) {
  const Mesh meshes[] = {
      make_tri_rect(3, 2, Vec3{0, 0, 0}, Vec3{3, 2, 0}),
      make_quad_rect(3, 2, Vec3{0, 0, 0}, Vec3{3, 2, 0}),
      make_tet_box(2, 2, 2, Vec3{0, 0, 0}, Vec3{2, 2, 2}),
      make_hex_box(2, 2, 2, Vec3{0, 0, 0}, Vec3{2, 2, 2}),
  };
  for (std::size_t i = 0; i < std::size(meshes); ++i) {
    const std::string p = path("t" + std::to_string(i) + ".cpmk");
    write_chunked_mesh(p, meshes[i], 7, 5);
    ChunkedMeshReader reader(p);
    expect_mesh_equal(meshes[i], reader.load_mesh());
  }
}

TEST_F(ChunkedMesh, WindowStaysBounded) {
  const Mesh m = make_hex_box(6, 6, 6, Vec3{0, 0, 0}, Vec3{6, 6, 6});
  const std::string p = path("win.cpmk");
  write_chunked_mesh(p, m, 32, 16);
  ChunkedMeshReader::Options options;
  options.max_resident_blocks = 2;
  ChunkedMeshReader reader(p, options);
  // Touch every block, repeatedly and out of order.
  for (int pass = 0; pass < 2; ++pass) {
    for (idx_t b = reader.num_element_blocks(); b-- > 0;) {
      (void)reader.element_block(b);
    }
    for (idx_t b = 0; b < reader.num_node_blocks(); ++b) {
      (void)reader.node_block(b);
    }
  }
  EXPECT_LE(reader.resident_bytes(), reader.peak_resident_bytes());
  EXPECT_LE(reader.peak_resident_bytes(), reader.window_limit_bytes());
}

TEST_F(ChunkedMesh, RandomNodeAccessMatches) {
  const Mesh m = make_tet_box(3, 3, 3, Vec3{-1, -1, -1}, Vec3{2, 2, 2});
  const std::string p = path("rand.cpmk");
  write_chunked_mesh(p, m, 10, 10);
  ChunkedMeshReader reader(p);
  for (idx_t i = m.num_nodes(); i-- > 0;) {
    EXPECT_EQ(reader.node(i), m.node(i));
  }
}

TEST_F(ChunkedMesh, StreamedGraphsMatchInCore) {
  const Mesh m = make_hex_box(4, 4, 3, Vec3{0, 0, 0}, Vec3{4, 4, 3});
  const std::string p = path("graphs.cpmk");
  write_chunked_mesh(p, m, 17, 9);
  const CsrGraph nodal_ref = nodal_graph(m);
  const CsrGraph dual_ref = dual_graph(m);
  ChunkedMeshReader r1(p);
  const CsrGraph nodal_s = nodal_graph(r1);
  ChunkedMeshReader r2(p);
  const CsrGraph dual_s = dual_graph(r2);
  EXPECT_EQ(nodal_s.num_vertices(), nodal_ref.num_vertices());
  EXPECT_EQ(nodal_s.num_edges(), nodal_ref.num_edges());
  EXPECT_EQ(nodal_s.xadj(), nodal_ref.xadj());
  EXPECT_EQ(nodal_s.adjncy(), nodal_ref.adjncy());
  EXPECT_EQ(dual_s.xadj(), dual_ref.xadj());
  EXPECT_EQ(dual_s.adjncy(), dual_ref.adjncy());
}

TEST_F(ChunkedMesh, RejectsBadMagicAndVersion) {
  const Mesh m = make_hex_box(2, 2, 2, Vec3{0, 0, 0}, Vec3{2, 2, 2});
  const std::string p = path("bad.cpmk");
  write_chunked_mesh(p, m, 8, 8);
  std::string bytes;
  {
    std::ifstream in(p, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  auto rewrite = [&](const std::string& name, const std::string& data) {
    const std::string q = path(name);
    std::ofstream out(q, std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    return q;
  };
  std::string magic = bytes;
  magic[0] = 'X';
  EXPECT_THROW(ChunkedMeshReader r(rewrite("magic.cpmk", magic)), InputError);
  std::string version = bytes;
  version[4] = 9;
  EXPECT_THROW(ChunkedMeshReader r(rewrite("ver.cpmk", version)), InputError);
  EXPECT_THROW(ChunkedMeshReader r(rewrite("empty.cpmk", "")), InputError);
  EXPECT_THROW(ChunkedMeshReader r(rewrite("tiny.cpmk", "cpm")), InputError);
}

TEST_F(ChunkedMesh, RejectsTruncationAndTrailingGarbage) {
  const Mesh m = make_hex_box(3, 3, 3, Vec3{0, 0, 0}, Vec3{3, 3, 3});
  const std::string p = path("full.cpmk");
  write_chunked_mesh(p, m, 16, 8);
  std::string bytes;
  {
    std::ifstream in(p, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Every strict prefix long enough to parse the magic must be rejected
  // (shorter ones are covered above). Step a prime to keep the test fast.
  for (std::size_t len = 5; len < bytes.size(); len += 37) {
    const std::string q = path("trunc.cpmk");
    std::ofstream out(q, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_THROW(ChunkedMeshReader r(q), InputError) << "prefix " << len;
  }
  const std::string garbage = bytes + std::string(3, '\0');
  const std::string q = path("garbage.cpmk");
  std::ofstream out(q, std::ios::binary);
  out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  out.close();
  EXPECT_THROW(ChunkedMeshReader r(q), InputError);
}

TEST_F(ChunkedMesh, RejectsOutOfRangeNodeId) {
  // Hand-build a file whose single element references node 7 of 4.
  ChunkedMeshWriter w(path("oor.cpmk"), ElementType::kQuad4, 4, 1, 8, 8);
  for (idx_t i = 0; i < 4; ++i) {
    w.add_node(Vec3{static_cast<real_t>(i), 0, 0});
  }
  const idx_t bad[] = {0, 1, 2, 7};
  EXPECT_THROW(w.add_element(bad), InputError);
}

TEST_F(ChunkedMesh, WriterEnforcesProtocol) {
  const std::string p = path("proto.cpmk");
  {
    ChunkedMeshWriter w(p, ElementType::kTri3, 3, 1, 8, 8);
    w.add_node(Vec3{0, 0, 0});
    EXPECT_THROW(w.finish(), InputError);  // node count not reached
  }
  {
    ChunkedMeshWriter w(p, ElementType::kTri3, 3, 1, 8, 8);
    w.add_node(Vec3{0, 0, 0});
    w.add_node(Vec3{1, 0, 0});
    w.add_node(Vec3{0, 1, 0});
    const idx_t conn[] = {0, 1, 2};
    w.add_element(conn);
    EXPECT_THROW(w.add_node(Vec3{9, 9, 9}), InputError);  // nodes after elems
    w.finish();
  }
  ChunkedMeshReader reader(p);
  EXPECT_EQ(reader.num_elements(), 1);
}

TEST_F(ChunkedMesh, LargeImpactStreamsAndPartitions) {
  LargeImpactSpec spec;
  spec.nx = spec.ny = spec.nz = 6;
  spec.impactor_cells = 2;
  spec.nodes_per_block = 64;
  spec.elems_per_block = 64;
  const std::string p = path("impact.cpmk");
  const ChunkedMeshInfo info = make_large_impact(p, spec);
  EXPECT_EQ(info.num_elements, 6 * 6 * 6 + 2 * 2 * 2);
  EXPECT_EQ(info.num_nodes, 7 * 7 * 7 + 3 * 3 * 3);
  ChunkedMeshReader reader(p);
  EXPECT_EQ(reader.num_nodes(), info.num_nodes);
  EXPECT_EQ(reader.num_elements(), info.num_elements);
  const Mesh m = reader.load_mesh();
  // Two separated bodies: the dual graph must have no plate<->impactor
  // edge, and every element must reference valid nodes (load_mesh already
  // validated ranges; check geometry separation here).
  const BBox plate = m.element_bbox(0);
  const BBox impactor = m.element_bbox(info.num_elements - 1);
  EXPECT_GT(impactor.lo.z, plate.hi.z);
  const CsrGraph g = nodal_graph(m);
  EXPECT_EQ(g.num_vertices(), info.num_nodes);
  EXPECT_GT(g.num_edges(), 0);
}

TEST_F(ChunkedMesh, SpecForElementsReachesTarget) {
  for (idx_t target : {idx_t{1}, idx_t{1000}, idx_t{50000}}) {
    const LargeImpactSpec spec = LargeImpactSpec::for_elements(target);
    EXPECT_GE(spec.nx * spec.ny * spec.nz, target);
  }
}

}  // namespace
}  // namespace cpart
