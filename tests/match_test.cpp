// Tests for match/: exact maximum-weight assignment, including a
// brute-force cross-check property sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "match/hungarian.hpp"
#include "util/rng.hpp"

namespace cpart {
namespace {

TEST(Hungarian, IdentityIsOptimalForDiagonalMatrix) {
  // Heavy diagonal: identity assignment wins.
  const idx_t n = 4;
  std::vector<wgt_t> w(16, 1);
  for (idx_t i = 0; i < n; ++i) w[static_cast<std::size_t>(i) * n + i] = 100;
  const auto a = max_weight_assignment(w, n);
  for (idx_t i = 0; i < n; ++i) EXPECT_EQ(a[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(assignment_weight(w, n, a), 400);
}

TEST(Hungarian, RecoversPermutation) {
  // Weight concentrated on a known permutation.
  const idx_t n = 5;
  const std::vector<idx_t> perm{3, 0, 4, 1, 2};
  std::vector<wgt_t> w(25, 0);
  for (idx_t i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i) * n +
      static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = 50;
  }
  const auto a = max_weight_assignment(w, n);
  EXPECT_EQ(a, perm);
}

TEST(Hungarian, OneByOneAndEmpty) {
  EXPECT_TRUE(max_weight_assignment({}, 0).empty());
  const auto a = max_weight_assignment({7}, 1);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 0);
}

TEST(Hungarian, TieBreaksStillValidPermutation) {
  const idx_t n = 6;
  std::vector<wgt_t> w(36, 5);  // all equal
  const auto a = max_weight_assignment(w, n);
  std::vector<idx_t> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (idx_t i = 0; i < n; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Hungarian, RejectsBadSizes) {
  EXPECT_THROW(max_weight_assignment({1, 2, 3}, 2), InputError);
}

/// Brute force over all permutations (n <= 6).
wgt_t brute_force_best(const std::vector<wgt_t>& w, idx_t n) {
  std::vector<idx_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), idx_t{0});
  wgt_t best = std::numeric_limits<wgt_t>::min();
  do {
    wgt_t total = 0;
    for (idx_t i = 0; i < n; ++i) {
      total += w[static_cast<std::size_t>(i) * n +
                 static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
    }
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class HungarianPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianPropertyTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const idx_t n = 2 + rng.uniform_int(4);  // 2..5
  std::vector<wgt_t> w(static_cast<std::size_t>(n) * n);
  for (auto& x : w) x = rng.uniform_int(1000);
  const auto a = max_weight_assignment(w, n);
  // Valid permutation.
  std::vector<idx_t> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (idx_t i = 0; i < n; ++i) {
    ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(assignment_weight(w, n, a), brute_force_best(w, n));
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, HungarianPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace cpart
