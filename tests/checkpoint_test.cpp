// Rank-death tolerance: the durable checkpoint format, the atomic commit
// protocol (keep-last-good under injected I/O faults), and DistributedSim's
// detect/restore/replay loop. The chaos soaks assert the recovery invariant
// end to end: a run that loses a rank mid-step — by thrown death or by a
// watchdog-declared hang — restores the last durable checkpoint, replays,
// and stays bit-identical to a fault-free twin at 1 and 8 worker threads.
// CPART_CHAOS_SEED sweeps the kill schedules from CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/distributed_sim.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault_injector.hpp"
#include "sim/impact_sim.hpp"

namespace cpart {
namespace {

std::uint64_t chaos_seed() {
  const char* env = std::getenv("CPART_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 11;
  return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
}

void expect_events_identical(const std::vector<ContactEvent>& got,
                             const std::vector<ContactEvent>& want,
                             const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << what << " event " << i;
    EXPECT_EQ(got[i].face, want[i].face) << what << " event " << i;
    // Exact double comparison — bit-identity, not tolerance.
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " event " << i;
    EXPECT_EQ(got[i].signed_distance, want[i].signed_distance)
        << what << " event " << i;
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(got[i].closest_point[c], want[i].closest_point[c])
          << what << " event " << i;
    }
  }
}

// Every report field except health (recovery legitimately adds transport
// activity) and the wall-clock recovery fields.
void expect_reports_identical(const DistributedStepReport& got,
                              const DistributedStepReport& want,
                              const std::string& what) {
  EXPECT_EQ(got.step, want.step) << what;
  EXPECT_EQ(got.migrated, want.migrated) << what;
  EXPECT_EQ(got.fe_exchange, want.fe_exchange) << what;
  EXPECT_EQ(got.coupling_exchange, want.coupling_exchange) << what;
  EXPECT_EQ(got.search_exchange, want.search_exchange) << what;
  EXPECT_EQ(got.migration_exchange, want.migration_exchange) << what;
  EXPECT_EQ(got.descriptor_tree_nodes, want.descriptor_tree_nodes) << what;
  EXPECT_EQ(got.descriptor_broadcast_bytes, want.descriptor_broadcast_bytes)
      << what;
  EXPECT_EQ(got.label_broadcast_bytes, want.label_broadcast_bytes) << what;
  EXPECT_EQ(got.halo_payload_bytes, want.halo_payload_bytes) << what;
  EXPECT_EQ(got.coupling_payload_bytes, want.coupling_payload_bytes) << what;
  EXPECT_EQ(got.face_payload_bytes, want.face_payload_bytes) << what;
  EXPECT_EQ(got.migration_payload_bytes, want.migration_payload_bytes) << what;
  EXPECT_EQ(got.repart_moved_nodes, want.repart_moved_nodes) << what;
  EXPECT_EQ(got.repart_moved_elements, want.repart_moved_elements) << what;
  EXPECT_EQ(got.contact_events, want.contact_events) << what;
  EXPECT_EQ(got.penetrating_events, want.penetrating_events) << what;
  EXPECT_EQ(got.events_per_processor, want.events_per_processor) << what;
  EXPECT_EQ(got.ownership_hash, want.ownership_hash) << what;
  expect_events_identical(got.events, want.events, what);
}

CheckpointData sample_data(idx_t k = 3, idx_t nn = 7) {
  CheckpointData ck;
  ck.config_hash = 0x1234abcd5678ef01ULL;
  ck.step = 12;
  ck.superstep = 57;
  ck.k = k;
  for (idx_t v = 0; v < nn; ++v) {
    ck.node_owner.push_back(v % k);
    ck.positions.push_back(
        Vec3{0.5 * static_cast<real_t>(v), -1.25, 3.0 + static_cast<real_t>(v)});
    ck.contact_hits.push_back(v * 11 % 5);
  }
  return ck;
}

bool data_equal(const CheckpointData& a, const CheckpointData& b) {
  if (a.config_hash != b.config_hash || a.step != b.step ||
      a.superstep != b.superstep || a.k != b.k ||
      a.node_owner != b.node_owner || a.contact_hits != b.contact_hits ||
      a.positions.size() != b.positions.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    if (a.positions[i].x != b.positions[i].x ||
        a.positions[i].y != b.positions[i].y ||
        a.positions[i].z != b.positions[i].z) {
      return false;
    }
  }
  return true;
}

TEST(CheckpointFormat, RoundTripIsBitIdentical) {
  const CheckpointData ck = sample_data();
  const std::string wire = encode_checkpoint(ck);
  const CheckpointData back = decode_checkpoint(wire);
  EXPECT_TRUE(data_equal(ck, back));
  // The encoding itself is deterministic.
  EXPECT_EQ(wire, encode_checkpoint(back));
}

TEST(CheckpointFormat, EmptyMeshAndSingleRankRoundTrip) {
  CheckpointData ck;
  ck.k = 1;
  ck.step = 0;
  EXPECT_TRUE(data_equal(ck, decode_checkpoint(encode_checkpoint(ck))));
}

TEST(CheckpointFormat, EveryTruncationIsRejected) {
  const std::string wire = encode_checkpoint(sample_data());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW(decode_checkpoint(wire.substr(0, len)), InputError)
        << "prefix length " << len;
  }
}

TEST(CheckpointFormat, EveryBitFlipIsRejectedOrRoundTripsDifferently) {
  // The trailing FNV-1a seal means any single-bit flip anywhere in the blob
  // must be detected — there is no "harmless" corruption.
  const std::string wire = encode_checkpoint(sample_data());
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = wire;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      EXPECT_THROW(decode_checkpoint(bad), InputError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// Re-seals a tampered payload so the trailing checksum is valid again and
// the decoder's structural checks — not the seal — must do the rejecting.
std::string reseal(std::string payload_with_old_seal,
                   std::size_t byte_to_patch, char value) {
  std::string out = std::move(payload_with_old_seal);
  out.resize(out.size() - sizeof(std::uint64_t));  // strip the old seal
  out[byte_to_patch] = value;
  const std::uint64_t sum = fnv1a_bytes(kFnvOffsetBasis, out.data(), out.size());
  char buf[sizeof(sum)];
  std::memcpy(buf, &sum, sizeof(sum));
  out.append(buf, sizeof(sum));
  return out;
}

TEST(CheckpointFormat, BadMagicVersionAndTrailingGarbageAreRejected) {
  const std::string wire = encode_checkpoint(sample_data());
  // Valid checksum, wrong magic / wrong version: the header checks reject.
  EXPECT_THROW(decode_checkpoint(reseal(wire, 0, 'X')), InputError);
  EXPECT_THROW(decode_checkpoint(reseal(wire, 4, 9)), InputError);
  // Trailing garbage after a valid payload: a naive append breaks the seal;
  // a re-sealed append must still fail the exact-consumption check.
  EXPECT_THROW(decode_checkpoint(wire + "zz"), InputError);
  std::string grown = wire;
  grown.resize(grown.size() - sizeof(std::uint64_t));
  grown += "zz";
  const std::uint64_t sum =
      fnv1a_bytes(kFnvOffsetBasis, grown.data(), grown.size());
  char buf[sizeof(sum)];
  std::memcpy(buf, &sum, sizeof(sum));
  grown.append(buf, sizeof(sum));
  EXPECT_THROW(decode_checkpoint(grown), InputError);
}

TEST(CheckpointFormat, OutOfRangeOwnerAndHitsAreRejected) {
  CheckpointData ck = sample_data();
  ck.node_owner[2] = ck.k;  // out of range
  EXPECT_THROW(encode_checkpoint(ck), InputError);
  ck = sample_data();
  ck.contact_hits[1] = -3;
  EXPECT_THROW(encode_checkpoint(ck), InputError);
  ck = sample_data();
  ck.positions.pop_back();  // size mismatch
  EXPECT_THROW(encode_checkpoint(ck), InputError);
}

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cpart_ckpt_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    ThreadPool::set_global_threads(0);
  }

  std::string dir() const { return dir_.string(); }

  std::filesystem::path dir_;
};

TEST_F(CheckpointStoreTest, WriteLoadRoundTripAndOverwrite) {
  CheckpointStore store(dir());
  EXPECT_FALSE(store.load().has_value());  // empty dir: nothing to restore

  const CheckpointData first = sample_data();
  RetryPolicy retry;
  ASSERT_TRUE(store.write(first, retry));
  auto loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(data_equal(first, *loaded));

  CheckpointData second = sample_data();
  second.step = 24;
  second.contact_hits[0] = 99;
  ASSERT_TRUE(store.write(second, retry));
  loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(data_equal(second, *loaded));
  // The superseded blob is garbage-collected after the manifest moves on.
  EXPECT_FALSE(std::filesystem::exists(store.checkpoint_path(first.step)));
}

TEST_F(CheckpointStoreTest, TornRenameKeepsLastGood) {
  FaultyFileShim shim{IoFaultConfig{}};
  CheckpointStore store(dir(), shim);
  const CheckpointData first = sample_data();
  RetryPolicy retry;
  ASSERT_TRUE(store.write(first, retry));

  // A crash between temp write and rename: the commit fails, the manifest
  // still points at the previous blob, and load() returns it intact.
  CheckpointData second = sample_data();
  second.step = 24;
  shim.fail_next_rename();
  RetryPolicy one_shot;
  one_shot.max_attempts = 1;
  EXPECT_FALSE(store.write(second, one_shot));
  EXPECT_EQ(shim.stats().dropped_renames, 1);
  auto loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(data_equal(first, *loaded));
}

TEST_F(CheckpointStoreTest, ConcurrentPerSessionStoresStayIsolated) {
  // Multi-tenant layout: every session commits into its own subdirectory
  // of one shared root (SessionContext::checkpoint_dir). Concurrent
  // writers in different subdirectories must never cross-contaminate —
  // each store's manifest ends on its own last committed data.
  constexpr int kStores = 4;
  constexpr int kWrites = 12;
  std::vector<std::thread> writers;
  for (int i = 0; i < kStores; ++i) {
    writers.emplace_back([&, i] {
      CheckpointStore store(dir() + "/s" + std::to_string(i));
      RetryPolicy retry;
      for (int w = 0; w < kWrites; ++w) {
        CheckpointData data = sample_data();
        data.step = w;
        data.contact_hits[0] = static_cast<wgt_t>(100 * i + w);
        EXPECT_TRUE(store.write(data, retry));
      }
    });
  }
  for (auto& t : writers) t.join();
  for (int i = 0; i < kStores; ++i) {
    CheckpointStore store(dir() + "/s" + std::to_string(i));
    const auto loaded = store.load();
    ASSERT_TRUE(loaded.has_value()) << "store " << i;
    EXPECT_EQ(loaded->step, kWrites - 1);
    EXPECT_EQ(loaded->contact_hits[0],
              static_cast<wgt_t>(100 * i + kWrites - 1));
  }
}

TEST_F(CheckpointStoreTest, TornRenameInOneSessionLeavesNeighborsIntact) {
  // A torn commit in one session's store is that session's problem alone:
  // the victim keeps its last good checkpoint, the neighbor's manifest
  // never even notices.
  FaultyFileShim shim{IoFaultConfig{}};
  CheckpointStore victim(dir() + "/victim", shim);
  CheckpointStore neighbor(dir() + "/neighbor");
  RetryPolicy retry;
  const CheckpointData vdata = sample_data();
  ASSERT_TRUE(victim.write(vdata, retry));
  CheckpointData ndata = sample_data();
  ndata.step = 7;
  ndata.contact_hits[0] = 42;
  ASSERT_TRUE(neighbor.write(ndata, retry));

  CheckpointData torn = sample_data();
  torn.step = 24;
  shim.fail_next_rename();
  RetryPolicy one_shot;
  one_shot.max_attempts = 1;
  EXPECT_FALSE(victim.write(torn, one_shot));

  const auto v = victim.load();
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(data_equal(vdata, *v));  // keep-last-good in the torn store
  const auto nb = neighbor.load();
  ASSERT_TRUE(nb.has_value());
  EXPECT_TRUE(data_equal(ndata, *nb));  // untouched next door
}

TEST_F(CheckpointStoreTest, WriteFaultSoakNeverLosesLastGood) {
  // Every write either commits the new checkpoint or leaves the previous
  // one loadable — under a seeded mix of short writes and ENOSPC failures,
  // with the retry budget sometimes absorbing the fault and sometimes not.
  IoFaultConfig io;
  io.seed = chaos_seed();
  io.write_fault_probability = 0.4;
  FaultyFileShim shim(io);
  CheckpointStore store(dir(), shim);
  RetryPolicy retry;
  retry.max_attempts = 2;

  CheckpointData last_good;
  bool have_good = false;
  for (idx_t step = 0; step < 30; ++step) {
    CheckpointData ck = sample_data();
    ck.step = step;
    ck.contact_hits[0] = step * 7;
    const bool committed = store.write(ck, retry);
    if (committed) {
      last_good = ck;
      have_good = true;
    }
    auto loaded = store.load();
    if (have_good) {
      ASSERT_TRUE(loaded.has_value()) << "step " << step;
      EXPECT_TRUE(data_equal(last_good, *loaded)) << "step " << step;
    } else {
      EXPECT_FALSE(loaded.has_value()) << "step " << step;
    }
  }
  // The schedule must actually have exercised both outcomes.
  EXPECT_GT(shim.stats().short_writes + shim.stats().enospc_failures, 0);
  EXPECT_TRUE(have_good);
}

TEST_F(CheckpointStoreTest, ReadBitFlipIsDetectedNotTrusted) {
  IoFaultConfig io;
  io.seed = chaos_seed();
  io.read_bitflip_probability = 1.0;  // every read comes back corrupted
  FaultyFileShim shim(io);
  CheckpointStore clean_store(dir());
  RetryPolicy retry;
  ASSERT_TRUE(clean_store.write(sample_data(), retry));
  CheckpointStore dirty_store(dir(), shim);
  // Either the manifest or the blob read is flipped; the checksums must
  // reject it — load() reports "nothing to restore", never garbage.
  EXPECT_FALSE(dirty_store.load().has_value());
  EXPECT_GT(shim.stats().read_bitflips, 0);
}

TEST(RetryPolicyTest, BackoffSaturatesInsteadOfOverflowing) {
  RetryPolicy retry;
  retry.backoff_base_ms = 0.5;
  EXPECT_EQ(retry.backoff_for(0), 0.5);
  EXPECT_EQ(retry.backoff_for(1), 1.0);
  EXPECT_EQ(retry.backoff_for(10), 0.5 * 1024.0);
  // Saturation point: growth stops exactly at kBackoffSaturation doublings
  // — beyond it (including retry counts >= 64, which would be UB as a raw
  // shift) the backoff is flat, not wrapped.
  const double cap = retry.backoff_for(RetryPolicy::kBackoffSaturation);
  EXPECT_GT(cap, retry.backoff_for(RetryPolicy::kBackoffSaturation - 1));
  EXPECT_EQ(retry.backoff_for(RetryPolicy::kBackoffSaturation + 1), cap);
  EXPECT_EQ(retry.backoff_for(100), cap);
  EXPECT_EQ(retry.backoff_for(100000), cap);
}

// --- DistributedSim recovery ---------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImpactSimConfig sc;
    sc.plate_cells_xy = 12;
    sc.plate_cells_z = 2;
    sc.proj_cells_diameter = 6;
    sc.proj_cells_z = 6;
    sc.num_snapshots = 40;
    sim_ = std::make_unique<ImpactSim>(sc);
    dir_ = std::filesystem::temp_directory_path() /
           ("cpart_recovery_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    std::filesystem::remove_all(dir_);
    ThreadPool::set_global_threads(0);
  }

  DistributedSimConfig make_config(idx_t k, idx_t checkpoint_period,
                                   const std::string& subdir) const {
    DistributedSimConfig c;
    c.decomposition.k = k;
    c.search.search_margin = 0.12;
    c.search.contact_tolerance = 0.08;
    c.repartition_period = 4;
    c.repartition.epsilon = 0.02;
    c.checkpoint_period = checkpoint_period;
    c.checkpoint_dir = (dir_ / subdir).string();
    return c;
  }

  // Drives a faulty sim and a fault-free twin over `steps` snapshots and
  // asserts bit-identity of every report and of the end-of-step rank state.
  // Returns the faulty run's accumulated health.
  PipelineHealth expect_recovers_bit_identical(const DistributedSimConfig& cfg,
                                               const FaultConfig& fc,
                                               idx_t steps,
                                               const std::string& what) {
    DistributedSimConfig clean_cfg = cfg;
    clean_cfg.checkpoint_period = 0;  // the twin needs no checkpoints
    clean_cfg.checkpoint_dir.clear();
    DistributedSim clean(*sim_, clean_cfg);
    DistributedSim faulty(*sim_, cfg);
    FaultInjector injector(fc);
    faulty.exchange().set_fault_injector(&injector);
    PipelineHealth total;
    for (idx_t s = 0; s < steps; ++s) {
      const std::string at = what + " s=" + std::to_string(s);
      const DistributedStepReport want = clean.run_step(s);
      const DistributedStepReport got = faulty.run_step(s);
      expect_reports_identical(got, want, at);
      EXPECT_EQ(faulty.ownership_map(), clean.ownership_map()) << at;
      EXPECT_EQ(faulty.gather_contact_hits(), clean.gather_contact_hits())
          << at;
      total += got.health;
    }
    EXPECT_EQ(total.rank_deaths,
              injector.stats().rank_deaths + injector.stats().rank_hangs)
        << what << ": every injected rank fault is detected, none invented";
    return total;
  }

  std::unique_ptr<ImpactSim> sim_;
  std::filesystem::path dir_;
};

TEST_F(RecoveryTest, ExplicitKillRecoversBitIdenticalAtOneAndEightThreads) {
  for (unsigned threads : {1u, 8u}) {
    ThreadPool::set_global_threads(threads);
    FaultConfig fc;
    fc.seed = chaos_seed();
    fc.kill_rank = 2;
    fc.kill_step = 7;  // two steps past the step-5 checkpoint: replay > 0
    const PipelineHealth h = expect_recovers_bit_identical(
        make_config(6, /*checkpoint_period=*/5, "kill" + std::to_string(threads)),
        fc, /*steps=*/12, "threads=" + std::to_string(threads));
    EXPECT_EQ(h.rank_deaths, 1);
    EXPECT_EQ(h.recoveries, 1);
    EXPECT_EQ(h.replay_steps, 2);  // checkpoint at 5, death at 7: replay 5, 6
    EXPECT_GT(h.checkpoints_written, 0);
    EXPECT_EQ(h.degraded_steps, 0);
  }
}

TEST_F(RecoveryTest, HangIsWatchdoggedAndRecoversBitIdentical) {
  for (unsigned threads : {1u, 8u}) {
    ThreadPool::set_global_threads(threads);
    FaultConfig fc;
    fc.seed = chaos_seed();
    fc.kill_rank = 1;
    fc.kill_step = 4;
    fc.kill_hang = true;  // silent hang: only the watchdog can detect it
    DistributedSimConfig cfg =
        make_config(5, /*checkpoint_period=*/3, "hang" + std::to_string(threads));
    cfg.watchdog_deadline_ms = 50;
    const PipelineHealth h = expect_recovers_bit_identical(
        cfg, fc, /*steps=*/8, "hang threads=" + std::to_string(threads));
    EXPECT_EQ(h.rank_deaths, 1);
    EXPECT_EQ(h.recoveries, 1);
    EXPECT_EQ(h.replay_steps, 1);  // checkpoint at 3, hang at 4
  }
}

TEST_F(RecoveryTest, SeededDeathScheduleSoakStaysBitIdentical) {
  // Probabilistic kills across a longer soak: multiple deaths at different
  // steps, each recovered by restore+replay, at both thread counts. The
  // schedule is a pure function of (seed, step, rank), so both thread
  // counts see the same kills.
  for (unsigned threads : {1u, 8u}) {
    ThreadPool::set_global_threads(threads);
    FaultConfig fc;
    fc.seed = chaos_seed();
    fc.rank_death_probability = 0.01;
    const PipelineHealth h = expect_recovers_bit_identical(
        make_config(6, /*checkpoint_period=*/4, "soak" + std::to_string(threads)),
        fc, /*steps=*/25, "soak threads=" + std::to_string(threads));
    // One recovery per death event (a single throw can carry several ranks,
    // so recoveries <= rank_deaths); checkpoints mean nothing degrades.
    EXPECT_LE(h.recoveries, h.rank_deaths);
    if (h.rank_deaths > 0) {
      EXPECT_GT(h.recoveries, 0);
    }
    EXPECT_EQ(h.degraded_steps, 0);
    EXPECT_GT(h.checkpoints_written, 0);
  }
}

TEST_F(RecoveryTest, DeathWithoutCheckpointingDegradesAndContinues) {
  // checkpoint_period == 0: no durable state, so a death completes the
  // step via the centralized reference body — still bit-identical, but
  // counted as degraded, not recovered.
  ThreadPool::set_global_threads(4);
  FaultConfig fc;
  fc.seed = chaos_seed();
  fc.kill_rank = 0;
  fc.kill_step = 3;
  const PipelineHealth h = expect_recovers_bit_identical(
      make_config(5, /*checkpoint_period=*/0, "nockpt"), fc, /*steps=*/7,
      "no-checkpoint");
  EXPECT_EQ(h.rank_deaths, 1);
  EXPECT_EQ(h.recoveries, 0);
  EXPECT_EQ(h.replay_steps, 0);
  EXPECT_EQ(h.degraded_steps, 1);
  EXPECT_EQ(h.checkpoints_written, 0);
}

TEST_F(RecoveryTest, CheckpointWriteFaultsNeverLoseLastGoodMidRun) {
  // I/O faults on the checkpoint path: failed commits are counted and the
  // run continues; when a death then hits, recovery restores whatever the
  // last successful commit was and still replays to bit-identity.
  ThreadPool::set_global_threads(4);
  DistributedSimConfig cfg = make_config(5, /*checkpoint_period=*/2, "iofault");
  cfg.checkpoint_retry.max_attempts = 1;  // no absorption: every fault fails
  IoFaultConfig io;
  io.seed = chaos_seed();
  io.write_fault_probability = 0.5;
  FaultyFileShim shim(io);

  DistributedSimConfig clean_cfg = cfg;
  clean_cfg.checkpoint_period = 0;
  clean_cfg.checkpoint_dir.clear();
  DistributedSim clean(*sim_, clean_cfg);
  DistributedSim faulty(*sim_, cfg);
  faulty.set_checkpoint_shim(shim);
  FaultConfig fc;
  fc.seed = chaos_seed();
  fc.kill_rank = 3;
  fc.kill_step = 9;
  FaultInjector injector(fc);
  faulty.exchange().set_fault_injector(&injector);

  PipelineHealth total;
  for (idx_t s = 0; s < 14; ++s) {
    const std::string at = "iofault s=" + std::to_string(s);
    const DistributedStepReport want = clean.run_step(s);
    const DistributedStepReport got = faulty.run_step(s);
    expect_reports_identical(got, want, at);
    EXPECT_EQ(faulty.gather_contact_hits(), clean.gather_contact_hits()) << at;
    total += got.health;
  }
  EXPECT_EQ(total.rank_deaths, 1);
  // At 50% per-file fault probability with no retry absorption, some of the
  // eight commit attempts (baseline + 7 period boundaries) must fail.
  EXPECT_GT(total.checkpoint_write_failures, 0);
  EXPECT_GT(shim.stats().short_writes + shim.stats().enospc_failures, 0);
  // The death is survived either way: replay from whatever commit last
  // succeeded, or — if every commit before the kill failed — the degraded
  // reference path. Both keep the run bit-identical (asserted above).
  EXPECT_EQ(total.recoveries + total.degraded_steps, 1);
  if (total.checkpoints_written == 0) {
    EXPECT_EQ(total.degraded_steps, 1);
  }
}

TEST_F(RecoveryTest, StepReportExposesRecoveryAccounting) {
  ThreadPool::set_global_threads(2);
  FaultConfig fc;
  fc.seed = chaos_seed();
  fc.kill_rank = 1;
  fc.kill_step = 6;
  DistributedSim faulty(*sim_, make_config(4, /*checkpoint_period=*/5, "acct"));
  FaultInjector injector(fc);
  faulty.exchange().set_fault_injector(&injector);
  for (idx_t s = 0; s < 8; ++s) {
    const DistributedStepReport got = faulty.run_step(s);
    if (s == 6) {
      EXPECT_TRUE(got.recovered);
      EXPECT_EQ(got.replayed_steps, 1);
      EXPECT_GT(got.recovery_ms, 0.0);
    } else {
      EXPECT_FALSE(got.recovered) << "s=" << s;
      EXPECT_EQ(got.replayed_steps, 0) << "s=" << s;
    }
    // Checkpoint timing is charged on commit steps (baseline on s=0).
    if (s == 0 || (s + 1) % 5 == 0) {
      EXPECT_GT(got.checkpoint_ms, 0.0) << "s=" << s;
    }
  }
}

}  // namespace
}  // namespace cpart
