// Tests for viz/: SVG canvas output structure.
#include <gtest/gtest.h>

#include "viz/svg.hpp"

namespace cpart {
namespace {

BBox unit_world() {
  BBox b;
  b.expand(Vec3{0, 0, 0});
  b.expand(Vec3{10, 5, 0});
  return b;
}

TEST(Svg, RenderContainsShapes) {
  SvgCanvas canvas(unit_world(), 400);
  BBox r;
  r.expand(Vec3{1, 1, 0});
  r.expand(Vec3{3, 2, 0});
  canvas.add_rect(r, "#ff0000");
  canvas.add_circle(Vec3{5, 2.5, 0}, 0.5, "blue");
  canvas.add_line(Vec3{0, 0, 0}, Vec3{10, 5, 0}, "black", 2);
  canvas.add_text(Vec3{1, 4, 0}, "hello");
  canvas.add_polygon({{0, 0, 0}, {1, 0, 0}, {0.5, 1, 0}}, "green");
  const std::string svg = canvas.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("hello"), std::string::npos);
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, YAxisPointsUp) {
  SvgCanvas canvas(unit_world(), 400);
  canvas.add_circle(Vec3{0, 5, 0}, 0.1, "red");  // top-left in world space
  const std::string svg = canvas.render();
  // World (0, 5) maps to pixel (0, 0).
  EXPECT_NE(svg.find("cx=\"0\" cy=\"0\""), std::string::npos);
}

TEST(Svg, AspectRatioPreserved) {
  SvgCanvas canvas(unit_world(), 400);  // world is 10x5
  const std::string svg = canvas.render();
  EXPECT_NE(svg.find("width=\"400\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"201\""), std::string::npos);
}

TEST(Svg, PartitionColorsCycleAndAreStable) {
  EXPECT_EQ(SvgCanvas::partition_color(0), SvgCanvas::partition_color(16));
  EXPECT_NE(SvgCanvas::partition_color(0), SvgCanvas::partition_color(1));
  EXPECT_FALSE(SvgCanvas::partition_color(7).empty());
}

TEST(Svg, RejectsDegenerateWorld) {
  BBox empty;
  EXPECT_THROW(SvgCanvas(empty, 100), InputError);
  BBox flat;
  flat.expand(Vec3{0, 0, 0});
  flat.expand(Vec3{1, 0, 0});  // zero y-extent
  EXPECT_THROW(SvgCanvas(flat, 100), InputError);
}

TEST(Svg, SaveToInvalidPathThrows) {
  SvgCanvas canvas(unit_world(), 100);
  EXPECT_THROW(canvas.save("/nonexistent-dir/out.svg"), InputError);
}

}  // namespace
}  // namespace cpart
