// Tests for runtime/: the virtual cluster and the cross-validation between
// executed traffic and the analytic metrics (FEComm, NRemote, M2MComm).
#include <gtest/gtest.h>

#include "contact/search_metrics.hpp"
#include "core/mcml_dt.hpp"
#include "core/ml_rcb.hpp"
#include "graph/graph_builder.hpp"
#include "graph/graph_metrics.hpp"
#include "mesh/mesh_graphs.hpp"
#include "runtime/health.hpp"
#include "runtime/label_codec.hpp"
#include "runtime/session_context.hpp"
#include "runtime/virtual_cluster.hpp"
#include "sim/impact_sim.hpp"
#include "tree/tree_io.hpp"

namespace cpart {
namespace {

TEST(VirtualCluster, AccumulatesAndResets) {
  VirtualCluster cluster(3);
  cluster.send(0, 1, 5);
  cluster.send(0, 1, 2);
  cluster.send(1, 2, 1);
  cluster.send(2, 2, 100);  // self-send ignored
  StepTraffic t = cluster.finish();
  EXPECT_EQ(t.total_units(), 8);
  EXPECT_EQ(t.processors[0].sent_units, 7);
  EXPECT_EQ(t.processors[1].received_units, 7);
  EXPECT_EQ(t.processors[1].sent_units, 1);
  EXPECT_EQ(t.processors[2].received_units, 1);
  EXPECT_EQ(t.total_messages(), 2);
  // finish() resets.
  StepTraffic empty = cluster.finish();
  EXPECT_EQ(empty.total_units(), 0);
}

TEST(VirtualCluster, ImbalanceOfUniformTrafficIsOne) {
  VirtualCluster cluster(4);
  for (idx_t i = 0; i < 4; ++i) cluster.send(i, (i + 1) % 4, 10);
  const StepTraffic t = cluster.finish();
  EXPECT_DOUBLE_EQ(t.imbalance(), 1.0);
  EXPECT_EQ(t.max_received(), 10);
  EXPECT_EQ(t.max_sent(), 10);
}

TEST(VirtualCluster, RejectsBadSends) {
  VirtualCluster cluster(2);
  EXPECT_THROW(cluster.send(-1, 0, 1), InputError);
  EXPECT_THROW(cluster.send(0, 2, 1), InputError);
  EXPECT_THROW(cluster.send(0, 1, -3), InputError);
}

TEST(Traffic, FeHaloMatchesTotalCommVolume) {
  const CsrGraph g = make_grid_graph(16, 16);
  std::vector<idx_t> part(256);
  for (idx_t v = 0; v < 256; ++v) {
    part[static_cast<std::size_t>(v)] = (v % 16) / 4;  // 4 column stripes
  }
  const StepTraffic t = fe_halo_traffic(g, part, 4);
  EXPECT_EQ(t.total_units(), total_comm_volume(g, part));
  EXPECT_GT(t.total_units(), 0);
}

TEST(Traffic, StepTrafficAddition) {
  const CsrGraph g = make_path_graph(6);
  const std::vector<idx_t> part{0, 0, 1, 1, 2, 2};
  StepTraffic a = fe_halo_traffic(g, part, 3);
  const wgt_t single = a.total_units();
  a += fe_halo_traffic(g, part, 3);
  EXPECT_EQ(a.total_units(), 2 * single);
}

TEST(Traffic, ImbalanceOfSingleProcessorIsOne) {
  // k=1: nothing can be uneven, and all traffic is local (zero).
  VirtualCluster cluster(1);
  cluster.send(0, 0, 7);  // self-send: dropped
  const StepTraffic t = cluster.finish();
  ASSERT_EQ(t.num_processors(), 1);
  EXPECT_EQ(t.total_units(), 0);
  EXPECT_DOUBLE_EQ(t.imbalance(), 1.0);
}

TEST(Traffic, ImbalanceOfAllZeroTrafficIsOne) {
  // A quiet step must not divide by the zero mean.
  StepTraffic t;
  t.processors.resize(5);
  EXPECT_DOUBLE_EQ(t.imbalance(), 1.0);
  EXPECT_EQ(t.total_units(), 0);
  // And the degenerate empty snapshot too.
  EXPECT_DOUBLE_EQ(StepTraffic{}.imbalance(), 1.0);
}

TEST(Traffic, AdditionRejectsProcessorCountMismatch) {
  StepTraffic a;
  a.processors.resize(3);
  StepTraffic b;
  b.processors.resize(4);
  EXPECT_THROW(a += b, InputError);
  // The failed addition must not have mutated the target.
  EXPECT_EQ(a.num_processors(), 3);
  EXPECT_EQ(a.total_units(), 0);
}

TEST(Traffic, TotalMessagesOnEmptyClusterIsZero) {
  VirtualCluster cluster(4);
  const StepTraffic t = cluster.finish();
  EXPECT_EQ(t.total_messages(), 0);
  EXPECT_EQ(t.max_sent(), 0);
  EXPECT_EQ(t.max_received(), 0);
}

class EndToEndTraffic : public ::testing::Test {
 protected:
  void SetUp() override {
    ImpactSimConfig config;
    config.plate_cells_xy = 14;
    config.plate_cells_z = 2;
    config.proj_cells_diameter = 6;
    config.proj_cells_z = 6;
    config.num_snapshots = 4;
    sim_ = std::make_unique<ImpactSim>(config);
    snap_ = sim_->snapshot(1);
  }
  std::unique_ptr<ImpactSim> sim_;
  ImpactSim::Snapshot snap_;
  static constexpr idx_t kParts = 6;
};

TEST_F(EndToEndTraffic, GlobalSearchTrafficMatchesNRemote) {
  McmlDtConfig config;
  config.k = kParts;
  const McmlDtPartitioner p(snap_.mesh, snap_.surface, config);
  const auto desc = p.build_descriptors(snap_.mesh, snap_.surface);
  const auto owners = face_owners(snap_.surface, p.node_partition(), kParts);
  const auto analytic =
      global_search_tree(snap_.mesh, snap_.surface, owners, desc, 0.1);
  const StepTraffic executed = global_search_traffic(
      snap_.mesh, snap_.surface, owners, 0.1, kParts,
      [&desc](const BBox& box, std::vector<idx_t>& parts) {
        desc.query_box(box, parts);
      });
  EXPECT_EQ(executed.total_units(), analytic.remote_sends);
  EXPECT_GE(executed.imbalance(), 1.0);
}

TEST_F(EndToEndTraffic, M2MTrafficIsTwiceM2MComm) {
  MlRcbConfig config;
  config.k = kParts;
  const MlRcbPartitioner p(snap_.mesh, snap_.surface, config);
  std::vector<idx_t> fe_labels;
  for (idx_t id : snap_.surface.contact_nodes) {
    fe_labels.push_back(p.node_partition()[static_cast<std::size_t>(id)]);
  }
  const M2MResult m2m = m2m_comm(fe_labels, p.contact_labels(), kParts);
  const StepTraffic executed =
      m2m_traffic(fe_labels, p.contact_labels(), m2m.relabel, kParts);
  EXPECT_EQ(executed.total_units(), 2 * m2m.mismatched);
}

TEST_F(EndToEndTraffic, FeHaloTrafficMatchesExperimentMetric) {
  McmlDtConfig config;
  config.k = kParts;
  const McmlDtPartitioner p(snap_.mesh, snap_.surface, config);
  const CsrGraph g = nodal_graph(snap_.mesh);
  const StepTraffic executed = fe_halo_traffic(g, p.node_partition(), kParts);
  EXPECT_EQ(executed.total_units(), total_comm_volume(g, p.node_partition()));
}

TEST(Health, MergeSumsEveryFieldIncludingTimings) {
  PipelineHealth a;
  a.deliveries = 3;
  a.retries = 2;
  a.degraded_steps = 1;
  a.backoff_ms = 1.5;
  a.readiness_stalls = 4;
  a.readiness_stall_ns = 900;
  a.channel(ChannelId::kHalo).corrupt_cells = 2;
  PipelineHealth b;
  b.deliveries = 5;
  b.checkpoints_written = 2;
  b.backoff_ms = 0.5;
  b.readiness_stalls = 1;
  b.channel(ChannelId::kHalo).corrupt_cells = 3;

  PipelineHealth merged = a;
  // merge() is the aggregation entry service rollups use; it must include
  // the timing fields operator== deliberately excludes.
  PipelineHealth& ret = merged.merge(b);
  EXPECT_EQ(&ret, &merged);  // chains
  EXPECT_EQ(merged.deliveries, 8);
  EXPECT_EQ(merged.retries, 2);
  EXPECT_EQ(merged.degraded_steps, 1);
  EXPECT_EQ(merged.checkpoints_written, 2);
  EXPECT_DOUBLE_EQ(merged.backoff_ms, 2.0);
  EXPECT_EQ(merged.readiness_stalls, 5);
  EXPECT_EQ(merged.readiness_stall_ns, 900);
  EXPECT_EQ(merged.channel(ChannelId::kHalo).corrupt_cells, 5);

  // merge and operator+= are the same aggregation.
  PipelineHealth plus = a;
  plus += b;
  EXPECT_EQ(plus.deliveries, merged.deliveries);
  EXPECT_DOUBLE_EQ(plus.backoff_ms, merged.backoff_ms);

  // Merging a default record is the identity on the counted fields.
  PipelineHealth before = merged;
  merged.merge(PipelineHealth{});
  EXPECT_EQ(merged.deliveries, before.deliveries);
  EXPECT_DOUBLE_EQ(merged.backoff_ms, before.backoff_ms);
}

TEST(SessionContextTest, DerivedSeedsAreStableAndDisjoint) {
  SessionContextConfig a;
  a.name = "a";
  a.service_seed = 42;
  a.session_key = 0;
  SessionContextConfig b = a;
  b.name = "b";
  b.session_key = 1;
  SessionContext ca(a), cb(b);
  // Pure function of (service seed, key): rebuilding reproduces the seeds.
  SessionContext ca2(a);
  EXPECT_EQ(ca.seeds().seed(), ca2.seeds().seed());
  EXPECT_EQ(ca.fault_seed(), ca2.fault_seed());
  // Distinct keys give uncorrelated domains.
  EXPECT_NE(ca.seeds().seed(), cb.seeds().seed());
  EXPECT_NE(ca.fault_seed(), cb.fault_seed());
  // The fault domain never aliases the session stream itself.
  EXPECT_NE(ca.fault_seed(), ca.seeds().seed());
}

TEST(SessionContextTest, CheckpointDirAndHealthAccumulation) {
  SessionContextConfig cc;
  cc.name = "tenant";
  cc.checkpoint_root = "/tmp/root";
  SessionContext ctx(cc);
  EXPECT_EQ(ctx.checkpoint_dir(), "/tmp/root/tenant");
  EXPECT_EQ(ctx.injector(), nullptr);

  PipelineHealth step;
  step.deliveries = 4;
  ctx.record_step(step);
  ctx.record_step(step);
  EXPECT_EQ(ctx.steps_recorded(), 2);
  EXPECT_EQ(ctx.health().deliveries, 8);

  SessionContextConfig bare;
  bare.name = "x";
  EXPECT_TRUE(SessionContext(bare).checkpoint_dir().empty());
}

TEST(LabelCodec, RoundTripsBatches) {
  const std::vector<std::vector<LabelUpdate>> cases = {
      {},
      {{0, 0}},
      {{7, 3}},
      {{0, 1}, {1, 2}, {2, 0}},                    // dense run: 1-byte deltas
      {{5, 2}, {900, 15}, {901, 15}, {100000, 7}}, // sparse jumps
  };
  for (const auto& updates : cases) {
    EXPECT_EQ(decode_label_updates(encode_label_updates(updates)), updates);
  }
}

TEST(LabelCodec, ClusteredBatchBeatsFixedWidthBy2x) {
  // The acceptance target for the blob: seam-clustered updates must encode
  // at least 2x denser than the 16-byte-per-update fixed-width stream.
  std::vector<LabelUpdate> updates;
  for (idx_t i = 0; i < 500; ++i) updates.emplace_back(1000 + 2 * i, i % 25);
  const std::string blob = encode_label_updates(updates);
  EXPECT_LE(blob.size() * 2, updates.size() * 16);
  EXPECT_EQ(decode_label_updates(blob), updates);
}

TEST(LabelCodec, EncodeRejectsUnsortedAndNegative) {
  EXPECT_THROW(encode_label_updates({{4, 0}, {4, 1}}), InputError);
  EXPECT_THROW(encode_label_updates({{9, 0}, {3, 1}}), InputError);
  EXPECT_THROW(encode_label_updates({{-1, 0}}), InputError);
  EXPECT_THROW(encode_label_updates({{0, -2}}), InputError);
}

TEST(LabelCodec, DecodeRejectsMalformedBlobs) {
  const std::string good =
      encode_label_updates({{10, 1}, {20, 2}, {30, 3}});
  // Every truncation of a valid blob must throw, never mis-decode.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(decode_label_updates(good.substr(0, len)), TreeParseError)
        << "prefix length " << len;
  }
  EXPECT_THROW(decode_label_updates(good + '\0'), TreeParseError);
  // Declared count larger than the remaining bytes can carry.
  std::string overcount;
  overcount.push_back('\x7f');  // 127 updates, no payload
  EXPECT_THROW(decode_label_updates(overcount), TreeParseError);
  // A zero delta after the first update means a duplicated node id.
  std::string dup;
  dup.push_back('\x02');  // two updates
  dup.push_back('\x05');  // node 5
  dup.push_back('\x01');  // owner 1
  dup.push_back('\x00');  // delta 0 -> node 5 again
  dup.push_back('\x02');  // owner 2
  EXPECT_THROW(decode_label_updates(dup), TreeParseError);
}

}  // namespace
}  // namespace cpart
