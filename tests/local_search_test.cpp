// Tests for contact/local_search: point-triangle geometry, node-to-face
// contact events, penetration signs, body exclusion, and the
// candidate-driven variant used by the parallel pipeline.
#include <gtest/gtest.h>

#include "contact/local_search.hpp"
#include "mesh/generators.hpp"

namespace cpart {
namespace {

TEST(ClosestPoint, InteriorEdgeAndVertexRegions) {
  const Vec3 a{0, 0, 0}, b{2, 0, 0}, c{0, 2, 0};
  // Above the interior -> projection.
  Vec3 r = closest_point_on_triangle(Vec3{0.5, 0.5, 1}, a, b, c);
  EXPECT_DOUBLE_EQ(r.x, 0.5);
  EXPECT_DOUBLE_EQ(r.y, 0.5);
  EXPECT_DOUBLE_EQ(r.z, 0);
  // Beyond vertex a.
  r = closest_point_on_triangle(Vec3{-1, -1, 0}, a, b, c);
  EXPECT_EQ(r, a);
  // Beyond edge ab.
  r = closest_point_on_triangle(Vec3{1, -3, 0}, a, b, c);
  EXPECT_DOUBLE_EQ(r.x, 1);
  EXPECT_DOUBLE_EQ(r.y, 0);
  // Beyond vertex b.
  r = closest_point_on_triangle(Vec3{5, 0, 0}, a, b, c);
  EXPECT_EQ(r, b);
  // Beyond the hypotenuse.
  r = closest_point_on_triangle(Vec3{2, 2, 0}, a, b, c);
  EXPECT_DOUBLE_EQ(r.x, 1);
  EXPECT_DOUBLE_EQ(r.y, 1);
}

/// Two unit cubes separated by `gap` along z (upper body above lower).
struct TwoCubes {
  Mesh mesh;
  Surface surface;
  std::vector<int> body;
  explicit TwoCubes(real_t gap) {
    mesh = make_hex_box(2, 2, 2, Vec3{0, 0, 0}, Vec3{1, 1, 1});
    body.assign(static_cast<std::size_t>(mesh.num_nodes()), 0);
    const Mesh upper =
        make_hex_box(2, 2, 2, Vec3{0, 0, 1 + gap}, Vec3{1, 1, 1});
    mesh.append(upper);
    body.resize(static_cast<std::size_t>(mesh.num_nodes()), 1);
    surface = extract_surface(mesh);
  }
};

TEST(LocalSearch, FindsGapContacts) {
  const TwoCubes scene(0.05);
  LocalSearchOptions opts;
  opts.tolerance = 0.1;
  opts.body_of_node = scene.body;
  const auto events = local_contact_search(scene.mesh, scene.surface, opts);
  ASSERT_FALSE(events.empty());
  for (const ContactEvent& e : events) {
    EXPECT_NEAR(e.distance, 0.05, 1e-9);
    EXPECT_LE(e.distance, opts.tolerance);
    // Node and face belong to different bodies.
    EXPECT_NE(scene.body[static_cast<std::size_t>(e.node)],
              scene.body[static_cast<std::size_t>(
                  scene.surface.faces[static_cast<std::size_t>(e.face)]
                      .nodes.front())]);
  }
  // Every node of the facing 3x3 grids participates: 9 + 9 = 18 events
  // (closest_only keeps one event per node).
  EXPECT_EQ(events.size(), 18u);
}

TEST(LocalSearch, NoEventsWhenFarApart) {
  const TwoCubes scene(1.0);
  LocalSearchOptions opts;
  opts.tolerance = 0.1;
  opts.body_of_node = scene.body;
  EXPECT_TRUE(local_contact_search(scene.mesh, scene.surface, opts).empty());
}

TEST(LocalSearch, PenetrationHasNegativeSignOnOneSide) {
  // Overlapping cubes: facing surfaces interpenetrate.
  const TwoCubes scene(-0.04);
  LocalSearchOptions opts;
  opts.tolerance = 0.1;
  opts.body_of_node = scene.body;
  const auto events = local_contact_search(scene.mesh, scene.surface, opts);
  ASSERT_FALSE(events.empty());
  // At least one event shows a node behind the contacted face.
  const bool any_negative =
      std::any_of(events.begin(), events.end(), [](const ContactEvent& e) {
        return e.signed_distance < 0;
      });
  EXPECT_TRUE(any_negative);
}

TEST(LocalSearch, SelfContactExcludedWithoutBodyInfoOnlyByFaceMembership) {
  // Without body info, adjacent faces of the same cube produce events at
  // distance 0 for shared... no: nodes belonging to a face are excluded,
  // but a node still sees other faces of its own body. On a single cube
  // with tolerance smaller than the cube's feature distance, corner nodes
  // touch adjacent faces at distance 0 — those faces contain the node and
  // are excluded; non-incident faces are >= half an edge away.
  const Mesh cube = make_hex_box(2, 2, 2, Vec3{0, 0, 0}, Vec3{1, 1, 1});
  const Surface s = extract_surface(cube);
  LocalSearchOptions opts;
  opts.tolerance = 0.2;
  const auto events = local_contact_search(cube, s, opts);
  // Mid-edge nodes lie on two faces (both excluded) but are within 0.5 of
  // nothing else; expect no spurious events closer than half a cell.
  for (const ContactEvent& e : events) {
    EXPECT_GT(e.distance, 0.0);
  }
}

TEST(LocalSearch, CandidateVariantMatchesFullSearch) {
  const TwoCubes scene(0.05);
  LocalSearchOptions opts;
  opts.tolerance = 0.1;
  opts.body_of_node = scene.body;
  const auto full = local_contact_search(scene.mesh, scene.surface, opts);
  // Give every node every face as candidate: must reproduce the full result.
  std::vector<std::vector<idx_t>> candidates(
      scene.surface.contact_nodes.size());
  std::vector<idx_t> all_faces(static_cast<std::size_t>(scene.surface.num_faces()));
  for (idx_t f = 0; f < scene.surface.num_faces(); ++f) {
    all_faces[static_cast<std::size_t>(f)] = f;
  }
  for (auto& c : candidates) c = all_faces;
  const auto via_candidates = local_contact_search_candidates(
      scene.mesh, scene.surface, candidates, opts);
  ASSERT_EQ(via_candidates.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(via_candidates[i].node, full[i].node);
    // Several faces tie at the minimum distance (flat facing grids); the
    // winning face may differ by scan order, the gap may not.
    EXPECT_DOUBLE_EQ(via_candidates[i].distance, full[i].distance);
  }
}

TEST(LocalSearch, FaceNormalOrientation) {
  const Mesh cube = make_hex_box(1, 1, 1, Vec3{0, 0, 0}, Vec3{1, 1, 1});
  const Surface s = extract_surface(cube);
  // Every face normal must be non-zero and axis-aligned for a unit cube.
  for (const SurfaceFace& f : s.faces) {
    const Vec3 n = face_normal(cube, f);
    const real_t len = norm(n);
    EXPECT_GT(len, 0.5);
    const Vec3 u = (1.0 / len) * n;
    const real_t max_comp =
        std::max({std::abs(u.x), std::abs(u.y), std::abs(u.z)});
    EXPECT_NEAR(max_comp, 1.0, 1e-9);
  }
}

TEST(LocalSearch, RejectsBadOptions) {
  const TwoCubes scene(0.05);
  LocalSearchOptions opts;
  opts.tolerance = 0;
  EXPECT_THROW(local_contact_search(scene.mesh, scene.surface, opts),
               InputError);
}

}  // namespace
}  // namespace cpart
