// Tests for core/pipeline: the end-to-end parallel step, including the
// exactness property — the distributed search finds exactly the events a
// serial search finds (no contact is lost to the decomposition).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "sim/impact_sim.hpp"

namespace cpart {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImpactSimConfig sc;
    sc.plate_cells_xy = 16;
    sc.plate_cells_z = 2;
    sc.proj_cells_diameter = 6;
    sc.proj_cells_z = 6;
    sc.num_snapshots = 60;
    sim_ = std::make_unique<ImpactSim>(sc);
    snap0_ = sim_->snapshot(0);
    body_.resize(static_cast<std::size_t>(snap0_.mesh.num_nodes()));
    for (std::size_t i = 0; i < body_.size(); ++i) {
      body_[i] = static_cast<int>(sim_->node_body()[i]);
    }
  }

  PipelineConfig config(idx_t k) const {
    PipelineConfig c;
    c.decomposition.k = k;
    c.search.search_margin = 0.12;
    c.search.contact_tolerance = 0.08;
    return c;
  }

  std::unique_ptr<ImpactSim> sim_;
  ImpactSim::Snapshot snap0_;
  std::vector<int> body_;
};

TEST_F(PipelineTest, RejectsMarginSmallerThanTolerance) {
  PipelineConfig c = config(4);
  c.search.search_margin = 0.01;
  EXPECT_THROW(ContactPipeline(snap0_.mesh, snap0_.surface, c), InputError);
}

TEST_F(PipelineTest, DistributedSearchMatchesSerial) {
  // The crucial end-to-end property: for any k, the union of per-processor
  // searches equals the serial search — the descriptor filter shipped every
  // element everywhere it was needed.
  const auto snap = sim_->snapshot(29);  // impact on the upper plate region
  LocalSearchOptions serial_opts;
  serial_opts.tolerance = 0.08;
  serial_opts.body_of_node = body_;
  const auto serial =
      local_contact_search(snap.mesh, snap.surface, serial_opts);
  ASSERT_GT(serial.size(), 0u) << "scenario produced no contacts to verify";

  for (idx_t k : {idx_t{2}, idx_t{5}, idx_t{9}}) {
    ContactPipeline pipeline(snap0_.mesh, snap0_.surface, config(k));
    const PipelineStepReport report =
        pipeline.run_step(snap.mesh, snap.surface, body_);
    ASSERT_EQ(report.events.size(), serial.size()) << "k=" << k;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(report.events[i].node, serial[i].node) << "k=" << k;
      EXPECT_DOUBLE_EQ(report.events[i].distance, serial[i].distance)
          << "k=" << k;
    }
  }
}

TEST_F(PipelineTest, ReportBookkeepingConsistent) {
  const auto snap = sim_->snapshot(29);
  ContactPipeline pipeline(snap0_.mesh, snap0_.surface, config(6));
  const PipelineStepReport r = pipeline.run_step(snap.mesh, snap.surface, body_);
  // Per-processor counts sum to the total.
  idx_t sum = 0;
  for (idx_t c : r.events_per_processor) sum += c;
  EXPECT_EQ(sum, r.contact_events);
  EXPECT_LE(r.penetrating_events, r.contact_events);
  // Broadcast cost scales with (k - 1) serialized trees.
  EXPECT_GT(r.descriptor_broadcast_bytes, 0);
  EXPECT_EQ(r.descriptor_broadcast_bytes % 5, 0);  // divisible by k-1 = 5
  // Traffic snapshots carry k processors each.
  EXPECT_EQ(r.fe_exchange.num_processors(), 6);
  EXPECT_EQ(r.search_exchange.num_processors(), 6);
  EXPECT_GT(r.fe_exchange.total_units(), 0);
}

TEST_F(PipelineTest, QuietSnapshotHasNoEvents) {
  // Snapshot 0: the projectile hovers above the plate beyond tolerance.
  ContactPipeline pipeline(snap0_.mesh, snap0_.surface, config(4));
  const PipelineStepReport r =
      pipeline.run_step(snap0_.mesh, snap0_.surface, body_);
  EXPECT_EQ(r.contact_events, 0);
  EXPECT_GT(r.fe_exchange.total_units(), 0);  // halo exchange still happens
}

TEST_F(PipelineTest, MlRcbPipelineMatchesSerialToo) {
  // The baseline's bounding-box filter is also conservative: its
  // distributed search must reproduce the serial events as well. Note the
  // ML+RCB local search runs in the *RCB* decomposition of contact nodes.
  const auto snap = sim_->snapshot(29);
  LocalSearchOptions serial_opts;
  serial_opts.tolerance = 0.08;
  serial_opts.body_of_node = body_;
  const auto serial =
      local_contact_search(snap.mesh, snap.surface, serial_opts);
  ASSERT_GT(serial.size(), 0u);

  MlRcbPipelineConfig config;
  config.decomposition.k = 5;
  config.search.search_margin = 0.12;
  config.search.contact_tolerance = 0.08;
  MlRcbPipeline pipeline(snap0_.mesh, snap0_.surface, config);
  // Advance through the snapshots in order (the RCB update is stateful).
  MlRcbStepReport report;
  for (idx_t s : {idx_t{10}, idx_t{20}, idx_t{29}}) {
    const auto si = sim_->snapshot(s);
    report = pipeline.run_step(si.mesh, si.surface, body_);
  }
  ASSERT_EQ(report.events.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(report.events[i].node, serial[i].node);
    EXPECT_DOUBLE_EQ(report.events[i].distance, serial[i].distance);
  }
  // Coupling traffic exists and UpdComm was reported after the first step.
  EXPECT_GT(report.coupling_exchange.total_units(), 0);
}

TEST_F(PipelineTest, MlRcbCouplingIsEvenUnits) {
  const auto snap = sim_->snapshot(20);
  MlRcbPipelineConfig config;
  config.decomposition.k = 4;
  config.search.search_margin = 0.12;
  config.search.contact_tolerance = 0.08;
  MlRcbPipeline pipeline(snap0_.mesh, snap0_.surface, config);
  const MlRcbStepReport r = pipeline.run_step(snap.mesh, snap.surface, body_);
  // One unit each way per mismatched point: total units are even.
  EXPECT_EQ(r.coupling_exchange.total_units() % 2, 0);
}

TEST_F(PipelineTest, SingleProcessorDegenerates) {
  const auto snap = sim_->snapshot(29);
  ContactPipeline pipeline(snap0_.mesh, snap0_.surface, config(1));
  const PipelineStepReport r = pipeline.run_step(snap.mesh, snap.surface, body_);
  EXPECT_EQ(r.fe_exchange.total_units(), 0);
  EXPECT_EQ(r.search_exchange.total_units(), 0);
  EXPECT_EQ(r.descriptor_broadcast_bytes, 0);  // nobody to broadcast to
  LocalSearchOptions serial_opts;
  serial_opts.tolerance = 0.08;
  serial_opts.body_of_node = body_;
  const auto serial =
      local_contact_search(snap.mesh, snap.surface, serial_opts);
  EXPECT_EQ(r.events.size(), serial.size());
}

}  // namespace
}  // namespace cpart
