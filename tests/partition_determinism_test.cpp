// Determinism and quality guarantees of the parallel multilevel partitioner:
// partitions must be byte-identical across thread counts at a fixed seed
// (the parallel matching resolves conflicts by permutation rank, never by
// thread schedule), and the parallel coarsening path must not regress
// edge-cut quality versus the serial seed implementation. This binary also
// runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include "graph/graph_builder.hpp"
#include "graph/graph_metrics.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh_graphs.hpp"
#include "parallel/thread_pool.hpp"
#include "partition/coarsen.hpp"
#include "partition/kway_multilevel.hpp"
#include "partition/partition.hpp"

namespace cpart {
namespace {

/// Restores the default global pool when a test that swaps it exits.
class GlobalPoolGuard {
 public:
  ~GlobalPoolGuard() { ThreadPool::set_global_threads(0); }
};

// Large enough to drive the parallel coarsening path (threshold 4096) for
// several levels.
CsrGraph large_test_graph() { return make_grid_graph_3d(22, 22, 22); }

CsrGraph large_two_constraint_graph() {
  CsrGraph g = make_grid_graph_3d(20, 20, 20);
  const idx_t n = g.num_vertices();
  std::vector<wgt_t> vwgt(static_cast<std::size_t>(n) * 2);
  for (idx_t v = 0; v < n; ++v) {
    vwgt[static_cast<std::size_t>(v) * 2] = 1;
    // A "contact zone" carrying the second constraint, as in the paper.
    vwgt[static_cast<std::size_t>(v) * 2 + 1] = (v % 20 < 6) ? 1 : 0;
  }
  g.set_vertex_weights(vwgt, 2);
  return g;
}

TEST(PartitionDeterminism, CoarsenIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const CsrGraph g = large_test_graph();
  struct Result {
    std::vector<idx_t> coarse_of_fine;
    std::vector<idx_t> xadj, adjncy;
    std::vector<wgt_t> vwgt, adjwgt;
  };
  std::vector<Result> results;
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool::set_global_threads(threads);
    Rng rng(42);
    const Coarsening c = coarsen_once(g, rng);
    results.push_back({c.coarse_of_fine, c.coarse.xadj(), c.coarse.adjncy(),
                       c.coarse.vwgt(), c.coarse.adjwgt()});
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].coarse_of_fine, results[i].coarse_of_fine);
    EXPECT_EQ(results[0].xadj, results[i].xadj);
    EXPECT_EQ(results[0].adjncy, results[i].adjncy);
    EXPECT_EQ(results[0].vwgt, results[i].vwgt);
    EXPECT_EQ(results[0].adjwgt, results[i].adjwgt);
  }
}

TEST(PartitionDeterminism, RecursiveBisectionIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const CsrGraph g = large_test_graph();
  PartitionOptions opts;
  opts.k = 8;
  opts.seed = 7;
  std::vector<std::vector<idx_t>> parts;
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool::set_global_threads(threads);
    parts.push_back(partition_graph(g, opts));
  }
  EXPECT_EQ(parts[0], parts[1]);
  EXPECT_EQ(parts[0], parts[2]);
  EXPECT_TRUE(is_valid_partition(parts[0], opts.k));
}

TEST(PartitionDeterminism, DirectKwayIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const CsrGraph g = large_two_constraint_graph();
  PartitionOptions opts;
  opts.k = 12;
  opts.seed = 3;
  std::vector<std::vector<idx_t>> parts;
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool::set_global_threads(threads);
    parts.push_back(partition_graph_kway(g, opts));
  }
  EXPECT_EQ(parts[0], parts[1]);
  EXPECT_EQ(parts[0], parts[2]);
  EXPECT_LE(load_imbalance(g, parts[0], opts.k, 0), 1.11);
  EXPECT_LE(load_imbalance(g, parts[0], opts.k, 1), 1.11);
}

/// The parallel matching differs from the serial greedy matching, so the
/// final cut is not identical — but it must stay in the same quality league.
/// Compares against the serial path (forced via a huge threshold) on the
/// kind of mesh Table 1 uses: a structured body partitioned k ways.
TEST(PartitionQuality, ParallelCoarseningNoCutRegression) {
  const Mesh mesh = make_hex_box(28, 28, 28, {0, 0, 0}, {1, 1, 1});
  const CsrGraph g = nodal_graph(mesh);
  ASSERT_GE(g.num_vertices(), 20000);

  PartitionOptions serial_opts;
  serial_opts.k = 25;
  serial_opts.seed = 1;
  serial_opts.coarsen_parallel_threshold =
      std::numeric_limits<idx_t>::max();  // seed implementation
  PartitionOptions parallel_opts = serial_opts;
  parallel_opts.coarsen_parallel_threshold = 4096;

  const wgt_t serial_cut = edge_cut(g, partition_graph(g, serial_opts));
  const wgt_t parallel_cut = edge_cut(g, partition_graph(g, parallel_opts));
  EXPECT_LE(static_cast<double>(parallel_cut),
            1.05 * static_cast<double>(serial_cut))
      << "serial=" << serial_cut << " parallel=" << parallel_cut;
}

TEST(PartitionQuality, ParallelCoarseningPreservesInvariants) {
  const CsrGraph g = large_two_constraint_graph();
  Rng rng(9);
  const Coarsening c = coarsen_once(g, rng);
  EXPECT_LT(c.coarse.num_vertices(), g.num_vertices());
  EXPECT_GE(c.coarse.num_vertices(), g.num_vertices() / 2);
  EXPECT_EQ(c.coarse.total_vertex_weight(0), g.total_vertex_weight(0));
  EXPECT_EQ(c.coarse.total_vertex_weight(1), g.total_vertex_weight(1));
  EXPECT_TRUE(c.coarse.is_symmetric());
  // Cut preservation under projection: edge aggregation is exact.
  Rng rng2(10);
  std::vector<idx_t> coarse_part(
      static_cast<std::size_t>(c.coarse.num_vertices()));
  for (auto& p : coarse_part) p = rng2.uniform_int(4);
  std::vector<idx_t> fine_part(static_cast<std::size_t>(g.num_vertices()));
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    fine_part[static_cast<std::size_t>(v)] = coarse_part[static_cast<std::size_t>(
        c.coarse_of_fine[static_cast<std::size_t>(v)])];
  }
  EXPECT_EQ(edge_cut(c.coarse, coarse_part), edge_cut(g, fine_part));
}

}  // namespace
}  // namespace cpart
