// Tests for geom/kdtree: range queries and nearest neighbour against brute
// force, degenerate inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geom/kdtree.hpp"
#include "util/rng.hpp"

namespace cpart {
namespace {

std::vector<Vec3> random_points(idx_t n, Rng& rng, int dim = 3) {
  std::vector<Vec3> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) {
    p = Vec3{rng.uniform(0, 10), rng.uniform(0, 10),
             dim == 3 ? rng.uniform(0, 10) : 0};
  }
  return pts;
}

TEST(KdTree, EmptyTree) {
  const KdTree tree{};
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.nearest(Vec3{0, 0, 0}), kInvalidIndex);
  std::vector<idx_t> out;
  BBox box;
  box.expand(Vec3{0, 0, 0});
  tree.query_box(box, out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTree, SinglePoint) {
  const std::vector<Vec3> pts{{1, 2, 3}};
  const KdTree tree(pts);
  EXPECT_EQ(tree.nearest(Vec3{5, 5, 5}), 0);
  std::vector<idx_t> out;
  BBox box;
  box.expand(Vec3{1, 2, 3});
  tree.query_box(box, out);
  ASSERT_EQ(out.size(), 1u);
}

class KdTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KdTreePropertyTest, RangeQueryMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
  const auto pts = random_points(500, rng);
  const KdTree tree(pts);
  for (int trial = 0; trial < 20; ++trial) {
    BBox box;
    box.expand(Vec3{rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)});
    box.inflate(rng.uniform(0.2, 3.0));
    std::vector<idx_t> got;
    tree.query_box(box, got);
    std::set<idx_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size()) << "duplicates returned";
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(box.contains(pts[i]), got_set.count(to_idx(i)) > 0)
          << "point " << i;
    }
  }
}

TEST_P(KdTreePropertyTest, NearestMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const auto pts = random_points(300, rng);
  const KdTree tree(pts);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec3 q{rng.uniform(-2, 12), rng.uniform(-2, 12), rng.uniform(-2, 12)};
    const idx_t got = tree.nearest(q);
    real_t best = 1e300;
    for (const Vec3& p : pts) best = std::min(best, KdTree::distance2(q, p));
    EXPECT_DOUBLE_EQ(KdTree::distance2(q, pts[static_cast<std::size_t>(got)]),
                     best);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTreePropertyTest, ::testing::Range(0, 5));

TEST(KdTree, DuplicatePointsAllReturned) {
  const std::vector<Vec3> pts(40, Vec3{1, 1, 1});
  const KdTree tree(pts);
  std::vector<idx_t> out;
  BBox box;
  box.expand(Vec3{1, 1, 1});
  box.inflate(0.1);
  tree.query_box(box, out);
  EXPECT_EQ(out.size(), 40u);
}

TEST(KdTree, TwoDimensionalIgnoresZ) {
  Rng rng(3);
  auto pts = random_points(200, rng, 2);
  const KdTree tree(pts, 2);
  const idx_t got = tree.nearest(Vec3{5, 5, 100});  // z must not matter... but
  // distance2 includes z; nearest is still well-defined: all points share
  // z=0 so the ordering is unaffected.
  real_t best = 1e300;
  idx_t expect = kInvalidIndex;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const real_t d = KdTree::distance2(Vec3{5, 5, 100}, pts[i]);
    if (d < best) {
      best = d;
      expect = to_idx(i);
    }
  }
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace cpart
